package clap

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§4) — see DESIGN.md's experiment index. Each benchmark (a)
// prints the regenerated table/figure once, and (b) times the operation the
// experiment measures so `go test -bench=. -benchmem` doubles as a
// performance regression suite.
//
// The shared fixture trains CLAP and both baselines once. Scale defaults to
// the "tiny" profile so the suite stays minutes-fast; set
// CLAP_BENCH_PROFILE=fast (or full) to regenerate publication-quality
// numbers (the headline results are recorded in CHANGES.md).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"

	"clap/internal/attacks"
	"clap/internal/backend"
	"clap/internal/core"
	"clap/internal/engine"
	"clap/internal/eval"
	"clap/internal/flow"
	"clap/internal/metrics"
)

var (
	benchOnce    sync.Once
	benchSuite   *eval.Suite
	benchResults []eval.StrategyResult
	benchErr     error
)

func benchProfile() eval.Profile {
	if p := os.Getenv("CLAP_BENCH_PROFILE"); p != "" {
		return eval.Profile(p)
	}
	return eval.ProfileTiny
}

func fixture(b *testing.B) (*eval.Suite, []eval.StrategyResult) {
	b.Helper()
	benchOnce.Do(func() {
		opts := eval.OptionsFor(benchProfile())
		fmt.Printf("# training fixture (profile %s)...\n", opts.Profile)
		benchSuite, benchErr = eval.BuildSuite(opts, nil)
		if benchErr != nil {
			return
		}
		benchResults = benchSuite.EvaluateAll()
	})
	if benchErr != nil {
		b.Fatalf("fixture: %v", benchErr)
	}
	return benchSuite, benchResults
}

// printOnce guards each table/figure against b.N re-printing.
var printedSections sync.Map

func printSection(key, text string) {
	if _, loaded := printedSections.LoadOrStore(key, true); !loaded {
		fmt.Println(text)
	}
}

// advCorpus flattens the adversarial test corpus in stable order.
func advCorpus(s *eval.Suite) []*flow.Connection {
	var out []*flow.Connection
	for _, st := range attacks.All() {
		out = append(out, s.Data.Adv[st.Name]...)
	}
	return out
}

// --- Table 1: detection breakdown per strategy corpus. Times one full
// strategy evaluation (scoring its corpus against all three detectors).
func BenchmarkTable1_DetectionBreakdown(b *testing.B) {
	s, rs := fixture(b)
	printSection("table1", eval.Table1(rs))
	st, _ := attacks.ByName("GFW: Injected RST Bad TCP-Checksum/MD5-Option")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.EvaluateStrategy(st)
	}
}

// --- Table 2: inter- vs intra-packet context violations.
func BenchmarkTable2_ContextBreakdown(b *testing.B) {
	_, rs := fixture(b)
	printSection("table2", eval.Table2(rs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inter, intra := eval.Categorize(rs)
		_ = eval.Summarise(inter)
		_ = eval.Summarise(intra)
	}
}

// --- Table 3: processing throughput, CLAP vs Kitsune. The benchmark loop
// itself is the measurement (packets/second on one core).
func BenchmarkTable3_ThroughputCLAP(b *testing.B) {
	s, _ := fixture(b)
	conns := advCorpus(s)
	th := s.MeasureThroughputCLAP(conns)
	kth := s.MeasureThroughputKitsune(conns)
	printSection("table3", eval.Table3(th, kth, s.MeasureThroughputEngine(conns)))
	pkts := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := conns[i%len(conns)]
		_ = s.CLAP.Score(c)
		pkts += c.Len()
	}
	b.ReportMetric(float64(pkts)/b.Elapsed().Seconds(), "pkts/s")
}

func BenchmarkTable3_ThroughputKitsune(b *testing.B) {
	s, _ := fixture(b)
	conns := advCorpus(s)
	pkts := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := conns[i%len(conns)]
		_ = s.Kit.ScoreConnection(c)
		pkts += c.Len()
	}
	b.ReportMetric(float64(pkts)/b.Elapsed().Seconds(), "pkts/s")
}

// --- Table 4: dataset statistics.
func BenchmarkTable4_DatasetStats(b *testing.B) {
	s, _ := fixture(b)
	printSection("table4", eval.Table4(s.Data))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = flow.Census(s.Data.Train)
	}
}

// --- Table 5: per-label RNN accuracy.
func BenchmarkTable5_RNNAccuracy(b *testing.B) {
	s, _ := fixture(b)
	printSection("table5", eval.Table5(s))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.CLAP.RNNAccuracy(s.Data.TestBenign[:4])
	}
}

// --- Table 6: hyper-parameters of all models.
func BenchmarkTable6_Hyperparameters(b *testing.B) {
	s, _ := fixture(b)
	printSection("table6", eval.Table6(s))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.Table6(s)
	}
}

// --- Table 7: the feature schema.
func BenchmarkTable7_FeatureSchema(b *testing.B) {
	printSection("table7", eval.Table7())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.Table7()
	}
}

// --- Table 8: empirical per-context categorization.
func BenchmarkTable8_Categorization(b *testing.B) {
	_, rs := fixture(b)
	printSection("table8", eval.Table8(rs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.Table8(rs)
	}
}

// --- Figure 6: reconstruction-error trend across one adversarial
// connection. Times the full per-connection verification pipeline.
func BenchmarkFigure6_ErrorTrend(b *testing.B) {
	s, _ := fixture(b)
	printSection("figure6", eval.Figure6(s, "GFW: Injected RST Bad TCP-Checksum/MD5-Option"))
	conns := s.Data.Adv["GFW: Injected RST Bad TCP-Checksum/MD5-Option"]
	if len(conns) == 0 {
		b.Skip("no adversarial connections")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.CLAP.Score(conns[i%len(conns)])
	}
}

// figureDetectionBench times scoring of one corpus and prints its figure.
func figureDetectionBench(b *testing.B, num int, src attacks.Source) {
	s, rs := fixture(b)
	printSection(fmt.Sprintf("figure%d", num), eval.FigureDetection(num, src, rs))
	sub := attacks.BySource(src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conns := s.Data.Adv[sub[i%len(sub)].Name]
		for _, c := range conns {
			_ = s.CLAP.Score(c)
		}
	}
}

// --- Figures 7-9: per-strategy detection accuracy.
func BenchmarkFigure7_SymTCPDetection(b *testing.B) { figureDetectionBench(b, 7, attacks.SourceSymTCP) }
func BenchmarkFigure8_LiberateDetection(b *testing.B) {
	figureDetectionBench(b, 8, attacks.SourceLiberate)
}
func BenchmarkFigure9_GenevaDetection(b *testing.B) { figureDetectionBench(b, 9, attacks.SourceGeneva) }

// figureLocalizationBench times Top-N localization and prints its figure.
func figureLocalizationBench(b *testing.B, num int, src attacks.Source) {
	s, rs := fixture(b)
	printSection(fmt.Sprintf("figure%d", num), eval.FigureLocalization(num, src, rs))
	sub := attacks.BySource(src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conns := s.Data.Adv[sub[i%len(sub)].Name]
		for _, c := range conns {
			_ = s.CLAP.LocalizationHit(c, 5)
		}
	}
}

// --- Figures 10-12: per-strategy localization accuracy.
func BenchmarkFigure10_SymTCPLocalization(b *testing.B) {
	figureLocalizationBench(b, 10, attacks.SourceSymTCP)
}
func BenchmarkFigure11_LiberateLocalization(b *testing.B) {
	figureLocalizationBench(b, 11, attacks.SourceLiberate)
}
func BenchmarkFigure12_GenevaLocalization(b *testing.B) {
	figureLocalizationBench(b, 12, attacks.SourceGeneva)
}

// --- Ablations: each trains a variant detector under the suite's budget
// and compares mean AUC over the representative strategy mix. The timed
// operation is variant scoring.

var (
	ablationBaselineOnce sync.Once
	ablationBaselineAUC  float64
)

func ablationBaseline(b *testing.B, s *eval.Suite) float64 {
	ablationBaselineOnce.Do(func() {
		ablationBaselineAUC = s.EvaluateDetector(s.CLAP, eval.AblationStrategies)
	})
	return ablationBaselineAUC
}

// ablationVariants caches trained variants so the framework's repeated
// invocations of a benchmark function (growing b.N) do not retrain.
var ablationVariants sync.Map

func ablationBench(b *testing.B, label string, mutate func(*core.Config)) {
	s, _ := fixture(b)
	base := ablationBaseline(b, s)
	var det *core.Detector
	if cached, ok := ablationVariants.Load(label); ok {
		det = cached.(*core.Detector)
	} else {
		var err error
		det, err = s.TrainVariant(mutate, nil)
		if err != nil {
			b.Fatalf("training variant: %v", err)
		}
		ablationVariants.Store(label, det)
	}
	auc := s.EvaluateDetector(det, eval.AblationStrategies)
	printSection("ablation-"+label, eval.AblationReport(label, base, auc))
	conns := s.Data.Adv[eval.AblationStrategies[0]]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = det.Score(conns[i%len(conns)])
	}
}

// BenchmarkAblation_NoStacking disables profile stacking (stack length 1
// instead of 3).
func BenchmarkAblation_NoStacking(b *testing.B) {
	ablationBench(b, "no-stacking", func(c *core.Config) { c.StackLength = 1 })
}

// BenchmarkAblation_NoGateWeights removes the RNN gate features — the
// difference between CLAP and a stacked Baseline #1.
func BenchmarkAblation_NoGateWeights(b *testing.B) {
	ablationBench(b, "no-gate-weights", func(c *core.Config) {
		c.UseUpdateGates, c.UseResetGates = false, false
	})
}

// BenchmarkAblation_UpdateGatesOnly keeps only the update gates.
func BenchmarkAblation_UpdateGatesOnly(b *testing.B) {
	ablationBench(b, "update-gates-only", func(c *core.Config) { c.UseResetGates = false })
}

// BenchmarkAblation_NoAmplification drops the 19 amplification features.
func BenchmarkAblation_NoAmplification(b *testing.B) {
	ablationBench(b, "no-amplification", func(c *core.Config) { c.UseAmplification = false })
}

// BenchmarkAblation_ScoreMetric compares the localize-and-estimate
// adversarial score against plain max and mean aggregation (no retraining
// needed).
func BenchmarkAblation_ScoreMetric(b *testing.B) {
	s, _ := fixture(b)
	loc := s.EvaluateScoreMetric(eval.AggLocalize, eval.AblationStrategies)
	max := s.EvaluateScoreMetric(eval.AggMax, eval.AblationStrategies)
	mean := s.EvaluateScoreMetric(eval.AggMean, eval.AblationStrategies)
	printSection("ablation-score-metric", fmt.Sprintf(
		"Ablation score-metric: localize-and-estimate=%.3f max=%.3f mean=%.3f\n", loc, max, mean))
	conns := s.Data.Adv[eval.AblationStrategies[0]]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.CLAP.WindowErrors(conns[i%len(conns)])
	}
}

// --- Engine: the parallel scoring path against the serial baseline. Each
// iteration scores the full mixed benign+adversarial corpus; sub-benchmark
// names carry the worker count, so
//
//	go test -bench BenchmarkEngineScore -benchtime=5x
//
// prints the serial-vs-parallel pkts/s table directly. Scores are
// bit-identical across all variants (see internal/engine tests); only
// wall-clock changes. On a single-core host the parallel variants track the
// serial path (the engine adds no meaningful overhead); the speedup scales
// with available cores.
func BenchmarkEngineScore(b *testing.B) {
	s, _ := fixture(b)
	conns := append(append([]*flow.Connection{}, s.Data.TestBenign...), advCorpus(s)...)
	var pkts int
	for _, c := range conns {
		pkts += c.Len()
	}

	b.Run("serial", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, c := range conns {
				_ = s.CLAP.Score(c)
			}
		}
		b.ReportMetric(float64(pkts*b.N)/b.Elapsed().Seconds(), "pkts/s")
	})
	for _, workers := range []int{1, 4, 8} {
		eng := engine.New(engine.Options{Workers: workers})
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = eng.ScoreAll(s.CLAP, conns)
			}
			b.ReportMetric(float64(pkts*b.N)/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}

// BenchmarkEngineAssemble compares sharded parallel flow assembly against
// the serial path over the flattened benign corpus.
func BenchmarkEngineAssemble(b *testing.B) {
	s, _ := fixture(b)
	pkts := flow.Flatten(s.Data.Train)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = flow.Assemble(pkts)
		}
	})
	for _, shards := range []int{4, 8} {
		eng := engine.New(engine.Options{Workers: 4, Shards: shards})
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = eng.Assemble(pkts)
			}
		})
	}
}

// --- Backend throughput trajectory: pkts/s for every registered backend
// across worker counts, micro-batch sizes and lockstep widths, written to
// BENCH_pr9.json so CI uploads a machine-readable benchmark artifact per
// PR (the BENCH trajectory) and cmd/bench-gate can compare it against the
// committed BENCH_pr4.json snapshot and hold the within-artifact
// lockstep/serial ratio floor.

// benchTrajectory accumulates BenchmarkBackendThroughput samples; the
// file is rewritten after every sample so partial bench runs still leave
// a valid artifact.
var benchTrajectory = struct {
	sync.Mutex
	samples map[string]benchSample
}{samples: map[string]benchSample{}}

type benchSample struct {
	Backend    string  `json:"backend"`
	Workers    int     `json:"workers"`
	Batch      int     `json:"batch,omitempty"`    // 0/absent: unbatched (pre-PR4 snapshots)
	Lockstep   int     `json:"lockstep,omitempty"` // 0/absent: per-connection recurrences (pre-PR9 snapshots)
	PktsPerSec float64 `json:"pkts_per_sec"`
}

func recordBenchSample(backendTag string, workers, batch, lockstep int, pktsPerSec float64) {
	benchTrajectory.Lock()
	defer benchTrajectory.Unlock()
	key := fmt.Sprintf("%s/%03d/%05d/%03d", backendTag, workers, batch, lockstep)
	benchTrajectory.samples[key] = benchSample{Backend: backendTag, Workers: workers, Batch: batch, Lockstep: lockstep, PktsPerSec: pktsPerSec}

	keys := make([]string, 0, len(benchTrajectory.samples))
	for k := range benchTrajectory.samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := struct {
		PR         int           `json:"pr"`
		Profile    string        `json:"profile"`
		GOMAXPROCS int           `json:"gomaxprocs"`
		Results    []benchSample `json:"results"`
	}{PR: 9, Profile: string(benchProfile()), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, k := range keys {
		out.Results = append(out.Results, benchTrajectory.samples[k])
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return
	}
	_ = os.WriteFile("BENCH_pr9.json", append(data, '\n'), 0o644)
}

// BenchmarkBackendThroughput measures scoring throughput (pkts/s) for
// each registered backend across worker counts, micro-batch sizes and
// lockstep widths, recording the samples into BENCH_pr9.json. batch=1 is
// the unbatched path (comparable to the BENCH_pr3 snapshot); larger
// batches run the micro-batched matrix-matrix kernels on capable
// backends; lockstep>0 additionally steps the GRU recurrence across that
// many connections at once (scores are bit-identical on every variant —
// see the engine and pipeline determinism tests). Sub-benchmark names
// carry backend, workers, batch and lockstep, so the text output doubles
// as the human-readable table.
func BenchmarkBackendThroughput(b *testing.B) {
	s, _ := fixture(b)
	conns := append(append([]*flow.Connection{}, s.Data.TestBenign...), advCorpus(s)...)
	pkts := 0
	for _, c := range conns {
		pkts += c.Len()
	}
	tags := make([]string, 0, len(s.Backends))
	for tag := range s.Backends {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	for _, tag := range tags {
		bk := s.Backends[tag]
		_, batchable := bk.(backend.BatchScorer)
		for _, workers := range []int{1, 4, 8} {
			for _, batchN := range []int{1, engine.DefaultBatch, 60} {
				if batchN > 1 && !batchable {
					continue // the fallback path is the batch=1 row
				}
				eng := engine.New(engine.Options{Workers: workers, Batch: batchN})
				b.Run(fmt.Sprintf("%s/workers=%d/batch=%d", tag, workers, batchN), func(b *testing.B) {
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						_ = eng.ScoresBatched(bk, conns)
					}
					rate := float64(pkts*b.N) / b.Elapsed().Seconds()
					b.ReportMetric(rate, "pkts/s")
					recordBenchSample(tag, workers, batchN, 0, rate)
				})
			}
		}

		// Cross-connection lockstep rows, only for backends whose model
		// actually opens a fleet session (gate-free models decline and
		// would just re-measure the rows above). The batch sweep at fixed
		// width=DefaultLockstep documents the DefaultBatch interaction:
		// with lockstep on, windows from the whole fleet pool into the
		// micro-batches, so batch != DefaultBatch mostly shifts AE-kernel
		// granularity rather than fleet occupancy.
		ls, ok := bk.(backend.LockstepScorer)
		if !ok || ls.OpenLockstep(1) == nil {
			continue
		}
		for _, workers := range []int{1, 4, 8} {
			for _, width := range []int{6, engine.DefaultLockstep} {
				eng := engine.New(engine.Options{Workers: workers, Batch: engine.DefaultBatch, Lockstep: width})
				b.Run(fmt.Sprintf("%s/workers=%d/batch=%d/lockstep=%d", tag, workers, engine.DefaultBatch, width), func(b *testing.B) {
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						_ = eng.ScoresBatched(bk, conns)
					}
					rate := float64(pkts*b.N) / b.Elapsed().Seconds()
					b.ReportMetric(rate, "pkts/s")
					recordBenchSample(tag, workers, engine.DefaultBatch, width, rate)
				})
			}
		}
		for _, batchN := range []int{6, 60} {
			eng := engine.New(engine.Options{Workers: 1, Batch: batchN, Lockstep: engine.DefaultLockstep})
			b.Run(fmt.Sprintf("%s/workers=1/batch=%d/lockstep=%d", tag, batchN, engine.DefaultLockstep), func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = eng.ScoresBatched(bk, conns)
				}
				rate := float64(pkts*b.N) / b.Elapsed().Seconds()
				b.ReportMetric(rate, "pkts/s")
				recordBenchSample(tag, 1, batchN, engine.DefaultLockstep, rate)
			})
		}
	}

	// Cascade: the tiered-deployment row, measured on a benign-heavy mix
	// (~95% benign) — the traffic profile the cascade exists for. The
	// escalation threshold calibrates at the default budget on the benign
	// split's stage-1 scores, like CascadeFrontier.
	heavy := append(append([]*flow.Connection{}, s.Data.TestBenign...), advCorpus(s)...)
	nAttack := len(s.Data.TestBenign) / 19
	if nAttack == 0 {
		nAttack = 1
	}
	heavy = heavy[:len(s.Data.TestBenign)+nAttack]
	heavyPkts := 0
	for _, c := range heavy {
		heavyPkts += c.Len()
	}
	cascade, err := backend.NewCascade(
		s.Backends[backend.TagBaseline1], s.Backends[backend.TagCLAP], backend.DefaultEscalateFPR)
	if err != nil {
		b.Fatal(err)
	}
	benignS1 := s.Eng.ScoreBackend(s.Backends[backend.TagBaseline1], s.Data.TestBenign)
	if err := cascade.SetEscalation(metrics.ThresholdAtFPR(benignS1, backend.DefaultEscalateFPR)); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		eng := engine.New(engine.Options{Workers: workers, Batch: engine.DefaultBatch})
		b.Run(fmt.Sprintf("cascade/workers=%d/batch=1", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = eng.ScoresBatched(cascade, heavy)
			}
			rate := float64(heavyPkts*b.N) / b.Elapsed().Seconds()
			b.ReportMetric(rate, "pkts/s")
			recordBenchSample(backend.TagCascade, workers, 1, 0, rate)
		})
	}
	// Cascade with lockstep: stage 1 stays per-connection (gate-free
	// baseline1 declines the fleet) but escalated stage-2 re-scores run
	// the clap gates lockstep-wide through the grouped composite path.
	for _, workers := range []int{1, 4, 8} {
		eng := engine.New(engine.Options{Workers: workers, Batch: engine.DefaultBatch, Lockstep: engine.DefaultLockstep})
		b.Run(fmt.Sprintf("cascade/workers=%d/batch=1/lockstep=%d", workers, engine.DefaultLockstep), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = eng.ScoresBatched(cascade, heavy)
			}
			rate := float64(heavyPkts*b.N) / b.Elapsed().Seconds()
			b.ReportMetric(rate, "pkts/s")
			recordBenchSample(backend.TagCascade, workers, 1, engine.DefaultLockstep, rate)
		})
	}
}

// --- End-to-end pipeline benchmarks (not tied to a table, useful for
// performance regressions).

func BenchmarkPipelineScoreConnection(b *testing.B) {
	s, _ := fixture(b)
	c := s.Data.TestBenign[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.CLAP.Score(c)
	}
}

func BenchmarkPipelineTrainTiny(b *testing.B) {
	conns := GenerateBenign(20, 1)
	cfg := DefaultConfig()
	cfg.RNNEpochs, cfg.AEEpochs = 1, 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(conns, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}
