package clap

import (
	"errors"
	"fmt"

	"clap/internal/core"
	"clap/internal/engine"
)

// Pipeline is the backend-agnostic deployment unit: a Source feeds
// connections, any registered Backend scores them through the sharded
// parallel engine, and Sinks render the results. The same pipeline serves
// the online-detector and forensic modes of §3.2 for CLAP, Baseline #1,
// Kitsune, or any future backend — swap WithBackend and nothing else
// changes.
//
//	b, _ := clap.LoadBackendFile("clap.model")
//	p, _ := clap.NewPipeline(
//	        clap.WithBackend(b),
//	        clap.WithThresholdFPR(0.01, clap.PCAPFile("benign.pcap")),
//	        clap.WithTopN(5),
//	)
//	summary, _ := p.Run(clap.PCAPFile("suspect.pcap"), clap.NewTextReport(os.Stdout, false))
//
// Scores produced through a Pipeline are bit-identical to the backend's
// serial scoring path at any worker or shard count.
type Pipeline struct {
	backend Backend
	eng     *Engine

	workers, shards int

	threshold   float64
	fpr         float64
	calibration Source

	topN       int
	keepErrors bool
}

// PipelineOption configures a Pipeline.
type PipelineOption func(*Pipeline)

// WithBackend selects the detection backend. Required; the backend must be
// trained (or freshly loaded) before Run.
func WithBackend(b Backend) PipelineOption { return func(p *Pipeline) { p.backend = b } }

// WithWorkers sets the scoring worker count; 0 sizes it to the machine.
func WithWorkers(n int) PipelineOption { return func(p *Pipeline) { p.workers = n } }

// WithShards sets the assembly shard count; 0 mirrors the worker count.
func WithShards(n int) PipelineOption { return func(p *Pipeline) { p.shards = n } }

// WithThreshold sets a fixed adversarial-score threshold. 0 (the default)
// means score-only: nothing is flagged.
func WithThreshold(th float64) PipelineOption { return func(p *Pipeline) { p.threshold = th } }

// WithThresholdFPR calibrates the threshold at Run (or NewStream) time:
// the calibration source is scored with the pipeline's backend and the
// threshold is picked to keep the false-positive rate on it at or below
// fpr (the deployment knob of §3.3(d)). Overrides WithThreshold.
func WithThresholdFPR(fpr float64, calibration Source) PipelineOption {
	return func(p *Pipeline) { p.fpr, p.calibration = fpr, calibration }
}

// WithTopN sets how many highest-error windows each result localizes
// (default 5). 0 disables localization.
func WithTopN(n int) PipelineOption { return func(p *Pipeline) { p.topN = n } }

// WithWindowErrors keeps the full per-window error series on every Result
// (Figure 6's series). By default only flagged results retain it, so large
// captures do not pin every connection's series for the whole run.
func WithWindowErrors(keep bool) PipelineOption { return func(p *Pipeline) { p.keepErrors = keep } }

// NewPipeline builds a pipeline over a backend. It fails without one, and
// fails on an untrained one — scoring through an untrained backend would
// otherwise panic on a pool goroutine.
func NewPipeline(opts ...PipelineOption) (*Pipeline, error) {
	p := &Pipeline{topN: 5}
	for _, o := range opts {
		o(p)
	}
	if p.backend == nil {
		return nil, errors.New("clap: pipeline needs a backend (WithBackend)")
	}
	if !p.backend.Trained() {
		return nil, fmt.Errorf("clap: backend %q is not trained (Train it or load a model first)", p.backend.Tag())
	}
	p.eng = engine.New(engine.Options{Workers: p.workers, Shards: p.shards})
	return p, nil
}

// Backend returns the pipeline's detection backend.
func (p *Pipeline) Backend() Backend { return p.backend }

// Engine returns the pipeline's scoring engine (for Source implementations
// and ad-hoc scoring alongside a Run).
func (p *Pipeline) Engine() *Engine { return p.eng }

// Result is one connection's verdict.
type Result struct {
	// Conn is the scored connection.
	Conn *Connection
	// Score is the backend's scalar adversarial score.
	Score float64
	// Flagged reports Score >= threshold (never set in score-only mode).
	Flagged bool
	// PeakWindow is the index of the highest-error window (-1 when the
	// backend produced no windows).
	PeakWindow int
	// TopWindows holds the indices of the highest-error windows, best
	// first (up to the pipeline's TopN) — CLAP's forensic localization.
	// Computed for flagged results, and for every result under
	// WithWindowErrors(true); nil otherwise, so score-only batch runs do
	// not pay for ranking they never read.
	TopWindows []int
	// Errors is the per-window anomaly series. Retained for flagged
	// results, and for every result under WithWindowErrors(true).
	Errors []float64
}

// RunSummary reports one Run.
type RunSummary struct {
	// Results holds every connection's verdict in capture order.
	Results []Result
	// Threshold is the operating threshold used (0 in score-only mode).
	Threshold float64
	// Flagged counts results over the threshold.
	Flagged int
	// Skipped counts records the source could not decode (e.g. truncated
	// or non-TCP pcap records).
	Skipped int
	// CalibrationConns and CalibrationSkipped report the calibration
	// source's corpus when WithThresholdFPR was used.
	CalibrationConns   int
	CalibrationSkipped int
	// WindowSpan is the backend's packets-per-window (for expanding window
	// indices to packet ranges).
	WindowSpan int
}

// calibrate resolves the operating threshold, scoring the calibration
// source if one was configured.
func (p *Pipeline) calibrate() (th float64, calN, calSkipped int, err error) {
	th = p.threshold
	if p.calibration == nil {
		return th, 0, 0, nil
	}
	benign, skipped, err := p.calibration.Connections(p.eng)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("clap: reading calibration source: %w", err)
	}
	scores := p.eng.ScoreBackend(p.backend, benign)
	return ThresholdAtFPR(scores, p.fpr), len(benign), skipped, nil
}

// resultFor scores one connection from its precomputed window errors.
func (p *Pipeline) resultFor(c *Connection, errs []float64, th float64) Result {
	score, peak := p.backend.Summarize(errs)
	r := Result{Conn: c, Score: score, PeakWindow: peak}
	if th > 0 && score >= th {
		r.Flagged = true
	}
	if r.Flagged || p.keepErrors {
		if p.topN > 0 {
			r.TopWindows = core.TopWindows(errs, p.topN)
		}
		r.Errors = errs
	}
	return r
}

// Run reads the source, scores every connection through the engine, and
// emits each result to every sink in capture order (then Finish, in sink
// order). Sinks may be nil-free but are optional: forensic callers can
// work off the returned summary alone.
func (p *Pipeline) Run(src Source, sinks ...Sink) (*RunSummary, error) {
	th, calN, calSkipped, err := p.calibrate()
	if err != nil {
		return nil, err
	}
	conns, skipped, err := src.Connections(p.eng)
	if err != nil {
		return nil, fmt.Errorf("clap: reading source: %w", err)
	}
	errsAll := p.eng.WindowErrorsBackend(p.backend, conns)
	sum := &RunSummary{
		Results:            make([]Result, len(conns)),
		Threshold:          th,
		Skipped:            skipped,
		CalibrationConns:   calN,
		CalibrationSkipped: calSkipped,
		WindowSpan:         p.backend.WindowSpan(),
	}
	for i, c := range conns {
		r := p.resultFor(c, errsAll[i], th)
		errsAll[i] = nil
		if r.Flagged {
			sum.Flagged++
		}
		sum.Results[i] = r
		for _, s := range sinks {
			if err := s.Emit(r); err != nil {
				return nil, fmt.Errorf("clap: sink: %w", err)
			}
		}
	}
	for _, s := range sinks {
		if err := s.Finish(sum); err != nil {
			return nil, fmt.Errorf("clap: sink finish: %w", err)
		}
	}
	return sum, nil
}

// PipelineStream is the pipeline's online mode: connections are submitted
// as they close, scored concurrently by the engine, and emitted strictly
// in submission order.
type PipelineStream struct {
	inner     *engine.StreamOf[Result]
	threshold float64
}

// NewStream opens the pipeline in streaming mode. Threshold calibration
// (if configured) runs now, before the first Submit; emit then receives
// every submitted connection's Result in submission order on a single
// goroutine. Close the stream to drain it.
func (p *Pipeline) NewStream(emit func(Result)) (*PipelineStream, error) {
	th, _, _, err := p.calibrate()
	if err != nil {
		return nil, err
	}
	score := func(c *Connection) Result {
		return p.resultFor(c, p.backend.WindowErrors(c), th)
	}
	return &PipelineStream{
		inner:     engine.NewStreamOf(p.eng, score, func(_ *Connection, r Result) { emit(r) }),
		threshold: th,
	}, nil
}

// Threshold reports the stream's operating threshold.
func (s *PipelineStream) Threshold() float64 { return s.threshold }

// Submit queues one connection for scoring; results arrive at emit in
// submission order. Not safe for concurrent Submit calls.
func (s *PipelineStream) Submit(c *Connection) { s.inner.Submit(c) }

// Close drains the stream: every submitted connection is scored and
// emitted before Close returns.
func (s *PipelineStream) Close() { s.inner.Close() }
