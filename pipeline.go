package clap

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"clap/internal/backend"
	"clap/internal/calib"
	"clap/internal/core"
	"clap/internal/engine"
	"clap/internal/obs"
)

// Pipeline is the backend-agnostic deployment unit: a Source feeds
// connections, any registered Backend scores them through the sharded
// parallel engine, and Sinks render the results. The same pipeline serves
// the online-detector and forensic modes of §3.2 for CLAP, Baseline #1,
// Kitsune, or any future backend — swap WithBackend and nothing else
// changes.
//
//	b, _ := clap.LoadBackendFile("clap.model")
//	p, _ := clap.NewPipeline(
//	        clap.WithBackend(b),
//	        clap.WithThresholdFPR(0.01, clap.PCAPFile("benign.pcap")),
//	        clap.WithTopN(5),
//	)
//	summary, _ := p.Run(clap.PCAPFile("suspect.pcap"), clap.NewTextReport(os.Stdout, false))
//
// Scores produced through a Pipeline are bit-identical to the backend's
// serial scoring path at any worker, shard or batch count: for backends
// with the batch-scoring capability (CLAP, Baseline #1) the engine pools
// stacked windows across connections into micro-batches and runs each as
// one matrix-matrix inference pass, changing the wall clock but never the
// bits (WithBatchSize tunes it; 1 disables).
type Pipeline struct {
	backend Backend
	eng     *Engine

	workers, shards, batch, lockstep int

	threshold   float64
	fpr         float64
	calibration Source
	cal         *Calibration

	topN       int
	keepErrors bool
	prov       bool

	optErr error // first invalid option, surfaced by NewPipeline
}

// PipelineOption configures a Pipeline.
type PipelineOption func(*Pipeline)

// fail records the first invalid option; NewPipeline returns it.
func (p *Pipeline) fail(format string, args ...any) {
	if p.optErr == nil {
		p.optErr = fmt.Errorf(format, args...)
	}
}

// WithBackend selects the detection backend. Required; the backend must be
// trained (or freshly loaded) before Run.
func WithBackend(b Backend) PipelineOption { return func(p *Pipeline) { p.backend = b } }

// WithCascade selects a tiered cascade backend: cheap screens every
// connection, expensive re-scores the suspicious tail (bit-identically to
// running it alone), and at most escalateFPR of benign traffic escalates
// once calibrated (combine with WithThresholdFPR so one benign corpus
// calibrates both the escalation and the operating threshold). Both
// stages must be trained; invalid pairings are rejected by NewPipeline.
func WithCascade(cheap, expensive Backend, escalateFPR float64) PipelineOption {
	return func(p *Pipeline) {
		c, err := backend.NewCascade(cheap, expensive, escalateFPR)
		if err != nil {
			if p.optErr == nil {
				p.optErr = fmt.Errorf("clap: WithCascade: %w", err)
			}
			return
		}
		p.backend = c
	}
}

// WithWorkers sets the scoring worker count. Omit the option to size it to
// the machine; explicit non-positive counts are rejected by NewPipeline.
func WithWorkers(n int) PipelineOption {
	return func(p *Pipeline) {
		if n <= 0 {
			p.fail("clap: WithWorkers(%d): worker count must be positive (omit the option to auto-size)", n)
			return
		}
		p.workers = n
	}
}

// WithShards sets the assembly shard count. Omit the option to mirror the
// worker count; explicit non-positive counts are rejected by NewPipeline.
func WithShards(n int) PipelineOption {
	return func(p *Pipeline) {
		if n <= 0 {
			p.fail("clap: WithShards(%d): shard count must be positive (omit the option to mirror workers)", n)
			return
		}
		p.shards = n
	}
}

// WithThreshold sets a fixed adversarial-score threshold. 0 (the default)
// means score-only: nothing is flagged. Non-finite (NaN, ±Inf) or negative
// thresholds are rejected by NewPipeline — +Inf in particular would
// silently disable flagging forever while looking like a configured
// threshold.
func WithThreshold(th float64) PipelineOption {
	return func(p *Pipeline) {
		if err := validThreshold("WithThreshold", th); err != nil {
			if p.optErr == nil { // first invalid option wins, like fail()
				p.optErr = err
			}
			return
		}
		p.threshold = th
	}
}

// validThreshold is the single gate every operating threshold passes
// through — options, live SetThreshold, and (through those) the
// /v1/threshold PUT and the CLI -threshold flags.
func validThreshold(who string, th float64) error {
	if math.IsNaN(th) || math.IsInf(th, 0) || th < 0 {
		return fmt.Errorf("clap: %s(%v): threshold must be finite and >= 0", who, th)
	}
	return nil
}

// WithBatchSize sets how many stacked-profile windows ride one batched
// inference pass for backends with the batch-scoring capability (micro-
// batches pool windows across connections in Run; streams batch within
// each connection). Omit the option for the bench-tuned default (24); 1
// disables batching; non-positive sizes are rejected by NewPipeline.
// Scores are bit-identical at any batch size — only throughput changes.
func WithBatchSize(n int) PipelineOption {
	return func(p *Pipeline) {
		if n < 1 {
			p.fail("clap: WithBatchSize(%d): batch size must be >= 1 (omit the option for the default)", n)
			return
		}
		p.batch = n
	}
}

// WithLockstep sets the cross-connection lockstep width for backends with
// the lockstep capability: up to n connections' GRU recurrences step
// together through one matrix-matrix pass per gate, with the engine's
// ragged scheduler retiring finished connections and refilling their
// fleet rows mid-flight. It accelerates both batch Runs and streams
// (streamed connections are scored in opportunistic groups). 0 — the
// default — disables lockstep entirely: scoring and metrics behave
// exactly as without the option. Scores are bit-identical at any width;
// negative widths are rejected by NewPipeline. engine.DefaultLockstep is
// the bench-tuned width for callers that just want it on.
func WithLockstep(n int) PipelineOption {
	return func(p *Pipeline) {
		if n < 0 {
			p.fail("clap: WithLockstep(%d): lockstep width must be >= 0 (0 disables)", n)
			return
		}
		p.lockstep = n
	}
}

// WithThresholdFPR calibrates the threshold at Run (or NewStream) time:
// the calibration source is scored with the pipeline's backend and the
// threshold is picked to keep the false-positive rate on it at or below
// fpr (the deployment knob of §3.3(d)). Overrides WithThreshold. fpr must
// lie in (0, 1) — 0 would flag nothing and 1 everything — and the
// calibration source must be non-nil; NewPipeline rejects both.
func WithThresholdFPR(fpr float64, calibration Source) PipelineOption {
	return func(p *Pipeline) {
		if !(fpr > 0 && fpr < 1) { // the negation also catches NaN
			p.fail("clap: WithThresholdFPR(%v): target FPR must be in (0, 1)", fpr)
			return
		}
		if calibration == nil {
			p.fail("clap: WithThresholdFPR needs a calibration source")
			return
		}
		p.fpr, p.calibration = fpr, calibration
	}
}

// WithCalibration installs a previously derived calibration snapshot
// (Pipeline.Calibrate, or LoadCalibrationFile for one persisted alongside
// the model): the pipeline operates at the snapshot's threshold without
// re-scoring a calibration corpus. The snapshot's backend tag must match
// the pipeline's backend — a threshold is meaningless on another family's
// score scale. Overridden by WithThresholdFPR.
func WithCalibration(cal *Calibration) PipelineOption {
	return func(p *Pipeline) {
		if err := cal.Validate(); err != nil {
			if p.optErr == nil {
				p.optErr = err
			}
			return
		}
		p.cal = cal
		p.threshold = cal.Threshold
	}
}

// WithTopN sets how many highest-error windows each result localizes
// (default 5). 0 disables localization; negative counts are rejected by
// NewPipeline.
func WithTopN(n int) PipelineOption {
	return func(p *Pipeline) {
		if n < 0 {
			p.fail("clap: WithTopN(%d): window count must be >= 0", n)
			return
		}
		p.topN = n
	}
}

// WithWindowErrors keeps the full per-window error series on every Result
// (Figure 6's series). By default only flagged results retain it, so large
// captures do not pin every connection's series for the whole run.
func WithWindowErrors(keep bool) PipelineOption { return func(p *Pipeline) { p.keepErrors = keep } }

// WithProvenance arms per-verdict provenance capture on pipeline streams:
// every streamed Result carries an obs.Decision binding the verdict to the
// (model tag, Hot generation, threshold) that judged it — read in the SAME
// atomic load that pins the scoring pair — plus the cascade stage, batch
// placement, and the connection's ingest attribution. Head-sampled
// connections (Connection.TraceSampled) additionally retain their full
// error series even when unflagged. Off by default; batch Runs ignore it.
func WithProvenance(on bool) PipelineOption { return func(p *Pipeline) { p.prov = on } }

// NewPipeline builds a pipeline over a backend. It fails without one,
// fails on an untrained one — scoring through an untrained backend would
// otherwise panic on a pool goroutine — and fails on any invalid option
// value rather than silently coercing it.
func NewPipeline(opts ...PipelineOption) (*Pipeline, error) {
	p := &Pipeline{topN: 5}
	for _, o := range opts {
		o(p)
	}
	if p.optErr != nil {
		return nil, p.optErr
	}
	if p.backend == nil {
		return nil, errors.New("clap: pipeline needs a backend (WithBackend)")
	}
	if !p.backend.Trained() {
		return nil, fmt.Errorf("clap: backend %q is not trained (Train it or load a model first)", p.backend.Tag())
	}
	if p.cal != nil && p.cal.Tag != p.backend.Tag() {
		return nil, fmt.Errorf("clap: calibration snapshot is for backend %q, pipeline runs %q", p.cal.Tag, p.backend.Tag())
	}
	p.eng = engine.New(engine.Options{Workers: p.workers, Shards: p.shards, Batch: p.batch, Lockstep: p.lockstep})
	p.batch = p.eng.Batch()
	p.lockstep = p.eng.Lockstep()
	return p, nil
}

// BatchSize reports the pipeline's micro-batch size (1: batching disabled).
func (p *Pipeline) BatchSize() int { return p.batch }

// Lockstep reports the pipeline's cross-connection lockstep width
// (0: disabled).
func (p *Pipeline) Lockstep() int { return p.lockstep }

// Backend returns the pipeline's detection backend.
func (p *Pipeline) Backend() Backend { return p.backend }

// snapshot pins the model one connection is scored with. For a reload-safe
// HotBackend handle this resolves the live model once, so a hot swap can
// never split a single connection's WindowErrors/Summarize pair across two
// models; for plain backends it is the backend itself.
func (p *Pipeline) snapshot() Backend {
	if s, ok := p.backend.(backend.Snapshotter); ok {
		return s.Current()
	}
	return p.backend
}

// Engine returns the pipeline's scoring engine (for Source implementations
// and ad-hoc scoring alongside a Run).
func (p *Pipeline) Engine() *Engine { return p.eng }

// Result is one connection's verdict.
type Result struct {
	// Conn is the scored connection.
	Conn *Connection
	// Score is the backend's scalar adversarial score.
	Score float64
	// Flagged reports Score >= threshold (never set in score-only mode).
	Flagged bool
	// PeakWindow is the index of the highest-error window (-1 when the
	// backend produced no windows).
	PeakWindow int
	// TopWindows holds the indices of the highest-error windows, best
	// first (up to the pipeline's TopN) — CLAP's forensic localization.
	// Computed for flagged results, and for every result under
	// WithWindowErrors(true); nil otherwise, so score-only batch runs do
	// not pay for ranking they never read.
	TopWindows []int
	// Errors is the per-window anomaly series. Retained for flagged
	// results, and for every result under WithWindowErrors(true) — and,
	// on provenance-armed streams, for head-sampled connections.
	Errors []float64
	// Prov is the verdict's provenance record, populated only on pipeline
	// streams built under WithProvenance(true); nil otherwise. The stream
	// fills the scoring-side fields on the pool worker; the consumer
	// completes Seq, the stage latencies and the timestamp on the emit
	// goroutine before publishing the record anywhere.
	Prov *obs.Decision
}

// RunSummary reports one Run.
type RunSummary struct {
	// Results holds every connection's verdict in capture order.
	Results []Result
	// Threshold is the operating threshold used (0 in score-only mode,
	// unless ThresholdSet says otherwise).
	Threshold float64
	// ThresholdSet reports that an operating threshold was genuinely in
	// force — fixed, calibrated, or snapshot-installed — so a calibrated
	// threshold of exactly 0 is distinguishable from score-only mode
	// instead of overloading the value.
	ThresholdSet bool
	// Flagged counts results over the threshold.
	Flagged int
	// Skipped counts records the source could not decode (e.g. truncated
	// or non-TCP pcap records).
	Skipped int
	// CalibrationConns and CalibrationSkipped report the calibration
	// source's corpus when WithThresholdFPR was used.
	CalibrationConns   int
	CalibrationSkipped int
	// WindowSpan is the backend's packets-per-window (for expanding window
	// indices to packet ranges).
	WindowSpan int
}

// calibrate resolves the operating threshold, scoring the calibration
// source with the given model if one was configured. It shares
// CalibrateBackend's single implementation, so WithThresholdFPR fails
// loudly on an empty or unreadable calibration corpus instead of
// deriving a silent +Inf threshold that would disable flagging forever.
func (p *Pipeline) calibrate(b Backend) (th float64, calN, calSkipped int, err error) {
	th = p.threshold
	if p.calibration == nil {
		return th, 0, 0, nil
	}
	cal, err := p.CalibrateBackend(b, p.fpr, p.calibration)
	if err != nil {
		return 0, 0, 0, err
	}
	return cal.Threshold, cal.Conns, cal.Skipped, nil
}

// Calibrate scores the calibration source with the pipeline's current
// model and freezes the outcome into a reusable snapshot: the operating
// threshold at the target FPR plus the benign-score reference
// distribution (the sketch drift monitors compare live traffic against).
// Persist it with SaveCalibrationFile and restore via WithCalibration.
func (p *Pipeline) Calibrate(fpr float64, src Source) (*Calibration, error) {
	return p.CalibrateBackend(p.snapshot(), fpr, src)
}

// CalibrateBackend is Calibrate against an explicit model — the serving
// layer calibrates an incoming model with it before atomically swapping
// the (model, threshold) pair in.
func (p *Pipeline) CalibrateBackend(b Backend, fpr float64, src Source) (*Calibration, error) {
	if !(fpr > 0 && fpr < 1) {
		return nil, fmt.Errorf("clap: Calibrate(%v): target FPR must be in (0, 1)", fpr)
	}
	if src == nil {
		return nil, errors.New("clap: Calibrate needs a calibration source")
	}
	if b == nil || !b.Trained() {
		return nil, errors.New("clap: Calibrate needs a trained backend")
	}
	benign, skipped, err := src.Connections(p.eng)
	if err != nil {
		return nil, fmt.Errorf("clap: reading calibration source: %w", err)
	}
	if len(benign) == 0 {
		return nil, errors.New("clap: calibration source produced no connections")
	}
	// Composite backends (the cascade) calibrate their internal stage
	// thresholds from the same corpus first, so the end-to-end scoring
	// below sees the routing that will serve.
	if sc, ok := b.(backend.StageCalibrator); ok {
		err := sc.CalibrateStages(benign, func(stage Backend, conns []*Connection) []float64 {
			return p.eng.ScoresBatched(stage, conns)
		})
		if err != nil {
			return nil, fmt.Errorf("clap: calibrating stages: %w", err)
		}
	}
	scores := p.eng.ScoresBatched(b, benign)
	ref := calib.NewSketch(0, 0)
	for _, s := range scores {
		ref.Add(s)
	}
	cal := &Calibration{
		Tag:       b.Tag(),
		FPR:       fpr,
		Threshold: ThresholdAtFPR(scores, fpr),
		Conns:     len(benign),
		Skipped:   skipped,
		Ref:       ref,
	}
	// A cascade's screened connections score as negative margins, so a
	// detection FPR target looser than the escalation budget would land
	// the operating threshold below zero — flagging traffic the verdict
	// stage never examined. Catch the misconfiguration with its cause
	// rather than letting Validate reject the bare negative number.
	if ef, ok := b.(interface{ EscalateFPR() float64 }); ok && cal.Threshold < 0 {
		return nil, fmt.Errorf(
			"clap: Calibrate(%v): detection FPR target exceeds the cascade's escalation budget %v — the threshold would flag screened connections the verdict stage never scored; raise -escalate-fpr to at least the detection FPR, or lower -fpr",
			fpr, ef.EscalateFPR())
	}
	if err := cal.Validate(); err != nil {
		return nil, err
	}
	// Calibration scored the corpus through the backend; scrub any
	// escalation counters it inflated so serving metrics reflect served
	// traffic only.
	if rc, ok := b.(interface{ ResetEscalationCounts() }); ok {
		rc.ResetEscalationCounts()
	}
	return cal, nil
}

// resultFor scores one connection from its precomputed window errors under
// the model that produced them. thSet marks a threshold genuinely in
// force even when its value is 0 (a calibrated threshold can legitimately
// be exactly 0); without it, th == 0 means score-only.
func (p *Pipeline) resultFor(b Backend, c *Connection, errs []float64, th float64, thSet bool) Result {
	score, peak := b.Summarize(errs)
	r := Result{Conn: c, Score: score, PeakWindow: peak}
	if (th > 0 || thSet) && score >= th {
		r.Flagged = true
	}
	if r.Flagged || p.keepErrors {
		if p.topN > 0 {
			r.TopWindows = core.TopWindows(errs, p.topN)
		}
		r.Errors = errs
	}
	return r
}

// Run reads the source, scores every connection through the engine, and
// emits each result to every sink in capture order (then Finish, in sink
// order). Sinks may be nil-free but are optional: forensic callers can
// work off the returned summary alone.
func (p *Pipeline) Run(src Source, sinks ...Sink) (*RunSummary, error) {
	// One snapshot for the whole batch: under a hot-swappable backend every
	// connection of a Run is scored by the same model.
	b := p.snapshot()
	th, calN, calSkipped, err := p.calibrate(b)
	if err != nil {
		return nil, err
	}
	conns, skipped, err := src.Connections(p.eng)
	if err != nil {
		return nil, fmt.Errorf("clap: reading source: %w", err)
	}
	errsAll := p.eng.WindowErrorsBatched(b, conns)
	// A threshold counts as "in force" when calibrated (WithThresholdFPR),
	// installed from a snapshot (WithCalibration), or fixed positive —
	// either way a value of exactly 0 still flags, it does not silently
	// fall back to score-only.
	thSet := p.calibration != nil || p.cal != nil || th > 0
	sum := &RunSummary{
		Results:            make([]Result, len(conns)),
		Threshold:          th,
		ThresholdSet:       thSet,
		Skipped:            skipped,
		CalibrationConns:   calN,
		CalibrationSkipped: calSkipped,
		WindowSpan:         b.WindowSpan(),
	}
	for i, c := range conns {
		r := p.resultFor(b, c, errsAll[i], th, thSet)
		errsAll[i] = nil
		if r.Flagged {
			sum.Flagged++
		}
		sum.Results[i] = r
		for _, s := range sinks {
			if err := s.Emit(r); err != nil {
				return nil, fmt.Errorf("clap: sink: %w", err)
			}
		}
	}
	for _, s := range sinks {
		if err := s.Finish(sum); err != nil {
			return nil, fmt.Errorf("clap: sink finish: %w", err)
		}
	}
	return sum, nil
}

// PipelineStream is the pipeline's online mode: connections are submitted
// as they close, scored concurrently by the engine, and emitted strictly
// in submission order. The operating threshold is live-adjustable
// (SetThreshold), and under a reload-safe HotBackend each connection is
// scored wholly by whichever model is current at its pickup — the serving
// substrate for clap-serve.
type PipelineStream struct {
	inner     *engine.StreamOf[Result]
	eng       *Engine
	threshold atomic.Uint64 // math.Float64bits

	// pair is non-nil when the backend is a reload-safe handle publishing
	// (model, threshold) pairs (backend.Hot). While the handle carries a
	// threshold, scoring pins model and threshold in ONE atomic load and
	// SetThreshold/Threshold route through the handle — so an atomic
	// recalibration (SwapPair) can never judge a connection with a
	// crossed (model, threshold) pairing. Without an installed pair
	// threshold the stream's own atomic governs, as before.
	pair backend.PairHandle

	// resolve, when set (NewStreamResolved), picks the pair handle for
	// EACH connection — multi-tenant serving resolves the owning
	// tenant's handle here, so one shared stream scores every tenant's
	// traffic while each verdict pins its own tenant's (model,
	// threshold) with the same single atomic load the global pair path
	// uses. A nil return falls back to the stream's own pair/threshold.
	resolve func(*Connection) backend.PairHandle

	// Batched-scoring occupancy accounting: windows actually scored vs.
	// the slots the micro-batches they rode had — the serving layer's
	// clap_serve_batch_fill gauge. batchSeq numbers the batched inference
	// runs so provenance records can cite which one carried a verdict.
	batchWindows atomic.Uint64
	batchSlots   atomic.Uint64
	batchSeq     atomic.Uint64
}

// StreamHooks instruments a pipeline stream with per-stage latencies; see
// engine.StreamHooks.
type StreamHooks = engine.StreamHooks

// StreamStats is one streamed connection's stage latency measurement.
type StreamStats = engine.StreamStats

// NewStream opens the pipeline in streaming mode. Threshold calibration
// (if configured) runs now, before the first Submit; emit then receives
// every submitted connection's Result in submission order on a single
// goroutine. Optional hooks observe per-stage latencies. Close the stream
// to drain it.
func (p *Pipeline) NewStream(emit func(Result), hooks ...StreamHooks) (*PipelineStream, error) {
	return p.newStream(nil, emit, hooks)
}

// NewStreamResolved is NewStream with per-connection pair resolution:
// resolve picks the reload-safe handle each connection's verdict pins
// its (model, threshold) from — the multi-tenant serving substrate,
// where connections from many tenants ride ONE stream (keeping the
// batched engine's micro-batches full across tenants) while each is
// judged by its own tenant's atomically-published pair. resolve runs on
// pool workers and must be safe for concurrent use; returning nil falls
// back to the pipeline backend's own handle, and Threshold/SetThreshold
// keep addressing that fallback handle (the default tenant).
func (p *Pipeline) NewStreamResolved(resolve func(*Connection) *HotBackend, emit func(Result), hooks ...StreamHooks) (*PipelineStream, error) {
	if resolve == nil {
		return nil, errors.New("clap: NewStreamResolved needs a resolver (use NewStream)")
	}
	return p.newStream(func(c *Connection) backend.PairHandle {
		if h := resolve(c); h != nil {
			return h
		}
		return nil
	}, emit, hooks)
}

func (p *Pipeline) newStream(resolve func(*Connection) backend.PairHandle, emit func(Result), hooks []StreamHooks) (*PipelineStream, error) {
	th, _, _, err := p.calibrate(p.snapshot())
	if err != nil {
		return nil, err
	}
	s := &PipelineStream{resolve: resolve, eng: p.eng}
	s.pair, _ = p.backend.(backend.PairHandle)
	s.threshold.Store(math.Float64bits(th))
	var h StreamHooks
	if len(hooks) > 0 {
		h = hooks[0]
	}
	emitFn := func(_ *Connection, r Result) { emit(r) }
	if p.eng.Lockstep() > 0 {
		// Grouped streaming: workers drain opportunistic groups so the
		// lockstep fleet and micro-batches fill across connections. Twice
		// the fleet width per group keeps rows refilling mid-group instead
		// of draining the fleet at every group boundary.
		width := 2 * p.eng.Lockstep()
		s.inner = engine.NewStreamOfGrouped(p.eng, width,
			func(cs []*Connection) []Result { return s.scoreGroup(p, cs) }, emitFn, h)
		return s, nil
	}
	score := func(c *Connection) Result {
		b, th, gen := s.pin(p, c)
		return s.scorePinned(p, b, th, gen, c)
	}
	s.inner = engine.NewStreamOfHooked(p.eng, score, emitFn, h)
	return s, nil
}

// scorePinned scores one streamed connection under an already-pinned
// (model, threshold, generation) triple — the per-connection scoring core
// shared by the solo and grouped stream paths.
func (s *PipelineStream) scorePinned(p *Pipeline, b Backend, th float64, gen uint64, c *Connection) Result {
	// Streams keep the historical threshold-0 = score-only contract:
	// SetThreshold(0) reverts to score-only, so thSet stays false here.
	if !p.prov {
		return p.resultFor(b, c, s.windowErrors(b, c, p.batch, nil), th, false)
	}
	// Provenance-armed path: bind the verdict to the pinned pair right
	// here, on the worker that pinned it — the same (model, threshold,
	// generation) view no concurrent reload can split.
	d := newDecision(b, th, gen, c)
	var errs []float64
	if rb, ok := b.(backend.Router); ok {
		// Cascades route internally; capture which stage settled the
		// verdict and by what stage-1 margin. The series is bit-identical
		// to WindowErrors — routed scoring IS the plain scoring path.
		var escalated bool
		errs, escalated, d.Stage1Margin = rb.WindowErrorsRouted(c)
		if escalated {
			d.Stage = obs.StageEscalated
		} else {
			d.Stage = obs.StageScreened
		}
	} else {
		errs = s.windowErrors(b, c, p.batch, d)
	}
	return p.finishProv(b, c, errs, th, d)
}

// newDecision starts a provenance record bound to one pinned pair.
func newDecision(b Backend, th float64, gen uint64, c *Connection) *obs.Decision {
	return &obs.Decision{
		Key:        c.Key.String(),
		Tenant:     c.Tenant,
		Source:     c.Source,
		Attack:     c.AttackName,
		Model:      b.Tag(),
		Generation: gen,
		Threshold:  th,
		Sampled:    c.TraceSampled,
		WindowSpan: b.WindowSpan(),
	}
}

// finishProv summarizes a provenance-armed verdict from its series and
// completes the decision record's scoring-side fields.
func (p *Pipeline) finishProv(b Backend, c *Connection, errs []float64, th float64, d *obs.Decision) Result {
	r := p.resultFor(b, c, errs, th, false)
	d.Score, d.Flagged = r.Score, r.Flagged
	if c.TraceSampled && r.Errors == nil {
		// Head-sampled deep trace: retain the series (and localization)
		// even for unflagged verdicts, so /v1/explain can reconstruct
		// them without re-scoring.
		if p.topN > 0 {
			r.TopWindows = core.TopWindows(errs, p.topN)
		}
		r.Errors = errs
	}
	r.Prov = d
	return r
}

// scoreGroup scores one drained group of streamed connections through the
// engine's cross-connection batched path. Each connection still pins its
// own (model, threshold, generation) — multi-tenant resolution works
// unchanged — and the group is partitioned by pinned model identity, so a
// lockstep fleet or micro-batch never mixes two models' arithmetic.
// Partitions that cannot group-score (provenance-armed routing backends,
// models without the capabilities) fall back to the per-connection core;
// results land in submission order regardless.
func (s *PipelineStream) scoreGroup(p *Pipeline, conns []*Connection) []Result {
	out := make([]Result, len(conns))
	pinB := make([]Backend, len(conns))
	pinTh := make([]float64, len(conns))
	pinGen := make([]uint64, len(conns))
	for i, c := range conns {
		pinB[i], pinTh[i], pinGen[i] = s.pin(p, c)
	}
	done := make([]bool, len(conns))
	idx := make([]int, 0, len(conns))
	for i := range conns {
		if done[i] {
			continue
		}
		b := pinB[i]
		idx = idx[:0]
		for j := i; j < len(conns); j++ {
			if !done[j] && pinB[j] == b {
				idx = append(idx, j)
				done[j] = true
			}
		}
		s.scorePartition(p, b, conns, idx, pinTh, pinGen, out)
	}
	return out
}

// scorePartition scores one same-model slice of a group, writing each
// result to its connection's original slot.
func (s *PipelineStream) scorePartition(p *Pipeline, b Backend, conns []*Connection, idx []int, pinTh []float64, pinGen []uint64, out []Result) {
	if _, isRouter := b.(backend.Router); isRouter && p.prov {
		// Provenance wants each verdict's own routing outcome (stage,
		// stage-1 margin); the routed per-connection path captures it.
		for _, j := range idx {
			out[j] = s.scorePinned(p, b, pinTh[j], pinGen[j], conns[j])
		}
		return
	}
	sub := make([]*Connection, len(idx))
	for n, j := range idx {
		sub[n] = conns[j]
	}
	series, ok := p.eng.GroupSeries(b, sub)
	if !ok {
		for _, j := range idx {
			out[j] = s.scorePinned(p, b, pinTh[j], pinGen[j], conns[j])
		}
		return
	}
	total := 0
	for _, e := range series {
		total += len(e)
	}
	var batchID uint64
	var fill float64
	if total > 0 {
		nb := (total + p.batch - 1) / p.batch
		s.batchWindows.Add(uint64(total))
		s.batchSlots.Add(uint64(nb * p.batch))
		batchID = s.batchSeq.Add(1)
		fill = float64(total) / float64(nb*p.batch)
	}
	for n, j := range idx {
		c, errs := conns[j], series[n]
		if !p.prov {
			out[j] = p.resultFor(b, c, errs, pinTh[j], false)
			continue
		}
		d := newDecision(b, pinTh[j], pinGen[j], c)
		d.BatchID, d.BatchFill = batchID, fill
		out[j] = p.finishProv(b, c, errs, pinTh[j], d)
	}
}

// windowErrors computes one streamed connection's anomaly series, riding
// the batched kernels (chunked at the pipeline's batch size) when the
// model supports them — bit-identical to the unbatched path either way.
// Scoring runs on pool workers concurrently; the accounting is atomic.
// When d is non-nil (provenance-armed streams), the verdict's batch
// placement — run id and slot occupancy — is recorded on it.
func (s *PipelineStream) windowErrors(b Backend, c *Connection, batch int, d *obs.Decision) []float64 {
	bs, ok := b.(backend.BatchScorer)
	if !ok || batch <= 1 {
		return b.WindowErrors(c)
	}
	wins := bs.Windows(c)
	if len(wins) == 0 {
		return []float64{}
	}
	errs := make([]float64, 0, len(wins))
	for lo := 0; lo < len(wins); lo += batch {
		hi := lo + batch
		if hi > len(wins) {
			hi = len(wins)
		}
		errs = append(errs, bs.ScoreWindows(wins[lo:hi])...)
	}
	if rec, ok := bs.(backend.BatchRecycler); ok {
		rec.RecycleWindows(wins)
	}
	nb := (len(wins) + batch - 1) / batch
	s.batchWindows.Add(uint64(len(wins)))
	s.batchSlots.Add(uint64(nb * batch))
	if d != nil {
		d.BatchID = s.batchSeq.Add(1)
		d.BatchFill = float64(len(wins)) / float64(nb*batch)
	}
	return errs
}

// BatchFill reports the mean occupancy of the batched inference passes
// this stream has run: 1 means every micro-batch was full, lower values
// mean short connections are padding out batches. 0 before any batched
// scoring (or with batching disabled).
func (s *PipelineStream) BatchFill() float64 {
	slots := s.batchSlots.Load()
	if slots == 0 {
		return 0
	}
	return float64(s.batchWindows.Load()) / float64(slots)
}

// LockstepFill reports fleet occupancy of the lockstep scheduler serving
// this stream — the fraction of fleet slots that held a live connection
// row across every lockstep step taken. The counters live on the
// pipeline's engine, so streams of one pipeline share them. 0 with
// lockstep disabled or before any lockstep work.
func (s *PipelineStream) LockstepFill() float64 { return s.eng.LockstepFill() }

// pin resolves the (model, threshold, generation) a connection is judged
// with: one atomic load from the connection's resolved pair handle (the
// owning tenant's, under NewStreamResolved), else from the stream's own
// pair handle when it carries a threshold, otherwise the model snapshot
// plus the stream's own atomic threshold. A resolved handle without an
// installed threshold scores threshold-free (score-only) rather than
// borrowing another handle's threshold. The generation rides the same
// single load as the pair, so provenance can bind all three without a
// second read a racing reload could land between; handles that don't
// publish a generation report 0.
func (s *PipelineStream) pin(p *Pipeline, c *Connection) (Backend, float64, uint64) {
	if s.resolve != nil {
		if h := s.resolve(c); h != nil {
			if g, ok := h.(backend.GenPairHandle); ok {
				b, th, gen, hasTh := g.CurrentPairGen()
				if !hasTh {
					th = 0
				}
				return b, th, gen
			}
			if b, th, ok := h.CurrentPair(); ok {
				return b, th, 0
			}
			return h.Current(), 0, 0
		}
	}
	if s.pair != nil {
		if g, ok := s.pair.(backend.GenPairHandle); ok {
			if b, th, gen, hasTh := g.CurrentPairGen(); hasTh {
				return b, th, gen
			}
		} else if b, th, ok := s.pair.CurrentPair(); ok {
			return b, th, 0
		}
	}
	return p.snapshot(), math.Float64frombits(s.threshold.Load()), 0
}

// Threshold reports the stream's current operating threshold (the pair
// handle's, when the backend carries one).
func (s *PipelineStream) Threshold() float64 {
	if s.pair != nil {
		if _, th, ok := s.pair.CurrentPair(); ok {
			return th
		}
	}
	return math.Float64frombits(s.threshold.Load())
}

// SetThreshold adjusts the operating threshold live — the /v1/threshold
// knob of the serving layer. Connections already scored keep their
// verdicts; connections picked up after the store see the new value. th
// must be finite and >= 0 (0 reverts to score-only); NaN and ±Inf are
// rejected like everywhere else a threshold enters. Under a pair handle
// the update installs through it, keeping (model, threshold) atomic.
func (s *PipelineStream) SetThreshold(th float64) error {
	if err := validThreshold("SetThreshold", th); err != nil {
		return err
	}
	if s.pair != nil {
		return s.pair.SetThreshold(th)
	}
	s.threshold.Store(math.Float64bits(th))
	return nil
}

// InFlight reports how many submitted connections await scoring or emit.
func (s *PipelineStream) InFlight() int { return s.inner.InFlight() }

// Submit queues one connection for scoring; results arrive at emit in
// submission order. Not safe for concurrent Submit calls.
func (s *PipelineStream) Submit(c *Connection) { s.inner.Submit(c) }

// Close drains the stream: every submitted connection is scored and
// emitted before Close returns.
func (s *PipelineStream) Close() { s.inner.Close() }
