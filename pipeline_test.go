package clap

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// One shared tiny backend for the pipeline tests.
var (
	pipeOnce sync.Once
	pipeBk   Backend
	pipeErr  error
)

func pipelineBackend(t *testing.T) Backend {
	t.Helper()
	pipeOnce.Do(func() {
		b, err := NewBackend(BackendCLAP)
		if err != nil {
			pipeErr = err
			return
		}
		cb := b.(*CLAPBackend)
		cb.Cfg.RNNEpochs, cb.Cfg.AEEpochs = 4, 6
		pipeErr = b.Train(GenerateBenign(80, 1), func(string, ...any) {})
		pipeBk = b
	})
	if pipeErr != nil {
		t.Fatalf("training pipeline backend: %v", pipeErr)
	}
	return pipeBk
}

// suspectSource injects the motivating example into half a fresh corpus.
// The shared fixture is deliberately under-trained (seconds, not minutes),
// so tests that need flagged connections calibrate at a loose FPR; the
// decisively-trained flagging path is covered by the cmd integration
// tests.
func suspectSource() Source {
	return AttackCorpus(TrafficGen(24, 42), "GFW: Injected RST Bad TCP-Checksum/MD5-Option", 0.5, 7)
}

// TestPipelineBitIdenticalAcrossWorkers is the acceptance contract:
// pipeline scores (and the rendered text report) are byte-for-byte
// identical to the serial detector path at any worker or shard count.
func TestPipelineBitIdenticalAcrossWorkers(t *testing.T) {
	bk := pipelineBackend(t)
	det := bk.(*CLAPBackend).Detector()

	// Serial reference: the pre-redesign scoring path.
	conns, _, err := suspectSource().Connections(NewEngine(1))
	if err != nil {
		t.Fatal(err)
	}
	wantScores := make([]float64, len(conns))
	for i, c := range conns {
		wantScores[i] = det.Score(c).Adversarial
	}

	var refReport []byte
	for _, workers := range []int{1, 4, 8} {
		p, err := NewPipeline(WithBackend(bk), WithWorkers(workers), WithShards(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		sum, err := p.Run(suspectSource(), NewTextReport(&buf, true))
		if err != nil {
			t.Fatal(err)
		}
		if len(sum.Results) != len(conns) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(sum.Results), len(conns))
		}
		for i, r := range sum.Results {
			if r.Score != wantScores[i] {
				t.Fatalf("workers=%d: conn %d score %v != serial %v", workers, i, r.Score, wantScores[i])
			}
		}
		if refReport == nil {
			refReport = buf.Bytes()
		} else if !bytes.Equal(refReport, buf.Bytes()) {
			t.Fatalf("workers=%d: text report diverged from workers=1 output", workers)
		}
	}
	if !strings.Contains(string(refReport), "top connections by adversarial score:") {
		t.Fatalf("score-only report missing ranking:\n%s", refReport)
	}
}

// TestPipelineBitIdenticalAcrossBatchSizes pins the batched-inference
// contract at the facade: Run and NewStream produce the same scores and
// window-error series at every batch × worker combination, equal to the
// serial detector path — batching changes the wall clock, never the bits.
func TestPipelineBitIdenticalAcrossBatchSizes(t *testing.T) {
	bk := pipelineBackend(t)
	det := bk.(*CLAPBackend).Detector()

	conns, _, err := suspectSource().Connections(NewEngine(1))
	if err != nil {
		t.Fatal(err)
	}
	wantScores := make([]float64, len(conns))
	wantErrs := make([][]float64, len(conns))
	for i, c := range conns {
		wantScores[i] = det.Score(c).Adversarial
		wantErrs[i] = det.WindowErrors(c)
	}

	for _, workers := range []int{1, 4} {
		for _, batch := range []int{1, 3, 8, 64} {
			p, err := NewPipeline(WithBackend(bk), WithWorkers(workers),
				WithBatchSize(batch), WithWindowErrors(true))
			if err != nil {
				t.Fatal(err)
			}
			if p.BatchSize() != batch {
				t.Fatalf("BatchSize() = %d, want %d", p.BatchSize(), batch)
			}
			sum, err := p.Run(suspectSource())
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range sum.Results {
				if r.Score != wantScores[i] {
					t.Fatalf("workers=%d batch=%d: conn %d score %v != serial %v",
						workers, batch, i, r.Score, wantScores[i])
				}
				if len(r.Errors) != len(wantErrs[i]) {
					t.Fatalf("workers=%d batch=%d: conn %d has %d window errors, serial %d",
						workers, batch, i, len(r.Errors), len(wantErrs[i]))
				}
				for w := range r.Errors {
					if r.Errors[w] != wantErrs[i][w] {
						t.Fatalf("workers=%d batch=%d: conn %d window %d diverged",
							workers, batch, i, w)
					}
				}
			}

			// Streaming mode batches within each connection; same bits.
			var streamed []float64
			s, err := p.NewStream(func(r Result) { streamed = append(streamed, r.Score) })
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range conns {
				s.Submit(c)
			}
			s.Close()
			for i, got := range streamed {
				if got != wantScores[i] {
					t.Fatalf("workers=%d batch=%d: streamed conn %d score %v != serial %v",
						workers, batch, i, got, wantScores[i])
				}
			}
			fill := s.BatchFill()
			if batch == 1 && fill != 0 {
				t.Fatalf("batch=1: BatchFill = %v, want 0 (unbatched)", fill)
			}
			if batch > 1 && (fill <= 0 || fill > 1) {
				t.Fatalf("batch=%d: BatchFill = %v, want in (0, 1]", batch, fill)
			}
		}
	}
}

// TestPipelineCalibratedThresholdFlags exercises the WithThresholdFPR path
// end to end: calibration, flagging, localization and the flagged text
// report.
func TestPipelineCalibratedThresholdFlags(t *testing.T) {
	bk := pipelineBackend(t)
	p, err := NewPipeline(
		WithBackend(bk),
		WithThresholdFPR(0.25, TrafficGen(80, 1)),
		WithTopN(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sum, err := p.Run(suspectSource(), NewTextReport(&buf, false))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Threshold <= 0 {
		t.Fatalf("calibration produced threshold %v", sum.Threshold)
	}
	if sum.CalibrationConns != 80 {
		t.Errorf("calibration corpus = %d connections, want 80", sum.CalibrationConns)
	}
	if sum.Flagged == 0 {
		t.Fatal("nothing flagged at a 25% FPR threshold")
	}
	out := buf.String()
	if !strings.Contains(out, "connections flagged at threshold") {
		t.Fatalf("flagged report missing summary line:\n%s", out)
	}
	if !strings.Contains(out, "suspicious window") {
		t.Fatalf("flagged report missing localization:\n%s", out)
	}
	flagged := 0
	for _, r := range sum.Results {
		if !r.Flagged {
			if r.Errors != nil {
				t.Error("unflagged result kept its error series without WithWindowErrors")
			}
			continue
		}
		flagged++
		if r.Score < sum.Threshold {
			t.Errorf("flagged result under threshold: %v < %v", r.Score, sum.Threshold)
		}
		if len(r.TopWindows) == 0 || len(r.TopWindows) > 3 {
			t.Errorf("flagged result has %d localized windows, want 1..3", len(r.TopWindows))
		}
		if len(r.Errors) == 0 {
			t.Error("flagged result lost its error series")
		}
	}
	if flagged != sum.Flagged {
		t.Errorf("summary counts %d flagged, results say %d", sum.Flagged, flagged)
	}
}

func TestPipelineJSONSink(t *testing.T) {
	bk := pipelineBackend(t)
	p, err := NewPipeline(WithBackend(bk), WithThreshold(0.001))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sum, err := p.Run(suspectSource(), NewJSONLines(&buf))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(sum.Results)+1 {
		t.Fatalf("%d JSON lines for %d results (+1 summary)", len(lines), len(sum.Results))
	}
	for i, l := range lines[:len(lines)-1] {
		var rec struct {
			Key        string  `json:"key"`
			Score      float64 `json:"score"`
			Flagged    bool    `json:"flagged"`
			PeakWindow int     `json:"peak_window"`
		}
		if err := json.Unmarshal([]byte(l), &rec); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, l)
		}
		if rec.Key == "" {
			t.Fatalf("line %d missing key: %s", i, l)
		}
		if rec.Score != sum.Results[i].Score || rec.Flagged != sum.Results[i].Flagged {
			t.Fatalf("line %d disagrees with summary: %s", i, l)
		}
	}
	var trailer struct {
		Summary     bool `json:"summary"`
		Connections int  `json:"connections"`
		Flagged     int  `json:"flagged"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil || !trailer.Summary {
		t.Fatalf("missing summary trailer: %v %s", err, lines[len(lines)-1])
	}
	if trailer.Connections != len(sum.Results) || trailer.Flagged != sum.Flagged {
		t.Fatalf("summary trailer disagrees: %+v vs %d/%d", trailer, len(sum.Results), sum.Flagged)
	}
}

func TestPipelineStreamMatchesRun(t *testing.T) {
	bk := pipelineBackend(t)
	p, err := NewPipeline(WithBackend(bk), WithThresholdFPR(0.25, TrafficGen(80, 1)))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := p.Run(suspectSource())
	if err != nil {
		t.Fatal(err)
	}

	conns, _, _ := suspectSource().Connections(p.Engine())
	var streamed []Result
	s, err := p.NewStream(func(r Result) { streamed = append(streamed, r) })
	if err != nil {
		t.Fatal(err)
	}
	if s.Threshold() != sum.Threshold {
		t.Fatalf("stream threshold %v != run threshold %v", s.Threshold(), sum.Threshold)
	}
	for _, c := range conns {
		s.Submit(c)
	}
	s.Close()
	if len(streamed) != len(sum.Results) {
		t.Fatalf("streamed %d results, run produced %d", len(streamed), len(sum.Results))
	}
	for i := range streamed {
		if streamed[i].Score != sum.Results[i].Score || streamed[i].Flagged != sum.Results[i].Flagged {
			t.Fatalf("stream result %d diverged from batch run", i)
		}
	}
}

// TestPipelineOptionValidation: invalid option values fail NewPipeline
// loudly instead of being silently coerced.
func TestPipelineOptionValidation(t *testing.T) {
	bk := pipelineBackend(t)
	cases := []struct {
		name string
		opt  PipelineOption
		want string
	}{
		{"zero workers", WithWorkers(0), "worker count must be positive"},
		{"negative workers", WithWorkers(-2), "worker count must be positive"},
		{"zero shards", WithShards(0), "shard count must be positive"},
		{"negative shards", WithShards(-1), "shard count must be positive"},
		{"negative topN", WithTopN(-1), "window count must be >= 0"},
		{"negative threshold", WithThreshold(-0.5), "threshold must be finite and >= 0"},
		{"NaN threshold", WithThreshold(math.NaN()), "threshold must be finite and >= 0"},
		{"+Inf threshold", WithThreshold(math.Inf(1)), "threshold must be finite and >= 0"},
		{"-Inf threshold", WithThreshold(math.Inf(-1)), "threshold must be finite and >= 0"},
		{"zero batch", WithBatchSize(0), "batch size must be >= 1"},
		{"negative batch", WithBatchSize(-8), "batch size must be >= 1"},
		{"zero FPR", WithThresholdFPR(0, TrafficGen(5, 1)), "FPR must be in (0, 1)"},
		{"FPR of one", WithThresholdFPR(1, TrafficGen(5, 1)), "FPR must be in (0, 1)"},
		{"FPR above one", WithThresholdFPR(1.5, TrafficGen(5, 1)), "FPR must be in (0, 1)"},
		{"NaN FPR", WithThresholdFPR(math.NaN(), TrafficGen(5, 1)), "FPR must be in (0, 1)"},
		{"nil calibration", WithThresholdFPR(0.1, nil), "needs a calibration source"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewPipeline(WithBackend(bk), tc.opt)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want it to mention %q", err, tc.want)
			}
		})
	}
	// Valid boundary values still construct.
	if _, err := NewPipeline(WithBackend(bk), WithWorkers(1), WithShards(1),
		WithTopN(0), WithThreshold(0)); err != nil {
		t.Fatalf("valid boundary options rejected: %v", err)
	}
}

// TestPipelineStreamSetThreshold: the stream's operating threshold is
// live-adjustable and bad values are rejected.
func TestPipelineStreamSetThreshold(t *testing.T) {
	bk := pipelineBackend(t)
	p, err := NewPipeline(WithBackend(bk), WithThreshold(0.5))
	if err != nil {
		t.Fatal(err)
	}
	var flags []bool
	s, err := p.NewStream(func(r Result) { flags = append(flags, r.Flagged) })
	if err != nil {
		t.Fatal(err)
	}
	if s.Threshold() != 0.5 {
		t.Fatalf("threshold = %v, want 0.5", s.Threshold())
	}
	if err := s.SetThreshold(-1); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if err := s.SetThreshold(math.NaN()); err == nil {
		t.Fatal("NaN threshold accepted")
	}
	// +Inf would silently disable flagging forever while looking set.
	if err := s.SetThreshold(math.Inf(1)); err == nil {
		t.Fatal("+Inf threshold accepted")
	}
	if got := s.Threshold(); got != 0.5 {
		t.Fatalf("threshold changed to %v by rejected values", got)
	}
	// A tiny positive threshold flags everything a benign corpus scores.
	if err := s.SetThreshold(1e-12); err != nil {
		t.Fatal(err)
	}
	conns := GenerateBenign(4, 8)
	for _, c := range conns {
		s.Submit(c)
	}
	s.Close()
	if len(flags) != len(conns) {
		t.Fatalf("emitted %d results, want %d", len(flags), len(conns))
	}
	for i, f := range flags {
		if !f {
			t.Errorf("conn %d not flagged at threshold 1e-12", i)
		}
	}
}

// TestPipelineHotBackendStream: a Pipeline over a HotBackend handle swaps
// models mid-stream; every connection is scored wholly by one model.
func TestPipelineHotBackendStream(t *testing.T) {
	bk := pipelineBackend(t)
	hot, err := NewHotBackend(bk)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(WithBackend(hot))
	if err != nil {
		t.Fatal(err)
	}

	// A second model of a different tag to swap to.
	b2, err := NewBackend(BackendBaseline1)
	if err != nil {
		t.Fatal(err)
	}
	cb := b2.(*CLAPBackend)
	cb.Cfg.RNNEpochs, cb.Cfg.AEEpochs = 2, 3
	if err := b2.Train(GenerateBenign(30, 2), func(string, ...any) {}); err != nil {
		t.Fatal(err)
	}

	conns := GenerateBenign(12, 55)
	var scores []float64
	s, err := p.NewStream(func(r Result) { scores = append(scores, r.Score) })
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range conns {
		if i == len(conns)/2 {
			if _, err := hot.Swap(b2); err != nil {
				t.Fatal(err)
			}
		}
		s.Submit(c)
	}
	s.Close()
	if hot.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", hot.Generation())
	}
	if len(scores) != len(conns) {
		t.Fatalf("emitted %d results, want %d", len(scores), len(conns))
	}
	// Every score must match one of the two models' serial outputs —
	// never a mixture.
	for i, c := range conns {
		s1, s2 := bk.ScoreConn(c), b2.ScoreConn(c)
		if scores[i] != s1 && scores[i] != s2 {
			t.Fatalf("conn %d score %v matches neither model (%v / %v)", i, scores[i], s1, s2)
		}
	}
	// An untrained swap is rejected and leaves the current model serving.
	untrained, _ := NewBackend(BackendCLAP)
	if _, err := hot.Swap(untrained); err == nil {
		t.Fatal("untrained hot swap accepted")
	}
	if hot.Generation() != 1 {
		t.Fatalf("failed swap bumped generation to %d", hot.Generation())
	}
}

func TestPipelineNeedsBackend(t *testing.T) {
	if _, err := NewPipeline(); err == nil {
		t.Fatal("NewPipeline without a backend should fail")
	}
	untrained, err := NewBackend(BackendCLAP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPipeline(WithBackend(untrained)); err == nil || !strings.Contains(err.Error(), "not trained") {
		t.Fatalf("NewPipeline with an untrained backend: err = %v", err)
	}
}

// TestPipelineKitsuneBackend runs the whole pipeline over the promoted
// Kitsune backend — the point of the redesign: nothing but WithBackend
// changes.
func TestPipelineKitsuneBackend(t *testing.T) {
	b, err := NewBackend(BackendKitsune)
	if err != nil {
		t.Fatal(err)
	}
	b.(*KitsuneBackend).Cfg.FMWindow = 200
	if err := b.Train(GenerateBenign(30, 1), func(string, ...any) {}); err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(WithBackend(b), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := p.Run(suspectSource())
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Results) == 0 {
		t.Fatal("no results")
	}
	if sum.WindowSpan != 1 {
		t.Errorf("kitsune window span = %d, want 1 (per-packet)", sum.WindowSpan)
	}
	for i, r := range sum.Results {
		if want := b.ScoreConn(r.Conn); r.Score != want {
			t.Fatalf("conn %d: pipeline score %v != serial kitsune score %v", i, r.Score, want)
		}
	}
}

func TestBackendPersistenceThroughFacade(t *testing.T) {
	bk := pipelineBackend(t)
	dir := t.TempDir()
	path := dir + "/model.bin"
	if err := SaveBackendFile(path, bk); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBackendFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag() != BackendCLAP {
		t.Fatalf("loaded tag %q", got.Tag())
	}
	probe := GenerateBenign(3, 77)
	for i, c := range probe {
		if got.ScoreConn(c) != bk.ScoreConn(c) {
			t.Fatalf("conn %d: facade round-trip changed the score", i)
		}
	}
}

// TestPipelineCalibrationSnapshot pins the explicit calibration flow:
// Pipeline.Calibrate derives the same threshold WithThresholdFPR would,
// the snapshot round-trips through disk byte-compatibly, WithCalibration
// reproduces the calibrated run's verdicts exactly, and mismatched or
// invalid snapshots fail loudly.
func TestPipelineCalibrationSnapshot(t *testing.T) {
	bk := pipelineBackend(t)
	base, err := NewPipeline(WithBackend(bk), WithThresholdFPR(0.25, TrafficGen(80, 1)))
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run(suspectSource())
	if err != nil {
		t.Fatal(err)
	}

	p, err := NewPipeline(WithBackend(bk))
	if err != nil {
		t.Fatal(err)
	}
	cal, err := p.Calibrate(0.25, TrafficGen(80, 1))
	if err != nil {
		t.Fatal(err)
	}
	if cal.Threshold != want.Threshold {
		t.Fatalf("Calibrate threshold %v != WithThresholdFPR threshold %v", cal.Threshold, want.Threshold)
	}
	if cal.Tag != bk.Tag() || cal.FPR != 0.25 || cal.Conns != 80 {
		t.Fatalf("snapshot metadata: %+v", cal)
	}
	if cal.Ref == nil || cal.Ref.Count() != 80 {
		t.Fatalf("reference sketch holds %v scores, want 80", cal.Ref.Count())
	}

	// Disk round trip, then a pipeline driven purely by the snapshot.
	path := t.TempDir() + "/clap.model.calib"
	if err := SaveCalibrationFile(path, cal); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCalibrationFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Writes are temp+rename: a failed save must leave the existing
	// snapshot untouched, never a truncated file that loads as nothing.
	if err := SaveCalibrationFile(path, &Calibration{}); err == nil {
		t.Fatal("saving an invalid snapshot succeeded")
	}
	if again, err := LoadCalibrationFile(path); err != nil || again.Threshold != back.Threshold {
		t.Fatalf("failed save disturbed the existing snapshot: %v", err)
	}
	p2, err := NewPipeline(WithBackend(bk), WithCalibration(back))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p2.Run(suspectSource())
	if err != nil {
		t.Fatal(err)
	}
	if got.Threshold != want.Threshold || got.Flagged != want.Flagged {
		t.Fatalf("snapshot-driven run: threshold %v flagged %d, want %v/%d",
			got.Threshold, got.Flagged, want.Threshold, want.Flagged)
	}
	for i := range want.Results {
		if got.Results[i].Score != want.Results[i].Score || got.Results[i].Flagged != want.Results[i].Flagged {
			t.Fatalf("conn %d: snapshot-driven verdict (%v, %v) != calibrated (%v, %v)", i,
				got.Results[i].Score, got.Results[i].Flagged,
				want.Results[i].Score, want.Results[i].Flagged)
		}
	}

	// Error paths: bad targets, nil sources, tag mismatches.
	if _, err := p.Calibrate(0, TrafficGen(5, 1)); err == nil {
		t.Error("Calibrate(0) succeeded")
	}
	// The legacy WithThresholdFPR path shares the same gate: an empty
	// calibration corpus must fail the run, never derive a silent +Inf
	// threshold that disables flagging forever.
	pe, err := NewPipeline(WithBackend(bk), WithThresholdFPR(0.25, Conns()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pe.Run(suspectSource()); err == nil ||
		!strings.Contains(err.Error(), "no connections") {
		t.Errorf("empty calibration corpus: Run returned %v, want loud failure", err)
	}
	if _, err := p.Calibrate(0.5, nil); err == nil {
		t.Error("Calibrate(nil source) succeeded")
	}
	if _, err := p.Calibrate(0.5, Conns()); err == nil {
		t.Error("Calibrate over an empty corpus succeeded")
	}
	other := back
	mismatch := *other
	mismatch.Tag = "kitsune"
	if _, err := NewPipeline(WithBackend(bk), WithCalibration(&mismatch)); err == nil ||
		!strings.Contains(err.Error(), "snapshot is for backend") {
		t.Errorf("tag-mismatched snapshot accepted: %v", err)
	}
	if _, err := NewPipeline(WithBackend(bk), WithCalibration(nil)); err == nil {
		t.Error("nil snapshot accepted")
	}
}

func TestSourcesReportSkipped(t *testing.T) {
	// A pcap with a trailing truncated record must surface the skip count
	// through the Source, not hide it.
	conns := GenerateBenign(5, 3)
	var buf bytes.Buffer
	if err := WritePCAP(&buf, conns); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := PCAPStream(&buf).Connections(nil)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("clean capture reported %d skipped", skipped)
	}
	if len(got) < len(conns) {
		t.Errorf("read %d connections, wrote %d", len(got), len(conns))
	}

	if _, _, err := PCAPFile("/definitely/not/here.pcap").Connections(nil); err == nil {
		t.Error("missing pcap file should error")
	}
	if _, _, err := AttackCorpus(TrafficGen(2, 1), "no such strategy", 1, 1).Connections(nil); err == nil {
		t.Error("unknown strategy should error")
	}
}
