module clap

go 1.22
