// Package clap is a from-scratch Go reproduction of CLAP (Context Learning
// based Adversarial Protection), the DPI-evasion-attack detector of
//
//	Zhu et al., "You Do (Not) Belong Here: Detecting DPI Evasion Attacks
//	with Context Learning", CoNEXT 2020.
//
// CLAP learns the benign "packet context" of TCP connections — the
// inter-relationships among the header fields of one packet (intra-packet
// context) and across the packets of a connection (inter-packet context) —
// from benign traffic only, and flags connections whose context profiles
// violate the learned joint distribution. See DESIGN.md for the system
// inventory, the experiment index, and the parallel scoring engine's
// design.
//
// The root package is a facade over the internal implementation packages:
//
//	internal/packet     TCP/IPv4 codec
//	internal/pcapio     pcap reader/writer
//	internal/flow       connection assembly
//	internal/tcpstate   reference conntrack-style endhost (label oracle)
//	internal/trafficgen synthetic MAWI-like benign traffic
//	internal/attacks    the 73-strategy evasion corpus
//	internal/dpi        GFW/Zeek/Snort models + divergence checking
//	internal/nn         GRU + autoencoder substrate
//	internal/features   Table 7 feature schema
//	internal/core       the CLAP pipeline
//	internal/backend    detection contract + named backend registry
//	internal/engine     sharded worker-pool scoring engine
//	internal/kitsune    Baseline #2 (ensemble-AE IDS), a first-class backend
//	internal/metrics    AUC/EER/Top-N
//	internal/eval       experiment harness (tables & figures)
//	internal/serve      clap-serve: the always-on online detection daemon
//
// Quickstart — train any registered backend (clap, baseline1, kitsune) and
// deploy it through the backend-agnostic Pipeline:
//
//	b, _ := clap.NewBackend("clap")         // or "baseline1", "kitsune"
//	_ = b.Train(clap.GenerateBenign(500, 1), func(string, ...any) {})
//	p, _ := clap.NewPipeline(
//	        clap.WithBackend(b),
//	        clap.WithThresholdFPR(0.01, clap.TrafficGen(200, 5)),
//	)
//	summary, _ := p.Run(clap.PCAPFile("suspect.pcap"),
//	        clap.NewTextReport(os.Stdout, false))
//
// For an always-on deployment, clap-serve wraps the same pipeline in a
// long-running daemon: live ingest (tail a growing pcap, read a pcap
// pipe, or synthetic soak load), Prometheus metrics, flagged-connection
// and threshold endpoints, and hot model reload over HTTP or SIGHUP —
// see DESIGN.md §7. Quickstart:
//
//	clap-train -in benign.pcap -model clap.model
//	clap-serve -model clap.model -tail /var/run/capture.pcap \
//	        -calibrate benign.pcap -fpr 0.01 -alerts alerts.log
//	curl localhost:8080/healthz
//	curl localhost:8080/metrics
//	curl localhost:8080/v1/flagged?n=10
//	curl -X PUT  -d '{"threshold":0.08}'     localhost:8080/v1/threshold
//	curl -X POST -d '{"path":"retrained.model"}' localhost:8080/v1/reload
//
// The serving substrate is reusable from the library too: ServeSource is
// the streaming ingest contract (TailPCAP, FollowPCAP, Soak, Replay),
// NewHotBackend wraps any backend in a reload-safe atomic handle, a
// PipelineStream's threshold is live-adjustable via SetThreshold, and
// NewDedupAlertLog hardens the alert log for continuous operation.
//
// Every verdict can explain itself: -trace-sample arms the provenance
// layer (DESIGN.md §12), attaching to each verdict the (model tag,
// generation, threshold) it was judged under, its cascade stage and
// micro-batch placement, and per-stage latencies — and retaining the
// full per-window error series for every flagged connection plus a
// deterministic sample of the rest. -debug-addr adds a private pprof
// listener. Tracing quickstart:
//
//	clap-serve -model clap.model -tail capture.pcap \
//	        -trace-sample 100 -debug-addr 127.0.0.1:6060
//	curl localhost:8080/v1/trace?n=10         # recent decision records
//	curl "localhost:8080/v1/explain?key=1.2.3.4:555%20%3E%205.6.7.8:80"
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile
//
// One daemon can serve a fleet: repeatable -tenant flags add named
// tenants, each owning its model, threshold, calibration and fair-share
// quota while sharing the batched scoring engine, and the ops API scopes
// by ?tenant= — see DESIGN.md §11. Multi-tenant quickstart:
//
//	clap-serve -model clap.model -tail core.pcap \
//	        -tenant edge=edge.model:0.08 \
//	        -tenant-source edge=tail:/var/run/edge.pcap \
//	        -tenant-quota edge=64:200:50
//	curl localhost:8080/v1/tenants
//	curl "localhost:8080/v1/summary?tenant=edge"
//	curl -X POST -d '{"path":"edge2.model"}' \
//	        "localhost:8080/v1/reload?tenant=edge"
//
// Long-running deployments drift: the benign score distribution shifts
// and the calibrated threshold silently stops meaning its target FPR.
// The calibration subsystem (DESIGN.md §9) detects and fixes that.
// Calibrate freezes a snapshot — threshold plus the benign-score
// reference distribution as a deterministic quantile Sketch — which
// clap-serve persists alongside the model and compares live traffic
// against, exposing clap_serve_drift / clap_serve_operating_fpr gauges,
// /v1/drift, and drift alerts; /v1/reload then re-derives the threshold
// for the incoming model and swaps {model, threshold} in one atomic
// transaction. Drift-aware serving quickstart:
//
//	clap-serve -model clap.model -tail capture.pcap \
//	        -calibrate benign.pcap -fpr 0.01 \
//	        -drift-window 256 -drift-max-shift 0.5 -alerts alerts.log
//	curl localhost:8080/v1/drift                 # shift + operating FPR
//	curl -X POST -d '{"calibration":"live"}' \
//	        localhost:8080/v1/reload             # recalibrate in place
//	curl -X POST \
//	  -d '{"path":"retrained.model","calibration":"benign.pcap","fpr":0.01}' \
//	        localhost:8080/v1/reload             # swap model+threshold atomically
//
// And from the library:
//
//	p, _ := clap.NewPipeline(clap.WithBackend(b))
//	cal, _ := p.Calibrate(0.01, clap.PCAPFile("benign.pcap"))
//	_ = clap.SaveCalibrationFile("clap.model.calib", cal)
//	p2, _ := clap.NewPipeline(clap.WithBackend(b), clap.WithCalibration(cal))
//
// The CLAP-native API remains for direct use:
//
//	det, _ := clap.Train(benign, clap.DefaultConfig(), nil)
//	score := det.Score(suspect)            // adversarial score (§3.3(d))
//	windows := det.Localize(suspect, 5)    // forensic localization
//
// For batch or streaming workloads, route scoring through the parallel
// engine — results are bit-identical to the serial path at any worker
// count:
//
//	eng := clap.NewEngine(0) // 0 = all cores
//	scores := eng.ScoreAll(det, conns)
//
// Scoring through the Pipeline (or clap-detect/clap-serve) also batches
// inference on capable backends: stacked-profile windows from many
// connections ride one matrix-matrix autoencoder pass instead of one
// matrix-vector pass each — ≥2× single-core throughput for CLAP with
// bit-identical scores (DESIGN.md §8). WithBatchSize (or the CLIs'
// -batch flag) tunes the micro-batch size; 1 disables batching.
//
// WithLockstep(k) (or the CLIs' -lockstep flag; 0 disables, -1 on the
// CLIs selects the bench-tuned DefaultLockstep) additionally steps the
// GRU recurrence across k connections at once: k hidden states advance
// as the rows of one matrix-matrix pass per gate, with a ragged-batch
// scheduler retiring finished connections and refilling rows mid-flight
// (DESIGN.md §13). Scores stay bit-identical to the serial path — the
// fleet only reorders which connection steps when, never the arithmetic
// inside any one connection — and with lockstep off every code path and
// served byte is identical to builds before the feature:
//
//	p, _ := clap.NewPipeline(
//	        clap.WithBackend(b),
//	        clap.WithLockstep(clap.DefaultLockstep))
//
// When CLAP's accuracy is needed at closer to Baseline #1's throughput,
// tier the two (DESIGN.md §10): a cascade screens every connection with
// the cheap backend and escalates only the suspicious tail to CLAP, whose
// scores on escalated connections are bit-identical to running CLAP
// alone. Calibration composes — one benign corpus sets both the
// escalation threshold (at the escalate-FPR) and the end-to-end operating
// threshold. Quickstart:
//
//	cheap, _ := clap.NewBackend("baseline1")
//	expensive, _ := clap.NewBackend("clap")
//	logf := func(string, ...any) {}
//	_ = cheap.Train(benign, logf)
//	_ = expensive.Train(benign, logf)
//	p, _ := clap.NewPipeline(
//	        clap.WithCascade(cheap, expensive, 0.05), // ≤5% of benign escalates
//	        clap.WithThresholdFPR(0.01, clap.PCAPFile("benign.pcap")),
//	)
//	summary, _ := p.Run(clap.PCAPFile("suspect.pcap"), clap.NewTextReport(os.Stdout, false))
//
// or from the CLIs: clap-train -backend cascade:baseline1+clap, then
// clap-detect/clap-serve with -escalate-fpr; clap-serve exports
// clap_serve_cascade_escalated_total and the escalation fraction, and
// hot-reloads the expensive stage alone when the incoming model matches
// its tag.
package clap

import (
	"io"
	"os"
	"path/filepath"

	"clap/internal/attacks"
	"clap/internal/backend"
	"clap/internal/calib"
	"clap/internal/core"
	"clap/internal/dpi"
	"clap/internal/engine"
	"clap/internal/flow"
	"clap/internal/kitsune"
	"clap/internal/metrics"
	"clap/internal/obs"
	"clap/internal/pcapio"
	"clap/internal/trafficgen"
)

// Version identifies this build of the library and its CLIs — surfaced
// in clap-serve's /healthz JSON and the clap_build_info metric, so a
// fleet operator can tell which build produced a verdict or an
// exposition.
const Version = "0.9.0"

// Re-exported core types. Aliases keep the internal packages private while
// giving users one coherent import.
type (
	// Detector is a trained CLAP instance (RNN + autoencoder + feature
	// profile).
	Detector = core.Detector
	// Config carries the pipeline hyper-parameters (Table 6).
	Config = core.Config
	// Score is a connection's verification result.
	Score = core.Score
	// Connection is a capture-ordered train of TCP packets between two
	// endpoints.
	Connection = flow.Connection
	// Strategy is one DPI evasion attack from the 73-strategy corpus.
	Strategy = attacks.Strategy
	// DivergenceResult reports an endhost-vs-DPI behavioural discrepancy.
	DivergenceResult = dpi.Result
	// Engine is the sharded worker-pool scoring engine: deterministic
	// parallel batch scoring, sharded flow assembly, and ordered streaming.
	Engine = engine.Engine
	// EngineOptions pins the engine's worker and shard counts — the same
	// knobs the CLIs expose (-workers/-shards), available to library users
	// through NewEngineOpts.
	EngineOptions = engine.Options
	// Stream scores submitted connections concurrently and emits results in
	// submission order — the online-deployment mode.
	Stream = engine.Stream
	// Backend is the backend-agnostic detection contract every detector
	// family implements: CLAP, Baseline #1, Kitsune, and anything
	// registered since.
	Backend = backend.Backend
	// HotBackend is a reload-safe backend handle: scoring delegates to the
	// current model behind an atomic pointer, and Swap replaces it in
	// place — the substrate of clap-serve's hot model reload.
	HotBackend = backend.Hot
	// CLAPBackend adapts the core CLAP/Baseline #1 pipeline family to the
	// Backend contract; mutate Cfg before Train.
	CLAPBackend = backend.CLAP
	// KitsuneBackend adapts Baseline #2 to the Backend contract.
	KitsuneBackend = backend.Kitsune
	// CascadeBackend tiers two backends: a cheap screening stage and an
	// expensive stage that re-scores only the suspicious tail, with
	// bit-identical expensive-stage verdicts (DESIGN.md §10).
	CascadeBackend = backend.Cascade
	// KitsuneConfig tunes the Kitsune backend.
	KitsuneConfig = kitsune.Config
	// Calibration is a frozen calibration outcome: the operating threshold
	// derived at a target FPR plus the benign-score reference distribution
	// it came from — produced by Pipeline.Calibrate, persisted alongside
	// the model file, and compared against live traffic by drift monitors.
	Calibration = calib.Calibration
	// Sketch is the deterministic streaming quantile sketch behind
	// calibration references and drift monitoring: identical input order
	// yields bit-identical quantiles and serialized snapshots.
	Sketch = calib.Sketch
	// Decision is one verdict's provenance record: the (model tag,
	// generation, threshold) binding it was judged under, its cascade
	// stage and batch placement, ingest attribution, and stream stage
	// latencies. Attached to streamed Results under WithProvenance and
	// served by clap-serve's /v1/trace.
	Decision = obs.Decision
	// Trace is a Decision plus the full per-window error series and
	// localization — clap-serve's /v1/explain payload, reconstructing
	// "which windows misbehaved" without re-scoring.
	Trace = obs.Trace
)

// Registry tags of the built-in backends, accepted by NewBackend and the
// CLI -backend flags.
const (
	BackendCLAP      = backend.TagCLAP
	BackendBaseline1 = backend.TagBaseline1
	BackendKitsune   = backend.TagKitsune
	BackendCascade   = backend.TagCascade
)

// DefaultLockstep is the bench-tuned cross-connection lockstep width —
// what the CLIs select for `-lockstep -1`, for callers passing
// WithLockstep that just want the feature on.
const DefaultLockstep = engine.DefaultLockstep

// NewEngine returns a parallel scoring engine with the given worker count;
// 0 sizes it to the machine. Scores produced through an Engine are
// bit-identical to the serial Detector methods at any worker count.
func NewEngine(workers int) *Engine {
	return engine.New(engine.Options{Workers: workers})
}

// NewEngineOpts returns an engine with explicit worker and shard counts —
// the full option surface the CLIs get.
func NewEngineOpts(o EngineOptions) *Engine { return engine.New(o) }

// NewBackend instantiates an untrained detection backend by registry tag
// (see BackendTags).
func NewBackend(tag string) (Backend, error) { return backend.New(tag) }

// NewBackendSpec instantiates a backend from a CLI-style spec: a plain
// registry tag, or "cascade:stage1+stage2" naming the cascade's stages
// (e.g. "cascade:baseline1+clap") — what the CLIs' -backend flags accept.
func NewBackendSpec(spec string) (Backend, error) { return backend.NewFromSpec(spec) }

// NewCascade tiers a cheap screening backend in front of an expensive one:
// every connection is scored by stage1, and only those whose stage-1 score
// reaches the calibrated escalation threshold are re-scored by stage2 —
// bit-identically to running stage2 alone. escalateFPR (in (0,1)) bounds
// the fraction of benign traffic that escalates once calibrated; until
// calibration, everything escalates. Calibrate through Pipeline.Calibrate
// or WithThresholdFPR: one benign corpus sets the escalation threshold and
// the end-to-end operating threshold together.
func NewCascade(stage1, stage2 Backend, escalateFPR float64) (*CascadeBackend, error) {
	return backend.NewCascade(stage1, stage2, escalateFPR)
}

// BackendTags lists the registered backend tags.
func BackendTags() []string { return backend.Tags() }

// BackendDoc returns the one-line description of a registered backend.
func BackendDoc(tag string) string { return backend.Doc(tag) }

// WrapDetector adapts an already-trained Detector to the Backend contract,
// so existing CLAP models flow through the Pipeline unchanged.
func WrapDetector(det *Detector) Backend { return backend.FromDetector(det) }

// NewHotBackend wraps a trained backend in a reload-safe handle. Pass the
// handle to WithBackend and call Swap to hot-reload the model while a
// Pipeline stream keeps scoring; each connection is scored wholly by one
// model, never a mixture.
func NewHotBackend(b Backend) (*HotBackend, error) { return backend.NewHot(b) }

// SaveBackend writes a trained backend to w with the tagged persistence
// header, so LoadBackend can dispatch to the right decoder.
func SaveBackend(w io.Writer, b Backend) error { return backend.Save(w, b) }

// LoadBackend reads a model written by SaveBackend. Models saved before
// the tagged format existed (plain Detector.Save streams) load as the
// CLAP backend.
func LoadBackend(r io.Reader) (Backend, error) { return backend.Load(r) }

// SaveBackendFile persists a trained backend to path, creating parent
// directories.
func SaveBackendFile(path string, b Backend) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := backend.Save(f, b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBackendFile reads a backend model from disk.
func LoadBackendFile(path string) (Backend, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return backend.Load(f)
}

// NewSketch returns an empty deterministic score-quantile sketch with the
// default accuracy (1% relative error, 2048 buckets).
func NewSketch() *Sketch { return calib.NewSketch(0, 0) }

// SaveCalibrationFile persists a calibration snapshot (threshold +
// benign-score reference distribution) to path, creating parent
// directories — conventionally "<model>.calib", next to the tagged model
// file, so a restarted daemon resumes drift monitoring with the same
// reference instead of starting blind. The write goes to a temp file
// renamed into place, so a crash mid-write can never leave a truncated
// snapshot that would make the next start silently score-only.
func SaveCalibrationFile(path string, cal *Calibration) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := cal.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadCalibrationFile reads a calibration snapshot written by
// SaveCalibrationFile.
func LoadCalibrationFile(path string) (*Calibration, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return calib.Load(f)
}

// DefaultConfig returns the paper's CLAP configuration (Table 6).
func DefaultConfig() Config { return core.DefaultConfig() }

// Baseline1Config returns the temporal-context-agnostic baseline
// configuration (§4.1, Baseline #1).
func Baseline1Config() Config { return core.Baseline1Config() }

// Train learns a detector from benign connections only (stages (a)-(c) of
// §3.3). logf may be nil.
func Train(benign []*Connection, cfg Config, logf func(string, ...any)) (*Detector, error) {
	return core.Train(benign, cfg, logf)
}

// Load reads a detector persisted with Detector.Save.
func Load(r io.Reader) (*Detector, error) { return core.Load(r) }

// LoadFile reads a detector from disk.
func LoadFile(path string) (*Detector, error) { return core.LoadFile(path) }

// GenerateBenign synthesizes n benign backbone-style connections with a
// deterministic seed (the stand-in for a MAWI capture; DESIGN.md §1).
func GenerateBenign(n int, seed int64) []*Connection {
	cfg := trafficgen.DefaultConfig(n)
	cfg.Seed = seed
	return trafficgen.Generate(cfg)
}

// ReadPCAP decodes a pcap stream and assembles its TCP/IPv4 packets into
// connections. skipped counts undecodable or non-TCP records.
func ReadPCAP(r io.Reader) (conns []*Connection, skipped int, err error) {
	pkts, skipped, err := pcapio.ReadPackets(r)
	if err != nil {
		return nil, skipped, err
	}
	return flow.Assemble(pkts), skipped, nil
}

// WritePCAP writes connections to w as a classic pcap capture (Ethernet
// framing, payload-stripped records preserving claimed lengths).
func WritePCAP(w io.Writer, conns []*Connection) error {
	pw := pcapio.NewWriter(w, pcapio.LinkTypeEthernet)
	for _, p := range flow.Flatten(conns) {
		if err := pw.WritePacket(p); err != nil {
			return err
		}
	}
	return pw.Flush()
}

// Attacks returns the full 73-strategy evasion corpus (SymTCP, lib•erate,
// Geneva).
func Attacks() []Strategy { return attacks.All() }

// AttackByName looks up one strategy by its paper label.
func AttackByName(name string) (Strategy, bool) { return attacks.ByName(name) }

// CheckEvasion verifies a connection's endhost-vs-DPI divergence against
// the GFW, Zeek and Snort models — the ground truth that an evasion attempt
// would actually have worked (§3.2).
func CheckEvasion(c *Connection) []DivergenceResult { return dpi.CheckAll(c) }

// AUC computes the area under the ROC curve for benign versus adversarial
// score samples.
func AUC(benign, adversarial []float64) float64 { return metrics.AUC(benign, adversarial) }

// EER computes the equal error rate.
func EER(benign, adversarial []float64) float64 { return metrics.EER(benign, adversarial) }

// ThresholdAtFPR picks a detection threshold achieving at most the target
// false-positive rate on benign scores (the deployment knob of §3.3(d)).
func ThresholdAtFPR(benign []float64, fpr float64) float64 {
	return metrics.ThresholdAtFPR(benign, fpr)
}
