package clap

import (
	"bytes"
	"context"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clap/internal/afpacket"
	"clap/internal/flow"
	"clap/internal/packet"
)

// framePackets wraps capture-ordered packets in the same synthetic
// Ethernet framing the pcap writer uses and packs them into TPACKETv3
// blocks, perFrame frames per block. Timestamps are truncated to
// microseconds because that is all a classic pcap file can carry — the
// two paths must see identical inputs for the bits to match.
func framePackets(t *testing.T, pkts []*packet.Packet, perFrame int) [][]byte {
	t.Helper()
	var (
		blocks [][]byte
		bb     = afpacket.NewBlockBuilder()
		n      = 0
	)
	for _, p := range pkts {
		raw, err := p.Encode(packet.SerializeOptions{})
		if err != nil {
			t.Fatalf("encoding packet: %v", err)
		}
		frame := make([]byte, 0, 14+len(raw))
		frame = append(frame, 0x02, 0, 0, 0, 0, 0x02) // dst, as pcapio writes
		frame = append(frame, 0x02, 0, 0, 0, 0, 0x01) // src
		frame = append(frame, 0x08, 0x00)             // IPv4
		frame = append(frame, raw...)
		bb.Append(p.Timestamp.Truncate(time.Microsecond), frame, len(frame))
		if n++; n == perFrame {
			blocks = append(blocks, bb.Bytes())
			bb, n = afpacket.NewBlockBuilder(), 0
		}
	}
	if n > 0 {
		blocks = append(blocks, bb.Bytes())
	}
	return blocks
}

// syntheticAFPacket builds the production afpacket source with its ring
// opener swapped for an in-memory synthetic ring, so the full Stream
// path (block walk, frame decode, assembly) runs unprivileged.
func syntheticAFPacket(blocks [][]byte, cfg LiveConfig) ServeSource {
	return &afpacketSource{
		name: "afpacket:synthetic",
		cfg:  cfg.withDefaults(),
		open: func() (afpacket.Ring, error) {
			return afpacket.NewSyntheticRing(blocks...), nil
		},
	}
}

// memSource feeds already-assembled connections into a Pipeline.
type memSource []*Connection

func (s memSource) Name() string { return "mem" }
func (s memSource) Connections(*Engine) ([]*Connection, int, error) {
	return s, 0, nil
}

// TestAFPacketSyntheticBitIdentity is the tentpole equivalence pin: the
// same packets delivered through the pcap streaming path and through the
// AF_PACKET source (decoding synthetic in-memory TPACKETv3 blocks) must
// produce identical connections — and identical scores at every
// workers × lockstep combination. Capture transport must never change
// the bits.
func TestAFPacketSyntheticBitIdentity(t *testing.T) {
	want := GenerateBenign(40, 77)
	pkts := flow.Flatten(want)

	// Path A: classic pcap bytes through the streaming follow source.
	var buf bytes.Buffer
	if err := WritePCAP(&buf, want); err != nil {
		t.Fatal(err)
	}
	pcapConns, pcapSkipped := collectServe(t, FollowPCAP("pcap", bytes.NewReader(buf.Bytes()), fastLive), context.Background())

	// Path B: the same packets as Ethernet frames in TPACKETv3 blocks.
	// An awkward per-block frame count exercises block boundaries that
	// do not line up with connection boundaries.
	blocks := framePackets(t, pkts, 7)
	afConns, afSkipped := collectServe(t, syntheticAFPacket(blocks, fastLive), context.Background())

	if pcapSkipped != afSkipped {
		t.Fatalf("skipped diverged: pcap %d, afpacket %d", pcapSkipped, afSkipped)
	}
	if len(afConns) != len(pcapConns) || len(pcapConns) != len(want) {
		t.Fatalf("connection counts diverged: pcap %d, afpacket %d, input %d", len(pcapConns), len(afConns), len(want))
	}
	for i := range pcapConns {
		pc, ac := pcapConns[i], afConns[i]
		if pc.Key != ac.Key {
			t.Fatalf("conn %d: key %v != %v", i, ac.Key, pc.Key)
		}
		if pc.Len() != ac.Len() {
			t.Fatalf("conn %d (%v): %d packets via afpacket, %d via pcap", i, pc.Key, ac.Len(), pc.Len())
		}
		for j := range pc.Packets {
			if pc.Dirs[j] != ac.Dirs[j] {
				t.Fatalf("conn %d packet %d: direction %v != %v", i, j, ac.Dirs[j], pc.Dirs[j])
			}
			if !pc.Packets[j].Timestamp.Equal(ac.Packets[j].Timestamp) {
				t.Fatalf("conn %d packet %d: timestamp %v != %v", i, j, ac.Packets[j].Timestamp, pc.Packets[j].Timestamp)
			}
			pb, err := pc.Packets[j].Encode(packet.SerializeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			ab, err := ac.Packets[j].Encode(packet.SerializeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pb, ab) {
				t.Fatalf("conn %d packet %d: wire bytes diverged between paths", i, j)
			}
		}
	}

	// Scores: serial detector reference on the pcap-path connections,
	// pinned against pipeline runs over the afpacket-path connections at
	// every workers × lockstep combination.
	bk := pipelineBackend(t)
	det := bk.(*CLAPBackend).Detector()
	wantScores := make([]float64, len(pcapConns))
	for i, c := range pcapConns {
		wantScores[i] = det.Score(c).Adversarial
	}
	for _, workers := range []int{1, 4} {
		for _, lockstep := range []int{0, 6} {
			p, err := NewPipeline(WithBackend(bk), WithWorkers(workers), WithShards(workers), WithLockstep(lockstep))
			if err != nil {
				t.Fatal(err)
			}
			sum, err := p.Run(memSource(afConns))
			if err != nil {
				t.Fatal(err)
			}
			if len(sum.Results) != len(wantScores) {
				t.Fatalf("workers=%d lockstep=%d: %d results, want %d", workers, lockstep, len(sum.Results), len(wantScores))
			}
			for i, r := range sum.Results {
				if r.Score != wantScores[i] {
					t.Fatalf("workers=%d lockstep=%d: conn %d score %v != serial pcap-path %v", workers, lockstep, i, r.Score, wantScores[i])
				}
			}
		}
	}
}

// TestAFPacketSourceSkipsNonIP pins the skip accounting: non-IPv4 frames
// (an ARP) and undecodable IPv4 bytes count as skipped, exactly like the
// pcap path's junk records, without disturbing assembly.
func TestAFPacketSourceSkipsNonIP(t *testing.T) {
	want := GenerateBenign(2, 99)
	pkts := flow.Flatten(want)
	bb := afpacket.NewBlockBuilder()
	arp := make([]byte, 42)
	arp[12], arp[13] = 0x08, 0x06
	bb.Append(time.Unix(50, 0), arp, len(arp))
	junk := make([]byte, 30)
	junk[12], junk[13] = 0x08, 0x00 // IPv4 ethertype, garbage payload
	bb.Append(time.Unix(51, 0), junk, len(junk))
	for _, p := range pkts {
		raw, err := p.Encode(packet.SerializeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		frame := append(make([]byte, 0, 14+len(raw)),
			0x02, 0, 0, 0, 0, 0x02, 0x02, 0, 0, 0, 0, 0x01, 0x08, 0x00)
		frame = append(frame, raw...)
		bb.Append(p.Timestamp, frame, len(frame))
	}
	conns, skipped := collectServe(t, syntheticAFPacket([][]byte{bb.Bytes()}, fastLive), context.Background())
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2 (ARP + undecodable IPv4)", skipped)
	}
	if len(conns) != len(want) {
		t.Fatalf("%d connections, want %d", len(conns), len(want))
	}
}

// teardownRing hands out one large block, cancelling the capture context
// the instant the block leaves its hands — the worst-case shutdown: the
// harvest goroutine is mid-walk (and, with more frames than the record
// channel buffers, blocked sending) when the assembly loop bails. Close
// records whether it ran while the block was still outstanding, which on
// a kernel ring would be a munmap under a live ParseBlock.
type teardownRing struct {
	block       []byte
	cancel      context.CancelFunc
	outstanding int32
	closedEarly bool
	closed      bool
}

func (r *teardownRing) NextBlock(ctx context.Context) ([]byte, func(), error) {
	if ctx.Err() != nil || r.closed {
		return nil, nil, io.EOF
	}
	r.cancel()
	atomic.AddInt32(&r.outstanding, 1)
	var once sync.Once
	return r.block, func() {
		once.Do(func() { atomic.AddInt32(&r.outstanding, -1) })
	}, nil
}

func (r *teardownRing) Close() error {
	r.closed = true
	if atomic.LoadInt32(&r.outstanding) != 0 {
		r.closedEarly = true
	}
	return nil
}

// TestAFPacketStreamTeardownJoinsHarvest pins the shutdown ordering:
// cancellation must drain and join the harvest goroutine BEFORE the ring
// is closed, because closing a kernel ring munmaps memory the goroutine's
// block walk still aliases. Pre-fix this raced: Stream returned on
// ctx.Done with the harvester blocked sending into a full record channel,
// then closed the ring under it (use-after-munmap) and leaked the
// goroutine.
func TestAFPacketStreamTeardownJoinsHarvest(t *testing.T) {
	// 600 ARP frames: far more than the 64-slot record buffer, so the
	// walk is guaranteed to be parked on a send at cancellation.
	bb := afpacket.NewBlockBuilder()
	arp := make([]byte, 42)
	arp[12], arp[13] = 0x08, 0x06
	for i := 0; i < 600; i++ {
		bb.Append(time.Unix(int64(i), 0), arp, len(arp))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ring := &teardownRing{block: bb.Bytes(), cancel: cancel}
	src := &afpacketSource{
		name: "afpacket:teardown",
		cfg:  fastLive.withDefaults(),
		open: func() (afpacket.Ring, error) { return ring, nil },
	}
	collectServe(t, src, ctx)
	if !ring.closed {
		t.Fatal("ring was never closed")
	}
	if ring.closedEarly {
		t.Fatal("ring closed while a block was still being walked: use-after-munmap on a kernel ring")
	}
}

// TestAFPacketConfigZeroValueRunsSolo pins the zero-value safety of the
// public config: fanout group 0 is a real PACKET_FANOUT id, so a caller
// who never asked for sharding must not silently join it.
func TestAFPacketConfigZeroValueRunsSolo(t *testing.T) {
	if got := (AFPacketConfig{Interface: "eth0"}).fanoutID(); got >= 0 {
		t.Fatalf("zero-value AFPacketConfig joins fanout group %d, want solo (negative)", got)
	}
	if got := (AFPacketConfig{Interface: "eth0", Fanout: true}).fanoutID(); got != 0 {
		t.Fatalf("Fanout with FanoutID 0 maps to group %d, want 0", got)
	}
	if got := (AFPacketConfig{Interface: "eth0", Fanout: true, FanoutID: 7}).fanoutID(); got != 7 {
		t.Fatalf("Fanout group 7 maps to %d", got)
	}
}
