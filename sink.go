package clap

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Sink consumes pipeline results: Emit is called once per connection in
// capture order, then Finish once with the run summary. Implementations
// need no locking — the pipeline emits from a single goroutine.
type Sink interface {
	Emit(r Result) error
	Finish(sum *RunSummary) error
}

// NewTextReport renders the clap-detect text format: per-connection score
// lines when verbose, a top-10 ranking in score-only mode, and the flagged
// report with Top-N window localization when a threshold is set. The
// output is byte-identical to the pre-pipeline clap-detect renderer.
func NewTextReport(w io.Writer, verbose bool) Sink {
	return &textReport{w: w, verbose: verbose}
}

type textReport struct {
	w       io.Writer
	verbose bool
	err     error
}

func (t *textReport) printf(format string, args ...any) {
	if t.err == nil {
		_, t.err = fmt.Fprintf(t.w, format, args...)
	}
}

func (t *textReport) Emit(r Result) error {
	if t.verbose {
		t.printf("%-48s score=%.6f\n", r.Conn.Key, r.Score)
	}
	return t.err
}

// Finish renders the run footer from the summary's complete result list
// (capture order), so Emit keeps no per-connection state of its own.
func (t *textReport) Finish(sum *RunSummary) error {
	if !sum.ThresholdSet && sum.Threshold <= 0 {
		// Score-only mode: rank everything (ties broken by capture order so
		// output is deterministic).
		idx := make([]int, len(sum.Results))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return sum.Results[idx[a]].Score > sum.Results[idx[b]].Score
		})
		t.printf("top connections by adversarial score:\n")
		for rank, i := range idx {
			if rank >= 10 {
				break
			}
			t.printf("%2d. %-48s score=%.6f\n", rank+1, sum.Results[i].Conn.Key, sum.Results[i].Score)
		}
		return t.err
	}

	t.printf("%d/%d connections flagged at threshold %.6f\n", sum.Flagged, len(sum.Results), sum.Threshold)
	for _, r := range sum.Results {
		if !r.Flagged {
			continue
		}
		t.printf("\n%s  score=%.6f peak-window=%d\n", r.Conn.Key, r.Score, r.PeakWindow)
		for _, w := range r.TopWindows {
			end := w + sum.WindowSpan - 1
			if end >= r.Conn.Len() {
				end = r.Conn.Len() - 1
			}
			t.printf("  suspicious window %d: packets %d-%d", w, w, end)
			for p := w; p <= end && p < r.Conn.Len(); p++ {
				t.printf("\n    [%d] %v", p, r.Conn.Packets[p])
			}
			t.printf("\n")
		}
	}
	return t.err
}

// jsonResult is the stable wire shape of one NewJSONLines record.
type jsonResult struct {
	Key        string  `json:"key"`
	Score      float64 `json:"score"`
	Flagged    bool    `json:"flagged"`
	PeakWindow int     `json:"peak_window"`
	TopWindows []int   `json:"top_windows,omitempty"`
	Attack     string  `json:"attack,omitempty"`
}

// jsonSummary is the trailing summary record of a NewJSONLines stream,
// distinguished from result records by the "summary" field.
type jsonSummary struct {
	Summary     bool    `json:"summary"`
	Connections int     `json:"connections"`
	Flagged     int     `json:"flagged"`
	Threshold   float64 `json:"threshold"`
	Skipped     int     `json:"skipped"`
}

// NewJSONLines renders one JSON object per connection (JSON Lines), in
// capture order, followed by a final summary object — the
// machine-readable sink for piping clap-detect into other tooling.
func NewJSONLines(w io.Writer) Sink { return &jsonLines{enc: json.NewEncoder(w)} }

type jsonLines struct{ enc *json.Encoder }

func (j *jsonLines) Emit(r Result) error {
	return j.enc.Encode(jsonResult{
		Key:        r.Conn.Key.String(),
		Score:      r.Score,
		Flagged:    r.Flagged,
		PeakWindow: r.PeakWindow,
		TopWindows: r.TopWindows,
		Attack:     r.Conn.AttackName,
	})
}

func (j *jsonLines) Finish(sum *RunSummary) error {
	return j.enc.Encode(jsonSummary{
		Summary:     true,
		Connections: len(sum.Results),
		Flagged:     sum.Flagged,
		Threshold:   sum.Threshold,
		Skipped:     sum.Skipped,
	})
}

// NewAlertLog writes one line per flagged connection — the deterministic,
// replayable alert log of the online deployment mode.
func NewAlertLog(w io.Writer) Sink { return &alertLog{w: w} }

type alertLog struct {
	w   io.Writer
	err error
}

// writeAlert renders the one-line alert format shared by every alert
// sink, so the batch and serving logs can never drift apart.
func writeAlert(w io.Writer, r Result) error {
	truth := ""
	if r.Conn.AttackName != "" {
		truth = "  (attack: " + r.Conn.AttackName + ")"
	}
	_, err := fmt.Fprintf(w, "ALERT %-44s score=%.5f peak-window=%d%s\n",
		r.Conn.Key, r.Score, r.PeakWindow, truth)
	return err
}

func (a *alertLog) Emit(r Result) error {
	if !r.Flagged || a.err != nil {
		return a.err
	}
	a.err = writeAlert(a.w, r)
	return a.err
}

func (a *alertLog) Finish(*RunSummary) error { return a.err }

// NewDedupAlertLog is the alert log hardened for always-on serving: a
// flagged connection is written at most once per dedup window per
// connection key (retransmitted or re-segmented flows re-entering the
// pipeline do not spam the log), and output is capped at maxPerSec lines
// per second so an attack burst cannot turn the alert channel into its
// own denial of service. Suppressed alerts are counted and summarised by
// Finish. window <= 0 disables dedup; maxPerSec <= 0 disables the cap.
func NewDedupAlertLog(w io.Writer, window time.Duration, maxPerSec int) Sink {
	return &dedupAlertLog{
		w:         w,
		window:    window,
		maxPerSec: maxPerSec,
		seen:      make(map[string]time.Time),
		now:       time.Now,
	}
}

type dedupAlertLog struct {
	w         io.Writer
	window    time.Duration
	maxPerSec int

	seen       map[string]time.Time // key -> last alert written
	second     time.Time            // start of the current rate bucket
	inSecond   int                  // lines written in the current bucket
	suppressed int
	nextPrune  time.Time // earliest time the next expiry scan may run
	pruneScans int       // full scans performed (observability for tests)

	now func() time.Time // injectable clock for tests
	err error
}

func (a *dedupAlertLog) Emit(r Result) error {
	if !r.Flagged || a.err != nil {
		return a.err
	}
	now := a.now()
	key := r.Conn.Key.String()
	if a.window > 0 {
		if last, ok := a.seen[key]; ok && now.Sub(last) < a.window {
			a.suppressed++
			return nil
		}
	}
	if a.maxPerSec > 0 {
		if bucket := now.Truncate(time.Second); !bucket.Equal(a.second) {
			a.second, a.inSecond = bucket, 0
		}
		if a.inSecond >= a.maxPerSec {
			// Rate-capped alerts are not recorded as seen, so the key can
			// still alert once the burst subsides.
			a.suppressed++
			return nil
		}
		a.inSecond++
	}
	if a.window > 0 {
		// Opportunistically expire stale entries so a long-running server
		// does not accumulate every key it ever flagged. The scan is
		// amortized to at most once per dedup window: a sustained burst of
		// distinct keys past the size trigger pays one O(n) sweep per
		// window instead of one per alert (which went quadratic).
		if len(a.seen) > 4096 && !now.Before(a.nextPrune) {
			for k, t := range a.seen {
				if now.Sub(t) >= a.window {
					delete(a.seen, k)
				}
			}
			a.pruneScans++
			a.nextPrune = now.Add(a.window)
		}
		a.seen[key] = now
	}
	a.err = writeAlert(a.w, r)
	return a.err
}

func (a *dedupAlertLog) Finish(*RunSummary) error {
	if a.err == nil && a.suppressed > 0 {
		_, a.err = fmt.Fprintf(a.w, "(%d alerts suppressed: dedup window %v, rate cap %d/s)\n",
			a.suppressed, a.window, a.maxPerSec)
	}
	return a.err
}
