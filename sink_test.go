package clap

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"clap/internal/flow"
)

// failingWriter errors after allowing n successful writes.
type failingWriter struct {
	n   int
	err error
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	w.n--
	return len(p), nil
}

// sinkConn fabricates a connection with a fixed key for deterministic
// sink output (no packets: the goldens avoid window expansion).
func sinkConn(lastOctet byte, attack string) *Connection {
	return &Connection{
		Key: flow.Key{
			Client: flow.Endpoint{IP: [4]byte{10, 0, 0, lastOctet}, Port: 1000 + uint16(lastOctet)},
			Server: flow.Endpoint{IP: [4]byte{192, 0, 2, 1}, Port: 443},
		},
		AttackName: attack,
	}
}

// sinkFixture is a tiny deterministic result set: two flagged, one clean.
func sinkFixture() ([]Result, *RunSummary) {
	results := []Result{
		{Conn: sinkConn(1, ""), Score: 0.25, PeakWindow: 2, Flagged: true},
		{Conn: sinkConn(2, "Low TTL (Max)"), Score: 0.75, PeakWindow: 0, Flagged: true},
		{Conn: sinkConn(3, ""), Score: 0.05, PeakWindow: 1},
	}
	sum := &RunSummary{Results: results, Threshold: 0.2, Flagged: 2, WindowSpan: 3}
	return results, sum
}

func runSink(t *testing.T, s Sink, results []Result, sum *RunSummary) error {
	t.Helper()
	for _, r := range results {
		if err := s.Emit(r); err != nil {
			return err
		}
	}
	return s.Finish(sum)
}

// TestTextReportGolden pins the text renderer's exact bytes in both
// verbose and non-verbose mode, for flagged and score-only runs.
func TestTextReportGolden(t *testing.T) {
	results, sum := sinkFixture()

	t.Run("flagged-verbose", func(t *testing.T) {
		var buf bytes.Buffer
		if err := runSink(t, NewTextReport(&buf, true), results, sum); err != nil {
			t.Fatal(err)
		}
		want := "" +
			"10.0.0.1:1001 > 192.0.2.1:443                    score=0.250000\n" +
			"10.0.0.2:1002 > 192.0.2.1:443                    score=0.750000\n" +
			"10.0.0.3:1003 > 192.0.2.1:443                    score=0.050000\n" +
			"2/3 connections flagged at threshold 0.200000\n" +
			"\n10.0.0.1:1001 > 192.0.2.1:443  score=0.250000 peak-window=2\n" +
			"\n10.0.0.2:1002 > 192.0.2.1:443  score=0.750000 peak-window=0\n"
		if buf.String() != want {
			t.Fatalf("verbose flagged report diverged:\n got: %q\nwant: %q", buf.String(), want)
		}
	})

	t.Run("flagged-quiet", func(t *testing.T) {
		var buf bytes.Buffer
		if err := runSink(t, NewTextReport(&buf, false), results, sum); err != nil {
			t.Fatal(err)
		}
		want := "" +
			"2/3 connections flagged at threshold 0.200000\n" +
			"\n10.0.0.1:1001 > 192.0.2.1:443  score=0.250000 peak-window=2\n" +
			"\n10.0.0.2:1002 > 192.0.2.1:443  score=0.750000 peak-window=0\n"
		if buf.String() != want {
			t.Fatalf("quiet flagged report diverged:\n got: %q\nwant: %q", buf.String(), want)
		}
	})

	t.Run("score-only", func(t *testing.T) {
		scoreOnly := &RunSummary{Results: results, Threshold: 0}
		var buf bytes.Buffer
		if err := runSink(t, NewTextReport(&buf, false), results, scoreOnly); err != nil {
			t.Fatal(err)
		}
		want := "" +
			"top connections by adversarial score:\n" +
			" 1. 10.0.0.2:1002 > 192.0.2.1:443                    score=0.750000\n" +
			" 2. 10.0.0.1:1001 > 192.0.2.1:443                    score=0.250000\n" +
			" 3. 10.0.0.3:1003 > 192.0.2.1:443                    score=0.050000\n"
		if buf.String() != want {
			t.Fatalf("score-only report diverged:\n got: %q\nwant: %q", buf.String(), want)
		}
	})

	// A calibrated threshold of exactly 0 is a real operating point, not
	// score-only mode: with the ThresholdSet bit carried on the summary the
	// flagged report renders (previously it silently fell back to the
	// top-10 ranking).
	t.Run("threshold-zero-flagged", func(t *testing.T) {
		zeroTh := &RunSummary{Results: results, Threshold: 0, ThresholdSet: true, Flagged: 2, WindowSpan: 3}
		var buf bytes.Buffer
		if err := runSink(t, NewTextReport(&buf, false), results, zeroTh); err != nil {
			t.Fatal(err)
		}
		want := "" +
			"2/3 connections flagged at threshold 0.000000\n" +
			"\n10.0.0.1:1001 > 192.0.2.1:443  score=0.250000 peak-window=2\n" +
			"\n10.0.0.2:1002 > 192.0.2.1:443  score=0.750000 peak-window=0\n"
		if buf.String() != want {
			t.Fatalf("threshold-0 flagged report diverged:\n got: %q\nwant: %q", buf.String(), want)
		}
	})
}

// TestSinksSurfaceWriterErrors: every sink propagates its writer's error
// instead of swallowing it.
func TestSinksSurfaceWriterErrors(t *testing.T) {
	results, sum := sinkFixture()
	boom := errors.New("disk full")
	cases := []struct {
		name string
		mk   func(w *failingWriter) Sink
		ok   int // writes to allow before failing
	}{
		{"text-immediate", func(w *failingWriter) Sink { return NewTextReport(w, true) }, 0},
		{"text-mid-report", func(w *failingWriter) Sink { return NewTextReport(w, true) }, 2},
		{"jsonlines-immediate", func(w *failingWriter) Sink { return NewJSONLines(w) }, 0},
		{"jsonlines-at-summary", func(w *failingWriter) Sink { return NewJSONLines(w) }, 3},
		{"alertlog", func(w *failingWriter) Sink { return NewAlertLog(w) }, 0},
		{"dedup-alertlog", func(w *failingWriter) Sink { return NewDedupAlertLog(w, 0, 0) }, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := runSink(t, tc.mk(&failingWriter{n: tc.ok, err: boom}), results, sum)
			if !errors.Is(err, boom) {
				t.Fatalf("err = %v, want the writer's error", err)
			}
		})
	}
}

// TestSinkErrorsFailRun: a failing sink aborts Pipeline.Run with the
// writer's error.
func TestSinkErrorsFailRun(t *testing.T) {
	bk := pipelineBackend(t)
	p, err := NewPipeline(WithBackend(bk), WithThreshold(1e-12))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("pipe closed")
	_, err = p.Run(TrafficGen(4, 2), NewAlertLog(&failingWriter{err: boom}))
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "sink") {
		t.Fatalf("Run err = %v, want a wrapped sink error", err)
	}
	_, err = p.Run(TrafficGen(4, 2), NewJSONLines(&failingWriter{err: boom}))
	if !errors.Is(err, boom) {
		t.Fatalf("Run err = %v, want the JSON sink's error", err)
	}
}

// TestDedupAlertLog: duplicate keys inside the window are suppressed,
// the rate cap bounds output per second, and Finish reports the count.
func TestDedupAlertLog(t *testing.T) {
	clock := time.Unix(100, 0)
	mk := func(w *bytes.Buffer, window time.Duration, maxPerSec int) *dedupAlertLog {
		s := NewDedupAlertLog(w, window, maxPerSec).(*dedupAlertLog)
		s.now = func() time.Time { return clock }
		return s
	}
	flaggedResult := func(octet byte, score float64) Result {
		return Result{Conn: sinkConn(octet, ""), Score: score, Flagged: true}
	}

	t.Run("dedup-window", func(t *testing.T) {
		var buf bytes.Buffer
		s := mk(&buf, 10*time.Second, 0)
		s.Emit(flaggedResult(1, 0.5))
		s.Emit(flaggedResult(1, 0.6)) // same key, inside window: suppressed
		clock = clock.Add(11 * time.Second)
		s.Emit(flaggedResult(1, 0.7)) // window expired: written
		s.Emit(flaggedResult(2, 0.8)) // different key: written
		s.Finish(&RunSummary{})
		out := buf.String()
		if got := strings.Count(out, "ALERT"); got != 3 {
			t.Fatalf("wrote %d alerts, want 3:\n%s", got, out)
		}
		if !strings.Contains(out, "1 alerts suppressed") {
			t.Fatalf("missing suppression summary:\n%s", out)
		}
	})

	t.Run("rate-cap", func(t *testing.T) {
		var buf bytes.Buffer
		s := mk(&buf, 0, 2)
		for octet := byte(1); octet <= 5; octet++ {
			s.Emit(flaggedResult(octet, 0.5))
		}
		clock = clock.Add(time.Second)
		s.Emit(flaggedResult(6, 0.5)) // new second: allowed again
		s.Finish(&RunSummary{})
		out := buf.String()
		if got := strings.Count(out, "ALERT"); got != 3 {
			t.Fatalf("wrote %d alerts, want 3 (2 in first second + 1 in next):\n%s", got, out)
		}
		if !strings.Contains(out, "3 alerts suppressed") {
			t.Fatalf("missing suppression summary:\n%s", out)
		}
	})

	t.Run("unflagged-ignored", func(t *testing.T) {
		var buf bytes.Buffer
		s := mk(&buf, time.Second, 1)
		s.Emit(Result{Conn: sinkConn(9, ""), Score: 0.9})
		s.Finish(&RunSummary{})
		if buf.Len() != 0 {
			t.Fatalf("unflagged result produced output: %q", buf.String())
		}
	})
}

// TestDedupAlertLogAmortizedPrune: once the seen map exceeds the size
// trigger with live (unexpired) keys, sustained distinct-key alerting
// pays at most one full expiry scan per dedup window — not one per Emit,
// which made the alert path quadratic under attack bursts.
func TestDedupAlertLogAmortizedPrune(t *testing.T) {
	clock := time.Unix(100, 0)
	var buf bytes.Buffer
	s := NewDedupAlertLog(&buf, time.Hour, 0).(*dedupAlertLog)
	s.now = func() time.Time { return clock }
	conn := func(i int) *Connection {
		return &Connection{Key: flow.Key{
			Client: flow.Endpoint{IP: [4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}, Port: 1},
			Server: flow.Endpoint{IP: [4]byte{192, 0, 2, 1}, Port: 443},
		}}
	}
	// Grow the map well past the 4096 trigger with live keys, one distinct
	// key per Emit, advancing the clock slightly so no key ever expires.
	const total = 6000
	for i := 0; i < total; i++ {
		clock = clock.Add(time.Millisecond)
		s.Emit(Result{Conn: conn(i), Flagged: true})
	}
	if len(s.seen) != total {
		t.Fatalf("seen holds %d keys, want %d live", len(s.seen), total)
	}
	// ~1900 emits ran past the trigger inside one window: amortization
	// allows at most one scan (the old code scanned on every one).
	if s.pruneScans > 1 {
		t.Fatalf("%d full scans during one window, want <= 1", s.pruneScans)
	}
	// After the window elapses the next alert may scan again — and, with
	// every key now stale, must actually shrink the map.
	clock = clock.Add(2 * time.Hour)
	scansBefore := s.pruneScans
	s.Emit(Result{Conn: conn(total), Flagged: true})
	if s.pruneScans != scansBefore+1 {
		t.Fatalf("scan did not run after window elapsed (scans=%d)", s.pruneScans)
	}
	if len(s.seen) != 1 {
		t.Fatalf("stale keys survived the post-window scan: %d left, want 1", len(s.seen))
	}
	if got := strings.Count(buf.String(), "ALERT"); got != total+1 {
		t.Fatalf("wrote %d alerts, want %d (all keys distinct)", got, total+1)
	}
}
