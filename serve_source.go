package clap

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"clap/internal/attacks"
	"clap/internal/flow"
	"clap/internal/packet"
	"clap/internal/pcapio"
)

// ServeSource is the live counterpart of Source: instead of returning one
// finished corpus, it delivers connections continuously as they complete —
// the ingest contract of the clap-serve daemon. Implementations run until
// the context is cancelled or the underlying feed ends, and report how
// many records they could not decode.
type ServeSource interface {
	// Name labels the source in serving metrics and logs.
	Name() string
	// Stream blocks, handing each completed connection to deliver in
	// arrival order, until ctx is cancelled or the feed is exhausted.
	// deliver may block (backpressure) or drop internally; the source
	// just produces. skipped counts records the source could not decode.
	Stream(ctx context.Context, deliver func(*Connection)) (skipped int, err error)
}

// LiveConfig tunes the pcap-fed live sources.
type LiveConfig struct {
	// MaxPackets cuts connections that exceed this packet budget so a
	// long-lived flow is scored in segments instead of buffered forever.
	// 0 means unbounded. Default 512.
	MaxPackets int
	// IdleFlush emits connections that saw no packet for this long (wall
	// clock), catching half-open flows and lost teardowns. 0 disables;
	// default 5s.
	IdleFlush time.Duration
	// Poll is how often a tailing source re-checks a quiet file.
	// Default 250ms.
	Poll time.Duration
}

func (c LiveConfig) withDefaults() LiveConfig {
	if c.MaxPackets == 0 {
		c.MaxPackets = 512
	}
	if c.IdleFlush == 0 {
		c.IdleFlush = 5 * time.Second
	}
	if c.Poll == 0 {
		c.Poll = 250 * time.Millisecond
	}
	return c
}

// IdleFlushable is implemented by live sources whose idle-flush window —
// how long a half-open connection may sit silent before its assembled
// packets are emitted for scoring — can be adjusted after construction.
// The serving layer applies serve.Config.IdleFlush to every compatible
// source at registration, replacing the one-global-constant behaviour
// with a per-source knob (the first step toward the ROADMAP's adaptive
// per-port timeouts). Adjust only before the source starts streaming.
type IdleFlushable interface {
	SetIdleFlush(d time.Duration)
}

// TailPCAP follows a growing pcap file — the capture file a DPI-side
// tcpdump keeps appending to. The source waits for the file (and its
// global header) to appear, then streams records as they are written,
// polling on quiet periods, assembling connections incrementally and
// delivering each one as it closes, fills its packet budget, or goes
// idle. The stream ends only on context cancellation.
func TailPCAP(path string, cfg LiveConfig) ServeSource {
	return &tailSource{path: path, cfg: cfg.withDefaults()}
}

type tailSource struct {
	path string
	cfg  LiveConfig
}

func (s *tailSource) Name() string { return "tail:" + s.path }

// SetIdleFlush implements IdleFlushable.
func (s *tailSource) SetIdleFlush(d time.Duration) {
	if d > 0 {
		s.cfg.IdleFlush = d
	}
}

func (s *tailSource) Stream(ctx context.Context, deliver func(*Connection)) (int, error) {
	// Wait for the file to exist at all.
	var f *os.File
	for {
		var err error
		f, err = os.Open(s.path)
		if err == nil {
			break
		}
		if !os.IsNotExist(err) {
			return 0, err
		}
		select {
		case <-ctx.Done():
			return 0, nil
		case <-time.After(s.cfg.Poll):
		}
	}
	defer f.Close()
	fr := &followReader{ctx: ctx, r: f, poll: s.cfg.Poll}
	return streamPCAPRecords(ctx, fr, s.cfg, deliver)
}

// followReader turns a growing file into a blocking reader: EOF means
// "no new data yet", so it polls until the context ends, at which point
// it reports EOF to terminate the pcap reader cleanly.
type followReader struct {
	ctx  context.Context
	r    io.Reader
	poll time.Duration
}

func (f *followReader) Read(p []byte) (int, error) {
	for {
		n, err := f.r.Read(p)
		if n > 0 {
			return n, nil
		}
		if err != nil && err != io.EOF {
			return 0, err
		}
		select {
		case <-f.ctx.Done():
			return 0, io.EOF
		case <-time.After(f.poll):
		}
	}
}

// FollowPCAP streams pcap records from r — stdin, a named pipe from a
// capture process, a socket — assembling and delivering connections live.
// The stream ends at EOF or context cancellation; with a blocking reader,
// cancellation takes effect at the next record boundary.
func FollowPCAP(name string, r io.Reader, cfg LiveConfig) ServeSource {
	return &followSource{name: name, r: r, cfg: cfg.withDefaults()}
}

type followSource struct {
	name string
	r    io.Reader
	cfg  LiveConfig
}

func (s *followSource) Name() string { return s.name }

// SetIdleFlush implements IdleFlushable.
func (s *followSource) SetIdleFlush(d time.Duration) {
	if d > 0 {
		s.cfg.IdleFlush = d
	}
}

func (s *followSource) Stream(ctx context.Context, deliver func(*Connection)) (int, error) {
	return streamPCAPRecords(ctx, s.r, s.cfg, deliver)
}

// streamPCAPRecords is the shared pcap ingest loop. A reader goroutine
// decodes records (it may block on a quiet feed); the main loop feeds the
// incremental assembler, flushes idle connections on a ticker even while
// the feed is silent, and flushes everything at end of stream.
//
// On cancellation with a reader that never unblocks (a pipe with no
// writer), the reader goroutine lingers until the underlying Read
// returns; the stream itself ends promptly.
func streamPCAPRecords(ctx context.Context, r io.Reader, cfg LiveConfig, deliver func(*Connection)) (int, error) {
	type recOrErr struct {
		p    *packet.Packet
		skip bool
		err  error
	}
	recs := make(chan recOrErr, 64)
	go func() {
		defer close(recs)
		rd, err := pcapio.NewReader(r)
		if err != nil {
			recs <- recOrErr{err: err}
			return
		}
		for {
			rec, err := rd.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				recs <- recOrErr{err: err}
				return
			}
			if len(rec.Data) == 0 {
				recs <- recOrErr{skip: true}
				continue
			}
			p, derr := packet.Decode(rec.Data)
			if derr != nil {
				recs <- recOrErr{skip: true}
				continue
			}
			p.Timestamp = rec.Timestamp
			recs <- recOrErr{p: p}
		}
	}()

	asm := flow.NewAssembler(deliver)
	asm.MaxPackets = cfg.MaxPackets
	var flush <-chan time.Time
	if cfg.IdleFlush > 0 {
		t := time.NewTicker(cfg.IdleFlush)
		defer t.Stop()
		flush = t.C
	}
	skipped := 0
	for {
		select {
		case <-ctx.Done():
			asm.Flush()
			return skipped, nil
		case ro, ok := <-recs:
			if !ok {
				asm.Flush()
				return skipped, nil
			}
			if ro.err != nil {
				asm.Flush()
				if ctx.Err() != nil {
					// A header or record truncated by cancellation
					// mid-read is not a corrupt capture.
					return skipped, nil
				}
				return skipped, ro.err
			}
			if ro.skip {
				skipped++
				continue
			}
			asm.Feed(ro.p)
		case <-flush:
			asm.FlushIdle(cfg.IdleFlush)
		}
	}
}

// SoakConfig tunes the synthetic soak source.
type SoakConfig struct {
	// Connections is the total to generate; 0 means run until cancelled.
	Connections int
	// Seed makes the soak deterministic (connections and attack plan).
	Seed int64
	// Rate caps delivery at roughly this many connections per second;
	// 0 delivers as fast as downstream accepts (pure load test).
	Rate float64
	// AttackFraction injects an evasion strategy into this fraction of
	// connections (0: all benign).
	AttackFraction float64
	// Strategies names the evasion strategies to rotate through; empty
	// selects a default detectable mix.
	Strategies []string
	// Batch is the generation granularity (connections per trafficgen
	// call); default 64.
	Batch int
}

// Soak is the load-testing source: an endless stream of synthetic
// backbone-style connections, optionally laced with evasion attacks — the
// trafficgen soak mode used to exercise a clap-serve deployment without a
// capture feed. Fully deterministic under cfg.Seed when Rate is 0.
func Soak(cfg SoakConfig) ServeSource {
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	if len(cfg.Strategies) == 0 {
		cfg.Strategies = []string{
			"GFW: Injected RST Bad TCP-Checksum/MD5-Option",
			"Low TTL (Max)",
			"Injected RST-ACK / Bad TCP Checksum",
		}
	}
	return &soakSource{cfg: cfg}
}

type soakSource struct{ cfg SoakConfig }

func (s *soakSource) Name() string { return "soak" }

func (s *soakSource) Stream(ctx context.Context, deliver func(*Connection)) (int, error) {
	strategies := make([]Strategy, 0, len(s.cfg.Strategies))
	for _, name := range s.cfg.Strategies {
		st, ok := attacks.ByName(name)
		if !ok {
			return 0, fmt.Errorf("soak: unknown strategy %q", name)
		}
		strategies = append(strategies, st)
	}
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	var ticker *time.Ticker
	if s.cfg.Rate > 0 {
		ticker = time.NewTicker(time.Duration(float64(time.Second) / s.cfg.Rate))
		defer ticker.Stop()
	}
	produced := 0
	for batch := 0; ; batch++ {
		n := s.cfg.Batch
		if s.cfg.Connections > 0 {
			if remaining := s.cfg.Connections - produced; remaining <= 0 {
				return 0, nil
			} else if n > remaining {
				n = remaining
			}
		}
		// Each batch gets its own derived seed so the stream never repeats.
		conns := GenerateBenign(n, s.cfg.Seed+int64(batch)*7919)
		for i, c := range conns {
			if s.cfg.AttackFraction > 0 && rng.Float64() < s.cfg.AttackFraction {
				st := strategies[(produced+i)%len(strategies)]
				if st.Apply(c, rng) {
					c.AttackName = st.Name
				}
			}
			if ticker != nil {
				select {
				case <-ctx.Done():
					return 0, nil
				case <-ticker.C:
				}
			} else if ctx.Err() != nil {
				return 0, nil
			}
			deliver(c)
		}
		produced += n
	}
}

// Replay adapts a batch Source to the live contract: the corpus is read
// once and delivered connection by connection — replaying a recorded pcap
// through a running clap-serve instance.
func Replay(name string, src Source) ServeSource {
	return &replaySource{name: name, src: src}
}

type replaySource struct {
	name string
	src  Source
}

func (s *replaySource) Name() string { return s.name }

func (s *replaySource) Stream(ctx context.Context, deliver func(*Connection)) (int, error) {
	conns, skipped, err := s.src.Connections(nil)
	if err != nil {
		return skipped, err
	}
	for _, c := range conns {
		if ctx.Err() != nil {
			return skipped, nil
		}
		deliver(c)
	}
	return skipped, nil
}
