package clap

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"

	"clap/internal/afpacket"
	"clap/internal/attacks"
	"clap/internal/flow"
	"clap/internal/packet"
	"clap/internal/pcapio"
)

// ServeSource is the live counterpart of Source: instead of returning one
// finished corpus, it delivers connections continuously as they complete —
// the ingest contract of the clap-serve daemon. Implementations run until
// the context is cancelled or the underlying feed ends, and report how
// many records they could not decode.
type ServeSource interface {
	// Name labels the source in serving metrics and logs.
	Name() string
	// Stream blocks, handing each completed connection to deliver in
	// arrival order, until ctx is cancelled or the feed is exhausted.
	// deliver may block (backpressure) or drop internally; the source
	// just produces. skipped counts records the source could not decode.
	Stream(ctx context.Context, deliver func(*Connection)) (skipped int, err error)
}

// RingStatser is implemented by capture sources backed by a kernel ring
// buffer (AFPacket): cumulative packets the kernel matched to the socket
// and packets it dropped because userspace fell behind. The serving
// layer surfaces these as clap_serve_source_kernel_* metrics — the only
// visibility into loss that happens before the first byte reaches us.
type RingStatser interface {
	RingStats() (packets, drops uint64, ok bool)
}

// LiveConfig tunes the live sources.
type LiveConfig struct {
	// MaxPackets cuts connections that exceed this packet budget so a
	// long-lived flow is scored in segments instead of buffered forever.
	// Negative means unbounded; 0 selects the default of 512.
	MaxPackets int
	// IdleFlush emits connections that saw no packet for this long (wall
	// clock), catching half-open flows and lost teardowns. 0 disables;
	// default 5s.
	IdleFlush time.Duration
	// Poll is how often a tailing source re-checks a quiet file (and how
	// long an AF_PACKET source waits per block poll). Default 250ms.
	Poll time.Duration
}

func (c LiveConfig) withDefaults() LiveConfig {
	switch {
	case c.MaxPackets == 0:
		c.MaxPackets = 512
	case c.MaxPackets < 0:
		// The assembler's own convention: 0 is unbounded. Resolving the
		// sentinel here keeps "unbounded" expressible without making the
		// zero value of LiveConfig dangerous.
		c.MaxPackets = 0
	}
	if c.IdleFlush == 0 {
		c.IdleFlush = 5 * time.Second
	}
	if c.Poll == 0 {
		c.Poll = 250 * time.Millisecond
	}
	return c
}

// IdleFlushable is implemented by live sources whose idle-flush window —
// how long a half-open connection may sit silent before its assembled
// packets are emitted for scoring — can be adjusted after construction.
// The serving layer applies serve.Config.IdleFlush to every compatible
// source at registration, replacing the one-global-constant behaviour
// with a per-source knob (the first step toward the ROADMAP's adaptive
// per-port timeouts). Adjust only before the source starts streaming.
type IdleFlushable interface {
	SetIdleFlush(d time.Duration)
}

// TailPCAP follows a growing pcap file — the capture file a DPI-side
// tcpdump keeps appending to. The source waits for the file (and its
// global header) to appear, then streams records as they are written,
// polling on quiet periods, assembling connections incrementally and
// delivering each one as it closes, fills its packet budget, or goes
// idle. Rotation (the file replaced under the same path) and in-place
// truncation are detected on quiet periods: the source reopens, resyncs
// to the new capture's global header, and keeps the assembler's half-open
// connections intact across the boundary. The stream ends only on
// context cancellation.
func TailPCAP(path string, cfg LiveConfig) ServeSource {
	return &tailSource{path: path, cfg: cfg.withDefaults()}
}

type tailSource struct {
	path string
	cfg  LiveConfig
}

func (s *tailSource) Name() string { return "tail:" + s.path }

// SetIdleFlush implements IdleFlushable.
func (s *tailSource) SetIdleFlush(d time.Duration) {
	if d > 0 {
		s.cfg.IdleFlush = d
	}
}

func (s *tailSource) Stream(ctx context.Context, deliver func(*Connection)) (int, error) {
	// Wait for the file to exist at all.
	var f *os.File
	for {
		var err error
		f, err = os.Open(s.path)
		if err == nil {
			break
		}
		if !os.IsNotExist(err) {
			return 0, err
		}
		select {
		case <-ctx.Done():
			return 0, nil
		case <-time.After(s.cfg.Poll):
		}
	}
	tr := &tailReader{ctx: ctx, path: s.path, poll: s.cfg.Poll, f: f}
	defer tr.Close()
	return streamPCAPRecords(ctx, tr, s.cfg, deliver)
}

// errResync signals that a tailed capture file was rotated or truncated:
// the byte stream restarts at a fresh pcap global header. The ingest
// loop responds by creating a new pcap reader (discarding any stale
// buffered bytes) without disturbing the assembler's half-open state.
var errResync = errors.New("clap: capture file rotated; resyncing to new global header")

// tailReader turns a growing capture file into a blocking reader. EOF
// means "no new data yet": it polls, and on each quiet period checks for
// in-place truncation (file shrank below our offset) and rotation (the
// path now names a different inode), recovering from both by rewinding
// or reopening and reporting errResync so the pcap layer resyncs. A
// plain logrotate of a tcpdump capture therefore no longer stalls the
// source forever at a stale offset.
type tailReader struct {
	ctx  context.Context
	path string
	poll time.Duration
	f    *os.File
	off  int64
}

func (t *tailReader) Read(p []byte) (int, error) {
	for {
		n, err := t.f.Read(p)
		if n > 0 {
			t.off += int64(n)
			return n, nil
		}
		if err != nil && err != io.EOF {
			return 0, err
		}
		if err := t.check(); err != nil {
			return 0, err
		}
		select {
		case <-t.ctx.Done():
			return 0, io.EOF
		case <-time.After(t.poll):
		}
	}
}

// check looks for truncation and rotation once the file has gone quiet.
func (t *tailReader) check() error {
	cur, err := t.f.Stat()
	if err != nil {
		return err
	}
	if cur.Size() < t.off {
		// Truncated in place: the writer restarted the capture into the
		// same file. Rewind and resync.
		if _, err := t.f.Seek(0, io.SeekStart); err != nil {
			return err
		}
		t.off = 0
		return errResync
	}
	onDisk, err := os.Stat(t.path)
	if err != nil {
		if os.IsNotExist(err) {
			// Rotated away with no replacement yet; wait for one.
			return t.reopen()
		}
		return err
	}
	if !os.SameFile(cur, onDisk) {
		// Rotated: the path names a new file.
		return t.reopen()
	}
	return nil
}

// reopen polls until the path exists again, then switches to the new
// file from offset 0.
func (t *tailReader) reopen() error {
	for {
		f, err := os.Open(t.path)
		if err == nil {
			t.f.Close()
			t.f, t.off = f, 0
			return errResync
		}
		if !os.IsNotExist(err) {
			return err
		}
		select {
		case <-t.ctx.Done():
			return io.EOF
		case <-time.After(t.poll):
		}
	}
}

func (t *tailReader) Close() error { return t.f.Close() }

// FollowPCAP streams pcap records from r — stdin, a named pipe from a
// capture process, a socket — assembling and delivering connections live.
// The stream ends at EOF or context cancellation; with a blocking reader,
// cancellation takes effect at the next record boundary.
func FollowPCAP(name string, r io.Reader, cfg LiveConfig) ServeSource {
	return &followSource{name: name, r: r, cfg: cfg.withDefaults()}
}

type followSource struct {
	name string
	r    io.Reader
	cfg  LiveConfig
}

func (s *followSource) Name() string { return s.name }

// SetIdleFlush implements IdleFlushable.
func (s *followSource) SetIdleFlush(d time.Duration) {
	if d > 0 {
		s.cfg.IdleFlush = d
	}
}

func (s *followSource) Stream(ctx context.Context, deliver func(*Connection)) (int, error) {
	return streamPCAPRecords(ctx, s.r, s.cfg, deliver)
}

// recOrErr is one parsed unit of a live feed: a decoded packet, a
// skipped (undecodable or non-IPv4) record, or a terminal error.
type recOrErr struct {
	p    *packet.Packet
	skip bool
	err  error
}

// streamPCAPRecords is the pcap ingest front half: a reader goroutine
// decodes records (it may block on a quiet feed) into a recOrErr channel
// consumed by the shared assembly loop. When the byte stream resyncs
// (errResync from a rotated tail), the goroutine restarts the pcap
// reader at the new global header; the assembler is untouched, so
// connections spanning the rotation survive.
//
// On cancellation with a reader that never unblocks (a pipe with no
// writer), the reader goroutine lingers until the underlying Read
// returns; the stream itself ends promptly.
func streamPCAPRecords(ctx context.Context, r io.Reader, cfg LiveConfig, deliver func(*Connection)) (int, error) {
	recs := make(chan recOrErr, 64)
	go func() {
		defer close(recs)
		for {
			rd, err := pcapio.NewReader(r)
			if err != nil {
				if errors.Is(err, errResync) {
					continue
				}
				recs <- recOrErr{err: err}
				return
			}
			resync := false
			for !resync {
				rec, err := rd.Next()
				if err == io.EOF {
					return
				}
				if errors.Is(err, errResync) {
					resync = true
					continue
				}
				if err != nil {
					recs <- recOrErr{err: err}
					return
				}
				if len(rec.Data) == 0 {
					recs <- recOrErr{skip: true}
					continue
				}
				p, derr := packet.Decode(rec.Data)
				if derr != nil {
					recs <- recOrErr{skip: true}
					continue
				}
				p.Timestamp = rec.Timestamp
				recs <- recOrErr{p: p}
			}
		}
	}()
	return assembleRecords(ctx, recs, cfg, deliver)
}

// assembleRecords is the shared live assembly loop, common to every
// packet-granular source (pcap tail/follow and the AF_PACKET ring): it
// feeds the incremental assembler, flushes idle connections on a ticker
// even while the feed is silent, and flushes everything at end of
// stream. Sharing this loop is what makes "bit-identical to the pcap
// path" a structural property of a new source rather than a test hope.
func assembleRecords(ctx context.Context, recs <-chan recOrErr, cfg LiveConfig, deliver func(*Connection)) (int, error) {
	asm := flow.NewAssembler(deliver)
	asm.MaxPackets = cfg.MaxPackets
	var flush <-chan time.Time
	if cfg.IdleFlush > 0 {
		t := time.NewTicker(cfg.IdleFlush)
		defer t.Stop()
		flush = t.C
	}
	skipped := 0
	for {
		select {
		case <-ctx.Done():
			asm.Flush()
			return skipped, nil
		case ro, ok := <-recs:
			if !ok {
				asm.Flush()
				return skipped, nil
			}
			if ro.err != nil {
				asm.Flush()
				if ctx.Err() != nil {
					// A header or record truncated by cancellation
					// mid-read is not a corrupt capture.
					return skipped, nil
				}
				return skipped, ro.err
			}
			if ro.skip {
				skipped++
				continue
			}
			asm.Feed(ro.p)
		case <-flush:
			asm.FlushIdle(cfg.IdleFlush)
		}
	}
}

// AFPacketConfig selects and shapes a kernel capture for AFPacketCapture.
type AFPacketConfig struct {
	// Interface is the device to capture on.
	Interface string
	// Fanout joins a PACKET_FANOUT_HASH group so N workers with the
	// same FanoutID each own a disjoint, flow-consistent shard of the
	// interface. Sharding is opt-in because group 0 is itself a valid
	// fanout id: the zero-value config captures solo.
	Fanout bool
	// FanoutID is the fanout group (0..65535); consulted only when
	// Fanout is set.
	FanoutID int
	// Promiscuous captures traffic not addressed to the interface.
	Promiscuous bool
	// DropUID/DropGID, when both positive, irreversibly drop the process
	// to that uid/gid once the socket and ring exist, so root (or
	// CAP_NET_RAW) covers only socket setup.
	DropUID int
	DropGID int
}

// AFPacket is the common-case AF_PACKET source: capture iface, shard by
// PACKET_FANOUT_HASH under fanoutID (negative: no fanout). See
// AFPacketCapture for the full configuration surface.
func AFPacket(iface string, fanoutID int, cfg LiveConfig) ServeSource {
	return AFPacketCapture(AFPacketConfig{Interface: iface, Fanout: fanoutID >= 0, FanoutID: fanoutID}, cfg)
}

// fanoutID maps the zero-value-safe public fanout fields onto the
// internal sentinel convention (negative disables fanout).
func (c AFPacketConfig) fanoutID() int {
	if !c.Fanout {
		return -1
	}
	return c.FanoutID
}

// AFPacketCapture is the zero-copy live source: a TPACKETv3 mmap'd block
// ring on an AF_PACKET socket (no cgo, no libpcap). The kernel writes
// frames straight into shared memory; the source harvests whole blocks,
// decodes frames with internal/packet, and runs the same assembly loop
// as the pcap sources — so connections and scores are bit-identical to a
// pcap of the same packets. Requires CAP_NET_RAW at Stream time (only
// across socket setup when DropUID/DropGID are set), and linux.
func AFPacketCapture(acfg AFPacketConfig, cfg LiveConfig) ServeSource {
	s := &afpacketSource{name: "afpacket:" + acfg.Interface, cfg: cfg.withDefaults()}
	s.open = func() (afpacket.Ring, error) {
		h, err := afpacket.Open(afpacket.Config{
			Interface:   acfg.Interface,
			FanoutID:    acfg.fanoutID(),
			FanoutType:  afpacket.FanoutHash,
			Promiscuous: acfg.Promiscuous,
			DropUID:     acfg.DropUID,
			DropGID:     acfg.DropGID,
			PollTimeout: s.cfg.Poll,
		})
		if err != nil {
			return nil, err
		}
		return h, nil
	}
	return s
}

type afpacketSource struct {
	name string
	cfg  LiveConfig
	// open is injectable: production opens a kernel ring; tests substitute
	// afpacket.NewSyntheticRing to run the whole source unprivileged.
	open func() (afpacket.Ring, error)

	mu   sync.Mutex
	ring afpacket.Ring
}

func (s *afpacketSource) Name() string { return s.name }

// SetIdleFlush implements IdleFlushable.
func (s *afpacketSource) SetIdleFlush(d time.Duration) {
	if d > 0 {
		s.cfg.IdleFlush = d
	}
}

// RingStats implements RingStatser while the source is streaming from a
// ring that exposes kernel counters.
func (s *afpacketSource) RingStats() (uint64, uint64, bool) {
	s.mu.Lock()
	ring := s.ring
	s.mu.Unlock()
	st, ok := ring.(interface {
		Stats() (uint64, uint64, error)
	})
	if !ok {
		return 0, 0, false
	}
	pkts, drops, err := st.Stats()
	if err != nil {
		return 0, 0, false
	}
	return pkts, drops, true
}

func (s *afpacketSource) Stream(ctx context.Context, deliver func(*Connection)) (int, error) {
	ring, err := s.open()
	if err != nil {
		return 0, fmt.Errorf("afpacket: open %s: %w", s.name, err)
	}
	s.mu.Lock()
	s.ring = ring
	s.mu.Unlock()

	hctx, cancel := context.WithCancel(ctx)
	recs := make(chan recOrErr, 64)
	// Teardown order is load-bearing: the harvest goroutine walks frame
	// bytes that alias the mmap'd ring, so the mapping must outlive it.
	// On any return — cancellation included, where assembleRecords bails
	// while the goroutine may be mid-ParseBlock or blocked sending into
	// recs — cancel the harvest context, then drain recs until the
	// goroutine closes it (NextBlock reports io.EOF once its context is
	// done, so the drain terminates and unblocks any stuck send), and
	// only then detach the ring from Stats scrapes and munmap it.
	defer func() {
		cancel()
		for range recs {
		}
		s.mu.Lock()
		s.ring = nil
		s.mu.Unlock()
		ring.Close()
	}()
	go func() {
		defer close(recs)
		for {
			block, release, err := ring.NextBlock(hctx)
			if err == io.EOF {
				return
			}
			if err != nil {
				recs <- recOrErr{err: err}
				return
			}
			// Frames alias the block; packet.Decode copies everything it
			// keeps, so the block can be released after the walk.
			_, perr := afpacket.ParseBlock(block, func(f afpacket.Frame) {
				ip, ok := afpacket.IPv4Payload(f.Data)
				if !ok {
					recs <- recOrErr{skip: true}
					return
				}
				p, derr := packet.Decode(ip)
				if derr != nil {
					recs <- recOrErr{skip: true}
					return
				}
				p.Timestamp = f.Timestamp
				recs <- recOrErr{p: p}
			})
			release()
			if perr != nil {
				recs <- recOrErr{err: perr}
				return
			}
		}
	}()
	return assembleRecords(ctx, recs, s.cfg, deliver)
}

// SoakConfig tunes the synthetic soak source.
type SoakConfig struct {
	// Connections is the total to generate; 0 means run until cancelled.
	Connections int
	// Seed makes the soak deterministic (connections and attack plan).
	Seed int64
	// Rate caps delivery at roughly this many connections per second;
	// 0 delivers as fast as downstream accepts (pure load test). Rates
	// above 1e9 (sub-nanosecond intervals) are rejected at Stream time.
	Rate float64
	// AttackFraction injects an evasion strategy into this fraction of
	// connections (0: all benign).
	AttackFraction float64
	// Strategies names the evasion strategies to rotate through; empty
	// selects a default detectable mix.
	Strategies []string
	// Batch is the generation granularity (connections per trafficgen
	// call); default 64.
	Batch int
}

// Soak is the load-testing source: an endless stream of synthetic
// backbone-style connections, optionally laced with evasion attacks — the
// trafficgen soak mode used to exercise a clap-serve deployment without a
// capture feed. Fully deterministic under cfg.Seed when Rate is 0.
func Soak(cfg SoakConfig) ServeSource {
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	if len(cfg.Strategies) == 0 {
		cfg.Strategies = []string{
			"GFW: Injected RST Bad TCP-Checksum/MD5-Option",
			"Low TTL (Max)",
			"Injected RST-ACK / Bad TCP Checksum",
		}
	}
	return &soakSource{cfg: cfg}
}

type soakSource struct{ cfg SoakConfig }

func (s *soakSource) Name() string { return "soak" }

func (s *soakSource) Stream(ctx context.Context, deliver func(*Connection)) (int, error) {
	strategies := make([]Strategy, 0, len(s.cfg.Strategies))
	for _, name := range s.cfg.Strategies {
		st, ok := attacks.ByName(name)
		if !ok {
			return 0, fmt.Errorf("soak: unknown strategy %q", name)
		}
		strategies = append(strategies, st)
	}
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	var ticker *time.Ticker
	if s.cfg.Rate > 0 {
		interval := time.Duration(float64(time.Second) / s.cfg.Rate)
		if interval <= 0 {
			// A rate above 1e9/s rounds to a zero (or negative) interval,
			// which time.NewTicker rejects with a panic. Rates that high
			// mean "uncapped" at best and a typo at worst; fail loudly.
			return 0, fmt.Errorf("soak: rate %g connections/s is too high to schedule (use 0 for uncapped)", s.cfg.Rate)
		}
		ticker = time.NewTicker(interval)
		defer ticker.Stop()
	}
	produced := 0
	for batch := 0; ; batch++ {
		n := s.cfg.Batch
		if s.cfg.Connections > 0 {
			if remaining := s.cfg.Connections - produced; remaining <= 0 {
				return 0, nil
			} else if n > remaining {
				n = remaining
			}
		}
		// Each batch gets its own derived seed so the stream never repeats.
		conns := GenerateBenign(n, s.cfg.Seed+int64(batch)*7919)
		for i, c := range conns {
			if s.cfg.AttackFraction > 0 && rng.Float64() < s.cfg.AttackFraction {
				st := strategies[(produced+i)%len(strategies)]
				if st.Apply(c, rng) {
					c.AttackName = st.Name
				}
			}
			if ticker != nil {
				select {
				case <-ctx.Done():
					return 0, nil
				case <-ticker.C:
				}
			} else if ctx.Err() != nil {
				return 0, nil
			}
			deliver(c)
		}
		produced += n
	}
}

// Replay adapts a batch Source to the live contract: the corpus is read
// once and delivered connection by connection — replaying a recorded pcap
// through a running clap-serve instance.
func Replay(name string, src Source) ServeSource {
	return &replaySource{name: name, src: src}
}

type replaySource struct {
	name string
	src  Source
}

func (s *replaySource) Name() string { return s.name }

func (s *replaySource) Stream(ctx context.Context, deliver func(*Connection)) (int, error) {
	conns, skipped, err := s.src.Connections(nil)
	if err != nil {
		return skipped, err
	}
	for _, c := range conns {
		if ctx.Err() != nil {
			return skipped, nil
		}
		deliver(c)
	}
	return skipped, nil
}
