package calib

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Calibration is one frozen calibration outcome: the operating threshold
// derived at a target FPR, plus the benign-score reference distribution
// it was derived from (the sketch a drift Monitor compares live traffic
// against). Saved alongside the tagged model file, it lets a restarted
// daemon resume with the same reference distribution instead of starting
// drift monitoring blind.
type Calibration struct {
	// Tag is the registry tag of the backend the scores came from; a
	// snapshot is meaningless against a different backend family's score
	// scale, so loaders check it.
	Tag string
	// FPR is the calibration target and Threshold the derived operating
	// threshold.
	FPR       float64
	Threshold float64
	// Conns and Skipped report the calibration corpus.
	Conns   int
	Skipped int
	// Ref is the benign-score reference distribution (never nil after
	// Calibrate/Load).
	Ref *Sketch
}

// Validate checks the snapshot's invariants — loaders and options call it
// so a corrupt or hand-edited snapshot fails loudly instead of installing
// a nonsense threshold.
func (c *Calibration) Validate() error {
	if c == nil {
		return fmt.Errorf("calib: nil calibration")
	}
	if c.Tag == "" {
		return fmt.Errorf("calib: calibration carries no backend tag")
	}
	if !(c.FPR > 0 && c.FPR < 1) {
		return fmt.Errorf("calib: calibration target FPR %v outside (0, 1)", c.FPR)
	}
	if math.IsNaN(c.Threshold) || math.IsInf(c.Threshold, 0) || c.Threshold < 0 {
		return fmt.Errorf("calib: calibration threshold %v must be finite and >= 0", c.Threshold)
	}
	if c.Ref == nil || c.Ref.Count() == 0 {
		return fmt.Errorf("calib: calibration carries no reference distribution")
	}
	return nil
}

// The snapshot file format: magic, version, the length-prefixed tag,
// target/threshold/corpus numbers, then the embedded sketch. Deterministic
// byte-for-byte for identical state, like the sketch encoding.
var calMagic = [8]byte{'C', 'L', 'A', 'P', 'C', 'A', 'L', '1'}

// Save writes the calibration snapshot to w.
func (c *Calibration) Save(w io.Writer) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if len(c.Tag) > 255 {
		return fmt.Errorf("calib: tag %q not encodable", c.Tag)
	}
	sk, err := c.Ref.MarshalBinary()
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.Write(calMagic[:])
	wr := func(v any) { binary.Write(&buf, binary.BigEndian, v) }
	wr(uint8(len(c.Tag)))
	buf.WriteString(c.Tag)
	wr(math.Float64bits(c.FPR))
	wr(math.Float64bits(c.Threshold))
	wr(uint64(c.Conns))
	wr(uint64(c.Skipped))
	wr(uint32(len(sk)))
	buf.Write(sk)
	_, err = w.Write(buf.Bytes())
	return err
}

// Load reads a snapshot written by Save.
func Load(r io.Reader) (*Calibration, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || magic != calMagic {
		return nil, fmt.Errorf("calib: not a calibration snapshot")
	}
	rd := func(v any) error { return binary.Read(r, binary.BigEndian, v) }
	var tagLen uint8
	if err := rd(&tagLen); err != nil {
		return nil, fmt.Errorf("calib: truncated snapshot: %w", err)
	}
	tag := make([]byte, tagLen)
	if _, err := io.ReadFull(r, tag); err != nil {
		return nil, fmt.Errorf("calib: truncated snapshot tag: %w", err)
	}
	c := &Calibration{Tag: string(tag)}
	var fprBits, thBits, conns, skipped uint64
	for _, v := range []*uint64{&fprBits, &thBits, &conns, &skipped} {
		if err := rd(v); err != nil {
			return nil, fmt.Errorf("calib: truncated snapshot: %w", err)
		}
	}
	c.FPR = math.Float64frombits(fprBits)
	c.Threshold = math.Float64frombits(thBits)
	c.Conns, c.Skipped = int(conns), int(skipped)
	var skLen uint32
	if err := rd(&skLen); err != nil {
		return nil, fmt.Errorf("calib: truncated snapshot: %w", err)
	}
	const maxSketchBytes = 1 << 24 // a 2048-bucket sketch is ~25KB; anything near this is corrupt
	if skLen > maxSketchBytes {
		return nil, fmt.Errorf("calib: snapshot sketch of %d bytes exceeds the %d limit", skLen, maxSketchBytes)
	}
	skBytes := make([]byte, skLen)
	if _, err := io.ReadFull(r, skBytes); err != nil {
		return nil, fmt.Errorf("calib: truncated snapshot sketch: %w", err)
	}
	c.Ref = NewSketch(0, 0)
	if err := c.Ref.UnmarshalBinary(skBytes); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
