// Package calib is the online calibration subsystem: a deterministic
// streaming quantile sketch over adversarial scores, the drift monitor
// that compares the live score distribution against a frozen calibration
// reference, and the persisted calibration snapshot that lets a restarted
// daemon keep its reference distribution.
//
// CLAP's detection quality hinges on a threshold calibrated against a
// benign score distribution (paper §5: thresholds picked at a target FPR
// on benign traffic). In a long-running deployment that distribution
// drifts and the operating FPR silently decays; this package provides the
// machinery to detect the decay (Monitor), quantify it (Sketch quantiles
// vs. the calibration Snapshot) and fix it atomically (a re-derived
// threshold installed through the backend.Hot pair swap). See DESIGN.md §9.
package calib

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Default sketch parameters: 1% relative accuracy, bounded at 2048
// buckets (a benign-score range spanning twelve decades fits with room to
// spare; beyond the cap the lowest buckets collapse, distorting only the
// quantiles nobody thresholds on).
const (
	DefaultAlpha      = 0.01
	DefaultMaxBuckets = 2048

	// minIndexable is the smallest score stored in a log bucket; values at
	// or below it (including exact zeros, common for short connections)
	// land in the dedicated zero bucket.
	minIndexable = 1e-12
)

// Sketch is a deterministic streaming quantile sketch over non-negative
// scores: log-spaced buckets with fixed relative accuracy alpha (a
// DDSketch-style design, but with no randomness anywhere). Identical
// inputs in identical order produce bit-identical bucket state, quantile
// estimates and serialized snapshots — the property the serving tests
// pin. Quantile estimates carry at most alpha relative error until the
// bucket cap forces low-bucket collapse.
//
// A Sketch is not safe for concurrent use; the Monitor serializes access.
type Sketch struct {
	alpha      float64
	gamma      float64
	lnGamma    float64
	maxBuckets int

	zero    uint64 // values <= minIndexable
	dropped uint64 // NaN / negative inputs, counted but never bucketed
	count   uint64 // bucketed observations (zero bucket included)
	buckets map[int]uint64
}

// NewSketch returns an empty sketch. alpha is the relative accuracy
// target in (0, 1) and maxBuckets bounds memory; zero values select the
// defaults.
func NewSketch(alpha float64, maxBuckets int) *Sketch {
	if alpha <= 0 || alpha >= 1 {
		alpha = DefaultAlpha
	}
	if maxBuckets <= 0 {
		maxBuckets = DefaultMaxBuckets
	}
	s := &Sketch{alpha: alpha, maxBuckets: maxBuckets, buckets: make(map[int]uint64)}
	s.derive()
	return s
}

func (s *Sketch) derive() {
	s.gamma = (1 + s.alpha) / (1 - s.alpha)
	s.lnGamma = math.Log(s.gamma)
}

// key maps a score to its log bucket index: bucket k holds values in
// (gamma^(k-1), gamma^k].
func (s *Sketch) key(x float64) int {
	return int(math.Ceil(math.Log(x) / s.lnGamma))
}

// value is bucket k's representative score — the log-space midpoint,
// which keeps the relative error of any value in the bucket within alpha.
func (s *Sketch) value(k int) float64 {
	return 2 * math.Pow(s.gamma, float64(k)) / (s.gamma + 1)
}

// Add records one score. Negative, NaN or infinite scores are counted as
// dropped but never bucketed — they cannot occur on the scoring paths,
// and poisoning the distribution with them would corrupt every quantile
// (+Inf in particular would key to the minimum bucket index and sort an
// infinitely anomalous score below every real one).
func (s *Sketch) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
		s.dropped++
		return
	}
	if x <= minIndexable {
		s.zero++
		s.count++
		return
	}
	k := s.key(x)
	s.buckets[k]++
	s.count++
	s.collapse()
}

// collapse folds the lowest bucket into its neighbour while the bucket
// cap is exceeded, bounding memory at the cost of low-quantile accuracy.
func (s *Sketch) collapse() {
	for len(s.buckets) > s.maxBuckets {
		lo1, lo2 := math.MaxInt, math.MaxInt // smallest, second smallest
		for k := range s.buckets {
			switch {
			case k < lo1:
				lo1, lo2 = k, lo1
			case k < lo2:
				lo2 = k
			}
		}
		s.buckets[lo2] += s.buckets[lo1]
		delete(s.buckets, lo1)
	}
}

// Count reports how many scores the sketch holds.
func (s *Sketch) Count() uint64 { return s.count }

// Dropped reports how many NaN/negative inputs were rejected.
func (s *Sketch) Dropped() uint64 { return s.dropped }

// Alpha reports the sketch's relative accuracy target.
func (s *Sketch) Alpha() float64 { return s.alpha }

// sortedKeys returns the occupied bucket indices in ascending order.
func (s *Sketch) sortedKeys() []int {
	keys := make([]int, 0, len(s.buckets))
	for k := range s.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Quantile estimates the q-th (0..1) quantile. NaN on an empty sketch.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.count)))
	if rank == 0 {
		rank = 1
	}
	cum := s.zero
	if cum >= rank {
		return 0
	}
	for _, k := range s.sortedKeys() {
		cum += s.buckets[k]
		if cum >= rank {
			return s.value(k)
		}
	}
	// Unreachable when counts are consistent; return the top bucket.
	keys := s.sortedKeys()
	return s.value(keys[len(keys)-1])
}

// FractionAtOrAbove estimates the fraction of recorded scores >= x — the
// operating-FPR estimator when x is the live threshold and the recorded
// scores are (predominantly) benign. The estimate includes x's own bucket
// whole, so it errs high by at most the bucket's alpha-wide slice.
func (s *Sketch) FractionAtOrAbove(x float64) float64 {
	if s.count == 0 {
		return 0
	}
	if x <= 0 {
		return 1
	}
	if x <= minIndexable {
		return 1
	}
	kx := s.key(x)
	var above uint64
	for k, c := range s.buckets {
		if k >= kx {
			above += c
		}
	}
	return float64(above) / float64(s.count)
}

// ThresholdAtFPR derives the operating threshold that keeps the fraction
// of recorded scores at or above it within targetFPR — the sketch-side
// mirror of metrics.ThresholdAtFPR, used for "live" recalibration. The
// returned threshold sits just above a bucket boundary, so it is
// conservative: the realized fraction never exceeds the target. +Inf on
// an empty sketch (nothing is flagged until real data arrives).
func (s *Sketch) ThresholdAtFPR(targetFPR float64) float64 {
	if s.count == 0 {
		return math.Inf(1)
	}
	allowed := uint64(targetFPR * float64(s.count))
	if allowed >= s.count {
		return 0
	}
	keys := s.sortedKeys()
	var cum uint64
	for i := len(keys) - 1; i >= 0; i-- {
		cum += s.buckets[keys[i]]
		if cum > allowed {
			// Bucket keys[i] cannot be fully admitted: the threshold moves
			// just above its upper bound, excluding it entirely. The
			// alpha/4 inflation (an eighth of a bucket in log space) keeps
			// the threshold robustly inside the next bucket, so key()
			// rounding can never fold the excluded bucket back in.
			return math.Pow(s.gamma, float64(keys[i])) * (1 + s.alpha/4)
		}
	}
	// Only the zero bucket remains below the allowance.
	return math.Nextafter(minIndexable, math.Inf(1))
}

// Merge folds o into s. Both sketches must share the same alpha — merging
// across accuracies would misalign every bucket boundary.
func (s *Sketch) Merge(o *Sketch) error {
	if o == nil {
		return nil
	}
	if o.alpha != s.alpha {
		return fmt.Errorf("calib: merging sketches with different alpha (%v vs %v)", o.alpha, s.alpha)
	}
	s.zero += o.zero
	s.dropped += o.dropped
	s.count += o.count
	for k, c := range o.buckets {
		s.buckets[k] += c
	}
	s.collapse()
	return nil
}

// Clone returns an independent deep copy.
func (s *Sketch) Clone() *Sketch {
	c := NewSketch(s.alpha, s.maxBuckets)
	c.zero, c.dropped, c.count = s.zero, s.dropped, s.count
	for k, v := range s.buckets {
		c.buckets[k] = v
	}
	return c
}

// Reset empties the sketch, keeping its configuration.
func (s *Sketch) Reset() {
	s.zero, s.dropped, s.count = 0, 0, 0
	s.buckets = make(map[int]uint64)
}

// The serialized sketch: magic, alpha bits, bucket cap, counters, then
// the buckets sorted by index — a byte-deterministic encoding, pinned by
// test (identical sketch state always marshals to identical bytes).
var sketchMagic = [8]byte{'C', 'L', 'A', 'P', 'S', 'K', 'T', '1'}

// MarshalBinary implements encoding.BinaryMarshaler deterministically.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(sketchMagic[:])
	w := func(v any) { binary.Write(&buf, binary.BigEndian, v) }
	w(math.Float64bits(s.alpha))
	w(uint32(s.maxBuckets))
	w(s.zero)
	w(s.dropped)
	w(s.count)
	keys := s.sortedKeys()
	w(uint32(len(keys)))
	for _, k := range keys {
		w(int32(k))
		w(s.buckets[k])
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a sketch marshalled by MarshalBinary.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	var magic [8]byte
	if _, err := r.Read(magic[:]); err != nil || magic != sketchMagic {
		return fmt.Errorf("calib: not a sketch snapshot")
	}
	var (
		alphaBits uint64
		maxB, n   uint32
	)
	rd := func(v any) error { return binary.Read(r, binary.BigEndian, v) }
	if err := rd(&alphaBits); err != nil {
		return fmt.Errorf("calib: truncated sketch snapshot: %w", err)
	}
	alpha := math.Float64frombits(alphaBits)
	if !(alpha > 0 && alpha < 1) {
		return fmt.Errorf("calib: sketch snapshot carries invalid alpha %v", alpha)
	}
	if err := rd(&maxB); err != nil {
		return fmt.Errorf("calib: truncated sketch snapshot: %w", err)
	}
	if maxB == 0 {
		return fmt.Errorf("calib: sketch snapshot carries zero bucket cap")
	}
	s.alpha, s.maxBuckets = alpha, int(maxB)
	s.derive()
	if err := rd(&s.zero); err != nil {
		return fmt.Errorf("calib: truncated sketch snapshot: %w", err)
	}
	if err := rd(&s.dropped); err != nil {
		return fmt.Errorf("calib: truncated sketch snapshot: %w", err)
	}
	if err := rd(&s.count); err != nil {
		return fmt.Errorf("calib: truncated sketch snapshot: %w", err)
	}
	if err := rd(&n); err != nil {
		return fmt.Errorf("calib: truncated sketch snapshot: %w", err)
	}
	s.buckets = make(map[int]uint64, n)
	var total uint64 = s.zero
	for i := uint32(0); i < n; i++ {
		var k int32
		var c uint64
		if err := rd(&k); err != nil {
			return fmt.Errorf("calib: truncated sketch buckets: %w", err)
		}
		if err := rd(&c); err != nil {
			return fmt.Errorf("calib: truncated sketch buckets: %w", err)
		}
		s.buckets[int(k)] += c
		total += c
	}
	if total != s.count {
		return fmt.Errorf("calib: sketch snapshot count %d does not match buckets (%d)", s.count, total)
	}
	return nil
}
