package calib

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// refSketch builds a reference distribution from a deterministic benign
// score sweep around 0.1.
func refSketch(n int) *Sketch {
	s := NewSketch(0, 0)
	for i := 0; i < n; i++ {
		s.Add(0.05 + 0.1*float64(i)/float64(n-1))
	}
	return s
}

// benignScore replays the same sweep one score at a time, strided by a
// coprime so every rolling window samples the full distribution instead
// of a narrow slice of it.
func benignScore(i, n int) float64 {
	j := (i * 617) % n
	return 0.05 + 0.1*float64(j)/float64(n-1)
}

func TestMonitorNoFalseAlertOnStableTraffic(t *testing.T) {
	ref := refSketch(1000)
	th := ref.ThresholdAtFPR(0.05)
	m := NewMonitor(ref, 0.05, MonitorConfig{Window: 100, Windows: 3})
	for i := 0; i < 1000; i++ {
		if st := m.Observe(benignScore(i, 1000), th); st != nil {
			t.Fatalf("false drift alert at observation %d: %+v", i, st)
		}
	}
	st := m.Status(th)
	if st.Alert {
		t.Fatalf("stable traffic alerted: %s", st.Reason)
	}
	if st.Drift > 0.1 {
		t.Fatalf("stable traffic drift = %v", st.Drift)
	}
	if st.OperatingFPR > 0.05*2 {
		t.Fatalf("stable operating FPR = %v at target 0.05", st.OperatingFPR)
	}
	if st.Observed != 1000 {
		t.Fatalf("observed = %d", st.Observed)
	}
}

// TestMonitorCatchesScaleShift: a mid-stream score-scale shift trips the
// alert exactly once (edge-triggered), within a bounded number of
// observations, and Recalibrate restores the operating FPR.
func TestMonitorCatchesScaleShift(t *testing.T) {
	const window = 100
	ref := refSketch(1000)
	th := ref.ThresholdAtFPR(0.05)
	m := NewMonitor(ref, 0.05, MonitorConfig{Window: window, Windows: 3})

	for i := 0; i < 300; i++ {
		if st := m.Observe(benignScore(i, 1000), th); st != nil {
			t.Fatalf("pre-shift alert: %+v", st)
		}
	}
	// The model's score scale triples: every benign score now lands over
	// the stale threshold.
	alerts := 0
	var alertAt int
	var last *Status
	for i := 0; i < 5*window; i++ {
		if st := m.Observe(3*benignScore(i, 1000), th); st != nil {
			alerts++
			alertAt, last = i, st
		}
	}
	if alerts != 1 {
		t.Fatalf("shift fired %d alerts, want exactly 1 (edge-triggered)", alerts)
	}
	if alertAt >= 3*window {
		t.Fatalf("alert only after %d shifted observations", alertAt)
	}
	if last.Drift <= 0.5 {
		t.Fatalf("alert drift = %v, want > 0.5 for a 3x shift", last.Drift)
	}
	if !last.Alert || last.Reason == "" {
		t.Fatalf("alert status malformed: %+v", last)
	}

	// Live recalibration: derive a fresh threshold from the shifted
	// distribution; at the new threshold the realized flag rate is back
	// at (or under) target.
	newTh, live, err := m.Recalibrate(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if newTh <= th {
		t.Fatalf("recalibrated threshold %v not above stale %v after upward shift", newTh, th)
	}
	if live.FractionAtOrAbove(newTh) > 0.05 {
		t.Fatalf("recalibrated FPR estimate %v over target", live.FractionAtOrAbove(newTh))
	}
	m.Reset(live, 0.05)
	for i := 0; i < 3*window; i++ {
		if st := m.Observe(3*benignScore(i, 1000), newTh); st != nil {
			t.Fatalf("post-recalibration alert: %+v", st)
		}
	}
	if st := m.Status(newTh); st.Alert || st.OperatingFPR > 0.05*2 {
		t.Fatalf("post-recalibration status: alert=%v opFPR=%v", st.Alert, st.OperatingFPR)
	}
}

// TestMonitorBlindDetector: scores collapsing far below the threshold
// (nothing flagged anymore) also alert — the low-side FPR rule.
func TestMonitorBlindDetector(t *testing.T) {
	ref := refSketch(1000)
	th := ref.ThresholdAtFPR(0.05)
	m := NewMonitor(ref, 0.05, MonitorConfig{Window: 100, Windows: 2, MaxShift: -1})
	fired := false
	for i := 0; i < 400; i++ {
		if st := m.Observe(0.01*benignScore(i, 1000), th); st != nil {
			fired = true
			if !strings.Contains(st.Reason, "blind") {
				t.Fatalf("unexpected reason %q", st.Reason)
			}
		}
	}
	if !fired {
		t.Fatal("collapsed scores never tripped the low-side FPR alert")
	}
}

// TestMonitorResetSkipping: scores still in flight on the pre-reset
// model are dropped after a reset instead of polluting the new
// reference's first window — even when their scale would otherwise trip
// an instant alert.
func TestMonitorResetSkipping(t *testing.T) {
	ref := refSketch(1000)
	th := ref.ThresholdAtFPR(0.05)
	m := NewMonitor(ref, 0.05, MonitorConfig{Window: 50, Windows: 2})
	m.ResetSkipping(ref, 0.05, -5) // negative skip: plain reset
	m.ResetSkipping(ref, 0.05, 60)
	// 60 wildly-shifted stale scores: all skipped, none recorded.
	for i := 0; i < 60; i++ {
		if st := m.Observe(100*benignScore(i, 1000), th); st != nil {
			t.Fatalf("skipped stale score fired an alert: %+v", st)
		}
	}
	if st := m.Status(th); st.Observed != 0 || st.LiveCount != 0 {
		t.Fatalf("stale scores recorded: observed=%d live=%d", st.Observed, st.LiveCount)
	}
	// Fresh on-scale scores then behave exactly as after a clean reset.
	for i := 0; i < 120; i++ {
		if st := m.Observe(benignScore(i, 1000), th); st != nil {
			t.Fatalf("post-skip benign scores alerted: %+v", st)
		}
	}
	if st := m.Status(th); st.Observed != 120 || st.Alert {
		t.Fatalf("post-skip status: %+v", st)
	}
}

func TestMonitorRecalibrateNeedsData(t *testing.T) {
	m := NewMonitor(nil, 0, MonitorConfig{Window: 100})
	if _, _, err := m.Recalibrate(0.05); err == nil {
		t.Fatal("recalibration with no observations succeeded")
	}
	for i := 0; i < 50; i++ {
		m.Observe(0.1, 0)
	}
	if _, _, err := m.Recalibrate(0.05); err == nil {
		t.Fatal("recalibration below one window succeeded")
	}
	if _, _, err := m.Recalibrate(1.5); err == nil {
		t.Fatal("recalibration with FPR 1.5 succeeded")
	}
	for i := 0; i < 50; i++ {
		m.Observe(0.1, 0)
	}
	if _, _, err := m.Recalibrate(0.05); err != nil {
		t.Fatalf("recalibration with a full window failed: %v", err)
	}
}

// TestMonitorZeroAtomNoFlapping: a reference whose median sits on a mass
// atom at zero (short connections scoring exactly 0) must not peg the
// drift statistic when the live median flips between 0 and a negligible
// nonzero value — only shifts commensurate with the distribution's real
// scale may alert.
func TestMonitorZeroAtomNoFlapping(t *testing.T) {
	ref := NewSketch(0, 0)
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			ref.Add(0) // 50% exact zeros: q50 sits on the atom
		} else {
			ref.Add(0.1 + 0.05*float64(i%100)/100)
		}
	}
	m := NewMonitor(ref, 0, MonitorConfig{Window: 100, Windows: 2, FPRFactor: -1})
	// Live traffic: 49% zeros, the rest on scale — the median lands in a
	// tiny nonzero bucket, a numerically negligible change.
	for i := 0; i < 400; i++ {
		var score float64
		switch {
		case i%100 < 49:
			score = 0
		case i%100 == 49:
			score = 2e-12 // just above the zero bucket
		default:
			score = 0.1 + 0.05*float64(i%100)/100
		}
		if st := m.Observe(score, 0); st != nil {
			t.Fatalf("negligible median flip alerted: %+v", st)
		}
	}
	if st := m.Status(0); st.Drift > 0.5 {
		t.Fatalf("drift pegged at %v on a sub-epsilon median flip", st.Drift)
	}
	// A genuine full-scale excursion still registers.
	m.Reset(ref, 0)
	for i := 0; i < 200; i++ {
		m.Observe(0.15, 0) // every score at the reference's top scale
	}
	if st := m.Status(0); st.Drift < 0.5 {
		t.Fatalf("real full-scale shift reported drift %v", st.Drift)
	}
}

// TestMonitorWithoutReference: no reference means only the FPR rule can
// judge, and /v1/drift-style status reports Reference=false.
func TestMonitorWithoutReference(t *testing.T) {
	m := NewMonitor(nil, 0, MonitorConfig{Window: 50})
	for i := 0; i < 120; i++ {
		if st := m.Observe(0.5, 0.2); st != nil {
			t.Fatalf("alert with no reference and no target FPR: %+v", st)
		}
	}
	st := m.Status(0.2)
	if st.Reference || st.Drift != 0 || len(st.Quantiles) != 0 {
		t.Fatalf("reference-less status: %+v", st)
	}
	if st.OperatingFPR != 1 {
		t.Fatalf("operating FPR = %v, want 1 (every score over threshold)", st.OperatingFPR)
	}
}

func TestCalibrationSaveLoadRoundTrip(t *testing.T) {
	ref := refSketch(500)
	cal := &Calibration{Tag: "clap", FPR: 0.05, Threshold: ref.ThresholdAtFPR(0.05), Conns: 500, Skipped: 3, Ref: ref}
	var buf bytes.Buffer
	if err := cal.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Tag != cal.Tag || back.FPR != cal.FPR || back.Threshold != cal.Threshold ||
		back.Conns != cal.Conns || back.Skipped != cal.Skipped {
		t.Fatalf("round trip: %+v vs %+v", back, cal)
	}
	if math.Float64bits(back.Ref.Quantile(0.9)) != math.Float64bits(ref.Quantile(0.9)) {
		t.Fatal("reference sketch not preserved")
	}
	// Deterministic bytes: saving the restored snapshot is bit-identical.
	var buf2 bytes.Buffer
	if err := back.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("snapshot serialization not deterministic")
	}

	for _, bad := range []*Calibration{
		{Tag: "", FPR: 0.05, Threshold: 1, Ref: ref},
		{Tag: "clap", FPR: 0, Threshold: 1, Ref: ref},
		{Tag: "clap", FPR: 0.05, Threshold: math.NaN(), Ref: ref},
		{Tag: "clap", FPR: 0.05, Threshold: 1, Ref: nil},
	} {
		if err := bad.Save(&bytes.Buffer{}); err == nil {
			t.Fatalf("invalid calibration %+v saved", bad)
		}
	}
	if _, err := Load(bytes.NewReader([]byte("not a snapshot at all"))); err == nil {
		t.Fatal("garbage snapshot loaded")
	}
	if _, err := Load(bytes.NewReader(buf.Bytes()[:40])); err == nil {
		t.Fatal("truncated snapshot loaded")
	}
}
