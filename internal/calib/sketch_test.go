package calib

import (
	"bytes"
	"math"
	"sort"
	"testing"
)

// Deterministic score generators — no RNG anywhere, so every run of every
// test sees exactly the same inputs in exactly the same order.

func uniformScores(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.01 + 0.99*float64(i)/float64(n-1)
	}
	return out
}

func bimodalScores(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		if i%3 == 0 {
			out[i] = 0.02 + 0.001*float64(i%50)
		} else {
			out[i] = 1.5 + 0.01*float64(i%80)
		}
	}
	return out
}

func heavyTailScores(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		// A Pareto-ish tail via a deterministic sweep of the inverse CDF.
		u := (float64(i) + 0.5) / float64(n)
		out[i] = 0.05 * math.Pow(1-u, -1.3)
	}
	return out
}

func shiftedScores(n int) []float64 {
	out := uniformScores(n)
	for i := range out {
		out[i] = out[i]*3 + 0.4
	}
	return out
}

// exactQuantile is the ground truth: the same ceil-rank convention the
// sketch uses, computed on the sorted raw samples.
func exactQuantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	rank := int(math.Ceil(q * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

func fill(t *testing.T, xs []float64) *Sketch {
	t.Helper()
	s := NewSketch(0, 0)
	for _, x := range xs {
		s.Add(x)
	}
	if s.Count() != uint64(len(xs)) {
		t.Fatalf("sketch count %d, want %d", s.Count(), len(xs))
	}
	return s
}

// TestSketchQuantileAccuracy pins the sketch's relative error against the
// exact quantiles of fixed deterministic distributions. The design bound
// is alpha (1%); the pinned tolerance adds slack for the ceil-rank
// discretization on finite samples.
func TestSketchQuantileAccuracy(t *testing.T) {
	cases := []struct {
		name   string
		scores []float64
		tol    float64
	}{
		{"uniform", uniformScores(4000), 0.02},
		{"bimodal", bimodalScores(4000), 0.02},
		{"heavy-tail", heavyTailScores(4000), 0.02},
		{"shifted", shiftedScores(4000), 0.02},
	}
	quantiles := []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := fill(t, tc.scores)
			for _, q := range quantiles {
				exact := exactQuantile(tc.scores, q)
				got := s.Quantile(q)
				rel := math.Abs(got-exact) / exact
				if rel > tc.tol {
					t.Errorf("q=%v: sketch %v vs exact %v (rel err %.4f > %.4f)", q, got, exact, rel, tc.tol)
				}
			}
		})
	}
}

// TestSketchDeterminism: identical input order produces bit-identical
// quantiles and bit-identical serialized snapshots — the property the
// serving tests and the persisted calibration reference rely on.
func TestSketchDeterminism(t *testing.T) {
	for _, scores := range [][]float64{uniformScores(3000), bimodalScores(3000), heavyTailScores(3000)} {
		a, b := fill(t, scores), fill(t, scores)
		for _, q := range []float64{0, 0.01, 0.5, 0.9, 0.999, 1} {
			qa, qb := a.Quantile(q), b.Quantile(q)
			if math.Float64bits(qa) != math.Float64bits(qb) {
				t.Fatalf("q=%v: %v != %v across identical runs", q, qa, qb)
			}
		}
		ba, err := a.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		bb, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba, bb) {
			t.Fatal("identical input order produced different serialized snapshots")
		}
	}
}

// TestSketchMergeEquivalence: merging per-half sketches equals the sketch
// of the whole stream, bit for bit, at every probed quantile and in the
// serialized form (log buckets are order-independent below the cap).
func TestSketchMergeEquivalence(t *testing.T) {
	scores := bimodalScores(2000)
	whole := fill(t, scores)
	first := fill(t, scores[:700])
	second := fill(t, scores[700:])
	if err := first.Merge(second); err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.05, 0.5, 0.95, 0.99} {
		qa, qb := whole.Quantile(q), first.Quantile(q)
		if math.Float64bits(qa) != math.Float64bits(qb) {
			t.Fatalf("q=%v: whole %v != merged %v", q, qa, qb)
		}
	}
	ba, _ := whole.MarshalBinary()
	bb, _ := first.MarshalBinary()
	if !bytes.Equal(ba, bb) {
		t.Fatal("merged snapshot differs from whole-stream snapshot")
	}
	mismatched := NewSketch(0.05, 0)
	if err := whole.Merge(mismatched); err == nil {
		t.Fatal("merge across different alphas succeeded")
	}
}

// TestSketchSerializeRoundTrip: marshal -> unmarshal -> marshal is
// bit-identical, and the restored sketch answers every query identically.
func TestSketchSerializeRoundTrip(t *testing.T) {
	s := fill(t, heavyTailScores(2500))
	s.Add(0)  // zero bucket
	s.Add(-1) // dropped
	raw, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Sketch
	if err := back.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	raw2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("round-trip serialization not bit-identical")
	}
	if back.Count() != s.Count() || back.Dropped() != s.Dropped() {
		t.Fatalf("round-trip counters: %d/%d vs %d/%d", back.Count(), back.Dropped(), s.Count(), s.Dropped())
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if math.Float64bits(back.Quantile(q)) != math.Float64bits(s.Quantile(q)) {
			t.Fatalf("q=%v differs after round trip", q)
		}
	}
	for _, corrupt := range [][]byte{
		nil,
		[]byte("garbage"),
		raw[:len(raw)-3],
		append([]byte("XXXXXXXX"), raw[8:]...),
	} {
		var c Sketch
		if err := c.UnmarshalBinary(corrupt); err == nil {
			t.Fatalf("corrupt snapshot of %d bytes unmarshalled", len(corrupt))
		}
	}
}

// TestSketchThresholdAtFPR: the sketch-derived threshold realizes at most
// the target flag fraction on the recorded distribution, and stays close
// to the exact-score threshold.
func TestSketchThresholdAtFPR(t *testing.T) {
	for _, tc := range []struct {
		name   string
		scores []float64
	}{
		{"uniform", uniformScores(4000)},
		{"heavy-tail", heavyTailScores(4000)},
		{"shifted", shiftedScores(4000)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := fill(t, tc.scores)
			for _, fpr := range []float64{0.01, 0.05, 0.25} {
				th := s.ThresholdAtFPR(fpr)
				realized := 0
				for _, x := range tc.scores {
					if x >= th {
						realized++
					}
				}
				got := float64(realized) / float64(len(tc.scores))
				if got > fpr {
					t.Errorf("fpr=%v: realized flag fraction %v exceeds target (th=%v)", fpr, got, th)
				}
				// The conservative threshold must not be wildly above the
				// exact quantile either: within one bucket + discretization.
				exact := exactQuantile(tc.scores, 1-fpr)
				if th > exact*(1+10*DefaultAlpha) {
					t.Errorf("fpr=%v: sketch threshold %v far above exact %v", fpr, th, exact)
				}
				// The sketch's own estimate agrees.
				if est := s.FractionAtOrAbove(th); est > fpr {
					t.Errorf("fpr=%v: FractionAtOrAbove(th) = %v exceeds target", fpr, est)
				}
			}
		})
	}
	empty := NewSketch(0, 0)
	if th := empty.ThresholdAtFPR(0.01); !math.IsInf(th, 1) {
		t.Fatalf("empty-sketch threshold = %v, want +Inf", th)
	}
}

// TestSketchEdgeCases covers the zero bucket, dropped inputs and the
// bucket-cap collapse path.
func TestSketchEdgeCases(t *testing.T) {
	s := NewSketch(0, 0)
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("empty sketch quantile not NaN")
	}
	for i := 0; i < 10; i++ {
		s.Add(0)
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("all-zero median = %v", got)
	}
	if got := s.FractionAtOrAbove(0.1); got != 0 {
		t.Fatalf("all-zero FractionAtOrAbove(0.1) = %v", got)
	}
	s.Add(math.NaN())
	s.Add(-3)
	s.Add(math.Inf(1)) // would otherwise key to the MINIMUM bucket index
	s.Add(math.Inf(-1))
	if s.Dropped() != 4 || s.Count() != 10 {
		t.Fatalf("dropped=%d count=%d, want 4/10", s.Dropped(), s.Count())
	}
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("rejected inputs disturbed the distribution: q0 = %v", got)
	}

	// A small bucket cap forces collapse. Collapse folds the LOWEST
	// buckets together, so the count is preserved exactly and the top
	// quantiles — the ones thresholds are derived from — stay accurate.
	capped := NewSketch(DefaultAlpha, 64)
	scores := uniformScores(2000) // spans ~230 buckets at alpha=1%
	for _, x := range scores {
		capped.Add(x)
	}
	if len(capped.buckets) > 64 {
		t.Fatalf("bucket cap not enforced: %d buckets", len(capped.buckets))
	}
	if capped.Count() != uint64(len(scores)) {
		t.Fatalf("collapse lost mass: count %d, want %d", capped.Count(), len(scores))
	}
	for _, q := range []float64{0.9, 0.99, 1} {
		exact := exactQuantile(scores, q)
		if got := capped.Quantile(q); math.Abs(got-exact)/exact > 0.02 {
			t.Fatalf("collapsed sketch q%v = %v, exact %v", q, got, exact)
		}
	}
}
