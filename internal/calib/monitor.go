package calib

import (
	"fmt"
	"math"
	"sync"
)

// MonitorConfig tunes a drift Monitor. Zero values select the defaults;
// the serving layer maps its -drift-* flags straight onto these fields.
type MonitorConfig struct {
	// Window is how many scores fill one rolling sketch window before it
	// rotates into the ring (default 256). Drift statistics are evaluated
	// at every rotation.
	Window int
	// Windows is how many filled windows the ring retains; the live
	// distribution is their merge plus the filling window (default 4).
	Windows int
	// Quantiles are the probed quantiles compared against the reference
	// (default 0.5, 0.9, 0.99).
	Quantiles []float64
	// MaxShift is the relative quantile-shift level that trips the drift
	// alert (default 0.5 = a 50% shift at any probed quantile). Negative
	// disables the quantile-shift rule.
	MaxShift float64
	// FPRFactor trips the alert when the estimated operating FPR leaves
	// [target/FPRFactor, target*FPRFactor] (default 3). Negative disables
	// the FPR rule.
	FPRFactor float64
	// Alpha and MaxBuckets configure the underlying sketches (zero:
	// package defaults).
	Alpha      float64
	MaxBuckets int
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.Windows <= 0 {
		c.Windows = 4
	}
	if len(c.Quantiles) == 0 {
		c.Quantiles = []float64{0.5, 0.9, 0.99}
	}
	if c.MaxShift == 0 {
		c.MaxShift = 0.5
	}
	if c.FPRFactor == 0 {
		c.FPRFactor = 3
	}
	return c
}

// QuantileShift is one probed quantile's reference-vs-live comparison.
type QuantileShift struct {
	Q     float64 `json:"q"`
	Ref   float64 `json:"ref"`
	Live  float64 `json:"live"`
	Shift float64 `json:"shift"` // |live-ref| / ref
}

// Status is one evaluation of the live score distribution against the
// calibration reference — the payload of /v1/drift and the value handed
// to drift-alert hooks.
type Status struct {
	// Observed counts scores seen since the last calibration reset.
	Observed uint64 `json:"observed"`
	// LiveCount is how many recent scores back the live statistics (the
	// merged rolling windows).
	LiveCount uint64 `json:"live_count"`
	// WindowSize and WindowsRetained echo the monitor configuration.
	WindowSize      int `json:"window_size"`
	WindowsRetained int `json:"windows_retained"`

	// Threshold is the operating threshold the statistics were evaluated
	// against; TargetFPR the calibrated target (0: none configured).
	Threshold float64 `json:"threshold"`
	TargetFPR float64 `json:"target_fpr"`
	// OperatingFPR estimates the realized flag rate: the fraction of
	// recent scores at or above Threshold. On predominantly benign
	// traffic this is the operating false-positive rate.
	OperatingFPR float64 `json:"operating_fpr"`

	// Drift is the headline statistic: the largest relative shift across
	// the probed quantiles (0 with no reference).
	Drift     float64         `json:"drift"`
	Quantiles []QuantileShift `json:"quantiles,omitempty"`
	// Reference reports whether a frozen calibration reference is loaded;
	// without one only the operating-FPR rule can fire.
	Reference bool `json:"reference"`

	// Alert is the latched verdict; Reason names the rule that tripped.
	Alert  bool   `json:"alert"`
	Reason string `json:"reason,omitempty"`
}

// Monitor tracks the live score distribution in rolling deterministic
// sketch windows and compares it against a frozen calibration reference:
// quantile shift plus estimated operating FPR, the two statistics that
// reveal a stale threshold. Observe is cheap (one sketch insert) and runs
// on the serving stream's emit goroutine — off the hot scoring path;
// Status may be called concurrently from ops handlers.
type Monitor struct {
	mu  sync.Mutex
	cfg MonitorConfig

	ref       *Sketch // frozen calibration distribution (nil: none)
	targetFPR float64

	cur      *Sketch   // filling window
	ring     []*Sketch // filled windows, oldest first
	observed uint64
	skip     int // observations to drop after a reset (in-flight stale scores)

	alerted bool // edge-triggering latch
}

// NewMonitor builds a drift monitor. ref (cloned, may be nil) is the
// frozen benign-score reference and targetFPR the calibrated target; both
// can be replaced later with Reset when a recalibration installs a new
// reference.
func NewMonitor(ref *Sketch, targetFPR float64, cfg MonitorConfig) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{cfg: cfg, cur: NewSketch(cfg.Alpha, cfg.MaxBuckets)}
	m.install(ref, targetFPR)
	return m
}

func (m *Monitor) install(ref *Sketch, targetFPR float64) {
	if ref != nil {
		ref = ref.Clone()
	}
	m.ref, m.targetFPR = ref, targetFPR
}

// Reset installs a new calibration reference and target, clearing the
// rolling state and re-arming the alert — called after every
// recalibration, so post-fix observations are judged against the fix.
func (m *Monitor) Reset(ref *Sketch, targetFPR float64) {
	m.ResetSkipping(ref, targetFPR, 0)
}

// ResetSkipping is Reset plus arming a skip of the next n observations,
// both inside one critical section so no observation can slip in
// between. A recalibrating reload passes the scoring stream's in-flight
// count: connections already pinned to the OLD (model, threshold) pair
// emit after the reset, and their old-scale scores would otherwise
// pollute the new reference's first window — enough, across model
// families with different score scales, to fire a spurious drift alert
// immediately after the fix.
func (m *Monitor) ResetSkipping(ref *Sketch, targetFPR float64, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.install(ref, targetFPR)
	m.cur = NewSketch(m.cfg.Alpha, m.cfg.MaxBuckets)
	m.ring = nil
	m.observed = 0
	m.skip = 0
	if n > 0 {
		m.skip = n
	}
	m.alerted = false
}

// TargetFPR reports the current calibration target (0: none).
func (m *Monitor) TargetFPR() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.targetFPR
}

// Observe records one emitted score against the operating threshold it
// was judged with. On every window rotation the drift statistics are
// re-evaluated; when the alert condition newly trips, the latched Status
// is returned (nil otherwise) so the caller fires its alert hook exactly
// once per excursion.
func (m *Monitor) Observe(score, threshold float64) *Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.skip > 0 {
		m.skip--
		return nil
	}
	m.cur.Add(score)
	m.observed++
	if m.cur.Count() < uint64(m.cfg.Window) {
		return nil
	}
	// Rotate the filled window into the ring and evaluate.
	m.ring = append(m.ring, m.cur)
	if len(m.ring) > m.cfg.Windows {
		m.ring = m.ring[1:]
	}
	m.cur = NewSketch(m.cfg.Alpha, m.cfg.MaxBuckets)
	st := m.statusLocked(threshold)
	if st.Alert && !m.alerted {
		m.alerted = true
		return &st
	}
	if !st.Alert {
		m.alerted = false
	}
	return nil
}

// liveLocked merges the rolling state into one sketch.
func (m *Monitor) liveLocked() *Sketch {
	live := NewSketch(m.cfg.Alpha, m.cfg.MaxBuckets)
	for _, w := range m.ring {
		live.Merge(w)
	}
	live.Merge(m.cur)
	return live
}

// LiveSketch returns a clone of the merged rolling distribution — the
// "recent sketch state" a live recalibration derives its threshold from.
func (m *Monitor) LiveSketch() *Sketch {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.liveLocked()
}

// Recalibrate derives a fresh operating threshold from the recent live
// distribution at the given target FPR and returns it with the live
// sketch that backs it (the caller installs that sketch as the new
// reference via Reset). It refuses to recalibrate from less than one full
// window of observations — a threshold derived from a handful of scores
// would be noise.
func (m *Monitor) Recalibrate(fpr float64) (threshold float64, ref *Sketch, err error) {
	if !(fpr > 0 && fpr < 1) {
		return 0, nil, fmt.Errorf("calib: live recalibration target FPR %v must be in (0, 1)", fpr)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	live := m.liveLocked()
	if live.Count() < uint64(m.cfg.Window) {
		return 0, nil, fmt.Errorf("calib: %d live scores observed, need a full window of %d before live recalibration",
			live.Count(), m.cfg.Window)
	}
	return live.ThresholdAtFPR(fpr), live, nil
}

// Status evaluates the drift statistics against the given operating
// threshold right now (ops handlers call this on demand; Observe
// evaluates at window rotations).
func (m *Monitor) Status(threshold float64) Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.statusLocked(threshold)
}

func (m *Monitor) statusLocked(threshold float64) Status {
	live := m.liveLocked()
	st := Status{
		Observed:        m.observed,
		LiveCount:       live.Count(),
		WindowSize:      m.cfg.Window,
		WindowsRetained: m.cfg.Windows,
		Threshold:       threshold,
		TargetFPR:       m.targetFPR,
		Reference:       m.ref != nil && m.ref.Count() > 0,
	}
	if threshold > 0 && live.Count() > 0 {
		st.OperatingFPR = live.FractionAtOrAbove(threshold)
	}
	if st.Reference && live.Count() > 0 {
		// The reference's top probed quantile anchors the distribution's
		// scale, flooring every shift denominator (see relShift).
		scale := 0.0
		for _, q := range m.cfg.Quantiles {
			if v := m.ref.Quantile(q); v > scale {
				scale = v
			}
		}
		st.Quantiles = make([]QuantileShift, 0, len(m.cfg.Quantiles))
		for _, q := range m.cfg.Quantiles {
			refQ, liveQ := m.ref.Quantile(q), live.Quantile(q)
			shift := relShift(refQ, liveQ, scale)
			st.Quantiles = append(st.Quantiles, QuantileShift{Q: q, Ref: refQ, Live: liveQ, Shift: shift})
			if shift > st.Drift {
				st.Drift = shift
			}
		}
	}
	// Judge only with at least one full window behind the statistics; a
	// freshly reset monitor must never alert off a handful of scores.
	if live.Count() < uint64(m.cfg.Window) {
		return st
	}
	switch {
	case st.Reference && m.cfg.MaxShift > 0 && st.Drift > m.cfg.MaxShift:
		st.Alert = true
		st.Reason = fmt.Sprintf("quantile shift %.3f exceeds %.3f", st.Drift, m.cfg.MaxShift)
	case m.cfg.FPRFactor > 0 && m.targetFPR > 0 && threshold > 0 &&
		st.OperatingFPR > m.targetFPR*m.cfg.FPRFactor:
		st.Alert = true
		st.Reason = fmt.Sprintf("operating FPR %.4f above %gx target %.4f", st.OperatingFPR, m.cfg.FPRFactor, m.targetFPR)
	case m.cfg.FPRFactor > 0 && m.targetFPR > 0 && threshold > 0 &&
		st.OperatingFPR*m.cfg.FPRFactor < m.targetFPR:
		st.Alert = true
		st.Reason = fmt.Sprintf("operating FPR %.4f below target %.4f / %g — detector going blind", st.OperatingFPR, m.targetFPR, m.cfg.FPRFactor)
	}
	return st
}

// relShift is the relative quantile shift. The denominator is floored at
// 5% of the reference distribution's overall scale (its top probed
// quantile): a quantile sitting on a mass atom at zero flips between 0
// and the smallest occupied bucket on negligible mix changes, and
// dividing by the raw (near-)zero reference would peg the drift
// statistic — and flap the alert — on sub-epsilon movements. Against the
// scale floor, only a live excursion commensurate with the reference's
// real score range registers as drift.
func relShift(ref, live, scale float64) float64 {
	if math.IsNaN(ref) || math.IsNaN(live) {
		return 0
	}
	base := math.Max(math.Abs(ref), 0.05*math.Abs(scale))
	if base < minIndexable {
		// A degenerate all-zero reference: any live mass is a full shift.
		if math.Abs(live) < minIndexable {
			return 0
		}
		return 1
	}
	return math.Abs(live-ref) / base
}
