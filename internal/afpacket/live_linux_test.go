//go:build linux

package afpacket

import (
	"context"
	"errors"
	"net"
	"os"
	"syscall"
	"testing"
	"time"

	"clap/internal/packet"
)

// The live tests need CAP_NET_RAW; they skip (not fail) without it so
// the suite passes for unprivileged developers and still smoke-tests
// real kernel capture under sudo in CI. By default they loop frames
// over "lo"; set AFPACKET_TEST_RX / AFPACKET_TEST_TX to the two ends of
// a veth pair to exercise a real cross-interface path.
func liveInterfaces(t *testing.T) (rx, tx string) {
	t.Helper()
	rx, tx = os.Getenv("AFPACKET_TEST_RX"), os.Getenv("AFPACKET_TEST_TX")
	if rx == "" || tx == "" {
		rx, tx = "lo", "lo"
	}
	return rx, tx
}

func skipIfUnprivileged(t *testing.T, err error) {
	t.Helper()
	for _, e := range []error{syscall.EPERM, syscall.EACCES, syscall.EAFNOSUPPORT, syscall.ENODEV} {
		if errors.Is(err, e) {
			t.Skipf("skipping live capture test: %v", err)
		}
	}
}

// TestStatsOnClosedHandle needs no privileges: a Stats call racing Close
// (a metrics scrape that grabbed the handle just before Stream tore it
// down) must fail cleanly under statMu rather than getsockopt a dead —
// or kernel-reused — fd. Close on an already-closed handle stays a
// no-op.
func TestStatsOnClosedHandle(t *testing.T) {
	h := &Handle{fd: -1, closed: true}
	if _, _, err := h.Stats(); err == nil {
		t.Fatal("Stats on a closed handle returned nil error; it must not touch the fd")
	}
	if err := h.Close(); err != nil {
		t.Fatalf("Close on a closed handle: %v", err)
	}
}

// Injected frames are recognized by this source address; payload markers
// don't survive packet.Builder (it stores payload-stripped captures).
var injectSrcIP = [4]byte{10, 97, 102, 112}

// injector sends raw ethernet frames on an interface.
type injector struct {
	fd  int
	sll *syscall.SockaddrLinklayer
}

func newInjector(t *testing.T, iface string) *injector {
	t.Helper()
	fd, err := syscall.Socket(syscall.AF_PACKET, syscall.SOCK_RAW, 0)
	if err != nil {
		skipIfUnprivileged(t, err)
		t.Fatalf("tx socket: %v", err)
	}
	ifi, err := net.InterfaceByName(iface)
	if err != nil {
		syscall.Close(fd)
		t.Fatalf("tx interface %q: %v", iface, err)
	}
	inj := &injector{fd: fd, sll: &syscall.SockaddrLinklayer{
		Protocol: htons(syscall.ETH_P_ALL),
		Ifindex:  ifi.Index,
		Halen:    6,
	}}
	t.Cleanup(func() { syscall.Close(fd) })
	return inj
}

func (in *injector) send(t *testing.T, ipBytes []byte) {
	t.Helper()
	frame := make([]byte, 0, etherHdrLen+len(ipBytes))
	frame = append(frame, 0x02, 0, 0, 0, 0, 2) // dst
	frame = append(frame, 0x02, 0, 0, 0, 0, 1) // src
	frame = append(frame, 0x08, 0x00)          // IPv4
	frame = append(frame, ipBytes...)
	if err := syscall.Sendto(in.fd, frame, 0, in.sll); err != nil {
		t.Fatalf("sendto: %v", err)
	}
}

func tcpFrame(t *testing.T, srcPort uint16) []byte {
	t.Helper()
	p := packet.NewBuilder(injectSrcIP, [4]byte{10, 9, 8, 6}, srcPort, 80).
		Flags(packet.SYN | packet.ACK).
		Build()
	raw, err := p.Encode(packet.SerializeOptions{})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return raw
}

// injectedPort decodes a captured frame and, if it is one of ours,
// returns its TCP source port.
func injectedPort(f Frame) (uint16, bool) {
	ip, ok := IPv4Payload(f.Data)
	if !ok {
		return 0, false
	}
	p, err := packet.Decode(ip)
	if err != nil || p.IP.SrcIP != injectSrcIP {
		return 0, false
	}
	return p.TCP.SrcPort, true
}

// harvestOnce pulls at most one ready block and collects our frames'
// source ports.
func harvestOnce(ctx context.Context, t *testing.T, h *Handle, out *[]uint16) {
	t.Helper()
	block, release, err := h.NextBlock(ctx)
	if err != nil {
		return // io.EOF on ctx done
	}
	defer release()
	if _, perr := ParseBlock(block, func(f Frame) {
		if port, ok := injectedPort(f); ok {
			*out = append(*out, port)
		}
	}); perr != nil {
		t.Errorf("kernel block failed to parse: %v", perr)
	}
}

func TestLiveCaptureLoopback(t *testing.T) {
	rxIface, txIface := liveInterfaces(t)
	h, err := Open(Config{Interface: rxIface, FanoutID: -1, PollTimeout: 20 * time.Millisecond})
	if err != nil {
		skipIfUnprivileged(t, err)
		t.Fatalf("Open(%q): %v", rxIface, err)
	}
	defer h.Close()

	inj := newInjector(t, txIface)
	const sent = 5
	for i := 0; i < sent; i++ {
		inj.send(t, tcpFrame(t, uint16(40000+i)))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	seen := make(map[uint16]bool)
	var ports []uint16
	for ctx.Err() == nil && len(seen) < sent {
		ports = ports[:0]
		harvestOnce(ctx, t, h, &ports)
		for _, p := range ports {
			seen[p] = true
		}
	}
	if len(seen) < sent {
		t.Fatalf("captured %d distinct injected flows, want %d (seen %v)", len(seen), sent, seen)
	}

	pkts, drops, err := h.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if pkts == 0 {
		t.Error("kernel stats report zero packets after a successful capture")
	}
	t.Logf("kernel stats: %d packets, %d drops", pkts, drops)
}

func TestLiveFanoutFlowConsistency(t *testing.T) {
	rxIface, txIface := liveInterfaces(t)
	const fanoutID = 4242
	open := func() *Handle {
		h, err := Open(Config{Interface: rxIface, FanoutID: fanoutID, PollTimeout: 20 * time.Millisecond})
		if err != nil {
			skipIfUnprivileged(t, err)
			t.Fatalf("Open(%q) with fanout: %v", rxIface, err)
		}
		t.Cleanup(func() { h.Close() })
		return h
	}
	h1, h2 := open(), open()

	// Eight distinct flows (by source port), several frames each. The
	// fanout hash must keep every flow's frames on exactly one socket.
	const flows, perFlow = 8, 4
	inj := newInjector(t, txIface)
	for f := 0; f < flows; f++ {
		for i := 0; i < perFlow; i++ {
			inj.send(t, tcpFrame(t, uint16(41000+f)))
		}
	}

	seen := [2]map[uint16]int{make(map[uint16]int), make(map[uint16]int)}
	total := func() int {
		n := 0
		for _, m := range seen {
			for _, c := range m {
				n += c
			}
		}
		return n
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	var ports []uint16
	for ctx.Err() == nil && total() < flows*perFlow {
		for i, h := range []*Handle{h1, h2} {
			ports = ports[:0]
			harvestOnce(ctx, t, h, &ports)
			for _, p := range ports {
				seen[i][p]++
			}
		}
	}

	if total() < flows*perFlow {
		t.Fatalf("captured %d injected frames across the fanout group, want >= %d", total(), flows*perFlow)
	}
	for f := 0; f < flows; f++ {
		port := uint16(41000 + f)
		if seen[0][port] > 0 && seen[1][port] > 0 {
			t.Errorf("flow :%d split across fanout sockets: %d on h1, %d on h2", port, seen[0][port], seen[1][port])
		}
	}
}
