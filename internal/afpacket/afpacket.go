// Package afpacket implements a cgo-free AF_PACKET TPACKETv3 capture
// source: the kernel writes packets into an mmap'd ring of fixed-size
// blocks, userspace harvests whole blocks (many packets per syscall-free
// hand-off) and releases them back, and PACKET_FANOUT_HASH lets N
// processes each own a disjoint kernel-sharded slice of one interface's
// flows.
//
// The package splits into a portable half — the TPACKETv3 block walk
// (ParseBlock), a builder for synthetic in-memory blocks (BlockBuilder),
// and the Ring abstraction a capture loop consumes — and a linux-only
// half (Open) that binds a real AF_PACKET socket. Everything above the
// Ring interface is unit-testable without privileges: tests feed
// synthetic blocks through NewSyntheticRing and must observe output
// bit-identical to the pcap ingest path.
package afpacket

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// TPACKETv3 ABI. Field offsets are fixed by the kernel's
// struct tpacket_block_desc / struct tpacket3_hdr layout on every
// architecture Go supports (all fields are fixed-width and the structs
// are padded to multiples of 8).
const (
	// tpacketV3 is the PACKET_VERSION value selecting this ABI.
	tpacketV3 = 2

	// blockDescLen is sizeof(tpacket_block_desc): version(4) +
	// offset_to_priv(4) + tpacket_hdr_v1(40).
	blockDescLen = 48

	// frameHdrLen is sizeof(tpacket3_hdr) up to and including the
	// trailing padding: tp_next_offset..tp_net (28) + hv1 (12) +
	// tp_padding (8).
	frameHdrLen = 48

	// Block-descriptor field offsets.
	offBlockStatus = 8  // block_status u32
	offNumPkts     = 12 // num_pkts u32
	offFirstPkt    = 16 // offset_to_first_pkt u32
	offBlockLen    = 20 // blk_len u32
	offSeqNum      = 24 // seq_num u64
	offTSFirst     = 32 // ts_first_pkt {sec,nsec} u32 x2
	offTSLast      = 40 // ts_last_pkt  {sec,nsec} u32 x2

	// tpacket3_hdr field offsets (relative to the frame header).
	offNextOffset = 0  // tp_next_offset u32
	offSec        = 4  // tp_sec u32
	offNsec       = 8  // tp_nsec u32
	offSnaplen    = 12 // tp_snaplen u32
	offLen        = 16 // tp_len u32
	offStatus     = 20 // tp_status u32
	offMac        = 24 // tp_mac u16
	offNet        = 26 // tp_net u16

	// Block status bits (tp_status on the block descriptor).
	statusKernel = 0 // owned by the kernel
	statusUser   = 1 // TP_STATUS_USER: handed to userspace

	// tpAlign is TPACKET_ALIGNMENT: frame headers are 16-byte aligned.
	tpAlign = 16
)

// Fanout modes for Config.FanoutType (PACKET_FANOUT_*). FanoutHash is
// the one that matters here: the kernel shards by symmetric 4-tuple
// flow hash, so every packet of a connection lands on the same socket.
const (
	FanoutHash = 0
	FanoutCPU  = 2
)

// hostOrder is the byte order the kernel writes ring metadata in:
// native, because the ring is shared memory, not a wire format.
var hostOrder = binary.NativeEndian

// ErrBlockCorrupt reports a TPACKETv3 block whose internal offsets or
// lengths escape the block. A healthy kernel never produces one; a
// corrupt synthetic block (or a bug on our side of the ABI) must fail
// loudly instead of walking wild memory.
var ErrBlockCorrupt = errors.New("afpacket: corrupt TPACKETv3 block")

// Frame is one captured packet from a block walk. Data aliases the
// block's memory and is only valid until the block is released; copy
// (packet.Decode already does) before releasing.
type Frame struct {
	// Data holds the captured link-layer bytes (tp_snaplen of them).
	Data []byte
	// Timestamp is the kernel receive time.
	Timestamp time.Time
	// OrigLen is the packet's original wire length (tp_len), which
	// exceeds len(Data) when the capture snapped the packet.
	OrigLen int
}

// ParseBlock walks one TPACKETv3 block and calls emit for each frame in
// capture order. It returns the number of frames emitted. Every offset
// and length is bounds-checked against the block before use: a block
// whose walk would escape its own memory stops with ErrBlockCorrupt
// after emitting the frames that preceded the corruption.
func ParseBlock(block []byte, emit func(Frame)) (int, error) {
	if len(block) < blockDescLen {
		return 0, fmt.Errorf("%w: %d bytes is smaller than the %d-byte descriptor", ErrBlockCorrupt, len(block), blockDescLen)
	}
	numPkts := int(hostOrder.Uint32(block[offNumPkts:]))
	off := int(hostOrder.Uint32(block[offFirstPkt:]))
	for i := 0; i < numPkts; i++ {
		if off < blockDescLen || off > len(block)-frameHdrLen {
			return i, fmt.Errorf("%w: frame %d/%d header at offset %d of a %d-byte block", ErrBlockCorrupt, i, numPkts, off, len(block))
		}
		hdr := block[off:]
		next := int(hostOrder.Uint32(hdr[offNextOffset:]))
		sec := hostOrder.Uint32(hdr[offSec:])
		nsec := hostOrder.Uint32(hdr[offNsec:])
		snap := int(hostOrder.Uint32(hdr[offSnaplen:]))
		origLen := int(hostOrder.Uint32(hdr[offLen:]))
		mac := int(hostOrder.Uint16(hdr[offMac:]))
		if snap < 0 || off+mac > len(block) || snap > len(block)-off-mac {
			return i, fmt.Errorf("%w: frame %d data [%d:%d) escapes the %d-byte block", ErrBlockCorrupt, i, off+mac, off+mac+snap, len(block))
		}
		emit(Frame{
			Data:      block[off+mac : off+mac+snap],
			Timestamp: time.Unix(int64(sec), int64(nsec)),
			OrigLen:   origLen,
		})
		if i < numPkts-1 {
			if next <= 0 {
				return i + 1, fmt.Errorf("%w: frame %d/%d has non-advancing tp_next_offset %d", ErrBlockCorrupt, i, numPkts, next)
			}
			off += next
		}
	}
	return numPkts, nil
}

// Ethernet framing, mirroring internal/pcapio's linktype-Ethernet
// handling so both ingest paths skip exactly the same frames.
const (
	etherHdrLen   = 14
	etherTypeIPv4 = 0x0800
)

// IPv4Payload strips the Ethernet header from a captured frame,
// returning the IPv4 packet bytes. ok is false for frames that are not
// IPv4 (ARP, IPv6, LLC, runts) — the caller counts those as skipped,
// exactly as the pcap path does for non-IPv4 ethertypes.
func IPv4Payload(frame []byte) (payload []byte, ok bool) {
	if len(frame) < etherHdrLen {
		return nil, false
	}
	if binary.BigEndian.Uint16(frame[12:14]) != etherTypeIPv4 {
		return nil, false
	}
	return frame[etherHdrLen:], true
}

// Ring hands out TPACKETv3 blocks in capture order. It abstracts the
// kernel's mmap'd ring (Handle, linux-only) and in-memory synthetic
// rings used by tests, so the capture loop above it is identical in
// both worlds.
type Ring interface {
	// NextBlock blocks until a ready block is available and returns it
	// with a release func that MUST be called (once) when the block's
	// frames have been consumed; for a kernel ring, release returns the
	// block's ownership to the kernel. NextBlock returns io.EOF when
	// the ring is exhausted (synthetic) or the context is done.
	NextBlock(ctx context.Context) (block []byte, release func(), err error)
	// Close releases the ring's resources.
	Close() error
}

// syntheticRing replays a fixed sequence of in-memory blocks.
type syntheticRing struct {
	blocks [][]byte
	next   int
}

// NewSyntheticRing returns a Ring that hands out the given blocks in
// order and then reports io.EOF. It lets the full afpacket source run
// unprivileged: tests build blocks with BlockBuilder, feed them through
// here, and compare against the pcap path.
func NewSyntheticRing(blocks ...[]byte) Ring {
	return &syntheticRing{blocks: blocks}
}

func (s *syntheticRing) NextBlock(ctx context.Context) ([]byte, func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, io.EOF
	}
	if s.next >= len(s.blocks) {
		return nil, nil, io.EOF
	}
	b := s.blocks[s.next]
	s.next++
	return b, func() {}, nil
}

func (s *syntheticRing) Close() error { return nil }

// BlockBuilder assembles a synthetic TPACKETv3 block laid out exactly
// as the kernel would: 48-byte descriptor, then 16-byte-aligned frames,
// each a 48-byte tpacket3_hdr followed immediately by the frame data
// (tp_mac = 48).
type BlockBuilder struct {
	buf       []byte
	numPkts   int
	lastFrame int // offset of the previous frame header, -1 before the first
}

// NewBlockBuilder starts an empty block.
func NewBlockBuilder() *BlockBuilder {
	buf := make([]byte, blockDescLen)
	hostOrder.PutUint32(buf[0:], tpacketV3) // version
	hostOrder.PutUint32(buf[offBlockStatus:], statusUser)
	hostOrder.PutUint32(buf[offFirstPkt:], blockDescLen)
	return &BlockBuilder{buf: buf, lastFrame: -1}
}

// Append adds one captured frame. data is the link-layer bytes
// (tp_snaplen); origLen is the original wire length (tp_len).
func (b *BlockBuilder) Append(ts time.Time, data []byte, origLen int) {
	off := len(b.buf) // always 16-aligned: blockDescLen is, and frames pad to it
	if b.lastFrame >= 0 {
		hostOrder.PutUint32(b.buf[b.lastFrame+offNextOffset:], uint32(off-b.lastFrame))
	}
	b.lastFrame = off

	hdr := make([]byte, frameHdrLen)
	hostOrder.PutUint32(hdr[offSec:], uint32(ts.Unix()))
	hostOrder.PutUint32(hdr[offNsec:], uint32(ts.Nanosecond()))
	hostOrder.PutUint32(hdr[offSnaplen:], uint32(len(data)))
	hostOrder.PutUint32(hdr[offLen:], uint32(origLen))
	hostOrder.PutUint16(hdr[offMac:], uint16(frameHdrLen))
	hostOrder.PutUint16(hdr[offNet:], uint16(frameHdrLen+etherHdrLen))
	b.buf = append(b.buf, hdr...)
	b.buf = append(b.buf, data...)
	if pad := (tpAlign - len(b.buf)%tpAlign) % tpAlign; pad > 0 {
		b.buf = append(b.buf, make([]byte, pad)...)
	}

	if b.numPkts == 0 {
		hostOrder.PutUint32(b.buf[offTSFirst:], uint32(ts.Unix()))
		hostOrder.PutUint32(b.buf[offTSFirst+4:], uint32(ts.Nanosecond()))
	}
	hostOrder.PutUint32(b.buf[offTSLast:], uint32(ts.Unix()))
	hostOrder.PutUint32(b.buf[offTSLast+4:], uint32(ts.Nanosecond()))
	b.numPkts++
}

// Bytes finalizes and returns the block. The builder may keep being
// appended to afterwards; each call re-finalizes.
func (b *BlockBuilder) Bytes() []byte {
	hostOrder.PutUint32(b.buf[offNumPkts:], uint32(b.numPkts))
	hostOrder.PutUint32(b.buf[offBlockLen:], uint32(len(b.buf)))
	return b.buf
}
