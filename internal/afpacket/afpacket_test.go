package afpacket

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"
)

func ts(sec, nsec int64) time.Time { return time.Unix(sec, nsec) }

func buildFrames(t *testing.T, frames ...[]byte) []byte {
	t.Helper()
	b := NewBlockBuilder()
	for i, f := range frames {
		b.Append(ts(1700000000+int64(i), int64(i)*1000), f, len(f)+7)
	}
	return b.Bytes()
}

func TestBlockBuilderRoundTrip(t *testing.T) {
	frames := [][]byte{
		bytes.Repeat([]byte{0xaa}, 60),
		bytes.Repeat([]byte{0xbb}, 1),
		bytes.Repeat([]byte{0xcc}, 1500),
	}
	block := buildFrames(t, frames...)

	var got []Frame
	n, err := ParseBlock(block, func(f Frame) {
		// Copy: Frame.Data aliases the block by contract.
		got = append(got, Frame{Data: append([]byte(nil), f.Data...), Timestamp: f.Timestamp, OrigLen: f.OrigLen})
	})
	if err != nil {
		t.Fatalf("ParseBlock: %v", err)
	}
	if n != len(frames) {
		t.Fatalf("ParseBlock returned %d frames, want %d", n, len(frames))
	}
	for i, f := range got {
		if !bytes.Equal(f.Data, frames[i]) {
			t.Errorf("frame %d: data mismatch (%d bytes vs %d)", i, len(f.Data), len(frames[i]))
		}
		if want := ts(1700000000+int64(i), int64(i)*1000); !f.Timestamp.Equal(want) {
			t.Errorf("frame %d: timestamp %v, want %v", i, f.Timestamp, want)
		}
		if f.OrigLen != len(frames[i])+7 {
			t.Errorf("frame %d: OrigLen %d, want %d", i, f.OrigLen, len(frames[i])+7)
		}
	}
}

func TestParseBlockEmpty(t *testing.T) {
	block := NewBlockBuilder().Bytes()
	n, err := ParseBlock(block, func(Frame) { t.Fatal("emit called on empty block") })
	if n != 0 || err != nil {
		t.Fatalf("ParseBlock(empty) = %d, %v; want 0, nil", n, err)
	}
}

// corrupt returns a copy of block with the u32 at off overwritten.
func corrupt(block []byte, off int, v uint32) []byte {
	c := append([]byte(nil), block...)
	hostOrder.PutUint32(c[off:], v)
	return c
}

func TestParseBlockCorrupt(t *testing.T) {
	base := buildFrames(t, bytes.Repeat([]byte{1}, 40), bytes.Repeat([]byte{2}, 40))
	firstFrame := int(hostOrder.Uint32(base[offFirstPkt:]))

	cases := []struct {
		name      string
		block     []byte
		wantCount int // frames emitted before the corruption is hit
	}{
		{"short block", base[:20], 0},
		{"first offset into descriptor", corrupt(base, offFirstPkt, 4), 0},
		{"first offset past block", corrupt(base, offFirstPkt, uint32(len(base))), 0},
		{"num_pkts overruns block", corrupt(base, offNumPkts, 1000), 2},
		{"zero next offset mid-walk", corrupt(base, firstFrame+offNextOffset, 0), 1},
		{"snaplen escapes block", corrupt(base, firstFrame+offSnaplen, 1<<30), 0},
		{"snaplen wraps negative", corrupt(base, firstFrame+offSnaplen, 0xffffffff), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var emitted int
			n, err := ParseBlock(tc.block, func(f Frame) {
				emitted++
				// Emitted frames must still be in-bounds views.
				_ = f.Data
			})
			if !errors.Is(err, ErrBlockCorrupt) {
				t.Fatalf("ParseBlock = %d, %v; want ErrBlockCorrupt", n, err)
			}
			if n != emitted {
				t.Errorf("returned count %d != emitted %d", n, emitted)
			}
			if n != tc.wantCount {
				t.Errorf("emitted %d frames before failing, want %d", n, tc.wantCount)
			}
		})
	}
}

func TestSyntheticRing(t *testing.T) {
	b1 := buildFrames(t, []byte{1, 2, 3})
	b2 := buildFrames(t, []byte{4, 5})
	ring := NewSyntheticRing(b1, b2)
	defer ring.Close()

	ctx := context.Background()
	for i, want := range [][]byte{b1, b2} {
		got, release, err := ring.NextBlock(ctx)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d: wrong bytes", i)
		}
		release()
	}
	if _, _, err := ring.NextBlock(ctx); err != io.EOF {
		t.Fatalf("after exhaustion: %v, want io.EOF", err)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	fresh := NewSyntheticRing(b1)
	if _, _, err := fresh.NextBlock(cancelled); err != io.EOF {
		t.Fatalf("cancelled ctx: %v, want io.EOF", err)
	}
}

func TestIPv4Payload(t *testing.T) {
	ip := []byte{0x45, 0, 0, 20}
	eth := make([]byte, 14, 14+len(ip))
	eth[12], eth[13] = 0x08, 0x00
	eth = append(eth, ip...)

	got, ok := IPv4Payload(eth)
	if !ok || !bytes.Equal(got, ip) {
		t.Fatalf("IPv4Payload(ipv4 frame) = %v, %v", got, ok)
	}

	arp := append([]byte(nil), eth...)
	arp[12], arp[13] = 0x08, 0x06
	if _, ok := IPv4Payload(arp); ok {
		t.Fatal("IPv4Payload accepted an ARP frame")
	}
	if _, ok := IPv4Payload(eth[:10]); ok {
		t.Fatal("IPv4Payload accepted a runt frame")
	}
}

func TestDropPrivilegesRejectsRoot(t *testing.T) {
	for _, ids := range [][2]int{{0, 100}, {100, 0}, {-1, 100}} {
		if err := DropPrivileges(ids[0], ids[1]); err == nil {
			t.Errorf("DropPrivileges(%d, %d) accepted root/invalid ids", ids[0], ids[1])
		}
	}
}
