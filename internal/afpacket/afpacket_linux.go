//go:build linux

package afpacket

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// Socket options not exposed by the frozen syscall package. These are
// stable kernel ABI numbers (include/uapi/linux/if_packet.h).
const (
	packetVersion = 10 // PACKET_VERSION
	packetFanout  = 18 // PACKET_FANOUT
)

// Config describes a kernel capture ring.
type Config struct {
	// Interface is the device to capture on ("eth0", "lo", ...).
	Interface string

	// FanoutID joins this socket to a PACKET_FANOUT group (0..65535).
	// Every socket opened with the same ID on the same interface gets a
	// disjoint, flow-consistent shard of the traffic. Negative disables
	// fanout.
	FanoutID int

	// FanoutType selects the sharding discipline; the zero value is
	// FanoutHash (symmetric 4-tuple flow hash), the only mode that
	// keeps a connection's packets on one socket.
	FanoutType int

	// BlockSize is the size of one ring block in bytes; must be a
	// multiple of the page size. Default 1 MiB.
	BlockSize int

	// BlockCount is the number of blocks in the ring. Default 32.
	BlockCount int

	// FrameSize bounds a single captured frame. Default 2048.
	FrameSize int

	// PollTimeout bounds each wait for the next ready block, and is
	// also installed as the kernel's block-retire timeout so a quiet
	// link still hands over partially filled blocks. Default 100ms.
	PollTimeout time.Duration

	// Promiscuous puts the interface into promiscuous mode for the
	// lifetime of the socket.
	Promiscuous bool

	// DropUID/DropGID, when both positive, drop the process to that
	// uid/gid immediately after the socket and ring are set up, so the
	// privileged window covers only socket creation.
	DropUID int
	DropGID int
}

func (c Config) withDefaults() Config {
	if c.BlockSize == 0 {
		c.BlockSize = 1 << 20
	}
	if c.BlockCount == 0 {
		c.BlockCount = 32
	}
	if c.FrameSize == 0 {
		c.FrameSize = 2048
	}
	if c.PollTimeout <= 0 {
		c.PollTimeout = 100 * time.Millisecond
	}
	return c
}

// tpacketReq3 is struct tpacket_req3.
type tpacketReq3 struct {
	blockSize      uint32
	blockNr        uint32
	frameSize      uint32
	frameNr        uint32
	retireBlkTov   uint32
	sizeofPriv     uint32
	featureReqWord uint32
}

// tpacketStatsV3 is struct tpacket_stats_v3, the PACKET_STATISTICS
// payload for a TPACKET_V3 socket.
type tpacketStatsV3 struct {
	packets uint32
	drops   uint32
	freezeQ uint32
}

// Handle is a live TPACKETv3 capture ring. It implements Ring.
type Handle struct {
	fd          int
	ring        []byte
	blockSize   int
	blockCount  int
	next        int
	pollTimeout time.Duration

	// PACKET_STATISTICS resets on every read; these accumulate under
	// statMu (metrics scrapes call Stats concurrently with the harvest
	// goroutine's handle). closed lives under the same mutex so a
	// scrape racing Close can never getsockopt a dead — or worse,
	// kernel-reused — fd.
	statMu      sync.Mutex
	statPackets uint64
	statDrops   uint64
	closed      bool
}

// Open binds an AF_PACKET/SOCK_RAW socket to cfg.Interface, installs a
// TPACKET_V3 mmap'd block ring, optionally joins a PACKET_FANOUT_HASH
// group, and optionally drops privileges — in that order, so root (or
// CAP_NET_RAW) is needed only across this call.
func Open(cfg Config) (*Handle, error) {
	cfg = cfg.withDefaults()
	if cfg.BlockSize%syscall.Getpagesize() != 0 {
		return nil, fmt.Errorf("afpacket: block size %d is not a multiple of the %d-byte page", cfg.BlockSize, syscall.Getpagesize())
	}
	ifi, err := net.InterfaceByName(cfg.Interface)
	if err != nil {
		return nil, fmt.Errorf("afpacket: interface %q: %w", cfg.Interface, err)
	}

	fd, err := syscall.Socket(syscall.AF_PACKET, syscall.SOCK_RAW, 0)
	if err != nil {
		return nil, fmt.Errorf("afpacket: socket: %w", err)
	}
	fail := func(stage string, err error) (*Handle, error) {
		syscall.Close(fd)
		return nil, fmt.Errorf("afpacket: %s: %w", stage, err)
	}

	if err := syscall.SetsockoptInt(fd, syscall.SOL_PACKET, packetVersion, tpacketV3); err != nil {
		return fail("PACKET_VERSION TPACKET_V3", err)
	}
	req := tpacketReq3{
		blockSize:    uint32(cfg.BlockSize),
		blockNr:      uint32(cfg.BlockCount),
		frameSize:    uint32(cfg.FrameSize),
		frameNr:      uint32(cfg.BlockSize / cfg.FrameSize * cfg.BlockCount),
		retireBlkTov: uint32(cfg.PollTimeout / time.Millisecond),
	}
	if req.retireBlkTov == 0 {
		req.retireBlkTov = 1
	}
	if _, _, errno := syscall.Syscall6(syscall.SYS_SETSOCKOPT, uintptr(fd), syscall.SOL_PACKET, syscall.PACKET_RX_RING,
		uintptr(unsafe.Pointer(&req)), unsafe.Sizeof(req), 0); errno != 0 {
		return fail("PACKET_RX_RING", errno)
	}
	ring, err := syscall.Mmap(fd, 0, cfg.BlockSize*cfg.BlockCount,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return fail("mmap ring", err)
	}
	failRing := func(stage string, err error) (*Handle, error) {
		syscall.Munmap(ring)
		return fail(stage, err)
	}

	sll := &syscall.SockaddrLinklayer{
		Protocol: htons(syscall.ETH_P_ALL),
		Ifindex:  ifi.Index,
	}
	if err := syscall.Bind(fd, sll); err != nil {
		return failRing(fmt.Sprintf("bind %q", cfg.Interface), err)
	}

	if cfg.Promiscuous {
		mreq := struct {
			ifindex int32
			typ     uint16
			alen    uint16
			address [8]byte
		}{ifindex: int32(ifi.Index), typ: syscall.PACKET_MR_PROMISC}
		if _, _, errno := syscall.Syscall6(syscall.SYS_SETSOCKOPT, uintptr(fd), syscall.SOL_PACKET, syscall.PACKET_ADD_MEMBERSHIP,
			uintptr(unsafe.Pointer(&mreq)), unsafe.Sizeof(mreq), 0); errno != 0 {
			return failRing("PACKET_MR_PROMISC", errno)
		}
	}

	if cfg.FanoutID >= 0 {
		if cfg.FanoutID > 0xffff {
			return failRing("PACKET_FANOUT", fmt.Errorf("fanout id %d out of range 0..65535", cfg.FanoutID))
		}
		arg := cfg.FanoutID | cfg.FanoutType<<16
		if err := syscall.SetsockoptInt(fd, syscall.SOL_PACKET, packetFanout, arg); err != nil {
			return failRing("PACKET_FANOUT", err)
		}
	}

	if cfg.DropUID > 0 && cfg.DropGID > 0 {
		if err := DropPrivileges(cfg.DropUID, cfg.DropGID); err != nil {
			return failRing("privilege drop", err)
		}
	}

	return &Handle{
		fd:          fd,
		ring:        ring,
		blockSize:   cfg.BlockSize,
		blockCount:  cfg.BlockCount,
		pollTimeout: cfg.PollTimeout,
	}, nil
}

// htons converts a u16 to network byte order for SockaddrLinklayer.
func htons(v uint16) uint16 { return v<<8 | v>>8 }

// statusWord returns the block_status field of block i as an atomic
// cell. The kernel flips it KERNEL→USER when the block retires; we flip
// it back on release. Atomics give the required acquire/release
// ordering on the shared mapping.
func (h *Handle) statusWord(i int) *uint32 {
	return (*uint32)(unsafe.Pointer(&h.ring[i*h.blockSize+offBlockStatus]))
}

// NextBlock waits for the next ready block, polling the socket between
// checks so the goroutine parks in the kernel rather than spinning. It
// returns io.EOF once ctx is done.
func (h *Handle) NextBlock(ctx context.Context) ([]byte, func(), error) {
	for {
		if ctx.Err() != nil {
			return nil, nil, io.EOF
		}
		idx := h.next
		if atomic.LoadUint32(h.statusWord(idx))&statusUser != 0 {
			h.next = (h.next + 1) % h.blockCount
			released := false
			release := func() {
				if !released {
					released = true
					atomic.StoreUint32(h.statusWord(idx), statusKernel)
				}
			}
			return h.ring[idx*h.blockSize : (idx+1)*h.blockSize], release, nil
		}
		if err := h.poll(); err != nil {
			return nil, nil, fmt.Errorf("afpacket: poll: %w", err)
		}
	}
}

// poll waits up to pollTimeout for the socket to become readable.
func (h *Handle) poll() error {
	pfd := struct {
		fd      int32
		events  int16
		revents int16
	}{fd: int32(h.fd), events: pollIn | pollErr}
	ts := syscall.NsecToTimespec(h.pollTimeout.Nanoseconds())
	_, _, errno := syscall.Syscall6(syscall.SYS_PPOLL,
		uintptr(unsafe.Pointer(&pfd)), 1, uintptr(unsafe.Pointer(&ts)), 0, 0, 0)
	if errno != 0 && errno != syscall.EINTR {
		return errno
	}
	return nil
}

const (
	pollIn  = 0x1
	pollErr = 0x8
)

// Stats returns cumulative kernel-side counters: packets that matched
// the socket and packets the kernel dropped because the ring was full.
// (The raw PACKET_STATISTICS counters reset on read; Stats accumulates
// across reads.)
func (h *Handle) Stats() (packets, drops uint64, err error) {
	h.statMu.Lock()
	defer h.statMu.Unlock()
	if h.closed {
		return 0, 0, fmt.Errorf("afpacket: Stats on closed handle")
	}
	var st tpacketStatsV3
	l := uint32(unsafe.Sizeof(st))
	if _, _, errno := syscall.Syscall6(syscall.SYS_GETSOCKOPT, uintptr(h.fd), syscall.SOL_PACKET, syscall.PACKET_STATISTICS,
		uintptr(unsafe.Pointer(&st)), uintptr(unsafe.Pointer(&l)), 0); errno != 0 {
		return 0, 0, fmt.Errorf("afpacket: PACKET_STATISTICS: %w", errno)
	}
	h.statPackets += uint64(st.packets)
	h.statDrops += uint64(st.drops)
	return h.statPackets, h.statDrops, nil
}

// Close unmaps the ring and closes the socket. It takes statMu so an
// in-flight Stats scrape finishes against the live fd first.
func (h *Handle) Close() error {
	h.statMu.Lock()
	defer h.statMu.Unlock()
	if h.closed {
		return nil
	}
	h.closed = true
	err := syscall.Munmap(h.ring)
	if cerr := syscall.Close(h.fd); err == nil {
		err = cerr
	}
	return err
}

// DropPrivileges irreversibly switches the process to the given
// non-root uid/gid (groups first, then gid, then uid, so the uid change
// cannot strand us with root groups). Call it after Open so only socket
// setup runs privileged.
func DropPrivileges(uid, gid int) error {
	if uid <= 0 || gid <= 0 {
		return fmt.Errorf("afpacket: refusing to drop privileges to uid %d gid %d (must both be positive non-root ids)", uid, gid)
	}
	if err := syscall.Setgroups([]int{gid}); err != nil {
		return fmt.Errorf("afpacket: setgroups: %w", err)
	}
	if err := syscall.Setgid(gid); err != nil {
		return fmt.Errorf("afpacket: setgid(%d): %w", gid, err)
	}
	if err := syscall.Setuid(uid); err != nil {
		return fmt.Errorf("afpacket: setuid(%d): %w", uid, err)
	}
	if syscall.Getuid() != uid || syscall.Getgid() != gid {
		return fmt.Errorf("afpacket: privilege drop did not stick (uid %d gid %d)", syscall.Getuid(), syscall.Getgid())
	}
	return nil
}
