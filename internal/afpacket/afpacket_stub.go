//go:build !linux

package afpacket

import (
	"context"
	"errors"
	"time"
)

// ErrUnsupported reports that kernel AF_PACKET capture only exists on
// linux. The synthetic-ring half of the package works everywhere.
var ErrUnsupported = errors.New("afpacket: AF_PACKET capture requires linux")

// Config mirrors the linux Config so callers compile everywhere.
type Config struct {
	Interface   string
	FanoutID    int
	FanoutType  int
	BlockSize   int
	BlockCount  int
	FrameSize   int
	PollTimeout time.Duration
	Promiscuous bool
	DropUID     int
	DropGID     int
}

// Handle is the non-linux placeholder for a kernel capture ring.
type Handle struct{}

// Open always fails off linux.
func Open(Config) (*Handle, error) { return nil, ErrUnsupported }

func (*Handle) NextBlock(context.Context) ([]byte, func(), error) { return nil, nil, ErrUnsupported }

func (*Handle) Stats() (uint64, uint64, error) { return 0, 0, ErrUnsupported }

func (*Handle) Close() error { return nil }

// DropPrivileges always fails off linux.
func DropPrivileges(uid, gid int) error { return ErrUnsupported }
