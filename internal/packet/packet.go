// Package packet implements decoding, encoding and manipulation of IPv4 and
// TCP headers, the only protocol layers CLAP inspects.
//
// The design loosely follows gopacket's fixed-layer decoding style: headers
// are plain structs that decode from and serialize to wire format without
// hidden state, so evasion strategies can freely corrupt individual fields
// and re-serialize. All multi-byte fields are big-endian on the wire.
package packet

import (
	"errors"
	"fmt"
	"time"
)

// Errors returned by the decoders.
var (
	ErrTruncated   = errors.New("packet: truncated data")
	ErrBadIHL      = errors.New("packet: IPv4 IHL smaller than 5 words")
	ErrBadVersion  = errors.New("packet: not an IPv4 packet")
	ErrBadOffset   = errors.New("packet: TCP data offset smaller than 5 words")
	ErrNotTCP      = errors.New("packet: IPv4 payload is not TCP")
	ErrOptionSpace = errors.New("packet: options exceed header space")
)

// Flags is the 9-bit TCP flag field (NS plus the classic 8 bits).
type Flags uint16

// Individual TCP flag bits.
const (
	FIN Flags = 1 << iota
	SYN
	RST
	PSH
	ACK
	URG
	ECE
	CWR
	NS
)

// Has reports whether all bits in f2 are set in f.
func (f Flags) Has(f2 Flags) bool { return f&f2 == f2 }

// flagNames orders flag names from highest bit to lowest for String.
var flagNames = []struct {
	bit  Flags
	name string
}{
	{NS, "NS"}, {CWR, "CWR"}, {ECE, "ECE"}, {URG, "URG"},
	{ACK, "ACK"}, {PSH, "PSH"}, {RST, "RST"}, {SYN, "SYN"}, {FIN, "FIN"},
}

// String renders flags as a '|'-joined list, e.g. "SYN|ACK".
func (f Flags) String() string {
	if f == 0 {
		return "none"
	}
	out := ""
	for _, fn := range flagNames {
		if f.Has(fn.bit) {
			if out != "" {
				out += "|"
			}
			out += fn.name
		}
	}
	return out
}

// IPv4Header models an IPv4 header. Options are kept as raw bytes because
// CLAP only cares about their presence (feature #32 in Table 7).
type IPv4Header struct {
	Version    uint8 // 4 for well-formed packets; attacks may set e.g. 5
	IHL        uint8 // header length in 32-bit words (>= 5 when valid)
	TOS        uint8
	TotalLen   uint16 // entire datagram length in bytes
	ID         uint16
	Reserved   bool // the reserved ("evil") fragment bit, RFC 3514
	DontFrag   bool
	MoreFrag   bool
	FragOffset uint16 // in 8-byte units
	TTL        uint8
	Protocol   uint8
	Checksum   uint16 // stored checksum; see ComputeIPChecksum
	SrcIP      [4]byte
	DstIP      [4]byte
	Options    []byte // raw option bytes, padded to a 4-byte multiple
}

// ProtoTCP is the IPv4 protocol number for TCP.
const ProtoTCP = 6

// HeaderLen returns the header length in bytes implied by IHL.
func (h *IPv4Header) HeaderLen() int { return int(h.IHL) * 4 }

// TCPHeader models a TCP header with parsed options.
type TCPHeader struct {
	SrcPort    uint16
	DstPort    uint16
	Seq        uint32
	Ack        uint32
	DataOffset uint8 // header length in 32-bit words (>= 5 when valid)
	Reserved   uint8 // the 3 reserved bits between DataOffset and NS
	Flags      Flags
	Window     uint16
	Checksum   uint16 // stored checksum; see ComputeTCPChecksum
	Urgent     uint16
	Options    []Option
}

// HeaderLen returns the header length in bytes implied by DataOffset.
func (h *TCPHeader) HeaderLen() int { return int(h.DataOffset) * 4 }

// TCP option kinds used by the corpus.
const (
	OptEndOfList     = 0
	OptNOP           = 1
	OptMSS           = 2
	OptWindowScale   = 3
	OptSACKPermitted = 4
	OptSACK          = 5
	OptTimestamps    = 8
	OptMD5           = 19
	OptUserTimeout   = 28
)

// Option is a single TCP option. For NOP/EOL, Data is nil.
type Option struct {
	Kind uint8
	Data []byte
}

// Len returns the on-wire length of the option in bytes.
func (o Option) Len() int {
	if o.Kind == OptEndOfList || o.Kind == OptNOP {
		return 1
	}
	return 2 + len(o.Data)
}

// Packet is a captured (or synthesized) TCP/IPv4 packet. Payload holds the
// TCP payload; most corpora (like MAWI) strip payload bytes but preserve the
// original lengths, which PayloadLen captures independently.
type Packet struct {
	Timestamp time.Time
	IP        IPv4Header
	TCP       TCPHeader

	// Payload is the TCP payload actually present in the capture.
	Payload []byte

	// PayloadLen is the TCP payload length implied by the IP total length
	// (TotalLen - IP header - TCP header). For payload-stripped captures it
	// can exceed len(Payload). Attacks that forge length fields leave this
	// as the original "claimed" value.
	PayloadLen int
}

// Clone returns a deep copy of the packet; attack strategies mutate clones so
// the benign original survives.
func (p *Packet) Clone() *Packet {
	q := *p
	q.Payload = append([]byte(nil), p.Payload...)
	q.IP.Options = append([]byte(nil), p.IP.Options...)
	q.TCP.Options = make([]Option, len(p.TCP.Options))
	for i, o := range p.TCP.Options {
		q.TCP.Options[i] = Option{Kind: o.Kind, Data: append([]byte(nil), o.Data...)}
	}
	return &q
}

// FindOption returns the first option with the given kind, or nil.
func (h *TCPHeader) FindOption(kind uint8) *Option {
	for i := range h.Options {
		if h.Options[i].Kind == kind {
			return &h.Options[i]
		}
	}
	return nil
}

// RemoveOption deletes every option of the given kind and reports whether
// any was removed.
func (h *TCPHeader) RemoveOption(kind uint8) bool {
	out := h.Options[:0]
	removed := false
	for _, o := range h.Options {
		if o.Kind == kind {
			removed = true
			continue
		}
		out = append(out, o)
	}
	h.Options = out
	return removed
}

// String summarises the packet for logs and test failures.
func (p *Packet) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d > %d.%d.%d.%d:%d [%s] seq=%d ack=%d win=%d len=%d",
		p.IP.SrcIP[0], p.IP.SrcIP[1], p.IP.SrcIP[2], p.IP.SrcIP[3], p.TCP.SrcPort,
		p.IP.DstIP[0], p.IP.DstIP[1], p.IP.DstIP[2], p.IP.DstIP[3], p.TCP.DstPort,
		p.TCP.Flags, p.TCP.Seq, p.TCP.Ack, p.TCP.Window, p.PayloadLen)
}
