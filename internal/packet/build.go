package packet

import (
	"time"
)

// Builder assembles well-formed TCP/IPv4 packets with correct lengths and
// checksums. The traffic generator uses it for every benign packet; evasion
// strategies start from a built packet and corrupt fields afterwards.
type Builder struct {
	p Packet
}

// NewBuilder starts a packet between the given endpoints.
func NewBuilder(srcIP, dstIP [4]byte, srcPort, dstPort uint16) *Builder {
	b := &Builder{}
	b.p.IP = IPv4Header{
		Version:  4,
		IHL:      5,
		TTL:      64,
		Protocol: ProtoTCP,
		DontFrag: true,
		SrcIP:    srcIP,
		DstIP:    dstIP,
	}
	b.p.TCP = TCPHeader{
		SrcPort:    srcPort,
		DstPort:    dstPort,
		DataOffset: 5,
		Window:     65535,
	}
	return b
}

// Seq sets the sequence number.
func (b *Builder) Seq(s uint32) *Builder { b.p.TCP.Seq = s; return b }

// Ack sets the acknowledgement number.
func (b *Builder) Ack(a uint32) *Builder { b.p.TCP.Ack = a; return b }

// Flags sets the TCP flags.
func (b *Builder) Flags(f Flags) *Builder { b.p.TCP.Flags = f; return b }

// Window sets the advertised receive window.
func (b *Builder) Window(w uint16) *Builder { b.p.TCP.Window = w; return b }

// TTL sets the IP time-to-live.
func (b *Builder) TTL(t uint8) *Builder { b.p.IP.TTL = t; return b }

// TOS sets the IP type-of-service byte.
func (b *Builder) TOS(t uint8) *Builder { b.p.IP.TOS = t; return b }

// ID sets the IP identification field.
func (b *Builder) ID(id uint16) *Builder { b.p.IP.ID = id; return b }

// Urgent sets the urgent pointer (without setting URG; attacks want the
// mismatch).
func (b *Builder) Urgent(u uint16) *Builder { b.p.TCP.Urgent = u; return b }

// Payload sets the TCP payload bytes.
func (b *Builder) Payload(data []byte) *Builder {
	b.p.Payload = append([]byte(nil), data...)
	return b
}

// PayloadLen declares a payload of n bytes whose content has been stripped
// (the MAWI convention): lengths and checksums account for n zero bytes but
// the stored capture carries none.
func (b *Builder) PayloadLen(n int) *Builder {
	b.p.Payload = make([]byte, n)
	return b
}

// Option appends a TCP option.
func (b *Builder) Option(kind uint8, data []byte) *Builder {
	b.p.TCP.Options = append(b.p.TCP.Options, Option{Kind: kind, Data: append([]byte(nil), data...)})
	return b
}

// MSS appends a Maximum Segment Size option.
func (b *Builder) MSS(mss uint16) *Builder {
	d := make([]byte, 2)
	be.PutUint16(d, mss)
	return b.Option(OptMSS, d)
}

// WScale appends a Window Scale option.
func (b *Builder) WScale(shift uint8) *Builder {
	return b.Option(OptWindowScale, []byte{shift})
}

// SACKPermitted appends a SACK-permitted option.
func (b *Builder) SACKPermitted() *Builder { return b.Option(OptSACKPermitted, nil) }

// Timestamps appends a TCP Timestamps option with the given TSVal/TSecr.
func (b *Builder) Timestamps(tsval, tsecr uint32) *Builder {
	d := make([]byte, 8)
	be.PutUint32(d[0:4], tsval)
	be.PutUint32(d[4:8], tsecr)
	return b.Option(OptTimestamps, d)
}

// Time stamps the packet capture time.
func (b *Builder) Time(t time.Time) *Builder { b.p.Timestamp = t; return b }

// Build finalizes lengths and checksums and returns the packet. Payloads set
// via PayloadLen are stripped back to zero stored bytes after checksumming,
// matching payload-stripped captures where the checksum reflects the
// original content (all-zero here).
func (b *Builder) Build() *Packet {
	p := b.p.Clone()
	// Pad options and derive offsets/lengths.
	raw, err := p.Encode(SerializeOptions{FixLengths: true, ComputeChecksums: true})
	if err != nil {
		// Builder inputs are always structurally encodable; an error here is
		// a programming bug, not a data condition.
		panic("packet.Builder: " + err.Error())
	}
	q, err := Decode(raw)
	if err != nil {
		panic("packet.Builder round-trip: " + err.Error())
	}
	q.Timestamp = b.p.Timestamp
	q.PayloadLen = len(b.p.Payload)
	q.Payload = nil // stored capture is payload-stripped
	return q
}

// TimestampVal extracts TSVal/TSecr from a Timestamps option if present.
func (h *TCPHeader) TimestampVal() (tsval, tsecr uint32, ok bool) {
	o := h.FindOption(OptTimestamps)
	if o == nil || len(o.Data) != 8 {
		return 0, 0, false
	}
	return be.Uint32(o.Data[0:4]), be.Uint32(o.Data[4:8]), true
}

// MSSVal extracts the MSS option value if present and well-formed.
func (h *TCPHeader) MSSVal() (uint16, bool) {
	o := h.FindOption(OptMSS)
	if o == nil || len(o.Data) != 2 {
		return 0, false
	}
	return be.Uint16(o.Data), true
}

// WScaleVal extracts the window-scale shift if present and well-formed.
func (h *TCPHeader) WScaleVal() (uint8, bool) {
	o := h.FindOption(OptWindowScale)
	if o == nil || len(o.Data) != 1 {
		return 0, false
	}
	return o.Data[0], true
}

// UserTimeoutVal extracts the UTO option value (RFC 5482) if present and
// well-formed.
func (h *TCPHeader) UserTimeoutVal() (uint16, bool) {
	o := h.FindOption(OptUserTimeout)
	if o == nil || len(o.Data) != 2 {
		return 0, false
	}
	return be.Uint16(o.Data), true
}

// MD5Valid reports the validity of an MD5 signature option (RFC 2385) at the
// structural level: absent counts as valid; present requires exactly a
// 16-byte digest. (Cryptographic verification needs keys no monitor has.)
func (h *TCPHeader) MD5Valid() bool {
	o := h.FindOption(OptMD5)
	if o == nil {
		return true
	}
	return len(o.Data) == 16
}
