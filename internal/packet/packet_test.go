package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var (
	clientIP = [4]byte{10, 0, 0, 1}
	serverIP = [4]byte{192, 0, 2, 80}
)

func buildSYN() *Packet {
	return NewBuilder(clientIP, serverIP, 40000, 443).
		Seq(1000).Flags(SYN).MSS(1460).WScale(7).SACKPermitted().
		Timestamps(111, 0).Time(time.Unix(1600000000, 0)).Build()
}

func TestBuilderProducesWellFormedPacket(t *testing.T) {
	p := buildSYN()
	if p.IP.Version != 4 {
		t.Errorf("Version = %d, want 4", p.IP.Version)
	}
	if p.IP.IHL != 5 {
		t.Errorf("IHL = %d, want 5", p.IP.IHL)
	}
	// Options: MSS(4) + WScale(3) + SACKPermitted(2) + Timestamps(10) = 19,
	// padded to 20.
	if got := p.TCP.HeaderLen(); got != 20+20 {
		t.Errorf("TCP header length = %d, want 40", got)
	}
	if !p.IPChecksumValid() {
		t.Error("IP checksum should be valid after Build")
	}
	if !p.TCPChecksumValid() {
		t.Error("TCP checksum should be valid after Build")
	}
	if int(p.IP.TotalLen) != p.IP.HeaderLen()+p.TCP.HeaderLen() {
		t.Errorf("TotalLen = %d, want %d", p.IP.TotalLen, p.IP.HeaderLen()+p.TCP.HeaderLen())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := buildSYN()
	raw, err := p.Encode(SerializeOptions{})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	q, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if q.TCP.Seq != p.TCP.Seq || q.TCP.Flags != p.TCP.Flags || q.TCP.Window != p.TCP.Window {
		t.Errorf("round trip mismatch: got %v want %v", q, p)
	}
	mss, ok := q.TCP.MSSVal()
	if !ok || mss != 1460 {
		t.Errorf("MSS = %d,%v want 1460,true", mss, ok)
	}
	ws, ok := q.TCP.WScaleVal()
	if !ok || ws != 7 {
		t.Errorf("WScale = %d,%v want 7,true", ws, ok)
	}
	tsval, tsecr, ok := q.TCP.TimestampVal()
	if !ok || tsval != 111 || tsecr != 0 {
		t.Errorf("Timestamps = %d,%d,%v want 111,0,true", tsval, tsecr, ok)
	}
}

func TestDecodeTruncated(t *testing.T) {
	p := buildSYN()
	raw, _ := p.Encode(SerializeOptions{})
	for _, n := range []int{0, 1, 19, 21, p.IP.HeaderLen() + 10} {
		if n > len(raw) {
			continue
		}
		if _, err := Decode(raw[:n]); err == nil {
			t.Errorf("Decode of %d bytes should fail", n)
		}
	}
}

func TestDecodeBadIHL(t *testing.T) {
	p := buildSYN()
	raw, _ := p.Encode(SerializeOptions{})
	raw[0] = 4<<4 | 3 // IHL = 3 words
	if _, _, err := DecodeIPv4(raw); err == nil {
		t.Error("DecodeIPv4 with IHL=3 should fail")
	}
}

func TestDecodeNonTCP(t *testing.T) {
	p := buildSYN()
	raw, _ := p.Encode(SerializeOptions{})
	raw[9] = 17 // UDP
	if _, err := Decode(raw); err == nil {
		t.Error("Decode of a UDP packet should fail")
	}
}

func TestCorruptedChecksumDetected(t *testing.T) {
	p := buildSYN()
	p.TCP.Checksum++
	if p.TCPChecksumValid() {
		t.Error("corrupted TCP checksum reported valid")
	}
	if !p.IPChecksumValid() {
		t.Error("IP checksum should still be valid")
	}
	p.IP.Checksum ^= 0xffff
	if p.IPChecksumValid() {
		t.Error("corrupted IP checksum reported valid")
	}
}

func TestPayloadLenFromTotalLen(t *testing.T) {
	p := NewBuilder(clientIP, serverIP, 40000, 443).
		Seq(5).Flags(ACK | PSH).PayloadLen(100).Build()
	if p.PayloadLen != 100 {
		t.Fatalf("PayloadLen = %d, want 100", p.PayloadLen)
	}
	if len(p.Payload) != 0 {
		t.Fatalf("stored payload = %d bytes, want 0 (stripped)", len(p.Payload))
	}
	if int(p.IP.TotalLen) != 40+100 {
		t.Errorf("TotalLen = %d, want 140", p.IP.TotalLen)
	}
}

func TestClone(t *testing.T) {
	p := buildSYN()
	q := p.Clone()
	q.TCP.Seq = 999
	q.TCP.Options[0].Data[0] = 0xff
	if p.TCP.Seq == 999 {
		t.Error("Clone shares Seq")
	}
	if p.TCP.Options[0].Data[0] == 0xff {
		t.Error("Clone shares option data")
	}
}

func TestFlagsString(t *testing.T) {
	cases := []struct {
		f    Flags
		want string
	}{
		{0, "none"},
		{SYN, "SYN"},
		{SYN | ACK, "ACK|SYN"},
		{FIN | PSH | ACK, "ACK|PSH|FIN"},
		{NS | CWR | ECE | URG | ACK | PSH | RST | SYN | FIN, "NS|CWR|ECE|URG|ACK|PSH|RST|SYN|FIN"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("Flags(%#x).String() = %q, want %q", uint16(c.f), got, c.want)
		}
	}
}

func TestFlagsHas(t *testing.T) {
	f := SYN | ACK
	if !f.Has(SYN) || !f.Has(ACK) || !f.Has(SYN|ACK) {
		t.Error("Has should be true for subsets")
	}
	if f.Has(RST) || f.Has(SYN|RST) {
		t.Error("Has should be false when any bit is missing")
	}
}

func TestOptionHelpers(t *testing.T) {
	p := buildSYN()
	if p.TCP.FindOption(OptMSS) == nil {
		t.Fatal("MSS option missing")
	}
	if p.TCP.FindOption(OptMD5) != nil {
		t.Fatal("unexpected MD5 option")
	}
	if !p.TCP.MD5Valid() {
		t.Error("absent MD5 option should count as valid")
	}
	p.TCP.Options = append(p.TCP.Options, Option{Kind: OptMD5, Data: make([]byte, 4)})
	if p.TCP.MD5Valid() {
		t.Error("malformed MD5 option should be invalid")
	}
	if !p.TCP.RemoveOption(OptMD5) {
		t.Error("RemoveOption should report removal")
	}
	if p.TCP.FindOption(OptMD5) != nil {
		t.Error("MD5 option should be gone")
	}
	if p.TCP.RemoveOption(OptMD5) {
		t.Error("second RemoveOption should report nothing removed")
	}
}

func TestChecksumRFC1071Examples(t *testing.T) {
	// Worked example from RFC 1071 §3: words 0001 f203 f4f5 f6f7.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Errorf("Checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
	// Odd-length input pads with a zero byte.
	if got := Checksum([]byte{0xab}); got != ^uint16(0xab00) {
		t.Errorf("odd Checksum = %#x, want %#x", got, ^uint16(0xab00))
	}
}

func TestEncodePreservesCorruptFields(t *testing.T) {
	p := buildSYN()
	p.IP.Version = 5
	p.IP.TTL = 1
	p.TCP.DataOffset = 15 // larger than actual options: garbage offset
	raw, err := p.Encode(SerializeOptions{})
	if err == nil {
		// DataOffset=15 claims 60 bytes of TCP header; encoder allocates that
		// space, so decode must give back the same claimed offset.
		q, err := Decode(raw)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if q.IP.Version != 5 {
			t.Errorf("Version = %d, want 5 preserved", q.IP.Version)
		}
		if q.TCP.DataOffset != 15 {
			t.Errorf("DataOffset = %d, want 15 preserved", q.TCP.DataOffset)
		}
	}
}

func TestEncodeDataOffsetBelowMinimum(t *testing.T) {
	p := buildSYN()
	p.TCP.DataOffset = 2 // below the 5-word minimum: structurally invalid
	raw, err := p.Encode(SerializeOptions{})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Wire bytes must carry the bogus offset even though layout used the
	// real header size.
	off := raw[p.IP.HeaderLen()+12] >> 4
	if off != 2 {
		t.Errorf("wire data offset = %d, want 2", off)
	}
}

func TestOptionLen(t *testing.T) {
	if (Option{Kind: OptNOP}).Len() != 1 {
		t.Error("NOP length should be 1")
	}
	if (Option{Kind: OptMSS, Data: []byte{1, 2}}).Len() != 4 {
		t.Error("MSS length should be 4")
	}
}

func TestPropertyEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		b := NewBuilder(clientIP, serverIP,
			uint16(rng.Intn(65535)+1), uint16(rng.Intn(65535)+1)).
			Seq(rng.Uint32()).Ack(rng.Uint32()).
			Flags(Flags(rng.Intn(512))).
			Window(uint16(rng.Intn(65536))).
			TTL(uint8(rng.Intn(255) + 1)).
			ID(uint16(rng.Intn(65536)))
		if rng.Intn(2) == 0 {
			b.MSS(uint16(rng.Intn(65536)))
		}
		if rng.Intn(2) == 0 {
			b.Timestamps(rng.Uint32(), rng.Uint32())
		}
		if rng.Intn(3) == 0 {
			b.PayloadLen(rng.Intn(1400))
		}
		p := b.Build()
		raw, err := p.Encode(SerializeOptions{})
		if err != nil {
			return false
		}
		q, err := Decode(raw)
		if err != nil {
			return false
		}
		raw2, err := q.Encode(SerializeOptions{})
		if err != nil {
			return false
		}
		// Headers must round-trip exactly; stored payload is zeros either way.
		return bytes.Equal(raw[:p.IP.HeaderLen()+p.TCP.HeaderLen()], raw2[:p.IP.HeaderLen()+p.TCP.HeaderLen()]) &&
			q.TCP.Seq == p.TCP.Seq && q.TCP.Ack == p.TCP.Ack && q.TCP.Flags == p.TCP.Flags &&
			q.IPChecksumValid() && q.TCPChecksumValid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyChecksumDetectsSingleBitFlips(t *testing.T) {
	p := buildSYN()
	raw, _ := p.Encode(SerializeOptions{})
	hdr := raw[:p.IP.HeaderLen()]
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		// Flip one random bit in the IP header (not in the checksum field
		// itself at offset 10-11, where a flip changes stored vs computed
		// in lockstep semantics we don't model) and require detection.
		bit := rng.Intn(len(hdr) * 8)
		for bit/8 == 10 || bit/8 == 11 {
			bit = rng.Intn(len(hdr) * 8)
		}
		mut := append([]byte(nil), raw...)
		mut[bit/8] ^= 1 << (bit % 8)
		q, err := Decode(mut)
		if err != nil {
			return true // structural rejection is detection too
		}
		return !q.IPChecksumValid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseOptionsMalformed(t *testing.T) {
	// A dangling option kind with a claimed length overrunning the block
	// must fall back to the opaque representation, not error out of Decode.
	p := buildSYN()
	raw, _ := p.Encode(SerializeOptions{})
	// Corrupt the first option length byte to overrun.
	optStart := p.IP.HeaderLen() + 20
	raw[optStart+1] = 200
	q, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode should tolerate malformed options: %v", err)
	}
	if len(q.TCP.Options) != 1 || q.TCP.Options[0].Kind != 255 {
		t.Errorf("malformed options should collapse to one opaque option, got %v", q.TCP.Options)
	}
}

func TestEOLStopsOptionParsing(t *testing.T) {
	p := NewBuilder(clientIP, serverIP, 1, 2).Flags(SYN).
		Option(OptEndOfList, nil).MSS(1460).Build()
	raw, _ := p.Encode(SerializeOptions{})
	q, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	// Parsing stops at EOL; the MSS after it is padding from the reader's
	// point of view.
	if q.TCP.FindOption(OptMSS) != nil {
		t.Error("options after EOL should not be parsed")
	}
}

func BenchmarkDecode(b *testing.B) {
	p := NewBuilder(clientIP, serverIP, 40000, 443).
		Seq(1).Ack(2).Flags(ACK|PSH).PayloadLen(512).
		Timestamps(1, 2).Build()
	raw, _ := p.Encode(SerializeOptions{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	p := NewBuilder(clientIP, serverIP, 40000, 443).
		Seq(1).Ack(2).Flags(ACK|PSH).PayloadLen(512).
		Timestamps(1, 2).Build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Encode(SerializeOptions{ComputeChecksums: true}); err != nil {
			b.Fatal(err)
		}
	}
}
