package packet

import (
	"encoding/binary"
	"fmt"
)

var be = binary.BigEndian

// DecodeIPv4 parses an IPv4 header from data. It returns the parsed header
// and the number of header bytes consumed. Malformed-but-decodable packets
// (bad checksums, inconsistent lengths) decode without error: CLAP must be
// able to observe exactly the garbage attackers put on the wire. Only
// structurally undecodable inputs (truncation below the fixed header, IHL<5)
// fail.
func DecodeIPv4(data []byte) (IPv4Header, int, error) {
	var h IPv4Header
	if len(data) < 20 {
		return h, 0, fmt.Errorf("ipv4: %w: %d bytes", ErrTruncated, len(data))
	}
	h.Version = data[0] >> 4
	h.IHL = data[0] & 0x0f
	h.TOS = data[1]
	h.TotalLen = be.Uint16(data[2:4])
	h.ID = be.Uint16(data[4:6])
	flagsFrag := be.Uint16(data[6:8])
	h.Reserved = flagsFrag&0x8000 != 0
	h.DontFrag = flagsFrag&0x4000 != 0
	h.MoreFrag = flagsFrag&0x2000 != 0
	h.FragOffset = flagsFrag & 0x1fff
	h.TTL = data[8]
	h.Protocol = data[9]
	h.Checksum = be.Uint16(data[10:12])
	copy(h.SrcIP[:], data[12:16])
	copy(h.DstIP[:], data[16:20])
	if h.IHL < 5 {
		// Keep the parsed fixed header available to the caller through the
		// error path? No: callers need a hard signal, since the header length
		// is unusable for locating the payload.
		return h, 0, fmt.Errorf("ipv4: %w: ihl=%d", ErrBadIHL, h.IHL)
	}
	hlen := int(h.IHL) * 4
	if hlen > len(data) {
		return h, 0, fmt.Errorf("ipv4: %w: ihl=%d data=%d", ErrTruncated, h.IHL, len(data))
	}
	if hlen > 20 {
		h.Options = append([]byte(nil), data[20:hlen]...)
	}
	return h, hlen, nil
}

// DecodeTCP parses a TCP header from data, returning the header and the
// number of header bytes consumed. Like DecodeIPv4 it tolerates semantic
// garbage and only rejects structural impossibilities.
func DecodeTCP(data []byte) (TCPHeader, int, error) {
	var h TCPHeader
	if len(data) < 20 {
		return h, 0, fmt.Errorf("tcp: %w: %d bytes", ErrTruncated, len(data))
	}
	h.SrcPort = be.Uint16(data[0:2])
	h.DstPort = be.Uint16(data[2:4])
	h.Seq = be.Uint32(data[4:8])
	h.Ack = be.Uint32(data[8:12])
	h.DataOffset = data[12] >> 4
	h.Reserved = data[12] >> 1 & 0x07
	h.Flags = Flags(be.Uint16(data[12:14]) & 0x01ff)
	h.Window = be.Uint16(data[14:16])
	h.Checksum = be.Uint16(data[16:18])
	h.Urgent = be.Uint16(data[18:20])
	if h.DataOffset < 5 {
		return h, 0, fmt.Errorf("tcp: %w: offset=%d", ErrBadOffset, h.DataOffset)
	}
	hlen := int(h.DataOffset) * 4
	if hlen > len(data) {
		return h, 0, fmt.Errorf("tcp: %w: offset=%d data=%d", ErrTruncated, h.DataOffset, len(data))
	}
	opts, err := parseOptions(data[20:hlen])
	if err != nil {
		// Options that do not parse are preserved verbatim as a single
		// unknown option so re-serialization is lossless.
		opts = []Option{{Kind: 255, Data: append([]byte(nil), data[20:hlen]...)}}
	}
	h.Options = opts
	return h, hlen, nil
}

// parseOptions walks a TCP options block. It stops at EOL and skips NOPs
// (preserving both so encoding round-trips byte counts).
func parseOptions(data []byte) ([]Option, error) {
	var opts []Option
	for i := 0; i < len(data); {
		kind := data[i]
		switch kind {
		case OptEndOfList:
			opts = append(opts, Option{Kind: OptEndOfList})
			// Everything after EOL is padding; represent it implicitly.
			return opts, nil
		case OptNOP:
			opts = append(opts, Option{Kind: OptNOP})
			i++
		default:
			if i+1 >= len(data) {
				return nil, fmt.Errorf("tcp option %d: %w", kind, ErrTruncated)
			}
			olen := int(data[i+1])
			if olen < 2 || i+olen > len(data) {
				return nil, fmt.Errorf("tcp option %d: bad length %d: %w", kind, olen, ErrTruncated)
			}
			opts = append(opts, Option{Kind: kind, Data: append([]byte(nil), data[i+2:i+olen]...)})
			i += olen
		}
	}
	return opts, nil
}

// Decode parses a full TCP/IPv4 packet from raw IP bytes. The IP payload
// beyond the TCP header becomes Payload; PayloadLen is derived from the IP
// total length so that forged length fields remain observable.
func Decode(data []byte) (*Packet, error) {
	ip, ipLen, err := DecodeIPv4(data)
	if err != nil {
		return nil, err
	}
	if ip.Protocol != ProtoTCP {
		return nil, fmt.Errorf("%w: protocol=%d", ErrNotTCP, ip.Protocol)
	}
	tcp, tcpLen, err := DecodeTCP(data[ipLen:])
	if err != nil {
		return nil, err
	}
	p := &Packet{IP: ip, TCP: tcp}
	p.Payload = append([]byte(nil), data[ipLen+tcpLen:]...)
	// Claimed payload length per the IP header; may disagree with captured
	// bytes for stripped or forged packets.
	p.PayloadLen = int(ip.TotalLen) - ipLen - tcpLen
	if p.PayloadLen < 0 {
		p.PayloadLen = 0
	}
	return p, nil
}
