package packet

import "fmt"

// SerializeOptions controls encoding, mirroring gopacket's SerializeOptions.
// With both fields false the stored header values are written verbatim,
// which is what evasion strategies rely on to emit deliberately broken
// packets.
type SerializeOptions struct {
	// FixLengths recomputes IHL, DataOffset and TotalLen from actual
	// contents before writing.
	FixLengths bool
	// ComputeChecksums recomputes and stores the IP and TCP checksums.
	ComputeChecksums bool
}

// optionBytes flattens parsed TCP options back to wire bytes, padding with
// zeros to a 4-byte multiple.
func optionBytes(opts []Option) []byte {
	var out []byte
	for _, o := range opts {
		switch o.Kind {
		case OptEndOfList, OptNOP:
			out = append(out, o.Kind)
		default:
			out = append(out, o.Kind, byte(2+len(o.Data)))
			out = append(out, o.Data...)
		}
	}
	for len(out)%4 != 0 {
		out = append(out, 0)
	}
	return out
}

// Encode serializes the packet to raw IPv4 bytes.
func (p *Packet) Encode(opt SerializeOptions) ([]byte, error) {
	tcpOpts := optionBytes(p.TCP.Options)
	ipOpts := p.IP.Options
	if len(ipOpts)%4 != 0 {
		pad := make([]byte, 4-len(ipOpts)%4)
		ipOpts = append(append([]byte(nil), ipOpts...), pad...)
	}

	ip := p.IP
	tcp := p.TCP
	if opt.FixLengths {
		ip.IHL = uint8((20 + len(ipOpts)) / 4)
		tcp.DataOffset = uint8((20 + len(tcpOpts)) / 4)
		ip.TotalLen = uint16(int(ip.IHL)*4 + int(tcp.DataOffset)*4 + len(p.Payload))
	}
	ipHdrLen := int(ip.IHL) * 4
	if ipHdrLen < 20 {
		// A corrupted IHL (e.g. the Invalid IP Header Length attack) cannot
		// drive the layout; lay the packet out using real contents and keep
		// the bogus IHL on the wire.
		ipHdrLen = 20 + len(ipOpts)
	}
	if ipHdrLen < 20+len(ipOpts) {
		return nil, fmt.Errorf("ipv4 encode: %w: ihl=%d options=%d", ErrOptionSpace, ip.IHL, len(ipOpts))
	}
	tcpHdrLen := int(tcp.DataOffset) * 4
	if tcpHdrLen < 20 {
		tcpHdrLen = 20 + len(tcpOpts)
	}
	if tcpHdrLen < 20+len(tcpOpts) {
		return nil, fmt.Errorf("tcp encode: %w: offset=%d options=%d", ErrOptionSpace, tcp.DataOffset, len(tcpOpts))
	}

	buf := make([]byte, ipHdrLen+tcpHdrLen+len(p.Payload))

	// IPv4 fixed header.
	buf[0] = ip.Version<<4 | ip.IHL&0x0f
	buf[1] = ip.TOS
	be.PutUint16(buf[2:4], ip.TotalLen)
	be.PutUint16(buf[4:6], ip.ID)
	flagsFrag := ip.FragOffset & 0x1fff
	if ip.Reserved {
		flagsFrag |= 0x8000
	}
	if ip.DontFrag {
		flagsFrag |= 0x4000
	}
	if ip.MoreFrag {
		flagsFrag |= 0x2000
	}
	be.PutUint16(buf[6:8], flagsFrag)
	buf[8] = ip.TTL
	buf[9] = ip.Protocol
	be.PutUint16(buf[10:12], ip.Checksum)
	copy(buf[12:16], ip.SrcIP[:])
	copy(buf[16:20], ip.DstIP[:])
	copy(buf[20:ipHdrLen], ipOpts)

	// TCP header.
	t := buf[ipHdrLen:]
	be.PutUint16(t[0:2], tcp.SrcPort)
	be.PutUint16(t[2:4], tcp.DstPort)
	be.PutUint32(t[4:8], tcp.Seq)
	be.PutUint32(t[8:12], tcp.Ack)
	be.PutUint16(t[12:14], uint16(tcp.DataOffset)<<12|uint16(tcp.Reserved&0x07)<<9|uint16(tcp.Flags)&0x01ff)
	be.PutUint16(t[14:16], tcp.Window)
	be.PutUint16(t[16:18], tcp.Checksum)
	be.PutUint16(t[18:20], tcp.Urgent)
	copy(t[20:tcpHdrLen], tcpOpts)
	copy(t[tcpHdrLen:], p.Payload)

	if opt.ComputeChecksums {
		be.PutUint16(buf[10:12], 0)
		ipSum := Checksum(buf[:ipHdrLen])
		be.PutUint16(buf[10:12], ipSum)
		be.PutUint16(t[16:18], 0)
		tcpSum := tcpChecksum(ip.SrcIP, ip.DstIP, t)
		be.PutUint16(t[16:18], tcpSum)
	}
	return buf, nil
}

// FixChecksums computes correct IP and TCP checksums for the packet as it
// would appear on the wire — honouring the claimed IP total length with
// zero padding for stripped payload, the same convention TCPChecksumValid
// verifies — and stores them in the header fields. Synthetic traffic calls
// this once after construction; attacks corrupt other fields afterwards
// (and may call it again when the strategy wants checksums to stay valid).
func (p *Packet) FixChecksums() error {
	raw, err := p.Encode(SerializeOptions{})
	if err != nil {
		return err
	}
	ipHdrLen := int(p.IP.IHL) * 4
	if ipHdrLen < 20 || ipHdrLen > len(raw) {
		ipHdrLen = 20 + len(p.IP.Options)
	}
	hdr := raw[:ipHdrLen]
	be.PutUint16(hdr[10:12], 0)
	p.IP.Checksum = Checksum(hdr)

	seg := raw[ipHdrLen:]
	claimed := int(p.IP.TotalLen) - ipHdrLen
	if claimed > len(seg) && claimed <= 65535 {
		seg = append(seg, make([]byte, claimed-len(seg))...)
	}
	if len(seg) >= 18 {
		be.PutUint16(seg[16:18], 0)
		p.TCP.Checksum = tcpChecksum(p.IP.SrcIP, p.IP.DstIP, seg)
	}
	return nil
}

// Checksum computes the RFC 1071 internet checksum over data.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(be.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// tcpChecksum computes the TCP checksum including the IPv4 pseudo-header.
// segment must contain the TCP header (with a zeroed checksum field) and
// payload.
func tcpChecksum(src, dst [4]byte, segment []byte) uint16 {
	pseudo := make([]byte, 12, 12+len(segment))
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = ProtoTCP
	be.PutUint16(pseudo[10:12], uint16(len(segment)))
	return Checksum(append(pseudo, segment...))
}

// IPChecksumValid re-derives the IP header checksum and compares it with the
// stored value.
func (p *Packet) IPChecksumValid() bool {
	raw, err := p.Encode(SerializeOptions{})
	if err != nil {
		return false
	}
	hdrLen := int(p.IP.IHL) * 4
	if hdrLen < 20 || hdrLen > len(raw) {
		hdrLen = 20 + len(p.IP.Options)
		if hdrLen > len(raw) {
			return false
		}
	}
	be.PutUint16(raw[10:12], 0)
	return Checksum(raw[:hdrLen]) == p.IP.Checksum
}

// TCPChecksumValid re-derives the TCP checksum (pseudo-header included) and
// compares it with the stored value.
//
// Payload-stripped captures (the MAWI convention this corpus follows) keep
// the claimed segment length in the IP total length while carrying no
// payload bytes. Validation therefore checksums the header plus the stored
// payload, zero-padded out to the claimed length — the same convention the
// synthetic generator uses when stamping checksums — so that any header
// corruption, stored-checksum corruption, or length forgery flips validity.
func (p *Packet) TCPChecksumValid() bool {
	raw, err := p.Encode(SerializeOptions{})
	if err != nil {
		return false
	}
	ipHdrLen := int(p.IP.IHL) * 4
	if ipHdrLen < 20 || ipHdrLen > len(raw) {
		ipHdrLen = 20 + len(p.IP.Options)
	}
	if ipHdrLen+20 > len(raw) {
		return false
	}
	seg := raw[ipHdrLen:]
	claimed := int(p.IP.TotalLen) - ipHdrLen
	if claimed > len(seg) && claimed <= 65535 {
		seg = append(seg, make([]byte, claimed-len(seg))...)
	}
	be.PutUint16(seg[16:18], 0)
	return tcpChecksum(p.IP.SrcIP, p.IP.DstIP, seg) == p.TCP.Checksum
}
