package kitsune

import (
	"math"
	"testing"
	"time"

	"clap/internal/flow"
	"clap/internal/packet"
	"clap/internal/trafficgen"
)

func trainStream(n int, seed int64) []*packet.Packet {
	cfg := trafficgen.DefaultConfig(n)
	cfg.Seed = seed
	return trafficgen.GeneratePackets(cfg)
}

func TestIncStatDecay(t *testing.T) {
	s := incStat{lambda: 1}
	s.insert(0, 10)
	if got := s.mean(); got != 10 {
		t.Fatalf("mean = %g, want 10", got)
	}
	// After one second at λ=1 the old weight halves.
	s.insert(1, 0)
	wantMean := (10 * 0.5) / (0.5 + 1)
	if got := s.mean(); math.Abs(got-wantMean) > 1e-12 {
		t.Errorf("decayed mean = %g, want %g", got, wantMean)
	}
	if s.variance() < 0 {
		t.Error("variance must be non-negative")
	}
}

func TestIncStatNonMonotonicTimeTolerated(t *testing.T) {
	s := incStat{lambda: 1}
	s.insert(5, 1)
	s.insert(4, 2) // out-of-order timestamp: no negative decay blowup
	if math.IsNaN(s.mean()) || math.IsInf(s.mean(), 0) {
		t.Error("out-of-order insert broke the stream")
	}
}

func TestExtractorVectorShape(t *testing.T) {
	ext := NewExtractor(nil)
	for i, p := range trainStream(10, 1) {
		v := ext.Update(p)
		if len(v) != NumFeatures {
			t.Fatalf("packet %d: %d features, want %d", i, len(v), NumFeatures)
		}
		for j, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("packet %d feature %d is %g", i, j, x)
			}
		}
	}
}

func TestExtractorSeparatesHosts(t *testing.T) {
	ext := NewExtractor(nil)
	a := [4]byte{1, 1, 1, 1}
	b := [4]byte{2, 2, 2, 2}
	ts := time.Unix(1600000000, 0)
	mk := func(src, dst [4]byte, size int, at time.Duration) *packet.Packet {
		return packet.NewBuilder(src, dst, 10, 20).Flags(packet.ACK).
			PayloadLen(size).Time(ts.Add(at)).Build()
	}
	// Host a sends big packets; host b tiny ones.
	var va, vb []float64
	for i := 0; i < 20; i++ {
		va = ext.Update(mk(a, b, 1000, time.Duration(i)*time.Millisecond))
		vb = ext.Update(mk(b, a, 10, time.Duration(i)*time.Millisecond+500*time.Microsecond))
	}
	// Feature 1 is the λ=5 host mean size.
	if va[1] <= vb[1] {
		t.Errorf("host mean sizes not separated: a=%g b=%g", va[1], vb[1])
	}
}

func TestTrainBuildsEnsemble(t *testing.T) {
	k := New(DefaultConfig())
	k.Train(trainStream(150, 3))
	if k.EnsembleSize() == 0 {
		t.Fatal("no ensemble built")
	}
	if k.EnsembleSize() < 10 || k.EnsembleSize() > 40 {
		t.Errorf("ensemble size = %d, expected a Table-6-like ensemble (~16)", k.EnsembleSize())
	}
	covered := map[int]bool{}
	for _, cl := range k.Clusters() {
		if len(cl) > k.cfg.MaxAEInput {
			t.Errorf("cluster of size %d exceeds cap %d", len(cl), k.cfg.MaxAEInput)
		}
		for _, f := range cl {
			if covered[f] {
				t.Errorf("feature %d in two clusters", f)
			}
			covered[f] = true
		}
	}
	if len(covered) != NumFeatures {
		t.Errorf("clusters cover %d features, want %d", len(covered), NumFeatures)
	}
}

func TestScoresAreFiniteAndFrozen(t *testing.T) {
	k := New(DefaultConfig())
	k.Train(trainStream(120, 5))
	cfg := trafficgen.DefaultConfig(10)
	cfg.Seed = 99
	for _, c := range trafficgen.Generate(cfg) {
		s := k.ScoreConnection(c)
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
			t.Fatalf("bad connection score %g", s)
		}
	}
}

func TestKitsuneDetectsVolumeAnomaly(t *testing.T) {
	// Kitsune's home turf: a flood of identical packets from one host must
	// score above benign traffic. This guards against the baseline being
	// accidentally broken (its Table-1 weakness must come from its feature
	// blindness, not from bugs).
	k := New(DefaultConfig())
	k.Train(trainStream(200, 7))

	cfg := trafficgen.DefaultConfig(10)
	cfg.Seed = 101
	benign := trafficgen.Generate(cfg)
	var benignMax float64
	for _, c := range benign {
		if s := k.ScoreConnection(c); s > benignMax {
			benignMax = s
		}
	}

	// Syn-flood-ish burst: thousands of minimal SYNs at microsecond gaps.
	flood := &flow.Connection{}
	src := [4]byte{66, 6, 6, 6}
	dst := [4]byte{99, 9, 9, 9}
	ts := time.Unix(1586236600, 0)
	for i := 0; i < 800; i++ {
		p := packet.NewBuilder(src, dst, uint16(1000+i%7), 80).
			Seq(uint32(i)).Flags(packet.SYN).Time(ts.Add(time.Duration(i) * 40 * time.Microsecond)).Build()
		flood.Append(p, flow.ClientToServer)
	}
	floodScore := k.ScoreConnection(flood)
	if floodScore <= benignMax {
		t.Errorf("flood score %g not above benign max %g", floodScore, benignMax)
	}
}

func TestShortStreamStillTrains(t *testing.T) {
	k := New(DefaultConfig())
	k.Train(trainStream(5, 9)) // far below FMWindow
	if k.EnsembleSize() == 0 {
		t.Fatal("short stream should still build a feature map")
	}
	cfg := trafficgen.DefaultConfig(3)
	cfg.Seed = 11
	for _, c := range trafficgen.Generate(cfg) {
		if s := k.ScoreConnection(c); math.IsNaN(s) {
			t.Fatal("NaN score after short training")
		}
	}
}

func TestCorrelationMatrixProperties(t *testing.T) {
	window := [][]float64{
		{1, 2, 1, 5},
		{2, 4, 1, 4},
		{3, 6, 1, 3},
		{4, 8, 1, 2},
	}
	c := correlationMatrix(window, 4)
	if math.Abs(c[0][1]-1) > 1e-9 {
		t.Errorf("corr(x,2x) = %g, want 1", c[0][1])
	}
	if math.Abs(c[0][3]+1) > 1e-9 {
		t.Errorf("corr(x,-x) = %g, want -1", c[0][3])
	}
	if c[2][2] != 1 {
		t.Errorf("constant feature self-corr = %g, want 1", c[2][2])
	}
	if c[0][2] != 0 {
		t.Errorf("corr with constant = %g, want 0", c[0][2])
	}
	for i := range c {
		for j := range c {
			if math.Abs(c[i][j]-c[j][i]) > 1e-12 {
				t.Fatal("correlation matrix not symmetric")
			}
		}
	}
}
