package kitsune

import (
	"bytes"
	"strings"
	"testing"

	"clap/internal/flow"
	"clap/internal/trafficgen"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FMWindow = 300
	k := New(cfg)
	k.Train(trainStream(60, 3))

	var buf bytes.Buffer
	if err := k.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.EnsembleSize() != k.EnsembleSize() {
		t.Fatalf("ensemble size %d != %d", got.EnsembleSize(), k.EnsembleSize())
	}
	if got.Config().FMWindow != cfg.FMWindow {
		t.Errorf("config not preserved: %+v", got.Config())
	}

	// Scores must be bit-identical: same clusters, weights and frozen
	// normalisation bounds.
	gen := trafficgen.DefaultConfig(6)
	gen.Seed = 11
	for i, c := range trafficgen.Generate(gen) {
		want := k.ScoreConnection(c)
		if s := got.ScoreConnection(c); s != want {
			t.Fatalf("conn %d: loaded score %v != original %v", i, s, want)
		}
		we, ge := k.ConnectionErrors(c), got.ConnectionErrors(c)
		for j := range we {
			if we[j] != ge[j] {
				t.Fatalf("conn %d packet %d: error series diverged", i, j)
			}
		}
	}
}

func TestSaveRejectsUntrained(t *testing.T) {
	var buf bytes.Buffer
	if err := New(DefaultConfig()).Save(&buf); err == nil || !strings.Contains(err.Error(), "untrained") {
		t.Fatalf("untrained save error = %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage should not load")
	}
}

func TestConnectionErrorsMatchScore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FMWindow = 300
	k := New(cfg)
	k.Train(trainStream(60, 5))
	gen := trafficgen.DefaultConfig(5)
	gen.Seed = 23
	for _, c := range trafficgen.Generate(gen) {
		errs := k.ConnectionErrors(c)
		if len(errs) != c.Len() {
			t.Fatalf("%d errors for %d packets", len(errs), c.Len())
		}
		max := 0.0
		for _, e := range errs {
			if e > max {
				max = e
			}
		}
		if got := k.ScoreConnection(c); got != max {
			t.Fatalf("ScoreConnection %v != max packet error %v", got, max)
		}
	}
	if errs := k.ConnectionErrors(&flow.Connection{}); len(errs) != 0 {
		t.Fatalf("empty connection produced %d errors", len(errs))
	}
}
