// Package kitsune reimplements Baseline #2 (§4.1): Kitsune [17], the
// NDSS'18 ensemble-of-autoencoders network IDS, comprising the AfterImage
// damped incremental statistics extractor (100 features over five decay
// horizons), the correlation-clustering feature mapper, and the KitNET
// two-tier autoencoder ensemble.
//
// Kitsune's features summarise traffic *volume and timing* per host,
// channel and socket. That makes it a strong general anomaly detector and
// — as the paper's Table 1 shows — nearly blind to header-semantics
// context violations, which is exactly why it serves as the
// context-agnostic baseline.
package kitsune

import (
	"math"

	"clap/internal/packet"
)

// DefaultLambdas are AfterImage's five decay horizons (≈ 5, 3, 1, 0.1 and
// 0.01 in 1/seconds), from the Kitsune reference implementation.
var DefaultLambdas = []float64{5, 3, 1, 0.1, 0.01}

// incStat is one damped 1-D statistic stream (AfterImage's incStat): a
// decayed weight, linear sum and squared sum from which mean and variance
// follow.
type incStat struct {
	lambda    float64
	w, ls, ss float64
	lastT     float64
	init      bool
	lastRes   float64 // last residual, for 2-D covariance linking
}

func (s *incStat) insert(t, x float64) {
	if s.init {
		dt := t - s.lastT
		if dt < 0 {
			dt = 0
		}
		decay := math.Exp2(-s.lambda * dt)
		s.w *= decay
		s.ls *= decay
		s.ss *= decay
	}
	s.init = true
	s.lastT = t
	s.w++
	s.ls += x
	s.ss += x * x
	s.lastRes = x - s.mean()
}

func (s *incStat) mean() float64 {
	if s.w == 0 {
		return 0
	}
	return s.ls / s.w
}

func (s *incStat) variance() float64 {
	if s.w == 0 {
		return 0
	}
	v := s.ss/s.w - s.mean()*s.mean()
	if v < 0 {
		return 0
	}
	return v
}

func (s *incStat) std() float64 { return math.Sqrt(s.variance()) }

// stats1D is one statistic stream across all decay horizons: 3 features
// (weight, mean, std) per lambda.
type stats1D struct {
	streams []incStat
}

func newStats1D(lambdas []float64) *stats1D {
	st := &stats1D{streams: make([]incStat, len(lambdas))}
	for i, l := range lambdas {
		st.streams[i].lambda = l
	}
	return st
}

func (st *stats1D) insert(t, x float64) {
	for i := range st.streams {
		st.streams[i].insert(t, x)
	}
}

// appendFeatures appends w, μ, σ per horizon.
func (st *stats1D) appendFeatures(out []float64) []float64 {
	for i := range st.streams {
		s := &st.streams[i]
		out = append(out, s.w, s.mean(), s.std())
	}
	return out
}

// stats2D links two directional 1-D streams (the two directions of a
// channel or socket) with AfterImage's correlation statistics: 4 features
// (magnitude, radius, covariance approximation, correlation coefficient)
// per horizon.
type stats2D struct {
	a, b *stats1D
	sr   []incStat // decayed sum of residual products per horizon
}

func newStats2D(a, b *stats1D, lambdas []float64) *stats2D {
	st := &stats2D{a: a, b: b, sr: make([]incStat, len(lambdas))}
	for i, l := range lambdas {
		st.sr[i].lambda = l
	}
	return st
}

// noteInsert is called after inserting into stream a (the packet's own
// direction) to fold the residual product into the covariance stream.
func (st *stats2D) noteInsert(t float64, dirA bool) {
	for i := range st.sr {
		var ra, rb float64
		if dirA {
			ra = st.a.streams[i].lastRes
			rb = st.b.streams[i].lastRes
		} else {
			ra = st.b.streams[i].lastRes
			rb = st.a.streams[i].lastRes
		}
		st.sr[i].insert(t, ra*rb)
	}
}

func (st *stats2D) appendFeatures(out []float64) []float64 {
	for i := range st.sr {
		sa, sb := &st.a.streams[i], &st.b.streams[i]
		magnitude := math.Sqrt(sa.mean()*sa.mean() + sb.mean()*sb.mean())
		va, vb := sa.variance(), sb.variance()
		radius := math.Sqrt(va*va + vb*vb)
		cov := st.sr[i].mean()
		pcc := 0.0
		if d := sa.std() * sb.std(); d > 0 {
			pcc = cov / d
		}
		out = append(out, magnitude, radius, cov, pcc)
	}
	return out
}

// Extractor is the stateful AfterImage feature extractor. For each packet
// it produces NumFeatures damped statistics describing the sender host, the
// channel, the socket and channel jitter.
type Extractor struct {
	lambdas []float64

	hosts   map[[4]byte]*stats1D
	chans   map[chanKey]*chanState
	sockets map[sockKey]*chanState
}

// NumFeatures is the AfterImage vector width: 15 host + 35 channel +
// 35 socket + 15 jitter = 100 (Table 6: "Total Input Size 100").
const NumFeatures = 100

type chanKey struct {
	a, b [4]byte // canonical order
}

type sockKey struct {
	a, b   [4]byte
	ap, bp uint16
}

// chanState holds the directional streams and their 2-D link for a channel
// or socket, plus the jitter stream (channels only).
type chanState struct {
	dirA, dirB *stats1D // sizes per direction (A = canonical a→b)
	link       *stats2D
	jitter     *stats1D
	lastSeen   float64
}

// NewExtractor creates an empty extractor.
func NewExtractor(lambdas []float64) *Extractor {
	if len(lambdas) == 0 {
		lambdas = DefaultLambdas
	}
	return &Extractor{
		lambdas: lambdas,
		hosts:   make(map[[4]byte]*stats1D),
		chans:   make(map[chanKey]*chanState),
		sockets: make(map[sockKey]*chanState),
	}
}

func (e *Extractor) channel(src, dst [4]byte) (*chanState, bool) {
	k := chanKey{src, dst}
	forward := true
	if lessIP(dst, src) {
		k = chanKey{dst, src}
		forward = false
	}
	cs, ok := e.chans[k]
	if !ok {
		cs = e.newChanState(true)
		e.chans[k] = cs
	}
	return cs, forward
}

func (e *Extractor) socket(src, dst [4]byte, sp, dp uint16) (*chanState, bool) {
	k := sockKey{src, dst, sp, dp}
	forward := true
	if lessIP(dst, src) || (src == dst && dp < sp) {
		k = sockKey{dst, src, dp, sp}
		forward = false
	}
	cs, ok := e.sockets[k]
	if !ok {
		cs = e.newChanState(false)
		e.sockets[k] = cs
	}
	return cs, forward
}

func (e *Extractor) newChanState(withJitter bool) *chanState {
	cs := &chanState{
		dirA: newStats1D(e.lambdas),
		dirB: newStats1D(e.lambdas),
	}
	cs.link = newStats2D(cs.dirA, cs.dirB, e.lambdas)
	if withJitter {
		cs.jitter = newStats1D(e.lambdas)
	}
	return cs
}

func lessIP(a, b [4]byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Update folds one packet into the statistics and returns its AfterImage
// feature vector.
func (e *Extractor) Update(p *packet.Packet) []float64 {
	t := float64(p.Timestamp.UnixNano()) / 1e9
	size := float64(p.IP.TotalLen)

	host, ok := e.hosts[p.IP.SrcIP]
	if !ok {
		host = newStats1D(e.lambdas)
		e.hosts[p.IP.SrcIP] = host
	}
	host.insert(t, size)

	ch, chForward := e.channel(p.IP.SrcIP, p.IP.DstIP)
	if ch.jitter != nil {
		if ch.lastSeen > 0 {
			ch.jitter.insert(t, t-ch.lastSeen)
		}
		ch.lastSeen = t
	}
	if chForward {
		ch.dirA.insert(t, size)
	} else {
		ch.dirB.insert(t, size)
	}
	ch.link.noteInsert(t, chForward)

	so, soForward := e.socket(p.IP.SrcIP, p.IP.DstIP, p.TCP.SrcPort, p.TCP.DstPort)
	if soForward {
		so.dirA.insert(t, size)
	} else {
		so.dirB.insert(t, size)
	}
	so.link.noteInsert(t, soForward)

	out := make([]float64, 0, NumFeatures)
	out = host.appendFeatures(out)
	if chForward {
		out = ch.dirA.appendFeatures(out)
	} else {
		out = ch.dirB.appendFeatures(out)
	}
	out = ch.link.appendFeatures(out)
	if soForward {
		out = so.dirA.appendFeatures(out)
	} else {
		out = so.dirB.appendFeatures(out)
	}
	out = so.link.appendFeatures(out)
	if ch.jitter != nil {
		out = ch.jitter.appendFeatures(out)
	}
	for len(out) < NumFeatures {
		out = append(out, 0)
	}
	return out
}
