package kitsune

import (
	"math"
	"math/rand"
	"sort"

	"clap/internal/flow"
	"clap/internal/nn"
	"clap/internal/packet"
)

// Config tunes the Kitsune baseline.
type Config struct {
	Seed int64
	// Lambdas are the AfterImage decay horizons.
	Lambdas []float64
	// MaxAEInput caps the feature-mapper cluster size (Kitsune's m). With
	// 100 features and a cap of 7 the ensemble lands around 16 small
	// autoencoders, matching Table 6.
	MaxAEInput int
	// HiddenRatio sizes each small autoencoder's bottleneck (β·d).
	HiddenRatio float64
	// FMWindow is the number of packets used to learn the feature map.
	FMWindow int
	// Learn is the SGD/Adam learning rate for the online training phase.
	Learn float64
}

// DefaultConfig mirrors the Kitsune defaults scaled to this corpus.
func DefaultConfig() Config {
	return Config{
		Seed:        1,
		Lambdas:     DefaultLambdas,
		MaxAEInput:  7,
		HiddenRatio: 0.75,
		FMWindow:    2000,
		Learn:       1e-3,
	}
}

// Kitsune is the assembled baseline: extractor, feature map, ensemble and
// output autoencoder. It is trained online over a benign packet stream and
// then frozen for execution, exactly like the original system's
// FM-grace/AD-grace/execute phases.
type Kitsune struct {
	cfg Config
	ext *Extractor

	clusters [][]int // feature indices per ensemble autoencoder
	ensemble []*nn.Autoencoder
	output   *nn.Autoencoder
	opts     []*nn.Adam
	outOpt   *nn.Adam

	// Running min/max normalisation, frozen after training.
	min, max []float64
	outMin   []float64
	outMax   []float64
	frozen   bool
}

// New creates an untrained Kitsune.
func New(cfg Config) *Kitsune {
	if cfg.MaxAEInput <= 0 {
		cfg.MaxAEInput = 7
	}
	if cfg.HiddenRatio <= 0 {
		cfg.HiddenRatio = 0.75
	}
	k := &Kitsune{cfg: cfg, ext: NewExtractor(cfg.Lambdas)}
	k.min = make([]float64, NumFeatures)
	k.max = make([]float64, NumFeatures)
	for i := range k.min {
		k.min[i] = math.Inf(1)
		k.max[i] = math.Inf(-1)
	}
	return k
}

// EnsembleSize returns the number of small autoencoders (0 before
// training).
func (k *Kitsune) EnsembleSize() int { return len(k.ensemble) }

// Clusters exposes the learned feature map (for Table 6 reporting).
func (k *Kitsune) Clusters() [][]int { return k.clusters }

// Train runs the full online training pass over a benign packet stream:
// the first FMWindow packets learn the feature map, the remainder train the
// ensemble.
func (k *Kitsune) Train(pkts []*packet.Packet) {
	rng := rand.New(rand.NewSource(k.cfg.Seed))
	var fmWindow [][]float64
	for _, p := range pkts {
		v := k.ext.Update(p)
		k.observeMinMax(v)
		if k.ensemble == nil {
			fmWindow = append(fmWindow, v)
			if len(fmWindow) >= k.cfg.FMWindow {
				k.buildFeatureMap(fmWindow, rng)
				// Replay the grace window as training data.
				for _, w := range fmWindow {
					k.trainVector(w)
				}
				fmWindow = nil
			}
			continue
		}
		k.trainVector(v)
	}
	if k.ensemble == nil {
		// Stream shorter than the grace window: build from what we have.
		k.buildFeatureMap(fmWindow, rng)
		for _, w := range fmWindow {
			k.trainVector(w)
		}
	}
	k.frozen = true
}

func (k *Kitsune) observeMinMax(v []float64) {
	if k.frozen {
		return
	}
	for i, x := range v {
		if x < k.min[i] {
			k.min[i] = x
		}
		if x > k.max[i] {
			k.max[i] = x
		}
	}
}

// normalize maps a raw vector to [0,1] per feature with the training
// bounds.
func (k *Kitsune) normalize(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		span := k.max[i] - k.min[i]
		if span <= 0 || math.IsInf(k.min[i], 1) {
			continue
		}
		n := (x - k.min[i]) / span
		if n < 0 {
			n = 0
		}
		if n > 1 {
			n = 1
		}
		out[i] = n
	}
	return out
}

// buildFeatureMap clusters features by correlation distance
// (agglomerative, capped cluster size), Kitsune's FM phase.
func (k *Kitsune) buildFeatureMap(window [][]float64, rng *rand.Rand) {
	n := NumFeatures
	corr := correlationMatrix(window, n)

	type cluster struct{ members []int }
	clusters := make([]*cluster, n)
	for i := range clusters {
		clusters[i] = &cluster{members: []int{i}}
	}
	dist := func(a, b *cluster) float64 {
		// Average-linkage over 1−|ρ|.
		var s float64
		for _, i := range a.members {
			for _, j := range b.members {
				s += 1 - math.Abs(corr[i][j])
			}
		}
		return s / float64(len(a.members)*len(b.members))
	}
	for {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if len(clusters[i].members)+len(clusters[j].members) > k.cfg.MaxAEInput {
					continue
				}
				if d := dist(clusters[i], clusters[j]); d < best {
					bi, bj, best = i, j, d
				}
			}
		}
		if bi < 0 || best > 0.9 {
			break
		}
		clusters[bi].members = append(clusters[bi].members, clusters[bj].members...)
		sort.Ints(clusters[bi].members)
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}

	k.clusters = make([][]int, len(clusters))
	k.ensemble = make([]*nn.Autoencoder, len(clusters))
	k.opts = make([]*nn.Adam, len(clusters))
	for i, c := range clusters {
		k.clusters[i] = c.members
		d := len(c.members)
		h := int(math.Ceil(float64(d) * k.cfg.HiddenRatio))
		if h < 1 {
			h = 1
		}
		k.ensemble[i] = nn.NewAutoencoder([]int{d, h, d}, rng)
		k.opts[i] = nn.NewAdam(k.cfg.Learn)
		k.opts[i].Register(k.ensemble[i].Params()...)
	}
	m := len(clusters)
	hOut := int(math.Ceil(float64(m) * k.cfg.HiddenRatio))
	if hOut < 1 {
		hOut = 1
	}
	k.output = nn.NewAutoencoder([]int{m, hOut, m}, rng)
	k.outOpt = nn.NewAdam(k.cfg.Learn)
	k.outOpt.Register(k.output.Params()...)
	k.outMin = make([]float64, m)
	k.outMax = make([]float64, m)
	for i := range k.outMin {
		k.outMin[i] = math.Inf(1)
		k.outMax[i] = math.Inf(-1)
	}
}

func correlationMatrix(window [][]float64, n int) [][]float64 {
	mean := make([]float64, n)
	for _, v := range window {
		for i := 0; i < n; i++ {
			mean[i] += v[i]
		}
	}
	for i := range mean {
		mean[i] /= float64(len(window))
	}
	std := make([]float64, n)
	corr := make([][]float64, n)
	for i := range corr {
		corr[i] = make([]float64, n)
	}
	for _, v := range window {
		for i := 0; i < n; i++ {
			std[i] += (v[i] - mean[i]) * (v[i] - mean[i])
		}
	}
	for i := range std {
		std[i] = math.Sqrt(std[i])
	}
	for _, v := range window {
		for i := 0; i < n; i++ {
			ri := v[i] - mean[i]
			for j := i; j < n; j++ {
				corr[i][j] += ri * (v[j] - mean[j])
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			d := std[i] * std[j]
			if d > 0 {
				corr[i][j] /= d
			} else if i == j {
				corr[i][j] = 1
			} else {
				corr[i][j] = 0
			}
			corr[j][i] = corr[i][j]
		}
	}
	return corr
}

// slice gathers a normalized sub-vector for ensemble member i.
func (k *Kitsune) slice(norm []float64, i int) []float64 {
	out := make([]float64, len(k.clusters[i]))
	for j, f := range k.clusters[i] {
		out[j] = norm[f]
	}
	return out
}

// ensembleErrors computes the per-member reconstruction errors.
func (k *Kitsune) ensembleErrors(norm []float64) []float64 {
	errs := make([]float64, len(k.ensemble))
	for i, ae := range k.ensemble {
		errs[i] = ae.Error(k.slice(norm, i))
	}
	return errs
}

func (k *Kitsune) normalizeErrs(errs []float64) []float64 {
	out := make([]float64, len(errs))
	for i, e := range errs {
		if !k.frozen {
			if e < k.outMin[i] {
				k.outMin[i] = e
			}
			if e > k.outMax[i] {
				k.outMax[i] = e
			}
		}
		span := k.outMax[i] - k.outMin[i]
		if span <= 0 || math.IsInf(k.outMin[i], 1) {
			continue
		}
		n := (e - k.outMin[i]) / span
		if n < 0 {
			n = 0
		}
		if n > 1 {
			n = 1
		}
		out[i] = n
	}
	return out
}

func (k *Kitsune) trainVector(v []float64) {
	norm := k.normalize(v)
	for i, ae := range k.ensemble {
		ae.TrainBatch([][]float64{k.slice(norm, i)}, k.opts[i], 5)
	}
	errs := k.normalizeErrs(k.ensembleErrors(norm))
	k.output.TrainBatch([][]float64{errs}, k.outOpt, 5)
}

// ScorePacket runs the execute phase for one packet in streaming mode:
// statistics update on the shared extractor, ensemble reconstruction,
// output-layer anomaly score.
func (k *Kitsune) ScorePacket(p *packet.Packet) float64 {
	return k.scoreWith(k.ext, p)
}

func (k *Kitsune) scoreWith(ext *Extractor, p *packet.Packet) float64 {
	v := ext.Update(p)
	norm := k.normalize(v)
	errs := k.normalizeErrs(k.ensembleErrors(norm))
	return k.output.Error(errs)
}

// ConnectionErrors returns the per-packet anomaly-score series of a
// connection against a fresh statistics context — the Kitsune analogue of
// CLAP's per-window reconstruction errors, and the substrate
// ScoreConnection reduces with max. Safe for concurrent use on a frozen
// model, like ScoreConnection.
func (k *Kitsune) ConnectionErrors(c *flow.Connection) []float64 {
	ext := NewExtractor(k.cfg.Lambdas)
	out := make([]float64, c.Len())
	for i, p := range c.Packets {
		out[i] = k.scoreWith(ext, p)
	}
	return out
}

// ScoreConnection scores one connection as the maximum packet score, the
// conventional flow-level reduction for per-packet IDSs. The connection is
// scored against a fresh statistics context (models and normalisation stay
// shared and frozen) so that repeatedly scoring overlapping corpora — as
// the per-strategy evaluation does — cannot contaminate the damped
// statistics with replayed traffic. Because the per-call extractor is the
// only mutable state, ScoreConnection on a trained (frozen) model is safe
// for concurrent use and the parallel engine fans it out alongside CLAP.
func (k *Kitsune) ScoreConnection(c *flow.Connection) float64 {
	ext := NewExtractor(k.cfg.Lambdas)
	var max float64
	for _, p := range c.Packets {
		if s := k.scoreWith(ext, p); s > max {
			max = s
		}
	}
	return max
}
