package kitsune

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"clap/internal/nn"
)

// A trained (frozen) Kitsune persists as one gob snapshot: the config, the
// learned feature map, the frozen normalisation bounds, and the ensemble
// and output autoencoders framed as byte blobs (the same framing rationale
// as core's persistence: a gob decoder may read ahead on the underlying
// reader). Extractor statistics are deliberately not persisted —
// ScoreConnection builds a fresh statistics context per connection, and a
// loaded model starts streaming mode from an empty one.

type kitSnap struct {
	Cfg      Config
	Clusters [][]int
	Min, Max []float64
	OutMin   []float64
	OutMax   []float64
	Ensemble [][]byte
	Output   []byte
}

// Save writes the trained model to w. It fails on an untrained instance:
// the feature map and ensemble only exist after Train.
func (k *Kitsune) Save(w io.Writer) error {
	if len(k.ensemble) == 0 || k.output == nil {
		return fmt.Errorf("kitsune: saving untrained model")
	}
	s := kitSnap{
		Cfg:      k.cfg,
		Clusters: k.clusters,
		Min:      k.min,
		Max:      k.max,
		OutMin:   k.outMin,
		OutMax:   k.outMax,
	}
	for _, ae := range k.ensemble {
		var buf bytes.Buffer
		if err := nn.SaveAutoencoder(&buf, ae); err != nil {
			return fmt.Errorf("kitsune: saving ensemble member: %w", err)
		}
		s.Ensemble = append(s.Ensemble, buf.Bytes())
	}
	var buf bytes.Buffer
	if err := nn.SaveAutoencoder(&buf, k.output); err != nil {
		return fmt.Errorf("kitsune: saving output layer: %w", err)
	}
	s.Output = buf.Bytes()
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("kitsune: encoding snapshot: %w", err)
	}
	return nil
}

// Load reads a model written by Save. The result is frozen (execute phase
// only); further Train calls are not supported.
func Load(r io.Reader) (*Kitsune, error) {
	var s kitSnap
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("kitsune: decoding snapshot: %w", err)
	}
	if len(s.Clusters) != len(s.Ensemble) {
		return nil, fmt.Errorf("kitsune: snapshot has %d clusters but %d ensemble members",
			len(s.Clusters), len(s.Ensemble))
	}
	k := New(s.Cfg)
	k.clusters = s.Clusters
	k.min, k.max = s.Min, s.Max
	k.outMin, k.outMax = s.OutMin, s.OutMax
	for i, blob := range s.Ensemble {
		ae, err := nn.LoadAutoencoder(bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("kitsune: loading ensemble member %d: %w", i, err)
		}
		k.ensemble = append(k.ensemble, ae)
	}
	out, err := nn.LoadAutoencoder(bytes.NewReader(s.Output))
	if err != nil {
		return nil, fmt.Errorf("kitsune: loading output layer: %w", err)
	}
	k.output = out
	k.frozen = true
	return k, nil
}

// Config returns the configuration the model was built with.
func (k *Kitsune) Config() Config { return k.cfg }
