// Package dpi models the simplified, permissive TCP trackers inside the
// three middleboxes the evasion corpus targets — the GFW, Zeek and Snort —
// and checks the endhost-vs-DPI behavioural discrepancy every strategy in
// internal/attacks claims to produce (the paper's threat model, §3.2).
//
// The models intentionally reproduce the *documented implementation gaps*
// the source papers exploit (no checksum validation, window-based RST
// acceptance, SYN resynchronisation, immediate FIN teardown, urgent-pointer
// mishandling, ...). CLAP itself never consults these models; they exist so
// tests can prove each simulated attack diverges exactly like the real one.
package dpi

import (
	"clap/internal/flow"
	"clap/internal/packet"
)

// Model selects which middlebox to emulate.
type Model uint8

// The three emulated DPI systems.
const (
	GFW Model = iota
	Zeek
	Snort
)

// String names the model.
func (m Model) String() string {
	switch m {
	case GFW:
		return "GFW"
	case Zeek:
		return "Zeek"
	case Snort:
		return "Snort"
	}
	return "unknown"
}

// Models lists all emulated middleboxes.
func Models() []Model { return []Model{GFW, Zeek, Snort} }

// quirks encodes the per-model implementation gaps.
type quirks struct {
	validateChecksums bool // drop bad-checksum segments (none of the models)
	requireACK        bool // require ACK flag on established-state segments
	checkMD5          bool // drop unsolicited MD5 options
	paws              bool // validate timestamps
	strictRST         bool // require exact-sequence RSTs (RFC 5961)
	windowRST         bool // require RSTs to be window-plausible
	teardownOnFIN     bool // disengage on the first FIN from the client side
	resyncOnSYN       bool // adopt a new SYN's ISN mid-connection
	lastWriterWins    bool // reassembly overlap policy (true: new data replaces old)
	urgentSkip        bool // drop the byte indicated by a non-zero urgent pointer
	ignoreSYNPayload  bool // do not add SYN payload bytes to the stream
}

func modelQuirks(m Model) quirks {
	switch m {
	case GFW:
		// First-writer reassembly: the GFW famously ignores overlapping
		// retransmissions, which is why decoy-first shadow injection works.
		return quirks{teardownOnFIN: true, resyncOnSYN: true}
	case Zeek:
		// Zeek's reassembler can be driven to prefer new data on conflict;
		// the Overlapping evasion exploits exactly the old/new policy split
		// against the endhost's delivered-bytes-are-final semantics.
		return quirks{teardownOnFIN: true, resyncOnSYN: true, lastWriterWins: true, ignoreSYNPayload: true}
	default: // Snort
		return quirks{teardownOnFIN: true, resyncOnSYN: true, windowRST: true, urgentSkip: true}
	}
}

// seg is a half-open byte range [Lo,Hi) of one direction's stream, owned by
// the packet that contributed it.
type seg struct {
	Lo, Hi int64
	Owner  int
}

// stream is a direction's reassembled byte map.
type stream struct {
	segs []seg // sorted by Lo, non-overlapping
}

// insert adds [lo,hi) with the given owner. With overwrite, existing
// overlapping ranges are replaced (last-writer-wins); otherwise only gaps
// are filled (first-writer-wins).
func (s *stream) insert(lo, hi int64, owner int, overwrite bool) {
	if hi <= lo {
		return
	}
	var out []seg
	add := []seg{{lo, hi, owner}}
	for _, e := range s.segs {
		if e.Hi <= lo || e.Lo >= hi {
			out = append(out, e)
			continue
		}
		if overwrite {
			// Keep only the non-overlapped fringes of the existing segment.
			if e.Lo < lo {
				out = append(out, seg{e.Lo, lo, e.Owner})
			}
			if e.Hi > hi {
				out = append(out, seg{hi, e.Hi, e.Owner})
			}
			continue
		}
		// First-writer: carve the new range around the existing segment.
		out = append(out, e)
		var next []seg
		for _, a := range add {
			if a.Hi <= e.Lo || a.Lo >= e.Hi {
				next = append(next, a)
				continue
			}
			if a.Lo < e.Lo {
				next = append(next, seg{a.Lo, e.Lo, owner})
			}
			if a.Hi > e.Hi {
				next = append(next, seg{e.Hi, a.Hi, owner})
			}
		}
		add = next
	}
	out = append(out, add...)
	// Restore ordering.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Lo < out[j-1].Lo; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	s.segs = out
}

// ownerAt returns the owner covering byte x.
func (s *stream) ownerAt(x int64) (int, bool) {
	for _, e := range s.segs {
		if x >= e.Lo && x < e.Hi {
			return e.Owner, true
		}
	}
	return 0, false
}

// bytes sums the coverage.
func (s *stream) bytes() int64 {
	var n int64
	for _, e := range s.segs {
		n += e.Hi - e.Lo
	}
	return n
}

// Monitor is one middlebox's view of a connection.
type Monitor struct {
	model Model
	q     quirks

	engaged       bool
	disengageIdx  int // packet index that caused teardown, -1 while engaged
	resyncIdx     int // packet index that re-keyed the ISN, -1 if never
	isn           [2]uint32
	isnSet        [2]bool
	nextRel       [2]int64
	finSeen       [2]bool
	streams       [2]stream
	processedData int
}

// NewMonitor starts an engaged monitor.
func NewMonitor(m Model) *Monitor {
	return &Monitor{model: m, q: modelQuirks(m), engaged: true, disengageIdx: -1, resyncIdx: -1}
}

// Engaged reports whether the monitor still tracks the connection.
func (m *Monitor) Engaged() bool { return m.engaged }

// DisengageIdx returns the index of the packet that tore tracking down, or
// -1.
func (m *Monitor) DisengageIdx() int { return m.disengageIdx }

// ResyncIdx returns the index of the SYN that re-keyed tracking, or -1.
func (m *Monitor) ResyncIdx() int { return m.resyncIdx }

// rel converts an absolute sequence number of direction d to a stream
// offset (first payload byte of the direction is offset 0).
func (m *Monitor) rel(d flow.Direction, seq uint32) int64 {
	return int64(int32(seq - (m.isn[d] + 1)))
}

// Process feeds packet idx to the monitor.
func (m *Monitor) Process(idx int, p *packet.Packet, d flow.Direction) {
	if !m.engaged {
		return
	}
	f := p.TCP.Flags
	isSYN := f.Has(packet.SYN) && !f.Has(packet.ACK)

	// Header validations the models mostly lack.
	if m.q.validateChecksums && (!p.IPChecksumValid() || !p.TCPChecksumValid()) {
		return
	}
	if m.q.checkMD5 && p.TCP.FindOption(packet.OptMD5) != nil {
		return
	}

	if f.Has(packet.SYN) {
		if !m.isnSet[d] {
			m.isn[d] = p.TCP.Seq // SYN or SYN-ACK: seq is the ISN
			m.isnSet[d] = true
		} else if m.q.resyncOnSYN && p.TCP.Seq != m.isn[d] {
			// The documented resynchronisation bug: adopt the newest
			// SYN-bit packet's ISN (bare SYN or SYN-ACK). Benign
			// retransmissions re-use the original ISN and pass the guard.
			m.isn[d] = p.TCP.Seq
			m.resyncIdx = idx
		}
	} else if !m.isnSet[d] {
		m.isn[d] = p.TCP.Seq - 1 // mid-stream pickup
		m.isnSet[d] = true
	}

	if f.Has(packet.RST) {
		if m.q.windowRST {
			r := m.rel(d, p.TCP.Seq)
			if r < m.nextRel[d]-(1<<20) || r > m.nextRel[d]+(1<<20) {
				return // implausible RST even for the permissive model
			}
		}
		m.engaged = false
		m.disengageIdx = idx
		return
	}
	if f.Has(packet.FIN) {
		m.finSeen[d] = true
		if m.q.teardownOnFIN && d == flow.ClientToServer || m.finSeen[0] && m.finSeen[1] {
			m.engaged = false
			m.disengageIdx = idx
			return
		}
	}
	if m.q.requireACK && !f.Has(packet.ACK) && !isSYN {
		return
	}

	// Stream ingestion: the DPI trusts the wire bytes it sniffed.
	if p.PayloadLen > 0 {
		if isSYN && m.q.ignoreSYNPayload {
			return
		}
		dataSeq := p.TCP.Seq
		if f.Has(packet.SYN) {
			dataSeq++
		}
		lo := m.rel(d, dataSeq)
		hi := lo + int64(p.PayloadLen)
		if m.q.urgentSkip && p.TCP.Urgent > 0 {
			lo++ // the "urgent" byte is consumed out of band
		}
		m.streams[d].insert(lo, hi, idx, m.q.lastWriterWins)
		if hi > m.nextRel[d] {
			m.nextRel[d] = hi
		}
		m.processedData++
	} else {
		if r := m.rel(d, p.TCP.Seq); r > m.nextRel[d] && r-m.nextRel[d] < 1<<20 {
			m.nextRel[d] = r
		}
	}
}
