package dpi

import (
	"fmt"

	"clap/internal/flow"
	"clap/internal/packet"
	"clap/internal/tcpstate"
)

// Result describes how (and whether) a connection's replay diverged between
// the strict endhost and a DPI model — the success criterion of a DPI
// evasion attack.
type Result struct {
	Model Model

	// Escaped: an adversarial packet tore down DPI tracking while the
	// endhost went on accepting data.
	Escaped bool
	// Resynced: an adversarial SYN re-keyed the DPI's sequence tracking.
	Resynced bool
	// PoisonedBytes counts stream bytes whose contents differ between the
	// DPI's reassembly and the endhost's (shadow-data injection).
	PoisonedBytes int64
	// PhantomBytes counts bytes only the DPI believes exist (decoys the
	// endhost never accepted).
	PhantomBytes int64
	// MissedBytes counts endhost-accepted bytes absent from the DPI's
	// reassembly while it was still engaged (desynchronisation).
	MissedBytes int64
}

// Diverged reports whether the DPI's view of the connection differs from
// the endhost's in any attack-relevant way.
func (r Result) Diverged() bool {
	return r.Escaped || r.Resynced || r.PoisonedBytes > 0 || r.PhantomBytes > 0 || r.MissedBytes > 0
}

// String summarises the result.
func (r Result) String() string {
	return fmt.Sprintf("%s{escaped=%t resynced=%t poisoned=%dB phantom=%dB missed=%dB}",
		r.Model, r.Escaped, r.Resynced, r.PoisonedBytes, r.PhantomBytes, r.MissedBytes)
}

// overlap returns the intersection length of [aLo,aHi) and [bLo,bHi).
func overlap(aLo, aHi, bLo, bHi int64) int64 {
	lo, hi := aLo, aHi
	if bLo > lo {
		lo = bLo
	}
	if bHi < hi {
		hi = bHi
	}
	if hi > lo {
		return hi - lo
	}
	return 0
}

// Check replays a connection through both the strict endhost
// (internal/tcpstate) and the given DPI model and reports the divergence.
// For benign connections (no adversarial ground truth) every divergence
// signal is zero by construction — the signals are gated on the involvement
// of marked adversarial packets, because benign reassembly differences
// (retransmission overlaps) are not evasions.
func Check(c *flow.Connection, model Model) Result {
	res := Result{Model: model}
	adv := make(map[int]bool, len(c.AdvIdx))
	for _, i := range c.AdvIdx {
		adv[i] = true
	}

	// Endhost ground truth: per-direction stream of accepted bytes.
	verdicts := tcpstate.Replay(c, tcpstate.DefaultConfig())
	var host [2]stream
	var hostISN [2]uint32
	var hostISNSet [2]bool
	lastHostDataIdx := -1
	for i, p := range c.Packets {
		d := c.Dirs[i]
		isSYN := p.TCP.Flags.Has(packet.SYN)
		if !hostISNSet[d] {
			hostISN[d] = p.TCP.Seq
			if !isSYN {
				hostISN[d] = p.TCP.Seq - 1
			}
			hostISNSet[d] = true
		}
		if !verdicts[i].Accepted || p.PayloadLen == 0 {
			continue
		}
		dataSeq := p.TCP.Seq
		if isSYN {
			dataSeq++
		}
		lo := int64(int32(dataSeq - (hostISN[d] + 1)))
		host[d].insert(lo, lo+int64(p.PayloadLen), i, false)
		lastHostDataIdx = i
	}

	// DPI replay.
	mon := NewMonitor(model)
	for i, p := range c.Packets {
		mon.Process(i, p, c.Dirs[i])
	}

	if mon.disengageIdx >= 0 && adv[mon.disengageIdx] && lastHostDataIdx > mon.disengageIdx {
		res.Escaped = true
	}
	if mon.resyncIdx >= 0 && adv[mon.resyncIdx] {
		res.Resynced = true
	}

	for d := 0; d < 2; d++ {
		// Poisoned / missed: compare the endhost's accepted byte ranges
		// against the DPI's reassembly, segment pair by segment pair.
		for _, e := range host[d].segs {
			covered := int64(0)
			for _, g := range mon.streams[d].segs {
				n := overlap(e.Lo, e.Hi, g.Lo, g.Hi)
				if n == 0 {
					continue
				}
				covered += n
				if g.Owner != e.Owner && (adv[g.Owner] || adv[e.Owner]) {
					res.PoisonedBytes += n
				}
			}
			if miss := (e.Hi - e.Lo) - covered; miss > 0 && c.IsAdversarial() {
				// Only count bytes the DPI should have seen: packets
				// processed while it was still engaged.
				if mon.disengageIdx < 0 || e.Owner < mon.disengageIdx {
					res.MissedBytes += miss
				}
			}
		}
		// Phantom: DPI-only bytes owned by adversarial packets.
		for _, g := range mon.streams[d].segs {
			if !adv[g.Owner] {
				continue
			}
			covered := int64(0)
			for _, e := range host[d].segs {
				covered += overlap(e.Lo, e.Hi, g.Lo, g.Hi)
			}
			res.PhantomBytes += (g.Hi - g.Lo) - covered
		}
	}
	return res
}

// CheckAll runs Check against every model.
func CheckAll(c *flow.Connection) []Result {
	out := make([]Result, 0, 3)
	for _, m := range Models() {
		out = append(out, Check(c, m))
	}
	return out
}

// AnyDiverged reports whether at least one model diverged.
func AnyDiverged(c *flow.Connection) bool {
	for _, r := range CheckAll(c) {
		if r.Diverged() {
			return true
		}
	}
	return false
}
