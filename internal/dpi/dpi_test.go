package dpi

import (
	"math/rand"
	"testing"

	"clap/internal/attacks"
	"clap/internal/flow"
	"clap/internal/trafficgen"
)

func benign(n int, seed int64) []*flow.Connection {
	cfg := trafficgen.DefaultConfig(n)
	cfg.Seed = seed
	return trafficgen.Generate(cfg)
}

func TestBenignTrafficNeverDiverges(t *testing.T) {
	for _, c := range benign(150, 3) {
		for _, r := range CheckAll(c) {
			if r.Diverged() {
				t.Fatalf("benign connection %v diverged: %v", c.Key, r)
			}
		}
	}
}

// TestEveryStrategyDivergesSomewhere is the corpus-level soundness check:
// each of the 73 strategies must produce an endhost-vs-DPI discrepancy on at
// least one of the three middlebox models for a clear majority of the
// connections it applies to.
func TestEveryStrategyDivergesSomewhere(t *testing.T) {
	conns := benign(200, 5)
	rng := rand.New(rand.NewSource(1))
	for _, s := range attacks.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			applied, diverged := 0, 0
			for _, c := range conns {
				cc := c.Clone()
				if !s.Apply(cc, rng) {
					continue
				}
				applied++
				if AnyDiverged(cc) {
					diverged++
				}
				if applied >= 12 {
					break
				}
			}
			if applied == 0 {
				t.Fatal("strategy never applied")
			}
			if diverged*10 < applied*8 {
				t.Errorf("diverged on %d/%d applications, want >= 80%%", diverged, applied)
			}
		})
	}
}

func TestGFWTearsDownOnBadChecksumRST(t *testing.T) {
	// The paper's motivating example end to end: GFW disengages, endhost
	// doesn't, follow-up data escapes inspection.
	conns := benign(100, 7)
	rng := rand.New(rand.NewSource(3))
	s, _ := attacks.ByName("GFW: Injected RST Bad TCP-Checksum/MD5-Option")
	for _, c := range conns {
		cc := c.Clone()
		if !s.Apply(cc, rng) {
			continue
		}
		r := Check(cc, GFW)
		if !r.Escaped {
			t.Fatalf("GFW should have disengaged: %v", r)
		}
		mon := NewMonitor(GFW)
		for i, p := range cc.Packets {
			mon.Process(i, p, cc.Dirs[i])
		}
		if mon.Engaged() {
			t.Fatal("monitor still engaged after RST")
		}
		if mon.DisengageIdx() != cc.AdvIdx[0] {
			t.Fatalf("disengaged at %d, adversarial packet at %d", mon.DisengageIdx(), cc.AdvIdx[0])
		}
		return
	}
	t.Fatal("strategy never applied")
}

func TestSnortRejectsImplausibleRST(t *testing.T) {
	// Snort's windowRST quirk must ignore wildly out-of-window RSTs — the
	// Zeek Bad-SEQ RST should not fool the Snort model.
	conns := benign(100, 9)
	rng := rand.New(rand.NewSource(5))
	s, _ := attacks.ByName("Zeek: Injected RST/FIN-ACK Bad SEQ")
	checked := 0
	for _, c := range conns {
		cc := c.Clone()
		if !s.Apply(cc, rng) {
			continue
		}
		checked++
		if r := Check(cc, Snort); r.Escaped {
			t.Fatalf("Snort model accepted a far out-of-window RST: %v", r)
		}
		if r := Check(cc, Zeek); !r.Escaped {
			t.Fatalf("Zeek model should accept any RST: %v", r)
		}
		if checked >= 5 {
			return
		}
	}
	if checked == 0 {
		t.Fatal("strategy never applied")
	}
}

func TestShadowPoisonsDPIStream(t *testing.T) {
	conns := benign(100, 11)
	rng := rand.New(rand.NewSource(7))
	s, _ := attacks.ByName("Bad TCP Checksum (Min)")
	for _, c := range conns {
		cc := c.Clone()
		if !s.Apply(cc, rng) {
			continue
		}
		r := Check(cc, GFW)
		if r.PoisonedBytes == 0 {
			t.Fatalf("checksum decoy should poison the GFW stream: %v", r)
		}
		return
	}
	t.Fatal("strategy never applied")
}

func TestResyncCausesMissedBytes(t *testing.T) {
	conns := benign(150, 13)
	rng := rand.New(rand.NewSource(9))
	s, _ := attacks.ByName("Snort: SYN Multiple (SYN)")
	for _, c := range conns {
		cc := c.Clone()
		if !s.Apply(cc, rng) {
			continue
		}
		r := Check(cc, Snort)
		if !r.Resynced {
			t.Fatalf("Snort should resync on the decoy SYN: %v", r)
		}
		if r.MissedBytes == 0 {
			t.Fatalf("resync should make Snort miss the real stream: %v", r)
		}
		return
	}
	t.Fatal("strategy never applied")
}

func TestUrgentPointerSkipsByte(t *testing.T) {
	conns := benign(150, 15)
	rng := rand.New(rand.NewSource(11))
	s, _ := attacks.ByName("Snort: Data Packet (ACK) w/ Urgent Pointer")
	for _, c := range conns {
		cc := c.Clone()
		if !s.Apply(cc, rng) {
			continue
		}
		r := Check(cc, Snort)
		if r.MissedBytes == 0 {
			t.Fatalf("urgent-pointer mishandling should desync one byte: %v", r)
		}
		if gfw := Check(cc, GFW); gfw.MissedBytes != 0 {
			t.Fatalf("GFW does not mishandle urgent pointers: %v", gfw)
		}
		return
	}
	t.Fatal("strategy never applied")
}

func TestStreamInsertPolicies(t *testing.T) {
	var s stream
	s.insert(0, 100, 1, false)
	s.insert(50, 150, 2, false) // first-writer: only [100,150) added
	if got, _ := s.ownerAt(75); got != 1 {
		t.Errorf("ownerAt(75) = %d, want 1 (first writer)", got)
	}
	if got, _ := s.ownerAt(120); got != 2 {
		t.Errorf("ownerAt(120) = %d, want 2", got)
	}
	if s.bytes() != 150 {
		t.Errorf("coverage = %d, want 150", s.bytes())
	}

	var s2 stream
	s2.insert(0, 100, 1, true)
	s2.insert(50, 150, 2, true) // last-writer: [50,100) replaced
	if got, _ := s2.ownerAt(75); got != 2 {
		t.Errorf("last-writer ownerAt(75) = %d, want 2", got)
	}
	if got, _ := s2.ownerAt(25); got != 1 {
		t.Errorf("last-writer ownerAt(25) = %d, want 1", got)
	}
	if s2.bytes() != 150 {
		t.Errorf("last-writer coverage = %d, want 150", s2.bytes())
	}
	if _, ok := s2.ownerAt(200); ok {
		t.Error("ownerAt(200) should be uncovered")
	}
	// Degenerate insert is a no-op.
	s2.insert(10, 10, 9, true)
	if got, _ := s2.ownerAt(10); got != 1 {
		t.Error("empty insert should not change ownership")
	}
}

func TestModelStrings(t *testing.T) {
	if GFW.String() != "GFW" || Zeek.String() != "Zeek" || Snort.String() != "Snort" {
		t.Error("model names wrong")
	}
	if Model(99).String() != "unknown" {
		t.Error("unknown model should stringify to unknown")
	}
	if len(Models()) != 3 {
		t.Error("Models() should list all three middleboxes")
	}
}
