package engine

import (
	"math/rand"
	"sync"
	"testing"

	"clap/internal/attacks"
	"clap/internal/backend"
	"clap/internal/core"
	"clap/internal/flow"
	"clap/internal/trafficgen"
)

// genConns builds a deterministic benign corpus.
func genConns(n int, seed int64) []*flow.Connection {
	cfg := trafficgen.DefaultConfig(n)
	cfg.Seed = seed
	return trafficgen.Generate(cfg)
}

// mixedCorpus returns benign connections with a few evasion strategies
// injected — the determinism tests' workload.
func mixedCorpus(t *testing.T, n int, seed int64) []*flow.Connection {
	t.Helper()
	conns := genConns(n, seed)
	rng := rand.New(rand.NewSource(seed))
	applied := 0
	for i, name := range []string{
		"GFW: Injected RST Bad TCP-Checksum/MD5-Option",
		"Snort: Injected RST Pure",
		"Bad TCP Checksum (Min)",
	} {
		st, ok := attacks.ByName(name)
		if !ok {
			t.Fatalf("unknown strategy %q", name)
		}
		for j := i * 3; j < len(conns); j++ {
			if st.Apply(conns[j], rng) {
				conns[j].AttackName = name
				applied++
				break
			}
		}
	}
	if applied == 0 {
		t.Fatal("no attack strategies applied to corpus")
	}
	return conns
}

var (
	detOnce sync.Once
	detDet  *core.Detector
	detErr  error
)

// tinyDetector trains one shared tiny-profile detector for all tests.
func tinyDetector(t *testing.T) *core.Detector {
	t.Helper()
	detOnce.Do(func() {
		detDet, detErr = core.Train(genConns(30, 1), core.TinyConfig(), nil)
	})
	if detErr != nil {
		t.Fatalf("training tiny detector: %v", detErr)
	}
	return detDet
}

// sameScore asserts bit-identity of two Score values.
func sameScore(t *testing.T, label string, i int, got, want core.Score) {
	t.Helper()
	if got.Adversarial != want.Adversarial {
		t.Fatalf("%s: conn %d adversarial score %v != serial %v", label, i, got.Adversarial, want.Adversarial)
	}
	if got.PeakWindow != want.PeakWindow {
		t.Fatalf("%s: conn %d peak window %d != serial %d", label, i, got.PeakWindow, want.PeakWindow)
	}
	if len(got.Errors) != len(want.Errors) {
		t.Fatalf("%s: conn %d has %d window errors, serial %d", label, i, len(got.Errors), len(want.Errors))
	}
	for w := range got.Errors {
		if got.Errors[w] != want.Errors[w] {
			t.Fatalf("%s: conn %d window %d error %v != serial %v", label, i, w, got.Errors[w], want.Errors[w])
		}
	}
}

// TestScoreAllDeterminism is the tentpole contract: engine scores over a
// mixed benign/adversarial corpus are bit-identical to the serial path, in
// the same order, at 1, 4 and 8 workers.
func TestScoreAllDeterminism(t *testing.T) {
	det := tinyDetector(t)
	conns := mixedCorpus(t, 24, 7)

	want := make([]core.Score, len(conns))
	for i, c := range conns {
		want[i] = det.Score(c)
	}

	for _, workers := range []int{1, 4, 8} {
		eng := New(Options{Workers: workers})
		got := eng.ScoreAll(det, conns)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d scores for %d connections", workers, len(got), len(conns))
		}
		for i := range got {
			sameScore(t, "ScoreAll", i, got[i], want[i])
		}
		adv := eng.AdversarialScores(det, conns)
		for i := range adv {
			if adv[i] != want[i].Adversarial {
				t.Fatalf("workers=%d: AdversarialScores[%d] = %v, want %v", workers, i, adv[i], want[i].Adversarial)
			}
		}
		errs := eng.WindowErrorsAll(det, conns)
		for i := range errs {
			if len(errs[i]) != len(want[i].Errors) {
				t.Fatalf("workers=%d: WindowErrorsAll[%d] length mismatch", workers, i)
			}
			for w := range errs[i] {
				if errs[i][w] != want[i].Errors[w] {
					t.Fatalf("workers=%d: WindowErrorsAll[%d][%d] = %v, want %v", workers, i, w, errs[i][w], want[i].Errors[w])
				}
			}
		}
	}
}

// TestRNNAccuracyMatchesSerial checks the parallel stage-(a) evaluation
// against Detector.RNNAccuracy.
func TestRNNAccuracyMatchesSerial(t *testing.T) {
	det := tinyDetector(t)
	conns := genConns(16, 9)
	wantH, wantT := det.RNNAccuracy(conns)
	for _, workers := range []int{1, 4} {
		eng := New(Options{Workers: workers})
		gotH, gotT := eng.RNNAccuracy(det, conns)
		if gotH != wantH || gotT != wantT {
			t.Fatalf("workers=%d: RNNAccuracy (%v,%v) != serial (%v,%v)", workers, gotH, gotT, wantH, wantT)
		}
	}
}

// TestAssembleMatchesSerial: sharded assembly must reproduce
// flow.Assemble's output exactly — same connections, same packet pointers,
// same capture order — at several shard counts.
func TestAssembleMatchesSerial(t *testing.T) {
	conns := genConns(80, 3)
	pkts := flow.Flatten(conns)
	want := flow.Assemble(pkts)

	for _, shards := range []int{1, 2, 4, 8} {
		eng := New(Options{Workers: 4, Shards: shards})
		got := eng.Assemble(pkts)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d connections, serial %d", shards, len(got), len(want))
		}
		for i := range got {
			if got[i].Key != want[i].Key {
				t.Fatalf("shards=%d: conn %d key %v, serial %v", shards, i, got[i].Key, want[i].Key)
			}
			if got[i].Len() != want[i].Len() {
				t.Fatalf("shards=%d: conn %d has %d packets, serial %d", shards, i, got[i].Len(), want[i].Len())
			}
			for p := range got[i].Packets {
				if got[i].Packets[p] != want[i].Packets[p] {
					t.Fatalf("shards=%d: conn %d packet %d differs from serial", shards, i, p)
				}
				if got[i].Dirs[p] != want[i].Dirs[p] {
					t.Fatalf("shards=%d: conn %d dir %d differs from serial", shards, i, p)
				}
			}
		}
	}
}

// TestConcurrentScoreSharedDetector overlaps Score calls from many
// goroutines on one shared trained detector — the -race regression test for
// the nn/core scratch-state audit.
func TestConcurrentScoreSharedDetector(t *testing.T) {
	det := tinyDetector(t)
	conns := mixedCorpus(t, 12, 21)
	want := make([]core.Score, len(conns))
	for i, c := range conns {
		want[i] = det.Score(c)
	}

	var wg sync.WaitGroup
	fail := make(chan string, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks the corpus from a different offset so
			// identical connections are being scored at overlapping times.
			for k := 0; k < len(conns); k++ {
				i := (g + k) % len(conns)
				s := det.Score(conns[i])
				if s.Adversarial != want[i].Adversarial || s.PeakWindow != want[i].PeakWindow {
					fail <- "concurrent Score diverged from serial result"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
}

// TestParallelForCoversAll checks the scheduling primitive itself.
func TestParallelForCoversAll(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		eng := New(Options{Workers: workers})
		const n = 1000
		hits := make([]int32, n)
		var mu sync.Mutex
		total := 0
		eng.ParallelFor(n, func(i int) {
			mu.Lock()
			hits[i]++
			total++
			mu.Unlock()
		})
		if total != n {
			t.Fatalf("workers=%d: %d calls for %d items", workers, total, n)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestEngineDefaults(t *testing.T) {
	e := New(Options{})
	if e.Workers() < 1 || e.Shards() < 1 {
		t.Fatalf("default engine has %d workers / %d shards", e.Workers(), e.Shards())
	}
	if e2 := New(Options{Workers: 3}); e2.Shards() != 3 {
		t.Fatalf("shards should mirror workers, got %d", e2.Shards())
	}
}

// TestScoreBackendMatchesSerial pins the backend-agnostic scoring wrapper:
// engine scores through any Backend are bit-identical to the serial
// ScoreConn path, in input order, at several worker counts.
func TestScoreBackendMatchesSerial(t *testing.T) {
	det := tinyDetector(t)
	b := backend.FromDetector(det)
	conns := mixedCorpus(t, 18, 9)

	want := make([]float64, len(conns))
	wantErrs := make([][]float64, len(conns))
	for i, c := range conns {
		want[i] = b.ScoreConn(c)
		wantErrs[i] = b.WindowErrors(c)
	}
	for _, workers := range []int{1, 4, 8} {
		eng := New(Options{Workers: workers})
		got := eng.ScoreBackend(b, conns)
		gotErrs := eng.WindowErrorsBackend(b, conns)
		for i := range conns {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: conn %d score %v != serial %v", workers, i, got[i], want[i])
			}
			if len(gotErrs[i]) != len(wantErrs[i]) {
				t.Fatalf("workers=%d: conn %d has %d errors, serial %d", workers, i, len(gotErrs[i]), len(wantErrs[i]))
			}
			for w := range gotErrs[i] {
				if gotErrs[i][w] != wantErrs[i][w] {
					t.Fatalf("workers=%d: conn %d window %d diverged", workers, i, w)
				}
			}
		}
	}
}
