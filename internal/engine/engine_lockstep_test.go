package engine

// Determinism tests for the cross-connection lockstep path: with any
// lockstep width, window production through the ragged fleet scheduler
// must be bit-identical to the per-connection serial path at every
// worker × batch × lockstep combination — including degenerate corpora
// (zero-window and one-window connections, one-connection groups) whose
// retire/refill/compact churn is maximal.

import (
	"math/rand"
	"sort"
	"testing"

	"clap/internal/backend"
	"clap/internal/core"
	"clap/internal/flow"
)

// raggedCorpus builds a corpus whose window-sequence lengths are
// deliberately heterogeneous: the mixed benign/attack set plus
// single-packet truncations — one-step rows that retire on the fleet's
// very first step — shuffled deterministically so the short rows land
// between long ones. (Zero-window connections cannot exist at this layer:
// feature extraction requires at least one packet; the nn-level ragged
// test covers length-0 sequences.)
func raggedCorpus(t *testing.T, n int, seed int64) []*flow.Connection {
	t.Helper()
	conns := mixedCorpus(t, n, seed)
	for i := 0; i < 4 && i < n; i++ {
		src := conns[i]
		conns = append(conns, &flow.Connection{
			Key:     src.Key,
			Packets: src.Packets[:1],
			Dirs:    src.Dirs[:1],
		})
	}
	rng := rand.New(rand.NewSource(seed + 7))
	rng.Shuffle(len(conns), func(i, j int) { conns[i], conns[j] = conns[j], conns[i] })
	return conns
}

func assertSeriesEqual(t *testing.T, label string, got, want [][]float64) {
	t.Helper()
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: conn %d has %d errors, serial %d", label, i, len(got[i]), len(want[i]))
		}
		for w := range want[i] {
			if got[i][w] != want[i][w] {
				t.Fatalf("%s: conn %d window %d error %v != serial %v",
					label, i, w, got[i][w], want[i][w])
			}
		}
	}
}

func TestLockstepBatchedBitIdentity(t *testing.T) {
	det := tinyDetector(t)
	b := backend.FromDetector(det)
	conns := raggedCorpus(t, 50, 13)

	want := make([][]float64, len(conns))
	wantScore := make([]float64, len(conns))
	for i, c := range conns {
		want[i] = b.WindowErrors(c)
		wantScore[i] = b.ScoreConn(c)
	}

	for _, workers := range []int{1, 4} {
		for _, lockstep := range []int{1, 4, 24} {
			for _, batch := range []int{3, 24} {
				eng := New(Options{Workers: workers, Batch: batch, Lockstep: lockstep})
				got := eng.WindowErrorsBatched(b, conns)
				label := "workers=" + itoa(workers) + " lockstep=" + itoa(lockstep) + " batch=" + itoa(batch)
				assertSeriesEqual(t, label, got, want)
				gotScore := eng.ScoresBatched(b, conns)
				for i := range conns {
					if gotScore[i] != wantScore[i] {
						t.Fatalf("%s: conn %d score %v != serial %v", label, i, gotScore[i], wantScore[i])
					}
				}
				if fill := eng.LockstepFill(); fill <= 0 || fill > 1 {
					t.Fatalf("%s: lockstep fill %v outside (0, 1]", label, fill)
				}
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestLockstepOneConnectionGroup: a fleet wider than the queue shrinks to
// the queue; results match the serial path even when most slots never load.
func TestLockstepOneConnectionGroup(t *testing.T) {
	det := tinyDetector(t)
	b := backend.FromDetector(det)
	conns := mixedCorpus(t, 5, 3)[:1]
	want := b.WindowErrors(conns[0])
	eng := New(Options{Workers: 4, Batch: 8, Lockstep: 24})
	got := eng.WindowErrorsBatched(b, conns)
	assertSeriesEqual(t, "single-conn group", got, [][]float64{want})
}

// TestLockstepGateFreeFallsBack: a gate-free model (Baseline #1's config)
// exposes LockstepScorer but declines every session; the engine must fall
// back to per-connection window production and still match the serial
// path bit for bit.
func TestLockstepGateFreeFallsBack(t *testing.T) {
	b := gateFreeBackend(t)
	if s := b.OpenLockstep(4); s != nil {
		t.Fatal("gate-free backend opened a lockstep session")
	}
	conns := mixedCorpus(t, 12, 5)
	want := make([][]float64, len(conns))
	for i, c := range conns {
		want[i] = b.WindowErrors(c)
	}
	eng := New(Options{Workers: 2, Batch: 8, Lockstep: 6})
	got := eng.WindowErrorsBatched(b, conns)
	assertSeriesEqual(t, "gate-free fallback", got, want)
	if fill := eng.LockstepFill(); fill != 0 {
		t.Fatalf("gate-free fallback recorded lockstep fill %v", fill)
	}
}

// TestLockstepHiddenCapabilityFallsBack: a backend without LockstepScorer
// (capability shadowed) keeps the plain micro-batched path even with a
// lockstep width configured.
func TestLockstepHiddenCapabilityFallsBack(t *testing.T) {
	det := tinyDetector(t)
	b := noLockstep{backend.FromDetector(det)}
	conns := mixedCorpus(t, 12, 5)
	want := make([][]float64, len(conns))
	for i, c := range conns {
		want[i] = b.WindowErrors(c)
	}
	eng := New(Options{Workers: 2, Batch: 8, Lockstep: 6})
	got := eng.WindowErrorsBatched(b, conns)
	assertSeriesEqual(t, "hidden-capability fallback", got, want)
	if fill := eng.LockstepFill(); fill != 0 {
		t.Fatalf("hidden-capability fallback recorded lockstep fill %v", fill)
	}
}

// noLockstep embeds the CLAP backend but shadows OpenLockstep with an
// incompatible method, hiding the LockstepScorer capability while keeping
// BatchScorer.
type noLockstep struct{ *backend.CLAP }

func (noLockstep) OpenLockstep() {}

var (
	gateFreeB1  *backend.CLAP
	gateFreeErr error
)

// gateFreeBackend trains one shared tiny gate-free (Baseline #1 style)
// backend: no gate features, no stacking — no recurrence on the scoring
// path, so OpenLockstep declines.
func gateFreeBackend(t *testing.T) *backend.CLAP {
	t.Helper()
	if gateFreeB1 == nil && gateFreeErr == nil {
		nb, err := backend.New(backend.TagBaseline1)
		if err == nil {
			b1 := nb.(*backend.CLAP)
			cfg := core.TinyConfig()
			cfg.UseUpdateGates, cfg.UseResetGates = false, false
			cfg.StackLength = 1
			b1.Cfg = cfg
			err = b1.Train(genConns(30, 1), nil)
			gateFreeB1 = b1
		}
		gateFreeErr = err
	}
	if gateFreeErr != nil {
		t.Fatalf("training gate-free backend: %v", gateFreeErr)
	}
	return gateFreeB1
}

// TestLockstepCascadeGroupPath pins the composite route: with lockstep
// enabled the cascade scores whole groups through WindowErrorsGroup —
// stage 1 screening, stage 2 re-scoring only the escalated tail — and
// both the per-connection series and the escalation counters must match
// the per-connection routed path exactly.
func TestLockstepCascadeGroupPath(t *testing.T) {
	s2 := backend.FromDetector(tinyDetector(t))
	s1 := gateFreeBackend(t)
	casc, err := backend.NewCascade(s1, s2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	conns := raggedCorpus(t, 40, 17)

	// Escalate roughly half the corpus: pin the escalation threshold to
	// the median stage-1 score so both branches of the routing run.
	s1Scores := make([]float64, 0, len(conns))
	for _, c := range conns {
		s1Scores = append(s1Scores, s1.ScoreConn(c))
	}
	sorted := append([]float64(nil), s1Scores...)
	sort.Float64s(sorted)
	if err := casc.SetEscalation(sorted[len(sorted)/2]); err != nil {
		t.Fatal(err)
	}

	want := make([][]float64, len(conns))
	for i, c := range conns {
		want[i] = casc.WindowErrors(c)
	}
	wantEval, wantEsc := casc.EscalationCounts()
	if wantEsc == 0 || wantEsc == wantEval {
		t.Fatalf("degenerate routing: %d/%d escalated", wantEsc, wantEval)
	}

	for _, workers := range []int{1, 4} {
		casc.ResetEscalationCounts()
		eng := New(Options{Workers: workers, Batch: 8, Lockstep: 6})
		got := eng.WindowErrorsBatched(casc, conns)
		assertSeriesEqual(t, "cascade group workers="+itoa(workers), got, want)
		gotEval, gotEsc := casc.EscalationCounts()
		if gotEval != wantEval || gotEsc != wantEsc {
			t.Fatalf("workers=%d: group path counted %d/%d, routed path %d/%d",
				workers, gotEsc, gotEval, wantEsc, wantEval)
		}
	}

	// Scores through the grouped path match the per-connection scores.
	eng := New(Options{Workers: 2, Batch: 8, Lockstep: 6})
	gotScores := eng.ScoresBatched(casc, conns)
	for i, c := range conns {
		if w := casc.ScoreConn(c); gotScores[i] != w {
			t.Fatalf("conn %d: grouped cascade score %v != serial %v", i, gotScores[i], w)
		}
	}
}

func TestEngineLockstepDefaults(t *testing.T) {
	if got := New(Options{}).Lockstep(); got != 0 {
		t.Fatalf("default lockstep %d, want 0 (off)", got)
	}
	if got := New(Options{Lockstep: -3}).Lockstep(); got != 0 {
		t.Fatalf("negative lockstep became %d, want 0", got)
	}
	if got := New(Options{Lockstep: 6}).Lockstep(); got != 6 {
		t.Fatalf("explicit lockstep 6 became %d", got)
	}
	if DefaultLockstep != DefaultBatch {
		t.Fatalf("DefaultLockstep %d should match DefaultBatch %d so a full fleet feeds full batches",
			DefaultLockstep, DefaultBatch)
	}
}
