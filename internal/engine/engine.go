// Package engine is CLAP's sharded, worker-pool scoring engine. Every
// stage-(d) quantity — adversarial scores, window errors, localization,
// RNN accuracy — is independent across connections, so the engine fans
// connections out to a configurable worker pool and merges results
// deterministically: output slot i always holds connection i's result, and
// because the inference paths in internal/nn and internal/core are
// scratch-free (audited; regression-tested under -race), the numbers are
// bit-identical to the serial path at any worker count.
//
// The engine also parallelizes flow assembly: packets are partitioned into
// shards by an FNV-1a hash of the direction-insensitive connection 4-tuple,
// each shard is assembled independently, and the shard outputs are merged
// back into exact capture order (the order flow.Assemble would have
// produced serially).
//
// For backends exposing the backend.BatchScorer capability the engine also
// batches inference itself: WindowErrorsBatched pools the stacked windows
// of many queued connections into micro-batches (Options.Batch windows per
// batch) so the autoencoder runs one matrix-matrix pass per batch instead
// of one matrix-vector pass per window — same bits, a fraction of the
// wall clock.
//
// For backends that additionally expose backend.LockstepScorer the engine
// batches the other axis too: window *production* runs a recurrence, and
// with Options.Lockstep > 0 a ragged fleet scheduler steps up to Lockstep
// connections' recurrences together — one matrix-matrix pass per gate per
// step instead of one matrix-vector pass per connection per step. Rows
// retire as their sequences end, vacant rows refill from the queued group,
// and the active prefix compacts without ever reordering a row's own step
// sequence, so every row's windows stay bit-identical to the serial path.
// Composite backends (backend.GroupScorer) route whole groups through
// their internal stages with the same kernels.
//
// The zero-config entry point is Default(); New lets callers pin worker,
// shard, micro-batch and lockstep counts. An Engine holds no per-call
// state — only monotonic occupancy counters (LockstepFill) — and is safe
// for concurrent use.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"clap/internal/backend"
	"clap/internal/core"
	"clap/internal/flow"
	"clap/internal/packet"
	"clap/internal/tcpstate"
)

// DefaultBatch is the micro-batch size batched scoring defaults to —
// tuned by BenchmarkBackendThroughput: the pkts/s curve is flat from ~6
// windows up, so the knob mostly trades cache residency against batch
// fill. 24 keeps one batch's activations L2-resident, is a multiple of
// the kernel's 6-lane block (so no window rides the slower tail lanes),
// and still fills well from a single average connection in stream mode.
const DefaultBatch = 24

// minChunk is the smallest per-worker share of a ParallelFor that pays
// for its goroutine: below it, handing items across the pool costs more
// than scoring them in place (BENCH_pr3.json: clap at workers=8 was
// *slower* than serial on a 1-CPU box), so the engine shrinks the pool to
// keep at least minChunk items per worker and falls back to the serial
// loop when even two workers cannot be fed. Two is deliberately gentle:
// per-connection items are coarse (milliseconds each), so a small capture
// of heavy flows on a real multi-core box keeps most of its fan-out —
// only runs of two or three connections drop to the serial loop.
const minChunk = 2

// Options configures an Engine.
type Options struct {
	// Workers is the scoring goroutine count; <= 0 selects GOMAXPROCS.
	Workers int
	// Shards is the assembly shard count; <= 0 mirrors Workers.
	Shards int
	// Batch is the micro-batch size for backends implementing
	// backend.BatchScorer: how many windows ride one batched inference
	// pass. <= 0 selects DefaultBatch; 1 disables batching.
	Batch int
	// Lockstep is the cross-connection GRU batching width for backends
	// implementing backend.LockstepScorer: how many connections' gate
	// recurrences step together through one matrix-matrix pass per gate.
	// 0 (the default) disables lockstep — the per-connection window
	// production path runs exactly as before, byte for byte. Widths that
	// are multiples of the MulMat kernel's 6-lane block (e.g.
	// DefaultLockstep) keep every fleet row off the slower tail lanes.
	Lockstep int
}

// DefaultLockstep is the lockstep width the CLIs default to when the
// feature is switched on without an explicit width: equal to
// DefaultBatch, so a full fleet feeds full micro-batches, and a multiple
// of the 6-lane MulMat block (see BENCH_pr9.json's sweep — throughput is
// flat from ~6 rows up once the recurrent projections batch, so the knob
// mostly trades fleet memory against fill).
const DefaultLockstep = 24

// Engine schedules per-connection work across a worker pool.
type Engine struct {
	workers  int
	shards   int
	batch    int
	lockstep int

	// Lockstep occupancy counters (LockstepFill): rows actually stepped
	// vs. fleet slots available over the same steps. The engine is
	// otherwise stateless; these are monotonic stats, safe concurrently.
	lsRows  atomic.Uint64
	lsSlots atomic.Uint64
}

// New builds an engine from options.
func New(o Options) *Engine {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	s := o.Shards
	if s <= 0 {
		s = w
	}
	b := o.Batch
	if b <= 0 {
		b = DefaultBatch
	}
	ls := o.Lockstep
	if ls < 0 {
		ls = 0
	}
	return &Engine{workers: w, shards: s, batch: b, lockstep: ls}
}

// Default returns an engine sized to the machine.
func Default() *Engine { return New(Options{}) }

// Workers reports the configured worker count.
func (e *Engine) Workers() int { return e.workers }

// Shards reports the configured assembly shard count.
func (e *Engine) Shards() int { return e.shards }

// Batch reports the configured micro-batch size (1: batching disabled).
func (e *Engine) Batch() int { return e.batch }

// Lockstep reports the configured cross-connection lockstep width
// (0: disabled).
func (e *Engine) Lockstep() int { return e.lockstep }

// LockstepFill reports fleet occupancy since the engine was built: of the
// fleet slots available across every lockstep step taken, the fraction
// that held a live connection row. The ragged scheduler compacts the
// active prefix so idle slots cost no arithmetic — fill below 1.0 means
// groups drained toward their stragglers (smaller -lockstep or larger
// groups raise it), not that compute was wasted on padding. Returns 0
// before any lockstep work has run.
func (e *Engine) LockstepFill() float64 {
	slots := e.lsSlots.Load()
	if slots == 0 {
		return 0
	}
	return float64(e.lsRows.Load()) / float64(slots)
}

// ParallelFor runs fn(i) for every i in [0, n) across the worker pool. Work
// is handed out through an atomic cursor, so callers writing fn results
// into slot i of a pre-sized slice get deterministic output regardless of
// scheduling. fn must be safe to call concurrently.
//
// Small inputs do not fan out: the pool is shrunk so every worker gets at
// least minChunk items, dropping to the plain serial loop when even two
// workers cannot be fed — an explicit -workers flag never pessimizes a
// small run. Results are identical either way; only scheduling changes.
func (e *Engine) ParallelFor(n int, fn func(i int)) {
	e.parallelFor(n, minChunk, fn)
}

// parallelForWide is ParallelFor without the small-n serial fallback, for
// coarse-grained items (assembly shards, micro-batches) where one item is
// itself a large unit of work worth its own goroutine.
func (e *Engine) parallelForWide(n int, fn func(i int)) {
	e.parallelFor(n, 1, fn)
}

func (e *Engine) parallelFor(n, minPer int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := e.workers
	if w > n/minPer {
		w = n / minPer
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ScoreAll scores every connection with the detector, preserving input
// order. Scores are bit-identical to calling det.Score serially.
func (e *Engine) ScoreAll(det *core.Detector, conns []*flow.Connection) []core.Score {
	out := make([]core.Score, len(conns))
	e.ParallelFor(len(conns), func(i int) { out[i] = det.Score(conns[i]) })
	return out
}

// AdversarialScores returns only the scalar adversarial score per
// connection, in input order.
func (e *Engine) AdversarialScores(det *core.Detector, conns []*flow.Connection) []float64 {
	out := make([]float64, len(conns))
	e.ParallelFor(len(conns), func(i int) { out[i] = det.Score(conns[i]).Adversarial })
	return out
}

// MapFloat evaluates an arbitrary per-connection scalar (e.g. a baseline
// detector's score function) across the pool, in input order. score must be
// safe for concurrent calls.
func (e *Engine) MapFloat(conns []*flow.Connection, score func(*flow.Connection) float64) []float64 {
	out := make([]float64, len(conns))
	e.ParallelFor(len(conns), func(i int) { out[i] = score(conns[i]) })
	return out
}

// WindowErrorsAll computes per-window reconstruction errors for every
// connection, in input order.
func (e *Engine) WindowErrorsAll(det *core.Detector, conns []*flow.Connection) [][]float64 {
	out := make([][]float64, len(conns))
	e.ParallelFor(len(conns), func(i int) { out[i] = det.WindowErrors(conns[i]) })
	return out
}

// ScoreBackend scores every connection with an arbitrary detection backend
// across the pool, in input order — the backend-agnostic counterpart of
// AdversarialScores. The backend must be trained (its scoring path is
// required to be concurrency-safe by the Backend contract).
func (e *Engine) ScoreBackend(b backend.Backend, conns []*flow.Connection) []float64 {
	return e.MapFloat(conns, b.ScoreConn)
}

// WindowErrorsBackend computes each connection's per-window anomaly series
// with an arbitrary backend, in input order. One series plus the backend's
// Summarize is a full scoring pass without re-running inference.
func (e *Engine) WindowErrorsBackend(b backend.Backend, conns []*flow.Connection) [][]float64 {
	out := make([][]float64, len(conns))
	e.ParallelFor(len(conns), func(i int) { out[i] = b.WindowErrors(conns[i]) })
	return out
}

// batchGroup is how many connections one micro-batching group holds: the
// group's windows are materialized together, so the group bounds resident
// memory while staying large enough to fill many batches per barrier.
func (e *Engine) batchGroup() int {
	g := 8 * e.workers
	if g < 64 {
		g = 64
	}
	return g
}

// WindowErrorsBatched computes every connection's per-window anomaly
// series like WindowErrorsBackend, but — when the backend implements
// backend.BatchScorer and the engine's batch size is > 1 — amortized:
// window production (stage (b)) fans out per connection, the produced
// windows are pooled ACROSS connections into micro-batches of the
// engine's batch size, and each batch runs as one matrix-matrix inference
// pass on the pool. Connections are processed in bounded groups so a huge
// capture never holds every window resident at once.
//
// Results are slot-indexed and bit-identical to the unbatched serial path
// at any worker, shard, batch or lockstep size: batch boundaries only
// split the window list, lockstep only reorders *which connection* steps
// when (never a connection's own step order), and the BatchScorer /
// LockstepScorer contracts pin every split to the same bits. Backends
// without the capabilities fall back to WindowErrorsBackend; composite
// backends implementing backend.GroupScorer route whole groups through
// their internal stages when lockstep is enabled.
func (e *Engine) WindowErrorsBatched(b backend.Backend, conns []*flow.Connection) [][]float64 {
	if gs, ok := b.(backend.GroupScorer); ok && e.lockstep > 0 && e.batch > 1 {
		return e.windowErrorsGrouped(gs, conns)
	}
	bs, ok := b.(backend.BatchScorer)
	if !ok || e.batch <= 1 {
		return e.WindowErrorsBackend(b, conns)
	}
	out := make([][]float64, len(conns))
	group := e.batchGroup()
	for lo := 0; lo < len(conns); lo += group {
		hi := lo + group
		if hi > len(conns) {
			hi = len(conns)
		}
		e.windowErrorsGroup(bs, conns[lo:hi], out[lo:hi])
	}
	return out
}

// windowErrorsGroup scores one bounded group of connections through the
// micro-batched path.
func (e *Engine) windowErrorsGroup(bs backend.BatchScorer, conns []*flow.Connection, out [][]float64) {
	wins := make([][][]float64, len(conns))
	e.produceWindows(bs, conns, wins)
	e.scoreWindowSets(bs, wins, out, true)
}

// scoreWindowSets flattens produced window sets, runs the pooled
// micro-batch inference pass (fanned out across the pool when fanOut is
// set, serially on the calling goroutine otherwise), carves each
// connection's series from one flat error buffer, and hands pooled window
// buffers back to the backend.
func (e *Engine) scoreWindowSets(bs backend.BatchScorer, wins [][][]float64, out [][]float64, fanOut bool) {
	total := 0
	for _, w := range wins {
		total += len(w)
	}
	flat := make([][]float64, 0, total)
	for _, w := range wins {
		flat = append(flat, w...)
	}
	errsFlat := make([]float64, total)
	nb := (total + e.batch - 1) / e.batch
	score := func(k int) {
		blo := k * e.batch
		bhi := blo + e.batch
		if bhi > total {
			bhi = total
		}
		copy(errsFlat[blo:bhi], bs.ScoreWindows(flat[blo:bhi]))
	}
	if fanOut {
		e.parallelForWide(nb, score)
	} else {
		for k := 0; k < nb; k++ {
			score(k)
		}
	}

	at := 0
	for i, w := range wins {
		out[i] = errsFlat[at : at+len(w) : at+len(w)]
		at += len(w)
	}
	// All scores are in; hand pooled window buffers back to the backend.
	if rec, ok := bs.(backend.BatchRecycler); ok {
		for _, w := range wins {
			rec.RecycleWindows(w)
		}
	}
}

// ScoresBatched returns the scalar adversarial score per connection like
// ScoreBackend, but through the micro-batched window path; the Backend
// contract pins Summarize(WindowErrors(c)) == ScoreConn(c) bit for bit,
// so scores are identical to the serial path at any batch size.
func (e *Engine) ScoresBatched(b backend.Backend, conns []*flow.Connection) []float64 {
	_, isBatch := b.(backend.BatchScorer)
	_, isGroup := b.(backend.GroupScorer)
	if (!isBatch && !(isGroup && e.lockstep > 0)) || e.batch <= 1 {
		return e.ScoreBackend(b, conns)
	}
	errsAll := e.WindowErrorsBatched(b, conns)
	out := make([]float64, len(conns))
	for i, errs := range errsAll {
		out[i], _ = b.Summarize(errs)
	}
	return out
}

// RNNAccuracy evaluates stage (a) across the pool: per-connection class
// hit/total counts are computed in parallel and summed in input order.
func (e *Engine) RNNAccuracy(det *core.Detector, conns []*flow.Connection) (hits, totals [tcpstate.NumClasses]int) {
	perHits := make([][tcpstate.NumClasses]int, len(conns))
	perTotals := make([][tcpstate.NumClasses]int, len(conns))
	e.ParallelFor(len(conns), func(i int) {
		perHits[i], perTotals[i] = det.RNNAccuracyConn(conns[i])
	})
	for i := range perHits {
		for c := 0; c < tcpstate.NumClasses; c++ {
			hits[c] += perHits[i][c]
			totals[c] += perTotals[i][c]
		}
	}
	return hits, totals
}

// FNV-1a, inlined so per-packet shard hashing does not allocate a hasher.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

type endpointKey struct {
	ip   [4]byte
	port uint16
}

func (a endpointKey) less(b endpointKey) bool {
	for i := 0; i < 4; i++ {
		if a.ip[i] != b.ip[i] {
			return a.ip[i] < b.ip[i]
		}
	}
	return a.port < b.port
}

// shardOf hashes a packet's 4-tuple into [0, shards). The two endpoints are
// canonically ordered first so both directions of a connection — and
// therefore every packet flow.Assemble would group together — land in the
// same shard.
func shardOf(p *packet.Packet, shards int) int {
	a := endpointKey{ip: p.IP.SrcIP, port: p.TCP.SrcPort}
	b := endpointKey{ip: p.IP.DstIP, port: p.TCP.DstPort}
	if b.less(a) {
		a, b = b, a
	}
	var buf [12]byte
	copy(buf[0:4], a.ip[:])
	buf[4] = byte(a.port >> 8)
	buf[5] = byte(a.port)
	copy(buf[6:10], b.ip[:])
	buf[10] = byte(b.port >> 8)
	buf[11] = byte(b.port)
	h := uint64(fnvOffset64)
	for _, c := range buf {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return int(h % uint64(shards))
}

// Assemble groups a capture-ordered packet stream into connections like
// flow.Assemble, but sharded: packets are partitioned by connection-key
// hash, shards assemble concurrently, and the merged output is restored to
// exact serial order (connections ordered by their first packet's capture
// position). The result is element-wise identical to flow.Assemble(pkts)
// because assembly state never crosses 4-tuples and a 4-tuple never crosses
// shards.
func (e *Engine) Assemble(pkts []*packet.Packet) []*flow.Connection {
	shards := e.shards
	if shards <= 1 || len(pkts) < 2*shards {
		return flow.Assemble(pkts)
	}
	parts := make([][]*packet.Packet, shards)
	for _, p := range pkts {
		s := shardOf(p, shards)
		parts[s] = append(parts[s], p)
	}
	assembled := make([][]*flow.Connection, shards)
	e.parallelForWide(shards, func(i int) { assembled[i] = flow.Assemble(parts[i]) })

	// Merge back to capture order without indexing every packet: map only
	// each connection's first packet (#connections entries, not #packets),
	// then walk the stream once, emitting connections as their first packet
	// appears. The slice value keeps the merge deterministic even in the
	// pathological case of one packet pointer opening connections in
	// several shards.
	nConns := 0
	for _, cs := range assembled {
		nConns += len(cs)
	}
	byFirst := make(map[*packet.Packet][]*flow.Connection, nConns)
	for _, cs := range assembled {
		for _, c := range cs {
			byFirst[c.Packets[0]] = append(byFirst[c.Packets[0]], c)
		}
	}
	out := make([]*flow.Connection, 0, nConns)
	for _, p := range pkts {
		if cs, ok := byFirst[p]; ok {
			out = append(out, cs...)
			delete(byFirst, p)
		}
	}
	return out
}
