package engine

import (
	"sync"

	"clap/internal/core"
	"clap/internal/flow"
)

// Stream is the engine's online-deployment mode (Figure 3): connections are
// submitted as they close, scored by the worker pool, and emitted strictly
// in submission order — so a live monitor behind a DPI keeps deterministic,
// replayable alert logs even though scoring runs concurrently.
type Stream struct {
	jobs    chan *streamJob
	pending chan *streamJob
	done    chan struct{}
	wg      sync.WaitGroup
}

type streamJob struct {
	c   *flow.Connection
	out chan core.Score
}

// NewStream starts a scoring stream. score runs on pool workers and must be
// safe for concurrent calls (a trained Detector's Score method is); emit is
// invoked on a single goroutine, one connection at a time, in submission
// order. Close the stream to drain and release the workers.
func (e *Engine) NewStream(score func(*flow.Connection) core.Score, emit func(*flow.Connection, core.Score)) *Stream {
	depth := 4 * e.workers
	s := &Stream{
		jobs:    make(chan *streamJob, depth),
		pending: make(chan *streamJob, depth),
		done:    make(chan struct{}),
	}
	s.wg.Add(e.workers)
	for w := 0; w < e.workers; w++ {
		go func() {
			defer s.wg.Done()
			for j := range s.jobs {
				j.out <- score(j.c)
			}
		}()
	}
	go func() {
		for j := range s.pending {
			emit(j.c, <-j.out)
		}
		close(s.done)
	}()
	return s
}

// Submit queues one connection for scoring. It blocks only when the
// in-flight window (4× workers) is full. Not safe for concurrent Submit
// calls from multiple goroutines; the submission order defines the emit
// order.
func (s *Stream) Submit(c *flow.Connection) {
	j := &streamJob{c: c, out: make(chan core.Score, 1)}
	s.pending <- j
	s.jobs <- j
}

// Close drains the stream: it waits until every submitted connection has
// been scored and emitted, then stops the workers. The stream cannot be
// reused afterwards.
func (s *Stream) Close() {
	close(s.jobs)
	close(s.pending)
	<-s.done
	s.wg.Wait()
}
