package engine

import (
	"sync"

	"clap/internal/core"
	"clap/internal/flow"
)

// StreamOf is the engine's online-deployment mode (Figure 3), generalized
// over the per-connection result type: connections are submitted as they
// close, scored by the worker pool, and emitted strictly in submission
// order — so a live monitor behind a DPI keeps deterministic, replayable
// alert logs even though scoring runs concurrently. T is whatever the
// score function produces: a core.Score for CLAP, a scalar for Kitsune, or
// a pipeline Result for the backend-agnostic facade.
type StreamOf[T any] struct {
	jobs    chan *streamJob[T]
	pending chan *streamJob[T]
	done    chan struct{}
	wg      sync.WaitGroup
}

type streamJob[T any] struct {
	c   *flow.Connection
	out chan T
}

// Stream is the CLAP-native stream, kept as the common case's name.
type Stream = StreamOf[core.Score]

// NewStreamOf starts a scoring stream producing results of type T. score
// runs on pool workers and must be safe for concurrent calls (any trained
// Backend's scoring methods are); emit is invoked on a single goroutine,
// one connection at a time, in submission order. Close the stream to drain
// and release the workers.
func NewStreamOf[T any](e *Engine, score func(*flow.Connection) T, emit func(*flow.Connection, T)) *StreamOf[T] {
	depth := 4 * e.workers
	s := &StreamOf[T]{
		jobs:    make(chan *streamJob[T], depth),
		pending: make(chan *streamJob[T], depth),
		done:    make(chan struct{}),
	}
	s.wg.Add(e.workers)
	for w := 0; w < e.workers; w++ {
		go func() {
			defer s.wg.Done()
			for j := range s.jobs {
				j.out <- score(j.c)
			}
		}()
	}
	go func() {
		for j := range s.pending {
			emit(j.c, <-j.out)
		}
		close(s.done)
	}()
	return s
}

// NewStream starts a CLAP-scored stream; see NewStreamOf for the contract.
func (e *Engine) NewStream(score func(*flow.Connection) core.Score, emit func(*flow.Connection, core.Score)) *Stream {
	return NewStreamOf(e, score, emit)
}

// Submit queues one connection for scoring. It blocks only when the
// in-flight window (4× workers) is full. Not safe for concurrent Submit
// calls from multiple goroutines; the submission order defines the emit
// order.
func (s *StreamOf[T]) Submit(c *flow.Connection) {
	j := &streamJob[T]{c: c, out: make(chan T, 1)}
	s.pending <- j
	s.jobs <- j
}

// Close drains the stream: it waits until every submitted connection has
// been scored and emitted, then stops the workers. The stream cannot be
// reused afterwards.
func (s *StreamOf[T]) Close() {
	close(s.jobs)
	close(s.pending)
	<-s.done
	s.wg.Wait()
}
