package engine

import (
	"sync"
	"time"

	"clap/internal/core"
	"clap/internal/flow"
)

// StreamOf is the engine's online-deployment mode (Figure 3), generalized
// over the per-connection result type: connections are submitted as they
// close, scored by the worker pool, and emitted strictly in submission
// order — so a live monitor behind a DPI keeps deterministic, replayable
// alert logs even though scoring runs concurrently. T is whatever the
// score function produces: a core.Score for CLAP, a scalar for Kitsune, or
// a pipeline Result for the backend-agnostic facade.
type StreamOf[T any] struct {
	jobs    chan *streamJob[T]
	pending chan *streamJob[T]
	done    chan struct{}
	wg      sync.WaitGroup
	hooks   StreamHooks

	// seq counts submissions. Submit is single-goroutine by contract and
	// the emitter reads each job's stamped copy, so a plain field works.
	seq uint64
}

type streamJob[T any] struct {
	c   *flow.Connection
	out chan T
	seq uint64
	// Stage timestamps, populated only when the stream has an Observe
	// hook so the unobserved hot path never touches the clock.
	submitted time.Time
	started   time.Time
	scored    time.Time
}

// Stream is the CLAP-native stream, kept as the common case's name.
type Stream = StreamOf[core.Score]

// StreamStats carries one connection's measured stage latencies through a
// stream: how long it waited for a worker, how long scoring took, and how
// long the finished result waited behind earlier submissions before the
// ordered emit — the per-stage numbers a serving layer turns into latency
// histograms.
type StreamStats struct {
	// Seq is the connection's submission sequence number (1-based) — the
	// global scoring order a provenance record carries, and the merge key
	// for cross-tenant trace views.
	Seq uint64
	// QueueWait is Submit → worker pickup.
	QueueWait time.Duration
	// Score is the scoring function's runtime.
	Score time.Duration
	// EmitWait is scoring completion → ordered emit (head-of-line wait).
	EmitWait time.Duration
}

// StreamHooks instruments a stream. All fields are optional.
type StreamHooks struct {
	// Observe is called once per connection, after its emit, on the
	// stream's single emitter goroutine (so implementations need no
	// locking against themselves).
	Observe func(*flow.Connection, StreamStats)
}

// NewStreamOf starts a scoring stream producing results of type T. score
// runs on pool workers and must be safe for concurrent calls (any trained
// Backend's scoring methods are); emit is invoked on a single goroutine,
// one connection at a time, in submission order. Close the stream to drain
// and release the workers.
func NewStreamOf[T any](e *Engine, score func(*flow.Connection) T, emit func(*flow.Connection, T)) *StreamOf[T] {
	return NewStreamOfHooked(e, score, emit, StreamHooks{})
}

// NewStreamOfHooked is NewStreamOf with per-stage latency instrumentation.
func NewStreamOfHooked[T any](e *Engine, score func(*flow.Connection) T, emit func(*flow.Connection, T), hooks StreamHooks) *StreamOf[T] {
	depth := 4 * e.workers
	s := &StreamOf[T]{
		jobs:    make(chan *streamJob[T], depth),
		pending: make(chan *streamJob[T], depth),
		done:    make(chan struct{}),
		hooks:   hooks,
	}
	observed := hooks.Observe != nil
	s.wg.Add(e.workers)
	for w := 0; w < e.workers; w++ {
		go func() {
			defer s.wg.Done()
			for j := range s.jobs {
				if observed {
					j.started = time.Now()
				}
				r := score(j.c)
				if observed {
					j.scored = time.Now()
				}
				j.out <- r
			}
		}()
	}
	go func() {
		for j := range s.pending {
			r := <-j.out
			// EmitWait is head-of-line wait only, measured before the
			// emit callback so a slow consumer does not inflate it.
			var emitAt time.Time
			if observed {
				emitAt = time.Now()
			}
			emit(j.c, r)
			if observed {
				hooks.Observe(j.c, StreamStats{
					Seq:       j.seq,
					QueueWait: j.started.Sub(j.submitted),
					Score:     j.scored.Sub(j.started),
					EmitWait:  emitAt.Sub(j.scored),
				})
			}
		}
		close(s.done)
	}()
	return s
}

// NewStreamOfGrouped starts a stream whose workers score connections in
// opportunistic groups instead of one at a time — the streaming entry to
// cross-connection batching. A worker takes one job, then drains up to
// width-1 more without blocking (whatever has already been submitted),
// and hands the whole group to scoreGroup, which must return exactly one
// result per connection, in the order given. Under load groups approach
// width, feeding the lockstep fleet and micro-batches; when traffic is
// sparse groups shrink to 1 and the stream behaves like NewStreamOf —
// grouping changes throughput, never results or emission order (the
// pending queue still emits strictly in submission order).
//
// The in-flight window grows to 2*width when that exceeds the usual
// 4*workers, so a single worker's group can actually fill.
func NewStreamOfGrouped[T any](e *Engine, width int, scoreGroup func([]*flow.Connection) []T, emit func(*flow.Connection, T), hooks StreamHooks) *StreamOf[T] {
	if width < 1 {
		width = 1
	}
	depth := 4 * e.workers
	if d := 2 * width; d > depth {
		depth = d
	}
	s := &StreamOf[T]{
		jobs:    make(chan *streamJob[T], depth),
		pending: make(chan *streamJob[T], depth),
		done:    make(chan struct{}),
		hooks:   hooks,
	}
	observed := hooks.Observe != nil
	s.wg.Add(e.workers)
	for w := 0; w < e.workers; w++ {
		go func() {
			defer s.wg.Done()
			group := make([]*streamJob[T], 0, width)
			conns := make([]*flow.Connection, 0, width)
			for j := range s.jobs {
				group = append(group[:0], j)
			drain:
				for len(group) < width {
					select {
					case j2, ok := <-s.jobs:
						if !ok {
							break drain // closed; outer range ends after this group
						}
						group = append(group, j2)
					default:
						break drain // queue momentarily empty; score what we have
					}
				}
				conns = conns[:0]
				for _, g := range group {
					conns = append(conns, g.c)
				}
				if observed {
					now := time.Now()
					for _, g := range group {
						g.started = now
					}
				}
				rs := scoreGroup(conns)
				if observed {
					now := time.Now()
					for _, g := range group {
						g.scored = now
					}
				}
				for i, g := range group {
					g.out <- rs[i]
				}
			}
		}()
	}
	go func() {
		for j := range s.pending {
			r := <-j.out
			var emitAt time.Time
			if observed {
				emitAt = time.Now()
			}
			emit(j.c, r)
			if observed {
				hooks.Observe(j.c, StreamStats{
					Seq:       j.seq,
					QueueWait: j.started.Sub(j.submitted),
					Score:     j.scored.Sub(j.started),
					EmitWait:  emitAt.Sub(j.scored),
				})
			}
		}
		close(s.done)
	}()
	return s
}

// NewStream starts a CLAP-scored stream; see NewStreamOf for the contract.
func (e *Engine) NewStream(score func(*flow.Connection) core.Score, emit func(*flow.Connection, core.Score)) *Stream {
	return NewStreamOf(e, score, emit)
}

// Submit queues one connection for scoring. It blocks only when the
// in-flight window (4× workers) is full. Not safe for concurrent Submit
// calls from multiple goroutines; the submission order defines the emit
// order.
func (s *StreamOf[T]) Submit(c *flow.Connection) {
	s.seq++
	j := &streamJob[T]{c: c, out: make(chan T, 1), seq: s.seq}
	if s.hooks.Observe != nil {
		j.submitted = time.Now()
	}
	s.pending <- j
	s.jobs <- j
}

// InFlight reports how many submitted connections have not yet been
// emitted — the stream's internal queue depth, surfaced to serving
// metrics. Safe to call concurrently with Submit and emit.
func (s *StreamOf[T]) InFlight() int { return len(s.pending) }

// Close drains the stream: it waits until every submitted connection has
// been scored and emitted, then stops the workers. The stream cannot be
// reused afterwards.
func (s *StreamOf[T]) Close() {
	close(s.jobs)
	close(s.pending)
	<-s.done
	s.wg.Wait()
}
