package engine

// Determinism tests for the micro-batched scoring path: batched window
// errors and scores must be bit-identical to the unbatched serial path at
// every worker × batch combination, including batch sizes that straddle
// connection boundaries and the group bound.

import (
	"testing"

	"clap/internal/backend"
)

func TestWindowErrorsBatchedBitIdentity(t *testing.T) {
	det := tinyDetector(t)
	b := backend.FromDetector(det)
	conns := mixedCorpus(t, 70, 13) // spans the 64-connection batch group

	wantErrs := make([][]float64, len(conns))
	wantScore := make([]float64, len(conns))
	for i, c := range conns {
		wantErrs[i] = b.WindowErrors(c)
		wantScore[i] = b.ScoreConn(c)
	}

	for _, workers := range []int{1, 4, 8} {
		for _, batch := range []int{1, 3, 8, 64, 1024} {
			eng := New(Options{Workers: workers, Batch: batch})
			gotErrs := eng.WindowErrorsBatched(b, conns)
			gotScore := eng.ScoresBatched(b, conns)
			for i := range conns {
				if gotScore[i] != wantScore[i] {
					t.Fatalf("workers=%d batch=%d: conn %d score %v != serial %v",
						workers, batch, i, gotScore[i], wantScore[i])
				}
				if len(gotErrs[i]) != len(wantErrs[i]) {
					t.Fatalf("workers=%d batch=%d: conn %d has %d errors, serial %d",
						workers, batch, i, len(gotErrs[i]), len(wantErrs[i]))
				}
				for w := range gotErrs[i] {
					if gotErrs[i][w] != wantErrs[i][w] {
						t.Fatalf("workers=%d batch=%d: conn %d window %d error %v != serial %v",
							workers, batch, i, w, gotErrs[i][w], wantErrs[i][w])
					}
				}
			}
		}
	}
}

// TestBatchedFallsBackWithoutCapability: a backend that does not implement
// BatchScorer must route through the unbatched path unchanged.
func TestBatchedFallsBackWithoutCapability(t *testing.T) {
	det := tinyDetector(t)
	b := noBatch{backend.FromDetector(det)}
	conns := mixedCorpus(t, 10, 5)
	eng := New(Options{Workers: 2, Batch: 64})
	got := eng.ScoresBatched(b, conns)
	errs := eng.WindowErrorsBatched(b, conns)
	for i, c := range conns {
		if want := b.ScoreConn(c); got[i] != want {
			t.Fatalf("conn %d: fallback score %v != serial %v", i, got[i], want)
		}
		want := b.WindowErrors(c)
		for w := range errs[i] {
			if errs[i][w] != want[w] {
				t.Fatalf("conn %d window %d: fallback error diverged", i, w)
			}
		}
	}
}

// noBatch embeds the CLAP backend but shadows Windows with an
// incompatible method, hiding the BatchScorer capability.
type noBatch struct{ *backend.CLAP }

func (noBatch) Windows() {}

func TestEngineBatchDefaults(t *testing.T) {
	if got := New(Options{}).Batch(); got != DefaultBatch {
		t.Fatalf("default batch %d, want %d", got, DefaultBatch)
	}
	if got := New(Options{Batch: 1}).Batch(); got != 1 {
		t.Fatalf("explicit batch 1 became %d", got)
	}
}

// TestParallelForSmallInputStaysSerial pins the small-input fallback: every
// index is still visited exactly once when n is far below workers*minChunk.
func TestParallelForSmallInputStaysSerial(t *testing.T) {
	eng := New(Options{Workers: 8})
	for _, n := range []int{1, 3, 7, 31} {
		hits := make([]int, n)
		eng.ParallelFor(n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}
