package engine

import (
	"testing"
	"time"

	"clap/internal/backend"
	"clap/internal/core"
	"clap/internal/flow"
)

// TestStreamOrderedEmission: results must be emitted strictly in
// submission order with scores identical to the serial path, even though
// scoring runs on a concurrent pool.
func TestStreamOrderedEmission(t *testing.T) {
	det := tinyDetector(t)
	conns := mixedCorpus(t, 20, 31)
	want := make([]core.Score, len(conns))
	for i, c := range conns {
		want[i] = det.Score(c)
	}

	for _, workers := range []int{1, 4, 8} {
		eng := New(Options{Workers: workers})
		var gotConns []*flow.Connection
		var gotScores []core.Score
		stream := eng.NewStream(det.Score, func(c *flow.Connection, s core.Score) {
			gotConns = append(gotConns, c)
			gotScores = append(gotScores, s)
		})
		for _, c := range conns {
			stream.Submit(c)
		}
		stream.Close()

		if len(gotConns) != len(conns) {
			t.Fatalf("workers=%d: emitted %d of %d connections", workers, len(gotConns), len(conns))
		}
		for i := range conns {
			if gotConns[i] != conns[i] {
				t.Fatalf("workers=%d: emission order broken at %d", workers, i)
			}
			sameScore(t, "Stream", i, gotScores[i], want[i])
		}
	}
}

// TestStreamBackpressure submits far more connections than the in-flight
// window; Submit must block rather than drop, and Close must drain
// everything.
func TestStreamBackpressure(t *testing.T) {
	det := tinyDetector(t)
	conns := genConns(10, 41)
	eng := New(Options{Workers: 2})
	emitted := 0
	stream := eng.NewStream(det.Score, func(*flow.Connection, core.Score) { emitted++ })
	const rounds = 30 // 300 submissions through an 8-deep window
	for r := 0; r < rounds; r++ {
		for _, c := range conns {
			stream.Submit(c)
		}
	}
	stream.Close()
	if want := rounds * len(conns); emitted != want {
		t.Fatalf("emitted %d, want %d", emitted, want)
	}
}

// TestStreamHooksObserveStages: the instrumented stream reports one
// StreamStats per connection, in emission order, with sane latencies —
// the feed for clap-serve's per-stage histograms.
func TestStreamHooksObserveStages(t *testing.T) {
	det := tinyDetector(t)
	conns := genConns(12, 17)
	eng := New(Options{Workers: 4})

	var emitted []*flow.Connection
	var observed []*flow.Connection
	var stats []StreamStats
	s := NewStreamOfHooked(eng,
		func(c *flow.Connection) float64 {
			// A measurable floor so Score latencies cannot round to zero.
			time.Sleep(200 * time.Microsecond)
			return det.Score(c).Adversarial
		},
		func(c *flow.Connection, _ float64) { emitted = append(emitted, c) },
		StreamHooks{Observe: func(c *flow.Connection, st StreamStats) {
			observed = append(observed, c)
			stats = append(stats, st)
		}})
	for _, c := range conns {
		s.Submit(c)
	}
	s.Close()

	if len(observed) != len(conns) || len(emitted) != len(conns) {
		t.Fatalf("observed %d / emitted %d of %d connections", len(observed), len(emitted), len(conns))
	}
	for i := range conns {
		if observed[i] != conns[i] {
			t.Fatalf("observation order broken at %d", i)
		}
		st := stats[i]
		if st.Score < 200*time.Microsecond {
			t.Errorf("conn %d: score latency %v below the sleep floor", i, st.Score)
		}
		if st.QueueWait < 0 || st.EmitWait < 0 {
			t.Errorf("conn %d: negative stage latency %+v", i, st)
		}
	}
}

// TestStreamUnhookedSkipsClock: without an Observe hook the stream leaves
// job timestamps untouched (the hot path stays clock-free).
func TestStreamUnhookedSkipsClock(t *testing.T) {
	det := tinyDetector(t)
	eng := New(Options{Workers: 2})
	s := eng.NewStream(det.Score, func(*flow.Connection, core.Score) {})
	for _, c := range genConns(4, 3) {
		s.Submit(c)
	}
	if s.InFlight() < 0 {
		t.Fatal("InFlight went negative")
	}
	s.Close()
	if got := s.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after Close, want 0", got)
	}
}

// TestStreamOfGenericResultType drives the generalized stream with a
// non-Score result type (a backend-style scalar verdict): emission must
// stay in submission order regardless of scoring concurrency.
func TestStreamOfGenericResultType(t *testing.T) {
	det := tinyDetector(t)
	b := backend.FromDetector(det)
	conns := genConns(20, 31)

	type verdict struct {
		key   string
		score float64
	}
	var emitted []verdict
	eng := New(Options{Workers: 4})
	s := NewStreamOf(eng, func(c *flow.Connection) verdict {
		return verdict{key: c.Key.String(), score: b.ScoreConn(c)}
	}, func(_ *flow.Connection, v verdict) {
		emitted = append(emitted, v)
	})
	for _, c := range conns {
		s.Submit(c)
	}
	s.Close()

	if len(emitted) != len(conns) {
		t.Fatalf("emitted %d results for %d submissions", len(emitted), len(conns))
	}
	for i, c := range conns {
		if emitted[i].key != c.Key.String() {
			t.Fatalf("slot %d emitted %s, want %s (order broken)", i, emitted[i].key, c.Key)
		}
		if want := b.ScoreConn(c); emitted[i].score != want {
			t.Fatalf("slot %d score %v != serial %v", i, emitted[i].score, want)
		}
	}
}
