package engine

import (
	"clap/internal/backend"
	"clap/internal/flow"
)

// This file is the ragged cross-connection scheduler: it drives a
// backend.LockstepSession over a queue of connections whose sequences have
// heterogeneous lengths. The fleet's active rows are kept compacted in the
// prefix [0, active); each round steps every active row once, then rows
// whose sequences just ended are harvested and either refilled from the
// queue or compacted away by moving the last active row down. A
// connection's own steps always run in order — only *which connections*
// share a step changes — which is exactly the freedom the LockstepSession
// bit-identity contract grants.

// runLockstep scores one contiguous queue of connections through a fresh
// lockstep session on the calling goroutine, storing each connection's
// produced windows in wins (left nil for connections that produce none).
// Returns false — with no work done — when the backend declines a session
// (no recurrence to batch); decline depends only on the trained model, so
// it is uniform across chunks of one run.
func (e *Engine) runLockstep(lk backend.LockstepScorer, conns []*flow.Connection, wins [][][]float64) bool {
	k := e.lockstep
	if k > len(conns) {
		k = len(conns)
	}
	if k < 1 {
		return false
	}
	sess := lk.OpenLockstep(k)
	if sess == nil {
		return false
	}
	rowConn := make([]int, k) // queue index bound to each fleet row
	rowLeft := make([]int, k) // steps remaining before the row's harvest
	next := 0
	load := func(row int) bool {
		for next < len(conns) {
			ci := next
			next++
			if t := sess.Load(row, conns[ci]); t > 0 {
				rowConn[row], rowLeft[row] = ci, t
				return true
			}
			// Zero-step connection: no windows, row still free.
		}
		return false
	}
	active := 0
	for active < k && load(active) {
		active++
	}
	var rows, slots uint64
	for active > 0 {
		sess.Step(active)
		rows += uint64(active)
		slots += uint64(k)
		for b := 0; b < active; b++ {
			rowLeft[b]--
		}
		for b := 0; b < active; {
			if rowLeft[b] > 0 {
				b++
				continue
			}
			wins[rowConn[b]] = sess.Windows(b)
			if load(b) {
				b++
				continue
			}
			active--
			if b < active {
				// Compact: the swapped-in row may itself be finished, so
				// do not advance past slot b before rechecking it.
				sess.Move(b, active)
				rowConn[b], rowLeft[b] = rowConn[active], rowLeft[active]
			}
		}
	}
	e.lsRows.Add(rows)
	e.lsSlots.Add(slots)
	return true
}

// produceWindows fills wins[i] with bs.Windows(conns[i]) for every i —
// through the cross-connection lockstep path when the backend supports it
// and the engine has a lockstep width, per connection across the pool
// otherwise. Either way the bits in wins are identical.
func (e *Engine) produceWindows(bs backend.BatchScorer, conns []*flow.Connection, wins [][][]float64) {
	if lk, ok := bs.(backend.LockstepScorer); ok && e.lockstep > 0 && len(conns) > 0 {
		if probe := lk.OpenLockstep(1); probe != nil {
			// Contiguous chunks, one fleet per worker; a chunk needs at
			// least a full fleet's worth of connections to be worth its
			// own session.
			nw := len(conns) / e.lockstep
			if nw > e.workers {
				nw = e.workers
			}
			if nw < 1 {
				nw = 1
			}
			e.parallelForWide(nw, func(j int) {
				lo := j * len(conns) / nw
				hi := (j + 1) * len(conns) / nw
				e.runLockstep(lk, conns[lo:hi], wins[lo:hi])
			})
			return
		}
	}
	e.ParallelFor(len(conns), func(i int) { wins[i] = bs.Windows(conns[i]) })
}

// stageSeriesGroup scores one uniform group of connections with one
// backend entirely on the calling goroutine: lockstep window production
// when the stage supports it, then serial micro-batches of the engine's
// batch size. It is the backend.StageSeriesFunc the engine hands to
// composite backends (GroupScorer), and the single-goroutine core of
// GroupSeries — callers provide the concurrency (one group per worker),
// so nesting another fan-out here would only oversubscribe the pool.
// Series are bit-identical to b.WindowErrors per connection.
func (e *Engine) stageSeriesGroup(b backend.Backend, conns []*flow.Connection) [][]float64 {
	out := make([][]float64, len(conns))
	bs, ok := b.(backend.BatchScorer)
	if !ok || e.batch <= 1 {
		for i, c := range conns {
			out[i] = b.WindowErrors(c)
		}
		return out
	}
	wins := make([][][]float64, len(conns))
	produced := false
	if lk, ok := bs.(backend.LockstepScorer); ok && e.lockstep > 0 {
		produced = e.runLockstep(lk, conns, wins)
	}
	if !produced {
		for i, c := range conns {
			wins[i] = bs.Windows(c)
		}
	}
	e.scoreWindowSets(bs, wins, out, false)
	return out
}

// windowErrorsGrouped is WindowErrorsBatched for composite backends: the
// queue is cut into bounded groups (like the micro-batched path), whole
// groups fan out across the pool, and each group is routed through the
// composite's own stages via WindowErrorsGroup with stageSeriesGroup as
// the kernel. At most Workers groups are in flight, bounding resident
// windows the same way the serial group loop does.
func (e *Engine) windowErrorsGrouped(gs backend.GroupScorer, conns []*flow.Connection) [][]float64 {
	out := make([][]float64, len(conns))
	group := e.batchGroup()
	ng := (len(conns) + group - 1) / group
	e.parallelForWide(ng, func(g int) {
		lo := g * group
		hi := lo + group
		if hi > len(conns) {
			hi = len(conns)
		}
		copy(out[lo:hi], gs.WindowErrorsGroup(conns[lo:hi], e.stageSeriesGroup))
	})
	return out
}

// GroupSeries scores one group of connections through the
// cross-connection batched path on the calling goroutine, returning each
// connection's window-error series in input order — the entry point for
// callers that assemble their own groups and own their own concurrency,
// like the streaming pipeline's grouped workers. Returns ok=false with no
// work done when grouping cannot help: lockstep or micro-batching is
// disabled, the group is empty, or the backend exposes neither
// backend.GroupScorer nor backend.BatchScorer. When ok, series are
// bit-identical to b.WindowErrors per connection, with identical side
// effects on composite backends' routing counters.
func (e *Engine) GroupSeries(b backend.Backend, conns []*flow.Connection) ([][]float64, bool) {
	if e.lockstep <= 0 || e.batch <= 1 || len(conns) == 0 {
		return nil, false
	}
	if gs, ok := b.(backend.GroupScorer); ok {
		return gs.WindowErrorsGroup(conns, e.stageSeriesGroup), true
	}
	if _, ok := b.(backend.BatchScorer); !ok {
		return nil, false
	}
	return e.stageSeriesGroup(b, conns), true
}
