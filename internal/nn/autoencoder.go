package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Dense is one fully-connected layer with an optional tanh activation.
type Dense struct {
	W, B *Tensor
	Tanh bool
}

// apply computes the layer's output into out — the single source of the
// layer arithmetic, shared by the retaining forward pass and the pooled
// inference path so both are structurally bit-identical.
func (l *Dense) apply(in, out []float64) {
	l.W.MulVec(in, out)
	for j := range out {
		out[j] += l.B.W[j]
		if l.Tanh {
			out[j] = math.Tanh(out[j])
		}
	}
}

// Autoencoder is a symmetric MLP autoencoder trained with L1 reconstruction
// loss (§3.3(c)). Hidden layers use tanh; the output layer is linear so
// reconstruction error is measured in input units. The paper's CLAP
// configuration is 7 layers, input 345, bottleneck 40 (Table 6); Baseline #1
// uses 3 layers, input 51, bottleneck 5.
type Autoencoder struct {
	Sizes  []int
	Layers []*Dense

	// scratch pools per-layer activation buffers for the inference path so
	// concurrent Error/Errors callers do not allocate a full activation
	// chain per window. The zero value is ready to use, which keeps the
	// struct-literal construction sites (persistence, training shadows)
	// working unchanged.
	scratch sync.Pool

	// batches pools flat ping-pong activation buffers for ErrorsBatch; like
	// scratch, the zero value is ready to use.
	batches sync.Pool
}

// NewAutoencoder builds a chain of len(sizes)-1 dense layers; sizes is the
// full unit chain including input and output, e.g.
// [345,160,80,40,80,160,345].
func NewAutoencoder(sizes []int, rng *rand.Rand) *Autoencoder {
	if len(sizes) < 2 {
		panic("nn: autoencoder needs at least input and output sizes")
	}
	if sizes[0] != sizes[len(sizes)-1] {
		panic("nn: autoencoder input and output sizes must match")
	}
	ae := &Autoencoder{Sizes: append([]int(nil), sizes...)}
	for i := 0; i+1 < len(sizes); i++ {
		ae.Layers = append(ae.Layers, &Dense{
			W:    NewXavier(sizes[i+1], sizes[i], rng),
			B:    NewTensor(sizes[i+1], 1),
			Tanh: i+2 < len(sizes), // all but the last layer
		})
	}
	return ae
}

// Params returns all parameter tensors.
func (ae *Autoencoder) Params() []*Tensor {
	out := make([]*Tensor, 0, len(ae.Layers)*2)
	for _, l := range ae.Layers {
		out = append(out, l.W, l.B)
	}
	return out
}

// InputSize returns the expected input dimensionality.
func (ae *Autoencoder) InputSize() int { return ae.Sizes[0] }

// BottleneckSize returns the smallest layer width.
func (ae *Autoencoder) BottleneckSize() int {
	min := ae.Sizes[0]
	for _, s := range ae.Sizes {
		if s < min {
			min = s
		}
	}
	return min
}

// forward computes all layer activations; acts[0] is the input, acts[i] the
// output of layer i-1.
func (ae *Autoencoder) forward(x []float64) [][]float64 {
	acts := make([][]float64, len(ae.Layers)+1)
	acts[0] = x
	for i, l := range ae.Layers {
		out := make([]float64, l.W.R)
		l.apply(acts[i], out)
		acts[i+1] = out
	}
	return acts
}

// Reconstruct returns the autoencoder's reconstruction of x.
func (ae *Autoencoder) Reconstruct(x []float64) []float64 {
	acts := ae.forward(x)
	return acts[len(acts)-1]
}

// errScratch is one pooled set of per-layer activation buffers.
type errScratch struct {
	acts [][]float64 // acts[i] has layer i's output width
}

func (ae *Autoencoder) getScratch() *errScratch {
	if v := ae.scratch.Get(); v != nil {
		return v.(*errScratch)
	}
	s := &errScratch{acts: make([][]float64, len(ae.Layers))}
	for i, l := range ae.Layers {
		s.acts[i] = make([]float64, l.W.R)
	}
	return s
}

// errorWith computes the L1 reconstruction error of x using pooled
// activation buffers. The operation order matches forward() exactly, so the
// result is bit-identical to the allocating path.
func (ae *Autoencoder) errorWith(s *errScratch, x []float64) float64 {
	cur := x
	for i, l := range ae.Layers {
		l.apply(cur, s.acts[i])
		cur = s.acts[i]
	}
	var sum float64
	for i := range x {
		sum += math.Abs(cur[i] - x[i])
	}
	return sum / float64(len(x))
}

// Error returns the mean absolute (L1) reconstruction error of x — CLAP's
// anomaly signal. Safe for concurrent use on a trained (no longer mutating)
// model: weights are only read and scratch buffers come from a sync.Pool.
func (ae *Autoencoder) Error(x []float64) float64 {
	s := ae.getScratch()
	e := ae.errorWith(s, x)
	ae.scratch.Put(s)
	return e
}

// Errors computes reconstruction errors for a batch, reusing one scratch
// set across the whole batch. Safe for concurrent use like Error.
func (ae *Autoencoder) Errors(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	s := ae.getScratch()
	for i, x := range xs {
		out[i] = ae.errorWith(s, x)
	}
	ae.scratch.Put(s)
	return out
}

// batchScratch is one pooled pair of flat row-major activation buffers for
// the batched forward pass; each holds rows×maxWidth float64s.
type batchScratch struct {
	rows int
	a, b []float64
}

// maxWidth returns the widest layer of the chain (the flat buffer stride
// bound).
func (ae *Autoencoder) maxWidth() int {
	max := 0
	for _, s := range ae.Sizes {
		if s > max {
			max = s
		}
	}
	return max
}

func (ae *Autoencoder) getBatchScratch(rows int) *batchScratch {
	if v := ae.batches.Get(); v != nil {
		if s := v.(*batchScratch); s.rows >= rows {
			return s
		}
		// Too small for this batch: drop it and size up.
	}
	w := ae.maxWidth()
	return &batchScratch{rows: rows, a: make([]float64, rows*w), b: make([]float64, rows*w)}
}

// ErrorsBatch computes the L1 reconstruction errors of a whole window
// stack in one forward pass per layer: every layer runs as a single
// cache-blocked matrix-matrix multiply (Tensor.MulMat) over the batch
// instead of len(xs) matrix-vector passes. Element k is bit-identical to
// Error(xs[k]) at any batch size — MulMat preserves MulVec's per-element
// accumulation order and the bias/tanh/L1 arithmetic is applied in the
// same per-element order as the unbatched path. Scratch buffers are
// pooled; like Error/Errors, ErrorsBatch is safe for concurrent use on a
// trained (no longer mutating) model.
func (ae *Autoencoder) ErrorsBatch(xs [][]float64) []float64 {
	n := len(xs)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	in := ae.Sizes[0]
	for _, x := range xs {
		if len(x) != in {
			panic(fmt.Sprintf("nn: ErrorsBatch input width %d, want %d", len(x), in))
		}
	}
	s := ae.getBatchScratch(n)
	cur, nxt := s.a, s.b
	for b, x := range xs {
		copy(cur[b*in:(b+1)*in], x)
	}
	width := in
	for _, l := range ae.Layers {
		r := l.W.R
		l.W.MulMat(cur[:n*width], n, nxt[:n*r])
		bias := l.B.W[:r]
		for b := 0; b < n; b++ {
			o := nxt[b*r : b*r+r]
			if l.Tanh {
				for i, bv := range bias {
					o[i] = math.Tanh(o[i] + bv)
				}
			} else {
				for i, bv := range bias {
					o[i] += bv
				}
			}
		}
		cur, nxt = nxt, cur
		width = r
	}
	for b, x := range xs {
		rec := cur[b*width : b*width+width]
		var sum float64
		for i := range x {
			sum += math.Abs(rec[i] - x[i])
		}
		out[b] = sum / float64(len(x))
	}
	s.a, s.b = cur, nxt // keep the swap state consistent for reuse
	ae.batches.Put(s)
	return out
}

// backward accumulates gradients for one sample from its forward
// activations and returns the sample's L1 loss.
func (ae *Autoencoder) backward(acts [][]float64) float64 {
	n := len(acts[0])
	out := acts[len(acts)-1]
	x := acts[0]
	var loss float64
	delta := make([]float64, n)
	for i := range out {
		d := out[i] - x[i]
		loss += math.Abs(d)
		// d/dy |y-x| = sign(y-x); scale by 1/n to match Error().
		switch {
		case d > 0:
			delta[i] = 1.0 / float64(n)
		case d < 0:
			delta[i] = -1.0 / float64(n)
		}
	}
	for i := len(ae.Layers) - 1; i >= 0; i-- {
		l := ae.Layers[i]
		in := acts[i]
		if l.Tanh {
			out := acts[i+1]
			for j := range delta {
				delta[j] *= 1 - out[j]*out[j]
			}
		}
		l.W.AddOuterGrad(delta, in)
		l.B.AddVecGrad(delta)
		if i > 0 {
			next := make([]float64, len(in))
			l.W.MulVecT(delta, next)
			delta = next
		}
	}
	return loss / float64(n)
}

// TrainBatch accumulates gradients over a mini-batch (averaged), clips, and
// applies one optimiser step. Returns the mean L1 loss over the batch.
func (ae *Autoencoder) TrainBatch(xs [][]float64, opt *Adam, clip float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var loss float64
	for _, x := range xs {
		loss += ae.backward(ae.forward(x))
	}
	inv := 1.0 / float64(len(xs))
	for _, p := range ae.Params() {
		for i := range p.G {
			p.G[i] *= inv
		}
	}
	if clip > 0 {
		ClipGradients(clip, ae.Params()...)
	}
	opt.Step()
	return loss * inv
}

// shadow mirrors a layer stack's parameters so concurrent workers can
// accumulate gradients without racing; weights are shared (read-only
// within a batch), gradient buffers are private.
type shadow struct {
	layers []*Dense
}

func (ae *Autoencoder) newShadow() *shadow {
	s := &shadow{layers: make([]*Dense, len(ae.Layers))}
	for i, l := range ae.Layers {
		s.layers[i] = &Dense{
			W:    &Tensor{R: l.W.R, C: l.W.C, W: l.W.W, G: make([]float64, len(l.W.G))},
			B:    &Tensor{R: l.B.R, C: l.B.C, W: l.B.W, G: make([]float64, len(l.B.G))},
			Tanh: l.Tanh,
		}
	}
	return s
}

// TrainBatchParallel behaves like TrainBatch but splits gradient
// computation across `workers` goroutines. Results are deterministic: the
// per-sample gradients are summed in a fixed order regardless of worker
// scheduling (each worker owns a contiguous shard and shards are merged
// sequentially).
func (ae *Autoencoder) TrainBatchParallel(xs [][]float64, opt *Adam, clip float64, workers int) float64 {
	if len(xs) == 0 {
		return 0
	}
	if workers <= 1 || len(xs) < workers*2 {
		return ae.TrainBatch(xs, opt, clip)
	}
	shadows := make([]*shadow, workers)
	losses := make([]float64, workers)
	var wg sync.WaitGroup
	per := (len(xs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(xs) {
			hi = len(xs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			sh := ae.newShadow()
			shadows[w] = sh
			worker := &Autoencoder{Sizes: ae.Sizes, Layers: sh.layers}
			var loss float64
			for _, x := range xs[lo:hi] {
				loss += worker.backward(worker.forward(x))
			}
			losses[w] = loss
		}(w, lo, hi)
	}
	wg.Wait()

	inv := 1.0 / float64(len(xs))
	var loss float64
	for w, sh := range shadows {
		if sh == nil {
			continue
		}
		loss += losses[w]
		for i, l := range ae.Layers {
			for k, g := range sh.layers[i].W.G {
				l.W.G[k] += g
			}
			for k, g := range sh.layers[i].B.G {
				l.B.G[k] += g
			}
		}
	}
	for _, p := range ae.Params() {
		for i := range p.G {
			p.G[i] *= inv
		}
	}
	if clip > 0 {
		ClipGradients(clip, ae.Params()...)
	}
	opt.Step()
	return loss * inv
}
