package nn

// Concurrency regression tests for the inference paths the scoring engine
// drives in parallel (internal/engine). The audit behind these tests: every
// forward-pass scratch buffer must be per-call or pooled, never hung off
// the shared model, so overlapping Score calls on one trained detector stay
// race-free and bit-deterministic. Run under -race to catch regressions
// that reintroduce shared scratch state.

import (
	"math/rand"
	"sync"
	"testing"
)

// randSeq builds a deterministic test sequence.
func randSeq(rng *rand.Rand, T, width int) [][]float64 {
	seq := make([][]float64, T)
	for t := range seq {
		v := make([]float64, width)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		seq[t] = v
	}
	return seq
}

// TestForwardGatesMatchesForward pins the contract ForwardGates is built
// on: its Z and R activations are bit-identical to the full Forward pass.
func TestForwardGatesMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewGRUClassifier(12, 16, 5, rng)
	for trial := 0; trial < 10; trial++ {
		seq := randSeq(rng, 3+trial*4, 12)
		st := m.Forward(seq)
		Z, R := m.ForwardGates(seq)
		if len(Z) != len(st.Z) || len(R) != len(st.R) {
			t.Fatalf("trial %d: length mismatch", trial)
		}
		for ti := range Z {
			for i := range Z[ti] {
				if Z[ti][i] != st.Z[ti][i] {
					t.Fatalf("trial %d step %d: Z[%d] = %v, Forward gives %v", trial, ti, i, Z[ti][i], st.Z[ti][i])
				}
				if R[ti][i] != st.R[ti][i] {
					t.Fatalf("trial %d step %d: R[%d] = %v, Forward gives %v", trial, ti, i, R[ti][i], st.R[ti][i])
				}
			}
		}
	}
}

// TestGRUForwardConcurrent runs many overlapping forward passes on one
// shared model and checks each against the serial result. Under -race this
// is the scratch-buffer aliasing regression test for the GRU.
func TestGRUForwardConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewGRUClassifier(10, 12, 4, rng)
	const nSeq = 16
	seqs := make([][][]float64, nSeq)
	wantZ := make([][][]float64, nSeq)
	wantR := make([][][]float64, nSeq)
	wantPred := make([][]int, nSeq)
	for i := range seqs {
		seqs[i] = randSeq(rng, 5+i, 10)
		st := m.Forward(seqs[i])
		wantZ[i], wantR[i] = st.Z, st.R
		wantPred[i] = m.Predict(seqs[i])
	}

	var wg sync.WaitGroup
	errc := make(chan string, nSeq*4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, seq := range seqs {
				Z, R := m.ForwardGates(seq)
				for ti := range Z {
					for k := range Z[ti] {
						if Z[ti][k] != wantZ[i][ti][k] || R[ti][k] != wantR[i][ti][k] {
							errc <- "gate activations diverged under concurrency"
							return
						}
					}
				}
				pred := m.Predict(seq)
				for ti := range pred {
					if pred[ti] != wantPred[i][ti] {
						errc <- "predictions diverged under concurrency"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
}

// TestAutoencoderErrorPooledMatchesReconstruct guards the pooled-scratch
// refactor: Error must equal the L1 distance computed from Reconstruct.
func TestAutoencoderErrorPooledMatchesReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ae := NewAutoencoder([]int{20, 12, 6, 12, 20}, rng)
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, 20)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := ae.Reconstruct(x)
		var want float64
		for i := range x {
			d := y[i] - x[i]
			if d < 0 {
				d = -d
			}
			want += d
		}
		want /= float64(len(x))
		if got := ae.Error(x); got != want {
			t.Fatalf("trial %d: pooled Error = %v, reconstruct path gives %v", trial, got, want)
		}
	}
}

// TestAutoencoderErrorsConcurrent overlaps Errors calls on one shared
// model; the pooled scratch buffers must neither race nor cross-contaminate
// results.
func TestAutoencoderErrorsConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ae := NewAutoencoder([]int{24, 16, 8, 16, 24}, rng)
	const nBatch = 12
	batches := make([][][]float64, nBatch)
	want := make([][]float64, nBatch)
	for b := range batches {
		batches[b] = randSeq(rng, 6+b, 24)
		want[b] = ae.Errors(batches[b])
	}

	var wg sync.WaitGroup
	errc := make(chan string, nBatch*4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b, xs := range batches {
				got := ae.Errors(xs)
				for i := range got {
					if got[i] != want[b][i] {
						errc <- "reconstruction errors diverged under concurrency"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
}
