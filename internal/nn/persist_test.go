package nn

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"strings"
	"testing"
)

// Round-trip sanity plus pinned error paths for the snapshot loaders: a
// truncated stream, a dimension-corrupted tensor, a weight payload that
// disagrees with its declared shape, and an empty/degenerate Sizes chain
// must all fail at load with a diagnostic — never load silently and panic
// at first inference.

func TestGRUSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewGRUClassifier(8, 6, 3, rng)
	var buf bytes.Buffer
	if err := SaveGRU(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGRU(&buf)
	if err != nil {
		t.Fatal(err)
	}
	seq := randVecs(5, 8, rng)
	wantZ, _ := m.ForwardGates(seq)
	gotZ, _ := got.ForwardGates(seq)
	for ts := range wantZ {
		for i := range wantZ[ts] {
			if gotZ[ts][i] != wantZ[ts][i] {
				t.Fatalf("reloaded GRU diverged at step %d unit %d", ts, i)
			}
		}
	}
}

func TestLoadGRUTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var buf bytes.Buffer
	if err := SaveGRU(&buf, NewGRUClassifier(8, 6, 3, rng)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGRU(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("LoadGRU accepted a truncated stream")
	}
}

// corruptGRU round-trips a model through its snapshot struct, letting the
// test mutate the snapshot before re-encoding — a dim-corrupted model
// file without reaching into the gob wire format.
func corruptGRU(t *testing.T, mutate func(*gruSnap)) error {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	var buf bytes.Buffer
	if err := SaveGRU(&buf, NewGRUClassifier(8, 6, 3, rng)); err != nil {
		t.Fatal(err)
	}
	var s gruSnap
	if err := gob.NewDecoder(&buf).Decode(&s); err != nil {
		t.Fatal(err)
	}
	mutate(&s)
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(s); err != nil {
		t.Fatal(err)
	}
	_, err := LoadGRU(&out)
	return err
}

func TestLoadGRUDimMismatch(t *testing.T) {
	cases := map[string]func(*gruSnap){
		"Uz not square":    func(s *gruSnap) { s.Tensors[1].C = 5 },
		"hidden mismatch":  func(s *gruSnap) { s.Hidden = 7 },
		"short weights":    func(s *gruSnap) { s.Tensors[0].W = s.Tensors[0].W[:10] },
		"missing tensor":   func(s *gruSnap) { s.Tensors = s.Tensors[:10] },
		"non-positive dim": func(s *gruSnap) { s.In = 0 },
	}
	for name, mutate := range cases {
		if err := corruptGRU(t, mutate); err == nil {
			t.Fatalf("%s: LoadGRU accepted the corrupted snapshot", name)
		} else if !strings.Contains(err.Error(), "nn:") {
			t.Fatalf("%s: undiagnostic error %v", name, err)
		}
	}
}

func TestAutoencoderSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ae := NewAutoencoder([]int{12, 6, 12}, rng)
	var buf bytes.Buffer
	if err := SaveAutoencoder(&buf, ae); err != nil {
		t.Fatal(err)
	}
	got, err := LoadAutoencoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := randVecs(1, 12, rng)[0]
	if got.Error(x) != ae.Error(x) {
		t.Fatal("reloaded autoencoder diverged")
	}
}

func corruptAE(t *testing.T, mutate func(*aeSnap)) error {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	var buf bytes.Buffer
	if err := SaveAutoencoder(&buf, NewAutoencoder([]int{12, 6, 12}, rng)); err != nil {
		t.Fatal(err)
	}
	var s aeSnap
	if err := gob.NewDecoder(&buf).Decode(&s); err != nil {
		t.Fatal(err)
	}
	mutate(&s)
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(s); err != nil {
		t.Fatal(err)
	}
	_, err := LoadAutoencoder(&out)
	return err
}

func TestLoadAutoencoderErrorPaths(t *testing.T) {
	cases := map[string]func(*aeSnap){
		"empty sizes":       func(s *aeSnap) { s.Sizes = nil },
		"single size":       func(s *aeSnap) { s.Sizes = s.Sizes[:1] },
		"zero-width layer":  func(s *aeSnap) { s.Sizes[1] = 0 },
		"layer dim corrupt": func(s *aeSnap) { s.Tensors[0].R = 99 },
		"bias dim corrupt":  func(s *aeSnap) { s.Tensors[1].C = 2 },
		"short weights":     func(s *aeSnap) { s.Tensors[2].W = s.Tensors[2].W[:3] },
		"missing tensors":   func(s *aeSnap) { s.Tensors = s.Tensors[:3] },
	}
	for name, mutate := range cases {
		if err := corruptAE(t, mutate); err == nil {
			t.Fatalf("%s: LoadAutoencoder accepted the corrupted snapshot", name)
		}
	}

	// Truncated stream.
	rng := rand.New(rand.NewSource(9))
	var buf bytes.Buffer
	if err := SaveAutoencoder(&buf, NewAutoencoder([]int{12, 6, 12}, rng)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAutoencoder(bytes.NewReader(buf.Bytes()[:buf.Len()/3])); err == nil {
		t.Fatal("LoadAutoencoder accepted a truncated stream")
	}
}
