package nn

import (
	"fmt"
	"math"
)

// GRULockstep steps up to K independent GRU recurrences in lockstep: the
// K hidden states are stacked as rows of a K×Hidden state matrix, and one
// Step advances every active row with a single MulMat per projection —
// Wz/Wr/Wh against the staged inputs and Uz/Ur/Uh against the state
// matrix — instead of K separate MulVec passes. This is the
// cross-connection half of the batching story: ForwardGatesBatch hoists
// the input projections of one sequence, the lockstep hoists the
// recurrent projections across sequences, which the recurrence itself
// can never batch within a single connection.
//
// Bit-identity contract: MulMat computes each output row with MulVec's
// exact per-element accumulation order, and the element-wise gate
// expressions below are copied from GRUClassifier.step operand for
// operand, so after T steps a row's Z/R sequence is Float64bits-identical
// to ForwardGates over the same inputs — regardless of which other rows
// shared the fleet, of the fleet width, and of when rows were moved
// (Move copies bits, and no arithmetic crosses rows).
//
// Usage protocol (the engine's ragged scheduler drives it): Reset(row) at
// the start of a sequence, StageInput(row, x) for every active row, then
// Step(n) with the active rows compacted into the prefix [0, n). Z(row)
// and R(row) expose the step's gate activations until the next Step.
// Move(dst, src) relocates a row's recurrence state during compaction;
// call it only after the src row's gates have been harvested.
//
// A GRULockstep is single-goroutine state; open one per worker. The
// underlying model is read-only and may be shared.
type GRULockstep struct {
	m *GRUClassifier
	k int

	// All buffers are K×In or K×Hidden, flat row-major.
	x          []float64 // staged inputs
	h          []float64 // hidden states h_{t-1}, updated in place by Step
	z, r, c    []float64 // gate / candidate outputs of the last Step
	az, ar, ah []float64 // input projections W·x
	u          []float64 // recurrent projection scratch (one at a time, like step's tmp)
	rh         []float64 // r ⊙ h_{t-1}
}

// NewLockstep opens a lockstep fleet of k rows over the model.
func (m *GRUClassifier) NewLockstep(k int) *GRULockstep {
	if k < 1 {
		panic(fmt.Sprintf("nn: NewLockstep width %d", k))
	}
	kh := k * m.Hidden
	return &GRULockstep{
		m: m, k: k,
		x: make([]float64, k*m.In),
		h: make([]float64, kh),
		z: make([]float64, kh), r: make([]float64, kh), c: make([]float64, kh),
		az: make([]float64, kh), ar: make([]float64, kh), ah: make([]float64, kh),
		u: make([]float64, kh), rh: make([]float64, kh),
	}
}

// Width reports the fleet capacity K.
func (s *GRULockstep) Width() int { return s.k }

// Reset zeroes a row's hidden state, starting a fresh sequence (h_0 = 0,
// exactly like ForwardGates).
func (s *GRULockstep) Reset(row int) {
	H := s.m.Hidden
	clear(s.h[row*H : (row+1)*H])
}

// StageInput stages row's next input vector x_t for the coming Step.
func (s *GRULockstep) StageInput(row int, x []float64) {
	if len(x) != s.m.In {
		panic(fmt.Sprintf("nn: lockstep input width %d, want %d", len(x), s.m.In))
	}
	copy(s.x[row*s.m.In:(row+1)*s.m.In], x)
}

// Step advances rows [0, n) by one recurrence step: three MulMats against
// the staged inputs, three against the state matrix, and the element-wise
// gate arithmetic of GRUClassifier.step per row. Gates land in Z/R; the
// state matrix is updated in place.
func (s *GRULockstep) Step(n int) {
	if n < 1 || n > s.k {
		panic(fmt.Sprintf("nn: lockstep Step(%d) outside fleet of %d", n, s.k))
	}
	m := s.m
	H := m.Hidden
	x, h := s.x[:n*m.In], s.h[:n*H]
	u := s.u[:n*H]
	m.Wz.MulMat(x, n, s.az[:n*H])
	m.Uz.MulMat(h, n, u)
	for b := 0; b < n; b++ {
		z, az, uz := s.z[b*H:(b+1)*H], s.az[b*H:(b+1)*H], u[b*H:(b+1)*H]
		for i := range z {
			z[i] = sigmoid(az[i] + uz[i] + m.Bz.W[i])
		}
	}
	m.Wr.MulMat(x, n, s.ar[:n*H])
	m.Ur.MulMat(h, n, u)
	for b := 0; b < n; b++ {
		r, ar, ur := s.r[b*H:(b+1)*H], s.ar[b*H:(b+1)*H], u[b*H:(b+1)*H]
		for i := range r {
			r[i] = sigmoid(ar[i] + ur[i] + m.Br.W[i])
		}
	}
	rh := s.rh[:n*H]
	for i := range rh {
		rh[i] = s.r[i] * h[i]
	}
	m.Wh.MulMat(x, n, s.ah[:n*H])
	m.Uh.MulMat(rh, n, u)
	for b := 0; b < n; b++ {
		c, ah, uh := s.c[b*H:(b+1)*H], s.ah[b*H:(b+1)*H], u[b*H:(b+1)*H]
		for i := range c {
			c[i] = math.Tanh(ah[i] + uh[i] + m.Bh.W[i])
		}
	}
	// h_t = (1-z) ⊙ h_{t-1} + z ⊙ h̃, element-local so in-place is safe.
	for i := range h {
		h[i] = (1-s.z[i])*h[i] + s.z[i]*s.c[i]
	}
}

// Z exposes row's update-gate activations from the last Step. The view is
// valid until the next Step; copy what must outlive it.
func (s *GRULockstep) Z(row int) []float64 {
	H := s.m.Hidden
	return s.z[row*H : (row+1)*H]
}

// R exposes row's reset-gate activations from the last Step, under Z's
// lifetime contract.
func (s *GRULockstep) R(row int) []float64 {
	H := s.m.Hidden
	return s.r[row*H : (row+1)*H]
}

// Move copies src's recurrence state into dst — the scheduler's
// compaction primitive. Only the hidden state moves (bits unchanged);
// the src row's last gates must already have been harvested, and dst's
// next input must be staged before the next Step.
func (s *GRULockstep) Move(dst, src int) {
	if dst == src {
		return
	}
	H := s.m.Hidden
	copy(s.h[dst*H:(dst+1)*H], s.h[src*H:(src+1)*H])
}
