package nn

import (
	"math/rand"
	"testing"
)

// lockstepRagged drives a GRULockstep the way the engine's scheduler does
// — fill the fleet, step the active prefix, retire finished rows,
// refill-or-compact — over sequences of heterogeneous lengths, returning
// each sequence's harvested Z/R trains in input order.
func lockstepRagged(m *GRUClassifier, ls *GRULockstep, seqs [][][]float64) (Z, R [][][]float64) {
	Z = make([][][]float64, len(seqs))
	R = make([][][]float64, len(seqs))
	k := ls.Width()
	rowSeq := make([]int, k) // fleet row -> sequence index
	rowPos := make([]int, k) // fleet row -> next step
	next := 0
	load := func(row int) bool {
		for next < len(seqs) {
			si := next
			next++
			if len(seqs[si]) == 0 {
				continue // zero-length sequences never enter the fleet
			}
			ls.Reset(row)
			rowSeq[row], rowPos[row] = si, 0
			return true
		}
		return false
	}
	active := 0
	for active < k && load(active) {
		active++
	}
	for active > 0 {
		for b := 0; b < active; b++ {
			ls.StageInput(b, seqs[rowSeq[b]][rowPos[b]])
		}
		ls.Step(active)
		for b := 0; b < active; b++ {
			si := rowSeq[b]
			Z[si] = append(Z[si], append([]float64(nil), ls.Z(b)...))
			R[si] = append(R[si], append([]float64(nil), ls.R(b)...))
			rowPos[b]++
		}
		for b := 0; b < active; {
			if rowPos[b] < len(seqs[rowSeq[b]]) {
				b++
				continue
			}
			if load(b) {
				b++
				continue
			}
			active--
			if b < active {
				// Compact: the swapped-in row may itself be finished, so b
				// is re-checked without advancing.
				ls.Move(b, active)
				rowSeq[b], rowPos[b] = rowSeq[active], rowPos[active]
			}
		}
	}
	return Z, R
}

// TestLockstepBitIdentity pins the tentpole contract at the nn layer:
// ragged lockstep stepping reproduces ForwardGates bit for bit per
// sequence, across fleet widths, length mixes (including empty and
// single-step sequences), and single-sequence fleets.
func TestLockstepBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := NewGRUClassifier(8, 6, 3, rng)
	lengthSets := [][]int{
		{5, 3, 9, 1, 0, 4, 7, 2, 11, 1, 0, 6},
		{1},
		{0, 0, 3},
		{16, 16, 16, 16},
		{2, 31, 1, 1, 1, 1, 1, 12},
	}
	for _, lengths := range lengthSets {
		seqs := make([][][]float64, len(lengths))
		for i, T := range lengths {
			seqs[i] = randVecs(T, 8, rng)
		}
		wantZ := make([][][]float64, len(seqs))
		wantR := make([][][]float64, len(seqs))
		for i, seq := range seqs {
			wantZ[i], wantR[i] = m.ForwardGates(seq)
		}
		for _, k := range []int{1, 2, 4, 6, 24} {
			gotZ, gotR := lockstepRagged(m, m.NewLockstep(k), seqs)
			for si := range seqs {
				if len(gotZ[si]) != len(wantZ[si]) {
					t.Fatalf("lengths=%v k=%d: seq %d harvested %d steps, want %d",
						lengths, k, si, len(gotZ[si]), len(wantZ[si]))
				}
				for ts := range wantZ[si] {
					for i := range wantZ[si][ts] {
						if gotZ[si][ts][i] != wantZ[si][ts][i] {
							t.Fatalf("lengths=%v k=%d: Z[%d][%d][%d] = %v, serial %v",
								lengths, k, si, ts, i, gotZ[si][ts][i], wantZ[si][ts][i])
						}
						if gotR[si][ts][i] != wantR[si][ts][i] {
							t.Fatalf("lengths=%v k=%d: R[%d][%d][%d] = %v, serial %v",
								lengths, k, si, ts, i, gotR[si][ts][i], wantR[si][ts][i])
						}
					}
				}
			}
		}
	}
}

// TestLockstepFleetReuse steps two batches of sequences through ONE
// session back to back — Reset must fully isolate a row from whatever
// sequence used it before.
func TestLockstepFleetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	m := NewGRUClassifier(8, 6, 3, rng)
	ls := m.NewLockstep(4)
	for round := 0; round < 3; round++ {
		seqs := [][][]float64{randVecs(7, 8, rng), randVecs(2, 8, rng), randVecs(5, 8, rng), randVecs(9, 8, rng), randVecs(3, 8, rng)}
		gotZ, gotR := lockstepRagged(m, ls, seqs)
		for si, seq := range seqs {
			wantZ, wantR := m.ForwardGates(seq)
			for ts := range wantZ {
				for i := range wantZ[ts] {
					if gotZ[si][ts][i] != wantZ[ts][i] || gotR[si][ts][i] != wantR[ts][i] {
						t.Fatalf("round %d seq %d: reused fleet diverged at step %d unit %d", round, si, ts, i)
					}
				}
			}
		}
	}
}

// TestLockstepPanics pins the guard rails: zero width, over-wide Step,
// mis-sized inputs.
func TestLockstepPanics(t *testing.T) {
	m := NewGRUClassifier(4, 3, 2, rand.New(rand.NewSource(1)))
	for name, bad := range map[string]func(){
		"zero width":  func() { m.NewLockstep(0) },
		"step over k": func() { m.NewLockstep(2).Step(3) },
		"step zero":   func() { m.NewLockstep(2).Step(0) },
		"mis-sized x": func() { m.NewLockstep(2).StageInput(0, make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			bad()
		}()
	}
}
