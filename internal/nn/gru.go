package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// GRUClassifier is a single-layer GRU followed by a softmax head, the
// paper's Stage-(a) model: it reads one packet feature vector per step and
// predicts the reference TCP state label for that step (Table 6: one layer,
// input 32, hidden/gate size 32).
//
// Gate convention (matching Cho et al. [6], the paper's reference):
//
//	z_t = σ(Wz·x_t + Uz·h_{t-1} + bz)        update gate
//	r_t = σ(Wr·x_t + Ur·h_{t-1} + br)        reset gate
//	h̃_t = tanh(Wh·x_t + Uh·(r_t ⊙ h_{t-1}) + bh)
//	h_t = (1-z_t) ⊙ h_{t-1} + z_t ⊙ h̃_t
//
// The per-step z_t and r_t vectors are what Stage (b) concatenates into
// context profiles.
type GRUClassifier struct {
	In, Hidden, Classes int

	Wz, Uz, Bz *Tensor
	Wr, Ur, Br *Tensor
	Wh, Uh, Bh *Tensor
	Wo, Bo     *Tensor

	// gateBufs pools ForwardGatesBatchPooled backings; the zero value is
	// ready, keeping struct-literal construction sites working unchanged.
	gateBufs sync.Pool
}

// NewGRUClassifier builds a Xavier-initialised model.
func NewGRUClassifier(in, hidden, classes int, rng *rand.Rand) *GRUClassifier {
	return &GRUClassifier{
		In: in, Hidden: hidden, Classes: classes,
		Wz: NewXavier(hidden, in, rng), Uz: NewXavier(hidden, hidden, rng), Bz: NewTensor(hidden, 1),
		Wr: NewXavier(hidden, in, rng), Ur: NewXavier(hidden, hidden, rng), Br: NewTensor(hidden, 1),
		Wh: NewXavier(hidden, in, rng), Uh: NewXavier(hidden, hidden, rng), Bh: NewTensor(hidden, 1),
		Wo: NewXavier(classes, hidden, rng), Bo: NewTensor(classes, 1),
	}
}

// Params returns every parameter tensor (for optimiser registration,
// clipping and persistence).
func (m *GRUClassifier) Params() []*Tensor {
	return []*Tensor{m.Wz, m.Uz, m.Bz, m.Wr, m.Ur, m.Br, m.Wh, m.Uh, m.Bh, m.Wo, m.Bo}
}

// GRUStates captures everything the forward pass produced for a sequence of
// T steps. Z and R are the gate activations CLAP harvests as inter-packet
// context.
type GRUStates struct {
	X     [][]float64 // inputs, T×In (referenced, not copied)
	H     [][]float64 // hidden states, T×Hidden
	Z, R  [][]float64 // update / reset gate activations, T×Hidden
	Cand  [][]float64 // candidate states h̃, T×Hidden
	Probs [][]float64 // softmax outputs, T×Classes
}

// gruScratch holds one recurrence step's temporaries. Always per-call, so
// concurrent forward passes on one model never share state.
type gruScratch struct {
	az, ar, ah, tmp, rh []float64
}

func newGRUScratch(hidden int) *gruScratch {
	return &gruScratch{
		az: make([]float64, hidden), ar: make([]float64, hidden), ah: make([]float64, hidden),
		tmp: make([]float64, hidden), rh: make([]float64, hidden),
	}
}

// step computes one GRU recurrence step into z, r, c and h — the single
// source of the gate arithmetic, shared by Forward and ForwardGates so
// their results are structurally bit-identical.
func (m *GRUClassifier) step(sc *gruScratch, x, hPrev, z, r, c, h []float64) {
	m.Wz.MulVec(x, sc.az)
	m.Uz.MulVec(hPrev, sc.tmp)
	for i := range z {
		z[i] = sigmoid(sc.az[i] + sc.tmp[i] + m.Bz.W[i])
	}
	m.Wr.MulVec(x, sc.ar)
	m.Ur.MulVec(hPrev, sc.tmp)
	for i := range r {
		r[i] = sigmoid(sc.ar[i] + sc.tmp[i] + m.Br.W[i])
	}
	for i := range sc.rh {
		sc.rh[i] = r[i] * hPrev[i]
	}
	m.Wh.MulVec(x, sc.ah)
	m.Uh.MulVec(sc.rh, sc.tmp)
	for i := range c {
		c[i] = math.Tanh(sc.ah[i] + sc.tmp[i] + m.Bh.W[i])
	}
	for i := range h {
		h[i] = (1-z[i])*hPrev[i] + z[i]*c[i]
	}
}

// Forward runs the GRU over a sequence, returning all intermediate states.
func (m *GRUClassifier) Forward(seq [][]float64) *GRUStates {
	T := len(seq)
	st := &GRUStates{
		X: seq,
		H: make([][]float64, T), Z: make([][]float64, T), R: make([][]float64, T),
		Cand: make([][]float64, T), Probs: make([][]float64, T),
	}
	hPrev := make([]float64, m.Hidden)
	sc := newGRUScratch(m.Hidden)
	logits := make([]float64, m.Classes)
	for t := 0; t < T; t++ {
		z := make([]float64, m.Hidden)
		r := make([]float64, m.Hidden)
		c := make([]float64, m.Hidden)
		h := make([]float64, m.Hidden)
		m.step(sc, seq[t], hPrev, z, r, c, h)

		probs := make([]float64, m.Classes)
		m.Wo.MulVec(h, logits)
		for i := range logits {
			logits[i] += m.Bo.W[i]
		}
		Softmax(logits, probs)

		st.Z[t], st.R[t], st.Cand[t], st.H[t], st.Probs[t] = z, r, c, h, probs
		hPrev = h
	}
	return st
}

// ForwardGates runs the recurrence computing only the per-step update and
// reset gate activations — the scoring-path variant of Forward. Stage (b)
// harvests z_t and r_t but never reads the softmax head, so the output
// multiply and per-step probability/candidate/state retention are skipped.
// Both paths run the same step method, so the returned Z and R are
// bit-identical to Forward(seq).Z/.R. All scratch state is per-call;
// concurrent ForwardGates calls on one model are safe.
func (m *GRUClassifier) ForwardGates(seq [][]float64) (Z, R [][]float64) {
	T := len(seq)
	Z = make([][]float64, T)
	R = make([][]float64, T)
	hPrev := make([]float64, m.Hidden)
	h := make([]float64, m.Hidden)
	c := make([]float64, m.Hidden)
	sc := newGRUScratch(m.Hidden)
	for t := 0; t < T; t++ {
		z := make([]float64, m.Hidden)
		r := make([]float64, m.Hidden)
		m.step(sc, seq[t], hPrev, z, r, c, h)
		Z[t], R[t] = z, r
		hPrev, h = h, hPrev
	}
	return Z, R
}

// ForwardGatesBatch is the batched-inference variant of ForwardGates: the
// input projections Wz·x_t, Wr·x_t and Wh·x_t for the whole packet
// sequence are hoisted out of the recurrence into three matrix-matrix
// passes (Tensor.MulMat), leaving only the hidden-state multiplies
// sequential — the part the recurrence genuinely orders. MulMat preserves
// MulVec's per-element accumulation order and the gate arithmetic matches
// step() exactly, so Z and R are bit-identical to ForwardGates(seq) at any
// sequence length. All scratch state is per-call; concurrent calls on one
// model are safe.
func (m *GRUClassifier) ForwardGatesBatch(seq [][]float64) (Z, R [][]float64) {
	return m.forwardGatesBatch(seq, nil)
}

// ForwardGatesBatchPooled is ForwardGatesBatch over a pooled backing
// buffer: call release (always non-nil) once Z and R have been consumed,
// and do not read them afterwards. Bit-identical to ForwardGatesBatch;
// the pooling only removes the ~(In+5·Hidden)·T float64 allocation per
// call from the scoring hot path.
func (m *GRUClassifier) ForwardGatesBatchPooled(seq [][]float64) (Z, R [][]float64, release func()) {
	T := len(seq)
	need := T*(m.In+5*m.Hidden) + 5*m.Hidden
	var backing []float64
	if v := m.gateBufs.Get(); v != nil {
		if b := *(v.(*[]float64)); cap(b) >= need {
			backing = b[:need]
		}
	}
	if backing == nil {
		backing = make([]float64, need)
	}
	Z, R = m.forwardGatesBatch(seq, backing)
	return Z, R, func() { m.gateBufs.Put(&backing) }
}

// forwardGatesBatch runs the batched pass over the given backing (nil:
// allocate fresh; pooled backings may hold stale values — every region is
// fully written or explicitly cleared before its first read).
func (m *GRUClassifier) forwardGatesBatch(seq [][]float64, backing []float64) (Z, R [][]float64) {
	T := len(seq)
	Z = make([][]float64, T)
	R = make([][]float64, T)
	if T == 0 {
		return Z, R
	}
	H := m.Hidden
	// One backing allocation for every per-call buffer: the flattened
	// inputs, the three hoisted projections, the gate outputs, and the
	// recurrence scratch.
	if backing == nil {
		backing = make([]float64, T*(m.In+5*H)+5*H)
	}
	x, rest := backing[:T*m.In], backing[T*m.In:]
	az, rest := rest[:T*H], rest[T*H:]
	ar, rest := rest[:T*H], rest[T*H:]
	ah, rest := rest[:T*H], rest[T*H:]
	zbuf, rest := rest[:T*H], rest[T*H:]
	rbuf, rest := rest[:T*H], rest[T*H:]
	hPrev, rest := rest[:H], rest[H:]
	h, rest := rest[:H], rest[H:]
	c, rest := rest[:H], rest[H:]
	tmp, rh := rest[:H], rest[H:2*H]
	// hPrev is the only buffer read before it is written (h_0 = 0); a
	// pooled backing may carry a previous call's values.
	clear(hPrev)
	for t, v := range seq {
		if len(v) != m.In {
			panic(fmt.Sprintf("nn: ForwardGatesBatch step width %d, want %d", len(v), m.In))
		}
		copy(x[t*m.In:(t+1)*m.In], v)
	}
	m.Wz.MulMat(x, T, az)
	m.Wr.MulMat(x, T, ar)
	m.Wh.MulMat(x, T, ah)
	for t := 0; t < T; t++ {
		z := zbuf[t*H : (t+1)*H]
		r := rbuf[t*H : (t+1)*H]
		m.Uz.MulVec(hPrev, tmp)
		for i := range z {
			z[i] = sigmoid(az[t*H+i] + tmp[i] + m.Bz.W[i])
		}
		m.Ur.MulVec(hPrev, tmp)
		for i := range r {
			r[i] = sigmoid(ar[t*H+i] + tmp[i] + m.Br.W[i])
		}
		for i := range rh {
			rh[i] = r[i] * hPrev[i]
		}
		m.Uh.MulVec(rh, tmp)
		for i := range c {
			c[i] = math.Tanh(ah[t*H+i] + tmp[i] + m.Bh.W[i])
		}
		for i := range h {
			h[i] = (1-z[i])*hPrev[i] + z[i]*c[i]
		}
		Z[t], R[t] = z, r
		hPrev, h = h, hPrev
	}
	return Z, R
}

// Loss computes the mean cross-entropy of a forward pass against labels.
func (st *GRUStates) Loss(labels []int) float64 {
	var sum float64
	for t, p := range st.Probs {
		sum += -math.Log(math.Max(p[labels[t]], 1e-12))
	}
	return sum / float64(len(labels))
}

// Accuracy counts argmax hits against labels.
func (st *GRUStates) Accuracy(labels []int) float64 {
	hit := 0
	for t, p := range st.Probs {
		best := 0
		for i, v := range p {
			if v > p[best] {
				best = i
			}
		}
		if best == labels[t] {
			hit++
		}
	}
	return float64(hit) / float64(len(labels))
}

// Backward runs truncated-free full BPTT for one sequence, accumulating
// gradients into the parameter tensors. Returns the mean cross-entropy
// loss. Gradients are scaled by 1/T so sequence length does not change the
// effective learning rate.
func (m *GRUClassifier) Backward(st *GRUStates, labels []int) float64 {
	T := len(st.H)
	invT := 1.0 / float64(T)
	dhNext := make([]float64, m.Hidden)

	dlogits := make([]float64, m.Classes)
	dh := make([]float64, m.Hidden)
	dc := make([]float64, m.Hidden)
	dz := make([]float64, m.Hidden)
	dr := make([]float64, m.Hidden)
	dac := make([]float64, m.Hidden)
	daz := make([]float64, m.Hidden)
	dar := make([]float64, m.Hidden)
	drh := make([]float64, m.Hidden)
	rh := make([]float64, m.Hidden)

	var loss float64
	for t := T - 1; t >= 0; t-- {
		hPrev := make([]float64, m.Hidden)
		if t > 0 {
			copy(hPrev, st.H[t-1])
		}
		probs := st.Probs[t]
		loss += -math.Log(math.Max(probs[labels[t]], 1e-12))

		// Softmax + cross-entropy gradient.
		for i := range dlogits {
			dlogits[i] = probs[i] * invT
		}
		dlogits[labels[t]] -= invT

		m.Wo.AddOuterGrad(dlogits, st.H[t])
		m.Bo.AddVecGrad(dlogits)
		copy(dh, dhNext)
		m.Wo.MulVecT(dlogits, dh)

		z, r, c := st.Z[t], st.R[t], st.Cand[t]
		for i := range dhNext {
			dhNext[i] = 0
		}
		for i := 0; i < m.Hidden; i++ {
			dc[i] = dh[i] * z[i]
			dz[i] = dh[i] * (c[i] - hPrev[i])
			dhNext[i] += dh[i] * (1 - z[i])
			dac[i] = dc[i] * (1 - c[i]*c[i])
			daz[i] = dz[i] * z[i] * (1 - z[i])
			rh[i] = r[i] * hPrev[i]
			drh[i] = 0
		}
		m.Wh.AddOuterGrad(dac, st.X[t])
		m.Uh.AddOuterGrad(dac, rh)
		m.Bh.AddVecGrad(dac)
		m.Uh.MulVecT(dac, drh)
		for i := 0; i < m.Hidden; i++ {
			dr[i] = drh[i] * hPrev[i]
			dhNext[i] += drh[i] * r[i]
			dar[i] = dr[i] * r[i] * (1 - r[i])
		}
		m.Wz.AddOuterGrad(daz, st.X[t])
		m.Uz.AddOuterGrad(daz, hPrev)
		m.Bz.AddVecGrad(daz)
		m.Uz.MulVecT(daz, dhNext)

		m.Wr.AddOuterGrad(dar, st.X[t])
		m.Ur.AddOuterGrad(dar, hPrev)
		m.Br.AddVecGrad(dar)
		m.Ur.MulVecT(dar, dhNext)
	}
	return loss / float64(T)
}

// TrainSequence runs forward+backward, clips, and steps the optimiser.
// Returns the sequence loss.
func (m *GRUClassifier) TrainSequence(seq [][]float64, labels []int, opt *Adam, clip float64) float64 {
	st := m.Forward(seq)
	loss := m.Backward(st, labels)
	if clip > 0 {
		ClipGradients(clip, m.Params()...)
	}
	opt.Step()
	return loss
}

// Predict returns the argmax class per step.
func (m *GRUClassifier) Predict(seq [][]float64) []int {
	st := m.Forward(seq)
	out := make([]int, len(st.Probs))
	for t, p := range st.Probs {
		best := 0
		for i, v := range p {
			if v > p[best] {
				best = i
			}
		}
		out[t] = best
	}
	return out
}
