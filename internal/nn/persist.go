package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Model persistence uses encoding/gob over plain snapshot structs so saved
// detectors survive refactors of the live types.

type tensorSnap struct {
	R, C int
	W    []float64
}

func snap(t *Tensor) tensorSnap { return tensorSnap{R: t.R, C: t.C, W: append([]float64(nil), t.W...)} }

// restore rebuilds a tensor from its snapshot, validating the declared
// shape against the expected one AND against the payload length. A
// snapshot whose dims were corrupted (or hand-edited) used to load
// successfully here and then panic deep inside the first MulVec at
// inference time; now the load reports what is wrong with which tensor.
func restore(s tensorSnap, name string, wantR, wantC int) (*Tensor, error) {
	if s.R != wantR || s.C != wantC {
		return nil, fmt.Errorf("nn: tensor %s has shape (%d,%d), want (%d,%d)", name, s.R, s.C, wantR, wantC)
	}
	if len(s.W) != s.R*s.C {
		return nil, fmt.Errorf("nn: tensor %s carries %d weights for shape (%d,%d)", name, len(s.W), s.R, s.C)
	}
	t := NewTensor(s.R, s.C)
	copy(t.W, s.W)
	return t, nil
}

type gruSnap struct {
	In, Hidden, Classes int
	Tensors             []tensorSnap // order matches Params()
}

// SaveGRU writes the classifier to w.
func SaveGRU(w io.Writer, m *GRUClassifier) error {
	s := gruSnap{In: m.In, Hidden: m.Hidden, Classes: m.Classes}
	for _, p := range m.Params() {
		s.Tensors = append(s.Tensors, snap(p))
	}
	return gob.NewEncoder(w).Encode(s)
}

// LoadGRU reads a classifier written by SaveGRU, validating every
// restored tensor's dimensions against the snapshot's In/Hidden/Classes
// so a dimension-corrupted model fails at load, not at first inference.
func LoadGRU(r io.Reader) (*GRUClassifier, error) {
	var s gruSnap
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: loading GRU: %w", err)
	}
	if s.In < 1 || s.Hidden < 1 || s.Classes < 1 {
		return nil, fmt.Errorf("nn: GRU snapshot has dims in=%d hidden=%d classes=%d", s.In, s.Hidden, s.Classes)
	}
	m := &GRUClassifier{In: s.In, Hidden: s.Hidden, Classes: s.Classes}
	// Order matches Params(); shapes follow the gate equations: W* are
	// Hidden×In, U* Hidden×Hidden, B* Hidden×1, and the softmax head is
	// Classes×Hidden with a Classes×1 bias.
	slots := []struct {
		p    **Tensor
		name string
		r, c int
	}{
		{&m.Wz, "Wz", s.Hidden, s.In}, {&m.Uz, "Uz", s.Hidden, s.Hidden}, {&m.Bz, "Bz", s.Hidden, 1},
		{&m.Wr, "Wr", s.Hidden, s.In}, {&m.Ur, "Ur", s.Hidden, s.Hidden}, {&m.Br, "Br", s.Hidden, 1},
		{&m.Wh, "Wh", s.Hidden, s.In}, {&m.Uh, "Uh", s.Hidden, s.Hidden}, {&m.Bh, "Bh", s.Hidden, 1},
		{&m.Wo, "Wo", s.Classes, s.Hidden}, {&m.Bo, "Bo", s.Classes, 1},
	}
	if len(s.Tensors) != len(slots) {
		return nil, fmt.Errorf("nn: GRU snapshot has %d tensors, want %d", len(s.Tensors), len(slots))
	}
	for i, sl := range slots {
		t, err := restore(s.Tensors[i], sl.name, sl.r, sl.c)
		if err != nil {
			return nil, fmt.Errorf("nn: loading GRU: %w", err)
		}
		*sl.p = t
	}
	return m, nil
}

type aeSnap struct {
	Sizes   []int
	Tensors []tensorSnap
}

// SaveAutoencoder writes the autoencoder to w.
func SaveAutoencoder(w io.Writer, ae *Autoencoder) error {
	s := aeSnap{Sizes: ae.Sizes}
	for _, p := range ae.Params() {
		s.Tensors = append(s.Tensors, snap(p))
	}
	return gob.NewEncoder(w).Encode(s)
}

// LoadAutoencoder reads an autoencoder written by SaveAutoencoder,
// validating the layer chain (at least input+output) and every restored
// tensor's dimensions against the snapshot's Sizes.
func LoadAutoencoder(r io.Reader) (*Autoencoder, error) {
	var s aeSnap
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: loading autoencoder: %w", err)
	}
	if len(s.Sizes) < 2 {
		return nil, fmt.Errorf("nn: autoencoder snapshot declares %d layer sizes, want at least 2", len(s.Sizes))
	}
	for i, sz := range s.Sizes {
		if sz < 1 {
			return nil, fmt.Errorf("nn: autoencoder snapshot layer %d has size %d", i, sz)
		}
	}
	ae := &Autoencoder{Sizes: s.Sizes}
	if len(s.Tensors) != 2*(len(s.Sizes)-1) {
		return nil, fmt.Errorf("nn: autoencoder snapshot has %d tensors, want %d", len(s.Tensors), 2*(len(s.Sizes)-1))
	}
	for i := 0; i+1 < len(s.Sizes); i++ {
		w, err := restore(s.Tensors[2*i], fmt.Sprintf("layer %d weights", i), s.Sizes[i+1], s.Sizes[i])
		if err != nil {
			return nil, fmt.Errorf("nn: loading autoencoder: %w", err)
		}
		b, err := restore(s.Tensors[2*i+1], fmt.Sprintf("layer %d bias", i), s.Sizes[i+1], 1)
		if err != nil {
			return nil, fmt.Errorf("nn: loading autoencoder: %w", err)
		}
		ae.Layers = append(ae.Layers, &Dense{W: w, B: b, Tanh: i+2 < len(s.Sizes)})
	}
	return ae, nil
}
