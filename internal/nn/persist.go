package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Model persistence uses encoding/gob over plain snapshot structs so saved
// detectors survive refactors of the live types.

type tensorSnap struct {
	R, C int
	W    []float64
}

func snap(t *Tensor) tensorSnap { return tensorSnap{R: t.R, C: t.C, W: append([]float64(nil), t.W...)} }

func restore(s tensorSnap) *Tensor {
	t := NewTensor(s.R, s.C)
	copy(t.W, s.W)
	return t
}

type gruSnap struct {
	In, Hidden, Classes int
	Tensors             []tensorSnap // order matches Params()
}

// SaveGRU writes the classifier to w.
func SaveGRU(w io.Writer, m *GRUClassifier) error {
	s := gruSnap{In: m.In, Hidden: m.Hidden, Classes: m.Classes}
	for _, p := range m.Params() {
		s.Tensors = append(s.Tensors, snap(p))
	}
	return gob.NewEncoder(w).Encode(s)
}

// LoadGRU reads a classifier written by SaveGRU.
func LoadGRU(r io.Reader) (*GRUClassifier, error) {
	var s gruSnap
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: loading GRU: %w", err)
	}
	m := &GRUClassifier{In: s.In, Hidden: s.Hidden, Classes: s.Classes}
	ps := []**Tensor{&m.Wz, &m.Uz, &m.Bz, &m.Wr, &m.Ur, &m.Br, &m.Wh, &m.Uh, &m.Bh, &m.Wo, &m.Bo}
	if len(s.Tensors) != len(ps) {
		return nil, fmt.Errorf("nn: GRU snapshot has %d tensors, want %d", len(s.Tensors), len(ps))
	}
	for i, p := range ps {
		*p = restore(s.Tensors[i])
	}
	return m, nil
}

type aeSnap struct {
	Sizes   []int
	Tensors []tensorSnap
}

// SaveAutoencoder writes the autoencoder to w.
func SaveAutoencoder(w io.Writer, ae *Autoencoder) error {
	s := aeSnap{Sizes: ae.Sizes}
	for _, p := range ae.Params() {
		s.Tensors = append(s.Tensors, snap(p))
	}
	return gob.NewEncoder(w).Encode(s)
}

// LoadAutoencoder reads an autoencoder written by SaveAutoencoder.
func LoadAutoencoder(r io.Reader) (*Autoencoder, error) {
	var s aeSnap
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: loading autoencoder: %w", err)
	}
	ae := &Autoencoder{Sizes: s.Sizes}
	if len(s.Tensors) != 2*(len(s.Sizes)-1) {
		return nil, fmt.Errorf("nn: autoencoder snapshot has %d tensors, want %d", len(s.Tensors), 2*(len(s.Sizes)-1))
	}
	for i := 0; i+1 < len(s.Sizes); i++ {
		ae.Layers = append(ae.Layers, &Dense{
			W:    restore(s.Tensors[2*i]),
			B:    restore(s.Tensors[2*i+1]),
			Tanh: i+2 < len(s.Sizes),
		})
	}
	return ae, nil
}
