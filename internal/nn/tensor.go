// Package nn is the neural-network substrate for CLAP: a GRU sequence
// classifier that exposes its per-step gate activations (the inter-packet
// context carrier, §3.3(a)-(b)), a deep autoencoder trained with L1 loss
// (§3.3(c)), and the Adam optimiser, all in pure Go on float64.
//
// Everything is deterministic given the caller-supplied *rand.Rand.
// Training is single-threaded unless stated otherwise; the inference paths
// (GRU Forward/ForwardGates/ForwardGatesBatch/Predict, Autoencoder
// Reconstruct/Error/Errors/ErrorsBatch)
// keep all scratch state per-call or pooled and are safe for concurrent use
// on a model that is no longer being mutated — the contract the parallel
// scoring engine (internal/engine) relies on. Gradient correctness is
// verified against finite differences in the package tests.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major matrix (or vector when C==1) together with
// its gradient accumulator.
type Tensor struct {
	R, C int
	W    []float64 // parameters, len R*C
	G    []float64 // accumulated gradients, same shape
}

// NewTensor allocates a zero tensor.
func NewTensor(r, c int) *Tensor {
	return &Tensor{R: r, C: c, W: make([]float64, r*c), G: make([]float64, r*c)}
}

// NewXavier allocates a tensor initialised with Xavier/Glorot uniform
// scaling, the init used for both models.
func NewXavier(r, c int, rng *rand.Rand) *Tensor {
	t := NewTensor(r, c)
	limit := math.Sqrt(6.0 / float64(r+c))
	for i := range t.W {
		t.W[i] = (rng.Float64()*2 - 1) * limit
	}
	return t
}

// At returns element (i,j).
func (t *Tensor) At(i, j int) float64 { return t.W[i*t.C+j] }

// ZeroGrad clears the gradient accumulator.
func (t *Tensor) ZeroGrad() {
	for i := range t.G {
		t.G[i] = 0
	}
}

// MulVec computes out = W·x (R×C times C) into out (length R). out may not
// alias x.
func (t *Tensor) MulVec(x, out []float64) {
	if len(x) != t.C || len(out) != t.R {
		panic(fmt.Sprintf("nn: MulVec shape mismatch: (%d,%d)·%d into %d", t.R, t.C, len(x), len(out)))
	}
	for i := 0; i < t.R; i++ {
		row := t.W[i*t.C : (i+1)*t.C]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
}

// mulMatLane is MulMat's batch-blocking factor: six batch rows ride one
// pass over each weight row. The block cuts weight-row loads 6× (one wv
// load feeds six multiplies) and gives the inner loop six independent
// accumulator chains instead of MulVec's one — together they lift the
// kernel from load-bound to near the scalar FP throughput limit. Six is
// the measured sweet spot: eight lanes spill accumulators to the stack and
// run slower, four leaves throughput on the table.
const mulMatLane = 6

// mul6 is MulMat's inner kernel: one weight row against six batch rows.
// It lives in its own function so the register allocator sees only the
// hot loop, and the re-slicing to len(row) up front lets the compiler
// drop every bounds check inside it. Each accumulator sums over j in
// ascending order — MulVec's order exactly.
func mul6(row, x0, x1, x2, x3, x4, x5 []float64) (s0, s1, s2, s3, s4, s5 float64) {
	n := len(row)
	x0, x1, x2 = x0[:n], x1[:n], x2[:n]
	x3, x4, x5 = x3[:n], x4[:n], x5[:n]
	for j, wv := range row {
		s0 += wv * x0[j]
		s1 += wv * x1[j]
		s2 += wv * x2[j]
		s3 += wv * x3[j]
		s4 += wv * x4[j]
		s5 += wv * x5[j]
	}
	return
}

// mul4 is the tail kernel for the up-to-five rows left over after the
// six-lane blocks.
func mul4(row, x0, x1, x2, x3 []float64) (s0, s1, s2, s3 float64) {
	n := len(row)
	x0, x1, x2, x3 = x0[:n], x1[:n], x2[:n], x3[:n]
	for j, wv := range row {
		s0 += wv * x0[j]
		s1 += wv * x1[j]
		s2 += wv * x2[j]
		s3 += wv * x3[j]
	}
	return
}

// MulMat computes Out = X·Wᵀ for a row-major batch X of n rows (each of
// length C) into Out (n rows of length R), both flat. Each output element
// accumulates over j in ascending order — exactly MulVec's order — so the
// result is bit-identical to n MulVec calls at any batch size; only the
// wall clock changes. Out may not alias X.
func (t *Tensor) MulMat(x []float64, n int, out []float64) {
	if len(x) != n*t.C || len(out) != n*t.R {
		panic(fmt.Sprintf("nn: MulMat shape mismatch: (%d,%d) batch %d over %d into %d", t.R, t.C, n, len(x), len(out)))
	}
	C, R := t.C, t.R
	b := 0
	for ; b+mulMatLane <= n; b += mulMatLane {
		x0, x1, x2 := x[(b+0)*C:(b+1)*C], x[(b+1)*C:(b+2)*C], x[(b+2)*C:(b+3)*C]
		x3, x4, x5 := x[(b+3)*C:(b+4)*C], x[(b+4)*C:(b+5)*C], x[(b+5)*C:(b+6)*C]
		o0, o1, o2 := out[(b+0)*R:(b+1)*R], out[(b+1)*R:(b+2)*R], out[(b+2)*R:(b+3)*R]
		o3, o4, o5 := out[(b+3)*R:(b+4)*R], out[(b+4)*R:(b+5)*R], out[(b+5)*R:(b+6)*R]
		for i := 0; i < R; i++ {
			o0[i], o1[i], o2[i], o3[i], o4[i], o5[i] = mul6(t.W[i*C:i*C+C], x0, x1, x2, x3, x4, x5)
		}
	}
	// Tail: a 4-lane pass keeps up to five leftover rows off the serial
	// path (batch sizes are rarely multiples of six), then MulVec mops up.
	if b+4 <= n {
		x0, x1 := x[(b+0)*C:(b+1)*C], x[(b+1)*C:(b+2)*C]
		x2, x3 := x[(b+2)*C:(b+3)*C], x[(b+3)*C:(b+4)*C]
		o0, o1 := out[(b+0)*R:(b+1)*R], out[(b+1)*R:(b+2)*R]
		o2, o3 := out[(b+2)*R:(b+3)*R], out[(b+3)*R:(b+4)*R]
		for i := 0; i < R; i++ {
			o0[i], o1[i], o2[i], o3[i] = mul4(t.W[i*C:i*C+C], x0, x1, x2, x3)
		}
		b += 4
	}
	for ; b < n; b++ {
		t.MulVec(x[b*C:b*C+C], out[b*R:b*R+R])
	}
}

// MulVecT computes out += Wᵀ·g (C×R times R) accumulated into out (length C).
func (t *Tensor) MulVecT(g, out []float64) {
	if len(g) != t.R || len(out) != t.C {
		panic(fmt.Sprintf("nn: MulVecT shape mismatch: (%d,%d)ᵀ·%d into %d", t.R, t.C, len(g), len(out)))
	}
	for i := 0; i < t.R; i++ {
		gi := g[i]
		if gi == 0 {
			continue
		}
		row := t.W[i*t.C : (i+1)*t.C]
		for j, v := range row {
			out[j] += v * gi
		}
	}
}

// AddOuterGrad accumulates G += g·xᵀ, the weight gradient of out = W·x.
func (t *Tensor) AddOuterGrad(g, x []float64) {
	for i := 0; i < t.R; i++ {
		gi := g[i]
		if gi == 0 {
			continue
		}
		grow := t.G[i*t.C : (i+1)*t.C]
		for j, xv := range x {
			grow[j] += gi * xv
		}
	}
}

// AddVecGrad accumulates G += g for bias tensors (C==1 semantics not
// required; adds element-wise over the flat buffer).
func (t *Tensor) AddVecGrad(g []float64) {
	for i, v := range g {
		t.G[i] += v
	}
}

// GradNorm returns the L2 norm of the gradient buffer.
func (t *Tensor) GradNorm() float64 {
	var s float64
	for _, g := range t.G {
		s += g * g
	}
	return math.Sqrt(s)
}

// sigmoid is the logistic function.
func sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Softmax writes the softmax of logits into out (stable form).
func Softmax(logits, out []float64) {
	max := math.Inf(-1)
	for _, v := range logits {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - max)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}

// ClipGradients rescales all gradients so their joint L2 norm does not
// exceed maxNorm. Returns the pre-clip norm.
func ClipGradients(maxNorm float64, ts ...*Tensor) float64 {
	var total float64
	for _, t := range ts {
		for _, g := range t.G {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, t := range ts {
			for i := range t.G {
				t.G[i] *= scale
			}
		}
	}
	return norm
}

// Adam implements the Adam optimiser over registered tensors.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t      int
	params []*Tensor
	m, v   [][]float64
}

// NewAdam creates an optimiser with the conventional defaults and the given
// learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Register adds tensors to be updated by Step.
func (a *Adam) Register(ts ...*Tensor) {
	for _, t := range ts {
		a.params = append(a.params, t)
		a.m = append(a.m, make([]float64, len(t.W)))
		a.v = append(a.v, make([]float64, len(t.W)))
	}
}

// Step applies one Adam update from the accumulated gradients and zeroes
// them.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for k, p := range a.params {
		m, v := a.m[k], a.v[k]
		for i, g := range p.G {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			p.W[i] -= a.LR * (m[i] / bc1) / (math.Sqrt(v[i]/bc2) + a.Eps)
			p.G[i] = 0
		}
	}
}
