package nn

// Bit-identity tests for the batched inference kernels: MulMat vs MulVec,
// ErrorsBatch vs Error, ForwardGatesBatch vs ForwardGates. "Identical"
// everywhere below means float64 bit equality (==), not tolerance — the
// batched kernels preserve the unbatched accumulation order by
// construction, and these tests pin that contract at batch sizes on both
// sides of the 4-lane blocking.

import (
	"math/rand"
	"sync"
	"testing"
)

func randVecs(n, w int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, w)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

func TestMulMatMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, shape := range [][2]int{{13, 7}, {1, 5}, {4, 4}, {160, 345}} {
		r, c := shape[0], shape[1]
		w := NewXavier(r, c, rng)
		for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 23} {
			x := make([]float64, n*c)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			got := make([]float64, n*r)
			w.MulMat(x, n, got)
			want := make([]float64, r)
			for b := 0; b < n; b++ {
				w.MulVec(x[b*c:(b+1)*c], want)
				for i := range want {
					if got[b*r+i] != want[i] {
						t.Fatalf("shape (%d,%d) batch %d: row %d element %d = %v, MulVec %v",
							r, c, n, b, i, got[b*r+i], want[i])
					}
				}
			}
		}
	}
}

func TestMulMatShapePanics(t *testing.T) {
	w := NewTensor(3, 2)
	for _, bad := range []func(){
		func() { w.MulMat(make([]float64, 5), 2, make([]float64, 6)) }, // x too short
		func() { w.MulMat(make([]float64, 4), 2, make([]float64, 5)) }, // out too short
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("MulMat accepted a mismatched shape")
				}
			}()
			bad()
		}()
	}
}

func TestErrorsBatchBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ae := NewAutoencoder([]int{17, 9, 5, 9, 17}, rng)
	xs := randVecs(23, 17, rng)

	want := make([]float64, len(xs))
	for i, x := range xs {
		want[i] = ae.Error(x)
	}

	// Whole stack at once, then every chunking a micro-batching caller
	// could produce — all must reproduce the unbatched errors bit for bit.
	for _, batch := range []int{1, 2, 3, 4, 5, 7, 8, 16, len(xs)} {
		at := 0
		for lo := 0; lo < len(xs); lo += batch {
			hi := lo + batch
			if hi > len(xs) {
				hi = len(xs)
			}
			got := ae.ErrorsBatch(xs[lo:hi])
			for k, e := range got {
				if e != want[at+k] {
					t.Fatalf("batch=%d: window %d error %v, unbatched %v", batch, at+k, e, want[at+k])
				}
			}
			at = hi
		}
	}

	// And against the pooled serial batch path.
	serial := ae.Errors(xs)
	batched := ae.ErrorsBatch(xs)
	for i := range serial {
		if serial[i] != batched[i] {
			t.Fatalf("Errors[%d]=%v but ErrorsBatch[%d]=%v", i, serial[i], i, batched[i])
		}
	}

	if got := ae.ErrorsBatch(nil); len(got) != 0 {
		t.Fatalf("ErrorsBatch(nil) returned %d errors", len(got))
	}
}

func TestErrorsBatchWidthPanics(t *testing.T) {
	ae := NewAutoencoder([]int{6, 3, 6}, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("ErrorsBatch accepted a mis-sized window")
		}
	}()
	ae.ErrorsBatch([][]float64{make([]float64, 5)})
}

func TestForwardGatesBatchBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewGRUClassifier(8, 6, 3, rng)
	for _, T := range []int{0, 1, 2, 3, 4, 5, 11, 32} {
		seq := randVecs(T, 8, rng)
		wantZ, wantR := m.ForwardGates(seq)
		gotZ, gotR := m.ForwardGatesBatch(seq)
		if len(gotZ) != len(wantZ) || len(gotR) != len(wantR) {
			t.Fatalf("T=%d: batched lengths (%d,%d), unbatched (%d,%d)", T, len(gotZ), len(gotR), len(wantZ), len(wantR))
		}
		for ts := 0; ts < T; ts++ {
			for i := range wantZ[ts] {
				if gotZ[ts][i] != wantZ[ts][i] {
					t.Fatalf("T=%d: Z[%d][%d] = %v, unbatched %v", T, ts, i, gotZ[ts][i], wantZ[ts][i])
				}
				if gotR[ts][i] != wantR[ts][i] {
					t.Fatalf("T=%d: R[%d][%d] = %v, unbatched %v", T, ts, i, gotR[ts][i], wantR[ts][i])
				}
			}
		}
	}
}

// TestForwardGatesBatchPooledBitIdentity exercises the pooled variant
// through repeated calls so recycled (dirty) backings are actually reused
// — the clear(hPrev) regression test.
func TestForwardGatesBatchPooledBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	m := NewGRUClassifier(8, 6, 3, rng)
	for rep := 0; rep < 4; rep++ {
		for _, T := range []int{3, 11, 1, 7} {
			seq := randVecs(T, 8, rng)
			wantZ, wantR := m.ForwardGates(seq)
			gotZ, gotR, release := m.ForwardGatesBatchPooled(seq)
			for ts := 0; ts < T; ts++ {
				for i := range wantZ[ts] {
					if gotZ[ts][i] != wantZ[ts][i] || gotR[ts][i] != wantR[ts][i] {
						t.Fatalf("rep %d T=%d: pooled gates diverged at step %d unit %d", rep, T, ts, i)
					}
				}
			}
			release()
		}
	}
}

// TestErrorsBatchConcurrent overlaps batched and unbatched inference on one
// shared model — the -race regression test for the pooled batch scratch.
func TestErrorsBatchConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ae := NewAutoencoder([]int{12, 6, 12}, rng)
	xs := randVecs(40, 12, rng)
	want := make([]float64, len(xs))
	for i, x := range xs {
		want[i] = ae.Error(x)
	}

	var wg sync.WaitGroup
	fail := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				// Alternate batch sizes so pooled scratch of different
				// generations interleaves; odd goroutines cross-check the
				// per-window path concurrently.
				if g%2 == 1 {
					i := (g + rep) % len(xs)
					if e := ae.Error(xs[i]); e != want[i] {
						fail <- "concurrent Error diverged"
						return
					}
					continue
				}
				lo := (g * 3) % 16
				got := ae.ErrorsBatch(xs[lo : lo+17])
				for k, e := range got {
					if e != want[lo+k] {
						fail <- "concurrent ErrorsBatch diverged"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
}
