package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// numericalGrad estimates dLoss/dW[i] by central differences.
func numericalGrad(param *Tensor, i int, eps float64, loss func() float64) float64 {
	orig := param.W[i]
	param.W[i] = orig + eps
	lp := loss()
	param.W[i] = orig - eps
	lm := loss()
	param.W[i] = orig
	return (lp - lm) / (2 * eps)
}

func TestGRUGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewGRUClassifier(3, 4, 3, rng)
	T := 6
	seq := make([][]float64, T)
	labels := make([]int, T)
	for i := range seq {
		seq[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		labels[i] = rng.Intn(3)
	}
	lossFn := func() float64 { return m.Forward(seq).Loss(labels) }

	st := m.Forward(seq)
	m.Backward(st, labels)

	const eps = 1e-6
	for pi, p := range m.Params() {
		for i := 0; i < len(p.W); i += 3 { // sample every third weight
			want := numericalGrad(p, i, eps, lossFn)
			got := p.G[i]
			if diff := math.Abs(got - want); diff > 1e-5 && diff > 1e-3*math.Abs(want) {
				t.Fatalf("param %d weight %d: analytic %g vs numeric %g", pi, i, got, want)
			}
		}
	}
}

func TestAutoencoderGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ae := NewAutoencoder([]int{5, 4, 2, 4, 5}, rng)
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	lossFn := func() float64 {
		y := ae.Reconstruct(x)
		var s float64
		for i := range y {
			s += math.Abs(y[i] - x[i])
		}
		return s / float64(len(x))
	}
	base := ae.Reconstruct(x)
	acts := ae.forward(x)
	ae.backward(acts)

	const eps = 1e-6
	for pi, p := range ae.Params() {
		for i := 0; i < len(p.W); i += 2 {
			want := numericalGrad(p, i, eps, lossFn)
			got := p.G[i]
			// |.| is non-differentiable where y==x; skip coordinates whose
			// perturbation could cross the kink.
			nearKink := false
			for j := range base {
				if math.Abs(base[j]-x[j]) < 1e-4 {
					nearKink = true
				}
			}
			if nearKink {
				continue
			}
			if diff := math.Abs(got - want); diff > 1e-5 && diff > 1e-3*math.Abs(want) {
				t.Fatalf("param %d weight %d: analytic %g vs numeric %g", pi, i, got, want)
			}
		}
	}
}

func TestGRULearnsTemporalPattern(t *testing.T) {
	// Task: label[t] = 1 iff input at t-1 had its first component > 0.
	// Impossible without memory, so success demonstrates working BPTT.
	rng := rand.New(rand.NewSource(3))
	m := NewGRUClassifier(2, 8, 2, rng)
	opt := NewAdam(0.01)
	opt.Register(m.Params()...)

	mkSeq := func() ([][]float64, []int) {
		T := 12
		seq := make([][]float64, T)
		labels := make([]int, T)
		prev := 0
		for i := range seq {
			b := rng.Intn(2)
			seq[i] = []float64{float64(b)*2 - 1, rng.NormFloat64() * 0.1}
			labels[i] = prev
			prev = b
		}
		return seq, labels
	}
	for epoch := 0; epoch < 300; epoch++ {
		seq, labels := mkSeq()
		m.TrainSequence(seq, labels, opt, 5)
	}
	var acc float64
	const trials = 50
	for i := 0; i < trials; i++ {
		seq, labels := mkSeq()
		acc += m.Forward(seq).Accuracy(labels)
	}
	acc /= trials
	if acc < 0.95 {
		t.Errorf("temporal-pattern accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestAutoencoderDetectsOutOfDistribution(t *testing.T) {
	// Train on points from a 2-D manifold embedded in 6-D; anomalies are
	// off-manifold. Reconstruction error must separate them.
	rng := rand.New(rand.NewSource(4))
	ae := NewAutoencoder([]int{6, 4, 2, 4, 6}, rng)
	opt := NewAdam(0.005)
	opt.Register(ae.Params()...)

	sample := func() []float64 {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		return []float64{a, b, a + b, a - b, a * 0.5, b * 0.5}
	}
	var batch [][]float64
	for epoch := 0; epoch < 600; epoch++ {
		batch = batch[:0]
		for i := 0; i < 16; i++ {
			batch = append(batch, sample())
		}
		ae.TrainBatch(batch, opt, 5)
	}
	var benign, anomalous float64
	const trials = 100
	for i := 0; i < trials; i++ {
		benign += ae.Error(sample())
		x := sample()
		x[2] = -x[2] // break the manifold constraint
		anomalous += ae.Error(x)
	}
	benign /= trials
	anomalous /= trials
	if anomalous < benign*2 {
		t.Errorf("anomaly error %.4f not well above benign %.4f", anomalous, benign)
	}
}

func TestAdamMinimizesQuadratic(t *testing.T) {
	p := NewTensor(3, 1)
	p.W[0], p.W[1], p.W[2] = 5, -7, 2
	opt := NewAdam(0.05)
	opt.Register(p)
	target := []float64{1, 2, 3}
	for i := 0; i < 2000; i++ {
		for j := range p.W {
			p.G[j] = 2 * (p.W[j] - target[j])
		}
		opt.Step()
	}
	for j := range p.W {
		if math.Abs(p.W[j]-target[j]) > 1e-2 {
			t.Errorf("param %d = %g, want %g", j, p.W[j], target[j])
		}
	}
}

func TestClipGradients(t *testing.T) {
	a := NewTensor(2, 2)
	b := NewTensor(2, 1)
	for i := range a.G {
		a.G[i] = 10
	}
	b.G[0], b.G[1] = 10, 10
	pre := ClipGradients(1.0, a, b)
	if math.Abs(pre-math.Sqrt(600)) > 1e-9 {
		t.Errorf("pre-clip norm = %g, want %g", pre, math.Sqrt(600))
	}
	var total float64
	for _, ten := range []*Tensor{a, b} {
		for _, g := range ten.G {
			total += g * g
		}
	}
	if math.Abs(math.Sqrt(total)-1.0) > 1e-9 {
		t.Errorf("post-clip norm = %g, want 1", math.Sqrt(total))
	}
	// Below the threshold nothing changes.
	a.ZeroGrad()
	b.ZeroGrad()
	a.G[0] = 0.5
	if ClipGradients(1.0, a, b); a.G[0] != 0.5 {
		t.Error("clip modified a gradient already under the bound")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 32 {
			return true
		}
		logits := make([]float64, len(raw))
		for i, v := range raw {
			logits[i] = math.Mod(v, 500) // keep magnitudes finite but large
			if math.IsNaN(logits[i]) {
				logits[i] = 0
			}
		}
		out := make([]float64, len(logits))
		Softmax(logits, out)
		var sum float64
		for _, p := range out {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxExtremeLogits(t *testing.T) {
	out := make([]float64, 3)
	Softmax([]float64{1000, -1000, 999}, out)
	if math.IsNaN(out[0]) || out[0] < 0.7 {
		t.Errorf("softmax unstable for large logits: %v", out)
	}
}

func TestGateActivationsInUnitInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewGRUClassifier(4, 6, 3, rng)
	seq := make([][]float64, 10)
	for i := range seq {
		seq[i] = []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10, rng.NormFloat64(), rng.NormFloat64()}
	}
	st := m.Forward(seq)
	for t2, z := range st.Z {
		for i := range z {
			if z[i] <= 0 || z[i] >= 1 || st.R[t2][i] <= 0 || st.R[t2][i] >= 1 {
				t.Fatalf("gate activation out of (0,1) at step %d", t2)
			}
		}
	}
}

func TestGRUPersistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewGRUClassifier(3, 5, 4, rng)
	seq := [][]float64{{1, 2, 3}, {0.5, -1, 2}}
	want := m.Forward(seq).Probs

	var buf bytes.Buffer
	if err := SaveGRU(&buf, m); err != nil {
		t.Fatalf("SaveGRU: %v", err)
	}
	m2, err := LoadGRU(&buf)
	if err != nil {
		t.Fatalf("LoadGRU: %v", err)
	}
	got := m2.Forward(seq).Probs
	for t2 := range want {
		for i := range want[t2] {
			if math.Abs(got[t2][i]-want[t2][i]) > 1e-12 {
				t.Fatalf("probs differ after round trip at (%d,%d)", t2, i)
			}
		}
	}
}

func TestAutoencoderPersistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ae := NewAutoencoder([]int{4, 3, 2, 3, 4}, rng)
	x := []float64{0.1, -0.5, 2, 0.7}
	want := ae.Error(x)

	var buf bytes.Buffer
	if err := SaveAutoencoder(&buf, ae); err != nil {
		t.Fatalf("SaveAutoencoder: %v", err)
	}
	ae2, err := LoadAutoencoder(&buf)
	if err != nil {
		t.Fatalf("LoadAutoencoder: %v", err)
	}
	if got := ae2.Error(x); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Error after round trip = %g, want %g", got, want)
	}
	if ae2.BottleneckSize() != 2 {
		t.Errorf("BottleneckSize = %d, want 2", ae2.BottleneckSize())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadGRU(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("LoadGRU should fail on garbage")
	}
	if _, err := LoadAutoencoder(bytes.NewReader(nil)); err == nil {
		t.Error("LoadAutoencoder should fail on empty input")
	}
}

func TestNewAutoencoderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched input/output sizes should panic")
		}
	}()
	NewAutoencoder([]int{4, 2, 5}, rand.New(rand.NewSource(1)))
}

func TestMulVecShapePanics(t *testing.T) {
	m := NewTensor(2, 3)
	defer func() {
		if recover() == nil {
			t.Error("MulVec with wrong shapes should panic")
		}
	}()
	m.MulVec(make([]float64, 4), make([]float64, 2))
}

func TestTensorXavierRange(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tn := NewXavier(30, 20, rng)
	limit := math.Sqrt(6.0 / 50.0)
	for _, w := range tn.W {
		if math.Abs(w) > limit {
			t.Fatalf("weight %g outside Xavier limit %g", w, limit)
		}
	}
	var mean float64
	for _, w := range tn.W {
		mean += w
	}
	mean /= float64(len(tn.W))
	if math.Abs(mean) > limit/5 {
		t.Errorf("weights look biased: mean %g", mean)
	}
}

func BenchmarkGRUForward32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewGRUClassifier(32, 32, 22, rng)
	seq := make([][]float64, 20)
	for i := range seq {
		seq[i] = make([]float64, 32)
		for j := range seq[i] {
			seq[i][j] = rng.NormFloat64()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(seq)
	}
}

func BenchmarkAutoencoderError345(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ae := NewAutoencoder([]int{345, 160, 80, 40, 80, 160, 345}, rng)
	x := make([]float64, 345)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ae.Error(x)
	}
}

func TestTrainBatchParallelMatchesSequential(t *testing.T) {
	mk := func() (*Autoencoder, *Adam) {
		rng := rand.New(rand.NewSource(11))
		ae := NewAutoencoder([]int{8, 5, 3, 5, 8}, rng)
		opt := NewAdam(0.01)
		opt.Register(ae.Params()...)
		return ae, opt
	}
	rng := rand.New(rand.NewSource(12))
	batch := make([][]float64, 16)
	for i := range batch {
		batch[i] = make([]float64, 8)
		for j := range batch[i] {
			batch[i][j] = rng.NormFloat64()
		}
	}
	seq, seqOpt := mk()
	par, parOpt := mk()
	for step := 0; step < 5; step++ {
		l1 := seq.TrainBatch(batch, seqOpt, 5)
		l2 := par.TrainBatchParallel(batch, parOpt, 5, 2)
		if math.Abs(l1-l2) > 1e-9 {
			t.Fatalf("step %d: losses diverge: %g vs %g", step, l1, l2)
		}
	}
	x := batch[0]
	if math.Abs(seq.Error(x)-par.Error(x)) > 1e-9 {
		t.Fatalf("models diverged after parallel training: %g vs %g", seq.Error(x), par.Error(x))
	}
}

func TestTrainBatchParallelSmallBatchFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ae := NewAutoencoder([]int{4, 2, 4}, rng)
	opt := NewAdam(0.01)
	opt.Register(ae.Params()...)
	// A 2-sample batch with 4 workers must not panic or lose samples.
	batch := [][]float64{{1, 0, 0, 0}, {0, 1, 0, 0}}
	if loss := ae.TrainBatchParallel(batch, opt, 5, 4); loss <= 0 {
		t.Fatalf("loss = %g", loss)
	}
}

func BenchmarkTrainBatchParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ae := NewAutoencoder([]int{345, 160, 80, 40, 80, 160, 345}, rng)
	opt := NewAdam(1e-3)
	opt.Register(ae.Params()...)
	batch := make([][]float64, 32)
	for i := range batch {
		batch[i] = make([]float64, 345)
		for j := range batch[i] {
			batch[i][j] = rng.NormFloat64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ae.TrainBatchParallel(batch, opt, 5, 2)
	}
}
