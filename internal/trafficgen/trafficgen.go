// Package trafficgen synthesizes benign backbone-style TCP/IPv4 traffic,
// standing in for the MAWI archive the paper trains on (§4.1). Captures are
// payload-stripped (lengths and checksums reflect the original payload),
// exactly like MAWI.
//
// The generator's job is to cover the benign *header-context* distribution:
// every connection lifecycle a wide-area trace contains — full and abortive
// closes, half-open flows, mid-stream pickups, retransmissions and
// out-of-window duplicates, keepalives, delayed ACKs, assorted option
// negotiation — with heavy-tailed flow sizes and diverse hosts. Everything
// is deterministic under Config.Seed.
package trafficgen

import (
	"math"
	"math/rand"
	"time"

	"clap/internal/flow"
	"clap/internal/packet"
)

// Config controls generation.
type Config struct {
	Seed        int64
	Connections int
	// Start is the capture start time; defaults to a fixed instant so runs
	// are reproducible.
	Start time.Time
}

// DefaultConfig generates n connections with a fixed seed.
func DefaultConfig(n int) Config {
	return Config{Seed: 1, Connections: n, Start: time.Unix(1586235600, 0)} // 2020-04-07 14:00 JST, the MAWI capture
}

// Common server ports weighted roughly like backbone traffic.
var serverPorts = []uint16{443, 443, 443, 80, 80, 8080, 22, 25, 993, 110, 21, 3306, 5432, 53}

// appProfile shapes the data exchange of a connection.
type appProfile int

const (
	appWeb         appProfile = iota // small request, heavy-tailed response
	appInteractive                   // many small alternating turns
	appBulkUpload                    // client streams data
	appShort                         // tiny exchange
)

// closeProfile shapes connection termination.
type closeProfile int

const (
	closeFIN closeProfile = iota
	closeFINServer
	closeRST
	closeNone      // half-open: capture ends mid-connection
	closeMidStream // capture starts mid-connection too
)

// Generate produces benign connections.
func Generate(cfg Config) []*flow.Connection {
	if cfg.Start.IsZero() {
		cfg.Start = time.Unix(1586235600, 0)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	conns := make([]*flow.Connection, 0, cfg.Connections)
	// Connections start staggered across the capture window.
	at := cfg.Start
	for i := 0; i < cfg.Connections; i++ {
		at = at.Add(time.Duration(rng.Intn(40)+1) * time.Millisecond)
		conns = append(conns, genConnection(rng, at))
	}
	return conns
}

// GeneratePackets generates and flattens to a time-ordered stream.
func GeneratePackets(cfg Config) []*packet.Packet {
	return flow.Flatten(Generate(cfg))
}

// session tracks the live state of one synthetic connection.
type session struct {
	rng    *rand.Rand
	conn   *flow.Connection
	now    time.Time
	rtt    time.Duration
	seq    [2]uint32
	ackdTo [2]uint32 // highest ack each side has *sent*
	tsval  [2]uint32
	tsEcho [2]uint32
	useTS  bool
	useWS  bool
	wscale [2]uint8
	mss    uint16
	win    [2]uint16
	ttl    [2]uint8
	ipid   [2]uint16
	ip     [2][4]byte
	port   [2]uint16
	tosVal uint8
}

func randIP(rng *rand.Rand, private bool) [4]byte {
	if private {
		return [4]byte{10, uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(254) + 1)}
	}
	// Public-looking space, avoiding reserved first octets.
	first := []uint8{23, 52, 93, 104, 133, 151, 172, 185, 203, 210}[rng.Intn(10)]
	return [4]byte{first, uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(254) + 1)}
}

func genConnection(rng *rand.Rand, start time.Time) *flow.Connection {
	s := &session{
		rng:  rng,
		conn: &flow.Connection{},
		now:  start,
		rtt:  time.Duration(2+rng.Intn(120)) * time.Millisecond,
	}
	s.ip[0] = randIP(rng, rng.Intn(3) == 0)
	s.ip[1] = randIP(rng, false)
	s.port[0] = uint16(32768 + rng.Intn(28000))
	s.port[1] = serverPorts[rng.Intn(len(serverPorts))]
	s.conn.Key = flow.Key{
		Client: flow.Endpoint{IP: s.ip[0], Port: s.port[0]},
		Server: flow.Endpoint{IP: s.ip[1], Port: s.port[1]},
	}
	s.seq[0] = rng.Uint32()
	s.seq[1] = rng.Uint32()
	s.useTS = rng.Intn(10) < 8
	s.useWS = rng.Intn(10) < 8
	s.tsval[0] = rng.Uint32() >> 8
	s.tsval[1] = rng.Uint32() >> 8
	s.mss = []uint16{1460, 1460, 1460, 1440, 1400, 1380, 9000}[rng.Intn(7)]
	s.wscale[0] = uint8(rng.Intn(10))
	s.wscale[1] = uint8(rng.Intn(10))
	s.win[0] = uint16(8192 + rng.Intn(57343))
	s.win[1] = uint16(8192 + rng.Intn(57343))
	// Observed TTL at the monitor: initial 64/128/255 minus 1..24 hops.
	for d := 0; d < 2; d++ {
		base := []uint8{64, 64, 64, 128, 255}[rng.Intn(5)]
		s.ttl[d] = base - uint8(1+rng.Intn(24))
		s.ipid[d] = uint16(rng.Intn(65536))
	}
	if rng.Intn(12) == 0 {
		s.tosVal = []uint8{0x10, 0x08, 0x28, 0xb8}[rng.Intn(4)]
	}

	app := appProfile(rng.Intn(4))
	cls := pickClose(rng)

	if cls == closeMidStream {
		s.runMidStream(app)
		return s.conn
	}
	s.handshake()
	s.exchange(app)
	s.teardown(cls)
	return s.conn
}

func pickClose(rng *rand.Rand) closeProfile {
	r := rng.Intn(100)
	switch {
	case r < 55:
		return closeFIN
	case r < 70:
		return closeFINServer
	case r < 85:
		return closeRST
	case r < 94:
		return closeNone
	default:
		return closeMidStream
	}
}

// advance moves the session clock by a jittered fraction of the RTT.
func (s *session) advance(frac float64) {
	ns := float64(s.rtt.Nanoseconds()) * frac * (0.6 + s.rng.Float64()*0.8)
	s.now = s.now.Add(time.Duration(ns))
	ms := uint32(ns/1e6) + 1
	s.tsval[0] += ms
	s.tsval[1] += ms
}

// emit constructs, finalizes and appends one packet from direction d.
func (s *session) emit(d flow.Direction, flags packet.Flags, payload int, opts func(*packet.Builder)) *packet.Packet {
	b := packet.NewBuilder(s.ip[d], s.ip[1-d], s.port[d], s.port[1-d]).
		Seq(s.seq[d]).Flags(flags).Window(s.win[d]).
		TTL(s.ttl[d]).TOS(s.tosVal).ID(s.ipid[d]).
		PayloadLen(payload).Time(s.now)
	s.ipid[d]++
	if flags.Has(packet.ACK) {
		b.Ack(s.seq[1-d])
		s.ackdTo[d] = s.seq[1-d]
	}
	if s.useTS {
		b.Timestamps(s.tsval[d], s.tsEcho[d])
	}
	if opts != nil {
		opts(b)
	}
	p := b.Build()
	if s.useTS {
		s.tsEcho[1-d] = s.tsval[d]
	}
	adv := uint32(payload)
	if flags.Has(packet.SYN) {
		adv++
	}
	if flags.Has(packet.FIN) {
		adv++
	}
	s.seq[d] += adv
	s.conn.Append(p, flow.Direction(d))
	return p
}

func (s *session) handshake() {
	s.emit(flow.ClientToServer, packet.SYN, 0, func(b *packet.Builder) {
		b.MSS(s.mss)
		if s.useWS {
			b.WScale(s.wscale[0])
		}
		if s.rng.Intn(10) < 7 {
			b.SACKPermitted()
		}
	})
	// Occasional SYN retransmission (lost SYN-ACK path).
	if s.rng.Intn(40) == 0 {
		s.advance(3)
		s.seq[0]-- // rewind to re-send the same SYN
		s.emit(flow.ClientToServer, packet.SYN, 0, func(b *packet.Builder) { b.MSS(s.mss) })
	}
	s.advance(0.5)
	s.emit(flow.ServerToClient, packet.SYN|packet.ACK, 0, func(b *packet.Builder) {
		b.MSS(s.mss)
		if s.useWS {
			b.WScale(s.wscale[1])
		}
	})
	s.advance(0.5)
	s.emit(flow.ClientToServer, packet.ACK, 0, nil)
}

// sizes draws a heavy-tailed (bounded Pareto-ish) segment count.
func (s *session) heavyTail(min, max int) int {
	u := s.rng.Float64()
	// alpha=1.2 bounded Pareto.
	const alpha = 1.2
	lo, hi := float64(min), float64(max)
	x := math.Pow(math.Pow(lo, alpha)/(1-u*(1-math.Pow(lo/hi, alpha))), 1/alpha)
	return int(x)
}

// sendData transmits n bytes from d as MSS-sized segments with realistic
// ACK behaviour, occasional retransmissions and out-of-window duplicates.
func (s *session) sendData(d flow.Direction, total int) {
	mss := int(s.mss)
	unacked := 0
	for total > 0 {
		seg := mss
		if total < seg {
			seg = total
		}
		if s.rng.Intn(5) == 0 { // short segment (push boundary)
			seg = 1 + s.rng.Intn(seg)
		}
		total -= seg
		flags := packet.ACK
		if total == 0 || s.rng.Intn(4) == 0 {
			flags |= packet.PSH
		}
		p := s.emit(d, flags, seg, nil)
		unacked++

		switch s.rng.Intn(60) {
		case 0:
			// Out-of-window duplicate: the whole segment again after the
			// receiver has it (spurious retransmission).
			s.advance(1.2)
			dup := p.Clone()
			dup.Timestamp = s.now
			if s.useTS {
				// A real retransmit re-stamps TSval.
				if o := dup.TCP.FindOption(packet.OptTimestamps); o != nil && len(o.Data) == 8 {
					v := s.tsval[d]
					o.Data[0], o.Data[1], o.Data[2], o.Data[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
					_ = dup.FixChecksums()
				}
			}
			s.conn.Append(dup, flow.Direction(d))
		case 1:
			// Keepalive-style probe at nxt-1.
			s.advance(0.3)
			probe := s.emit(d, packet.ACK, 0, func(b *packet.Builder) { b.Seq(s.seq[d] - 1) })
			_ = probe
		}

		// Receiver ACK behaviour: ack every ~2 segments or at burst end.
		if unacked >= 2 || total == 0 || s.rng.Intn(3) == 0 {
			s.advance(0.5)
			s.emit(flow.Direction(1-d), packet.ACK, 0, nil)
			unacked = 0
			s.advance(0.1)
		} else {
			s.advance(0.05)
		}
	}
}

func (s *session) exchange(app appProfile) {
	s.advance(0.2) // think time between handshake and first request
	switch app {
	case appWeb:
		turns := 1 + s.heavyTail(1, 6)
		for i := 0; i < turns; i++ {
			s.sendData(flow.ClientToServer, 120+s.rng.Intn(1200))
			s.sendData(flow.ServerToClient, s.heavyTail(1, 90)*int(s.mss)/2+200)
		}
	case appInteractive:
		turns := 3 + s.heavyTail(2, 40)
		for i := 0; i < turns; i++ {
			d := flow.Direction(i % 2)
			s.sendData(d, 1+s.rng.Intn(200))
		}
	case appBulkUpload:
		s.sendData(flow.ClientToServer, s.heavyTail(2, 160)*int(s.mss)/2)
		s.sendData(flow.ServerToClient, 100+s.rng.Intn(400))
	case appShort:
		s.sendData(flow.ClientToServer, 1+s.rng.Intn(300))
		if s.rng.Intn(2) == 0 {
			s.sendData(flow.ServerToClient, 1+s.rng.Intn(500))
		}
	}
}

func (s *session) teardown(cls closeProfile) {
	switch cls {
	case closeFIN, closeFINServer:
		first := flow.ClientToServer
		if cls == closeFINServer {
			first = flow.ServerToClient
		}
		second := flow.Direction(1 - first)
		s.advance(0.8)
		s.emit(first, packet.FIN|packet.ACK, 0, nil)
		s.advance(0.5)
		s.emit(second, packet.ACK, 0, nil)
		if s.rng.Intn(10) < 9 { // occasionally the second FIN is never captured
			s.advance(1.5)
			s.emit(second, packet.FIN|packet.ACK, 0, nil)
			s.advance(0.5)
			s.emit(first, packet.ACK, 0, nil)
		}
	case closeRST:
		s.advance(0.6)
		d := flow.Direction(s.rng.Intn(2))
		s.emit(d, packet.RST|packet.ACK, 0, nil)
	case closeNone, closeMidStream:
		// Nothing: the capture simply ends.
	}
}

// runMidStream emulates a flow whose beginning predates the capture: no
// handshake, both sides already in ESTABLISHED.
func (s *session) runMidStream(app appProfile) {
	// Sequence spaces are mid-flight; window scaling already negotiated but
	// invisible, so windows stay unscaled (the conservative view a monitor
	// has of such flows).
	s.useWS = false
	s.exchange(app)
	if s.rng.Intn(3) == 0 {
		s.teardown(closeFIN)
	}
}
