package trafficgen

import (
	"testing"

	"clap/internal/flow"
	"clap/internal/packet"
	"clap/internal/tcpstate"
)

func gen(t *testing.T, n int, seed int64) []*flow.Connection {
	t.Helper()
	cfg := DefaultConfig(n)
	cfg.Seed = seed
	return Generate(cfg)
}

func TestDeterminism(t *testing.T) {
	a := gen(t, 50, 7)
	b := gen(t, 50, 7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Len() != b[i].Len() {
			t.Fatalf("connection %d: %d vs %d packets", i, a[i].Len(), b[i].Len())
		}
		for j := range a[i].Packets {
			ra, _ := a[i].Packets[j].Encode(packet.SerializeOptions{})
			rb, _ := b[i].Packets[j].Encode(packet.SerializeOptions{})
			if string(ra) != string(rb) {
				t.Fatalf("connection %d packet %d differs between runs", i, j)
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := gen(t, 20, 1)
	b := gen(t, 20, 2)
	same := 0
	for i := range a {
		if i < len(b) && a[i].Len() == b[i].Len() {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical connection shapes")
	}
}

func TestConnectionsAreBenign(t *testing.T) {
	conns := gen(t, 120, 3)
	var total, dropped, outWin int
	for _, c := range conns {
		if c.IsAdversarial() {
			t.Fatalf("generator marked a connection adversarial: %v", c.Key)
		}
		for _, v := range tcpstate.Replay(c, tcpstate.DefaultConfig()) {
			total++
			if !v.Accepted {
				dropped++
			}
			if !v.Label.InWindow {
				outWin++
			}
		}
	}
	if total == 0 {
		t.Fatal("no packets generated")
	}
	// Benign traffic should be overwhelmingly accepted by the strict
	// endhost; spurious retransmissions keep a small out-of-window tail.
	if frac := float64(dropped) / float64(total); frac > 0.05 {
		t.Errorf("dropped fraction = %.3f, want <= 0.05", frac)
	}
	if outWin == 0 {
		t.Error("expected some benign out-of-window packets (retransmission tail)")
	}
	if frac := float64(outWin) / float64(total); frac > 0.08 {
		t.Errorf("out-of-window fraction = %.3f, want <= 0.08", frac)
	}
}

func TestLifecycleDiversity(t *testing.T) {
	conns := gen(t, 300, 5)
	var sawRST, sawFIN, sawOpen, sawMidStream int
	for _, c := range conns {
		hasSYN, hasFIN, hasRST := false, false, false
		for _, p := range c.Packets {
			if p.TCP.Flags.Has(packet.SYN) {
				hasSYN = true
			}
			if p.TCP.Flags.Has(packet.FIN) {
				hasFIN = true
			}
			if p.TCP.Flags.Has(packet.RST) {
				hasRST = true
			}
		}
		switch {
		case !hasSYN:
			sawMidStream++
		case hasRST:
			sawRST++
		case hasFIN:
			sawFIN++
		default:
			sawOpen++
		}
	}
	for name, n := range map[string]int{
		"RST-closed": sawRST, "FIN-closed": sawFIN,
		"half-open": sawOpen, "mid-stream": sawMidStream,
	} {
		if n == 0 {
			t.Errorf("no %s connections in 300 samples", name)
		}
	}
}

func TestStateCoverage(t *testing.T) {
	conns := gen(t, 300, 11)
	seen := map[tcpstate.State]int{}
	for _, c := range conns {
		for _, l := range tcpstate.Labels(c, tcpstate.DefaultConfig()) {
			seen[l.State]++
		}
	}
	for _, st := range []tcpstate.State{
		tcpstate.SynSent, tcpstate.SynRecv, tcpstate.Established,
		tcpstate.FinWait, tcpstate.CloseWait, tcpstate.LastAck,
		tcpstate.TimeWait, tcpstate.Close,
	} {
		if seen[st] == 0 {
			t.Errorf("state %v never appears in labels", st)
		}
	}
	if seen[tcpstate.Established] < seen[tcpstate.SynSent] {
		t.Error("ESTABLISHED should dominate the label distribution")
	}
}

func TestTimestampsMonotonic(t *testing.T) {
	pkts := GeneratePackets(DefaultConfig(40))
	for i := 1; i < len(pkts); i++ {
		if pkts[i].Timestamp.Before(pkts[i-1].Timestamp) {
			t.Fatalf("packet %d timestamp regressed", i)
		}
	}
}

func TestChecksumsValid(t *testing.T) {
	conns := gen(t, 40, 13)
	for _, c := range conns {
		for i, p := range c.Packets {
			if !p.IPChecksumValid() {
				t.Fatalf("conn %v packet %d: bad IP checksum", c.Key, i)
			}
			if !p.TCPChecksumValid() {
				t.Fatalf("conn %v packet %d: bad TCP checksum", c.Key, i)
			}
		}
	}
}

func TestSizesHeavyTailed(t *testing.T) {
	conns := gen(t, 400, 17)
	small, large := 0, 0
	for _, c := range conns {
		if c.Len() <= 10 {
			small++
		}
		if c.Len() >= 40 {
			large++
		}
	}
	if small == 0 || large == 0 {
		t.Errorf("want both small and large flows, got small=%d large=%d", small, large)
	}
	stats := flow.Census(conns)
	mean := float64(stats.Packets) / float64(stats.Connections)
	if mean < 6 || mean > 60 {
		t.Errorf("mean packets/connection = %.1f, want within [6, 60] (MAWI ≈ 14)", mean)
	}
}

func TestAssembleRoundTrip(t *testing.T) {
	// Flattening to a packet stream and reassembling must preserve the
	// connection count (4-tuples are unique per connection modulo reuse).
	conns := gen(t, 60, 19)
	pkts := flow.Flatten(conns)
	re := flow.Assemble(pkts)
	if len(re) < len(conns) {
		t.Errorf("reassembled %d connections from %d generated", len(re), len(conns))
	}
}

func TestOptionDiversity(t *testing.T) {
	conns := gen(t, 200, 23)
	withTS, withoutTS, withWS := 0, 0, 0
	for _, c := range conns {
		p := c.Packets[0]
		if _, _, ok := p.TCP.TimestampVal(); ok {
			withTS++
		} else {
			withoutTS++
		}
		if _, ok := p.TCP.WScaleVal(); ok {
			withWS++
		}
	}
	if withTS == 0 || withoutTS == 0 {
		t.Errorf("timestamp option not diverse: with=%d without=%d", withTS, withoutTS)
	}
	if withWS == 0 {
		t.Error("window scaling never negotiated")
	}
}
