// Package obs is the serving stack's observability substrate: verdict
// provenance records, sampled deep traces, and the value-based histogram
// primitive behind the daemon's latency and occupancy distributions.
//
// The paper's value proposition is EXPLAINABLE flagging — which windows
// of a connection's context violated the learned profile — but a serving
// daemon reduces every verdict to a bare score unless the decision's
// context is captured at the moment it is made. This package holds that
// context:
//
//   - Decision: one verdict's compact provenance — which tenant and
//     source the connection came from, which model tag and Hot
//     generation judged it under which threshold, which cascade stage
//     produced the verdict (with the stage-1 margin), which micro-batch
//     carried the inference at what occupancy, and the per-stage stream
//     latencies. Pinned fields are captured on the scoring worker in the
//     same instant the (model, threshold) pair is pinned, so a
//     concurrent hot reload can never mis-attribute a verdict to a
//     generation that did not produce it.
//   - Trace: a Decision plus the full per-window error series and
//     localization, retained for flagged connections and a deterministic
//     head-sample of the rest, so "which windows misbehaved" can be
//     reconstructed without re-scoring.
//   - Tracer: the per-tenant bounded stores behind GET /v1/trace (a
//     decision ring) and GET /v1/explain (a keyed deep-trace store with
//     FIFO eviction).
//   - Histogram: fixed-bucket atomic histograms over arbitrary float64
//     values, the Prometheus-compatible primitive the serving metrics
//     render (stage latencies, ingest queue wait, batch fill).
//
// Everything here is cheap by construction: capture is a handful of
// value copies on the scoring worker, completion and publication ride
// the stream's single emit goroutine, and the stores are small
// mutex-guarded rings sized by the operator.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Cascade stage attributions for Decision.Stage. Single-stage backends
// leave the field empty.
const (
	// StageScreened marks a verdict the cascade's cheap first stage
	// settled (stage-1 score below the escalation threshold).
	StageScreened = "screened"
	// StageEscalated marks a verdict re-scored by the cascade's
	// expensive second stage.
	StageEscalated = "escalated"
)

// Decision is one verdict's provenance record, as served by /v1/trace
// and attached to flagged connections. Identity and binding fields are
// captured on the scoring worker at pin time; Seq, the latencies, and
// Time are completed on the stream's single emit goroutine before the
// record is published to any ring.
type Decision struct {
	// Seq is the stream submission sequence number — the global scoring
	// order, and the merge key for the cross-tenant /v1/trace view.
	Seq uint64 `json:"seq"`
	// Key is the connection 4-tuple ("a.b.c.d:p > a.b.c.d:p").
	Key string `json:"key"`
	// Tenant and Source attribute the connection's ingest path (both
	// omitted for the default tenant / unnamed sources).
	Tenant string `json:"tenant,omitempty"`
	Source string `json:"source,omitempty"`
	// Attack is the simulator's ground-truth label, when present.
	Attack string `json:"attack,omitempty"`

	// Model, Generation and Threshold are the (tag, Hot generation,
	// operating threshold) binding the verdict was judged under — read
	// in ONE atomic load, so they can never mix across a concurrent
	// reload.
	Model      string  `json:"model"`
	Generation uint64  `json:"generation"`
	Threshold  float64 `json:"threshold"`

	// Score and Flagged are the verdict itself.
	Score   float64 `json:"score"`
	Flagged bool    `json:"flagged"`

	// Stage attributes a cascade verdict to the stage that settled it
	// (StageScreened / StageEscalated; empty for single-stage backends),
	// and Stage1Margin is the stage-1 score minus the escalation
	// threshold — negative for screened verdicts, the raw stage-1 score
	// while the cascade is uncalibrated (everything escalates).
	Stage        string  `json:"stage,omitempty"`
	Stage1Margin float64 `json:"stage1_margin,omitempty"`

	// BatchID and BatchFill locate the verdict's batched inference:
	// which micro-batch sequence scored it and at what slot occupancy
	// (both zero when the backend scored unbatched).
	BatchID   uint64  `json:"batch_id,omitempty"`
	BatchFill float64 `json:"batch_fill,omitempty"`

	// WindowSpan is the scoring model's packets-per-window, for
	// expanding window indices to packet ranges in /v1/explain.
	WindowSpan int `json:"window_span,omitempty"`

	// Stream stage latencies: queue wait (Submit to worker pickup),
	// scoring runtime, and head-of-line wait before the ordered emit.
	QueueWaitNS int64 `json:"queue_wait_ns"`
	ScoreNS     int64 `json:"score_ns"`
	EmitWaitNS  int64 `json:"emit_wait_ns"`

	// Sampled marks a deterministic head-sampling hit: the connection's
	// deep trace was retained even if it was not flagged.
	Sampled bool `json:"sampled"`
	// Time is the emit timestamp.
	Time time.Time `json:"time"`
}

// Trace is one connection's deep trace: the decision plus the full
// per-window error series and localization — everything /v1/explain
// needs to reconstruct the paper's "which windows misbehaved" view
// without re-scoring.
type Trace struct {
	Decision Decision `json:"decision"`
	// Errors is the per-window anomaly series the verdict reduced.
	Errors []float64 `json:"errors"`
	// TopWindows ranks the highest-error windows, best first.
	TopWindows []int `json:"top_windows,omitempty"`
	// PeakWindow is the index of the highest-error window (-1: none).
	PeakWindow int `json:"peak_window"`
}

// Tracer is one tenant's bounded trace retention: a ring of the most
// recent decisions (the /v1/trace feed) and a keyed store of deep traces
// (the /v1/explain source), both capped at the same capacity with
// oldest-first eviction. Writes ride the stream's single emit goroutine;
// reads come from HTTP handlers — one mutex covers both stores.
type Tracer struct {
	mu   sync.Mutex
	ring []Decision
	next int
	cap  int

	traces map[string]Trace
	order  []string // insertion order for FIFO eviction
}

// NewTracer builds a tracer retaining the last capacity decisions and
// deep traces (capacity must be positive; non-positive is coerced to 1).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1
	}
	return &Tracer{
		ring:   make([]Decision, 0, capacity),
		cap:    capacity,
		traces: make(map[string]Trace),
	}
}

// Record appends one completed decision to the ring, evicting the oldest
// at capacity.
func (t *Tracer) Record(d Decision) {
	t.mu.Lock()
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, d)
	} else {
		t.ring[t.next] = d
		t.next = (t.next + 1) % t.cap
	}
	t.mu.Unlock()
}

// RecordTrace retains one connection's deep trace, keyed by its
// connection key. A key seen again (the same 4-tuple flagged twice)
// replaces its trace in place; new keys evict the oldest at capacity —
// so a flagged connection's localization survives the flagged ring
// wrapping, recoverable via /v1/explain until the trace store itself
// rotates it out.
func (t *Tracer) RecordTrace(tr Trace) {
	key := tr.Decision.Key
	t.mu.Lock()
	if _, seen := t.traces[key]; !seen {
		if len(t.order) >= t.cap {
			delete(t.traces, t.order[0])
			t.order = t.order[1:]
		}
		t.order = append(t.order, key)
	}
	t.traces[key] = tr
	t.mu.Unlock()
}

// Decisions snapshots the retained decision ring, oldest first.
func (t *Tracer) Decisions() []Decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Decision, 0, len(t.ring))
	if len(t.ring) == t.cap {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Explain looks up one connection's retained deep trace by key.
func (t *Tracer) Explain(key string) (Trace, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.traces[key]
	return tr, ok
}

// TraceCount reports how many deep traces are currently retained.
func (t *Tracer) TraceCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

// LatencyBounds are the latency histogram bucket upper bounds in
// seconds, spanning sub-100µs scoring to multi-second stalls — shared by
// every stage-latency and queue-wait histogram the daemon exports.
var LatencyBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// RatioBounds are the bucket upper bounds for quantities on (0, 1] —
// the batch-fill occupancy distribution.
var RatioBounds = []float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1}

// Histogram is a fixed-bucket histogram over float64 values with atomic
// counters — the minimal Prometheus-compatible implementation
// (cumulative buckets are computed at render time). The sum is kept as
// Float64bits behind a CAS loop; observations come from the single emit
// goroutine, so the loop is uncontended in practice.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits
	total  atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending bucket upper
// bounds (the +Inf bucket is implicit).
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

// Observe records one value (negative values are clamped to 0).
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.total.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Bounds returns the bucket upper bounds (not a copy; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Snapshot reads the per-bucket counts (non-cumulative, aligned with
// Bounds), the value sum, and the total observation count.
func (h *Histogram) Snapshot() (counts []uint64, sum float64, total uint64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, math.Float64frombits(h.sum.Load()), h.total.Load()
}
