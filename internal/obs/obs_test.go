package obs

import (
	"fmt"
	"testing"
)

// TestTracerRingWrap: the decision ring holds the last cap decisions and
// Decisions() returns them oldest-first across the wrap point.
func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	if got := tr.Decisions(); len(got) != 0 {
		t.Fatalf("fresh tracer has %d decisions, want 0", len(got))
	}
	for i := 1; i <= 10; i++ {
		tr.Record(Decision{Seq: uint64(i)})
	}
	got := tr.Decisions()
	if len(got) != 4 {
		t.Fatalf("ring retained %d decisions, want 4", len(got))
	}
	for i, d := range got {
		if want := uint64(7 + i); d.Seq != want {
			t.Fatalf("decision %d has seq %d, want %d (oldest-first)", i, d.Seq, want)
		}
	}
}

// TestTracerRingPartial: before the first wrap the ring returns exactly
// what was recorded, in order.
func TestTracerRingPartial(t *testing.T) {
	tr := NewTracer(8)
	for i := 1; i <= 3; i++ {
		tr.Record(Decision{Seq: uint64(i)})
	}
	got := tr.Decisions()
	if len(got) != 3 {
		t.Fatalf("ring retained %d decisions, want 3", len(got))
	}
	for i, d := range got {
		if d.Seq != uint64(i+1) {
			t.Fatalf("decision %d has seq %d, want %d", i, d.Seq, i+1)
		}
	}
}

// TestTracerDeepTraceEviction: the keyed trace store evicts FIFO at
// capacity, but a key seen again replaces in place without consuming a
// new slot — the repeat-flagged connection keeps its newest localization.
func TestTracerDeepTraceEviction(t *testing.T) {
	tr := NewTracer(3)
	key := func(i int) string { return fmt.Sprintf("k%d", i) }
	for i := 1; i <= 3; i++ {
		tr.RecordTrace(Trace{Decision: Decision{Key: key(i), Seq: uint64(i)}, PeakWindow: i})
	}
	if got := tr.TraceCount(); got != 3 {
		t.Fatalf("trace count %d, want 3", got)
	}
	// Re-record k1: replace in place, no eviction.
	tr.RecordTrace(Trace{Decision: Decision{Key: key(1), Seq: 10}, PeakWindow: 10})
	if got := tr.TraceCount(); got != 3 {
		t.Fatalf("replace-in-place changed trace count to %d", got)
	}
	if got, ok := tr.Explain(key(1)); !ok || got.Decision.Seq != 10 || got.PeakWindow != 10 {
		t.Fatalf("k1 after replace = %+v ok=%v, want seq 10", got, ok)
	}
	// A genuinely new key evicts the oldest insertion (k1 — replace did
	// not refresh its age).
	tr.RecordTrace(Trace{Decision: Decision{Key: key(4), Seq: 4}})
	if got := tr.TraceCount(); got != 3 {
		t.Fatalf("trace count %d after eviction, want 3", got)
	}
	if _, ok := tr.Explain(key(1)); ok {
		t.Fatal("k1 should have rotated out as the oldest insertion")
	}
	for _, k := range []string{key(2), key(3), key(4)} {
		if _, ok := tr.Explain(k); !ok {
			t.Fatalf("trace %s missing after eviction", k)
		}
	}
}

// TestTracerCapacityCoerced: non-positive capacities collapse to 1
// rather than panicking or retaining nothing.
func TestTracerCapacityCoerced(t *testing.T) {
	tr := NewTracer(0)
	tr.Record(Decision{Seq: 1})
	tr.Record(Decision{Seq: 2})
	got := tr.Decisions()
	if len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("cap-1 ring = %+v, want just seq 2", got)
	}
}

// TestHistogramBuckets: observations land in the first bucket whose
// upper bound contains them, overflow lands only in +Inf (total), and
// the sum tracks the clamped values.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	counts, sum, total := h.Snapshot()
	if want := []uint64{2, 1, 1}; counts[0] != want[0] || counts[1] != want[1] || counts[2] != want[2] {
		t.Fatalf("bucket counts %v, want %v", counts, want)
	}
	if total != 5 {
		t.Fatalf("total %d, want 5", total)
	}
	if sum != 106 {
		t.Fatalf("sum %v, want 106", sum)
	}
	// Negative values clamp to 0 and still count.
	h.Observe(-3)
	counts, sum, total = h.Snapshot()
	if counts[0] != 3 || total != 6 || sum != 106 {
		t.Fatalf("after clamped observe: counts=%v sum=%v total=%d", counts, sum, total)
	}
}

// TestHistogramConcurrent: parallel observers never lose counts.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBounds)
	const workers, perWorker = 8, 500
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < perWorker; i++ {
				h.Observe(0.001)
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	counts, sum, total := h.Snapshot()
	if total != workers*perWorker {
		t.Fatalf("total %d, want %d", total, workers*perWorker)
	}
	var inBuckets uint64
	for _, c := range counts {
		inBuckets += c
	}
	if inBuckets != workers*perWorker {
		t.Fatalf("bucketed %d, want %d", inBuckets, workers*perWorker)
	}
	if want := 0.001 * workers * perWorker; sum < want*0.999 || sum > want*1.001 {
		t.Fatalf("sum %v, want ~%v", sum, want)
	}
}
