package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"clap"
	"clap/internal/backend"
	"clap/internal/obs"
)

// cascadeStatusOf samples a tenant's serving cascade's escalation
// accounting, or a zero (absent) sample when a single-stage backend is
// live.
func cascadeStatusOf(hot *backend.Hot) cascadeSample {
	cc, ok := hot.Current().(*backend.Cascade)
	if !ok {
		return cascadeSample{}
	}
	evaluated, escalated := cc.EscalationCounts()
	return cascadeSample{present: true, evaluated: evaluated, escalated: escalated}
}

// Handler returns the ops API. Endpoints (see DESIGN.md §7 and §11):
//
//	GET  /healthz      liveness + uptime + model tag
//	GET  /metrics      Prometheus text exposition
//	GET  /v1/tenants   configured tenants with their serving state
//	GET  /v1/flagged   recent flagged connections (?n= caps the count)
//	GET  /v1/summary   totals, per-source accounting, model + threshold
//	GET  /v1/threshold current operating threshold
//	PUT  /v1/threshold adjust it: {"threshold": 0.08}
//	GET  /v1/drift     live-vs-reference drift statistics
//	POST /v1/reload    hot model reload: {"path": "..."} plus optional
//	                   atomic recalibration: {"calibration": "benign.pcap"
//	                   | "live", "fpr": 0.01}
//	GET  /v1/trace     recent verdict provenance records (?n= caps the
//	                   count; 404 unless tracing is armed)
//	GET  /v1/explain   one connection's retained deep trace: ?key= the
//	                   connection 4-tuple (404 unless tracing is armed)
//
// /v1/flagged, /v1/summary, /v1/threshold, /v1/drift, /v1/reload,
// /v1/trace and /v1/explain accept ?tenant=NAME to scope to one tenant;
// unscoped requests resolve to the default tenant (except /v1/flagged and
// /v1/trace, whose unscoped views merge every tenant's ring), so
// single-tenant clients are untouched.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/tenants", s.handleTenants)
	mux.HandleFunc("/v1/flagged", s.handleFlagged)
	mux.HandleFunc("/v1/summary", s.handleSummary)
	mux.HandleFunc("/v1/threshold", s.handleThreshold)
	mux.HandleFunc("/v1/drift", s.handleDrift)
	mux.HandleFunc("/v1/reload", s.handleReload)
	mux.HandleFunc("/v1/trace", s.handleTrace)
	mux.HandleFunc("/v1/explain", s.handleExplain)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// tenantParam resolves the request's ?tenant= scope (absent: the default
// tenant). On an unknown name it writes a 404 and returns ok=false.
func (s *Server) tenantParam(w http.ResponseWriter, r *http.Request) (*tenantState, bool) {
	name := r.URL.Query().Get("tenant")
	t, ok := s.tenantByName(name)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown tenant %q", name)
		return nil, false
	}
	return t, true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	body := map[string]any{
		"status":         "ok",
		"version":        clap.Version,
		"uptime_seconds": time.Since(s.metrics.start).Seconds(),
		"model":          s.hot.Tag(),
		"generation":     s.hot.Generation(),
		"scored":         s.metrics.connsScored.Load(),
	}
	if s.multiTenant() {
		body["tenants"] = len(s.tenants)
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.streamOrNil()
	if st == nil {
		httpError(w, http.StatusServiceUnavailable, "not started")
		return
	}
	var drift driftSample
	if ds, ok := s.DriftStatus(); ok {
		drift = driftSample{
			enabled:      true,
			drift:        ds.Drift,
			operatingFPR: ds.OperatingFPR,
			targetFPR:    ds.TargetFPR,
			alert:        ds.Alert,
		}
	}
	// Per-tenant series only in multi-tenant mode: the single-tenant
	// exposition stays byte-identical to the pre-tenant daemon.
	var tenants []tenantSample
	if s.multiTenant() {
		tenants = make([]tenantSample, 0, len(s.tenants))
		for _, t := range s.tenants {
			ts := tenantSample{
				name:       t.Name,
				tag:        t.Hot.Tag(),
				generation: t.Hot.Generation(),
				threshold:  t.Threshold(),
				inFlight:   t.InFlight(),
				scored:     t.Scored.Load(),
				packets:    t.Packets.Load(),
				flagged:    t.Flagged.Load(),
				delivered:  t.Delivered.Load(),
				shed:       t.Shed.Load(),
				reloads:    t.Reloads.Load(),
				alerts:     t.DriftAlerts.Load(),
				stages:     t.stageHist,
			}
			if t.Monitor != nil {
				ds := t.Monitor.Status(t.Threshold())
				ts.drift = driftSample{
					enabled:      true,
					drift:        ds.Drift,
					operatingFPR: ds.OperatingFPR,
					targetFPR:    ds.TargetFPR,
					alert:        ds.Alert,
				}
			}
			tenants = append(tenants, ts)
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	ls := lockstepSample{enabled: s.pipe.Lockstep() > 0, fill: st.LockstepFill()}
	s.metrics.writeProm(w, len(s.queue), cap(s.queue), st.InFlight(),
		st.Threshold(), st.BatchFill(), ls, drift, cascadeStatusOf(s.hot), s.hot.Tag(), s.hot.Generation(), s.stats, tenants)
}

func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.streamOrNil() == nil {
		httpError(w, http.StatusServiceUnavailable, "not started")
		return
	}
	t, ok := s.tenantParam(w, r)
	if !ok {
		return
	}
	if t.Monitor == nil {
		httpError(w, http.StatusNotFound, "drift monitoring disabled")
		return
	}
	ds := t.Monitor.Status(t.Threshold())
	body := map[string]any{
		"drift":        ds,
		"alerts_total": t.DriftAlerts.Load(),
		"model": map[string]any{
			"tag":        t.Hot.Tag(),
			"generation": t.Hot.Generation(),
		},
	}
	if s.multiTenant() {
		body["tenant"] = t.Name
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleFlagged(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, "bad n=%q", q)
			return
		}
		n = v
	}
	// Unscoped: the merged, timestamp-ordered view across every
	// tenant's bounded ring. Scoped: one tenant's ring and counter.
	if name := r.URL.Query().Get("tenant"); name != "" {
		t, ok := s.tenantByName(name)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown tenant %q", name)
			return
		}
		flagged, _ := s.FlaggedTenant(name, n)
		writeJSON(w, http.StatusOK, map[string]any{
			"tenant":        t.Name,
			"flagged":       flagged,
			"total_flagged": t.Flagged.Load(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"flagged":       s.Flagged(n),
		"total_flagged": s.metrics.flagged.Load(),
	})
}

// sourceSummary is one source's accounting in /v1/summary.
type sourceSummary struct {
	Name      string `json:"name"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
	Skipped   uint64 `json:"skipped"`
	Done      bool   `json:"done"`
}

func sourceSummaries(stats []*srcCounters) []sourceSummary {
	srcs := make([]sourceSummary, 0, len(stats))
	for _, st := range stats {
		srcs = append(srcs, sourceSummary{
			Name:      st.name,
			Delivered: st.delivered.Load(),
			Dropped:   st.dropped.Load(),
			Skipped:   st.skipped.Load(),
			Done:      st.done.Load(),
		})
	}
	return srcs
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.streamOrNil()
	if st == nil {
		httpError(w, http.StatusServiceUnavailable, "not started")
		return
	}
	t, ok := s.tenantParam(w, r)
	if !ok {
		return
	}
	// The default tenant's view keeps the daemon-wide counters (equal to
	// its own in single-tenant mode, and the natural "whole daemon" view
	// otherwise); a named tenant's view is scoped to its own accounting.
	scored, packets, flagged, reloads := s.metrics.connsScored.Load(), s.metrics.packets.Load(), s.metrics.flagged.Load(), s.metrics.reloads.Load()
	threshold := st.Threshold()
	srcs := sourceSummaries(s.stats)
	if t.Name != DefaultTenant {
		scored, packets, flagged, reloads = t.Scored.Load(), t.Packets.Load(), t.Flagged.Load(), t.Reloads.Load()
		threshold = t.Threshold()
		srcs = sourceSummaries(t.srcs)
	}
	summary := map[string]any{
		"scored":             scored,
		"packets":            packets,
		"flagged":            flagged,
		"reloads":            reloads,
		"threshold":          threshold,
		"batch_fill":         st.BatchFill(),
		"packets_per_second": s.metrics.windowRate(),
		"queue_depth":        len(s.queue),
		"queue_capacity":     cap(s.queue),
		"model": map[string]any{
			"tag":        t.Hot.Tag(),
			"describe":   t.Hot.Describe(),
			"generation": t.Hot.Generation(),
		},
		"sources":        srcs,
		"uptime_seconds": time.Since(s.metrics.start).Seconds(),
	}
	if s.pipe.Lockstep() > 0 {
		// Emitted only with lockstep on, keeping the lockstep-free
		// summary shape byte-identical to builds without the feature.
		summary["lockstep_fill"] = st.LockstepFill()
	}
	if s.multiTenant() {
		summary["tenant"] = t.Name
		summary["shed"] = t.Shed.Load()
		summary["in_flight"] = t.InFlight()
	}
	if cc, ok := t.Hot.Current().(*backend.Cascade); ok {
		s1, s2 := cc.Stages()
		evaluated, escalated := cc.EscalationCounts()
		frac := 0.0
		if evaluated > 0 {
			frac = float64(escalated) / float64(evaluated)
		}
		cas := map[string]any{
			"stage1":              s1.Tag(),
			"stage2":              s2.Tag(),
			"escalate_fpr":        cc.EscalateFPR(),
			"evaluated":           evaluated,
			"escalated":           escalated,
			"escalation_fraction": frac,
		}
		if esc, set := cc.Escalation(); set {
			cas["escalation_threshold"] = esc
		}
		summary["cascade"] = cas
	}
	writeJSON(w, http.StatusOK, summary)
}

func (s *Server) handleThreshold(w http.ResponseWriter, r *http.Request) {
	st := s.streamOrNil()
	if st == nil {
		httpError(w, http.StatusServiceUnavailable, "not started")
		return
	}
	t, ok := s.tenantParam(w, r)
	if !ok {
		return
	}
	current := func() float64 {
		if t.Name == DefaultTenant {
			return st.Threshold()
		}
		return t.Threshold()
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]float64{"threshold": current()})
	case http.MethodPut:
		var body struct {
			Threshold *float64 `json:"threshold"`
		}
		dec := json.NewDecoder(r.Body)
		if err := dec.Decode(&body); err != nil || body.Threshold == nil {
			httpError(w, http.StatusBadRequest, `want {"threshold": <number>}`)
			return
		}
		// A concatenated second value ({"threshold":1}{"threshold":99})
		// would otherwise be silently accepted with only the first applied.
		if dec.More() {
			httpError(w, http.StatusBadRequest, "request body must be a single JSON object")
			return
		}
		if err := s.SetTenantThreshold(r.URL.Query().Get("tenant"), *body.Threshold); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]float64{"threshold": current()})
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or PUT")
	}
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	t, ok := s.tenantParam(w, r)
	if !ok {
		return
	}
	var body ReloadRequest
	if r.ContentLength != 0 {
		dec := json.NewDecoder(r.Body)
		if err := dec.Decode(&body); err != nil {
			httpError(w, http.StatusBadRequest, `want {"path": "...", "calibration": "benign.pcap"|"live", "fpr": 0.01} or an empty body`)
			return
		}
		if dec.More() {
			httpError(w, http.StatusBadRequest, "request body must be a single JSON object")
			return
		}
	}
	if body.FPR != 0 && !(body.FPR > 0 && body.FPR < 1) {
		httpError(w, http.StatusBadRequest, "fpr %v must be in (0, 1)", body.FPR)
		return
	}
	res, err := s.reloadTenant(t, body)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	out := map[string]any{
		"old":               res.Old,
		"new":               res.New,
		"recalibrated":      res.Recalibrated,
		"calibration_conns": res.CalibrationConns,
	}
	if s.multiTenant() {
		out["tenant"] = t.Name
	}
	writeJSON(w, http.StatusOK, out)
}

// tenantInfo is one tenant's entry in /v1/tenants.
type tenantInfo struct {
	Name      string          `json:"name"`
	Default   bool            `json:"default,omitempty"`
	Model     ReloadInfo      `json:"model"`
	Quota     tenantQuotaInfo `json:"quota"`
	Scored    uint64          `json:"scored"`
	Flagged   uint64          `json:"flagged"`
	Delivered uint64          `json:"delivered"`
	Shed      uint64          `json:"shed"`
	Reloads   uint64          `json:"reloads"`
	InFlight  int             `json:"in_flight"`
	Sources   []string        `json:"sources,omitempty"`
	Drift     *DriftStatus    `json:"drift,omitempty"`
}

type tenantQuotaInfo struct {
	MaxInFlight int     `json:"max_in_flight"`
	Rate        float64 `json:"rate"`
	Burst       int     `json:"burst"`
	Unlimited   bool    `json:"unlimited"`
}

// handleTrace serves the retained decision rings: one tenant's when
// scoped with ?tenant=, or every tenant's merged by stream sequence
// (global scoring order) when unscoped. ?n= caps the count to the most
// recent records. 404 while tracing is disarmed, so clients can probe.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.cfg.TraceSample <= 0 {
		httpError(w, http.StatusNotFound, "tracing disabled (start with -trace-sample > 0)")
		return
	}
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, "bad n=%q", q)
			return
		}
		n = v
	}
	if name := r.URL.Query().Get("tenant"); name != "" {
		t, ok := s.tenantByName(name)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown tenant %q", name)
			return
		}
		out := t.tracer.Decisions()
		if n > 0 && len(out) > n {
			out = out[len(out)-n:]
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"tenant":      t.Name,
			"decisions":   out,
			"deep_traces": t.tracer.TraceCount(),
		})
		return
	}
	var out []obs.Decision
	deep := 0
	for _, t := range s.tenants {
		out = append(out, t.tracer.Decisions()...)
		deep += t.tracer.TraceCount()
	}
	// Seq is the shared stream's submission counter, so the merged view
	// reads in true global scoring order.
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	if out == nil {
		out = []obs.Decision{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"decisions":   out,
		"deep_traces": deep,
	})
}

// handleExplain reconstructs one connection's "which windows misbehaved"
// view from its retained deep trace — the full per-window error series
// plus localization, with the provenance that produced it — without
// re-scoring anything. Traces are tenant-scoped: an unscoped request
// searches the default tenant, ?tenant= selects another.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.cfg.TraceSample <= 0 {
		httpError(w, http.StatusNotFound, "tracing disabled (start with -trace-sample > 0)")
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		httpError(w, http.StatusBadRequest, "want ?key=<connection key>")
		return
	}
	t, ok := s.tenantParam(w, r)
	if !ok {
		return
	}
	tr, ok := t.tracer.Explain(key)
	if !ok {
		httpError(w, http.StatusNotFound, "no retained trace for key %q (rotated out, never sampled, or another tenant's)", key)
		return
	}
	body := map[string]any{"trace": tr}
	if s.multiTenant() {
		body["tenant"] = t.Name
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	out := make([]tenantInfo, 0, len(s.tenants))
	for _, t := range s.tenants {
		info := tenantInfo{
			Name:    t.Name,
			Default: t.Name == DefaultTenant,
			Model: ReloadInfo{
				Tag:        t.Hot.Tag(),
				Describe:   t.Hot.Describe(),
				Generation: t.Hot.Generation(),
				Threshold:  t.Threshold(),
			},
			Quota: tenantQuotaInfo{
				MaxInFlight: t.Quota.MaxInFlight,
				Rate:        t.Quota.Rate,
				Burst:       t.Quota.Burst,
				Unlimited:   t.Quota.Unlimited(),
			},
			Scored:    t.Scored.Load(),
			Flagged:   t.Flagged.Load(),
			Delivered: t.Delivered.Load(),
			Shed:      t.Shed.Load(),
			Reloads:   t.Reloads.Load(),
			InFlight:  t.InFlight(),
		}
		for _, src := range t.srcs {
			info.Sources = append(info.Sources, src.name)
		}
		if t.Monitor != nil {
			ds := t.Monitor.Status(t.Threshold())
			info.Drift = &ds
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenants": out})
}
