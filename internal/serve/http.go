package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"clap/internal/backend"
)

// cascadeStatus samples the serving cascade's escalation accounting, or a
// zero (absent) sample when a single-stage backend is live.
func (s *Server) cascadeStatus() cascadeSample {
	cc, ok := s.hot.Current().(*backend.Cascade)
	if !ok {
		return cascadeSample{}
	}
	evaluated, escalated := cc.EscalationCounts()
	return cascadeSample{present: true, evaluated: evaluated, escalated: escalated}
}

// Handler returns the ops API. Endpoints (see DESIGN.md §7):
//
//	GET  /healthz      liveness + uptime + model tag
//	GET  /metrics      Prometheus text exposition
//	GET  /v1/flagged   recent flagged connections (?n= caps the count)
//	GET  /v1/summary   totals, per-source accounting, model + threshold
//	GET  /v1/threshold current operating threshold
//	PUT  /v1/threshold adjust it: {"threshold": 0.08}
//	GET  /v1/drift     live-vs-reference drift statistics
//	POST /v1/reload    hot model reload: {"path": "..."} plus optional
//	                   atomic recalibration: {"calibration": "benign.pcap"
//	                   | "live", "fpr": 0.01}
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/flagged", s.handleFlagged)
	mux.HandleFunc("/v1/summary", s.handleSummary)
	mux.HandleFunc("/v1/threshold", s.handleThreshold)
	mux.HandleFunc("/v1/drift", s.handleDrift)
	mux.HandleFunc("/v1/reload", s.handleReload)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.metrics.start).Seconds(),
		"model":          s.hot.Tag(),
		"generation":     s.hot.Generation(),
		"scored":         s.metrics.connsScored.Load(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.streamOrNil()
	if st == nil {
		httpError(w, http.StatusServiceUnavailable, "not started")
		return
	}
	var drift driftSample
	if ds, ok := s.DriftStatus(); ok {
		drift = driftSample{
			enabled:      true,
			drift:        ds.Drift,
			operatingFPR: ds.OperatingFPR,
			targetFPR:    ds.TargetFPR,
			alert:        ds.Alert,
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writeProm(w, len(s.queue), cap(s.queue), st.InFlight(),
		st.Threshold(), st.BatchFill(), drift, s.cascadeStatus(), s.hot.Tag(), s.hot.Generation(), s.stats)
}

func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.streamOrNil() == nil {
		httpError(w, http.StatusServiceUnavailable, "not started")
		return
	}
	ds, ok := s.DriftStatus()
	if !ok {
		httpError(w, http.StatusNotFound, "drift monitoring disabled")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"drift":        ds,
		"alerts_total": s.metrics.driftAlerts.Load(),
		"model": map[string]any{
			"tag":        s.hot.Tag(),
			"generation": s.hot.Generation(),
		},
	})
}

func (s *Server) handleFlagged(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, "bad n=%q", q)
			return
		}
		n = v
	}
	flagged := s.Flagged(n)
	writeJSON(w, http.StatusOK, map[string]any{
		"flagged":       flagged,
		"total_flagged": s.metrics.flagged.Load(),
	})
}

// sourceSummary is one source's accounting in /v1/summary.
type sourceSummary struct {
	Name      string `json:"name"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
	Skipped   uint64 `json:"skipped"`
	Done      bool   `json:"done"`
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.streamOrNil()
	if st == nil {
		httpError(w, http.StatusServiceUnavailable, "not started")
		return
	}
	srcs := make([]sourceSummary, 0, len(s.stats))
	for _, st := range s.stats {
		srcs = append(srcs, sourceSummary{
			Name:      st.name,
			Delivered: st.delivered.Load(),
			Dropped:   st.dropped.Load(),
			Skipped:   st.skipped.Load(),
			Done:      st.done.Load(),
		})
	}
	summary := map[string]any{
		"scored":             s.metrics.connsScored.Load(),
		"packets":            s.metrics.packets.Load(),
		"flagged":            s.metrics.flagged.Load(),
		"reloads":            s.metrics.reloads.Load(),
		"threshold":          st.Threshold(),
		"batch_fill":         st.BatchFill(),
		"packets_per_second": s.metrics.windowRate(),
		"queue_depth":        len(s.queue),
		"queue_capacity":     cap(s.queue),
		"model": map[string]any{
			"tag":        s.hot.Tag(),
			"describe":   s.hot.Describe(),
			"generation": s.hot.Generation(),
		},
		"sources":        srcs,
		"uptime_seconds": time.Since(s.metrics.start).Seconds(),
	}
	if cc, ok := s.hot.Current().(*backend.Cascade); ok {
		s1, s2 := cc.Stages()
		evaluated, escalated := cc.EscalationCounts()
		frac := 0.0
		if evaluated > 0 {
			frac = float64(escalated) / float64(evaluated)
		}
		cas := map[string]any{
			"stage1":              s1.Tag(),
			"stage2":              s2.Tag(),
			"escalate_fpr":        cc.EscalateFPR(),
			"evaluated":           evaluated,
			"escalated":           escalated,
			"escalation_fraction": frac,
		}
		if esc, set := cc.Escalation(); set {
			cas["escalation_threshold"] = esc
		}
		summary["cascade"] = cas
	}
	writeJSON(w, http.StatusOK, summary)
}

func (s *Server) handleThreshold(w http.ResponseWriter, r *http.Request) {
	st := s.streamOrNil()
	if st == nil {
		httpError(w, http.StatusServiceUnavailable, "not started")
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]float64{"threshold": st.Threshold()})
	case http.MethodPut:
		var body struct {
			Threshold *float64 `json:"threshold"`
		}
		dec := json.NewDecoder(r.Body)
		if err := dec.Decode(&body); err != nil || body.Threshold == nil {
			httpError(w, http.StatusBadRequest, `want {"threshold": <number>}`)
			return
		}
		// A concatenated second value ({"threshold":1}{"threshold":99})
		// would otherwise be silently accepted with only the first applied.
		if dec.More() {
			httpError(w, http.StatusBadRequest, "request body must be a single JSON object")
			return
		}
		if err := s.SetThreshold(*body.Threshold); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]float64{"threshold": st.Threshold()})
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or PUT")
	}
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var body ReloadRequest
	if r.ContentLength != 0 {
		dec := json.NewDecoder(r.Body)
		if err := dec.Decode(&body); err != nil {
			httpError(w, http.StatusBadRequest, `want {"path": "...", "calibration": "benign.pcap"|"live", "fpr": 0.01} or an empty body`)
			return
		}
		if dec.More() {
			httpError(w, http.StatusBadRequest, "request body must be a single JSON object")
			return
		}
	}
	if body.FPR != 0 && !(body.FPR > 0 && body.FPR < 1) {
		httpError(w, http.StatusBadRequest, "fpr %v must be in (0, 1)", body.FPR)
		return
	}
	res, err := s.ReloadWith(body)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"old":               res.Old,
		"new":               res.New,
		"recalibrated":      res.Recalibrated,
		"calibration_conns": res.CalibrationConns,
	})
}
