package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"clap"
	"clap/internal/backend"
)

// The shared fixture: two tiny trained models of different registry tags,
// persisted to disk so reload tests exercise the tagged-header path.
var (
	fixOnce  sync.Once
	fixErr   error
	clapPath string
	b1Path   string
)

func fixture(t *testing.T) (clapModel, baseline1Model string) {
	t.Helper()
	fixOnce.Do(func() {
		dir, err := os.MkdirTemp("", "clap-serve-test-*")
		if err != nil {
			fixErr = err
			return
		}
		train := clap.GenerateBenign(80, 1)
		for _, sys := range []struct {
			tag  string
			path *string
		}{
			{clap.BackendCLAP, &clapPath},
			{clap.BackendBaseline1, &b1Path},
		} {
			b, err := clap.NewBackend(sys.tag)
			if err != nil {
				fixErr = err
				return
			}
			cb := b.(*clap.CLAPBackend)
			cb.Cfg.RNNEpochs, cb.Cfg.AEEpochs = 4, 6
			if err := b.Train(train, func(string, ...any) {}); err != nil {
				fixErr = err
				return
			}
			*sys.path = filepath.Join(dir, sys.tag+".model")
			if err := clap.SaveBackendFile(*sys.path, b); err != nil {
				fixErr = err
				return
			}
		}
	})
	if fixErr != nil {
		t.Fatalf("building fixture models: %v", fixErr)
	}
	return clapPath, b1Path
}

func loadModel(t *testing.T, path string) clap.Backend {
	t.Helper()
	b, err := clap.LoadBackendFile(path)
	if err != nil {
		t.Fatalf("loading %s: %v", path, err)
	}
	return b
}

// chanSource delivers test-controlled connections until its channel closes.
type chanSource struct {
	name string
	ch   chan *clap.Connection
}

func (s *chanSource) Name() string { return s.name }

func (s *chanSource) Stream(ctx context.Context, deliver func(*clap.Connection)) (int, error) {
	for {
		select {
		case c, ok := <-s.ch:
			if !ok {
				return 0, nil
			}
			deliver(c)
		case <-ctx.Done():
			return 0, nil
		}
	}
}

// waitScored polls until the server has scored want connections.
func waitScored(t *testing.T, s *Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for s.Scored() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d scored connections (have %d)", want, s.Scored())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// getJSON fetches url and decodes the JSON body into out.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}

// promCounters parses the counter/gauge samples out of a /metrics body.
func promCounters(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable metric line %q", line)
		}
		out[line[:i]] = v
	}
	return out
}

func getMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	return promCounters(t, buf.String())
}

// TestServeEndToEnd is the acceptance scenario: soak ingest, flagged
// connections over the ops API, hot reload to a different backend tag,
// monotone metrics, and post-reload scores bit-identical to a batch
// Pipeline.Run with the same model and inputs.
func TestServeEndToEnd(t *testing.T) {
	clapModel, b1Model := fixture(t)

	const soakN = 40
	var mu sync.Mutex
	var results []clap.Result
	post := &chanSource{name: "post-reload", ch: make(chan *clap.Connection, 16)}

	srv, err := New(Config{
		Backend:     loadModel(t, clapModel),
		ModelPath:   clapModel,
		Calibration: clap.TrafficGen(80, 5),
		FPR:         0.25,
		QueueDepth:  64,
		FlaggedRing: 64,
		OnResult: func(r clap.Result) {
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.AddSource(clap.Soak(clap.SoakConfig{
		Connections:    soakN,
		Seed:           9,
		AttackFraction: 0.5,
	}))
	srv.AddSource(post)
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Health comes up immediately.
	var health struct {
		Status string `json:"status"`
		Model  string `json:"model"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" || health.Model != clap.BackendCLAP {
		t.Fatalf("healthz = %+v", health)
	}

	waitScored(t, srv, soakN)
	m1 := getMetrics(t, ts.URL)
	if m1["clap_serve_connections_scored_total"] != soakN {
		t.Fatalf("scored_total = %v, want %d", m1["clap_serve_connections_scored_total"], soakN)
	}
	if m1["clap_serve_packets_total"] <= 0 {
		t.Fatal("packets_total not counted")
	}
	if m1[`clap_serve_stage_latency_seconds_count{stage="score"}`] != soakN {
		t.Fatalf("score latency histogram count = %v, want %d",
			m1[`clap_serve_stage_latency_seconds_count{stage="score"}`], soakN)
	}

	// At a 25% calibration FPR over a half-attacked soak, something must
	// be flagged — and /v1/flagged must serve it.
	var flagged struct {
		Flagged      []FlaggedConn `json:"flagged"`
		TotalFlagged uint64        `json:"total_flagged"`
	}
	getJSON(t, ts.URL+"/v1/flagged", &flagged)
	if flagged.TotalFlagged == 0 || len(flagged.Flagged) == 0 {
		t.Fatalf("no flagged connections: %+v", flagged)
	}
	if flagged.Flagged[0].Key == "" || flagged.Flagged[0].Score <= 0 {
		t.Fatalf("malformed flagged record: %+v", flagged.Flagged[0])
	}

	// Threshold: GET, then PUT a new value, then reject a bad one.
	var th struct {
		Threshold float64 `json:"threshold"`
	}
	getJSON(t, ts.URL+"/v1/threshold", &th)
	if th.Threshold <= 0 {
		t.Fatalf("calibrated threshold = %v", th.Threshold)
	}
	origTh := th.Threshold
	putReq, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/threshold",
		strings.NewReader(fmt.Sprintf(`{"threshold": %g}`, origTh)))
	resp, err := http.DefaultClient.Do(putReq)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT threshold: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	badReq, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/threshold",
		strings.NewReader(`{"threshold": -1}`))
	resp, err = http.DefaultClient.Do(badReq)
	if err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT bad threshold: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	// Concatenated JSON values must be rejected outright, not applied
	// first-value-wins; the live threshold must be untouched afterwards.
	dupReq, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/threshold",
		strings.NewReader(`{"threshold": 0.001}{"threshold": 99}`))
	resp, err = http.DefaultClient.Do(dupReq)
	if err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT concatenated threshold bodies: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	getJSON(t, ts.URL+"/v1/threshold", &th)
	if th.Threshold != origTh {
		t.Fatalf("threshold %v changed by rejected PUT, want %v", th.Threshold, origTh)
	}

	// Batched inference ran (CLAP supports it; the default batch size is
	// on), so the fill gauge must be live and sane.
	if fill := m1["clap_serve_batch_fill"]; !(fill > 0 && fill <= 1) {
		t.Fatalf("clap_serve_batch_fill = %v, want in (0, 1]", fill)
	}

	// Hot reload to the baseline1 model — a different registry tag.
	resp, err = http.Post(ts.URL+"/v1/reload", "application/json",
		strings.NewReader(fmt.Sprintf(`{"path": %q}`, b1Model)))
	if err != nil {
		t.Fatal(err)
	}
	var reload struct {
		Old ReloadInfo `json:"old"`
		New ReloadInfo `json:"new"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reload); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	if reload.Old.Tag != clap.BackendCLAP || reload.New.Tag != clap.BackendBaseline1 {
		t.Fatalf("reload tags: %+v", reload)
	}
	if reload.New.Generation != 1 {
		t.Fatalf("reload generation = %d, want 1", reload.New.Generation)
	}

	// Feed a fresh corpus after the reload and compare every score
	// bit-for-bit against a batch Pipeline.Run with the same model file
	// and the same connections.
	suspectSrc := clap.AttackCorpus(clap.TrafficGen(12, 33),
		"GFW: Injected RST Bad TCP-Checksum/MD5-Option", 0.5, 7)
	suspects, _, err := suspectSrc.Connections(nil)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	results = results[:0]
	mu.Unlock()
	for _, c := range suspects {
		post.ch <- c
	}
	close(post.ch)
	waitScored(t, srv, soakN+uint64(len(suspects)))

	batchPipe, err := clap.NewPipeline(
		clap.WithBackend(loadModel(t, b1Model)),
		clap.WithThreshold(srv.Threshold()),
	)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := batchPipe.Run(clap.Conns(suspects...))
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	streamed := append([]clap.Result(nil), results...)
	mu.Unlock()
	if len(streamed) != len(batch.Results) {
		t.Fatalf("streamed %d post-reload results, batch %d", len(streamed), len(batch.Results))
	}
	for i := range streamed {
		if streamed[i].Score != batch.Results[i].Score {
			t.Fatalf("post-reload conn %d: served score %v != batch score %v",
				i, streamed[i].Score, batch.Results[i].Score)
		}
		if streamed[i].Flagged != batch.Results[i].Flagged {
			t.Fatalf("post-reload conn %d: served flagged=%v, batch=%v",
				i, streamed[i].Flagged, batch.Results[i].Flagged)
		}
	}

	// Metrics are monotone across the whole session and count the reload.
	m2 := getMetrics(t, ts.URL)
	for _, counter := range []string{
		"clap_serve_connections_scored_total",
		"clap_serve_packets_total",
		"clap_serve_flagged_total",
		"clap_serve_reloads_total",
		`clap_serve_stage_latency_seconds_count{stage="score"}`,
		`clap_serve_stage_latency_seconds_count{stage="queue"}`,
		`clap_serve_stage_latency_seconds_count{stage="emit"}`,
	} {
		if m2[counter] < m1[counter] {
			t.Errorf("counter %s went backwards: %v -> %v", counter, m1[counter], m2[counter])
		}
	}
	if m2["clap_serve_reloads_total"] != 1 {
		t.Errorf("reloads_total = %v, want 1", m2["clap_serve_reloads_total"])
	}
	if m2["clap_serve_connections_scored_total"] != soakN+float64(len(suspects)) {
		t.Errorf("scored_total = %v, want %d", m2["clap_serve_connections_scored_total"], soakN+len(suspects))
	}
	if got := m2[`clap_serve_model_info{tag="baseline1"}`]; got != 1 {
		t.Errorf("model_info generation = %v, want 1", got)
	}

	// Per-source accounting made it to the summary.
	var summary struct {
		Scored  uint64 `json:"scored"`
		Sources []struct {
			Name      string `json:"name"`
			Delivered uint64 `json:"delivered"`
			Done      bool   `json:"done"`
		} `json:"sources"`
	}
	getJSON(t, ts.URL+"/v1/summary", &summary)
	if summary.Scored != soakN+uint64(len(suspects)) {
		t.Errorf("summary scored = %d", summary.Scored)
	}
	bySource := map[string]uint64{}
	for _, s := range summary.Sources {
		bySource[s.Name] = s.Delivered
	}
	if bySource["soak"] != soakN || bySource["post-reload"] != uint64(len(suspects)) {
		t.Errorf("per-source delivery: %+v", bySource)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServeReloadWhileScoring hammers Reload while the stream is under
// load. Race-clean under -race, and every emitted score must equal the
// batch score of either model — an atomic swap can never produce a
// mixed-model score.
func TestServeReloadWhileScoring(t *testing.T) {
	clapModel, b1Model := fixture(t)

	const n = 120
	var mu sync.Mutex
	scored := make(map[*clap.Connection]float64, n)

	srv, err := New(Config{
		Backend:    loadModel(t, clapModel),
		ModelPath:  clapModel,
		QueueDepth: 8,
		OnResult: func(r clap.Result) {
			mu.Lock()
			scored[r.Conn] = r.Score
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.AddSource(clap.Soak(clap.SoakConfig{Connections: n, Seed: 21, AttackFraction: 0.3}))
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Alternate reloads between the two model files while scoring runs.
	paths := []string{b1Model, clapModel}
	reloads := 0
	for srv.Scored() < n {
		if _, _, err := srv.Reload(paths[reloads%2]); err != nil {
			t.Fatalf("reload %d: %v", reloads, err)
		}
		reloads++
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if reloads == 0 {
		t.Fatal("no reloads happened while scoring")
	}

	// Every streamed score matches one of the two models' serial scores.
	a := loadModel(t, clapModel)
	b := loadModel(t, b1Model)
	mu.Lock()
	defer mu.Unlock()
	if len(scored) != n {
		t.Fatalf("scored %d connections, want %d", len(scored), n)
	}
	for c, got := range scored {
		if got != a.ScoreConn(c) && got != b.ScoreConn(c) {
			t.Fatalf("score %v matches neither model (clap=%v, baseline1=%v) — mixed-model scoring",
				got, a.ScoreConn(c), b.ScoreConn(c))
		}
	}
}

// TestServeQueueShedding pins the load-shedding path deterministically: a
// full queue drops and counts instead of blocking.
func TestServeQueueShedding(t *testing.T) {
	clapModel, _ := fixture(t)
	srv, err := New(Config{
		Backend:      loadModel(t, clapModel),
		QueueDepth:   2,
		DropWhenFull: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := &srcCounters{name: "test"}
	deliver := srv.deliverFunc(context.Background(), st, srv.tenants[0])
	conns := clap.GenerateBenign(4, 1)
	// No pump is running: the first two fill the queue, the rest shed.
	for _, c := range conns {
		deliver(c)
	}
	if st.delivered.Load() != 2 || st.dropped.Load() != 2 {
		t.Fatalf("delivered=%d dropped=%d, want 2/2", st.delivered.Load(), st.dropped.Load())
	}
}

// TestServeBackpressure pins the blocking path: with shedding off, a full
// queue blocks the source until shutdown cancels it.
func TestServeBackpressure(t *testing.T) {
	clapModel, _ := fixture(t)
	srv, err := New(Config{
		Backend:    loadModel(t, clapModel),
		QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	st := &srcCounters{name: "test"}
	deliver := srv.deliverFunc(ctx, st, srv.tenants[0])
	conns := clap.GenerateBenign(2, 1)
	deliver(conns[0]) // fills the queue

	blocked := make(chan struct{})
	go func() {
		deliver(conns[1]) // must block until cancel
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("second delivery did not block on a full queue")
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	select {
	case <-blocked:
	case <-time.After(time.Second):
		t.Fatal("cancelled delivery still blocked")
	}
	if st.delivered.Load() != 1 || st.dropped.Load() != 1 {
		t.Fatalf("delivered=%d dropped=%d, want 1/1", st.delivered.Load(), st.dropped.Load())
	}
}

// TestServeHandlerBeforeStart: an ops Handler mounted before Start serves
// 503 for stream-backed endpoints instead of panicking; health stays up.
func TestServeHandlerBeforeStart(t *testing.T) {
	clapModel, _ := fixture(t)
	srv, err := New(Config{Backend: loadModel(t, clapModel)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/metrics", "/v1/summary", "/v1/threshold"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("GET %s before Start: %s, want 503", path, resp.Status)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before Start: %s, want 200", resp.Status)
	}
	if srv.Threshold() != 0 {
		t.Fatalf("Threshold before Start = %v, want 0", srv.Threshold())
	}
	if err := srv.SetThreshold(0.1); err == nil {
		t.Fatal("SetThreshold before Start succeeded")
	}
}

// TestServeReloadRejectsBadModel: a failed reload must leave the current
// model serving.
func TestServeReloadRejectsBadModel(t *testing.T) {
	clapModel, _ := fixture(t)
	srv, err := New(Config{Backend: loadModel(t, clapModel), ModelPath: clapModel})
	if err != nil {
		t.Fatal(err)
	}
	srv.AddSource(clap.Soak(clap.SoakConfig{Connections: 1, Seed: 1}))
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	bad := filepath.Join(t.TempDir(), "bad.model")
	if err := os.WriteFile(bad, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Reload(bad); err == nil {
		t.Fatal("reload of a corrupt model succeeded")
	}
	if srv.hot.Tag() != clap.BackendCLAP || srv.hot.Generation() != 0 {
		t.Fatalf("failed reload disturbed the live model: tag=%s gen=%d",
			srv.hot.Tag(), srv.hot.Generation())
	}
	if _, _, err := srv.Reload("/definitely/not/here.model"); err == nil {
		t.Fatal("reload of a missing file succeeded")
	}
}

// TestServeCascadeMetricsAndStage2Reload covers the tiered-serving ops
// surface: escalation counters in /metrics and /v1/summary while a
// cascade serves, a stage-2-only hot reload that grafts a bare expensive
// model into the live cascade (screen, escalation threshold and counters
// kept), and a full swap when the incoming tag matches neither shape.
func TestServeCascadeMetricsAndStage2Reload(t *testing.T) {
	clapModel, b1Model := fixture(t)

	// Build and calibrate the cascade offline, then persist it so the
	// server starts from the tagged file like an operator would.
	cascade, err := clap.NewCascade(loadModel(t, b1Model), loadModel(t, clapModel), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	calP, err := clap.NewPipeline(clap.WithBackend(cascade))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := calP.Calibrate(0.2, clap.TrafficGen(60, 5)); err != nil {
		t.Fatal(err)
	}
	cascadePath := filepath.Join(t.TempDir(), "cascade.model")
	if err := clap.SaveBackendFile(cascadePath, cascade); err != nil {
		t.Fatal(err)
	}

	const soakN = 30
	srv, err := New(Config{
		Backend:    loadModel(t, cascadePath),
		ModelPath:  cascadePath,
		QueueDepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.AddSource(clap.Soak(clap.SoakConfig{Connections: soakN, Seed: 9, AttackFraction: 0.5}))
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	waitScored(t, srv, soakN)
	m := getMetrics(t, ts.URL)
	evaluated := m["clap_serve_cascade_evaluated_total"]
	escalated := m["clap_serve_cascade_escalated_total"]
	if evaluated != soakN {
		t.Fatalf("cascade_evaluated_total = %v, want %d", evaluated, soakN)
	}
	if escalated == 0 || escalated > evaluated {
		t.Fatalf("cascade_escalated_total = %v over %v evaluated; a half-attacked soak must escalate some but not require all", escalated, evaluated)
	}
	if frac := m["clap_serve_cascade_escalation_fraction"]; math.Abs(frac-escalated/evaluated) > 1e-9 {
		t.Fatalf("escalation fraction gauge %v, want %v", frac, escalated/evaluated)
	}

	var summary struct {
		Cascade *struct {
			Stage1              string  `json:"stage1"`
			Stage2              string  `json:"stage2"`
			EscalateFPR         float64 `json:"escalate_fpr"`
			EscalationThreshold float64 `json:"escalation_threshold"`
			Evaluated           uint64  `json:"evaluated"`
			Escalated           uint64  `json:"escalated"`
		} `json:"cascade"`
	}
	getJSON(t, ts.URL+"/v1/summary", &summary)
	if summary.Cascade == nil {
		t.Fatal("/v1/summary has no cascade block while a cascade serves")
	}
	if summary.Cascade.Stage1 != clap.BackendBaseline1 || summary.Cascade.Stage2 != clap.BackendCLAP {
		t.Fatalf("cascade stages %s+%s", summary.Cascade.Stage1, summary.Cascade.Stage2)
	}
	if summary.Cascade.EscalateFPR != 0.3 || summary.Cascade.EscalationThreshold <= 0 {
		t.Fatalf("cascade calibration in summary: %+v", summary.Cascade)
	}
	if summary.Cascade.Evaluated != soakN || summary.Cascade.Escalated != uint64(escalated) {
		t.Fatalf("summary counters %d/%d disagree with /metrics %v/%v",
			summary.Cascade.Escalated, summary.Cascade.Evaluated, escalated, evaluated)
	}

	// Stage-2-only reload: the incoming file holds a bare clap model, the
	// live cascade's expensive tag. The graft keeps the screen and state.
	escBefore, set := srv.hot.Current().(*backend.Cascade).Escalation()
	if !set {
		t.Fatal("serving cascade lost its escalation threshold")
	}
	resp, err := http.Post(ts.URL+"/v1/reload", "application/json",
		strings.NewReader(fmt.Sprintf(`{"path": %q}`, clapModel)))
	if err != nil {
		t.Fatal(err)
	}
	var reload struct {
		Old ReloadInfo `json:"old"`
		New ReloadInfo `json:"new"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reload); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stage-2 reload: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	if reload.Old.Tag != clap.BackendCascade || reload.New.Tag != clap.BackendCascade {
		t.Fatalf("stage-2 reload swapped the cascade away: %s -> %s", reload.Old.Tag, reload.New.Tag)
	}
	grafted, ok := srv.hot.Current().(*backend.Cascade)
	if !ok {
		t.Fatalf("after stage-2 reload the live backend is %q, want a cascade", srv.hot.Tag())
	}
	if escAfter, set := grafted.Escalation(); !set || escAfter != escBefore {
		t.Fatalf("graft moved the escalation threshold: %v -> %v (set=%v)", escBefore, escAfter, set)
	}
	if ev, _ := grafted.EscalationCounts(); ev != soakN {
		t.Fatalf("graft reset the escalation counters: evaluated %d, want %d", ev, soakN)
	}
	if srv.hot.Generation() != 1 {
		t.Fatalf("generation after stage-2 reload = %d, want 1", srv.hot.Generation())
	}

	// A bare model of a non-stage-2 tag is a full swap: the cascade (and
	// its metrics exposition) goes away.
	resp, err = http.Post(ts.URL+"/v1/reload", "application/json",
		strings.NewReader(fmt.Sprintf(`{"path": %q}`, b1Model)))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&reload); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("full-swap reload: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	if reload.New.Tag != clap.BackendBaseline1 {
		t.Fatalf("full swap landed on %q, want baseline1", reload.New.Tag)
	}
	m2 := getMetrics(t, ts.URL)
	if _, ok := m2["clap_serve_cascade_evaluated_total"]; ok {
		t.Fatal("cascade counters still exposed after swapping to a single-stage backend")
	}
}
