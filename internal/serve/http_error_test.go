package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"clap"
)

// TestServeHTTPErrorPaths backfills the ops-API error paths: every wrong
// method, malformed body, bad parameter, and failing reload must come
// back as a 4xx AND leave the serving state — threshold, model,
// generation, drift reference — untouched.
func TestServeHTTPErrorPaths(t *testing.T) {
	clapModel, _ := fixture(t)
	srv, err := New(Config{
		Backend:     loadModel(t, clapModel),
		ModelPath:   clapModel,
		Threshold:   0.375,
		DriftWindow: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.AddSource(clap.Soak(clap.SoakConfig{Connections: 2, Seed: 3}))
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	waitScored(t, srv, 2)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	corrupt := filepath.Join(t.TempDir(), "corrupt.model")
	if err := os.WriteFile(corrupt, []byte("CLAPBKND garbage payload"), 0o644); err != nil {
		t.Fatal(err)
	}

	th0 := srv.Threshold()
	gen0 := srv.hot.Generation()
	drift0, _ := srv.DriftStatus()

	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		// Wrong methods across the surface.
		{"healthz POST", http.MethodPost, "/healthz", "", http.StatusMethodNotAllowed},
		{"metrics POST", http.MethodPost, "/metrics", "", http.StatusMethodNotAllowed},
		{"flagged PUT", http.MethodPut, "/v1/flagged", "", http.StatusMethodNotAllowed},
		{"summary DELETE", http.MethodDelete, "/v1/summary", "", http.StatusMethodNotAllowed},
		{"threshold DELETE", http.MethodDelete, "/v1/threshold", "", http.StatusMethodNotAllowed},
		{"drift POST", http.MethodPost, "/v1/drift", "", http.StatusMethodNotAllowed},
		{"reload GET", http.MethodGet, "/v1/reload", "", http.StatusMethodNotAllowed},
		{"reload PUT", http.MethodPut, "/v1/reload", `{"path": "x"}`, http.StatusMethodNotAllowed},

		// Bad query parameters.
		{"flagged bad n", http.MethodGet, "/v1/flagged?n=banana", "", http.StatusBadRequest},
		{"flagged negative n", http.MethodGet, "/v1/flagged?n=-2", "", http.StatusBadRequest},

		// Malformed threshold bodies. NaN is not valid JSON, so the
		// decoder rejects it before it could ever reach the threshold
		// gate — and the gate itself rejects negatives.
		{"threshold not json", http.MethodPut, "/v1/threshold", "not json at all", http.StatusBadRequest},
		{"threshold empty object", http.MethodPut, "/v1/threshold", `{}`, http.StatusBadRequest},
		{"threshold NaN", http.MethodPut, "/v1/threshold", `{"threshold": NaN}`, http.StatusBadRequest},
		{"threshold Inf", http.MethodPut, "/v1/threshold", `{"threshold": 1e999}`, http.StatusBadRequest},
		{"threshold negative", http.MethodPut, "/v1/threshold", `{"threshold": -0.5}`, http.StatusBadRequest},
		{"threshold wrong type", http.MethodPut, "/v1/threshold", `{"threshold": "high"}`, http.StatusBadRequest},
		{"threshold concatenated", http.MethodPut, "/v1/threshold", `{"threshold": 0.1}{"threshold": 9}`, http.StatusBadRequest},

		// Malformed and failing reloads.
		{"reload not json", http.MethodPost, "/v1/reload", "not json", http.StatusBadRequest},
		{"reload wrong type", http.MethodPost, "/v1/reload", `{"path": 5}`, http.StatusBadRequest},
		{"reload concatenated", http.MethodPost, "/v1/reload", `{"path": "a"}{"path": "b"}`, http.StatusBadRequest},
		{"reload bad fpr", http.MethodPost, "/v1/reload", `{"calibration": "live", "fpr": 7}`, http.StatusBadRequest},
		{"reload missing model", http.MethodPost, "/v1/reload", `{"path": "/definitely/not/here.model"}`, http.StatusUnprocessableEntity},
		{"reload corrupt model", http.MethodPost, "/v1/reload", `{"path": "` + corrupt + `"}`, http.StatusUnprocessableEntity},
		{"reload missing calibration pcap", http.MethodPost, "/v1/reload", `{"calibration": "/not/here.pcap"}`, http.StatusUnprocessableEntity},
		{"reload live without observations", http.MethodPost, "/v1/reload", `{"calibration": "live", "fpr": 0.1}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body *strings.Reader
			if tc.body == "" {
				body = strings.NewReader("")
			} else {
				body = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s -> %s, want %d", tc.method, tc.path, resp.Status, tc.want)
			}
			if resp.StatusCode < 400 || resp.StatusCode >= 500 {
				t.Fatalf("error path returned non-4xx %d", resp.StatusCode)
			}
			// State untouched after every rejected request.
			if got := srv.Threshold(); got != th0 {
				t.Fatalf("threshold moved: %v -> %v", th0, got)
			}
			if got := srv.hot.Generation(); got != gen0 {
				t.Fatalf("generation moved: %d -> %d", gen0, got)
			}
			if d, _ := srv.DriftStatus(); d.TargetFPR != drift0.TargetFPR || d.Reference != drift0.Reference {
				t.Fatalf("drift calibration disturbed: %+v -> %+v", drift0, d)
			}
		})
	}

	// "live" recalibration with fewer observations than one window (2 of
	// 10 scored) was rejected above; sanity-check the positive arm still
	// works through the same handler once enough scores exist, proving
	// the 422 came from the data guard and not a wiring bug.
	if _, _, err := srv.monitor.Recalibrate(0.1); err == nil {
		t.Fatal("live recalibration below one window succeeded via monitor")
	}
}
