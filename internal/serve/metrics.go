package serve

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clap"
	"clap/internal/obs"
)

// promLabel escapes one label VALUE for the Prometheus text exposition:
// backslash, double-quote and newline are the three characters the
// format reserves inside quoted label values. Source and tenant names
// are operator-controlled (-tenant flags, source names derived from file
// paths), so a stray " or \n must not corrupt the whole /metrics page.
// Ordinary names pass through byte-identical.
func promLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// metrics is the daemon's operational state, exported in Prometheus text
// format at /metrics. Counters are atomics (updated from the emit and
// ingest goroutines, read by HTTP handlers); the packets/s window is the
// only mutex-guarded piece.
type metrics struct {
	start time.Time

	connsScored atomic.Uint64
	packets     atomic.Uint64
	flagged     atomic.Uint64
	reloads     atomic.Uint64
	driftAlerts atomic.Uint64

	// Per-stage latency histograms: queue wait, scoring, ordered-emit wait.
	stages [3]*obs.Histogram

	// ingestWait distributes how long deliveries sat in the shared ingest
	// queue before the pump submitted them, and batchFill distributes each
	// verdict's micro-batch occupancy. Both are non-nil only with tracing
	// armed, so the untraced exposition carries no new series.
	ingestWait *obs.Histogram
	batchFill  *obs.Histogram

	// rate is a sliding window of (timestamp, packets) samples maintained
	// by the single emit goroutine; windowRate reads it under the mutex.
	rateMu      sync.Mutex
	rateSamples []rateSample
}

type rateSample struct {
	at   time.Time
	pkts int
}

// stage indices into metrics.stages.
const (
	stageQueue = iota
	stageScore
	stageEmit
)

var stageNames = [3]string{"queue", "score", "emit"}

const rateWindow = 5 * time.Second

func newMetrics() *metrics {
	m := &metrics{start: time.Now()}
	for i := range m.stages {
		m.stages[i] = obs.NewHistogram(obs.LatencyBounds)
	}
	return m
}

// observeConn records one scored connection: counters, the rate window,
// and the per-stage latencies. Called from the single emit goroutine.
func (m *metrics) observeConn(pkts int, flagged bool, queue, score, emit time.Duration) {
	m.connsScored.Add(1)
	m.packets.Add(uint64(pkts))
	if flagged {
		m.flagged.Add(1)
	}
	m.stages[stageQueue].Observe(queue.Seconds())
	m.stages[stageScore].Observe(score.Seconds())
	m.stages[stageEmit].Observe(emit.Seconds())

	now := time.Now()
	m.rateMu.Lock()
	m.rateSamples = append(m.rateSamples, rateSample{at: now, pkts: pkts})
	m.trimRateLocked(now)
	m.rateMu.Unlock()
}

func (m *metrics) trimRateLocked(now time.Time) {
	cutoff := now.Add(-rateWindow)
	i := 0
	for i < len(m.rateSamples) && m.rateSamples[i].at.Before(cutoff) {
		i++
	}
	if i > 0 {
		m.rateSamples = append(m.rateSamples[:0], m.rateSamples[i:]...)
	}
}

// windowRate reports packets per second over the sliding window.
func (m *metrics) windowRate() float64 {
	now := time.Now()
	m.rateMu.Lock()
	defer m.rateMu.Unlock()
	m.trimRateLocked(now)
	total := 0
	for _, s := range m.rateSamples {
		total += s.pkts
	}
	return float64(total) / rateWindow.Seconds()
}

// srcCounters is one ingest source's accounting.
type srcCounters struct {
	name      string
	delivered atomic.Uint64 // connections handed to the queue
	dropped   atomic.Uint64 // connections shed at a full queue
	skipped   atomic.Uint64 // undecodable records reported by the source
	done      atomic.Bool   // the source's Stream returned
	// ring is set for sources backed by a kernel capture ring
	// (AF_PACKET); its counters are sampled at exposition time.
	ring clap.RingStatser
}

// driftSample is the drift monitor's state at render time (zero values
// with monitoring disabled).
type driftSample struct {
	enabled      bool
	drift        float64
	operatingFPR float64
	targetFPR    float64
	alert        bool
}

// cascadeSample is a cascade backend's escalation accounting at render
// time (present only while a cascade is serving).
type cascadeSample struct {
	present              bool
	evaluated, escalated uint64
}

// tenantSample is one tenant's state at render time. Per-tenant series
// are emitted only in multi-tenant mode (the caller passes nil
// otherwise), keeping the single-tenant exposition byte-identical to the
// pre-tenant daemon.
type tenantSample struct {
	name       string
	tag        string
	generation uint64
	threshold  float64
	inFlight   int
	scored     uint64
	packets    uint64
	flagged    uint64
	delivered  uint64
	shed       uint64
	reloads    uint64
	drift      driftSample
	alerts     uint64
	// stages are the tenant's queue/score/emit latency histograms
	// (rendered in multi-tenant mode only, like every tenant series).
	stages [3]*obs.Histogram
}

// writeProm renders the full metrics exposition. queueDepth/queueCap,
// batchFill, the drift sample, the model info and the tenant samples are
// sampled by the caller at render time.
// lockstepSample carries the render-time lockstep view: enabled gates the
// exposition entirely, so a lockstep-free daemon's metrics output stays
// byte-identical to builds without the feature.
type lockstepSample struct {
	enabled bool
	fill    float64
}

func (m *metrics) writeProm(w io.Writer, queueDepth, queueCap, inFlight int, threshold, batchFill float64, lockstep lockstepSample, drift driftSample, cascade cascadeSample, tag string, generation uint64, sources []*srcCounters, tenants []tenantSample) {
	c := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	g := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP clap_build_info Build and runtime identity of the serving binary (value is always 1).\n")
	fmt.Fprintf(w, "# TYPE clap_build_info gauge\n")
	fmt.Fprintf(w, "clap_build_info{version=\"%s\",go_version=\"%s\",backend_tags=\"%s\"} 1\n",
		promLabel(clap.Version), promLabel(runtime.Version()), promLabel(strings.Join(clap.BackendTags(), ",")))
	c("clap_serve_connections_scored_total", "Connections scored since start.", m.connsScored.Load())
	c("clap_serve_packets_total", "Packets in scored connections since start.", m.packets.Load())
	c("clap_serve_flagged_total", "Connections flagged over the operating threshold.", m.flagged.Load())
	c("clap_serve_reloads_total", "Successful hot model reloads.", m.reloads.Load())
	g("clap_serve_packets_per_second", "Scoring throughput over the last 5s window.", m.windowRate())
	g("clap_serve_queue_depth", "Connections waiting in the ingest queue.", float64(queueDepth))
	g("clap_serve_queue_capacity", "Ingest queue capacity.", float64(queueCap))
	g("clap_serve_stream_in_flight", "Connections inside the scoring stream.", float64(inFlight))
	g("clap_serve_threshold", "Current operating threshold.", threshold)
	g("clap_serve_batch_fill", "Mean occupancy of batched inference micro-batches (1 = full; 0 = unbatched).", batchFill)
	if lockstep.enabled {
		g("clap_serve_lockstep_fill", "Mean occupancy of the cross-connection lockstep fleet (1 = every slot held a live row).", lockstep.fill)
	}
	g("clap_serve_uptime_seconds", "Seconds since the daemon started.", time.Since(m.start).Seconds())
	if drift.enabled {
		c("clap_serve_drift_alerts_total", "Drift alert excursions since start.", m.driftAlerts.Load())
		g("clap_serve_drift", "Largest relative quantile shift of the live score distribution vs. the calibration reference.", drift.drift)
		g("clap_serve_operating_fpr", "Estimated fraction of recent scores at or above the operating threshold.", drift.operatingFPR)
		g("clap_serve_target_fpr", "Calibrated target FPR (0: none configured).", drift.targetFPR)
		alerting := 0.0
		if drift.alert {
			alerting = 1
		}
		g("clap_serve_drift_alerting", "1 while the drift alert condition currently holds.", alerting)
	}
	if cascade.present {
		c("clap_serve_cascade_evaluated_total", "Connections routed through the cascade's cheap screen.", cascade.evaluated)
		c("clap_serve_cascade_escalated_total", "Connections escalated to the cascade's expensive stage.", cascade.escalated)
		frac := 0.0
		if cascade.evaluated > 0 {
			frac = float64(cascade.escalated) / float64(cascade.evaluated)
		}
		g("clap_serve_cascade_escalation_fraction", "Fraction of evaluated connections escalated to the expensive stage.", frac)
	}

	fmt.Fprintf(w, "# HELP clap_serve_model_info Current model (value is the reload generation).\n")
	fmt.Fprintf(w, "# TYPE clap_serve_model_info gauge\n")
	fmt.Fprintf(w, "clap_serve_model_info{tag=\"%s\"} %d\n", promLabel(tag), generation)

	if len(tenants) > 0 {
		m.writeTenants(w, tenants)
	}

	// Per-source accounting, sorted for a stable exposition.
	sorted := append([]*srcCounters(nil), sources...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].name < sorted[j].name })
	for _, metric := range []struct {
		suffix, help string
		get          func(*srcCounters) uint64
	}{
		{"connections_total", "Connections delivered by the source.", func(s *srcCounters) uint64 { return s.delivered.Load() }},
		{"dropped_total", "Connections shed at a full ingest queue.", func(s *srcCounters) uint64 { return s.dropped.Load() }},
		{"skipped_total", "Undecodable records skipped by the source.", func(s *srcCounters) uint64 { return s.skipped.Load() }},
	} {
		name := "clap_serve_source_" + metric.suffix
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, metric.help, name)
		for _, s := range sorted {
			fmt.Fprintf(w, "%s{source=\"%s\"} %d\n", name, promLabel(s.name), metric.get(s))
		}
	}

	// Kernel-side ring counters, sampled live from sources backed by an
	// AF_PACKET capture ring. The series appear only when at least one
	// such source is currently reporting, so the pcap-only exposition
	// stays byte-identical to builds without the feature.
	type ringRow struct {
		name        string
		pkts, drops uint64
	}
	var rings []ringRow
	for _, s := range sorted {
		if s.ring == nil {
			continue
		}
		if pkts, drops, ok := s.ring.RingStats(); ok {
			rings = append(rings, ringRow{name: s.name, pkts: pkts, drops: drops})
		}
	}
	if len(rings) > 0 {
		for _, metric := range []struct {
			suffix, help string
			get          func(ringRow) uint64
		}{
			{"kernel_packets_total", "Packets the kernel delivered to the source's capture ring.", func(r ringRow) uint64 { return r.pkts }},
			{"kernel_drops_total", "Packets the kernel dropped because the capture ring was full.", func(r ringRow) uint64 { return r.drops }},
		} {
			name := "clap_serve_source_" + metric.suffix
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, metric.help, name)
			for _, r := range rings {
				fmt.Fprintf(w, "%s{source=\"%s\"} %d\n", name, promLabel(r.name), metric.get(r))
			}
		}
	}

	// Stage latency histograms.
	name := "clap_serve_stage_latency_seconds"
	fmt.Fprintf(w, "# HELP %s Per-stage latency through the scoring stream.\n# TYPE %s histogram\n", name, name)
	for si, h := range m.stages {
		writeHistSeries(w, name, fmt.Sprintf("stage=%q,", stageNames[si]), h)
	}

	// Tracing-only distributions (the histograms exist only with tracing
	// armed, so the untraced exposition is unchanged).
	if m.ingestWait != nil {
		n := "clap_serve_ingest_wait_seconds"
		fmt.Fprintf(w, "# HELP %s Time deliveries waited in the shared ingest queue before submission.\n# TYPE %s histogram\n", n, n)
		writeHistSeries(w, n, "", m.ingestWait)
	}
	if m.batchFill != nil {
		n := "clap_serve_batch_fill_ratio"
		fmt.Fprintf(w, "# HELP %s Per-verdict micro-batch slot occupancy (1 = full batches).\n# TYPE %s histogram\n", n, n)
		writeHistSeries(w, n, "", m.batchFill)
	}
}

// writeHistSeries renders one histogram's bucket/sum/count series. labels
// is everything inside the braces before le — e.g. `stage="queue",` —
// or "" for an unlabeled histogram.
func writeHistSeries(w io.Writer, name, labels string, h *obs.Histogram) {
	counts, sum, total := h.Snapshot()
	cum := uint64(0)
	for i, b := range h.Bounds() {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labels, trimFloat(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, total)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, sum)
		fmt.Fprintf(w, "%s_count %d\n", name, total)
		return
	}
	bare := strings.TrimSuffix(labels, ",")
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, bare, sum)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, bare, total)
}

// writeTenants renders the per-tenant series (multi-tenant mode only).
// Label values pass through promLabel — tenant names are operator input.
func (m *metrics) writeTenants(w io.Writer, tenants []tenantSample) {
	counter := func(name, help string, get func(tenantSample) uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, t := range tenants {
			fmt.Fprintf(w, "%s{tenant=\"%s\"} %d\n", name, promLabel(t.name), get(t))
		}
	}
	gauge := func(name, help string, get func(tenantSample) float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, t := range tenants {
			fmt.Fprintf(w, "%s{tenant=\"%s\"} %g\n", name, promLabel(t.name), get(t))
		}
	}
	counter("clap_serve_tenant_scored_total", "Connections scored for the tenant.", func(t tenantSample) uint64 { return t.scored })
	counter("clap_serve_tenant_packets_total", "Packets in the tenant's scored connections.", func(t tenantSample) uint64 { return t.packets })
	counter("clap_serve_tenant_flagged_total", "Tenant connections flagged over its operating threshold.", func(t tenantSample) uint64 { return t.flagged })
	counter("clap_serve_tenant_delivered_total", "Tenant connections admitted to the shared ingest queue.", func(t tenantSample) uint64 { return t.delivered })
	counter("clap_serve_tenant_shed_total", "Tenant connections shed by its own quota or at a full queue.", func(t tenantSample) uint64 { return t.shed })
	counter("clap_serve_tenant_reloads_total", "Successful hot model reloads for the tenant.", func(t tenantSample) uint64 { return t.reloads })
	gauge("clap_serve_tenant_in_flight", "Tenant connections admitted but not yet emitted.", func(t tenantSample) float64 { return float64(t.inFlight) })
	gauge("clap_serve_tenant_threshold", "Tenant operating threshold.", func(t tenantSample) float64 { return t.threshold })

	fmt.Fprintf(w, "# HELP clap_serve_tenant_model_info Tenant's current model (value is the reload generation).\n")
	fmt.Fprintf(w, "# TYPE clap_serve_tenant_model_info gauge\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "clap_serve_tenant_model_info{tenant=\"%s\",tag=\"%s\"} %d\n", promLabel(t.name), promLabel(t.tag), t.generation)
	}

	// Per-tenant stage latency histograms (PR 7 exported only aggregate
	// stage latencies; one tenant's stalls were invisible next to a fast
	// neighbour's volume).
	histName := "clap_serve_tenant_stage_latency_seconds"
	fmt.Fprintf(w, "# HELP %s Per-stage latency through the scoring stream, by tenant.\n# TYPE %s histogram\n", histName, histName)
	for _, t := range tenants {
		for si, h := range t.stages {
			if h == nil {
				continue
			}
			writeHistSeries(w, histName, fmt.Sprintf("tenant=\"%s\",stage=%q,", promLabel(t.name), stageNames[si]), h)
		}
	}

	// Drift, per tenant (each tenant monitors against its own reference).
	if anyDrift := func() bool {
		for _, t := range tenants {
			if t.drift.enabled {
				return true
			}
		}
		return false
	}(); anyDrift {
		counter("clap_serve_tenant_drift_alerts_total", "Tenant drift alert excursions.", func(t tenantSample) uint64 { return t.alerts })
		gauge("clap_serve_tenant_drift", "Tenant's largest relative quantile shift vs. its calibration reference.", func(t tenantSample) float64 { return t.drift.drift })
		gauge("clap_serve_tenant_operating_fpr", "Tenant's estimated fraction of recent scores at or above its threshold.", func(t tenantSample) float64 { return t.drift.operatingFPR })
		gauge("clap_serve_tenant_target_fpr", "Tenant's calibrated target FPR (0: none configured).", func(t tenantSample) float64 { return t.drift.targetFPR })
		gauge("clap_serve_tenant_drift_alerting", "1 while the tenant's drift alert condition currently holds.", func(t tenantSample) float64 {
			if t.drift.alert {
				return 1
			}
			return 0
		})
	}
}

// trimFloat renders a bucket bound the Prometheus way (no exponent for
// these magnitudes, no trailing zeros).
func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }
