package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"clap"
	"clap/internal/tenant"
)

// twoTenantServer builds a server with the default tenant plus named
// tenants a and b, each fed by its own channel source.
func twoTenantServer(t *testing.T, cfg Config, quotaA, quotaB tenant.Quota) (*Server, *chanSource, *chanSource) {
	t.Helper()
	clapModel, b1Model := fixture(t)
	if cfg.Backend == nil {
		cfg.Backend = loadModel(t, clapModel)
	}
	cfg.Tenants = append(cfg.Tenants,
		TenantConfig{Name: "a", Backend: loadModel(t, clapModel), Quota: quotaA},
		TenantConfig{Name: "b", Backend: loadModel(t, b1Model), Quota: quotaB},
	)
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srcA := &chanSource{name: "srcA", ch: make(chan *clap.Connection, 2048)}
	srcB := &chanSource{name: "srcB", ch: make(chan *clap.Connection, 2048)}
	if err := srv.AddTenantSource("a", srcA); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddTenantSource("b", srcB); err != nil {
		t.Fatal(err)
	}
	return srv, srcA, srcB
}

// TestServeTenantFairShareShedding: tenant a floods at far over its
// quota while tenant b trickles under an unlimited one. a must shed its
// own overload; b must not lose a single connection. Run under -race in
// CI.
func TestServeTenantFairShareShedding(t *testing.T) {
	const floodN, politeN = 1000, 100
	srv, srcA, srcB := twoTenantServer(t, Config{
		QueueDepth:  64,
		DriftWindow: -1,
	}, tenant.Quota{MaxInFlight: 8, Rate: 50, Burst: 8}, tenant.Quota{})

	flood := clap.GenerateBenign(floodN, 11)
	polite := clap.GenerateBenign(politeN, 12)
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, c := range flood {
			srcA.ch <- c
		}
		close(srcA.ch)
	}()
	go func() {
		defer wg.Done()
		for _, c := range polite {
			srcB.ch <- c
		}
		close(srcB.ch)
	}()
	wg.Wait()

	ta, tb := srv.byName["a"], srv.byName["b"]
	// Both sources have delivered or shed everything; wait for the
	// admitted connections to clear the stream, then drain.
	deadline := time.Now().Add(2 * time.Minute)
	for ta.Delivered.Load()+ta.Shed.Load() < floodN || tb.Delivered.Load()+tb.Shed.Load() < politeN {
		if time.Now().After(deadline) {
			t.Fatalf("sources never finished: a=%d+%d b=%d+%d",
				ta.Delivered.Load(), ta.Shed.Load(), tb.Delivered.Load(), tb.Shed.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// The polite tenant is untouched by its neighbour's flood: nothing
	// shed, everything delivered and scored.
	if got := tb.Shed.Load(); got != 0 {
		t.Fatalf("tenant b shed %d connections during a's flood, want 0", got)
	}
	if got := tb.Delivered.Load(); got != politeN {
		t.Fatalf("tenant b delivered %d, want %d", got, politeN)
	}
	if got := tb.Scored.Load(); got != politeN {
		t.Fatalf("tenant b scored %d, want %d", got, politeN)
	}
	// The flooding tenant shed the bulk of its own overload (its burst
	// plus a few seconds of token refill get through).
	if shed := ta.Shed.Load(); shed < floodN*9/10 {
		t.Fatalf("tenant a shed %d of %d, want >= 90%%", shed, floodN)
	}
	if got := ta.Delivered.Load() + ta.Shed.Load(); got != floodN {
		t.Fatalf("tenant a delivered+shed = %d, want %d", got, floodN)
	}
	if got := ta.Scored.Load(); got != ta.Delivered.Load() {
		t.Fatalf("tenant a scored %d of %d delivered", got, ta.Delivered.Load())
	}
	if got := ta.InFlight(); got != 0 {
		t.Fatalf("tenant a in-flight %d after drain, want 0", got)
	}
}

// TestServeTenantReloadAtomicity ports the single-tenant reload
// atomicity soak to two tenants reloading concurrently: each tenant
// alternates between the same two model files but calibrates to its own
// FPR target, so its legal (model, threshold) bindings differ from its
// neighbour's. No verdict may ever pair one tenant's model with the
// other's threshold. Run under -race in CI.
func TestServeTenantReloadAtomicity(t *testing.T) {
	clapModel, b1Model := fixture(t)
	fprs := map[string]float64{"a": 0.2, "b": 0.4}

	calibPcap := filepath.Join(t.TempDir(), "calib.pcap")
	if err := clap.WritePCAPFile(calibPcap, clap.GenerateBenign(40, 5), false); err != nil {
		t.Fatal(err)
	}
	expectTh := func(path string, fpr float64) float64 {
		t.Helper()
		p, err := clap.NewPipeline(clap.WithBackend(loadModel(t, path)))
		if err != nil {
			t.Fatal(err)
		}
		cal, err := p.Calibrate(fpr, clap.PCAPFile(calibPcap))
		if err != nil {
			t.Fatal(err)
		}
		return cal.Threshold
	}
	// Each tenant's two legal thresholds, and the discrimination check:
	// a crossed binding (tenant a's model, tenant b's threshold) must
	// fail both of a's legal arms, which needs the per-model thresholds
	// to differ across tenants.
	th := map[string][2]float64{}
	for name, fpr := range fprs {
		th[name] = [2]float64{expectTh(clapModel, fpr), expectTh(b1Model, fpr)}
	}
	if th["a"][0] == th["b"][0] || th["a"][1] == th["b"][1] {
		t.Fatalf("FPR targets %v did not discriminate thresholds: %v", fprs, th)
	}

	const soakN = 200
	type verdict struct {
		score   float64
		flagged bool
		prov    *clap.Decision
	}
	var mu sync.Mutex
	scored := map[string]map[*clap.Connection]verdict{
		"a": make(map[*clap.Connection]verdict, soakN),
		"b": make(map[*clap.Connection]verdict, soakN),
	}
	srv, err := New(Config{
		Backend:     loadModel(t, clapModel),
		QueueDepth:  16,
		DriftWindow: -1,
		TraceSample: 1, // every verdict carries provenance under the soak
		OnTenantResult: func(name string, r clap.Result) {
			if name == DefaultTenant {
				return
			}
			mu.Lock()
			scored[name][r.Conn] = verdict{score: r.Score, flagged: r.Flagged, prov: r.Prov}
			mu.Unlock()
		},
		Tenants: []TenantConfig{
			{Name: "a", Backend: loadModel(t, clapModel), ModelPath: clapModel,
				Calibration: clap.PCAPFile(calibPcap), FPR: fprs["a"]},
			{Name: "b", Backend: loadModel(t, clapModel), ModelPath: clapModel,
				Calibration: clap.PCAPFile(calibPcap), FPR: fprs["b"]},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, seed := range map[string]int64{"a": 21, "b": 22} {
		if err := srv.AddTenantSource(name, clap.Soak(clap.SoakConfig{
			Connections: soakN, Seed: seed, AttackFraction: 0.4, Rate: 150,
		})); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Every (model tag, generation, threshold) triple a tenant's Hot pair
	// ever legally published: the startup pair, then each reload's "new"
	// side. A verdict's provenance must land exactly on one of these —
	// anything else is a torn read across the atomic swap.
	type binding struct {
		tag string
		gen uint64
		th  float64
	}
	legal := map[string]map[binding]bool{}
	for name := range fprs {
		st := srv.byName[name]
		if got := st.Threshold(); got != th[name][0] {
			t.Fatalf("tenant %s startup threshold %v, offline derivation %v", name, got, th[name][0])
		}
		legal[name] = map[binding]bool{
			{tag: st.Hot.Tag(), gen: st.Hot.Generation(), th: st.Threshold()}: true,
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Both tenants hammer reload-with-calibration concurrently while
	// their soaks score.
	var hammer sync.WaitGroup
	for name := range fprs {
		hammer.Add(1)
		go func(name string) {
			defer hammer.Done()
			paths := []string{b1Model, clapModel}
			reloads := 0
			for srv.byName[name].Scored.Load() < soakN {
				body := fmt.Sprintf(`{"path": %q, "calibration": %q, "fpr": %g}`,
					paths[reloads%2], calibPcap, fprs[name])
				resp, err := http.Post(ts.URL+"/v1/reload?tenant="+name, "application/json",
					strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				var res struct {
					New ReloadInfo `json:"new"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&res)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					t.Errorf("tenant %s reload %d: %s (%v)", name, reloads, resp.Status, decErr)
					return
				}
				mu.Lock()
				legal[name][binding{tag: res.New.Tag, gen: res.New.Generation, th: res.New.Threshold}] = true
				mu.Unlock()
				reloads++
			}
			if reloads < 2 {
				t.Errorf("tenant %s: only %d reloads landed while scoring", name, reloads)
			}
		}(name)
	}
	hammer.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if t.Failed() {
		return
	}

	// Verdict check: every result must be consistent with one of ITS
	// OWN tenant's two legal (model, threshold) bindings. A cross-tenant
	// threshold leak fails both arms because the FPR targets differ.
	a, b := loadModel(t, clapModel), loadModel(t, b1Model)
	mu.Lock()
	defer mu.Unlock()
	for name, verdicts := range scored {
		if len(verdicts) != soakN {
			t.Fatalf("tenant %s scored %d connections, want %d", name, len(verdicts), soakN)
		}
		thA, thB := th[name][0], th[name][1]
		seenA, seenB := 0, 0
		for c, v := range verdicts {
			sa, sb := a.ScoreConn(c), b.ScoreConn(c)
			okA := v.score == sa && v.flagged == (sa >= thA)
			okB := v.score == sb && v.flagged == (sb >= thB)
			switch {
			case okA:
				seenA++
			case okB:
				seenB++
			default:
				t.Fatalf("tenant %s: crossed (model, threshold) pairing: score=%v flagged=%v (A: score %v th %v, B: score %v th %v)",
					name, v.score, v.flagged, sa, thA, sb, thB)
			}

			// Provenance: the verdict's recorded (model tag, generation,
			// threshold, tenant) binding must be one its tenant's Hot pair
			// actually published, read in one consistent view.
			d := v.prov
			if d == nil {
				t.Fatalf("tenant %s: verdict carries no provenance under TraceSample 1", name)
			}
			if d.Tenant != name {
				t.Fatalf("tenant %s: provenance attributed to tenant %q", name, d.Tenant)
			}
			if d.Score != v.score || d.Flagged != v.flagged {
				t.Fatalf("tenant %s: provenance verdict (%v, %v) disagrees with the emitted (%v, %v)",
					name, d.Score, d.Flagged, v.score, v.flagged)
			}
			got := binding{tag: d.Model, gen: d.Generation, th: d.Threshold}
			if !legal[name][got] {
				t.Fatalf("tenant %s: provenance binding %+v matches no published Hot pair %v",
					name, got, legal[name])
			}
			if v.flagged != (v.score >= d.Threshold) {
				t.Fatalf("tenant %s: flagged=%v inconsistent with recorded threshold %v and score %v",
					name, v.flagged, d.Threshold, v.score)
			}
		}
		if seenA == 0 || seenB == 0 {
			t.Fatalf("tenant %s: both models must serve during the hammer: A scored %d, B scored %d",
				name, seenA, seenB)
		}
	}
}

// TestServeSingleTenantCompat pins the compatibility contract: without
// Tenants configured, nothing tenant-shaped leaks into the ops surface —
// no tenant="..." series in /metrics, no tenant keys in /healthz,
// /v1/summary or /v1/flagged bodies.
func TestServeSingleTenantCompat(t *testing.T) {
	clapModel, _ := fixture(t)
	src := &chanSource{name: "compat", ch: make(chan *clap.Connection, 64)}
	srv, err := New(Config{
		Backend:     loadModel(t, clapModel),
		Threshold:   0.0001, // everything flags: exercises the flagged path
		DriftWindow: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.AddSource(src)
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, c := range clap.GenerateBenign(10, 3) {
		src.ch <- c
	}
	close(src.ch)
	waitScored(t, srv, 10)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	for _, path := range []string{"/healthz", "/metrics", "/v1/flagged", "/v1/summary", "/v1/drift", "/v1/tenants"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s: %s", path, resp.Status, body)
		}
		if path == "/v1/tenants" {
			// The introspection endpoint itself names the default tenant.
			continue
		}
		for _, leak := range []string{`tenant="`, `"tenant"`, `"tenants"`, `"in_flight"`, `"shed"`} {
			if strings.Contains(string(body), leak) {
				t.Fatalf("GET %s leaked %s into a single-tenant body:\n%s", path, leak, body)
			}
		}
	}
	var tl struct {
		Tenants []struct {
			Name    string `json:"name"`
			Default bool   `json:"default"`
		} `json:"tenants"`
	}
	getJSON(t, ts.URL+"/v1/tenants", &tl)
	if len(tl.Tenants) != 1 || tl.Tenants[0].Name != DefaultTenant || !tl.Tenants[0].Default {
		t.Fatalf("single-tenant /v1/tenants = %+v, want just the default tenant", tl.Tenants)
	}
}

// TestServeTenantBatchFillParity: four lightly-loaded tenants sharing
// the engine must batch across tenant boundaries — the shared stream's
// batch fill on the same aggregate load stays within 10% of a
// single-tenant run.
func TestServeTenantBatchFillParity(t *testing.T) {
	clapModel, _ := fixture(t)
	const perTenant, tenantsN = 20, 4
	total := perTenant * tenantsN

	run := func(tenantsMode bool) float64 {
		cfg := Config{
			Backend:     loadModel(t, clapModel),
			Threshold:   0.5,
			QueueDepth:  256,
			Batch:       8,
			DriftWindow: -1,
		}
		names := []string{""}
		if tenantsMode {
			names = names[:0]
			for i := 0; i < tenantsN; i++ {
				name := fmt.Sprintf("t%d", i)
				names = append(names, name)
				cfg.Tenants = append(cfg.Tenants, TenantConfig{
					Name: name, Backend: loadModel(t, clapModel), Threshold: 0.5,
				})
			}
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		conns := clap.GenerateBenign(total, 9)
		for i, name := range names {
			src := &chanSource{name: "src" + name, ch: make(chan *clap.Connection, total)}
			// Pre-fill and close before Start so ingest dumps the whole
			// load back-to-back in both modes.
			share := conns
			if tenantsMode {
				share = conns[i*perTenant : (i+1)*perTenant]
			}
			for _, c := range share {
				src.ch <- c.Clone()
			}
			close(src.ch)
			if name == "" {
				srv.AddSource(src)
			} else if err := srv.AddTenantSource(name, src); err != nil {
				t.Fatal(err)
			}
		}
		if err := srv.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		waitScored(t, srv, uint64(total))
		fill := srv.streamOrNil().BatchFill()
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		return fill
	}

	single := run(false)
	multi := run(true)
	if single <= 0 || multi <= 0 {
		t.Fatalf("batch fill must be positive: single=%v multi=%v", single, multi)
	}
	if diff := (multi - single) / single; diff < -0.10 {
		t.Fatalf("cross-tenant batch fill %.3f regressed more than 10%% below single-tenant %.3f", multi, single)
	}
}

// TestServeTenantAPIScoping covers the scoped ops surface: per-tenant
// flagged rings stay bounded, scoped endpoints report the right tenant,
// the merged flagged view is timestamp-ordered, thresholds move
// independently, and unknown tenants 404.
func TestServeTenantAPIScoping(t *testing.T) {
	srv, srcA, srcB := twoTenantServer(t, Config{
		Threshold:   0.0001, // everything flags, filling the rings
		FlaggedRing: 4,
		DriftWindow: -1,
	}, tenant.Quota{}, tenant.Quota{})
	for _, tc := range []struct {
		src *chanSource
		n   int
	}{{srcA, 12}, {srcB, 3}} {
		for _, c := range clap.GenerateBenign(tc.n, 7) {
			tc.src.ch <- c
		}
		close(tc.src.ch)
	}
	// Named tenants need a threshold too: install fixed ones.
	if err := srv.SetTenantThreshold("a", 0.0001); err != nil {
		t.Fatal(err)
	}
	if err := srv.SetTenantThreshold("b", 0.0001); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitScored(t, srv, 15)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	// Per-tenant rings are bounded independently: a overflowed its ring
	// of 4, b kept all 3 of its entries despite a's volume.
	var fa struct {
		Tenant  string        `json:"tenant"`
		Flagged []FlaggedConn `json:"flagged"`
		Total   uint64        `json:"total_flagged"`
	}
	getJSON(t, ts.URL+"/v1/flagged?tenant=a", &fa)
	if fa.Tenant != "a" || len(fa.Flagged) != 4 || fa.Total != 12 {
		t.Fatalf("tenant a flagged: tenant=%q len=%d total=%d, want a/4/12", fa.Tenant, len(fa.Flagged), fa.Total)
	}
	for _, fc := range fa.Flagged {
		if fc.Tenant != "a" {
			t.Fatalf("tenant a's scoped feed leaked a %q entry", fc.Tenant)
		}
	}
	var fb struct {
		Flagged []FlaggedConn `json:"flagged"`
		Total   uint64        `json:"total_flagged"`
	}
	getJSON(t, ts.URL+"/v1/flagged?tenant=b", &fb)
	if len(fb.Flagged) != 3 || fb.Total != 3 {
		t.Fatalf("tenant b flagged: len=%d total=%d, want 3/3", len(fb.Flagged), fb.Total)
	}

	// The merged view is capped, merged across tenants in timestamp order.
	var merged struct {
		Flagged []FlaggedConn `json:"flagged"`
		Total   uint64        `json:"total_flagged"`
	}
	getJSON(t, ts.URL+"/v1/flagged", &merged)
	if len(merged.Flagged) != 7 || merged.Total != 15 {
		t.Fatalf("merged flagged: len=%d total=%d, want 7/15", len(merged.Flagged), merged.Total)
	}
	seen := map[string]bool{}
	for i, fc := range merged.Flagged {
		seen[fc.Tenant] = true
		if i > 0 && fc.Time.Before(merged.Flagged[i-1].Time) {
			t.Fatalf("merged flagged out of timestamp order at %d", i)
		}
	}
	if !seen["a"] || !seen["b"] {
		t.Fatalf("merged flagged view missing a tenant: %v", seen)
	}

	// Thresholds move independently: adjusting b leaves a and the
	// default tenant alone.
	put := func(url string, body string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("PUT %s: %s", url, resp.Status)
		}
	}
	put(ts.URL+"/v1/threshold?tenant=b", `{"threshold": 0.42}`)
	if got := srv.byName["b"].Threshold(); got != 0.42 {
		t.Fatalf("tenant b threshold %v, want 0.42", got)
	}
	if got := srv.byName["a"].Threshold(); got != 0.0001 {
		t.Fatalf("tenant a threshold moved to %v", got)
	}
	if got := srv.Threshold(); got != 0.0001 {
		t.Fatalf("default threshold moved to %v", got)
	}

	// Unknown tenants 404 on every scoped endpoint.
	for _, path := range []string{"/v1/flagged", "/v1/summary", "/v1/drift", "/v1/threshold"} {
		resp, err := http.Get(ts.URL + path + "?tenant=nope")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s?tenant=nope: %s, want 404", path, resp.Status)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/reload?tenant=nope", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /v1/reload?tenant=nope: %s, want 404", resp.Status)
	}

	// /v1/tenants lists all three.
	var tl struct {
		Tenants []struct {
			Name string `json:"name"`
		} `json:"tenants"`
	}
	getJSON(t, ts.URL+"/v1/tenants", &tl)
	names := map[string]bool{}
	for _, e := range tl.Tenants {
		names[e.Name] = true
	}
	if len(tl.Tenants) != 3 || !names[DefaultTenant] || !names["a"] || !names["b"] {
		t.Fatalf("/v1/tenants = %+v, want default, a, b", tl.Tenants)
	}
}

// TestServeTenantConfigValidation: reserved and duplicate tenant names,
// and invalid quotas, are rejected at construction.
func TestServeTenantConfigValidation(t *testing.T) {
	clapModel, _ := fixture(t)
	mk := func(tcs ...TenantConfig) error {
		_, err := New(Config{Backend: loadModel(t, clapModel), Tenants: tcs})
		return err
	}
	if err := mk(TenantConfig{Name: "default", Backend: loadModel(t, clapModel)}); err == nil {
		t.Fatal("reserved tenant name accepted")
	}
	if err := mk(TenantConfig{Name: ""}); err == nil {
		t.Fatal("empty tenant name accepted")
	}
	if err := mk(
		TenantConfig{Name: "x", Backend: loadModel(t, clapModel)},
		TenantConfig{Name: "x", Backend: loadModel(t, clapModel)},
	); err == nil {
		t.Fatal("duplicate tenant name accepted")
	}
	if err := mk(TenantConfig{Name: "x"}); err == nil {
		t.Fatal("tenant without a backend accepted")
	}
	if err := mk(TenantConfig{Name: "x", Backend: loadModel(t, clapModel),
		Quota: tenant.Quota{MaxInFlight: -1}}); err == nil {
		t.Fatal("invalid quota accepted")
	}
	srv, err := New(Config{Backend: loadModel(t, clapModel)})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddTenantSource("ghost", &chanSource{name: "x", ch: make(chan *clap.Connection)}); err == nil {
		t.Fatal("AddTenantSource accepted an unknown tenant")
	}
}
