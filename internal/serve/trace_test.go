package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"clap"
	"clap/internal/tenant"
)

// traceBody is the /v1/trace response shape.
type traceBody struct {
	Tenant     string          `json:"tenant"`
	Decisions  []clap.Decision `json:"decisions"`
	DeepTraces int             `json:"deep_traces"`
}

// explainBody is the /v1/explain response shape.
type explainBody struct {
	Tenant string     `json:"tenant"`
	Trace  clap.Trace `json:"trace"`
}

// TestServeTraceExplainByteIdentity is the acceptance check for the deep
// trace path: /v1/explain must reconstruct the per-window error series
// byte-identically to offline re-scoring with the recorded model — no
// re-inference, no drift between what was served and what is explained.
// It also pins the /v1/trace provenance feed: every verdict appears with
// the (model, generation, threshold) binding that judged it.
func TestServeTraceExplainByteIdentity(t *testing.T) {
	clapModel, _ := fixture(t)
	model := loadModel(t, clapModel)

	// A mixed corpus, deduplicated by key so sampling parity and the
	// keyed trace store are deterministic per connection.
	corpus, _, err := clap.AttackCorpus(clap.TrafficGen(16, 41),
		"GFW: Injected RST Bad TCP-Checksum/MD5-Option", 0.5, 7).Connections(nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	var conns []*clap.Connection
	for _, c := range corpus {
		k := c.Key.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		conns = append(conns, c)
	}
	if len(conns) < 8 {
		t.Fatalf("corpus too small after dedup: %d", len(conns))
	}
	// Pick the median offline score as threshold so both flagged and
	// unflagged verdicts exist.
	scores := make([]float64, len(conns))
	for i, c := range conns {
		scores[i] = model.ScoreConn(c)
	}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	th := sorted[len(sorted)/2]
	if sorted[0] >= th || sorted[len(sorted)-1] < th {
		t.Fatalf("degenerate score spread %v..%v around threshold %v", sorted[0], sorted[len(sorted)-1], th)
	}

	src := &chanSource{name: "traced", ch: make(chan *clap.Connection, len(conns))}
	srv, err := New(Config{
		Backend:     loadModel(t, clapModel),
		Threshold:   th,
		QueueDepth:  16,
		DriftWindow: -1,
		TraceSample: 2, // head-sample every other delivery; flagged always
		TraceRing:   256,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.AddSource(src)
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, c := range conns {
		src.ch <- c
	}
	close(src.ch)
	waitScored(t, srv, uint64(len(conns)))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	// The decision ring holds every verdict with its full binding.
	var tb traceBody
	getJSON(t, ts.URL+"/v1/trace", &tb)
	if len(tb.Decisions) != len(conns) {
		t.Fatalf("/v1/trace returned %d decisions, want %d", len(tb.Decisions), len(conns))
	}
	byKey := map[string]clap.Decision{}
	for i, d := range tb.Decisions {
		if i > 0 && d.Seq <= tb.Decisions[i-1].Seq {
			t.Fatalf("merged trace out of stream order at %d: %d after %d", i, d.Seq, tb.Decisions[i-1].Seq)
		}
		if d.Model != clap.BackendCLAP || d.Generation != 0 || d.Threshold != th {
			t.Fatalf("decision %s binding (%s, %d, %v), want (%s, 0, %v)",
				d.Key, d.Model, d.Generation, d.Threshold, clap.BackendCLAP, th)
		}
		if d.Flagged != (d.Score >= th) {
			t.Fatalf("decision %s flagged=%v inconsistent with score %v vs threshold %v", d.Key, d.Flagged, d.Score, th)
		}
		if d.Source != "traced" || d.Time.IsZero() {
			t.Fatalf("decision %s missing attribution: source=%q time=%v", d.Key, d.Source, d.Time)
		}
		byKey[d.Key] = d
	}
	// ?n= caps to the most recent records.
	var tail traceBody
	getJSON(t, ts.URL+"/v1/trace?n=3", &tail)
	if len(tail.Decisions) != 3 {
		t.Fatalf("/v1/trace?n=3 returned %d decisions, want 3", len(tail.Decisions))
	}
	if tail.Decisions[2].Seq != tb.Decisions[len(tb.Decisions)-1].Seq {
		t.Fatalf("/v1/trace?n=3 ends at seq %d, want the newest %d", tail.Decisions[2].Seq, tb.Decisions[len(tb.Decisions)-1].Seq)
	}

	explained, denied := 0, 0
	for i, c := range conns {
		key := c.Key.String()
		sampled := i%2 == 0 // head sampling: first delivery and every 2nd
		flagged := scores[i] >= th
		u := ts.URL + "/v1/explain?key=" + url.QueryEscape(key)
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		if !sampled && !flagged {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("unsampled unflagged %s: explain %s, want 404", key, resp.Status)
			}
			denied++
			continue
		}
		var eb explainBody
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("explain %s: %s", key, resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("explain %s: %v", key, err)
		}
		resp.Body.Close()
		explained++

		// The acceptance bar: the retained series is byte-identical to
		// offline re-scoring with the recorded model.
		offline := model.WindowErrors(c)
		if len(eb.Trace.Errors) != len(offline) {
			t.Fatalf("explain %s: %d windows, offline %d", key, len(eb.Trace.Errors), len(offline))
		}
		for w := range offline {
			if math.Float64bits(eb.Trace.Errors[w]) != math.Float64bits(offline[w]) {
				t.Fatalf("explain %s window %d: %v != offline %v (bit mismatch)", key, w, eb.Trace.Errors[w], offline[w])
			}
		}
		score, peak := model.Summarize(offline)
		d := eb.Trace.Decision
		if d.Score != score || eb.Trace.PeakWindow != peak {
			t.Fatalf("explain %s: (score, peak) = (%v, %d), offline (%v, %d)", key, d.Score, eb.Trace.PeakWindow, score, peak)
		}
		if len(eb.Trace.TopWindows) == 0 || eb.Trace.TopWindows[0] != peak {
			t.Fatalf("explain %s: top windows %v, want localization led by peak %d", key, eb.Trace.TopWindows, peak)
		}
		if d.Flagged != flagged || d.Sampled != sampled {
			t.Fatalf("explain %s: flagged=%v sampled=%v, want %v/%v", key, d.Flagged, d.Sampled, flagged, sampled)
		}
		if d.Attack != c.AttackName {
			t.Fatalf("explain %s: attack %q, want %q", key, d.Attack, c.AttackName)
		}
		if rd, ok := byKey[key]; !ok || rd.Seq != d.Seq {
			t.Fatalf("explain %s: seq %d disagrees with the trace ring's %d", key, d.Seq, rd.Seq)
		}
	}
	if explained == 0 || denied == 0 {
		t.Fatalf("sampling did not split the corpus: %d explained, %d denied", explained, denied)
	}
	if tb.DeepTraces != explained {
		t.Fatalf("deep_traces = %d, want %d retained", tb.DeepTraces, explained)
	}

	// Parameter validation.
	for path, want := range map[string]int{
		"/v1/explain":                  http.StatusBadRequest, // no key
		"/v1/explain?key=nope":         http.StatusNotFound,
		"/v1/explain?key=x&tenant=ghz": http.StatusNotFound,
		"/v1/trace?n=bogus":            http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s: %s, want %d", path, resp.Status, want)
		}
	}
}

// TestServeTraceDisabled: with tracing disarmed the endpoints 404 so
// clients can probe, and no provenance rides the results.
func TestServeTraceDisabled(t *testing.T) {
	clapModel, _ := fixture(t)
	var sawProv bool
	src := &chanSource{name: "off", ch: make(chan *clap.Connection, 8)}
	srv, err := New(Config{
		Backend:     loadModel(t, clapModel),
		Threshold:   0.0001,
		DriftWindow: -1,
		OnResult: func(r clap.Result) {
			if r.Prov != nil {
				sawProv = true
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.AddSource(src)
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, c := range clap.GenerateBenign(4, 19) {
		src.ch <- c
	}
	close(src.ch)
	waitScored(t, srv, 4)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{"/v1/trace", "/v1/explain?key=x"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s with tracing off: %s, want 404", path, resp.Status)
		}
	}
	// Shutdown joins the emit goroutine, so sawProv is safe to read.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sawProv {
		t.Fatal("provenance captured with tracing disabled")
	}
}

// TestServeFlaggedRingWrapProvenance pins the ring-wrap regression:
// flagged entries surviving a wrapped ring keep their localization
// (TopWindows) and carry a complete provenance record, and entries the
// wrap evicted remain reconstructable through /v1/explain — the deep
// trace store retains every flagged connection independently of the
// alert ring's capacity.
func TestServeFlaggedRingWrapProvenance(t *testing.T) {
	clapModel, _ := fixture(t)
	const n, ring = 12, 4
	corpus := clap.GenerateBenign(n, 23)
	keys := map[string]bool{}
	for _, c := range corpus {
		keys[c.Key.String()] = true
	}
	if len(keys) != n {
		t.Fatalf("benign corpus reused keys: %d unique of %d", len(keys), n)
	}

	src := &chanSource{name: "wrap", ch: make(chan *clap.Connection, n)}
	srv, err := New(Config{
		Backend:     loadModel(t, clapModel),
		Threshold:   0.0001, // everything flags: the ring of 4 wraps twice
		FlaggedRing: ring,
		DriftWindow: -1,
		TraceSample: 1,
		TraceRing:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.AddSource(src)
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, c := range corpus {
		src.ch <- c
	}
	close(src.ch)
	waitScored(t, srv, n)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	var fb struct {
		Flagged []FlaggedConn `json:"flagged"`
		Total   uint64        `json:"total_flagged"`
	}
	getJSON(t, ts.URL+"/v1/flagged", &fb)
	if len(fb.Flagged) != ring || fb.Total != n {
		t.Fatalf("flagged ring len=%d total=%d, want %d/%d", len(fb.Flagged), fb.Total, ring, n)
	}
	for _, fc := range fb.Flagged {
		if len(fc.TopWindows) == 0 {
			t.Fatalf("flagged %s lost its TopWindows across the ring wrap", fc.Key)
		}
		d := fc.Provenance
		if d == nil {
			t.Fatalf("flagged %s carries no provenance", fc.Key)
		}
		if d.Key != fc.Key || d.Model != clap.BackendCLAP || d.Threshold != 0.0001 || !d.Flagged || d.Time.IsZero() {
			t.Fatalf("flagged %s provenance incomplete: %+v", fc.Key, d)
		}
	}
	// Every flagged connection — including the n-ring the wrap evicted —
	// is still explainable with full localization.
	for key := range keys {
		var eb explainBody
		getJSON(t, ts.URL+"/v1/explain?key="+url.QueryEscape(key), &eb)
		if len(eb.Trace.Errors) == 0 || len(eb.Trace.TopWindows) == 0 {
			t.Fatalf("evicted flagged %s lost its deep trace: %+v", key, eb.Trace)
		}
		if !eb.Trace.Decision.Flagged {
			t.Fatalf("trace for %s lost the flagged verdict", key)
		}
	}
}

// promNameRe / promLabelRe are the exposition-format identifier rules.
var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// lintProm is a strict text-exposition parser: every sample line must
// parse as name{labels} value, every name must be declared with HELP
// then TYPE before its first sample, types must be legal, no series may
// repeat, and histograms must be internally consistent (cumulative
// non-decreasing buckets, +Inf == _count, _sum present). Returns the
// full series map keyed by name{sorted labels}.
func lintProm(t *testing.T, body string) map[string]float64 {
	t.Helper()
	helped := map[string]bool{}
	typed := map[string]string{}
	series := map[string]float64{}
	type hist struct {
		buckets []float64 // cumulative, in render order
		les     []string
		sum     bool
		count   float64
		counted bool
	}
	hists := map[string]*hist{} // name + non-le labels

	parseLabels := func(line, s string) (pairs []string, byName map[string]string) {
		byName = map[string]string{}
		for len(s) > 0 {
			eq := strings.IndexByte(s, '=')
			if eq < 0 || len(s) < eq+2 || s[eq+1] != '"' {
				t.Fatalf("malformed label segment %q in %q", s, line)
			}
			name := s[:eq]
			if !promLabelRe.MatchString(name) {
				t.Fatalf("bad label name %q in %q", name, line)
			}
			rest := s[eq+2:]
			var val strings.Builder
			i, closed := 0, false
			for i < len(rest) {
				switch rest[i] {
				case '\\':
					if i+1 >= len(rest) {
						t.Fatalf("dangling escape in %q", line)
					}
					val.WriteByte(rest[i+1])
					i += 2
				case '"':
					closed = true
				default:
					val.WriteByte(rest[i])
					i++
				}
				if closed {
					break
				}
			}
			if !closed {
				t.Fatalf("unterminated label value in %q", line)
			}
			if _, dup := byName[name]; dup {
				t.Fatalf("duplicate label %q in %q", name, line)
			}
			byName[name] = val.String()
			pairs = append(pairs, name+`="`+val.String()+`"`)
			s = rest[i+1:]
			if strings.HasPrefix(s, ",") {
				s = s[1:]
			} else if len(s) > 0 {
				t.Fatalf("junk %q after label value in %q", s, line)
			}
		}
		return pairs, byName
	}

	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(f) != 2 || !promNameRe.MatchString(f[0]) || f[1] == "" {
				t.Fatalf("malformed HELP line %q", line)
			}
			helped[f[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(f) != 2 || !promNameRe.MatchString(f[0]) {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if f[1] != "counter" && f[1] != "gauge" && f[1] != "histogram" {
				t.Fatalf("illegal metric type in %q", line)
			}
			if !helped[f[0]] {
				t.Fatalf("TYPE before HELP for %s", f[0])
			}
			if _, dup := typed[f[0]]; dup {
				t.Fatalf("duplicate TYPE declaration for %s", f[0])
			}
			typed[f[0]] = f[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unrecognized comment line %q", line)
		}

		// Sample line: name[{labels}] value
		name, labelPart, rest := line, "", ""
		if br := strings.IndexByte(line, '{'); br >= 0 {
			name = line[:br]
			end := strings.LastIndexByte(line, '}')
			if end < br {
				t.Fatalf("unbalanced braces in %q", line)
			}
			labelPart = line[br+1 : end]
			rest = line[end+1:]
		} else if sp := strings.IndexByte(line, ' '); sp >= 0 {
			name, rest = line[:sp], line[sp:]
		}
		fields := strings.Fields(rest)
		if !promNameRe.MatchString(name) || len(fields) != 1 {
			t.Fatalf("malformed sample line %q (name %q, fields %v)", line, name, fields)
		}
		value, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		pairs, byName := parseLabels(line, labelPart)

		// Resolve the declared family: exact, or a histogram suffix.
		base, isHist := name, false
		if typed[base] == "" {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if b := strings.TrimSuffix(name, suffix); b != name && typed[b] == "histogram" {
					base, isHist = b, true
					break
				}
			}
		}
		if typed[base] == "" {
			t.Fatalf("sample %q has no HELP/TYPE declaration", name)
		}
		if typed[base] == "histogram" && base == name {
			t.Fatalf("histogram %s exposed a bare sample without _bucket/_sum/_count", name)
		}

		sortedPairs := append([]string(nil), pairs...)
		sort.Strings(sortedPairs)
		key := name + "{" + strings.Join(sortedPairs, ",") + "}"
		if _, dup := series[key]; dup {
			t.Fatalf("duplicate series %s", key)
		}
		series[key] = value

		if isHist {
			var nonLe []string
			for _, p := range pairs {
				if !strings.HasPrefix(p, `le="`) {
					nonLe = append(nonLe, p)
				}
			}
			sort.Strings(nonLe)
			hk := base + "{" + strings.Join(nonLe, ",") + "}"
			h := hists[hk]
			if h == nil {
				h = &hist{}
				hists[hk] = h
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := byName["le"]
				if !ok {
					t.Fatalf("bucket series %s lacks an le label", key)
				}
				h.buckets = append(h.buckets, value)
				h.les = append(h.les, le)
			case strings.HasSuffix(name, "_sum"):
				h.sum = true
			case strings.HasSuffix(name, "_count"):
				h.count, h.counted = value, true
			}
		}
	}
	for hk, h := range hists {
		if !h.sum || !h.counted {
			t.Fatalf("histogram %s missing _sum or _count", hk)
		}
		if len(h.les) == 0 || h.les[len(h.les)-1] != "+Inf" {
			t.Fatalf("histogram %s buckets do not end at +Inf: %v", hk, h.les)
		}
		prevBound := math.Inf(-1)
		for i, le := range h.les[:len(h.les)-1] {
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil || bound <= prevBound {
				t.Fatalf("histogram %s bucket bounds not ascending: %v (%v)", hk, h.les, err)
			}
			prevBound = bound
			if i > 0 && h.buckets[i] < h.buckets[i-1] {
				t.Fatalf("histogram %s cumulative buckets decreased: %v", hk, h.buckets)
			}
		}
		if inf := h.buckets[len(h.buckets)-1]; inf != h.count || inf < h.buckets[len(h.buckets)-2] {
			t.Fatalf("histogram %s +Inf bucket %v != count %v", hk, inf, h.count)
		}
	}
	return series
}

// TestServeMetricsStrictExposition runs the strict parser over the full
// /metrics page in both serving shapes: the single-tenant untraced
// daemon (which must expose no tracing or tenant series), and a
// two-tenant traced one (which must expose per-tenant stage histograms
// and the tracing-only distributions).
func TestServeMetricsStrictExposition(t *testing.T) {
	clapModel, _ := fixture(t)

	// Single tenant, tracing off.
	src := &chanSource{name: "solo", ch: make(chan *clap.Connection, 16)}
	srv, err := New(Config{
		Backend:     loadModel(t, clapModel),
		Threshold:   0.5,
		DriftWindow: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.AddSource(src)
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, c := range clap.GenerateBenign(10, 3) {
		src.ch <- c
	}
	close(src.ch)
	waitScored(t, srv, 10)
	ts := httptest.NewServer(srv.Handler())
	body := getBody(t, ts.URL+"/metrics")
	series := lintProm(t, body)
	buildKey := fmt.Sprintf("clap_build_info{backend_tags=%q,go_version=%q,version=%q}",
		strings.Join(clap.BackendTags(), ","), runtime.Version(), clap.Version)
	if v, ok := series[buildKey]; !ok || v != 1 {
		t.Fatalf("missing build info series %s in:\n%s", buildKey, body)
	}
	for key := range series {
		if strings.Contains(key, `tenant="`) ||
			strings.HasPrefix(key, "clap_serve_ingest_wait_seconds") ||
			strings.HasPrefix(key, "clap_serve_batch_fill_ratio") {
			t.Fatalf("untraced single-tenant exposition leaked %s", key)
		}
	}
	if got := series[fmt.Sprintf("clap_serve_stage_latency_seconds_count{stage=%q}", "score")]; got != 10 {
		t.Fatalf("aggregate score-stage count %v, want 10", got)
	}
	ts.Close()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Two tenants, tracing on.
	srv2, srcA, srcB := twoTenantServer(t, Config{
		Threshold:   0.5,
		DriftWindow: -1,
		TraceSample: 1,
	}, tenant.Quota{}, tenant.Quota{})
	if err := srv2.SetTenantThreshold("a", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := srv2.SetTenantThreshold("b", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		src *chanSource
		n   int
	}{{srcA, 6}, {srcB, 4}} {
		for _, c := range clap.GenerateBenign(tc.n, 13) {
			tc.src.ch <- c
		}
		close(tc.src.ch)
	}
	waitScored(t, srv2, 10)
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Shutdown(context.Background())
	body2 := getBody(t, ts2.URL+"/metrics")
	series2 := lintProm(t, body2)

	for _, name := range []string{"a", "b"} {
		key := fmt.Sprintf("clap_serve_tenant_stage_latency_seconds_count{stage=%q,tenant=%q}", "score", name)
		want := float64(6)
		if name == "b" {
			want = 4
		}
		if got := series2[key]; got != want {
			t.Fatalf("%s = %v, want %v in:\n%s", key, got, want, body2)
		}
	}
	if got := series2["clap_serve_ingest_wait_seconds_count{}"]; got != 10 {
		t.Fatalf("ingest wait count %v, want 10", got)
	}
	if _, ok := series2["clap_serve_batch_fill_ratio_count{}"]; !ok {
		t.Fatalf("traced exposition missing the batch fill distribution:\n%s", body2)
	}
}

// getBody fetches a URL and returns its body, failing on any error.
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, b)
	}
	return string(b)
}
