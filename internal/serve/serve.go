// Package serve is the long-running online detection service: the layer
// that turns the clap library into a deployable daemon running beside a
// DPI middlebox (the paper's Figure 3 deployment, kept alive indefinitely).
//
// A Server wires three moving parts together:
//
//   - ingest: any number of live ServeSources (tailed pcap files, pcap
//     pipes, the trafficgen soak mode) deliver connections into one
//     bounded queue with explicit backpressure or load-shedding and
//     per-source drop/skip accounting;
//   - scoring: a single pump goroutine feeds the queue into
//     Pipeline.NewStream, so any registered backend scores connections
//     concurrently while results emerge in submission order;
//   - ops: a stdlib net/http surface exposes health, Prometheus metrics,
//     flagged-connection and summary JSON, live threshold adjustment, and
//     hot model reload (POST /v1/reload or SIGHUP in the CLI) through an
//     atomic backend swap that never mixes models within one connection.
//
// One Server can serve many TENANTS — named source groups, each with its
// own model handle, threshold, calibration + drift monitor, flagged
// ring, and admission quota — over the single shared scoring stream:
// connections carry their tenant through the stream, each verdict pins
// the owning tenant's atomically-published (model, threshold) pair, and
// cross-tenant micro-batching keeps the batched engine full even when
// each tenant alone is lightly loaded. Config's top-level fields define
// the implicit "default" tenant (single-tenant deployments behave
// exactly as before); Config.Tenants adds the rest. The ops API scopes
// by ?tenant= and lists tenants at /v1/tenants.
//
// See DESIGN.md §7 for the architecture diagram and endpoint table, and
// §11 for multi-tenant serving.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"clap"
	"clap/internal/backend"
	"clap/internal/calib"
	"clap/internal/obs"
	"clap/internal/tenant"
)

// DefaultTenant names the implicit tenant configured by Config's
// top-level fields; unscoped API requests resolve to it.
const DefaultTenant = "default"

// Config assembles a Server.
type Config struct {
	// Backend is the initial trained model (required). It is wrapped in a
	// reload-safe handle internally; pass any registered backend.
	Backend clap.Backend
	// ModelPath is the default model file for reloads (optional; reload
	// requests may name an explicit path instead).
	ModelPath string

	// Addr is the ops API listen address (e.g. "127.0.0.1:8080").
	// Empty means no listener — tests drive Handler directly.
	Addr string

	// Workers/Shards size the scoring engine (0: auto).
	Workers, Shards int

	// Batch is the micro-batch size for batched inference on capable
	// backends (0: the bench-tuned default of 24; 1: unbatched). Scores
	// are bit-identical at any batch size.
	Batch int

	// Lockstep is the cross-connection lockstep width for backends with
	// the lockstep capability: up to Lockstep connections' GRU
	// recurrences step together, with streamed connections scored in
	// opportunistic groups. 0 (the default) disables it — serving
	// behavior, metrics and summaries are then byte-identical to a
	// daemon without the feature. Scores are bit-identical at any width.
	Lockstep int

	// Threshold fixes the operating threshold; Calibration+FPR derive it
	// instead when Calibration is non-nil. Both may later be adjusted
	// live via /v1/threshold.
	Threshold   float64
	FPR         float64
	Calibration clap.Source

	// CalibrationSnapshot installs a pre-derived calibration (threshold +
	// benign-score reference) when no Calibration source is given.
	CalibrationSnapshot *clap.Calibration
	// CalibrationFile persists the calibration snapshot
	// (conventionally "<model>.calib"): a Start-time calibration and every
	// recalibrating reload save it there, and a restart with no
	// Calibration source loads it back, so the drift monitor keeps its
	// reference distribution across restarts. A snapshot whose backend
	// tag does not match the serving model is ignored with a log line.
	// When Threshold is set explicitly, a loaded snapshot contributes
	// only its reference distribution — never its threshold, and its FPR
	// target is dropped with it (the drift monitor's FPR rules would
	// otherwise alert forever against a target the fixed threshold
	// opted out of; quantile-shift monitoring remains active).
	CalibrationFile string

	// Quota bounds the default tenant's admission (zero: unlimited); see
	// TenantConfig.Quota.
	Quota tenant.Quota

	// Tenants configures additional named tenants served alongside the
	// default one. Every tenant shares the Server's scoring stream,
	// queue, and engine sizing; each owns its model handle, threshold,
	// calibration, drift monitor, flagged ring, and quota. Names must be
	// unique and must not be "default" (that one is implicit).
	Tenants []TenantConfig

	// Drift monitoring compares rolling windows of live scores against
	// the frozen calibration reference (quantile shift + estimated
	// operating FPR) — the clap_serve_drift / clap_serve_operating_fpr
	// gauges and the /v1/drift endpoint. DriftWindow is the scores per
	// rolling window (0: 256; negative: disable monitoring), DriftWindows
	// the retained window count (0: 4), DriftMaxShift the relative
	// quantile-shift alert level (0: 0.5; negative: rule off) and
	// DriftFPRFactor the allowed operating-FPR deviation factor (0: 3;
	// negative: rule off). Every tenant gets its own monitor with these
	// settings.
	DriftWindow    int
	DriftWindows   int
	DriftMaxShift  float64
	DriftFPRFactor float64
	// OnDriftAlert observes the DEFAULT tenant's drift alerts (fired once
	// per excursion, on the emit goroutine) — the hook the single-tenant
	// CLI uses to push drift lines into the alert log. Named tenants'
	// alerts go to OnTenantDriftAlert.
	OnDriftAlert func(DriftStatus)
	// OnTenantDriftAlert observes every tenant's drift alerts with the
	// tenant name (fired on the emit goroutine).
	OnTenantDriftAlert func(tenantName string, st DriftStatus)

	// IdleFlush, when positive, is applied to every registered source
	// that supports a configurable idle-flush window
	// (clap.IdleFlushable) — the per-source half-open flush timeout.
	IdleFlush time.Duration

	// TopN windows are localized per flagged connection. 0 keeps the
	// default of 5; a negative value disables localization (the Go
	// zero value cannot mean "disable" and "default" at once).
	TopN int

	// QueueDepth bounds the ingest queue (default 256). The queue is
	// shared by every tenant; per-tenant quotas shed BEFORE it, so one
	// tenant's overload never evicts another's deliveries.
	QueueDepth int
	// DropWhenFull selects load-shedding: a full queue drops (and counts)
	// new connections instead of blocking the source. Default false =
	// backpressure.
	DropWhenFull bool

	// FlaggedRing caps how many recent flagged results /v1/flagged serves
	// PER TENANT (default 256) — a chatty tenant can only evict its own
	// alerts.
	FlaggedRing int

	// TraceSample arms the provenance and tracing layer: every verdict
	// carries a provenance record (served at /v1/trace and attached to
	// flagged connections), and every TraceSample'th delivery per tenant —
	// plus every flagged connection — retains a deep trace (the full
	// per-window error series and localization, served at /v1/explain).
	// 0 (the default) disables tracing entirely: no provenance is
	// captured, and /metrics, /v1/flagged and the scoring path stay
	// byte-identical to the untraced daemon. 1 deep-traces everything.
	TraceSample int
	// TraceRing caps each tenant's retained decisions and deep traces
	// (default 256). Ignored while TraceSample is 0.
	TraceRing int

	// OnResult, if set, observes every scored result on the emit
	// goroutine — the hook the CLI uses for alert sinks and tests use for
	// score capture.
	OnResult func(clap.Result)
	// OnTenantResult is OnResult with the owning tenant's name — the
	// multi-tenant CLI routes each tenant's alerts to its own dedup log
	// through it.
	OnTenantResult func(tenantName string, r clap.Result)

	// Logf receives operational log lines (nil: silent).
	Logf func(format string, args ...any)
}

// TenantConfig configures one named tenant. The fields mirror Config's
// calibration surface; each resolves independently at Start with the
// same precedence (Calibration source > CalibrationSnapshot >
// CalibrationFile restore > fixed Threshold).
type TenantConfig struct {
	// Name identifies the tenant in the API, metrics labels, and CLI
	// flags (required; "default" is reserved).
	Name string
	// Backend is the tenant's trained model (required).
	Backend clap.Backend
	// ModelPath is the tenant's default reload source (optional).
	ModelPath string
	// Threshold / FPR / Calibration / CalibrationSnapshot /
	// CalibrationFile behave exactly as Config's, scoped to this tenant.
	Threshold           float64
	FPR                 float64
	Calibration         clap.Source
	CalibrationSnapshot *clap.Calibration
	CalibrationFile     string
	// Quota bounds the tenant's admission: max in-flight connections
	// plus a deliveries/sec token bucket. The zero value is unlimited.
	// Refusals are counted as the tenant's shed and the source's drops;
	// they never touch the shared queue.
	Quota tenant.Quota
}

// FlaggedConn is one flagged connection as served by /v1/flagged.
type FlaggedConn struct {
	Key        string    `json:"key"`
	Score      float64   `json:"score"`
	PeakWindow int       `json:"peak_window"`
	TopWindows []int     `json:"top_windows,omitempty"`
	Attack     string    `json:"attack,omitempty"`
	Time       time.Time `json:"time"`
	// Tenant names the owning tenant in multi-tenant mode (omitted in
	// single-tenant deployments, keeping the JSON shape unchanged).
	Tenant string `json:"tenant,omitempty"`
	// Provenance is the verdict's full decision record, attached when
	// tracing is armed (Config.TraceSample > 0; omitted otherwise, keeping
	// the untraced JSON shape unchanged). It pins the localization and the
	// (model, generation, threshold) binding even after the flagged ring
	// wraps — the deep trace behind it stays recoverable at /v1/explain.
	Provenance *obs.Decision `json:"provenance,omitempty"`
}

// DriftStatus is one drift evaluation, as served by /v1/drift and handed
// to OnDriftAlert.
type DriftStatus = calib.Status

// Server is the clap-serve daemon: ingest, scoring stream, ops API.
type Server struct {
	cfg  Config
	logf func(string, ...any)

	// hot and monitor alias the default tenant's handle and drift
	// monitor (kept as fields because the single-tenant surface — and
	// its tests — address them directly).
	hot     *backend.Hot
	monitor *calib.Monitor

	pipe   *clap.Pipeline
	stream *clap.PipelineStream

	// tenants holds every tenant's serving state, default first;
	// byName indexes them ("" is resolved to the default separately).
	tenants []*tenantState
	byName  map[string]*tenantState

	queue   chan queued
	sources []serveSource
	stats   []*srcCounters

	metrics *metrics

	// lastResult carries one result from emit to the observe hook that
	// follows it; both run on the stream's single emitter goroutine, so no
	// synchronization is needed. observe consumes and clears it.
	lastResult clap.Result

	httpLn  net.Listener
	httpSrv *http.Server

	cancel  context.CancelFunc
	stopped chan struct{} // closed when the pump has drained
	ingest  sync.WaitGroup
	started bool
	mu      sync.Mutex
}

// tenantState composes a tenant's core state with its serving-layer
// attachments: the calibration spec resolved at Start, the flagged
// ring, and the tenant's source accounting.
type tenantState struct {
	*tenant.Tenant
	spec    TenantConfig
	flagged *tenant.Ring[FlaggedConn]
	srcs    []*srcCounters
	// tracer holds the tenant's decision ring and deep-trace store
	// (nil while tracing is disabled).
	tracer *obs.Tracer
	// stageHist are the tenant's queue/score/emit latency histograms,
	// observed and rendered only in multi-tenant mode.
	stageHist [3]*obs.Histogram
}

type serveSource struct {
	src   clap.ServeSource
	stats *srcCounters
	owner *tenantState
}

type queued struct {
	conn  *clap.Connection
	stats *srcCounters
	// at stamps the enqueue time, only when tracing is armed — the pump
	// turns it into the shared-queue ingest-wait histogram.
	at time.Time
}

// New builds a Server (not yet started) around a trained backend.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, errors.New("serve: config needs a trained Backend")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.FlaggedRing <= 0 {
		cfg.FlaggedRing = 256
	}
	if cfg.TraceSample < 0 {
		cfg.TraceSample = 0
	}
	if cfg.TraceRing <= 0 {
		cfg.TraceRing = 256
	}
	switch {
	case cfg.TopN == 0:
		cfg.TopN = 5
	case cfg.TopN < 0:
		cfg.TopN = 0 // Pipeline's "localization off"
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	s := &Server{
		cfg:     cfg,
		logf:    logf,
		queue:   make(chan queued, cfg.QueueDepth),
		metrics: newMetrics(),
		byName:  make(map[string]*tenantState),
		stopped: make(chan struct{}),
	}

	// The default tenant is Config's top-level surface, normalized into
	// the same TenantConfig shape every named tenant uses.
	def, err := s.addTenant(TenantConfig{
		Name:                DefaultTenant,
		Backend:             cfg.Backend,
		ModelPath:           cfg.ModelPath,
		Threshold:           cfg.Threshold,
		FPR:                 cfg.FPR,
		Calibration:         cfg.Calibration,
		CalibrationSnapshot: cfg.CalibrationSnapshot,
		CalibrationFile:     cfg.CalibrationFile,
		Quota:               cfg.Quota,
	})
	if err != nil {
		return nil, err
	}
	s.hot = def.Hot
	s.monitor = def.Monitor
	for _, tc := range cfg.Tenants {
		if tc.Name == "" || tc.Name == DefaultTenant {
			return nil, fmt.Errorf("serve: tenant name %q is reserved (the default tenant is configured by the top-level fields)", tc.Name)
		}
		if _, err := s.addTenant(tc); err != nil {
			return nil, err
		}
	}

	opts := []clap.PipelineOption{clap.WithBackend(def.Hot), clap.WithTopN(cfg.TopN)}
	if cfg.TraceSample > 0 {
		opts = append(opts, clap.WithProvenance(true))
		s.metrics.ingestWait = obs.NewHistogram(obs.LatencyBounds)
		s.metrics.batchFill = obs.NewHistogram(obs.RatioBounds)
	}
	if cfg.Workers > 0 {
		opts = append(opts, clap.WithWorkers(cfg.Workers))
	}
	if cfg.Shards > 0 {
		opts = append(opts, clap.WithShards(cfg.Shards))
	}
	if cfg.Batch > 0 {
		opts = append(opts, clap.WithBatchSize(cfg.Batch))
	}
	if cfg.Lockstep > 0 {
		opts = append(opts, clap.WithLockstep(cfg.Lockstep))
	}
	// Calibration (source or snapshot) resolves at Start, where its
	// outcome seeds each tenant's hot (model, threshold) pair and drift
	// monitor reference; only the default tenant's fixed threshold
	// configures the pipeline directly.
	if cfg.Calibration == nil && cfg.Threshold > 0 {
		opts = append(opts, clap.WithThreshold(cfg.Threshold))
	}
	s.pipe, err = clap.NewPipeline(opts...)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// addTenant validates one tenant's spec and installs its serving state.
func (s *Server) addTenant(tc TenantConfig) (*tenantState, error) {
	who := "config"
	if tc.Name != DefaultTenant {
		who = fmt.Sprintf("tenant %q", tc.Name)
	}
	if _, dup := s.byName[tc.Name]; dup {
		return nil, fmt.Errorf("serve: duplicate tenant %q", tc.Name)
	}
	if tc.Backend == nil {
		return nil, fmt.Errorf("serve: %s needs a trained Backend", who)
	}
	// Reject non-finite thresholds here rather than relying on the
	// pipeline's WithThreshold guard: NaN would not survive the > 0 gate
	// and would silently fall back to score-only mode.
	if tc.Threshold < 0 || math.IsNaN(tc.Threshold) || math.IsInf(tc.Threshold, 0) {
		return nil, fmt.Errorf("serve: %s threshold %v must be finite and >= 0", who, tc.Threshold)
	}
	// The FPR bound is validated here so a bad config fails at
	// construction, not minutes later at Start.
	if tc.Calibration != nil && !(tc.FPR > 0 && tc.FPR < 1) {
		return nil, fmt.Errorf("serve: %s calibration target FPR %v must be in (0, 1)", who, tc.FPR)
	}
	hot, err := backend.NewHot(tc.Backend)
	if err != nil {
		return nil, fmt.Errorf("serve: %s: %w", who, err)
	}
	var monitor *calib.Monitor
	if s.cfg.DriftWindow >= 0 {
		monitor = calib.NewMonitor(nil, 0, calib.MonitorConfig{
			Window:    s.cfg.DriftWindow,
			Windows:   s.cfg.DriftWindows,
			MaxShift:  s.cfg.DriftMaxShift,
			FPRFactor: s.cfg.DriftFPRFactor,
		})
	}
	core, err := tenant.New(tc.Name, hot, monitor, tc.Quota)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	core.ModelPath = tc.ModelPath
	core.CalibrationFile = tc.CalibrationFile
	core.FPR = tc.FPR
	t := &tenantState{
		Tenant:  core,
		spec:    tc,
		flagged: tenant.NewRing[FlaggedConn](s.cfg.FlaggedRing),
	}
	if s.cfg.TraceSample > 0 {
		t.tracer = obs.NewTracer(s.cfg.TraceRing)
	}
	for i := range t.stageHist {
		t.stageHist[i] = obs.NewHistogram(obs.LatencyBounds)
	}
	s.tenants = append(s.tenants, t)
	s.byName[tc.Name] = t
	return t, nil
}

// multiTenant reports whether any named tenants are configured — the
// gate that keeps single-tenant output (metrics, JSON shapes, log
// lines) byte-identical to the pre-tenant daemon.
func (s *Server) multiTenant() bool { return len(s.tenants) > 1 }

// tenantOf resolves a connection's tenant tag ("": the default tenant).
func (s *Server) tenantOf(name string) *tenantState {
	if name == "" {
		return s.tenants[0]
	}
	if t, ok := s.byName[name]; ok {
		return t
	}
	return s.tenants[0]
}

// tenantByName resolves an API-facing tenant name ("": default), with
// ok=false for unknown names.
func (s *Server) tenantByName(name string) (*tenantState, bool) {
	if name == "" {
		return s.tenants[0], true
	}
	t, ok := s.byName[name]
	return t, ok
}

// Tenants lists the configured tenant names, default first.
func (s *Server) Tenants() []string {
	out := make([]string, len(s.tenants))
	for i, t := range s.tenants {
		out[i] = t.Name
	}
	return out
}

// AddSource registers a live source for the default tenant. Must be
// called before Start. A configured IdleFlush is applied to sources that
// support it, so the half-open flush window is a per-source serving knob
// rather than whatever constant the source was built with.
func (s *Server) AddSource(src clap.ServeSource) {
	s.addSource(s.tenants[0], src)
}

// AddTenantSource registers a live source delivering into the named
// tenant ("" is the default tenant). Must be called before Start.
func (s *Server) AddTenantSource(name string, src clap.ServeSource) error {
	t, ok := s.tenantByName(name)
	if !ok {
		return fmt.Errorf("serve: unknown tenant %q", name)
	}
	s.addSource(t, src)
	return nil
}

func (s *Server) addSource(t *tenantState, src clap.ServeSource) {
	if s.cfg.IdleFlush > 0 {
		if f, ok := src.(clap.IdleFlushable); ok {
			f.SetIdleFlush(s.cfg.IdleFlush)
		}
	}
	st := &srcCounters{name: src.Name()}
	if rs, ok := src.(clap.RingStatser); ok {
		st.ring = rs
	}
	s.sources = append(s.sources, serveSource{src: src, stats: st, owner: t})
	s.stats = append(s.stats, st)
	t.srcs = append(t.srcs, st)
}

// Start opens the scoring stream (running threshold calibration if
// configured), launches every source's ingest goroutine and the pump, and
// — when cfg.Addr is set — begins serving the ops API. It returns once
// the service is live.
func (s *Server) Start(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("serve: already started")
	}

	for _, t := range s.tenants {
		if err := s.resolveCalibration(t); err != nil {
			return err
		}
	}
	// One shared stream scores every tenant: the resolver pins each
	// connection to its OWN tenant's (model, threshold) pair, so tenants
	// reload and recalibrate independently while their windows share
	// micro-batches.
	stream, err := s.pipe.NewStreamResolved(s.resolveHot, s.emit, clap.StreamHooks{Observe: s.observe})
	if err != nil {
		return err
	}
	s.stream = stream
	if ls := s.pipe.Lockstep(); ls > 0 {
		s.logf("serving %s (threshold %.6f, %d workers, batch %d, lockstep %d)",
			s.hot.Describe(), stream.Threshold(), s.pipe.Engine().Workers(), s.pipe.BatchSize(), ls)
	} else {
		s.logf("serving %s (threshold %.6f, %d workers, batch %d)",
			s.hot.Describe(), stream.Threshold(), s.pipe.Engine().Workers(), s.pipe.BatchSize())
	}
	for _, t := range s.tenants[1:] {
		s.logf("tenant %s: serving %s (threshold %.6f)", t.Name, t.Hot.Describe(), t.Threshold())
	}

	ctx, s.cancel = context.WithCancel(ctx)

	// Ingest: one goroutine per source, all feeding the bounded queue.
	for _, src := range s.sources {
		src := src
		s.ingest.Add(1)
		go func() {
			defer s.ingest.Done()
			skipped, err := src.src.Stream(ctx, s.deliverFunc(ctx, src.stats, src.owner))
			src.stats.skipped.Add(uint64(skipped))
			src.stats.done.Store(true)
			if err != nil {
				s.logf("source %s failed: %v", src.src.Name(), err)
			} else {
				s.logf("source %s finished (%d delivered, %d dropped, %d skipped)",
					src.src.Name(), src.stats.delivered.Load(),
					src.stats.dropped.Load(), src.stats.skipped.Load())
			}
		}()
	}

	// Close the queue once every source is done, so the pump can drain.
	go func() {
		s.ingest.Wait()
		close(s.queue)
	}()

	// Pump: the single Submit goroutine the stream contract requires.
	go func() {
		for q := range s.queue {
			if !q.at.IsZero() {
				s.metrics.ingestWait.Observe(time.Since(q.at).Seconds())
			}
			s.stream.Submit(q.conn)
		}
		s.stream.Close()
		close(s.stopped)
	}()

	if s.cfg.Addr != "" {
		ln, err := net.Listen("tcp", s.cfg.Addr)
		if err != nil {
			s.cancel()
			return fmt.Errorf("serve: listening on %s: %w", s.cfg.Addr, err)
		}
		s.httpLn = ln
		s.httpSrv = &http.Server{Handler: s.Handler()}
		go func() {
			if err := s.httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				s.logf("ops API server: %v", err)
			}
		}()
		s.logf("ops API listening on http://%s", ln.Addr())
	}
	s.started = true
	return nil
}

// resolveHot is the stream's per-connection pair resolver: the owning
// tenant's reload-safe handle. Runs on pool workers; the tenant map is
// immutable after New.
func (s *Server) resolveHot(c *clap.Connection) *clap.HotBackend {
	return s.tenantOf(c.Tenant).Hot
}

// resolveCalibration runs once per tenant at Start: it derives (or
// restores) the tenant's calibration — the operating threshold and the
// drift monitor's frozen reference distribution — and installs the
// threshold into the tenant's hot (model, threshold) pair before the
// first connection is scored. Precedence: an explicit Calibration source
// is scored now; otherwise an explicit CalibrationSnapshot applies;
// otherwise a persisted CalibrationFile from an earlier run restores the
// reference (and the threshold too, unless a fixed Threshold overrides
// it); otherwise only the fixed Threshold (if any) is installed.
func (s *Server) resolveCalibration(t *tenantState) error {
	tc := t.spec
	switch {
	case tc.Calibration != nil:
		cal, err := s.pipe.CalibrateBackend(t.Hot.Current(), tc.FPR, tc.Calibration)
		if err != nil {
			return fmt.Errorf("serve: %scalibrating: %w", t.logPrefix(), err)
		}
		s.logf("%scalibrated threshold %.6f at FPR %g over %d connections",
			t.logPrefix(), cal.Threshold, cal.FPR, cal.Conns)
		if err := t.Hot.SetThreshold(cal.Threshold); err != nil {
			return fmt.Errorf("serve: %sinstalling calibrated threshold: %w", t.logPrefix(), err)
		}
		s.resetMonitor(t, cal)
		s.persistCalibration(t, cal)
		return nil

	case tc.CalibrationSnapshot != nil:
		cal := tc.CalibrationSnapshot
		if err := cal.Validate(); err != nil {
			return fmt.Errorf("serve: %s%w", t.logPrefix(), err)
		}
		if cal.Tag != t.Hot.Tag() {
			return fmt.Errorf("serve: %scalibration snapshot is for backend %q, serving %q", t.logPrefix(), cal.Tag, t.Hot.Tag())
		}
		if err := t.Hot.SetThreshold(cal.Threshold); err != nil {
			return fmt.Errorf("serve: %sinstalling snapshot threshold: %w", t.logPrefix(), err)
		}
		s.resetMonitor(t, cal)
		s.persistCalibration(t, cal)
		s.logf("%sinstalled calibration snapshot: threshold %.6f at FPR %g", t.logPrefix(), cal.Threshold, cal.FPR)
		return nil
	}

	// No explicit calibration. A snapshot persisted by an earlier run
	// restores the drift reference — and the threshold, unless the
	// config fixes one. Restoration is best-effort: a missing, stale or
	// unreadable snapshot degrades to reference-less monitoring with a
	// log line, never a failed start.
	if t.CalibrationFile != "" {
		switch cal, err := clap.LoadCalibrationFile(t.CalibrationFile); {
		case err == nil && cal.Tag != t.Hot.Tag():
			s.logf("%signoring calibration snapshot %s: calibrated for backend %q, serving %q",
				t.logPrefix(), t.CalibrationFile, cal.Tag, t.Hot.Tag())
		case err == nil:
			th := cal.Threshold
			fprTarget := cal.FPR
			if tc.Threshold > 0 {
				// A fixed threshold overrides the snapshot's: the snapshot
				// contributes only its reference distribution, and its FPR
				// target is dropped too — alerting that the operating FPR
				// misses a target the operator explicitly opted out of
				// would ring forever. Quantile-shift monitoring remains.
				th = tc.Threshold
				fprTarget = 0
			}
			if t.Monitor != nil {
				t.Monitor.Reset(cal.Ref, fprTarget)
			}
			if err := t.Hot.SetThreshold(th); err != nil {
				return fmt.Errorf("serve: %sinstalling restored threshold: %w", t.logPrefix(), err)
			}
			s.logf("%srestored calibration snapshot from %s: threshold %.6f at FPR %g (reference of %d scores)",
				t.logPrefix(), t.CalibrationFile, th, cal.FPR, cal.Ref.Count())
			return nil
		case !os.IsNotExist(err):
			s.logf("%scalibration snapshot %s unreadable: %v", t.logPrefix(), t.CalibrationFile, err)
		}
	}
	if tc.Threshold > 0 {
		if err := t.Hot.SetThreshold(tc.Threshold); err != nil {
			return fmt.Errorf("serve: %sinstalling threshold: %w", t.logPrefix(), err)
		}
	}
	return nil
}

// logPrefix tags a tenant's log lines and errors ("" for the default
// tenant, keeping single-tenant output identical to the pre-tenant
// daemon).
func (t *tenantState) logPrefix() string {
	if t.Name == DefaultTenant {
		return ""
	}
	return fmt.Sprintf("tenant %s: ", t.Name)
}

// resetMonitor rebases a tenant's drift monitoring on a new calibration.
// Used by Start's calibration, which runs under s.mu before the stream
// exists (nothing is in flight); the reload path uses rebaseMonitor.
func (s *Server) resetMonitor(t *tenantState, cal *clap.Calibration) {
	if t.Monitor != nil {
		t.Monitor.Reset(cal.Ref, cal.FPR)
	}
}

// rebaseMonitor rebases a tenant's drift monitoring mid-serve: the reset
// and a skip of the tenant's current in-flight count are armed in one
// monitor critical section, so scores from connections still pinned to
// the pre-recalibration (model, threshold) pair — which emit after the
// reset — can never pollute the new reference's first window (across
// model families their old-scale scores would otherwise fire a spurious
// alert right after the fix). The in-flight count is read before the
// reset; connections that emit in between land in the discarded old
// state, so the error direction is only ever skipping a few fresh
// scores.
func (s *Server) rebaseMonitor(t *tenantState, cal *clap.Calibration) {
	if t.Monitor == nil {
		return
	}
	t.Monitor.ResetSkipping(cal.Ref, cal.FPR, t.InFlight())
}

// persistCalibration saves a tenant's active calibration snapshot
// alongside its model file (best-effort: serving is never taken down by
// a snapshot write failure).
func (s *Server) persistCalibration(t *tenantState, cal *clap.Calibration) {
	if t.CalibrationFile == "" {
		return
	}
	if err := clap.SaveCalibrationFile(t.CalibrationFile, cal); err != nil {
		s.logf("%spersisting calibration snapshot to %s: %v", t.logPrefix(), t.CalibrationFile, err)
		return
	}
	s.logf("%scalibration snapshot saved to %s", t.logPrefix(), t.CalibrationFile)
}

// OpsAddr reports the ops API's bound address ("" without a listener) —
// useful with Addr ":0".
func (s *Server) OpsAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// deliverFunc builds one source's delivery callback: the owning tenant's
// quota gate, then bounded enqueue with either backpressure (block until
// the pump catches up or shutdown) or load-shedding (count the drop and
// move on). Quota refusals shed BEFORE the shared queue — a tenant over
// its bound spends no shared capacity, so its overload can never starve
// a neighbour's deliveries.
func (s *Server) deliverFunc(ctx context.Context, st *srcCounters, t *tenantState) func(*clap.Connection) {
	return func(c *clap.Connection) {
		if !t.Admit(time.Now()) {
			st.dropped.Add(1)
			return
		}
		if t.Name != DefaultTenant {
			c.Tenant = t.Name
		}
		q := queued{conn: c, stats: st}
		if s.cfg.TraceSample > 0 {
			// Attribution and the head-sampling verdict ride the
			// connection into the shared stream; the enqueue stamp feeds
			// the ingest-wait histogram at the pump.
			c.Source = st.name
			c.TraceSampled = t.SampleTrace(s.cfg.TraceSample)
			q.at = time.Now()
		}
		if s.cfg.DropWhenFull {
			select {
			case s.queue <- q:
				st.delivered.Add(1)
				t.Delivered.Add(1)
			default:
				st.dropped.Add(1)
				t.Shed.Add(1)
				t.Release()
			}
			return
		}
		select {
		case s.queue <- q:
			st.delivered.Add(1)
			t.Delivered.Add(1)
		case <-ctx.Done():
			st.dropped.Add(1)
			t.Shed.Add(1)
			t.Release()
		}
	}
}

// emit consumes ordered results on the stream's emitter goroutine.
func (s *Server) emit(r clap.Result) {
	s.lastResult = r
	t := s.tenantOf(r.Conn.Tenant)
	t.Release()
	t.Scored.Add(1)
	t.Packets.Add(uint64(r.Conn.Len()))
	if t.Monitor != nil {
		// Off the hot scoring path: the sketch insert rides the single
		// emit goroutine, not the pool workers. A window rotation that
		// newly trips the drift condition fires the alert hook once.
		if st := t.Monitor.Observe(r.Score, t.Threshold()); st != nil {
			s.driftAlert(t, *st)
		}
	}
	if r.Flagged {
		t.Flagged.Add(1)
		// With tracing armed the flagged-ring insert moves to observe,
		// which runs next on this same goroutine — the entry then carries
		// the COMPLETED provenance record (Seq, latencies, timestamp)
		// instead of a half-filled one.
		if r.Prov == nil {
			fc := FlaggedConn{
				Key:        r.Conn.Key.String(),
				Score:      r.Score,
				PeakWindow: r.PeakWindow,
				TopWindows: r.TopWindows,
				Attack:     r.Conn.AttackName,
				Time:       time.Now(),
			}
			if s.multiTenant() {
				fc.Tenant = t.Name
			}
			t.flagged.Add(fc)
		}
	}
	if s.cfg.OnResult != nil {
		s.cfg.OnResult(r)
	}
	if s.cfg.OnTenantResult != nil {
		s.cfg.OnTenantResult(t.Name, r)
	}
}

// driftAlert reacts to a tenant's newly tripped drift condition: count
// it, log it, and hand it to the configured alert hooks (the CLI routes
// them into the dedup alert log).
func (s *Server) driftAlert(t *tenantState, st DriftStatus) {
	s.metrics.driftAlerts.Add(1)
	t.DriftAlerts.Add(1)
	s.logf("%sDRIFT ALERT: %s (drift=%.4f, operating FPR %.4f vs target %.4f) — recalibrate via POST /v1/reload {\"calibration\": ...}",
		t.logPrefix(), st.Reason, st.Drift, st.OperatingFPR, st.TargetFPR)
	if s.cfg.OnDriftAlert != nil && t.Name == DefaultTenant {
		s.cfg.OnDriftAlert(st)
	}
	if s.cfg.OnTenantDriftAlert != nil {
		s.cfg.OnTenantDriftAlert(t.Name, st)
	}
}

// DriftStatus evaluates the default tenant's drift statistics right now
// (ok=false when drift monitoring is disabled).
func (s *Server) DriftStatus() (DriftStatus, bool) {
	if s.monitor == nil {
		return DriftStatus{}, false
	}
	return s.monitor.Status(s.Threshold()), true
}

// observe feeds the stream's stage latencies into the metrics and, with
// tracing armed, completes and publishes the connection's provenance
// record. It runs on the emitter goroutine right after this connection's
// emit, so the verdict recorded there and the latencies land together —
// and a record only becomes visible to /v1/trace, /v1/explain and
// /v1/flagged once it is complete.
func (s *Server) observe(c *clap.Connection, st clap.StreamStats) {
	r := s.lastResult
	s.lastResult = clap.Result{}
	s.metrics.observeConn(c.Len(), r.Flagged, st.QueueWait, st.Score, st.EmitWait)
	t := s.tenantOf(c.Tenant)
	if s.multiTenant() {
		t.stageHist[stageQueue].Observe(st.QueueWait.Seconds())
		t.stageHist[stageScore].Observe(st.Score.Seconds())
		t.stageHist[stageEmit].Observe(st.EmitWait.Seconds())
	}
	d := r.Prov
	if d == nil {
		return
	}
	d.Seq = st.Seq
	d.QueueWaitNS = st.QueueWait.Nanoseconds()
	d.ScoreNS = st.Score.Nanoseconds()
	d.EmitWaitNS = st.EmitWait.Nanoseconds()
	d.Time = time.Now()
	if d.BatchFill > 0 {
		s.metrics.batchFill.Observe(d.BatchFill)
	}
	t.tracer.Record(*d)
	if r.Flagged || d.Sampled {
		t.tracer.RecordTrace(obs.Trace{
			Decision:   *d,
			Errors:     r.Errors,
			TopWindows: r.TopWindows,
			PeakWindow: r.PeakWindow,
		})
	}
	if r.Flagged {
		fc := FlaggedConn{
			Key:        d.Key,
			Score:      r.Score,
			PeakWindow: r.PeakWindow,
			TopWindows: r.TopWindows,
			Attack:     c.AttackName,
			Time:       d.Time,
			Provenance: d,
		}
		if s.multiTenant() {
			fc.Tenant = t.Name
		}
		t.flagged.Add(fc)
	}
}

// Flagged returns the most recent flagged connections across every
// tenant, merged oldest-first by flag time and capped at n (n <= 0: all
// retained). Each tenant's ring is bounded independently, so one chatty
// tenant can no longer evict every other tenant's alerts.
func (s *Server) Flagged(n int) []FlaggedConn {
	out := make([]FlaggedConn, 0, len(s.tenants)*4)
	for _, t := range s.tenants {
		out = append(out, t.flagged.Snapshot()...)
	}
	// Stable: equal timestamps keep ring (insertion) order, so the
	// single-tenant view is exactly the ring's.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// FlaggedTenant returns one tenant's recent flagged connections, oldest
// first, capped at n (n <= 0: all retained).
func (s *Server) FlaggedTenant(name string, n int) ([]FlaggedConn, error) {
	t, ok := s.tenantByName(name)
	if !ok {
		return nil, fmt.Errorf("serve: unknown tenant %q", name)
	}
	out := t.flagged.Snapshot()
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out, nil
}

// streamOrNil returns the scoring stream, or nil before Start — the ops
// handlers guard on it so a Handler mounted early serves 503 instead of
// panicking.
func (s *Server) streamOrNil() *clap.PipelineStream {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stream
}

// Threshold reports the default tenant's live operating threshold (0
// before Start).
func (s *Server) Threshold() float64 {
	st := s.streamOrNil()
	if st == nil {
		return 0
	}
	return st.Threshold()
}

// SetThreshold adjusts the default tenant's live operating threshold.
func (s *Server) SetThreshold(th float64) error {
	st := s.streamOrNil()
	if st == nil {
		return errors.New("serve: not started")
	}
	if err := st.SetThreshold(th); err != nil {
		return err
	}
	s.logf("threshold set to %.6f", th)
	return nil
}

// SetTenantThreshold adjusts one tenant's live operating threshold ("":
// the default tenant).
func (s *Server) SetTenantThreshold(name string, th float64) error {
	t, ok := s.tenantByName(name)
	if !ok {
		return fmt.Errorf("serve: unknown tenant %q", name)
	}
	if t.Name == DefaultTenant {
		return s.SetThreshold(th)
	}
	if err := t.Hot.SetThreshold(th); err != nil {
		return err
	}
	s.logf("%sthreshold set to %.6f", t.logPrefix(), th)
	return nil
}

// ReloadInfo describes the models on either side of a reload.
type ReloadInfo struct {
	Tag        string  `json:"tag"`
	Describe   string  `json:"describe"`
	Generation uint64  `json:"generation"`
	Threshold  float64 `json:"threshold"`
}

// ReloadRequest describes one reload: which model file to load and,
// optionally, how to re-derive its operating threshold in the same
// transaction.
type ReloadRequest struct {
	// Path is the model file ("" falls back to the tenant's configured
	// ModelPath — except under Calibration "live" with no path, which
	// keeps the current model and only re-derives its threshold).
	Path string `json:"path"`
	// Calibration selects auto-recalibration: "" keeps the current
	// threshold (the legacy reload-then-PUT flow), "live" derives the
	// threshold from the drift monitor's recent score sketch, and any
	// other value is read as a benign pcap path scored with the incoming
	// model. Either way the new model and its re-derived threshold are
	// published in ONE atomic hot-pair transaction — no connection can
	// ever be judged by a (new model, old threshold) or (old model, new
	// threshold) crossover.
	Calibration string `json:"calibration"`
	// FPR is the recalibration target (0: the monitor's current target,
	// falling back to the serve config's FPR).
	FPR float64 `json:"fpr"`
}

// ReloadResult reports one reload, including the recalibration outcome.
type ReloadResult struct {
	Old, New         ReloadInfo
	Recalibrated     bool
	CalibrationConns int
}

// Reload hot-swaps the default tenant's serving model from a model file
// written with SaveBackend (any registered backend tag — the tagged
// header picks the decoder), keeping the current threshold. path ""
// falls back to the configured ModelPath. The swap is atomic: in-flight
// connections finish on the model that picked them up, later ones score
// on the new model, and a failed load leaves the current model serving.
func (s *Server) Reload(path string) (before, after ReloadInfo, err error) {
	res, err := s.ReloadWith(ReloadRequest{Path: path})
	if err != nil {
		return before, after, err
	}
	return res.Old, res.New, nil
}

// ReloadWith is Reload plus optional atomic recalibration (the full
// /v1/reload contract), against the default tenant. With a Calibration
// source the incoming model's threshold is derived first — from a benign
// pcap scored with that model, or from the live score sketch — and model
// and threshold are then published in one hot-pair transaction; the
// drift monitor rebases on the new reference distribution and the
// persisted calibration snapshot (if configured) is rewritten.
func (s *Server) ReloadWith(req ReloadRequest) (ReloadResult, error) {
	return s.reloadTenant(s.tenants[0], req)
}

// ReloadTenant is ReloadWith scoped to one tenant ("": the default).
// Tenants reload independently: only the named tenant's pair handle,
// monitor, and calibration snapshot move; every other tenant's verdicts
// are untouched.
func (s *Server) ReloadTenant(name string, req ReloadRequest) (ReloadResult, error) {
	t, ok := s.tenantByName(name)
	if !ok {
		return ReloadResult{}, fmt.Errorf("serve: unknown tenant %q", name)
	}
	return s.reloadTenant(t, req)
}

func (s *Server) reloadTenant(t *tenantState, req ReloadRequest) (res ReloadResult, err error) {
	t.ReloadMu.Lock()
	defer t.ReloadMu.Unlock()

	prevB, prevTh, _ := t.Hot.CurrentPair()
	res.Old = ReloadInfo{Tag: prevB.Tag(), Describe: prevB.Describe(), Generation: t.Hot.Generation(), Threshold: prevTh}

	// Resolve the incoming model. "live" recalibration with no explicit
	// path keeps the current model: the recent sketch describes THIS
	// model's score scale, so rebinding it to a freshly loaded file is
	// only sound when the operator names that file deliberately.
	keepModel := req.Path == "" && req.Calibration == "live"
	b := prevB
	path := req.Path
	if !keepModel {
		if path == "" {
			path = t.ModelPath
		}
		if path == "" {
			return res, fmt.Errorf("serve: %sno model path configured for reload", t.logPrefix())
		}
		b, err = clap.LoadBackendFile(path)
		if err != nil {
			return res, fmt.Errorf("serve: reload: %w", err)
		}
		// Stage-2-only reload: with a cascade serving and the incoming file
		// holding a bare backend matching its expensive stage, graft the new
		// model in as stage 2 — the cheap screen, escalation threshold, and
		// escalation counters carry over, so retraining the expensive model
		// never forces retraining the screen.
		if cc, ok := prevB.(*backend.Cascade); ok {
			if _, isCascade := b.(*backend.Cascade); !isCascade {
				if _, s2 := cc.Stages(); b.Tag() == s2.Tag() {
					grafted, gerr := cc.WithStage2(b)
					if gerr != nil {
						return res, fmt.Errorf("serve: reload: grafting stage 2: %w", gerr)
					}
					s.logf("%scascade: grafting %s model from %s as stage 2 (screen and escalation kept)", t.logPrefix(), b.Tag(), path)
					b = grafted
				}
			}
		}
	}

	// Derive the new calibration before anything is published, so a
	// failed calibration leaves the serving state untouched.
	var cal *clap.Calibration
	switch req.Calibration {
	case "":
	case "live":
		if t.Monitor == nil {
			return res, errors.New("serve: live recalibration needs drift monitoring enabled")
		}
		fpr := req.FPR
		if fpr == 0 {
			if fpr = t.Monitor.TargetFPR(); fpr == 0 {
				fpr = t.FPR
			}
		}
		th, live, rerr := t.Monitor.Recalibrate(fpr)
		if rerr != nil {
			return res, fmt.Errorf("serve: reload: %w", rerr)
		}
		cal = &clap.Calibration{Tag: b.Tag(), FPR: fpr, Threshold: th, Conns: int(live.Count()), Ref: live}
	default:
		fpr := req.FPR
		if fpr == 0 {
			fpr = t.FPR
		}
		cal, err = s.pipe.CalibrateBackend(b, fpr, clap.PCAPFile(req.Calibration))
		if err != nil {
			return res, fmt.Errorf("serve: reload: %w", err)
		}
	}

	// Publish. One transaction whichever shape the reload takes: model
	// and threshold move together (SwapPair), or only one of them moves.
	switch {
	case cal == nil:
		if _, err := t.Hot.Swap(b); err != nil {
			return res, fmt.Errorf("serve: reload: %w", err)
		}
	case keepModel:
		if err := t.Hot.SetThreshold(cal.Threshold); err != nil {
			return res, fmt.Errorf("serve: reload: %w", err)
		}
	default:
		if _, err := t.Hot.SwapPair(b, cal.Threshold); err != nil {
			return res, fmt.Errorf("serve: reload: %w", err)
		}
	}
	if cal != nil {
		res.Recalibrated = true
		res.CalibrationConns = cal.Conns
		s.rebaseMonitor(t, cal)
		s.persistCalibration(t, cal)
	}

	if !keepModel {
		s.metrics.reloads.Add(1)
		t.Reloads.Add(1)
	}
	_, newTh, _ := t.Hot.CurrentPair()
	res.New = ReloadInfo{Tag: b.Tag(), Describe: b.Describe(), Generation: t.Hot.Generation(), Threshold: newTh}
	switch {
	case keepModel:
		s.logf("%srecalibrated in place: threshold %.6f -> %.6f (FPR target %g, %d live scores)",
			t.logPrefix(), res.Old.Threshold, res.New.Threshold, cal.FPR, cal.Conns)
	case res.Recalibrated:
		s.logf("%sreloaded model from %s with calibration %q: %s (th %.6f) -> %s (th %.6f, generation %d)",
			t.logPrefix(), path, req.Calibration, res.Old.Tag, res.Old.Threshold, res.New.Tag, res.New.Threshold, res.New.Generation)
	default:
		s.logf("%sreloaded model from %s: %s -> %s (generation %d)", t.logPrefix(), path, res.Old.Tag, res.New.Tag, res.New.Generation)
	}
	return res, nil
}

// Shutdown stops ingest, drains the queue and the scoring stream (every
// accepted connection is scored and emitted), and closes the ops API. It
// is bounded by ctx; a second call is a no-op.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return errors.New("serve: not started")
	}
	cancel := s.cancel
	s.mu.Unlock()

	cancel() // sources see ctx.Done and return; queue closes after them
	select {
	case <-s.stopped: // pump drained and closed the stream
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
	if s.httpSrv != nil {
		if err := s.httpSrv.Shutdown(ctx); err != nil {
			return err
		}
	}
	s.logf("shutdown complete: %d connections scored, %d flagged",
		s.metrics.connsScored.Load(), s.metrics.flagged.Load())
	return nil
}

// Scored reports the total connections scored so far.
func (s *Server) Scored() uint64 { return s.metrics.connsScored.Load() }
