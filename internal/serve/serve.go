// Package serve is the long-running online detection service: the layer
// that turns the clap library into a deployable daemon running beside a
// DPI middlebox (the paper's Figure 3 deployment, kept alive indefinitely).
//
// A Server wires three moving parts together:
//
//   - ingest: any number of live ServeSources (tailed pcap files, pcap
//     pipes, the trafficgen soak mode) deliver connections into one
//     bounded queue with explicit backpressure or load-shedding and
//     per-source drop/skip accounting;
//   - scoring: a single pump goroutine feeds the queue into
//     Pipeline.NewStream, so any registered backend scores connections
//     concurrently while results emerge in submission order;
//   - ops: a stdlib net/http surface exposes health, Prometheus metrics,
//     flagged-connection and summary JSON, live threshold adjustment, and
//     hot model reload (POST /v1/reload or SIGHUP in the CLI) through an
//     atomic backend swap that never mixes models within one connection.
//
// See DESIGN.md §7 for the architecture diagram and endpoint table.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"time"

	"clap"
	"clap/internal/backend"
)

// Config assembles a Server.
type Config struct {
	// Backend is the initial trained model (required). It is wrapped in a
	// reload-safe handle internally; pass any registered backend.
	Backend clap.Backend
	// ModelPath is the default model file for reloads (optional; reload
	// requests may name an explicit path instead).
	ModelPath string

	// Addr is the ops API listen address (e.g. "127.0.0.1:8080").
	// Empty means no listener — tests drive Handler directly.
	Addr string

	// Workers/Shards size the scoring engine (0: auto).
	Workers, Shards int

	// Batch is the micro-batch size for batched inference on capable
	// backends (0: the bench-tuned default of 24; 1: unbatched). Scores
	// are bit-identical at any batch size.
	Batch int

	// Threshold fixes the operating threshold; Calibration+FPR derive it
	// instead when Calibration is non-nil. Both may later be adjusted
	// live via /v1/threshold.
	Threshold   float64
	FPR         float64
	Calibration clap.Source

	// TopN windows are localized per flagged connection. 0 keeps the
	// default of 5; a negative value disables localization (the Go
	// zero value cannot mean "disable" and "default" at once).
	TopN int

	// QueueDepth bounds the ingest queue (default 256).
	QueueDepth int
	// DropWhenFull selects load-shedding: a full queue drops (and counts)
	// new connections instead of blocking the source. Default false =
	// backpressure.
	DropWhenFull bool

	// FlaggedRing caps how many recent flagged results /v1/flagged serves
	// (default 256).
	FlaggedRing int

	// OnResult, if set, observes every scored result on the emit
	// goroutine — the hook the CLI uses for alert sinks and tests use for
	// score capture.
	OnResult func(clap.Result)

	// Logf receives operational log lines (nil: silent).
	Logf func(format string, args ...any)
}

// FlaggedConn is one flagged connection as served by /v1/flagged.
type FlaggedConn struct {
	Key        string    `json:"key"`
	Score      float64   `json:"score"`
	PeakWindow int       `json:"peak_window"`
	TopWindows []int     `json:"top_windows,omitempty"`
	Attack     string    `json:"attack,omitempty"`
	Time       time.Time `json:"time"`
}

// Server is the clap-serve daemon: ingest, scoring stream, ops API.
type Server struct {
	cfg  Config
	logf func(string, ...any)

	hot    *backend.Hot
	pipe   *clap.Pipeline
	stream *clap.PipelineStream

	queue   chan queued
	sources []serveSource
	stats   []*srcCounters

	metrics *metrics

	flaggedMu   sync.Mutex
	flaggedRing []FlaggedConn
	flaggedNext int

	// lastFlagged carries one result's verdict from emit to the observe
	// hook that follows it; both run on the stream's single emitter
	// goroutine, so no synchronization is needed.
	lastFlagged bool

	reloadMu sync.Mutex // serializes reloads (swap itself is atomic)

	httpLn  net.Listener
	httpSrv *http.Server

	cancel  context.CancelFunc
	stopped chan struct{} // closed when the pump has drained
	ingest  sync.WaitGroup
	started bool
	mu      sync.Mutex
}

type serveSource struct {
	src   clap.ServeSource
	stats *srcCounters
}

type queued struct {
	conn  *clap.Connection
	stats *srcCounters
}

// New builds a Server (not yet started) around a trained backend.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, errors.New("serve: config needs a trained Backend")
	}
	// Reject non-finite thresholds here rather than relying on the
	// pipeline's WithThreshold guard: NaN would not survive the > 0 gate
	// below and would silently fall back to score-only mode.
	if cfg.Threshold < 0 || math.IsNaN(cfg.Threshold) || math.IsInf(cfg.Threshold, 0) {
		return nil, fmt.Errorf("serve: threshold %v must be finite and >= 0", cfg.Threshold)
	}
	hot, err := backend.NewHot(cfg.Backend)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.FlaggedRing <= 0 {
		cfg.FlaggedRing = 256
	}
	switch {
	case cfg.TopN == 0:
		cfg.TopN = 5
	case cfg.TopN < 0:
		cfg.TopN = 0 // Pipeline's "localization off"
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	opts := []clap.PipelineOption{clap.WithBackend(hot), clap.WithTopN(cfg.TopN)}
	if cfg.Workers > 0 {
		opts = append(opts, clap.WithWorkers(cfg.Workers))
	}
	if cfg.Shards > 0 {
		opts = append(opts, clap.WithShards(cfg.Shards))
	}
	if cfg.Batch > 0 {
		opts = append(opts, clap.WithBatchSize(cfg.Batch))
	}
	if cfg.Calibration != nil {
		opts = append(opts, clap.WithThresholdFPR(cfg.FPR, cfg.Calibration))
	} else if cfg.Threshold > 0 {
		opts = append(opts, clap.WithThreshold(cfg.Threshold))
	}
	pipe, err := clap.NewPipeline(opts...)
	if err != nil {
		return nil, err
	}

	return &Server{
		cfg:         cfg,
		logf:        logf,
		hot:         hot,
		pipe:        pipe,
		queue:       make(chan queued, cfg.QueueDepth),
		metrics:     newMetrics(),
		flaggedRing: make([]FlaggedConn, 0, cfg.FlaggedRing),
		stopped:     make(chan struct{}),
	}, nil
}

// AddSource registers a live source. Must be called before Start.
func (s *Server) AddSource(src clap.ServeSource) {
	st := &srcCounters{name: src.Name()}
	s.sources = append(s.sources, serveSource{src: src, stats: st})
	s.stats = append(s.stats, st)
}

// Start opens the scoring stream (running threshold calibration if
// configured), launches every source's ingest goroutine and the pump, and
// — when cfg.Addr is set — begins serving the ops API. It returns once
// the service is live.
func (s *Server) Start(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("serve: already started")
	}

	stream, err := s.pipe.NewStream(s.emit, clap.StreamHooks{Observe: s.observe})
	if err != nil {
		return err
	}
	s.stream = stream
	s.logf("serving %s (threshold %.6f, %d workers, batch %d)",
		s.hot.Describe(), stream.Threshold(), s.pipe.Engine().Workers(), s.pipe.BatchSize())

	ctx, s.cancel = context.WithCancel(ctx)

	// Ingest: one goroutine per source, all feeding the bounded queue.
	for _, src := range s.sources {
		src := src
		s.ingest.Add(1)
		go func() {
			defer s.ingest.Done()
			skipped, err := src.src.Stream(ctx, s.deliverFunc(ctx, src.stats))
			src.stats.skipped.Add(uint64(skipped))
			src.stats.done.Store(true)
			if err != nil {
				s.logf("source %s failed: %v", src.src.Name(), err)
			} else {
				s.logf("source %s finished (%d delivered, %d dropped, %d skipped)",
					src.src.Name(), src.stats.delivered.Load(),
					src.stats.dropped.Load(), src.stats.skipped.Load())
			}
		}()
	}

	// Close the queue once every source is done, so the pump can drain.
	go func() {
		s.ingest.Wait()
		close(s.queue)
	}()

	// Pump: the single Submit goroutine the stream contract requires.
	go func() {
		for q := range s.queue {
			s.stream.Submit(q.conn)
		}
		s.stream.Close()
		close(s.stopped)
	}()

	if s.cfg.Addr != "" {
		ln, err := net.Listen("tcp", s.cfg.Addr)
		if err != nil {
			s.cancel()
			return fmt.Errorf("serve: listening on %s: %w", s.cfg.Addr, err)
		}
		s.httpLn = ln
		s.httpSrv = &http.Server{Handler: s.Handler()}
		go func() {
			if err := s.httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				s.logf("ops API server: %v", err)
			}
		}()
		s.logf("ops API listening on http://%s", ln.Addr())
	}
	s.started = true
	return nil
}

// OpsAddr reports the ops API's bound address ("" without a listener) —
// useful with Addr ":0".
func (s *Server) OpsAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// deliverFunc builds one source's delivery callback: bounded enqueue with
// either backpressure (block until the pump catches up or shutdown) or
// load-shedding (count the drop and move on).
func (s *Server) deliverFunc(ctx context.Context, st *srcCounters) func(*clap.Connection) {
	return func(c *clap.Connection) {
		q := queued{conn: c, stats: st}
		if s.cfg.DropWhenFull {
			select {
			case s.queue <- q:
				st.delivered.Add(1)
			default:
				st.dropped.Add(1)
			}
			return
		}
		select {
		case s.queue <- q:
			st.delivered.Add(1)
		case <-ctx.Done():
			st.dropped.Add(1)
		}
	}
}

// emit consumes ordered results on the stream's emitter goroutine.
func (s *Server) emit(r clap.Result) {
	s.lastFlagged = r.Flagged
	if r.Flagged {
		s.flaggedMu.Lock()
		fc := FlaggedConn{
			Key:        r.Conn.Key.String(),
			Score:      r.Score,
			PeakWindow: r.PeakWindow,
			TopWindows: r.TopWindows,
			Attack:     r.Conn.AttackName,
			Time:       time.Now(),
		}
		if len(s.flaggedRing) < cap(s.flaggedRing) {
			s.flaggedRing = append(s.flaggedRing, fc)
		} else {
			s.flaggedRing[s.flaggedNext] = fc
			s.flaggedNext = (s.flaggedNext + 1) % cap(s.flaggedRing)
		}
		s.flaggedMu.Unlock()
	}
	if s.cfg.OnResult != nil {
		s.cfg.OnResult(r)
	}
}

// observe feeds the stream's stage latencies into the metrics. It runs on
// the emitter goroutine right after this connection's emit, so the
// verdict recorded there and the latencies land together.
func (s *Server) observe(c *clap.Connection, st clap.StreamStats) {
	s.metrics.observeConn(c.Len(), s.lastFlagged, st.QueueWait, st.Score, st.EmitWait)
	s.lastFlagged = false
}

// Flagged returns the most recent flagged connections, newest last,
// capped at n (n <= 0: all retained).
func (s *Server) Flagged(n int) []FlaggedConn {
	s.flaggedMu.Lock()
	defer s.flaggedMu.Unlock()
	out := make([]FlaggedConn, 0, len(s.flaggedRing))
	// Ring order: oldest first.
	if len(s.flaggedRing) == cap(s.flaggedRing) {
		out = append(out, s.flaggedRing[s.flaggedNext:]...)
		out = append(out, s.flaggedRing[:s.flaggedNext]...)
	} else {
		out = append(out, s.flaggedRing...)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// streamOrNil returns the scoring stream, or nil before Start — the ops
// handlers guard on it so a Handler mounted early serves 503 instead of
// panicking.
func (s *Server) streamOrNil() *clap.PipelineStream {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stream
}

// Threshold reports the live operating threshold (0 before Start).
func (s *Server) Threshold() float64 {
	st := s.streamOrNil()
	if st == nil {
		return 0
	}
	return st.Threshold()
}

// SetThreshold adjusts the live operating threshold.
func (s *Server) SetThreshold(th float64) error {
	st := s.streamOrNil()
	if st == nil {
		return errors.New("serve: not started")
	}
	if err := st.SetThreshold(th); err != nil {
		return err
	}
	s.logf("threshold set to %.6f", th)
	return nil
}

// ReloadInfo describes the models on either side of a reload.
type ReloadInfo struct {
	Tag        string `json:"tag"`
	Describe   string `json:"describe"`
	Generation uint64 `json:"generation"`
}

// Reload hot-swaps the serving model from a model file written with
// SaveBackend (any registered backend tag — the tagged header picks the
// decoder). path "" falls back to the configured ModelPath. The swap is
// atomic: in-flight connections finish on the model that picked them up,
// later ones score on the new model, and a failed load leaves the current
// model serving.
func (s *Server) Reload(path string) (before, after ReloadInfo, err error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if path == "" {
		path = s.cfg.ModelPath
	}
	if path == "" {
		return before, after, errors.New("serve: no model path configured for reload")
	}
	b, err := clap.LoadBackendFile(path)
	if err != nil {
		return before, after, fmt.Errorf("serve: reload: %w", err)
	}
	prev, err := s.hot.Swap(b)
	if err != nil {
		return before, after, fmt.Errorf("serve: reload: %w", err)
	}
	gen := s.hot.Generation()
	s.metrics.reloads.Add(1)
	before = ReloadInfo{Tag: prev.Tag(), Describe: prev.Describe(), Generation: gen - 1}
	after = ReloadInfo{Tag: b.Tag(), Describe: b.Describe(), Generation: gen}
	s.logf("reloaded model from %s: %s -> %s (generation %d)", path, before.Tag, after.Tag, gen)
	return before, after, nil
}

// Shutdown stops ingest, drains the queue and the scoring stream (every
// accepted connection is scored and emitted), and closes the ops API. It
// is bounded by ctx; a second call is a no-op.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return errors.New("serve: not started")
	}
	cancel := s.cancel
	s.mu.Unlock()

	cancel() // sources see ctx.Done and return; queue closes after them
	select {
	case <-s.stopped: // pump drained and closed the stream
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
	if s.httpSrv != nil {
		if err := s.httpSrv.Shutdown(ctx); err != nil {
			return err
		}
	}
	s.logf("shutdown complete: %d connections scored, %d flagged",
		s.metrics.connsScored.Load(), s.metrics.flagged.Load())
	return nil
}

// Scored reports the total connections scored so far.
func (s *Server) Scored() uint64 { return s.metrics.connsScored.Load() }
