// Package serve is the long-running online detection service: the layer
// that turns the clap library into a deployable daemon running beside a
// DPI middlebox (the paper's Figure 3 deployment, kept alive indefinitely).
//
// A Server wires three moving parts together:
//
//   - ingest: any number of live ServeSources (tailed pcap files, pcap
//     pipes, the trafficgen soak mode) deliver connections into one
//     bounded queue with explicit backpressure or load-shedding and
//     per-source drop/skip accounting;
//   - scoring: a single pump goroutine feeds the queue into
//     Pipeline.NewStream, so any registered backend scores connections
//     concurrently while results emerge in submission order;
//   - ops: a stdlib net/http surface exposes health, Prometheus metrics,
//     flagged-connection and summary JSON, live threshold adjustment, and
//     hot model reload (POST /v1/reload or SIGHUP in the CLI) through an
//     atomic backend swap that never mixes models within one connection.
//
// See DESIGN.md §7 for the architecture diagram and endpoint table.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"clap"
	"clap/internal/backend"
	"clap/internal/calib"
)

// Config assembles a Server.
type Config struct {
	// Backend is the initial trained model (required). It is wrapped in a
	// reload-safe handle internally; pass any registered backend.
	Backend clap.Backend
	// ModelPath is the default model file for reloads (optional; reload
	// requests may name an explicit path instead).
	ModelPath string

	// Addr is the ops API listen address (e.g. "127.0.0.1:8080").
	// Empty means no listener — tests drive Handler directly.
	Addr string

	// Workers/Shards size the scoring engine (0: auto).
	Workers, Shards int

	// Batch is the micro-batch size for batched inference on capable
	// backends (0: the bench-tuned default of 24; 1: unbatched). Scores
	// are bit-identical at any batch size.
	Batch int

	// Threshold fixes the operating threshold; Calibration+FPR derive it
	// instead when Calibration is non-nil. Both may later be adjusted
	// live via /v1/threshold.
	Threshold   float64
	FPR         float64
	Calibration clap.Source

	// CalibrationSnapshot installs a pre-derived calibration (threshold +
	// benign-score reference) when no Calibration source is given.
	CalibrationSnapshot *clap.Calibration
	// CalibrationFile persists the calibration snapshot
	// (conventionally "<model>.calib"): a Start-time calibration and every
	// recalibrating reload save it there, and a restart with no
	// Calibration source loads it back, so the drift monitor keeps its
	// reference distribution across restarts. A snapshot whose backend
	// tag does not match the serving model is ignored with a log line.
	// When Threshold is set explicitly, a loaded snapshot contributes
	// only its reference distribution — never its threshold, and its FPR
	// target is dropped with it (the drift monitor's FPR rules would
	// otherwise alert forever against a target the fixed threshold
	// opted out of; quantile-shift monitoring remains active).
	CalibrationFile string

	// Drift monitoring compares rolling windows of live scores against
	// the frozen calibration reference (quantile shift + estimated
	// operating FPR) — the clap_serve_drift / clap_serve_operating_fpr
	// gauges and the /v1/drift endpoint. DriftWindow is the scores per
	// rolling window (0: 256; negative: disable monitoring), DriftWindows
	// the retained window count (0: 4), DriftMaxShift the relative
	// quantile-shift alert level (0: 0.5; negative: rule off) and
	// DriftFPRFactor the allowed operating-FPR deviation factor (0: 3;
	// negative: rule off).
	DriftWindow    int
	DriftWindows   int
	DriftMaxShift  float64
	DriftFPRFactor float64
	// OnDriftAlert observes drift alerts (fired once per excursion, on
	// the emit goroutine) — the hook the CLI uses to push drift lines
	// into the alert log.
	OnDriftAlert func(DriftStatus)

	// IdleFlush, when positive, is applied to every registered source
	// that supports a configurable idle-flush window
	// (clap.IdleFlushable) — the per-source half-open flush timeout.
	IdleFlush time.Duration

	// TopN windows are localized per flagged connection. 0 keeps the
	// default of 5; a negative value disables localization (the Go
	// zero value cannot mean "disable" and "default" at once).
	TopN int

	// QueueDepth bounds the ingest queue (default 256).
	QueueDepth int
	// DropWhenFull selects load-shedding: a full queue drops (and counts)
	// new connections instead of blocking the source. Default false =
	// backpressure.
	DropWhenFull bool

	// FlaggedRing caps how many recent flagged results /v1/flagged serves
	// (default 256).
	FlaggedRing int

	// OnResult, if set, observes every scored result on the emit
	// goroutine — the hook the CLI uses for alert sinks and tests use for
	// score capture.
	OnResult func(clap.Result)

	// Logf receives operational log lines (nil: silent).
	Logf func(format string, args ...any)
}

// FlaggedConn is one flagged connection as served by /v1/flagged.
type FlaggedConn struct {
	Key        string    `json:"key"`
	Score      float64   `json:"score"`
	PeakWindow int       `json:"peak_window"`
	TopWindows []int     `json:"top_windows,omitempty"`
	Attack     string    `json:"attack,omitempty"`
	Time       time.Time `json:"time"`
}

// DriftStatus is one drift evaluation, as served by /v1/drift and handed
// to OnDriftAlert.
type DriftStatus = calib.Status

// Server is the clap-serve daemon: ingest, scoring stream, ops API.
type Server struct {
	cfg  Config
	logf func(string, ...any)

	hot    *backend.Hot
	pipe   *clap.Pipeline
	stream *clap.PipelineStream

	// monitor tracks the live score distribution against the calibration
	// reference (nil only when drift monitoring is disabled).
	monitor *calib.Monitor

	queue   chan queued
	sources []serveSource
	stats   []*srcCounters

	metrics *metrics

	flaggedMu   sync.Mutex
	flaggedRing []FlaggedConn
	flaggedNext int

	// lastFlagged carries one result's verdict from emit to the observe
	// hook that follows it; both run on the stream's single emitter
	// goroutine, so no synchronization is needed.
	lastFlagged bool

	reloadMu sync.Mutex // serializes reloads (swap itself is atomic)

	httpLn  net.Listener
	httpSrv *http.Server

	cancel  context.CancelFunc
	stopped chan struct{} // closed when the pump has drained
	ingest  sync.WaitGroup
	started bool
	mu      sync.Mutex
}

type serveSource struct {
	src   clap.ServeSource
	stats *srcCounters
}

type queued struct {
	conn  *clap.Connection
	stats *srcCounters
}

// New builds a Server (not yet started) around a trained backend.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, errors.New("serve: config needs a trained Backend")
	}
	// Reject non-finite thresholds here rather than relying on the
	// pipeline's WithThreshold guard: NaN would not survive the > 0 gate
	// below and would silently fall back to score-only mode.
	if cfg.Threshold < 0 || math.IsNaN(cfg.Threshold) || math.IsInf(cfg.Threshold, 0) {
		return nil, fmt.Errorf("serve: threshold %v must be finite and >= 0", cfg.Threshold)
	}
	hot, err := backend.NewHot(cfg.Backend)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.FlaggedRing <= 0 {
		cfg.FlaggedRing = 256
	}
	switch {
	case cfg.TopN == 0:
		cfg.TopN = 5
	case cfg.TopN < 0:
		cfg.TopN = 0 // Pipeline's "localization off"
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	opts := []clap.PipelineOption{clap.WithBackend(hot), clap.WithTopN(cfg.TopN)}
	if cfg.Workers > 0 {
		opts = append(opts, clap.WithWorkers(cfg.Workers))
	}
	if cfg.Shards > 0 {
		opts = append(opts, clap.WithShards(cfg.Shards))
	}
	if cfg.Batch > 0 {
		opts = append(opts, clap.WithBatchSize(cfg.Batch))
	}
	// Calibration (source or snapshot) resolves at Start, where its
	// outcome seeds the hot (model, threshold) pair and the drift
	// monitor's reference; only a fixed threshold configures the pipeline
	// directly. The FPR bound is still validated here so a bad config
	// fails at construction, not minutes later at Start.
	if cfg.Calibration != nil && !(cfg.FPR > 0 && cfg.FPR < 1) {
		return nil, fmt.Errorf("serve: calibration target FPR %v must be in (0, 1)", cfg.FPR)
	}
	if cfg.Calibration == nil && cfg.Threshold > 0 {
		opts = append(opts, clap.WithThreshold(cfg.Threshold))
	}
	pipe, err := clap.NewPipeline(opts...)
	if err != nil {
		return nil, err
	}

	var monitor *calib.Monitor
	if cfg.DriftWindow >= 0 {
		monitor = calib.NewMonitor(nil, 0, calib.MonitorConfig{
			Window:    cfg.DriftWindow,
			Windows:   cfg.DriftWindows,
			MaxShift:  cfg.DriftMaxShift,
			FPRFactor: cfg.DriftFPRFactor,
		})
	}

	return &Server{
		cfg:         cfg,
		logf:        logf,
		hot:         hot,
		pipe:        pipe,
		monitor:     monitor,
		queue:       make(chan queued, cfg.QueueDepth),
		metrics:     newMetrics(),
		flaggedRing: make([]FlaggedConn, 0, cfg.FlaggedRing),
		stopped:     make(chan struct{}),
	}, nil
}

// AddSource registers a live source. Must be called before Start. A
// configured IdleFlush is applied to sources that support it, so the
// half-open flush window is a per-source serving knob rather than
// whatever constant the source was built with.
func (s *Server) AddSource(src clap.ServeSource) {
	if s.cfg.IdleFlush > 0 {
		if f, ok := src.(clap.IdleFlushable); ok {
			f.SetIdleFlush(s.cfg.IdleFlush)
		}
	}
	st := &srcCounters{name: src.Name()}
	s.sources = append(s.sources, serveSource{src: src, stats: st})
	s.stats = append(s.stats, st)
}

// Start opens the scoring stream (running threshold calibration if
// configured), launches every source's ingest goroutine and the pump, and
// — when cfg.Addr is set — begins serving the ops API. It returns once
// the service is live.
func (s *Server) Start(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("serve: already started")
	}

	if err := s.resolveCalibration(); err != nil {
		return err
	}
	stream, err := s.pipe.NewStream(s.emit, clap.StreamHooks{Observe: s.observe})
	if err != nil {
		return err
	}
	s.stream = stream
	s.logf("serving %s (threshold %.6f, %d workers, batch %d)",
		s.hot.Describe(), stream.Threshold(), s.pipe.Engine().Workers(), s.pipe.BatchSize())

	ctx, s.cancel = context.WithCancel(ctx)

	// Ingest: one goroutine per source, all feeding the bounded queue.
	for _, src := range s.sources {
		src := src
		s.ingest.Add(1)
		go func() {
			defer s.ingest.Done()
			skipped, err := src.src.Stream(ctx, s.deliverFunc(ctx, src.stats))
			src.stats.skipped.Add(uint64(skipped))
			src.stats.done.Store(true)
			if err != nil {
				s.logf("source %s failed: %v", src.src.Name(), err)
			} else {
				s.logf("source %s finished (%d delivered, %d dropped, %d skipped)",
					src.src.Name(), src.stats.delivered.Load(),
					src.stats.dropped.Load(), src.stats.skipped.Load())
			}
		}()
	}

	// Close the queue once every source is done, so the pump can drain.
	go func() {
		s.ingest.Wait()
		close(s.queue)
	}()

	// Pump: the single Submit goroutine the stream contract requires.
	go func() {
		for q := range s.queue {
			s.stream.Submit(q.conn)
		}
		s.stream.Close()
		close(s.stopped)
	}()

	if s.cfg.Addr != "" {
		ln, err := net.Listen("tcp", s.cfg.Addr)
		if err != nil {
			s.cancel()
			return fmt.Errorf("serve: listening on %s: %w", s.cfg.Addr, err)
		}
		s.httpLn = ln
		s.httpSrv = &http.Server{Handler: s.Handler()}
		go func() {
			if err := s.httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				s.logf("ops API server: %v", err)
			}
		}()
		s.logf("ops API listening on http://%s", ln.Addr())
	}
	s.started = true
	return nil
}

// resolveCalibration runs once at Start: it derives (or restores) the
// calibration — the operating threshold and the drift monitor's frozen
// reference distribution — and installs the threshold into the hot
// (model, threshold) pair before the first connection is scored.
// Precedence: an explicit Calibration source is scored now; otherwise an
// explicit CalibrationSnapshot applies; otherwise a persisted
// CalibrationFile from an earlier run restores the reference (and the
// threshold too, unless a fixed Threshold overrides it); otherwise only
// the fixed Threshold (if any) is installed.
func (s *Server) resolveCalibration() error {
	switch {
	case s.cfg.Calibration != nil:
		cal, err := s.pipe.Calibrate(s.cfg.FPR, s.cfg.Calibration)
		if err != nil {
			return fmt.Errorf("serve: calibrating: %w", err)
		}
		s.logf("calibrated threshold %.6f at FPR %g over %d connections",
			cal.Threshold, cal.FPR, cal.Conns)
		if err := s.hot.SetThreshold(cal.Threshold); err != nil {
			return fmt.Errorf("serve: installing calibrated threshold: %w", err)
		}
		s.resetMonitor(cal)
		s.persistCalibration(cal)
		return nil

	case s.cfg.CalibrationSnapshot != nil:
		cal := s.cfg.CalibrationSnapshot
		if err := cal.Validate(); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		if cal.Tag != s.hot.Tag() {
			return fmt.Errorf("serve: calibration snapshot is for backend %q, serving %q", cal.Tag, s.hot.Tag())
		}
		if err := s.hot.SetThreshold(cal.Threshold); err != nil {
			return fmt.Errorf("serve: installing snapshot threshold: %w", err)
		}
		s.resetMonitor(cal)
		s.persistCalibration(cal)
		s.logf("installed calibration snapshot: threshold %.6f at FPR %g", cal.Threshold, cal.FPR)
		return nil
	}

	// No explicit calibration. A snapshot persisted by an earlier run
	// restores the drift reference — and the threshold, unless the
	// config fixes one. Restoration is best-effort: a missing, stale or
	// unreadable snapshot degrades to reference-less monitoring with a
	// log line, never a failed start.
	if s.cfg.CalibrationFile != "" {
		switch cal, err := clap.LoadCalibrationFile(s.cfg.CalibrationFile); {
		case err == nil && cal.Tag != s.hot.Tag():
			s.logf("ignoring calibration snapshot %s: calibrated for backend %q, serving %q",
				s.cfg.CalibrationFile, cal.Tag, s.hot.Tag())
		case err == nil:
			th := cal.Threshold
			fprTarget := cal.FPR
			if s.cfg.Threshold > 0 {
				// A fixed threshold overrides the snapshot's: the snapshot
				// contributes only its reference distribution, and its FPR
				// target is dropped too — alerting that the operating FPR
				// misses a target the operator explicitly opted out of
				// would ring forever. Quantile-shift monitoring remains.
				th = s.cfg.Threshold
				fprTarget = 0
			}
			if s.monitor != nil {
				s.monitor.Reset(cal.Ref, fprTarget)
			}
			if err := s.hot.SetThreshold(th); err != nil {
				return fmt.Errorf("serve: installing restored threshold: %w", err)
			}
			s.logf("restored calibration snapshot from %s: threshold %.6f at FPR %g (reference of %d scores)",
				s.cfg.CalibrationFile, th, cal.FPR, cal.Ref.Count())
			return nil
		case !os.IsNotExist(err):
			s.logf("calibration snapshot %s unreadable: %v", s.cfg.CalibrationFile, err)
		}
	}
	if s.cfg.Threshold > 0 {
		if err := s.hot.SetThreshold(s.cfg.Threshold); err != nil {
			return fmt.Errorf("serve: installing threshold: %w", err)
		}
	}
	return nil
}

// resetMonitor rebases drift monitoring on a new calibration. Used by
// Start's calibration, which runs under s.mu before the stream exists
// (streamOrNil would deadlock there, and nothing is in flight anyway);
// the reload path uses rebaseMonitor instead.
func (s *Server) resetMonitor(cal *clap.Calibration) {
	if s.monitor != nil {
		s.monitor.Reset(cal.Ref, cal.FPR)
	}
}

// rebaseMonitor rebases drift monitoring mid-serve: the reset and a skip
// of the stream's current in-flight count are armed in one monitor
// critical section, so scores from connections still pinned to the
// pre-recalibration (model, threshold) pair — which emit after the reset
// — can never pollute the new reference's first window (across model
// families their old-scale scores would otherwise fire a spurious alert
// right after the fix). The in-flight count is read before the reset;
// connections that emit in between land in the discarded old state, so
// the error direction is only ever skipping a few fresh scores.
func (s *Server) rebaseMonitor(cal *clap.Calibration) {
	if s.monitor == nil {
		return
	}
	inFlight := 0
	if st := s.streamOrNil(); st != nil {
		inFlight = st.InFlight()
	}
	s.monitor.ResetSkipping(cal.Ref, cal.FPR, inFlight)
}

// persistCalibration saves the active calibration snapshot alongside the
// model file (best-effort: serving is never taken down by a snapshot
// write failure).
func (s *Server) persistCalibration(cal *clap.Calibration) {
	if s.cfg.CalibrationFile == "" {
		return
	}
	if err := clap.SaveCalibrationFile(s.cfg.CalibrationFile, cal); err != nil {
		s.logf("persisting calibration snapshot to %s: %v", s.cfg.CalibrationFile, err)
		return
	}
	s.logf("calibration snapshot saved to %s", s.cfg.CalibrationFile)
}

// OpsAddr reports the ops API's bound address ("" without a listener) —
// useful with Addr ":0".
func (s *Server) OpsAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// deliverFunc builds one source's delivery callback: bounded enqueue with
// either backpressure (block until the pump catches up or shutdown) or
// load-shedding (count the drop and move on).
func (s *Server) deliverFunc(ctx context.Context, st *srcCounters) func(*clap.Connection) {
	return func(c *clap.Connection) {
		q := queued{conn: c, stats: st}
		if s.cfg.DropWhenFull {
			select {
			case s.queue <- q:
				st.delivered.Add(1)
			default:
				st.dropped.Add(1)
			}
			return
		}
		select {
		case s.queue <- q:
			st.delivered.Add(1)
		case <-ctx.Done():
			st.dropped.Add(1)
		}
	}
}

// emit consumes ordered results on the stream's emitter goroutine.
func (s *Server) emit(r clap.Result) {
	s.lastFlagged = r.Flagged
	if s.monitor != nil {
		// Off the hot scoring path: the sketch insert rides the single
		// emit goroutine, not the pool workers. A window rotation that
		// newly trips the drift condition fires the alert hook once.
		if st := s.monitor.Observe(r.Score, s.stream.Threshold()); st != nil {
			s.driftAlert(*st)
		}
	}
	if r.Flagged {
		s.flaggedMu.Lock()
		fc := FlaggedConn{
			Key:        r.Conn.Key.String(),
			Score:      r.Score,
			PeakWindow: r.PeakWindow,
			TopWindows: r.TopWindows,
			Attack:     r.Conn.AttackName,
			Time:       time.Now(),
		}
		if len(s.flaggedRing) < cap(s.flaggedRing) {
			s.flaggedRing = append(s.flaggedRing, fc)
		} else {
			s.flaggedRing[s.flaggedNext] = fc
			s.flaggedNext = (s.flaggedNext + 1) % cap(s.flaggedRing)
		}
		s.flaggedMu.Unlock()
	}
	if s.cfg.OnResult != nil {
		s.cfg.OnResult(r)
	}
}

// driftAlert reacts to a newly tripped drift condition: count it, log
// it, and hand it to the configured alert hook (the CLI routes it into
// the dedup alert log).
func (s *Server) driftAlert(st DriftStatus) {
	s.metrics.driftAlerts.Add(1)
	s.logf("DRIFT ALERT: %s (drift=%.4f, operating FPR %.4f vs target %.4f) — recalibrate via POST /v1/reload {\"calibration\": ...}",
		st.Reason, st.Drift, st.OperatingFPR, st.TargetFPR)
	if s.cfg.OnDriftAlert != nil {
		s.cfg.OnDriftAlert(st)
	}
}

// DriftStatus evaluates the drift statistics right now (ok=false when
// drift monitoring is disabled).
func (s *Server) DriftStatus() (DriftStatus, bool) {
	if s.monitor == nil {
		return DriftStatus{}, false
	}
	return s.monitor.Status(s.Threshold()), true
}

// observe feeds the stream's stage latencies into the metrics. It runs on
// the emitter goroutine right after this connection's emit, so the
// verdict recorded there and the latencies land together.
func (s *Server) observe(c *clap.Connection, st clap.StreamStats) {
	s.metrics.observeConn(c.Len(), s.lastFlagged, st.QueueWait, st.Score, st.EmitWait)
	s.lastFlagged = false
}

// Flagged returns the most recent flagged connections, newest last,
// capped at n (n <= 0: all retained).
func (s *Server) Flagged(n int) []FlaggedConn {
	s.flaggedMu.Lock()
	defer s.flaggedMu.Unlock()
	out := make([]FlaggedConn, 0, len(s.flaggedRing))
	// Ring order: oldest first.
	if len(s.flaggedRing) == cap(s.flaggedRing) {
		out = append(out, s.flaggedRing[s.flaggedNext:]...)
		out = append(out, s.flaggedRing[:s.flaggedNext]...)
	} else {
		out = append(out, s.flaggedRing...)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// streamOrNil returns the scoring stream, or nil before Start — the ops
// handlers guard on it so a Handler mounted early serves 503 instead of
// panicking.
func (s *Server) streamOrNil() *clap.PipelineStream {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stream
}

// Threshold reports the live operating threshold (0 before Start).
func (s *Server) Threshold() float64 {
	st := s.streamOrNil()
	if st == nil {
		return 0
	}
	return st.Threshold()
}

// SetThreshold adjusts the live operating threshold.
func (s *Server) SetThreshold(th float64) error {
	st := s.streamOrNil()
	if st == nil {
		return errors.New("serve: not started")
	}
	if err := st.SetThreshold(th); err != nil {
		return err
	}
	s.logf("threshold set to %.6f", th)
	return nil
}

// ReloadInfo describes the models on either side of a reload.
type ReloadInfo struct {
	Tag        string  `json:"tag"`
	Describe   string  `json:"describe"`
	Generation uint64  `json:"generation"`
	Threshold  float64 `json:"threshold"`
}

// ReloadRequest describes one reload: which model file to load and,
// optionally, how to re-derive its operating threshold in the same
// transaction.
type ReloadRequest struct {
	// Path is the model file ("" falls back to the configured ModelPath —
	// except under Calibration "live" with no path, which keeps the
	// current model and only re-derives its threshold).
	Path string `json:"path"`
	// Calibration selects auto-recalibration: "" keeps the current
	// threshold (the legacy reload-then-PUT flow), "live" derives the
	// threshold from the drift monitor's recent score sketch, and any
	// other value is read as a benign pcap path scored with the incoming
	// model. Either way the new model and its re-derived threshold are
	// published in ONE atomic hot-pair transaction — no connection can
	// ever be judged by a (new model, old threshold) or (old model, new
	// threshold) crossover.
	Calibration string `json:"calibration"`
	// FPR is the recalibration target (0: the monitor's current target,
	// falling back to the serve config's FPR).
	FPR float64 `json:"fpr"`
}

// ReloadResult reports one reload, including the recalibration outcome.
type ReloadResult struct {
	Old, New         ReloadInfo
	Recalibrated     bool
	CalibrationConns int
}

// Reload hot-swaps the serving model from a model file written with
// SaveBackend (any registered backend tag — the tagged header picks the
// decoder), keeping the current threshold. path "" falls back to the
// configured ModelPath. The swap is atomic: in-flight connections finish
// on the model that picked them up, later ones score on the new model,
// and a failed load leaves the current model serving.
func (s *Server) Reload(path string) (before, after ReloadInfo, err error) {
	res, err := s.ReloadWith(ReloadRequest{Path: path})
	if err != nil {
		return before, after, err
	}
	return res.Old, res.New, nil
}

// ReloadWith is Reload plus optional atomic recalibration (the full
// /v1/reload contract). With a Calibration source the incoming model's
// threshold is derived first — from a benign pcap scored with that model,
// or from the live score sketch — and model and threshold are then
// published in one hot-pair transaction; the drift monitor rebases on the
// new reference distribution and the persisted calibration snapshot (if
// configured) is rewritten.
func (s *Server) ReloadWith(req ReloadRequest) (res ReloadResult, err error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()

	prevB, prevTh, _ := s.hot.CurrentPair()
	res.Old = ReloadInfo{Tag: prevB.Tag(), Describe: prevB.Describe(), Generation: s.hot.Generation(), Threshold: prevTh}

	// Resolve the incoming model. "live" recalibration with no explicit
	// path keeps the current model: the recent sketch describes THIS
	// model's score scale, so rebinding it to a freshly loaded file is
	// only sound when the operator names that file deliberately.
	keepModel := req.Path == "" && req.Calibration == "live"
	b := prevB
	path := req.Path
	if !keepModel {
		if path == "" {
			path = s.cfg.ModelPath
		}
		if path == "" {
			return res, errors.New("serve: no model path configured for reload")
		}
		b, err = clap.LoadBackendFile(path)
		if err != nil {
			return res, fmt.Errorf("serve: reload: %w", err)
		}
		// Stage-2-only reload: with a cascade serving and the incoming file
		// holding a bare backend matching its expensive stage, graft the new
		// model in as stage 2 — the cheap screen, escalation threshold, and
		// escalation counters carry over, so retraining the expensive model
		// never forces retraining the screen.
		if cc, ok := prevB.(*backend.Cascade); ok {
			if _, isCascade := b.(*backend.Cascade); !isCascade {
				if _, s2 := cc.Stages(); b.Tag() == s2.Tag() {
					grafted, gerr := cc.WithStage2(b)
					if gerr != nil {
						return res, fmt.Errorf("serve: reload: grafting stage 2: %w", gerr)
					}
					s.logf("cascade: grafting %s model from %s as stage 2 (screen and escalation kept)", b.Tag(), path)
					b = grafted
				}
			}
		}
	}

	// Derive the new calibration before anything is published, so a
	// failed calibration leaves the serving state untouched.
	var cal *clap.Calibration
	switch req.Calibration {
	case "":
	case "live":
		if s.monitor == nil {
			return res, errors.New("serve: live recalibration needs drift monitoring enabled")
		}
		fpr := req.FPR
		if fpr == 0 {
			if fpr = s.monitor.TargetFPR(); fpr == 0 {
				fpr = s.cfg.FPR
			}
		}
		th, live, rerr := s.monitor.Recalibrate(fpr)
		if rerr != nil {
			return res, fmt.Errorf("serve: reload: %w", rerr)
		}
		cal = &clap.Calibration{Tag: b.Tag(), FPR: fpr, Threshold: th, Conns: int(live.Count()), Ref: live}
	default:
		fpr := req.FPR
		if fpr == 0 {
			fpr = s.cfg.FPR
		}
		cal, err = s.pipe.CalibrateBackend(b, fpr, clap.PCAPFile(req.Calibration))
		if err != nil {
			return res, fmt.Errorf("serve: reload: %w", err)
		}
	}

	// Publish. One transaction whichever shape the reload takes: model
	// and threshold move together (SwapPair), or only one of them moves.
	switch {
	case cal == nil:
		if _, err := s.hot.Swap(b); err != nil {
			return res, fmt.Errorf("serve: reload: %w", err)
		}
	case keepModel:
		if err := s.hot.SetThreshold(cal.Threshold); err != nil {
			return res, fmt.Errorf("serve: reload: %w", err)
		}
	default:
		if _, err := s.hot.SwapPair(b, cal.Threshold); err != nil {
			return res, fmt.Errorf("serve: reload: %w", err)
		}
	}
	if cal != nil {
		res.Recalibrated = true
		res.CalibrationConns = cal.Conns
		s.rebaseMonitor(cal)
		s.persistCalibration(cal)
	}

	if !keepModel {
		s.metrics.reloads.Add(1)
	}
	_, newTh, _ := s.hot.CurrentPair()
	res.New = ReloadInfo{Tag: b.Tag(), Describe: b.Describe(), Generation: s.hot.Generation(), Threshold: newTh}
	switch {
	case keepModel:
		s.logf("recalibrated in place: threshold %.6f -> %.6f (FPR target %g, %d live scores)",
			res.Old.Threshold, res.New.Threshold, cal.FPR, cal.Conns)
	case res.Recalibrated:
		s.logf("reloaded model from %s with calibration %q: %s (th %.6f) -> %s (th %.6f, generation %d)",
			path, req.Calibration, res.Old.Tag, res.Old.Threshold, res.New.Tag, res.New.Threshold, res.New.Generation)
	default:
		s.logf("reloaded model from %s: %s -> %s (generation %d)", path, res.Old.Tag, res.New.Tag, res.New.Generation)
	}
	return res, nil
}

// Shutdown stops ingest, drains the queue and the scoring stream (every
// accepted connection is scored and emitted), and closes the ops API. It
// is bounded by ctx; a second call is a no-op.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return errors.New("serve: not started")
	}
	cancel := s.cancel
	s.mu.Unlock()

	cancel() // sources see ctx.Done and return; queue closes after them
	select {
	case <-s.stopped: // pump drained and closed the stream
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
	if s.httpSrv != nil {
		if err := s.httpSrv.Shutdown(ctx); err != nil {
			return err
		}
	}
	s.logf("shutdown complete: %d connections scored, %d flagged",
		s.metrics.connsScored.Load(), s.metrics.flagged.Load())
	return nil
}

// Scored reports the total connections scored so far.
func (s *Server) Scored() uint64 { return s.metrics.connsScored.Load() }
