package serve

// Serving-layer coverage for cross-connection lockstep: a daemon with
// Config.Lockstep scores identically to one without it, surfaces the
// fleet-fill gauge and summary field, and a lockstep-free daemon's
// exposition stays free of lockstep series (byte-compat with builds
// before the feature).

import (
	"context"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"

	"clap"
)

func runSoak(t *testing.T, cfg Config, n int) (map[string]float64, map[string]any, []clap.Result) {
	t.Helper()
	var mu sync.Mutex
	var results []clap.Result
	cfg.OnResult = func(r clap.Result) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.AddSource(clap.Soak(clap.SoakConfig{Connections: n, Seed: 11, AttackFraction: 0.5}))
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	waitScored(t, srv, uint64(n))
	metrics := getMetrics(t, ts.URL)
	var summary map[string]any
	getJSON(t, ts.URL+"/v1/summary", &summary)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	return metrics, summary, results
}

func TestServeLockstep(t *testing.T) {
	clapModel, _ := fixture(t)
	const soakN = 30

	base := Config{
		Backend:    loadModel(t, clapModel),
		Threshold:  0.5,
		QueueDepth: 64,
	}
	lockstepCfg := base
	lockstepCfg.Backend = loadModel(t, clapModel)
	lockstepCfg.Lockstep = 6

	mOff, sumOff, resOff := runSoak(t, base, soakN)
	mOn, sumOn, resOn := runSoak(t, lockstepCfg, soakN)

	// Identical verdicts, bit for bit, in identical order.
	if len(resOn) != len(resOff) {
		t.Fatalf("lockstep daemon emitted %d results, plain %d", len(resOn), len(resOff))
	}
	sort.Slice(resOff, func(i, j int) bool { return resOff[i].Conn.Key.String() < resOff[j].Conn.Key.String() })
	sort.Slice(resOn, func(i, j int) bool { return resOn[i].Conn.Key.String() < resOn[j].Conn.Key.String() })
	for i := range resOn {
		if resOn[i].Score != resOff[i].Score || resOn[i].Flagged != resOff[i].Flagged {
			t.Fatalf("result %d: lockstep verdict (%v, %v) != plain (%v, %v)",
				i, resOn[i].Score, resOn[i].Flagged, resOff[i].Score, resOff[i].Flagged)
		}
	}

	// The fleet-fill gauge and summary field exist only with lockstep on.
	if fill, ok := mOn["clap_serve_lockstep_fill"]; !ok || !(fill > 0 && fill <= 1) {
		t.Fatalf("clap_serve_lockstep_fill = %v (present=%v), want in (0, 1]", fill, ok)
	}
	if _, ok := mOff["clap_serve_lockstep_fill"]; ok {
		t.Fatal("lockstep-free daemon exposes clap_serve_lockstep_fill")
	}
	if fill, ok := sumOn["lockstep_fill"].(float64); !ok || !(fill > 0 && fill <= 1) {
		t.Fatalf("summary lockstep_fill = %v (present=%v), want in (0, 1]", sumOn["lockstep_fill"], ok)
	}
	if _, ok := sumOff["lockstep_fill"]; ok {
		t.Fatal("lockstep-free daemon's summary carries lockstep_fill")
	}
}
