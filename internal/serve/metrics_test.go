package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"clap"
	"clap/internal/tenant"
)

func TestPromLabelEscaping(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"plain", "plain"},
		{"with space", "with space"},
		{`quo"te`, `quo\"te`},
		{"line\nbreak", `line\nbreak`},
		{`back\slash`, `back\\slash`},
		{"all\"of\\them\n", `all\"of\\them\n`},
	} {
		if got := promLabel(tc.in); got != tc.want {
			t.Errorf("promLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestServeMetricsLabelInjection: user-controlled source and tenant
// names carrying quotes, backslashes or newlines must not corrupt the
// Prometheus exposition — every sample stays on one parseable line with
// the name escaped inside its label.
func TestServeMetricsLabelInjection(t *testing.T) {
	clapModel, _ := fixture(t)
	srv, err := New(Config{
		Backend:     loadModel(t, clapModel),
		Threshold:   0.5,
		DriftWindow: -1,
		Tenants: []TenantConfig{
			{Name: "evil\"ten\\ant\nX", Backend: loadModel(t, clapModel), Quota: tenant.Quota{}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := &chanSource{name: "bad\"src\nY", ch: make(chan *clap.Connection, 1)}
	close(src.ch)
	srv.AddSource(src)
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	// promCounters fatals on any unparseable sample line, so reaching
	// here means no label value broke a line in half.
	counters := promCounters(t, body)
	if len(counters) == 0 {
		t.Fatal("no metrics parsed")
	}
	if !strings.Contains(body, `source="bad\"src\nY"`) {
		t.Fatalf("source label not escaped:\n%s", body)
	}
	if !strings.Contains(body, `tenant="evil\"ten\\ant\nX"`) {
		t.Fatalf("tenant label not escaped:\n%s", body)
	}
}

// ringSource is a chanSource that also reports kernel ring counters,
// standing in for an AF_PACKET capture.
type ringSource struct {
	chanSource
	pkts, drops uint64
	ok          bool
}

func (s *ringSource) RingStats() (uint64, uint64, bool) { return s.pkts, s.drops, s.ok }

// TestServeMetricsKernelRingCounters: sources backed by a kernel capture
// ring surface the kernel's packet/drop counters under their source
// label; pcap-only deployments (and rings not currently reporting) must
// not grow the exposition at all.
func TestServeMetricsKernelRingCounters(t *testing.T) {
	clapModel, _ := fixture(t)
	metricsBody := func(t *testing.T, srcs ...clap.ServeSource) string {
		t.Helper()
		srv, err := New(Config{Backend: loadModel(t, clapModel), Threshold: 0.5, DriftWindow: -1})
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range srcs {
			srv.AddSource(src)
		}
		if err := srv.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		defer srv.Shutdown(context.Background())
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	closedChan := func(name string) chanSource {
		ch := make(chan *clap.Connection)
		close(ch)
		return chanSource{name: name, ch: ch}
	}

	ring := &ringSource{chanSource: closedChan("afpacket:eth0"), pkts: 1234, drops: 7, ok: true}
	plain := closedChan("pcap")
	body := metricsBody(t, ring, &plain)
	m := promCounters(t, body)
	if got := m[`clap_serve_source_kernel_packets_total{source="afpacket:eth0"}`]; got != 1234 {
		t.Fatalf("kernel packets = %v, want 1234\n%s", got, body)
	}
	if got := m[`clap_serve_source_kernel_drops_total{source="afpacket:eth0"}`]; got != 7 {
		t.Fatalf("kernel drops = %v, want 7\n%s", got, body)
	}
	// The plain source must not appear in the kernel series.
	if strings.Contains(body, `clap_serve_source_kernel_packets_total{source="pcap"}`) {
		t.Fatalf("pcap source leaked into kernel series:\n%s", body)
	}

	// Not currently reporting (ring closed, source idle): no kernel
	// series at all — same as a build without the feature.
	idle := &ringSource{chanSource: closedChan("afpacket:eth1"), ok: false}
	if body := metricsBody(t, idle); strings.Contains(body, "kernel_") {
		t.Fatalf("idle ring grew the exposition:\n%s", body)
	}
	if body := metricsBody(t, &plain); strings.Contains(body, "kernel_") {
		t.Fatalf("pcap-only exposition grew:\n%s", body)
	}
}
