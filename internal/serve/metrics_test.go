package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"clap"
	"clap/internal/tenant"
)

func TestPromLabelEscaping(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"plain", "plain"},
		{"with space", "with space"},
		{`quo"te`, `quo\"te`},
		{"line\nbreak", `line\nbreak`},
		{`back\slash`, `back\\slash`},
		{"all\"of\\them\n", `all\"of\\them\n`},
	} {
		if got := promLabel(tc.in); got != tc.want {
			t.Errorf("promLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestServeMetricsLabelInjection: user-controlled source and tenant
// names carrying quotes, backslashes or newlines must not corrupt the
// Prometheus exposition — every sample stays on one parseable line with
// the name escaped inside its label.
func TestServeMetricsLabelInjection(t *testing.T) {
	clapModel, _ := fixture(t)
	srv, err := New(Config{
		Backend:     loadModel(t, clapModel),
		Threshold:   0.5,
		DriftWindow: -1,
		Tenants: []TenantConfig{
			{Name: "evil\"ten\\ant\nX", Backend: loadModel(t, clapModel), Quota: tenant.Quota{}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := &chanSource{name: "bad\"src\nY", ch: make(chan *clap.Connection, 1)}
	close(src.ch)
	srv.AddSource(src)
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	// promCounters fatals on any unparseable sample line, so reaching
	// here means no label value broke a line in half.
	counters := promCounters(t, body)
	if len(counters) == 0 {
		t.Fatal("no metrics parsed")
	}
	if !strings.Contains(body, `source="bad\"src\nY"`) {
		t.Fatalf("source label not escaped:\n%s", body)
	}
	if !strings.Contains(body, `tenant="evil\"ten\\ant\nX"`) {
		t.Fatalf("tenant label not escaped:\n%s", body)
	}
}
