package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"clap"
	"clap/internal/backend"
)

// scaledBackend multiplies an inner model's anomaly scores by a constant
// — the test's stand-in for a silent score-scale drift (the deployed
// model's behaviour changing without any operator action). Summarize
// delegates: the reduction is homogeneous, so scaled window errors
// summarize to the scaled connection score and the Backend contract
// holds. The wrapper deliberately hides the batch-scoring capability, so
// the unbatched WindowErrors path (the one it scales) is always used.
type scaledBackend struct {
	inner  clap.Backend
	factor float64
}

func (s *scaledBackend) Tag() string      { return s.inner.Tag() }
func (s *scaledBackend) Describe() string { return s.inner.Describe() + " (scaled)" }
func (s *scaledBackend) WindowSpan() int  { return s.inner.WindowSpan() }
func (s *scaledBackend) Trained() bool    { return s.inner.Trained() }
func (s *scaledBackend) Train(benign []*clap.Connection, logf backend.Logf) error {
	return s.inner.Train(benign, logf)
}
func (s *scaledBackend) ScoreConn(c *clap.Connection) float64 {
	return s.factor * s.inner.ScoreConn(c)
}
func (s *scaledBackend) WindowErrors(c *clap.Connection) []float64 {
	errs := s.inner.WindowErrors(c)
	for i := range errs {
		errs[i] *= s.factor
	}
	return errs
}
func (s *scaledBackend) Summarize(errs []float64) (float64, int) { return s.inner.Summarize(errs) }
func (s *scaledBackend) Save(w io.Writer) error                  { return s.inner.Save(w) }

// driftJSON mirrors the /v1/drift payload.
type driftJSON struct {
	Drift struct {
		Observed     uint64  `json:"observed"`
		LiveCount    uint64  `json:"live_count"`
		OperatingFPR float64 `json:"operating_fpr"`
		TargetFPR    float64 `json:"target_fpr"`
		Drift        float64 `json:"drift"`
		Reference    bool    `json:"reference"`
		Alert        bool    `json:"alert"`
		Reason       string  `json:"reason"`
	} `json:"drift"`
	AlertsTotal uint64 `json:"alerts_total"`
	Model       struct {
		Tag        string `json:"tag"`
		Generation uint64 `json:"generation"`
	} `json:"model"`
}

func getDrift(t *testing.T, base string) driftJSON {
	t.Helper()
	var d driftJSON
	getJSON(t, base+"/v1/drift", &d)
	return d
}

// TestServeDriftEndToEnd is the acceptance scenario for the calibration
// subsystem: a mid-run score-scale shift (injected via a scaled backend
// wrapper swapped into the hot handle, exactly the silent drift a reload
// cannot announce) must move the clap_serve_drift gauge and fire the
// drift alert within a bounded number of connections; /v1/drift must
// report the shift; a live recalibration through /v1/reload must restore
// the estimated operating FPR to the target; and an unshifted run must
// never alert. The calibration snapshot is persisted and restored across
// a daemon restart.
func TestServeDriftEndToEnd(t *testing.T) {
	clapModel, _ := fixture(t)
	const (
		window    = 40
		targetFPR = 0.25
	)
	calFile := filepath.Join(t.TempDir(), "clap.model.calib")

	var mu sync.Mutex
	var alerts []DriftStatus
	feed := &chanSource{name: "feed", ch: make(chan *clap.Connection, 64)}

	srv, err := New(Config{
		Backend:         loadModel(t, clapModel),
		ModelPath:       clapModel,
		Calibration:     clap.TrafficGen(120, 5),
		FPR:             targetFPR,
		CalibrationFile: calFile,
		DriftWindow:     window,
		DriftWindows:    2,
		OnDriftAlert: func(st DriftStatus) {
			mu.Lock()
			alerts = append(alerts, st)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.AddSource(feed)
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	staleTh := srv.Threshold()
	if staleTh <= 0 {
		t.Fatalf("calibrated threshold = %v", staleTh)
	}
	if _, err := os.Stat(calFile); err != nil {
		t.Fatalf("calibration snapshot not persisted at startup: %v", err)
	}

	fed := 0
	feedBenign := func(n int, seed int64) {
		t.Helper()
		for _, c := range clap.GenerateBenign(n, seed) {
			feed.ch <- c
		}
		fed += n
		waitScored(t, srv, uint64(fed))
	}

	// Phase 1 — unshifted: two full windows of benign traffic from the
	// calibration distribution must not alert.
	feedBenign(window, 101)
	feedBenign(window, 102)
	d := getDrift(t, ts.URL)
	if d.Drift.Alert || d.AlertsTotal != 0 {
		t.Fatalf("unshifted run alerted: %+v", d)
	}
	if !d.Drift.Reference {
		t.Fatal("drift status reports no calibration reference")
	}
	if d.Drift.Drift > 0.4 {
		t.Fatalf("unshifted drift statistic = %v", d.Drift.Drift)
	}
	if d.Drift.OperatingFPR > 2.5*targetFPR {
		t.Fatalf("unshifted operating FPR = %v at target %v", d.Drift.OperatingFPR, targetFPR)
	}
	mu.Lock()
	if len(alerts) != 0 {
		mu.Unlock()
		t.Fatalf("unshifted run fired %d alert hooks", len(alerts))
	}
	mu.Unlock()

	// Phase 2 — inject the drift: the serving model silently becomes a
	// 4x-scaled version of itself (hot.Swap carries the stale threshold
	// over — nothing announces the change to the calibration).
	if _, err := srv.hot.Swap(&scaledBackend{inner: loadModel(t, clapModel), factor: 4}); err != nil {
		t.Fatal(err)
	}
	feedBenign(window, 201)
	feedBenign(window, 202)
	feedBenign(window, 203)
	feedBenign(window, 204)

	mu.Lock()
	nAlerts := len(alerts)
	var first DriftStatus
	if nAlerts > 0 {
		first = alerts[0]
	}
	mu.Unlock()
	if nAlerts != 1 {
		t.Fatalf("shift fired %d alert hooks within %d connections, want exactly 1 (edge-triggered)", nAlerts, 4*window)
	}
	if !first.Alert || first.Reason == "" {
		t.Fatalf("malformed alert status: %+v", first)
	}
	d = getDrift(t, ts.URL)
	if !d.Drift.Alert || d.AlertsTotal != 1 {
		t.Fatalf("/v1/drift after shift: %+v", d)
	}
	if d.Drift.Drift <= 0.5 {
		t.Fatalf("4x scale shift moved drift only to %v", d.Drift.Drift)
	}
	if d.Drift.OperatingFPR <= 2*targetFPR {
		t.Fatalf("operating FPR %v did not decay under the stale threshold", d.Drift.OperatingFPR)
	}
	m := getMetrics(t, ts.URL)
	if m["clap_serve_drift"] <= 0.5 {
		t.Fatalf("clap_serve_drift gauge = %v after shift", m["clap_serve_drift"])
	}
	if m["clap_serve_drift_alerts_total"] != 1 || m["clap_serve_drift_alerting"] != 1 {
		t.Fatalf("drift alert metrics: alerts=%v alerting=%v",
			m["clap_serve_drift_alerts_total"], m["clap_serve_drift_alerting"])
	}
	if m["clap_serve_operating_fpr"] != d.Drift.OperatingFPR {
		t.Fatalf("gauge/endpoint operating FPR disagree: %v vs %v",
			m["clap_serve_operating_fpr"], d.Drift.OperatingFPR)
	}

	// Phase 3 — atomic live recalibration: /v1/reload with the "live"
	// calibration source re-derives the threshold from the recent sketch
	// state, keeping the model (and its generation) in place.
	genBefore := srv.hot.Generation()
	resp, err := http.Post(ts.URL+"/v1/reload", "application/json",
		strings.NewReader(`{"calibration": "live"}`))
	if err != nil {
		t.Fatal(err)
	}
	var reload struct {
		Old, New     ReloadInfo
		Recalibrated bool
	}
	if err := json.NewDecoder(resp.Body).Decode(&reload); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("live recalibration: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	if !reload.Recalibrated {
		t.Fatal("reload response does not report recalibration")
	}
	if reload.New.Threshold <= staleTh {
		t.Fatalf("recalibrated threshold %v not above stale %v after a 4x upward shift",
			reload.New.Threshold, staleTh)
	}
	if srv.hot.Generation() != genBefore {
		t.Fatal("in-place recalibration bumped the model generation")
	}
	if got := srv.Threshold(); got != reload.New.Threshold {
		t.Fatalf("live threshold %v != reload response %v", got, reload.New.Threshold)
	}

	// The persisted snapshot now carries the recalibrated state.
	saved, err := clap.LoadCalibrationFile(calFile)
	if err != nil {
		t.Fatalf("reloading persisted snapshot: %v", err)
	}
	if saved.Threshold != reload.New.Threshold || saved.Tag != clap.BackendCLAP {
		t.Fatalf("persisted snapshot: threshold %v tag %q, want %v %q",
			saved.Threshold, saved.Tag, reload.New.Threshold, clap.BackendCLAP)
	}

	// Phase 4 — recovery: under the recalibrated threshold the same
	// shifted traffic operates at the target FPR again and stays quiet.
	feedBenign(window, 301)
	feedBenign(window, 302)
	d = getDrift(t, ts.URL)
	if d.Drift.Alert {
		t.Fatalf("alert still latched after recalibration: %+v", d)
	}
	if d.AlertsTotal != 1 {
		t.Fatalf("recovery fired extra alerts: %d", d.AlertsTotal)
	}
	if fpr := d.Drift.OperatingFPR; fpr < targetFPR/3 || fpr > targetFPR*3 {
		t.Fatalf("post-recalibration operating FPR %v not within tolerance of target %v", fpr, targetFPR)
	}

	close(feed.ch)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Phase 5 — restart: a fresh daemon with no calibration source
	// restores threshold and reference distribution from the snapshot
	// file, so drift monitoring resumes with the same baseline.
	srv2, err := New(Config{
		Backend:         loadModel(t, clapModel),
		ModelPath:       clapModel,
		CalibrationFile: calFile,
		DriftWindow:     window,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv2.AddSource(clap.Soak(clap.SoakConfig{Connections: 1, Seed: 1}))
	if err := srv2.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
	}()
	if got := srv2.Threshold(); got != saved.Threshold {
		t.Fatalf("restart restored threshold %v, snapshot has %v", got, saved.Threshold)
	}
	if st, ok := srv2.DriftStatus(); !ok || !st.Reference || st.TargetFPR != targetFPR {
		t.Fatalf("restart did not restore the drift reference: ok=%v st=%+v", ok, st)
	}

	// Phase 6 — restart with an explicit fixed threshold: the snapshot
	// contributes only its reference distribution; its threshold AND its
	// FPR target are overridden/dropped, so the FPR rules cannot alert
	// against a target the operator opted out of.
	srv3, err := New(Config{
		Backend:         loadModel(t, clapModel),
		Threshold:       9.5,
		CalibrationFile: calFile,
		DriftWindow:     window,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv3.AddSource(clap.Soak(clap.SoakConfig{Connections: 1, Seed: 2}))
	if err := srv3.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv3.Shutdown(ctx)
	}()
	if got := srv3.Threshold(); got != 9.5 {
		t.Fatalf("explicit threshold %v lost to the snapshot's", got)
	}
	if st, ok := srv3.DriftStatus(); !ok || !st.Reference || st.TargetFPR != 0 {
		t.Fatalf("threshold override must keep the reference but drop the FPR target: %+v", st)
	}
}

// TestServeReloadCalibrationAtomicity hammers reload-with-calibration
// (alternating between two model files, each recalibrated against the
// same benign pcap) concurrently with scoring, and asserts that no
// emitted verdict was ever produced by a crossed pairing: every result's
// score identifies the model that produced it, and its flag must match
// exactly that model's calibrated threshold. Run under -race in CI.
func TestServeReloadCalibrationAtomicity(t *testing.T) {
	clapModel, b1Model := fixture(t)
	const targetFPR = 0.25

	calibPcap := filepath.Join(t.TempDir(), "calib.pcap")
	if err := clap.WritePCAPFile(calibPcap, clap.GenerateBenign(40, 5), false); err != nil {
		t.Fatal(err)
	}

	// The expected (model, threshold) bindings, derived offline through
	// the same deterministic calibration path the server uses.
	expectTh := func(path string) float64 {
		t.Helper()
		p, err := clap.NewPipeline(clap.WithBackend(loadModel(t, path)))
		if err != nil {
			t.Fatal(err)
		}
		cal, err := p.Calibrate(targetFPR, clap.PCAPFile(calibPcap))
		if err != nil {
			t.Fatal(err)
		}
		return cal.Threshold
	}
	thA, thB := expectTh(clapModel), expectTh(b1Model)
	if thA == thB {
		t.Fatalf("test needs discriminating thresholds, got %v for both models", thA)
	}

	const soakN = 300
	type verdict struct {
		score   float64
		flagged bool
	}
	var mu sync.Mutex
	scored := make(map[*clap.Connection]verdict, soakN)

	srv, err := New(Config{
		Backend:     loadModel(t, clapModel),
		ModelPath:   clapModel,
		Calibration: clap.PCAPFile(calibPcap),
		FPR:         targetFPR,
		QueueDepth:  16,
		DriftWindow: -1, // monitoring off: this test isolates pair atomicity
		OnResult: func(r clap.Result) {
			mu.Lock()
			scored[r.Conn] = verdict{score: r.Score, flagged: r.Flagged}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if th := srv.hot; th == nil {
		t.Fatal("no hot handle")
	}
	// The soak is paced so scoring outlasts many reload transactions.
	srv.AddSource(clap.Soak(clap.SoakConfig{Connections: soakN, Seed: 77, AttackFraction: 0.4, Rate: 150}))
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := srv.Threshold(); got != thA {
		t.Fatalf("startup calibration threshold %v, offline derivation %v", got, thA)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Hammer atomic reload-with-calibration while the soak scores.
	paths := []string{b1Model, clapModel}
	reloads := 0
	for srv.Scored() < soakN {
		body := fmt.Sprintf(`{"path": %q, "calibration": %q, "fpr": %g}`,
			paths[reloads%2], calibPcap, targetFPR)
		resp, err := http.Post(ts.URL+"/v1/reload", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d: %s", reloads, resp.Status)
		}
		reloads++
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if reloads < 2 {
		t.Fatalf("only %d reloads landed while scoring", reloads)
	}

	// Drift monitoring is disabled in this config: /v1/drift must say so.
	resp, err := http.Get(ts.URL + "/v1/drift")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/drift with monitoring disabled: %s, want 404", resp.Status)
	}

	// Offline ground truth per model, then the pairing check: a verdict
	// is legal iff (score, flag) is consistent with (A, thA) or (B, thB).
	// A (new model, old threshold) crossover would flag against the
	// wrong threshold and fail both arms.
	a, b := loadModel(t, clapModel), loadModel(t, b1Model)
	mu.Lock()
	defer mu.Unlock()
	if len(scored) != soakN {
		t.Fatalf("scored %d connections, want %d", len(scored), soakN)
	}
	seenA, seenB := 0, 0
	for c, v := range scored {
		sa, sb := a.ScoreConn(c), b.ScoreConn(c)
		okA := v.score == sa && v.flagged == (sa >= thA)
		okB := v.score == sb && v.flagged == (sb >= thB)
		switch {
		case okA:
			seenA++
		case okB:
			seenB++
		default:
			t.Fatalf("crossed (model, threshold) pairing: score=%v flagged=%v (A: score %v th %v, B: score %v th %v)",
				v.score, v.flagged, sa, thA, sb, thB)
		}
	}
	if seenA == 0 || seenB == 0 {
		t.Fatalf("both models must serve during the hammer: A scored %d, B scored %d (%d reloads)",
			seenA, seenB, reloads)
	}
}

// TestServeIdleFlushPlumbing: serve.Config.IdleFlush reaches every
// registered source that supports the knob, and leaves others alone.
func TestServeIdleFlushPlumbing(t *testing.T) {
	clapModel, _ := fixture(t)
	srv, err := New(Config{
		Backend:   loadModel(t, clapModel),
		IdleFlush: 123 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := &idleRecordingSource{chanSource: chanSource{name: "rec", ch: make(chan *clap.Connection)}}
	srv.AddSource(rec)                                                         // IdleFlushable: receives the config value
	srv.AddSource(&chanSource{name: "plain", ch: make(chan *clap.Connection)}) // not IdleFlushable: no-op
	if rec.got != 123*time.Millisecond {
		t.Fatalf("IdleFlush plumbed %v, want 123ms", rec.got)
	}

	// The built-in live pcap sources implement the knob.
	for _, src := range []clap.ServeSource{
		clap.TailPCAP("x.pcap", clap.LiveConfig{}),
		clap.FollowPCAP("pipe", strings.NewReader(""), clap.LiveConfig{}),
	} {
		if _, ok := src.(clap.IdleFlushable); !ok {
			t.Errorf("%s does not implement IdleFlushable", src.Name())
		}
	}
}

type idleRecordingSource struct {
	chanSource
	got time.Duration
}

func (s *idleRecordingSource) SetIdleFlush(d time.Duration) { s.got = d }
