package tenant

import (
	"sync"
	"testing"
	"time"
)

// newQuotaTenant builds a tenant for quota tests without a trained
// model: only the admission state matters here.
func newQuotaTenant(t *testing.T, q Quota) *Tenant {
	t.Helper()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	tn := &Tenant{Name: "t", Quota: q}
	if q.Rate > 0 {
		tn.tokens = tn.burst()
	}
	return tn
}

func TestQuotaValidate(t *testing.T) {
	for _, q := range []Quota{
		{MaxInFlight: -1},
		{Rate: -0.5},
		{Burst: -2},
	} {
		if err := q.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid quota", q)
		}
	}
	if err := (Quota{MaxInFlight: 4, Rate: 10, Burst: 2}).Validate(); err != nil {
		t.Errorf("valid quota rejected: %v", err)
	}
	if !(Quota{}).Unlimited() {
		t.Error("zero quota should be unlimited")
	}
	if (Quota{Rate: 1}).Unlimited() {
		t.Error("rated quota should not be unlimited")
	}
}

func TestAdmitUnlimited(t *testing.T) {
	tn := newQuotaTenant(t, Quota{})
	now := time.Unix(0, 0)
	for i := 0; i < 1000; i++ {
		if !tn.Admit(now) {
			t.Fatalf("unlimited quota refused admission at %d", i)
		}
	}
	if got := tn.InFlight(); got != 1000 {
		t.Fatalf("InFlight = %d, want 1000", got)
	}
	if got := tn.Shed.Load(); got != 0 {
		t.Fatalf("Shed = %d, want 0", got)
	}
}

func TestAdmitMaxInFlight(t *testing.T) {
	tn := newQuotaTenant(t, Quota{MaxInFlight: 3})
	now := time.Unix(0, 0)
	for i := 0; i < 3; i++ {
		if !tn.Admit(now) {
			t.Fatalf("admission %d refused under the cap", i)
		}
	}
	if tn.Admit(now) {
		t.Fatal("admission over the in-flight cap")
	}
	if got := tn.Shed.Load(); got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}
	tn.Release()
	if !tn.Admit(now) {
		t.Fatal("admission refused after Release freed a slot")
	}
	if got := tn.InFlight(); got != 3 {
		t.Fatalf("InFlight = %d, want 3", got)
	}
}

func TestAdmitTokenBucket(t *testing.T) {
	tn := newQuotaTenant(t, Quota{Rate: 10, Burst: 2})
	now := time.Unix(100, 0)
	// Burst drains first...
	for i := 0; i < 2; i++ {
		if !tn.Admit(now) {
			t.Fatalf("burst admission %d refused", i)
		}
	}
	if tn.Admit(now) {
		t.Fatal("admission with an empty bucket")
	}
	// ...then the refill governs: 100ms at 10/s buys exactly one token.
	now = now.Add(100 * time.Millisecond)
	if !tn.Admit(now) {
		t.Fatal("admission refused after a one-token refill")
	}
	if tn.Admit(now) {
		t.Fatal("double admission from a one-token refill")
	}
	// The bucket never overfills past the burst depth.
	now = now.Add(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if tn.Admit(now) {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("admitted %d after a long idle, want burst depth 2", admitted)
	}
	// Refusals released their in-flight slot: only successes count.
	if got := tn.InFlight(); got != 5 {
		t.Fatalf("InFlight = %d, want 5 admitted", got)
	}
}

func TestAdmitDefaultBurst(t *testing.T) {
	// Burst 0 with a rate defaults to one second of quota (min 1).
	tn := newQuotaTenant(t, Quota{Rate: 5})
	now := time.Unix(0, 0)
	admitted := 0
	for i := 0; i < 20; i++ {
		if tn.Admit(now) {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("admitted %d with default burst at rate 5, want 5", admitted)
	}

	slow := newQuotaTenant(t, Quota{Rate: 0.5})
	if !slow.Admit(now) {
		t.Fatal("sub-1/s rate should still default to a 1-token burst")
	}
	if slow.Admit(now) {
		t.Fatal("sub-1/s rate admitted twice from the default burst")
	}
}

func TestAdmitConcurrent(t *testing.T) {
	tn := newQuotaTenant(t, Quota{MaxInFlight: 8, Rate: 1000, Burst: 50})
	now := time.Unix(0, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if tn.Admit(now) {
					tn.Release()
				}
			}
		}()
	}
	wg.Wait()
	if got := tn.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after balanced admit/release, want 0", got)
	}
}

func TestRingBoundsAndOrder(t *testing.T) {
	r := NewRing[int](3)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("fresh ring snapshot = %v, want empty", got)
	}
	for i := 1; i <= 2; i++ {
		r.Add(i)
	}
	if got := r.Snapshot(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("partial ring snapshot = %v, want [1 2]", got)
	}
	for i := 3; i <= 5; i++ {
		r.Add(i)
	}
	got := r.Snapshot()
	if len(got) != 3 || got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("wrapped ring snapshot = %v, want [3 4 5]", got)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
}

// TestSampleTrace: head sampling is deterministic per tenant — the
// first delivery and every period-th after it sample, independent of
// timing; period <= 1 samples everything.
func TestSampleTrace(t *testing.T) {
	tn := newQuotaTenant(t, Quota{})
	var got []int
	for i := 0; i < 10; i++ {
		if tn.SampleTrace(4) {
			got = append(got, i)
		}
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 4 || got[2] != 8 {
		t.Fatalf("period-4 sampled deliveries %v, want [0 4 8]", got)
	}
	all := newQuotaTenant(t, Quota{})
	for i := 0; i < 5; i++ {
		if !all.SampleTrace(1) {
			t.Fatalf("period 1 skipped delivery %d", i)
		}
	}
	none := newQuotaTenant(t, Quota{})
	for i := 0; i < 5; i++ {
		if !none.SampleTrace(0) {
			t.Fatalf("period 0 (coerced to sample-all) skipped delivery %d", i)
		}
	}
	// Two tenants sample independently: a second tenant's counter does
	// not advance the first's.
	a, b := newQuotaTenant(t, Quota{}), newQuotaTenant(t, Quota{})
	a.SampleTrace(2)
	for i := 0; i < 3; i++ {
		b.SampleTrace(2)
	}
	if a.SampleTrace(2) {
		t.Fatal("tenant a's second delivery sampled under period 2 — counters are shared")
	}
}
