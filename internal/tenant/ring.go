package tenant

import "sync"

// Ring is a bounded, mutex-guarded ring buffer: each tenant's flagged
// feed is one Ring, so a chatty tenant can only ever evict its own
// entries, never a neighbour's.
type Ring[T any] struct {
	mu   sync.Mutex
	buf  []T
	next int
	cap  int
}

// NewRing builds a ring retaining the last capacity entries (capacity
// must be positive).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring[T]{buf: make([]T, 0, capacity), cap: capacity}
}

// Add appends one entry, evicting the oldest at capacity.
func (r *Ring[T]) Add(v T) {
	r.mu.Lock()
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, v)
	} else {
		r.buf[r.next] = v
		r.next = (r.next + 1) % r.cap
	}
	r.mu.Unlock()
}

// Snapshot returns the retained entries oldest-first.
func (r *Ring[T]) Snapshot() []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]T, 0, len(r.buf))
	if len(r.buf) == r.cap {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Len reports the retained entry count.
func (r *Ring[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}
