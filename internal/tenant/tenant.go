// Package tenant holds the per-tenant serving state for multi-tenant
// fleet serving: one daemon watching many capture points (sites, links,
// customers), each needing its own model handle, operating threshold,
// calibration reference, drift monitor, and admission quota — while every
// tenant's connections share ONE batched scoring engine, so cross-tenant
// micro-batching keeps batch occupancy high even when each tenant alone
// is lightly loaded.
//
// A Tenant owns:
//
//   - Hot: the reload-safe (model, threshold) pair handle. Scoring pins
//     THIS tenant's CurrentPair per connection, so a per-tenant hot
//     reload or recalibration is atomic for exactly that tenant's
//     verdicts and invisible to every other tenant's.
//   - Monitor: the tenant's drift monitor against its own calibration
//     reference (nil when drift monitoring is disabled).
//   - Quota: fair-share admission — max in-flight plus a deliveries/sec
//     token bucket — evaluated BEFORE the shared ingest queue, so a
//     noisy tenant sheds its own overload and never its neighbours'.
//   - Counters: delivered/shed/scored/packets/flagged/reloads/drift
//     accounting, exported under a tenant="..." Prometheus label.
//
// The serving layer composes a Tenant with its flagged ring (Ring) and
// source list; this package stays free of serving types so it can be
// reused by any multi-tenant frontend.
package tenant

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"clap/internal/backend"
	"clap/internal/calib"
)

// Quota bounds one tenant's share of the daemon. The zero value is
// unlimited: admission always succeeds.
type Quota struct {
	// MaxInFlight caps connections admitted but not yet emitted (queued
	// or inside the scoring stream). 0: unlimited.
	MaxInFlight int
	// Rate is the sustained deliveries/second token-bucket refill. 0:
	// unlimited.
	Rate float64
	// Burst is the token bucket depth (deliveries admitted back-to-back
	// after an idle stretch). 0 with a positive Rate defaults to
	// max(1, Rate) tokens — one second of quota.
	Burst int
}

// Validate rejects quotas that could never admit anything or don't
// parse as bounds.
func (q Quota) Validate() error {
	if q.MaxInFlight < 0 {
		return fmt.Errorf("tenant: quota max-in-flight %d must be >= 0", q.MaxInFlight)
	}
	if q.Rate < 0 || q.Rate != q.Rate {
		return fmt.Errorf("tenant: quota rate %v must be >= 0", q.Rate)
	}
	if q.Burst < 0 {
		return fmt.Errorf("tenant: quota burst %d must be >= 0", q.Burst)
	}
	return nil
}

// Unlimited reports whether the quota never refuses admission.
func (q Quota) Unlimited() bool { return q.MaxInFlight == 0 && q.Rate == 0 }

// Tenant is one named source group's serving state. All fields are set
// at construction; the counters and bucket state are safe for the
// serving layer's concurrency (ingest goroutines admit, the emit
// goroutine releases and accounts).
type Tenant struct {
	// Name identifies the tenant ("default" for the implicit tenant the
	// daemon's top-level flags configure).
	Name string

	// Hot publishes this tenant's (model, threshold, generation) in one
	// atomic value; per-connection scoring pins through it.
	Hot *backend.Hot

	// Monitor tracks the tenant's live score distribution against its
	// calibration reference (nil: drift monitoring disabled).
	Monitor *calib.Monitor

	// ModelPath and CalibrationFile are the tenant's reload source and
	// calibration snapshot path (either may be empty).
	ModelPath       string
	CalibrationFile string

	// FPR is the tenant's calibration target (0: none).
	FPR float64

	// Quota is the tenant's admission bound.
	Quota Quota

	// ReloadMu serializes this tenant's reloads; the pair swap itself is
	// atomic, tenants reload independently.
	ReloadMu sync.Mutex

	// Accounting, exported per tenant.
	Delivered   atomic.Uint64 // connections admitted to the shared queue
	Shed        atomic.Uint64 // connections refused (quota or full queue)
	Scored      atomic.Uint64
	Packets     atomic.Uint64
	Flagged     atomic.Uint64
	Reloads     atomic.Uint64
	DriftAlerts atomic.Uint64

	inFlight atomic.Int64
	// traceSeq counts delivered connections for deterministic head
	// sampling; see SampleTrace.
	traceSeq atomic.Uint64

	// Token bucket state; guarded because several ingest goroutines may
	// deliver for one tenant.
	bucketMu sync.Mutex
	tokens   float64
	lastFill time.Time
}

// New builds a Tenant around a reload-safe handle. The quota is
// validated; monitor may be nil.
func New(name string, hot *backend.Hot, monitor *calib.Monitor, q Quota) (*Tenant, error) {
	if name == "" {
		return nil, fmt.Errorf("tenant: tenant needs a name")
	}
	if hot == nil {
		return nil, fmt.Errorf("tenant: tenant %q needs a model handle", name)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	t := &Tenant{Name: name, Hot: hot, Monitor: monitor, Quota: q}
	if q.Rate > 0 {
		burst := float64(q.Burst)
		if burst == 0 {
			burst = q.Rate
			if burst < 1 {
				burst = 1
			}
		}
		t.tokens = burst
	}
	return t, nil
}

// burst is the bucket depth in tokens.
func (t *Tenant) burst() float64 {
	b := float64(t.Quota.Burst)
	if b == 0 {
		b = t.Quota.Rate
		if b < 1 {
			b = 1
		}
	}
	return b
}

// Admit applies the quota at delivery time: it checks the in-flight cap
// and, if a rate is configured, takes one token from the bucket. On
// success the tenant's in-flight count is incremented (balanced by
// Release at emit). On refusal nothing is consumed and the shed counter
// is bumped — the caller must NOT enqueue. now is injected for
// deterministic tests.
func (t *Tenant) Admit(now time.Time) bool {
	if t.Quota.MaxInFlight > 0 {
		if n := t.inFlight.Add(1); n > int64(t.Quota.MaxInFlight) {
			t.inFlight.Add(-1)
			t.Shed.Add(1)
			return false
		}
	} else {
		t.inFlight.Add(1)
	}
	if t.Quota.Rate > 0 {
		t.bucketMu.Lock()
		if !t.lastFill.IsZero() {
			if dt := now.Sub(t.lastFill).Seconds(); dt > 0 {
				t.tokens += dt * t.Quota.Rate
				if max := t.burst(); t.tokens > max {
					t.tokens = max
				}
			}
		}
		t.lastFill = now
		ok := t.tokens >= 1
		if ok {
			t.tokens--
		}
		t.bucketMu.Unlock()
		if !ok {
			t.inFlight.Add(-1)
			t.Shed.Add(1)
			return false
		}
	}
	return true
}

// Release balances a successful Admit once the connection has been
// scored and emitted (or shed at the shared queue after admission).
func (t *Tenant) Release() { t.inFlight.Add(-1) }

// InFlight reports connections admitted but not yet released — the
// tenant's share of the queue plus the scoring stream.
func (t *Tenant) InFlight() int { return int(t.inFlight.Load()) }

// SampleTrace decides deterministic head sampling for one delivered
// connection: the 1st, (period+1)th, (2·period+1)th, ... delivery per
// tenant is sampled, so a tenant delivering any traffic at all always
// retains at least one deep trace and the retention rate is exactly
// 1/period regardless of load. period <= 1 samples everything.
func (t *Tenant) SampleTrace(period int) bool {
	n := t.traceSeq.Add(1) - 1
	if period <= 1 {
		return true
	}
	return n%uint64(period) == 0
}

// Threshold reports the tenant's operating threshold (0 while none is
// installed: score-only).
func (t *Tenant) Threshold() float64 {
	if _, th, ok := t.Hot.CurrentPair(); ok {
		return th
	}
	return 0
}
