// Package pcapio reads and writes classic libpcap capture files, the input
// format CLAP consumes (the paper operates on MAWI PCAP archives).
//
// Both byte orders and both timestamp precisions (microsecond magic
// 0xa1b2c3d4 and nanosecond magic 0xa1b23c4d) are supported for reading;
// writing always uses native-order microsecond files. Link types
// LINKTYPE_ETHERNET (1) and LINKTYPE_RAW (101) are understood; Ethernet
// frames are unwrapped to their IP payload on read and synthesized with
// fixed MAC addresses on write.
package pcapio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"clap/internal/packet"
)

// Link-layer types from the tcpdump registry.
const (
	LinkTypeEthernet = 1
	LinkTypeRaw      = 101
)

const (
	magicMicros        = 0xa1b2c3d4
	magicMicrosSwapped = 0xd4c3b2a1
	magicNanos         = 0xa1b23c4d
	magicNanosSwapped  = 0x4d3cb2a1

	etherTypeIPv4 = 0x0800
	etherHdrLen   = 14
)

// Errors surfaced by the reader.
var (
	ErrBadMagic = errors.New("pcapio: unrecognized magic number")
	ErrLinkType = errors.New("pcapio: unsupported link type")
	// ErrOversizeRecord reports a record header whose capture length
	// exceeds maxRecordLen. Such a header is corruption (no real frame
	// approaches 1 MiB), and must be rejected before the body
	// allocation: a crafted header in a snaplen-0 capture could
	// otherwise demand up to 4 GiB.
	ErrOversizeRecord = errors.New("pcapio: record capture length exceeds sanity bound")
)

// maxRecordLen bounds a single record's capture length, independently of
// the file's declared snaplen (snaplen 0 — emitted by some writers —
// must not mean "unbounded allocation").
const maxRecordLen = 1 << 20

// Record is one captured frame with its metadata.
type Record struct {
	Timestamp time.Time
	// Data holds the raw IP bytes (link layer already stripped).
	Data []byte
	// OrigLen is the original on-the-wire length of the IP portion, which
	// exceeds len(Data) for snap-length- or payload-truncated captures.
	OrigLen int
}

// Reader decodes a pcap stream.
type Reader struct {
	r        *bufio.Reader
	order    binary.ByteOrder
	nanos    bool
	linkType uint32
	snapLen  uint32
}

// NewReader parses the global header and prepares to iterate records.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcapio: reading global header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	rd := &Reader{r: br}
	switch magic {
	case magicMicros:
		rd.order = binary.LittleEndian
	case magicNanos:
		rd.order, rd.nanos = binary.LittleEndian, true
	case magicMicrosSwapped:
		rd.order = binary.BigEndian
	case magicNanosSwapped:
		rd.order, rd.nanos = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("%w: %#x", ErrBadMagic, magic)
	}
	rd.snapLen = rd.order.Uint32(hdr[16:20])
	rd.linkType = rd.order.Uint32(hdr[20:24])
	if rd.linkType != LinkTypeEthernet && rd.linkType != LinkTypeRaw {
		return nil, fmt.Errorf("%w: %d", ErrLinkType, rd.linkType)
	}
	return rd, nil
}

// LinkType returns the capture's link-layer type.
func (r *Reader) LinkType() uint32 { return r.linkType }

// Next returns the next record, or io.EOF at end of stream.
func (r *Reader) Next() (Record, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	sec := r.order.Uint32(hdr[0:4])
	frac := r.order.Uint32(hdr[4:8])
	capLen := r.order.Uint32(hdr[8:12])
	origLen := r.order.Uint32(hdr[12:16])
	if capLen > maxRecordLen {
		return Record{}, fmt.Errorf("%w: %d", ErrOversizeRecord, capLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Record{}, fmt.Errorf("pcapio: truncated record body: %w", err)
	}
	nsec := int64(frac)
	if !r.nanos {
		nsec *= 1000
	}
	rec := Record{Timestamp: time.Unix(int64(sec), nsec), Data: data, OrigLen: int(origLen)}
	if r.linkType == LinkTypeEthernet {
		if len(rec.Data) < etherHdrLen {
			return Record{}, fmt.Errorf("pcapio: ethernet frame of %d bytes", len(rec.Data))
		}
		etherType := binary.BigEndian.Uint16(rec.Data[12:14])
		if etherType != etherTypeIPv4 {
			// Signal non-IP frames with an empty payload; callers skip them.
			rec.Data = nil
			rec.OrigLen = 0
			return rec, nil
		}
		rec.Data = rec.Data[etherHdrLen:]
		rec.OrigLen -= etherHdrLen
		if rec.OrigLen < len(rec.Data) {
			// A frame whose claimed wire length is shorter than the
			// Ethernet header (or than the captured bytes) would yield a
			// negative or undersized OrigLen downstream.
			rec.OrigLen = len(rec.Data)
		}
	}
	return rec, nil
}

// ReadPackets drains the stream, decoding every TCP/IPv4 record into a
// packet. Non-IP and non-TCP records are skipped; structurally undecodable
// TCP/IP records are also skipped (real backbone traces contain junk), with
// the skip count returned.
func ReadPackets(r io.Reader) (pkts []*packet.Packet, skipped int, err error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, 0, err
	}
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return pkts, skipped, nil
		}
		if err != nil {
			return pkts, skipped, err
		}
		if len(rec.Data) == 0 {
			skipped++
			continue
		}
		p, derr := packet.Decode(rec.Data)
		if derr != nil {
			skipped++
			continue
		}
		p.Timestamp = rec.Timestamp
		// Reconcile stripped payloads: claimed length from IP header versus
		// captured bytes is already handled by packet.Decode.
		pkts = append(pkts, p)
	}
}

// Writer emits a pcap file.
type Writer struct {
	w        *bufio.Writer
	linkType uint32
	wroteHdr bool
}

// NewWriter creates a pcap writer with the given link type
// (LinkTypeEthernet or LinkTypeRaw).
func NewWriter(w io.Writer, linkType uint32) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), linkType: linkType}
}

func (w *Writer) writeHeader() error {
	var hdr [24]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:4], magicMicros)
	le.PutUint16(hdr[4:6], 2) // version major
	le.PutUint16(hdr[6:8], 4) // version minor
	le.PutUint32(hdr[16:20], 262144)
	le.PutUint32(hdr[20:24], w.linkType)
	_, err := w.w.Write(hdr[:])
	return err
}

// fixed synthetic MACs for Ethernet framing.
var (
	srcMAC = [6]byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	dstMAC = [6]byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
)

// WriteRaw writes one record of raw IP bytes. origLen should be the claimed
// on-the-wire IP length (>= len(data) for stripped captures).
func (w *Writer) WriteRaw(ts time.Time, data []byte, origLen int) error {
	if !w.wroteHdr {
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.wroteHdr = true
	}
	if origLen < len(data) {
		origLen = len(data)
	}
	frame := data
	if w.linkType == LinkTypeEthernet {
		frame = make([]byte, etherHdrLen+len(data))
		copy(frame[0:6], dstMAC[:])
		copy(frame[6:12], srcMAC[:])
		binary.BigEndian.PutUint16(frame[12:14], etherTypeIPv4)
		copy(frame[etherHdrLen:], data)
		origLen += etherHdrLen
	}
	var hdr [16]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:4], uint32(ts.Unix()))
	le.PutUint32(hdr[4:8], uint32(ts.Nanosecond()/1000))
	le.PutUint32(hdr[8:12], uint32(len(frame)))
	le.PutUint32(hdr[12:16], uint32(origLen))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(frame)
	return err
}

// WritePacket encodes and writes a packet. The record's original length
// reflects the packet's claimed IP total length so stripped payloads survive
// a round trip.
func (w *Writer) WritePacket(p *packet.Packet) error {
	raw, err := p.Encode(packet.SerializeOptions{})
	if err != nil {
		return err
	}
	orig := int(p.IP.TotalLen)
	if orig < len(raw) {
		orig = len(raw)
	}
	return w.WriteRaw(p.Timestamp, raw, orig)
}

// Flush commits buffered output. Call once after the last record.
func (w *Writer) Flush() error {
	if !w.wroteHdr {
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.wroteHdr = true
	}
	return w.w.Flush()
}
