package pcapio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"

	"clap/internal/packet"
)

func samplePackets(t *testing.T) []*packet.Packet {
	t.Helper()
	c := [4]byte{10, 0, 0, 1}
	s := [4]byte{192, 0, 2, 1}
	ts := time.Unix(1600000000, 123456000)
	return []*packet.Packet{
		packet.NewBuilder(c, s, 1234, 80).Seq(100).Flags(packet.SYN).MSS(1460).Time(ts).Build(),
		packet.NewBuilder(s, c, 80, 1234).Seq(500).Ack(101).Flags(packet.SYN | packet.ACK).MSS(1460).Time(ts.Add(time.Millisecond)).Build(),
		packet.NewBuilder(c, s, 1234, 80).Seq(101).Ack(501).Flags(packet.ACK).PayloadLen(300).Time(ts.Add(2 * time.Millisecond)).Build(),
	}
}

func roundTrip(t *testing.T, linkType uint32) {
	t.Helper()
	pkts := samplePackets(t)
	var buf bytes.Buffer
	w := NewWriter(&buf, linkType)
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatalf("WritePacket: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, skipped, err := ReadPackets(&buf)
	if err != nil {
		t.Fatalf("ReadPackets: %v", err)
	}
	if skipped != 0 {
		t.Errorf("skipped = %d, want 0", skipped)
	}
	if len(got) != len(pkts) {
		t.Fatalf("read %d packets, want %d", len(got), len(pkts))
	}
	for i := range got {
		if got[i].TCP.Seq != pkts[i].TCP.Seq || got[i].TCP.Flags != pkts[i].TCP.Flags {
			t.Errorf("packet %d: got %v want %v", i, got[i], pkts[i])
		}
		if got[i].PayloadLen != pkts[i].PayloadLen {
			t.Errorf("packet %d: PayloadLen = %d, want %d", i, got[i].PayloadLen, pkts[i].PayloadLen)
		}
		if !got[i].Timestamp.Equal(pkts[i].Timestamp.Truncate(time.Microsecond)) {
			t.Errorf("packet %d: Timestamp = %v, want %v", i, got[i].Timestamp, pkts[i].Timestamp)
		}
		if !got[i].TCPChecksumValid() {
			t.Errorf("packet %d: checksum invalid after round trip", i)
		}
	}
}

func TestRoundTripRaw(t *testing.T)      { roundTrip(t, LinkTypeRaw) }
func TestRoundTripEthernet(t *testing.T) { roundTrip(t, LinkTypeEthernet) }

func TestReaderRejectsBadMagic(t *testing.T) {
	buf := make([]byte, 24)
	binary.LittleEndian.PutUint32(buf, 0xdeadbeef)
	if _, err := NewReader(bytes.NewReader(buf)); err == nil {
		t.Error("NewReader should reject unknown magic")
	}
}

func TestReaderRejectsUnknownLinkType(t *testing.T) {
	buf := make([]byte, 24)
	le := binary.LittleEndian
	le.PutUint32(buf[0:4], magicMicros)
	le.PutUint32(buf[20:24], 228) // LINKTYPE_IPV4? not supported here
	if _, err := NewReader(bytes.NewReader(buf)); err == nil {
		t.Error("NewReader should reject unsupported link type")
	}
}

func TestReaderBigEndianAndNanos(t *testing.T) {
	// Hand-build a big-endian nanosecond pcap with a single raw IP record.
	p := samplePackets(t)[0]
	rawIP, _ := p.Encode(packet.SerializeOptions{})
	var buf bytes.Buffer
	bePut := binary.BigEndian
	hdr := make([]byte, 24)
	bePut.PutUint32(hdr[0:4], magicNanos)
	bePut.PutUint32(hdr[16:20], 65535)
	bePut.PutUint32(hdr[20:24], LinkTypeRaw)
	buf.Write(hdr)
	rec := make([]byte, 16)
	bePut.PutUint32(rec[0:4], 1600000000)
	bePut.PutUint32(rec[4:8], 987654321)
	bePut.PutUint32(rec[8:12], uint32(len(rawIP)))
	bePut.PutUint32(rec[12:16], uint32(len(rawIP)))
	buf.Write(rec)
	buf.Write(rawIP)

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	want := time.Unix(1600000000, 987654321)
	if !got.Timestamp.Equal(want) {
		t.Errorf("Timestamp = %v, want %v", got.Timestamp, want)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("second Next err = %v, want io.EOF", err)
	}
}

func TestReadPacketsSkipsNonTCP(t *testing.T) {
	p := samplePackets(t)[0]
	rawIP, _ := p.Encode(packet.SerializeOptions{})
	udp := append([]byte(nil), rawIP...)
	udp[9] = 17 // protocol = UDP
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRaw)
	if err := w.WriteRaw(p.Timestamp, udp, len(udp)); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRaw(p.Timestamp, rawIP, len(rawIP)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	pkts, skipped, err := ReadPackets(&buf)
	if err != nil {
		t.Fatalf("ReadPackets: %v", err)
	}
	if len(pkts) != 1 || skipped != 1 {
		t.Errorf("got %d packets, %d skipped; want 1, 1", len(pkts), skipped)
	}
}

func TestEthernetNonIPFrameSkipped(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet)
	p := samplePackets(t)[0]
	if err := w.WritePacket(p); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Rewrite the EtherType of the first (only) frame to ARP.
	binary.BigEndian.PutUint16(raw[24+16+12:], 0x0806)
	pkts, skipped, err := ReadPackets(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadPackets: %v", err)
	}
	if len(pkts) != 0 || skipped != 1 {
		t.Errorf("got %d packets, %d skipped; want 0, 1", len(pkts), skipped)
	}
}

func TestEmptyFileJustHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRaw)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	pkts, skipped, err := ReadPackets(&buf)
	if err != nil {
		t.Fatalf("ReadPackets: %v", err)
	}
	if len(pkts) != 0 || skipped != 0 {
		t.Errorf("got %d packets %d skipped from empty capture", len(pkts), skipped)
	}
}

func TestOrigLenPreservedForStrippedPayload(t *testing.T) {
	p := samplePackets(t)[2] // has PayloadLen 300, stored payload stripped
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRaw)
	if err := w.WritePacket(p); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.OrigLen != int(p.IP.TotalLen) {
		t.Errorf("OrigLen = %d, want %d", rec.OrigLen, p.IP.TotalLen)
	}
	if len(rec.Data) >= rec.OrigLen {
		t.Errorf("capture should be shorter than original for stripped payload: cap=%d orig=%d",
			len(rec.Data), rec.OrigLen)
	}
}

// A crafted record header in a snaplen-0 capture must be rejected before
// the body allocation, not after attempting a multi-GiB make. Pre-fix,
// the sanity bound only applied when snapLen > 0.
func TestReaderOversizeRecordRejected(t *testing.T) {
	craft := func(snapLen, capLen uint32) []byte {
		le := binary.LittleEndian
		buf := make([]byte, 24+16)
		le.PutUint32(buf[0:4], magicMicros)
		le.PutUint32(buf[16:20], snapLen)
		le.PutUint32(buf[20:24], LinkTypeRaw)
		le.PutUint32(buf[32:36], capLen) // record capLen
		le.PutUint32(buf[36:40], capLen)
		return buf
	}

	for _, tc := range []struct {
		name    string
		snapLen uint32
		capLen  uint32
	}{
		{"snaplen zero", 0, 1 << 30},
		{"caplen within declared snaplen", 1 << 31, 2 << 20},
		{"caplen just above bound", 262144, maxRecordLen + 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewReader(bytes.NewReader(craft(tc.snapLen, tc.capLen)))
			if err != nil {
				t.Fatalf("NewReader: %v", err)
			}
			if _, err := r.Next(); !errors.Is(err, ErrOversizeRecord) {
				t.Fatalf("Next() err = %v, want ErrOversizeRecord", err)
			}
		})
	}

	// The bound must not reject legitimate oversized-vs-snaplen records
	// below it (writers lie about snaplen; tolerated since the seed).
	hdr := craft(64, 0)
	le := binary.LittleEndian
	le.PutUint32(hdr[32:36], 100)
	le.PutUint32(hdr[36:40], 100)
	body := append(hdr, make([]byte, 100)...)
	r, err := NewReader(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("record above snaplen but below bound rejected: %v", err)
	}
}

// An Ethernet record claiming an original wire length shorter than the
// 14-byte Ethernet header must not produce a negative OrigLen.
func TestEthernetOrigLenUnderflowClamped(t *testing.T) {
	p := samplePackets(t)[0]
	rawIP, _ := p.Encode(packet.SerializeOptions{})
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet)
	if err := w.WritePacket(p); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Rewrite the record's origLen to 10 < etherHdrLen.
	binary.LittleEndian.PutUint32(raw[24+12:24+16], 10)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if rec.OrigLen < 0 {
		t.Fatalf("OrigLen = %d, underflowed", rec.OrigLen)
	}
	if rec.OrigLen != len(rec.Data) {
		t.Errorf("OrigLen = %d, want clamp to %d captured bytes", rec.OrigLen, len(rec.Data))
	}
	if len(rec.Data) != len(rawIP) {
		t.Errorf("Data = %d bytes, want %d", len(rec.Data), len(rawIP))
	}
}
