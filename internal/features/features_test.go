package features

import (
	"bytes"
	"math"
	"testing"
	"time"

	"clap/internal/flow"
	"clap/internal/packet"
	"clap/internal/trafficgen"
)

var (
	cIP = [4]byte{10, 0, 0, 1}
	sIP = [4]byte{192, 0, 2, 1}
)

func benignConns(n int, seed int64) []*flow.Connection {
	cfg := trafficgen.DefaultConfig(n)
	cfg.Seed = seed
	return trafficgen.Generate(cfg)
}

func TestSchemaShape(t *testing.T) {
	s := Schema()
	if len(s) != NumPacket {
		t.Fatalf("schema has %d entries, want %d", len(s), NumPacket)
	}
	if NumPacket != 51 {
		t.Errorf("NumPacket = %d, want 51 (Table 7)", NumPacket)
	}
	if NumRNN != 32 {
		t.Errorf("NumRNN = %d, want 32 (Table 7 #1-#32)", NumRNN)
	}
	rnnCount, ampCount := 0, 0
	for i, f := range s {
		if f.Index != i {
			t.Errorf("schema entry %d has index %d", i, f.Index)
		}
		if f.RNNInput {
			rnnCount++
		}
		if f.Group == "Amplification" {
			ampCount++
		}
		if f.Name == "" {
			t.Errorf("feature %d has no name", i)
		}
	}
	if rnnCount != NumRNN {
		t.Errorf("%d RNN input features, want %d", rnnCount, NumRNN)
	}
	if ampCount != 19 {
		t.Errorf("%d amplification features, want 19 (13 TCP + 5 IP + equivalence)", ampCount)
	}
}

func TestExtractRawBasics(t *testing.T) {
	conn := &flow.Connection{}
	ts := time.Unix(1600000000, 0)
	syn := packet.NewBuilder(cIP, sIP, 40000, 443).Seq(1000).Flags(packet.SYN).
		MSS(1460).WScale(7).Timestamps(5000, 0).Window(64000).Time(ts).Build()
	synack := packet.NewBuilder(sIP, cIP, 443, 40000).Seq(70000).Ack(1001).
		Flags(packet.SYN|packet.ACK).MSS(1400).Timestamps(9000, 5000).Time(ts.Add(40 * time.Millisecond)).Build()
	ack := packet.NewBuilder(cIP, sIP, 40000, 443).Seq(1001).Ack(70001).
		Flags(packet.ACK).Timestamps(5040, 9000).Time(ts.Add(80 * time.Millisecond)).Build()
	conn.Append(syn, flow.ClientToServer)
	conn.Append(synack, flow.ServerToClient)
	conn.Append(ack, flow.ClientToServer)

	raws := ExtractRaw(conn)
	if len(raws) != 3 {
		t.Fatalf("got %d vectors, want 3", len(raws))
	}
	v0, v1, v2 := raws[0], raws[1], raws[2]

	if v0[FDirection] != 0 || v1[FDirection] != 1 || v2[FDirection] != 0 {
		t.Error("direction features wrong")
	}
	if v0[FSeqRel] != 0 {
		t.Errorf("SYN SeqRel = %g, want 0 (ISN-relative)", v0[FSeqRel])
	}
	if got := v2[FSeqRel]; math.Abs(got-math.Log1p(1)) > 1e-12 {
		t.Errorf("third packet SeqRel = %g, want log1p(1)", got)
	}
	if got := v1[FAckRel]; math.Abs(got-math.Log1p(1)) > 1e-12 {
		t.Errorf("SYNACK AckRel = %g, want log1p(1)", got)
	}
	if v0[FFlagSYN] != 1 || v0[FFlagACK] != 0 || v1[FFlagSYN] != 1 || v1[FFlagACK] != 1 {
		t.Error("flag one-hots wrong")
	}
	if v0[FTCPChecksumOK] != 1 || v0[FIPChecksumOK] != 1 {
		t.Error("builder packets should have valid checksums")
	}
	if got := v0[FMSS]; math.Abs(got-math.Log1p(1460)) > 1e-12 {
		t.Errorf("MSS = %g, want log1p(1460)", got)
	}
	if v0[FWScale] != 7 {
		t.Errorf("WScale = %g, want 7", v0[FWScale])
	}
	if v0[FTSValRel] != 0 {
		t.Errorf("first TSVal relative = %g, want 0", v0[FTSValRel])
	}
	if got := v2[FTSValRel]; math.Abs(got-math.Log1p(40)) > 1e-12 {
		t.Errorf("third TSVal relative = %g, want log1p(40)", got)
	}
	if v0[FMD5OK] != 1 {
		t.Error("no MD5 option should read as valid")
	}
	if v0[FFrameTime] != 0 {
		t.Errorf("first FrameTime = %g, want 0", v0[FFrameTime])
	}
	if got := v1[FInterArrival]; math.Abs(got-math.Log1p(40000)) > 1e-9 {
		t.Errorf("inter-arrival = %g, want log1p(40ms in µs)", got)
	}
	if v0[FIPVersion] != 4 || v0[FIPHeaderLen] != 5 {
		t.Error("IP header features wrong")
	}
	if v0[FPayloadEquiv] != 1 {
		t.Error("well-formed packet should satisfy the equivalence relation")
	}
}

func TestEquivalenceViolation(t *testing.T) {
	conn := &flow.Connection{}
	p := packet.NewBuilder(cIP, sIP, 1, 2).Flags(packet.ACK).PayloadLen(100).Build()
	p.IP.TotalLen += 13 // forge the IP length
	conn.Append(p, flow.ClientToServer)
	raws := ExtractRaw(conn)
	if raws[0][FPayloadEquiv] != 0 {
		t.Error("forged IP length should break the equivalence relation")
	}
}

func TestBadChecksumFeature(t *testing.T) {
	conn := &flow.Connection{}
	p := packet.NewBuilder(cIP, sIP, 1, 2).Flags(packet.ACK).Build()
	p.TCP.Checksum ^= 0xbeef
	conn.Append(p, flow.ClientToServer)
	if raws := ExtractRaw(conn); raws[0][FTCPChecksumOK] != 0 {
		t.Error("corrupted checksum should zero the validity feature")
	}
}

func TestMD5PresenceIsInvalid(t *testing.T) {
	conn := &flow.Connection{}
	p := packet.NewBuilder(cIP, sIP, 1, 2).Flags(packet.ACK).
		Option(packet.OptMD5, make([]byte, 16)).Build()
	conn.Append(p, flow.ClientToServer)
	if raws := ExtractRaw(conn); raws[0][FMD5OK] != 0 {
		t.Error("MD5 option presence should read as invalid in benign-modelled traffic")
	}
}

func TestUnderflowSeqIsNegative(t *testing.T) {
	conn := &flow.Connection{}
	syn := packet.NewBuilder(cIP, sIP, 1, 2).Seq(5000).Flags(packet.SYN).Build()
	under := packet.NewBuilder(cIP, sIP, 1, 2).Seq(4000).Flags(packet.ACK).Build()
	conn.Append(syn, flow.ClientToServer)
	conn.Append(under, flow.ClientToServer)
	raws := ExtractRaw(conn)
	if raws[1][FSeqRel] >= 0 {
		t.Errorf("underflow SEQ should produce negative SeqRel, got %g", raws[1][FSeqRel])
	}
}

func TestProfileFitAndScale(t *testing.T) {
	conns := benignConns(60, 3)
	prof := FitProfile(conns)
	if prof.Fitted == 0 {
		t.Fatal("profile fitted on zero packets")
	}
	for _, c := range conns {
		for _, v := range prof.Vectorize(c) {
			if len(v) != NumPacket {
				t.Fatalf("vector length %d, want %d", len(v), NumPacket)
			}
			for i, x := range v {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatalf("feature %d is %g", i, x)
				}
				if isNumeric[i] && (x < -0.5 || x > 1.5) {
					t.Fatalf("numeric feature %d = %g outside clamp", i, x)
				}
			}
			// Training-set traffic must raise no out-of-range flags.
			for k := AmpTCPStart; k < FPayloadEquiv; k++ {
				if v[k] != 0 {
					t.Fatalf("amplification flag %d raised on training data", k)
				}
			}
		}
	}
}

func TestOutOfRangeAmplification(t *testing.T) {
	conns := benignConns(60, 5)
	prof := FitProfile(conns)

	// A TTL of 1 is below anything the generator emits (observed TTLs are
	// initial-hops, ≥ 32).
	conn := conns[0].Clone()
	conn.Packets[1].IP.TTL = 1
	_ = conn.Packets[1].FixChecksums()
	vecs := prof.Vectorize(conn)
	ttlFlag := -1
	for k, slot := range numericIP {
		if slot == FTTL {
			ttlFlag = AmpIPStart + k
		}
	}
	if vecs[1][ttlFlag] != 1 {
		t.Error("TTL=1 should raise the TTL out-of-range flag")
	}
	if vecs[0][ttlFlag] != 0 {
		t.Error("unmodified packet should not raise the TTL flag")
	}
	// And the scaled TTL must saturate at the clamp floor.
	if vecs[1][FTTL] > 0 {
		t.Errorf("scaled TTL = %g, want clamped toward -0.5", vecs[1][FTTL])
	}
}

func TestRNNInputsView(t *testing.T) {
	conns := benignConns(5, 7)
	prof := FitProfile(conns)
	vecs := prof.Vectorize(conns[0])
	ins := RNNInputs(vecs)
	if len(ins) != len(vecs) {
		t.Fatalf("RNNInputs length %d, want %d", len(ins), len(vecs))
	}
	for i := range ins {
		if len(ins[i]) != NumRNN {
			t.Fatalf("RNN input %d has %d dims, want %d", i, len(ins[i]), NumRNN)
		}
	}
}

func TestProfilePersistRoundTrip(t *testing.T) {
	conns := benignConns(20, 9)
	prof := FitProfile(conns)
	var buf bytes.Buffer
	if err := prof.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadProfile(&buf)
	if err != nil {
		t.Fatalf("LoadProfile: %v", err)
	}
	if *got != *prof {
		t.Error("profile changed across save/load")
	}
	if _, err := LoadProfile(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("LoadProfile should reject garbage")
	}
}

func TestConstantFeatureScaling(t *testing.T) {
	p := &Profile{}
	for i := range p.Min {
		p.Min[i], p.Max[i] = 4, 4 // constant during training (e.g. IP version)
	}
	if got := p.scale(FIPVersion, 4); got != 0 {
		t.Errorf("scale(constant, same) = %g, want 0", got)
	}
	if got := p.scale(FIPVersion, 5); got != 1.5 {
		t.Errorf("scale(constant, above) = %g, want 1.5", got)
	}
	if got := p.scale(FIPVersion, 3); got != -0.5 {
		t.Errorf("scale(constant, below) = %g, want -0.5", got)
	}
	if !p.outOfRange(FIPVersion, 5) || p.outOfRange(FIPVersion, 4) {
		t.Error("outOfRange wrong for constant feature")
	}
}
