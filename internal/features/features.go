// Package features implements the Table 7 feature schema: the 32 raw TCP/IP
// header features the RNN consumes, plus the 19 amplification features
// (out-of-range indicators and the payload-length equivalence relation) that
// complete the 51-dimensional packet-feature vector used in context
// profiles. Numeric features are min-max scaled with bounds fitted on benign
// training traffic; the same fitted bounds drive the out-of-range
// indicators.
package features

import (
	"math"
	"time"

	"clap/internal/flow"
	"clap/internal/packet"
)

// Feature vector layout. The paper's Table 7 indices are 1-based; ours are
// 0-based but keep the same grouping: TCP features, IP features, then
// amplification features.
const (
	FDirection = iota
	FSeqRel
	FAckRel
	FDataOffset
	FFlagFIN
	FFlagSYN
	FFlagRST
	FFlagPSH
	FFlagACK
	FFlagURG
	FFlagECE
	FFlagCWR
	FFlagNS
	FWindow
	FTCPChecksumOK
	FUrgentPtr
	FPayloadLen
	FMSS
	FTSValRel
	FTSecrRel
	FWScale
	FUTO
	FMD5OK
	FInterArrival
	FFrameTime
	FIPTotalLen
	FTTL
	FIPHeaderLen
	FIPChecksumOK
	FIPVersion
	FTOS
	FHasIPOptions

	// NumRNN is the size of the RNN input: the raw header features #1-#32
	// of Table 7 (amplification features are excluded from RNN training).
	NumRNN
)

// Amplification feature indices.
const (
	// 13 TCP out-of-range indicators occupy [AmpTCPStart, AmpTCPStart+13).
	AmpTCPStart = NumRNN
	// 5 IP out-of-range indicators occupy [AmpIPStart, AmpIPStart+5).
	AmpIPStart = AmpTCPStart + 13
	// FPayloadEquiv is the equivalence-relation feature: TCP payload length
	// must equal IP total length − IP header length − TCP data offset.
	FPayloadEquiv = AmpIPStart + 5

	// NumPacket is the full packet-feature dimensionality (Table 7 #1-#51),
	// the input size of Baseline #1's autoencoder (Table 6).
	NumPacket = FPayloadEquiv + 1
)

// numericTCP lists the numeric TCP feature slots monitored for
// out-of-range amplification (13 features → indicators 32..44).
var numericTCP = [13]int{
	FSeqRel, FAckRel, FDataOffset, FWindow, FUrgentPtr, FPayloadLen,
	FMSS, FTSValRel, FTSecrRel, FWScale, FUTO, FInterArrival, FFrameTime,
}

// numericIP lists the numeric IP feature slots monitored for out-of-range
// amplification (5 features → indicators 45..49).
var numericIP = [5]int{FIPTotalLen, FTTL, FIPHeaderLen, FIPVersion, FTOS}

// Kind classifies a feature for schema introspection (Table 7's "Type").
type Kind uint8

// Feature kinds.
const (
	Binary Kind = iota
	Numeric
)

// Info describes one feature slot.
type Info struct {
	Index int
	Name  string
	Kind  Kind
	Group string // "TCP", "IP", or "Amplification"
	// RNNInput marks features fed to the RNN (Table 7 #1-#32).
	RNNInput bool
}

// Schema returns the full 51-entry feature description, the live equivalent
// of Table 7.
func Schema() []Info {
	base := []Info{
		{FDirection, "Packet direction", Binary, "TCP", true},
		{FSeqRel, "SEQ number (incremental, signed log)", Numeric, "TCP", true},
		{FAckRel, "ACK number (incremental, signed log)", Numeric, "TCP", true},
		{FDataOffset, "Data Offset", Numeric, "TCP", true},
		{FFlagFIN, "Flag FIN (one-hot)", Binary, "TCP", true},
		{FFlagSYN, "Flag SYN (one-hot)", Binary, "TCP", true},
		{FFlagRST, "Flag RST (one-hot)", Binary, "TCP", true},
		{FFlagPSH, "Flag PSH (one-hot)", Binary, "TCP", true},
		{FFlagACK, "Flag ACK (one-hot)", Binary, "TCP", true},
		{FFlagURG, "Flag URG (one-hot)", Binary, "TCP", true},
		{FFlagECE, "Flag ECE (one-hot)", Binary, "TCP", true},
		{FFlagCWR, "Flag CWR (one-hot)", Binary, "TCP", true},
		{FFlagNS, "Flag NS (one-hot)", Binary, "TCP", true},
		{FWindow, "Window Size (log)", Numeric, "TCP", true},
		{FTCPChecksumOK, "Checksum validity", Binary, "TCP", true},
		{FUrgentPtr, "Urgent Pointer (log)", Numeric, "TCP", true},
		{FPayloadLen, "Payload Length (log)", Numeric, "TCP", true},
		{FMSS, "Option: Maximum Segment Size (log)", Numeric, "TCP", true},
		{FTSValRel, "Option: Timestamp Value (relative, signed log)", Numeric, "TCP", true},
		{FTSecrRel, "Option: Timestamp Echo Reply (relative, signed log)", Numeric, "TCP", true},
		{FWScale, "Option: Window Scale", Numeric, "TCP", true},
		{FUTO, "Option: User Timeout (log)", Numeric, "TCP", true},
		{FMD5OK, "Option: MD5 Header Validity", Binary, "TCP", true},
		{FInterArrival, "TCP Timestamp (inter-arrival, log µs)", Numeric, "TCP", true},
		{FFrameTime, "Frame Timestamp (offset, log µs)", Numeric, "TCP", true},
		{FIPTotalLen, "IP Length (log)", Numeric, "IP", true},
		{FTTL, "Time-To-Live", Numeric, "IP", true},
		{FIPHeaderLen, "IP Header Length", Numeric, "IP", true},
		{FIPChecksumOK, "IP Checksum validity", Binary, "IP", true},
		{FIPVersion, "IP Version", Numeric, "IP", true},
		{FTOS, "Type of Service", Numeric, "IP", true},
		{FHasIPOptions, "Existence of non-standard IP options", Binary, "IP", true},
	}
	for i, slot := range numericTCP {
		base = append(base, Info{AmpTCPStart + i,
			"Out-of-Range: " + base[slot].Name, Binary, "Amplification", false})
	}
	for i, slot := range numericIP {
		base = append(base, Info{AmpIPStart + i,
			"Out-of-Range: " + base[slot].Name, Binary, "Amplification", false})
	}
	base = append(base, Info{FPayloadEquiv,
		"TCP Payload Length correctness (len = IP total − IP hdr − data offset)",
		Binary, "Amplification", false})
	return base
}

// slog is the signed logarithm used to compress wide-range counters while
// preserving sign (sequence deltas can legitimately be negative).
func slog(x float64) float64 {
	if x >= 0 {
		return math.Log1p(x)
	}
	return -math.Log1p(-x)
}

// connState carries the per-connection reference points (ISNs, first
// timestamps) that relative features need.
type connState struct {
	isnSet [2]bool
	isn    [2]uint32
	ts0Set [2]bool
	ts0    [2]uint32
	start  time.Time
	prev   time.Time
	began  bool
}

// ExtractRaw computes the unscaled 51-dim feature vectors for every packet
// of a connection. Out-of-range indicator slots are left at zero — they are
// filled by Profile.Vectorize once training bounds exist — while the
// equivalence feature, which needs no training data, is computed here.
func ExtractRaw(c *flow.Connection) [][]float64 {
	st := &connState{}
	out := make([][]float64, c.Len())
	// One backing array for the whole train: a per-packet make would be
	// c.Len() small GC-traced allocations on the scoring hot path.
	backing := make([]float64, c.Len()*NumPacket)
	for i, p := range c.Packets {
		v := backing[i*NumPacket : (i+1)*NumPacket : (i+1)*NumPacket]
		st.packetRaw(v, p, c.Dirs[i])
		out[i] = v
	}
	return out
}

// packetRaw fills v (length NumPacket, zeroed) with one packet's raw
// feature vector.
func (st *connState) packetRaw(v []float64, p *packet.Packet, dir flow.Direction) {
	d := int(dir)

	if !st.began {
		st.start = p.Timestamp
		st.prev = p.Timestamp
		st.began = true
	}
	if !st.isnSet[d] {
		st.isn[d] = p.TCP.Seq
		st.isnSet[d] = true
	}

	v[FDirection] = float64(d)
	v[FSeqRel] = slog(float64(int64(int32(p.TCP.Seq - st.isn[d]))))
	if p.TCP.Flags.Has(packet.ACK) {
		ack := p.TCP.Ack
		if st.isnSet[1-d] {
			v[FAckRel] = slog(float64(int64(int32(ack - st.isn[1-d]))))
		} else {
			v[FAckRel] = slog(float64(ack % 4096)) // mid-stream: bounded proxy
		}
	}
	v[FDataOffset] = float64(p.TCP.DataOffset)
	for bit, slot := range map[packet.Flags]int{
		packet.FIN: FFlagFIN, packet.SYN: FFlagSYN, packet.RST: FFlagRST,
		packet.PSH: FFlagPSH, packet.ACK: FFlagACK, packet.URG: FFlagURG,
		packet.ECE: FFlagECE, packet.CWR: FFlagCWR, packet.NS: FFlagNS,
	} {
		if p.TCP.Flags.Has(bit) {
			v[slot] = 1
		}
	}
	v[FWindow] = math.Log1p(float64(p.TCP.Window))
	if p.TCPChecksumValid() {
		v[FTCPChecksumOK] = 1
	}
	v[FUrgentPtr] = math.Log1p(float64(p.TCP.Urgent))
	v[FPayloadLen] = math.Log1p(float64(p.PayloadLen))
	if mss, ok := p.TCP.MSSVal(); ok {
		v[FMSS] = math.Log1p(float64(mss))
	}
	if tsval, tsecr, ok := p.TCP.TimestampVal(); ok {
		if !st.ts0Set[d] {
			st.ts0[d] = tsval
			st.ts0Set[d] = true
		}
		v[FTSValRel] = slog(float64(int64(int32(tsval - st.ts0[d]))))
		if st.ts0Set[1-d] && tsecr != 0 {
			v[FTSecrRel] = slog(float64(int64(int32(tsecr - st.ts0[1-d]))))
		}
	}
	if ws, ok := p.TCP.WScaleVal(); ok {
		v[FWScale] = float64(ws)
	}
	if uto, ok := p.TCP.UserTimeoutVal(); ok {
		v[FUTO] = math.Log1p(float64(uto))
	}
	// MD5 "validity": benign wide-area traffic does not carry MD5 headers,
	// so structural malformation *or* bare presence is the anomalous case.
	if p.TCP.FindOption(packet.OptMD5) == nil && p.TCP.MD5Valid() {
		v[FMD5OK] = 1
	}
	v[FInterArrival] = math.Log1p(float64(p.Timestamp.Sub(st.prev).Microseconds()))
	v[FFrameTime] = math.Log1p(float64(p.Timestamp.Sub(st.start).Microseconds()))
	st.prev = p.Timestamp

	v[FIPTotalLen] = math.Log1p(float64(p.IP.TotalLen))
	v[FTTL] = float64(p.IP.TTL)
	v[FIPHeaderLen] = float64(p.IP.IHL)
	if p.IPChecksumValid() {
		v[FIPChecksumOK] = 1
	}
	v[FIPVersion] = float64(p.IP.Version)
	v[FTOS] = float64(p.IP.TOS)
	if len(p.IP.Options) > 0 {
		v[FHasIPOptions] = 1
	}

	// Equivalence relation (Table 7 #51): claimed payload length must equal
	// IP total length − IP header bytes − TCP header bytes.
	if p.PayloadLen == int(p.IP.TotalLen)-p.IP.HeaderLen()-p.TCP.HeaderLen() {
		v[FPayloadEquiv] = 1
	}
}
