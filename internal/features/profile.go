package features

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"clap/internal/flow"
)

// Profile holds the bounds fitted on benign training traffic. The same
// bounds serve two purposes:
//
//   - min-max scaling of numeric features into [0,1] (clamped slightly
//     beyond so adversarial extremes stay finite but visible), and
//   - the out-of-range amplification indicators (§3.3(b)): a numeric value
//     outside the benign envelope raises the corresponding binary flag.
type Profile struct {
	Min [NumPacket]float64
	Max [NumPacket]float64
	// Fitted is the number of packets the profile was fitted on.
	Fitted int
}

// rangeTolerance widens the benign envelope fractionally before declaring a
// value out-of-range, so borderline benign values near the training extremes
// do not flap.
const rangeTolerance = 1e-9

// isNumeric marks the slots subject to scaling and range checks.
var isNumeric = func() [NumPacket]bool {
	var m [NumPacket]bool
	for _, i := range numericTCP {
		m[i] = true
	}
	for _, i := range numericIP {
		m[i] = true
	}
	return m
}()

// FitProfile learns feature bounds over benign connections.
func FitProfile(conns []*flow.Connection) *Profile {
	p := &Profile{}
	for i := range p.Min {
		p.Min[i] = math.Inf(1)
		p.Max[i] = math.Inf(-1)
	}
	for _, c := range conns {
		for _, v := range ExtractRaw(c) {
			p.Fitted++
			for i, x := range v {
				if x < p.Min[i] {
					p.Min[i] = x
				}
				if x > p.Max[i] {
					p.Max[i] = x
				}
			}
		}
	}
	return p
}

// scale min-max normalises a numeric value with clamping to [-0.5, 1.5]:
// adversarial extremes saturate rather than exploding the autoencoder
// input, while the out-of-range indicator carries the "how far" signal.
func (p *Profile) scale(i int, x float64) float64 {
	span := p.Max[i] - p.Min[i]
	if span <= 0 {
		// Constant feature in training: deviation alone is the signal.
		if x == p.Min[i] {
			return 0
		}
		if x > p.Min[i] {
			return 1.5
		}
		return -0.5
	}
	s := (x - p.Min[i]) / span
	if s < -0.5 {
		return -0.5
	}
	if s > 1.5 {
		return 1.5
	}
	return s
}

// outOfRange reports whether x falls outside the fitted envelope of slot i.
func (p *Profile) outOfRange(i int, x float64) bool {
	tol := rangeTolerance * (1 + math.Abs(p.Max[i]) + math.Abs(p.Min[i]))
	return x < p.Min[i]-tol || x > p.Max[i]+tol
}

// Vectorize produces the scaled 51-dim packet-feature vectors for a
// connection, with amplification indicators computed against the fitted
// bounds.
func (p *Profile) Vectorize(c *flow.Connection) [][]float64 {
	raws := ExtractRaw(c)
	for _, v := range raws {
		// Amplification flags first (they read raw values)...
		for k, slot := range numericTCP {
			if p.outOfRange(slot, v[slot]) {
				v[AmpTCPStart+k] = 1
			}
		}
		for k, slot := range numericIP {
			if p.outOfRange(slot, v[slot]) {
				v[AmpIPStart+k] = 1
			}
		}
		// ...then scale numerics in place.
		for i := 0; i < NumRNN; i++ {
			if isNumeric[i] {
				v[i] = p.scale(i, v[i])
			}
		}
	}
	return raws
}

// RNNInputs slices the first NumRNN features of each vector (shared
// backing array; callers must not mutate).
func RNNInputs(vecs [][]float64) [][]float64 {
	out := make([][]float64, len(vecs))
	for i, v := range vecs {
		out[i] = v[:NumRNN]
	}
	return out
}

// Save writes the profile with gob.
func (p *Profile) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(p)
}

// LoadProfile reads a profile written by Save.
func LoadProfile(r io.Reader) (*Profile, error) {
	var p Profile
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("features: loading profile: %w", err)
	}
	return &p, nil
}
