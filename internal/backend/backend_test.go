package backend

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"clap/internal/core"
	"clap/internal/features"
	"clap/internal/flow"
	"clap/internal/nn"
	"clap/internal/tcpstate"
	"clap/internal/trafficgen"
)

func genConns(n int, seed int64) []*flow.Connection {
	cfg := trafficgen.DefaultConfig(n)
	cfg.Seed = seed
	return trafficgen.Generate(cfg)
}

// randomDetector builds an untrained but fully-shaped detector under cfg —
// persistence round-trips don't need fitted weights, just deterministic
// ones, which keeps the all-ablation sweep fast.
func randomDetector(cfg core.Config, conns []*flow.Connection, seed int64) *core.Detector {
	rng := rand.New(rand.NewSource(seed))
	return &core.Detector{
		Cfg:     cfg,
		Profile: features.FitProfile(conns),
		RNN:     nn.NewGRUClassifier(features.NumRNN, cfg.RNNHidden, tcpstate.NumClasses, rng),
		AE:      nn.NewAutoencoder(cfg.AESizes(), rng),
	}
}

func TestRegistryHasAllThreeBackends(t *testing.T) {
	tags := Tags()
	for _, want := range []string{TagCLAP, TagBaseline1, TagKitsune} {
		found := false
		for _, tag := range tags {
			if tag == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, tags)
		}
		if Doc(want) == "" {
			t.Errorf("backend %q has no doc line", want)
		}
		b, err := New(want)
		if err != nil {
			t.Fatalf("New(%q): %v", want, err)
		}
		if b.Tag() != want {
			t.Errorf("New(%q).Tag() = %q", want, b.Tag())
		}
		if b.WindowSpan() < 1 {
			t.Errorf("backend %q window span %d < 1", want, b.WindowSpan())
		}
		if !strings.Contains(b.Describe(), "untrained") {
			t.Errorf("untrained %q should say so: %q", want, b.Describe())
		}
		if b.Trained() {
			t.Errorf("fresh %q backend reports itself trained", want)
		}
	}
}

func TestNewRejectsUnknownTag(t *testing.T) {
	if _, err := New("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("New(nope) error = %v, want mention of the tag", err)
	}
}

// sameSeries asserts bit-identity of two float series.
func sameSeries(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: value %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// roundTrip saves b through the tagged registry format and loads it back.
func roundTrip(t *testing.T, b Backend) Backend {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, b); err != nil {
		t.Fatalf("Save(%s): %v", b.Tag(), err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load(%s): %v", b.Tag(), err)
	}
	if got.Tag() != b.Tag() {
		t.Fatalf("round-trip changed tag %q -> %q", b.Tag(), got.Tag())
	}
	return got
}

// TestTaggedRoundTripAllAblations round-trips every Config ablation flag
// combination (gates × amplification × stacking) through the tagged
// header: the loaded detector must score bit-identically and keep its
// exact config.
func TestTaggedRoundTripAllAblations(t *testing.T) {
	conns := genConns(12, 3)
	probe := genConns(4, 9)
	seed := int64(0)
	for _, update := range []bool{true, false} {
		for _, reset := range []bool{true, false} {
			for _, amp := range []bool{true, false} {
				for _, stack := range []int{1, 3} {
					seed++
					cfg := core.DefaultConfig()
					cfg.UseUpdateGates, cfg.UseResetGates, cfg.UseAmplification = update, reset, amp
					cfg.StackLength = stack
					b := &CLAP{tag: TagCLAP, Cfg: cfg, Det: randomDetector(cfg, conns, seed)}
					got := roundTrip(t, b).(*CLAP)
					if !reflect.DeepEqual(got.Cfg, cfg) {
						t.Fatalf("ablation %v/%v/%v/%d: config changed: %+v", update, reset, amp, stack, got.Cfg)
					}
					for i, c := range probe {
						sameSeries(t, "window errors", got.WindowErrors(c), b.WindowErrors(c))
						if got.ScoreConn(c) != b.ScoreConn(c) {
							t.Fatalf("ablation %v/%v/%v/%d: conn %d score drifted", update, reset, amp, stack, i)
						}
					}
				}
			}
		}
	}
}

func TestBaseline1TagRoundTrip(t *testing.T) {
	conns := genConns(12, 5)
	cfg := core.Baseline1Config()
	b := &CLAP{tag: TagBaseline1, Cfg: cfg, Det: randomDetector(cfg, conns, 2)}
	got := roundTrip(t, b)
	if _, ok := got.(*CLAP); !ok {
		t.Fatalf("baseline1 loaded as %T", got)
	}
	probe := genConns(3, 11)[0]
	sameSeries(t, "baseline1 errors", got.WindowErrors(probe), b.WindowErrors(probe))
}

func TestKitsuneTagRoundTrip(t *testing.T) {
	b, err := New(TagKitsune)
	if err != nil {
		t.Fatal(err)
	}
	kb := b.(*Kitsune)
	kb.Cfg.FMWindow = 200 // keep the grace window inside the tiny corpus
	if err := b.Train(genConns(30, 7), func(string, ...any) {}); err != nil {
		t.Fatalf("training kitsune: %v", err)
	}
	got := roundTrip(t, b)
	for _, c := range genConns(4, 13) {
		sameSeries(t, "kitsune errors", got.WindowErrors(c), b.WindowErrors(c))
		if got.ScoreConn(c) != b.ScoreConn(c) {
			t.Fatal("kitsune score drifted across round-trip")
		}
	}
}

// TestSummarizeMatchesScoreConn pins the Backend contract shared by every
// implementation: Summarize(WindowErrors(c)) == ScoreConn(c).
func TestSummarizeMatchesScoreConn(t *testing.T) {
	conns := genConns(12, 3)
	probe := genConns(5, 17)
	cfg := core.DefaultConfig()
	backends := []Backend{
		&CLAP{tag: TagCLAP, Cfg: cfg, Det: randomDetector(cfg, conns, 1)},
	}
	kb, _ := New(TagKitsune)
	kb.(*Kitsune).Cfg.FMWindow = 200
	if err := kb.Train(conns, func(string, ...any) {}); err != nil {
		t.Fatal(err)
	}
	backends = append(backends, kb)
	for _, b := range backends {
		for i, c := range probe {
			score, _ := b.Summarize(b.WindowErrors(c))
			if got := b.ScoreConn(c); got != score {
				t.Errorf("%s: conn %d ScoreConn %v != Summarize %v", b.Tag(), i, got, score)
			}
		}
		if score, peak := b.Summarize(nil); score != 0 || peak != -1 {
			t.Errorf("%s: empty series summarized to (%v, %d), want (0, -1)", b.Tag(), score, peak)
		}
	}
}

// TestLegacyUntaggedLoad keeps pre-registry model files working: a plain
// Detector.Save stream (no header) loads as the CLAP backend.
func TestLegacyUntaggedLoad(t *testing.T) {
	conns := genConns(12, 3)
	cfg := core.DefaultConfig()
	det := randomDetector(cfg, conns, 4)
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := Load(&buf)
	if err != nil {
		t.Fatalf("legacy load: %v", err)
	}
	if b.Tag() != TagCLAP {
		t.Fatalf("legacy model loaded under tag %q", b.Tag())
	}
	probe := genConns(2, 21)[0]
	sameSeries(t, "legacy errors", b.WindowErrors(probe), det.WindowErrors(probe))
}

func TestLoadRejectsUnknownTag(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(headerVersion)
	buf.WriteByte(byte(len("mystery")))
	buf.WriteString("mystery")
	_, err := Load(&buf)
	if err == nil || !strings.Contains(err.Error(), "mystery") {
		t.Fatalf("unknown-tag load error = %v, want the tag named", err)
	}
}

func TestLoadRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(99)
	buf.WriteByte(4)
	buf.WriteString(TagCLAP)
	if _, err := Load(&buf); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad-version load error = %v", err)
	}
}

func TestLoadRejectsTruncatedHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(headerVersion) // tag length byte missing
	if _, err := Load(&buf); err == nil {
		t.Fatal("truncated header should fail to load")
	}
	// Corrupt payload after a valid header must surface the decoder error.
	var buf2 bytes.Buffer
	buf2.Write(magic[:])
	buf2.WriteByte(headerVersion)
	buf2.WriteByte(byte(len(TagCLAP)))
	buf2.WriteString(TagCLAP)
	buf2.WriteString("not a gob stream")
	if _, err := Load(&buf2); err == nil {
		t.Fatal("corrupt payload should fail to load")
	}
}

func TestLoadGarbageFallsBackWithError(t *testing.T) {
	// Garbage without the magic goes down the legacy path and must fail
	// loudly, not panic.
	if _, err := Load(strings.NewReader("complete nonsense, definitely not a model")); err == nil {
		t.Fatal("garbage should not load")
	}
	if _, err := Load(strings.NewReader("x")); err == nil {
		t.Fatal("too-short garbage should not load")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream should not load")
	}
}

func TestSaveRejectsUntrained(t *testing.T) {
	for _, tag := range []string{TagCLAP, TagKitsune} {
		b, err := New(tag)
		if err != nil {
			t.Fatal(err)
		}
		if err := Save(io.Discard, b); err == nil {
			t.Errorf("saving untrained %q should fail", tag)
		}
	}
}

func TestFromDetectorWraps(t *testing.T) {
	conns := genConns(12, 3)
	cfg := core.Baseline1Config()
	det := randomDetector(cfg, conns, 6)
	b := FromDetector(det)
	if b.Detector() != det {
		t.Fatal("FromDetector must wrap the given detector")
	}
	if b.WindowSpan() != cfg.StackLength {
		t.Fatalf("window span = %d, want %d", b.WindowSpan(), cfg.StackLength)
	}
	probe := genConns(2, 23)[0]
	if b.ScoreConn(probe) != det.Score(probe).Adversarial {
		t.Fatal("wrapped backend must score through the detector")
	}
}
