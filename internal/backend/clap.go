package backend

import (
	"fmt"
	"io"

	"clap/internal/core"
	"clap/internal/flow"
)

// Registry tags of the first-class backends.
const (
	// TagCLAP is the paper's full system (§3.3).
	TagCLAP = "clap"
	// TagBaseline1 is the temporal-context-agnostic CLAP (§4.1, Baseline #1):
	// the same pipeline family under Baseline1Config, persisted under its
	// own tag so a loaded model advertises what it is.
	TagBaseline1 = "baseline1"
	// TagKitsune is Baseline #2, the ensemble-autoencoder IDS.
	TagKitsune = "kitsune"
)

func init() {
	Register(TagCLAP, Factory{
		Doc:  "CLAP: context-learning detector (GRU gates + stacked-profile autoencoder)",
		New:  func() Backend { return &CLAP{tag: TagCLAP, Cfg: core.DefaultConfig()} },
		Load: func(r io.Reader) (Backend, error) { return loadCLAP(TagCLAP, r) },
	})
	Register(TagBaseline1, Factory{
		Doc:  "Baseline #1: temporal-context-agnostic CLAP (no gate features, no stacking)",
		New:  func() Backend { return &CLAP{tag: TagBaseline1, Cfg: core.Baseline1Config()} },
		Load: func(r io.Reader) (Backend, error) { return loadCLAP(TagBaseline1, r) },
	})
}

// CLAP (and therefore Baseline #1) supports batched scoring with pooled,
// recyclable window buffers, and cross-connection lockstep window
// production when the configuration runs gates (Baseline #1's gate-free
// config declines the session and falls back).
var (
	_ BatchScorer    = (*CLAP)(nil)
	_ BatchRecycler  = (*CLAP)(nil)
	_ LockstepScorer = (*CLAP)(nil)
)

// CLAP adapts the core.Detector pipeline family — both the full system and
// Baseline #1, which is the same pipeline under an ablated Config — to the
// Backend contract. Mutate Cfg before Train to set seeds, epoch budgets or
// ablation switches.
type CLAP struct {
	tag string
	// Cfg is the training configuration; after Train (or a load) it mirrors
	// the detector's own config.
	Cfg core.Config
	// Det is the trained detector (nil until Train or a registry load).
	Det *core.Detector
}

// FromDetector wraps an already-trained detector as a Backend under the
// CLAP tag. The tag governs persistence dispatch only; the detector's own
// Config governs behaviour, so a Baseline #1-configured detector wrapped
// here still scores as Baseline #1.
func FromDetector(d *core.Detector) *CLAP {
	return &CLAP{tag: TagCLAP, Cfg: d.Cfg, Det: d}
}

func loadCLAP(tag string, r io.Reader) (Backend, error) {
	d, err := core.Load(r)
	if err != nil {
		return nil, err
	}
	return &CLAP{tag: tag, Cfg: d.Cfg, Det: d}, nil
}

// Tag implements Backend.
func (b *CLAP) Tag() string { return b.tag }

// Describe implements Backend.
func (b *CLAP) Describe() string {
	if b.Det == nil {
		return fmt.Sprintf("%s (untrained)", b.tag)
	}
	return b.Det.String()
}

// WindowSpan implements Backend: a stacked-profile window covers
// StackLength consecutive packets.
func (b *CLAP) WindowSpan() int {
	if b.Cfg.StackLength < 1 {
		return 1
	}
	return b.Cfg.StackLength
}

// Trained implements Backend.
func (b *CLAP) Trained() bool { return b.Det != nil }

// Train implements Backend.
func (b *CLAP) Train(benign []*flow.Connection, logf Logf) error {
	d, err := core.Train(benign, b.Cfg, core.Logf(logf))
	if err != nil {
		return err
	}
	b.Det = d
	return nil
}

// ScoreConn implements Backend.
func (b *CLAP) ScoreConn(c *flow.Connection) float64 {
	return b.Det.Score(c).Adversarial
}

// WindowErrors implements Backend.
func (b *CLAP) WindowErrors(c *flow.Connection) []float64 {
	return b.Det.WindowErrors(c)
}

// Summarize implements Backend via the localize-and-estimate reduction
// (§3.3(d)) — identical to the serial Score path bit for bit.
func (b *CLAP) Summarize(errs []float64) (float64, int) {
	s := b.Det.ScoreFromErrors(errs)
	return s.Adversarial, s.PeakWindow
}

// Windows implements BatchScorer: the connection's stacked context
// profiles, computed through the batched GRU kernel (bit-identical to the
// serial stage-(b) pass).
func (b *CLAP) Windows(c *flow.Connection) [][]float64 {
	return b.Det.StackedProfilesBatched(c)
}

// ScoreWindows implements BatchScorer: one batched autoencoder pass over
// the window stack. Element k is bit-identical to the unbatched
// reconstruction error of wins[k], so WindowErrors(c) ==
// ScoreWindows(Windows(c)) bit for bit at any batch split.
func (b *CLAP) ScoreWindows(wins [][]float64) []float64 {
	return b.Det.AE.ErrorsBatch(wins)
}

// RecycleWindows implements backend.BatchRecycler: Windows results come
// from a pooled arena; scored windows go back to it.
func (b *CLAP) RecycleWindows(wins [][]float64) { b.Det.RecycleStacked(wins) }

// OpenLockstep implements LockstepScorer: a k-row fleet stepping the
// GRU recurrence across connections, producing windows bit-identical to
// Windows(c). Gate-free configurations (Baseline #1) have no recurrence
// on the scoring path and return nil — the documented fallback.
func (b *CLAP) OpenLockstep(k int) LockstepSession {
	if s := b.Det.NewLockstepSession(k); s != nil {
		return s
	}
	return nil // typed-nil guard: a nil *core.LockstepSession must not box
}

// Save implements Backend (payload only; use the registry Save for the
// tagged on-disk format).
func (b *CLAP) Save(w io.Writer) error {
	if b.Det == nil {
		return fmt.Errorf("backend: saving untrained %s backend", b.tag)
	}
	return b.Det.Save(w)
}

// Detector exposes the underlying trained detector for CLAP-specific
// analyses (localization criteria, RNN accuracy, ablations).
func (b *CLAP) Detector() *core.Detector { return b.Det }
