package backend

import (
	"fmt"
	"io"

	"clap/internal/flow"
	"clap/internal/kitsune"
)

func init() {
	Register(TagKitsune, Factory{
		Doc:  "Baseline #2: Kitsune, the ensemble-autoencoder IDS (volume/timing features)",
		New:  func() Backend { return &Kitsune{Cfg: kitsune.DefaultConfig()} },
		Load: loadKitsune,
	})
}

// Kitsune adapts Baseline #2 — formerly reachable only through the
// evaluation suite — to the Backend contract, making it a first-class,
// persistable detector. Mutate Cfg before Train.
type Kitsune struct {
	// Cfg is the training configuration; after Train (or a load) it mirrors
	// the model's own config.
	Cfg kitsune.Config
	// Kit is the trained model (nil until Train or a registry load).
	Kit *kitsune.Kitsune
}

func loadKitsune(r io.Reader) (Backend, error) {
	k, err := kitsune.Load(r)
	if err != nil {
		return nil, err
	}
	return &Kitsune{Cfg: k.Config(), Kit: k}, nil
}

// Tag implements Backend.
func (b *Kitsune) Tag() string { return TagKitsune }

// Describe implements Backend.
func (b *Kitsune) Describe() string {
	if b.Kit == nil {
		return "kitsune (untrained)"
	}
	return fmt.Sprintf("Kitsune{ensemble=%d, features=%d, lambdas=%d}",
		b.Kit.EnsembleSize(), kitsune.NumFeatures, len(b.Cfg.Lambdas))
}

// WindowSpan implements Backend: Kitsune scores per packet.
func (b *Kitsune) WindowSpan() int { return 1 }

// Trained implements Backend.
func (b *Kitsune) Trained() bool { return b.Kit != nil }

// Train implements Backend: Kitsune trains online over the flattened
// benign packet stream (FM-grace then AD-grace, §4.1).
func (b *Kitsune) Train(benign []*flow.Connection, logf Logf) error {
	pkts := flow.Flatten(benign)
	if len(pkts) == 0 {
		return fmt.Errorf("backend: no packets to train kitsune on")
	}
	k := kitsune.New(b.Cfg)
	k.Train(pkts)
	b.Kit = k
	logf("kitsune: trained ensemble of %d autoencoders on %d packets", k.EnsembleSize(), len(pkts))
	return nil
}

// ScoreConn implements Backend: the max packet score over a fresh
// statistics context.
func (b *Kitsune) ScoreConn(c *flow.Connection) float64 {
	return b.Kit.ScoreConnection(c)
}

// WindowErrors implements Backend: the per-packet score series.
func (b *Kitsune) WindowErrors(c *flow.Connection) []float64 {
	return b.Kit.ConnectionErrors(c)
}

// Summarize implements Backend: max and argmax — the flow-level reduction
// ScoreConnection applies.
func (b *Kitsune) Summarize(errs []float64) (float64, int) {
	if len(errs) == 0 {
		return 0, -1
	}
	peak := 0
	for i, e := range errs {
		if e > errs[peak] {
			peak = i
		}
	}
	return errs[peak], peak
}

// Save implements Backend.
func (b *Kitsune) Save(w io.Writer) error {
	if b.Kit == nil {
		return fmt.Errorf("backend: saving untrained kitsune backend")
	}
	return b.Kit.Save(w)
}

// Model exposes the underlying Kitsune for Table 6 reporting.
func (b *Kitsune) Model() *kitsune.Kitsune { return b.Kit }
