package backend

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"sync/atomic"

	"clap/internal/flow"
	"clap/internal/metrics"
)

// TagCascade is the tiered two-stage backend: a cheap first stage screens
// every connection and only the suspicious tail is re-scored by the
// expensive second stage.
const TagCascade = "cascade"

// DefaultEscalateFPR is the fraction of benign traffic allowed to escalate
// to the second stage when no explicit escalation FPR is configured: the
// throughput knob — the cascade's cost is stage1 + escFPR·stage2 on
// benign-heavy traffic.
const DefaultEscalateFPR = 0.05

const (
	cascadeFormatVersion = 1
	maxStageBlob         = 1 << 28 // sanity cap on one nested stage payload
)

func init() {
	Register(TagCascade, Factory{
		Doc: "Tiered cascade: cheap first stage screens, suspicious tail escalates to the expensive stage (default baseline1+clap)",
		New: func() Backend {
			s1, _ := New(TagBaseline1)
			s2, _ := New(TagCLAP)
			c, _ := NewCascade(s1, s2, DefaultEscalateFPR)
			return c
		},
		Load: loadCascade,
	})
}

// cascadeStats carries the escalation counters. It is shared by pointer
// across WithStage2 grafts, so a hot reload of the expensive stage alone
// does not reset the serving layer's Prometheus counters.
type cascadeStats struct {
	evaluated atomic.Uint64
	escalated atomic.Uint64
}

// Cascade composes two backends into a tiered detector: every connection
// is scored by the cheap first stage; connections whose first-stage score
// reaches the escalation threshold are re-scored by the second stage,
// whose window errors (and therefore scores) are bit-identical to running
// that backend alone. Below the threshold the first stage's series is the
// verdict. Calibrate the escalation threshold from a benign corpus
// (CalibrateStages, or Pipeline.Calibrate which composes it) so at most
// EscalateFPR of benign traffic pays the expensive stage.
//
// Until the escalation threshold is calibrated, everything escalates —
// accuracy-conservative (pure second-stage verdicts), with the throughput
// win arriving once calibration installs the threshold.
type Cascade struct {
	s1, s2 Backend

	// escFPR is the target fraction of benign connections allowed to
	// escalate. Set at construction (or SetEscalateFPR) before serving.
	escFPR float64

	// esc is the escalation threshold on the first stage's score
	// (Float64bits), escSet whether it is in force. Atomic because a
	// serving-layer recalibration rewrites them while pool workers score.
	esc    atomic.Uint64
	escSet atomic.Bool

	stats *cascadeStats
}

// NewCascade composes two trained-or-trainable backends into a cascade.
// Stages must not themselves be cascades (one tier of escalation), and
// escalateFPR must lie in (0, 1).
func NewCascade(stage1, stage2 Backend, escalateFPR float64) (*Cascade, error) {
	if stage1 == nil || stage2 == nil {
		return nil, errors.New("backend: cascade needs two stages")
	}
	if _, bad := stage1.(*Cascade); bad {
		return nil, errors.New("backend: cascade stages cannot be cascades")
	}
	if _, bad := stage2.(*Cascade); bad {
		return nil, errors.New("backend: cascade stages cannot be cascades")
	}
	if !(escalateFPR > 0 && escalateFPR < 1) { // negation also catches NaN
		return nil, fmt.Errorf("backend: cascade escalate FPR %v must be in (0, 1)", escalateFPR)
	}
	return &Cascade{s1: stage1, s2: stage2, escFPR: escalateFPR, stats: &cascadeStats{}}, nil
}

// NewFromSpec instantiates a backend from a CLI -backend value: a plain
// registry tag, or "cascade:stage1+stage2" naming the two stage tags
// (e.g. "cascade:baseline1+clap"). The bare "cascade" tag is the default
// baseline1+clap pairing.
func NewFromSpec(spec string) (Backend, error) {
	rest, ok := strings.CutPrefix(spec, TagCascade+":")
	if !ok {
		return New(spec)
	}
	t1, t2, ok := strings.Cut(rest, "+")
	if !ok || t1 == "" || t2 == "" {
		return nil, fmt.Errorf("backend: cascade spec %q must be %s:stage1+stage2", spec, TagCascade)
	}
	s1, err := New(t1)
	if err != nil {
		return nil, err
	}
	s2, err := New(t2)
	if err != nil {
		return nil, err
	}
	return NewCascade(s1, s2, DefaultEscalateFPR)
}

// Stages returns the cascade's first (cheap) and second (expensive) stage.
func (b *Cascade) Stages() (stage1, stage2 Backend) { return b.s1, b.s2 }

// EscalateFPR reports the target benign escalation fraction.
func (b *Cascade) EscalateFPR() float64 { return b.escFPR }

// SetEscalateFPR adjusts the target benign escalation fraction; the new
// value takes effect at the next CalibrateStages. Call before serving.
func (b *Cascade) SetEscalateFPR(f float64) error {
	if !(f > 0 && f < 1) {
		return fmt.Errorf("backend: cascade escalate FPR %v must be in (0, 1)", f)
	}
	b.escFPR = f
	return nil
}

// Escalation reports the current escalation threshold and whether one is
// in force (false until CalibrateStages or SetEscalation).
func (b *Cascade) Escalation() (threshold float64, set bool) {
	return math.Float64frombits(b.esc.Load()), b.escSet.Load()
}

// SetEscalation installs an explicit escalation threshold on the first
// stage's score scale, bypassing calibration.
func (b *Cascade) SetEscalation(threshold float64) error {
	if math.IsNaN(threshold) || math.IsInf(threshold, 0) || threshold < 0 {
		return fmt.Errorf("backend: cascade escalation threshold %v must be finite and >= 0", threshold)
	}
	b.esc.Store(math.Float64bits(threshold))
	b.escSet.Store(true)
	return nil
}

// EscalationCounts reports how many connections the cascade has scored and
// how many of them escalated to the second stage — the serving layer's
// clap_serve_cascade_* metrics.
func (b *Cascade) EscalationCounts() (evaluated, escalated uint64) {
	return b.stats.evaluated.Load(), b.stats.escalated.Load()
}

// ResetEscalationCounts zeroes the escalation counters — calibration
// passes score the calibration corpus through the cascade and would
// otherwise pollute the served-traffic counters.
func (b *Cascade) ResetEscalationCounts() {
	b.stats.evaluated.Store(0)
	b.stats.escalated.Store(0)
}

// WithStage2 returns a cascade with the expensive stage replaced and
// everything else — cheap stage, escalation threshold, escalation
// counters — carried over. The serving layer's hot reload grafts a
// retrained expensive model in with it, without rescreening state or
// resetting metrics. The incoming stage must score on the same scale the
// outgoing one did (same family), or the operating threshold needs
// recalibration; tag equality is the caller's check.
func (b *Cascade) WithStage2(stage2 Backend) (*Cascade, error) {
	if stage2 == nil {
		return nil, errors.New("backend: cascade needs a second stage")
	}
	if _, bad := stage2.(*Cascade); bad {
		return nil, errors.New("backend: cascade stages cannot be cascades")
	}
	nb := &Cascade{s1: b.s1, s2: stage2, escFPR: b.escFPR, stats: b.stats}
	nb.esc.Store(b.esc.Load())
	nb.escSet.Store(b.escSet.Load())
	return nb, nil
}

// Tag implements Backend.
func (b *Cascade) Tag() string { return TagCascade }

// Describe implements Backend.
func (b *Cascade) Describe() string {
	esc := "escalate: all (uncalibrated)"
	if th, set := b.Escalation(); set {
		esc = fmt.Sprintf("escalate >= %.6g (target %.3g benign)", th, b.escFPR)
	}
	return fmt.Sprintf("cascade[%s -> %s] %s", b.s1.Tag(), b.s2.Tag(), esc)
}

// WindowSpan implements Backend: the second stage's span — flagged
// connections are the forensically interesting ones, and their window
// indices come from the expensive stage.
func (b *Cascade) WindowSpan() int { return b.s2.WindowSpan() }

// Trained implements Backend: both stages must hold fitted models.
func (b *Cascade) Trained() bool { return b.s1.Trained() && b.s2.Trained() }

// Train implements Backend: both stages fit on the same benign corpus.
func (b *Cascade) Train(benign []*flow.Connection, logf Logf) error {
	logf("cascade: training stage 1 (%s)", b.s1.Tag())
	if err := b.s1.Train(benign, logf); err != nil {
		return fmt.Errorf("cascade stage 1 (%s): %w", b.s1.Tag(), err)
	}
	logf("cascade: training stage 2 (%s)", b.s2.Tag())
	if err := b.s2.Train(benign, logf); err != nil {
		return fmt.Errorf("cascade stage 2 (%s): %w", b.s2.Tag(), err)
	}
	return nil
}

// cascadeBatch is the micro-batch size the cascade's internal stage
// scoring uses on batch-capable stages (mirrors engine.DefaultBatch; the
// engine package cannot be imported here without a cycle). Batch splits
// never change bits — only throughput.
const cascadeBatch = 24

// stageSeries computes one stage's window-error series, riding the batched
// kernels when the stage has them — bit-identical to stage.WindowErrors
// either way (the BatchScorer contract).
func stageSeries(s Backend, c *flow.Connection) []float64 {
	bs, ok := s.(BatchScorer)
	if !ok {
		return s.WindowErrors(c)
	}
	wins := bs.Windows(c)
	if len(wins) == 0 {
		return []float64{}
	}
	errs := make([]float64, 0, len(wins))
	for lo := 0; lo < len(wins); lo += cascadeBatch {
		hi := lo + cascadeBatch
		if hi > len(wins) {
			hi = len(wins)
		}
		errs = append(errs, bs.ScoreWindows(wins[lo:hi])...)
	}
	if rec, ok := bs.(BatchRecycler); ok {
		rec.RecycleWindows(wins)
	}
	return errs
}

// WindowErrors implements Backend. The escalation decision lives here and
// only here: the first stage screens the connection, and iff its verdict
// reaches the escalation threshold (or no threshold is calibrated yet)
// the second stage re-scores it — returning a series bit-identical to
// running the second stage alone. Summarize then reduces whichever series
// came back, so ScoreConn == Summarize(WindowErrors(c)) holds by
// construction for any stage pairing.
//
// A screened series is reported as its margin below the escalation
// threshold: every window error is shifted down by the threshold, so the
// screened verdict reduces to a negative score (stage-1 score minus
// threshold). Stage error magnitudes are non-negative, which puts every
// screened connection strictly below every escalated one on the combined
// scale — the routed score is a single-threshold ranking statistic even
// though the two stages score on unrelated scales, and the end-to-end
// operating threshold calibrated over routed scores lands inside the
// escalated (second-stage) range whenever the detection FPR target is
// tighter than the escalation budget.
func (b *Cascade) WindowErrors(c *flow.Connection) []float64 {
	errs, _, _ := b.WindowErrorsRouted(c)
	return errs
}

// WindowErrorsRouted is WindowErrors plus the routing attribution a
// provenance record captures: whether the verdict escalated to the
// expensive stage, and the stage-1 margin — the stage-1 score minus the
// escalation threshold (negative for screened verdicts; the raw stage-1
// score while the cascade is uncalibrated and everything escalates).
// The returned series is the same one WindowErrors would produce, bit
// for bit.
func (b *Cascade) WindowErrorsRouted(c *flow.Connection) (errs []float64, escalated bool, stage1Margin float64) {
	e1 := stageSeries(b.s1, c)
	b.stats.evaluated.Add(1)
	if th, set := b.Escalation(); set {
		score, _ := b.s1.Summarize(e1)
		if score < th {
			for i := range e1 {
				e1[i] -= th
			}
			return e1, false, score - th
		}
		b.stats.escalated.Add(1)
		return stageSeries(b.s2, c), true, score - th
	}
	score, _ := b.s1.Summarize(e1)
	b.stats.escalated.Add(1)
	return stageSeries(b.s2, c), true, score
}

// WindowErrorsGroup implements GroupScorer: the group path of the
// escalation routing above. Stage 1 screens the whole group through the
// caller's cross-connection batched pass, then ONLY the escalated subset
// rides a second cross-connection pass through stage 2 — so the
// expensive stage's GRU recurrence steps escalated connections in
// lockstep instead of one at a time. Series and escalation counters are
// identical to calling WindowErrors per connection: screened series are
// the same threshold-shifted stage-1 margins, escalated series the same
// stage-2 bits (batch splits never change bits — the BatchScorer
// contract both stages pin).
func (b *Cascade) WindowErrorsGroup(conns []*flow.Connection, stageSeries StageSeriesFunc) [][]float64 {
	out := stageSeries(b.s1, conns)
	b.stats.evaluated.Add(uint64(len(conns)))
	th, set := b.Escalation()
	var escIdx []int
	for i, e1 := range out {
		if set {
			if score, _ := b.s1.Summarize(e1); score < th {
				for j := range e1 {
					e1[j] -= th
				}
				continue
			}
		}
		escIdx = append(escIdx, i)
	}
	b.stats.escalated.Add(uint64(len(escIdx)))
	if len(escIdx) == 0 {
		return out
	}
	esc := make([]*flow.Connection, len(escIdx))
	for j, i := range escIdx {
		esc[j] = conns[i]
	}
	e2 := stageSeries(b.s2, esc)
	for j, i := range escIdx {
		out[i] = e2[j]
	}
	return out
}

var _ GroupScorer = (*Cascade)(nil)

// Router is implemented by composite backends that can attribute a
// verdict to the internal stage that settled it. The streaming scorer
// routes through it when provenance capture is on, so a decision record
// says not just the score but WHICH stage produced it and by what
// margin.
type Router interface {
	WindowErrorsRouted(c *flow.Connection) (errs []float64, escalated bool, stage1Margin float64)
}

var _ Router = (*Cascade)(nil)

// ScoreConn implements Backend.
func (b *Cascade) ScoreConn(c *flow.Connection) float64 {
	score, _ := b.Summarize(b.WindowErrors(c))
	return score
}

// Summarize implements Backend: the second stage's reduction,
// unconditionally. Escalated series are the second stage's own, so their
// scores are bit-identical to the pure second stage; non-escalated series
// are the first stage's threshold-shifted margins and reduce on the same
// peak-window-mean that every CLAP-family stage shares — the reduction is
// shift-equivariant, so the screened score is the stage-1 score minus the
// escalation threshold (for stage pairs whose reductions differ, it is
// "stage2's reduction of stage1's shifted series" — still monotone in
// stage1's anomaly evidence, which is what the operating threshold is
// calibrated against end to end).
func (b *Cascade) Summarize(errs []float64) (score float64, peak int) {
	return b.s2.Summarize(errs)
}

// CalibrateStages derives the escalation threshold from one benign
// corpus: the threshold on the first stage's score admitting at most
// EscalateFPR of benign connections to the second stage. scorer scores a
// corpus with one stage (the Pipeline passes its batched engine pass).
// The caller then derives the end-to-end operating threshold by scoring
// the composed cascade on the same corpus — both quantile cuts, so the
// cascade's realized end-to-end FPR meets the target regardless of the
// two stages' score scales.
func (b *Cascade) CalibrateStages(benign []*flow.Connection, scorer func(Backend, []*flow.Connection) []float64) error {
	if len(benign) == 0 {
		return errors.New("backend: cascade stage calibration needs a benign corpus")
	}
	if !b.Trained() {
		return errors.New("backend: cascade stage calibration needs trained stages")
	}
	th := metrics.ThresholdAtFPR(scorer(b.s1, benign), b.escFPR)
	if math.IsInf(th, 1) {
		return errors.New("backend: cascade stage calibration produced no scores")
	}
	if err := b.SetEscalation(th); err != nil {
		return err
	}
	b.ResetEscalationCounts()
	return nil
}

// Save implements Backend (payload only; the registry Save frames it).
// Layout, all big-endian: format version byte, escalate-FPR bits,
// escalation-set byte, escalation-threshold bits, then the two stages as
// length-prefixed registry-framed model streams — so each stage rides its
// own tagged header and loads through its own decoder.
func (b *Cascade) Save(w io.Writer) error {
	if !b.Trained() {
		return errors.New("backend: saving untrained cascade backend")
	}
	var buf bytes.Buffer
	wr := func(v any) { binary.Write(&buf, binary.BigEndian, v) }
	wr(uint8(cascadeFormatVersion))
	wr(math.Float64bits(b.escFPR))
	th, set := b.Escalation()
	var setByte uint8
	if set {
		setByte = 1
	}
	wr(setByte)
	wr(math.Float64bits(th))
	for _, s := range []Backend{b.s1, b.s2} {
		var sb bytes.Buffer
		if err := Save(&sb, s); err != nil {
			return fmt.Errorf("backend: saving cascade stage %s: %w", s.Tag(), err)
		}
		if sb.Len() > maxStageBlob {
			return fmt.Errorf("backend: cascade stage %s payload too large", s.Tag())
		}
		wr(uint32(sb.Len()))
		buf.Write(sb.Bytes())
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// loadCascade decodes a cascade payload written by Save.
func loadCascade(r io.Reader) (Backend, error) {
	rd := func(v any) error { return binary.Read(r, binary.BigEndian, v) }
	var ver uint8
	if err := rd(&ver); err != nil {
		return nil, fmt.Errorf("backend: cascade payload: %w", err)
	}
	if ver != cascadeFormatVersion {
		return nil, fmt.Errorf("backend: unsupported cascade format version %d", ver)
	}
	var escFPRBits uint64
	var setByte uint8
	var escBits uint64
	if err := rd(&escFPRBits); err != nil {
		return nil, fmt.Errorf("backend: cascade payload: %w", err)
	}
	if err := rd(&setByte); err != nil {
		return nil, fmt.Errorf("backend: cascade payload: %w", err)
	}
	if err := rd(&escBits); err != nil {
		return nil, fmt.Errorf("backend: cascade payload: %w", err)
	}
	var stages [2]Backend
	for i := range stages {
		var n uint32
		if err := rd(&n); err != nil {
			return nil, fmt.Errorf("backend: cascade stage %d length: %w", i+1, err)
		}
		if n > maxStageBlob {
			return nil, fmt.Errorf("backend: cascade stage %d payload too large (%d bytes)", i+1, n)
		}
		blob := make([]byte, n)
		if _, err := io.ReadFull(r, blob); err != nil {
			return nil, fmt.Errorf("backend: cascade stage %d payload: %w", i+1, err)
		}
		s, err := Load(bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("backend: cascade stage %d: %w", i+1, err)
		}
		stages[i] = s
	}
	c, err := NewCascade(stages[0], stages[1], math.Float64frombits(escFPRBits))
	if err != nil {
		return nil, err
	}
	if setByte != 0 {
		if err := c.SetEscalation(math.Float64frombits(escBits)); err != nil {
			return nil, err
		}
	}
	return c, nil
}
