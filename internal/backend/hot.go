package backend

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"clap/internal/flow"
)

// Hot is a reload-safe backend handle: it implements Backend by delegating
// every call to the current underlying model, held behind an atomic
// pointer, so a long-running serving process can swap models in place
// while scoring goroutines keep running. A swap is atomic — a scoring call
// sees either the old model or the new one, never a mixture — and callers
// that need one consistent model across several calls (score a connection,
// then summarize its window errors) pin a snapshot with Current first.
//
// The handle can also carry the model's operating threshold as part of the
// same atomically-published value: SetThreshold installs it, SwapPair
// replaces model and threshold in one transaction, and CurrentPair reads
// both in one load. A scorer that pins its (model, threshold) through
// CurrentPair can therefore never judge a new model against an old
// threshold or vice versa — the atomicity auto-recalibration depends on.
//
// Generation counts successful model swaps, so operators can verify a
// reload actually took effect; threshold-only updates leave it unchanged.
type Hot struct {
	cur atomic.Pointer[hotModel]
}

// hotModel pairs a backend with the generation it was installed at — and,
// once a threshold is installed, the operating threshold calibrated for
// exactly this model — so a single atomic load yields a consistent
// (model, threshold, generation) view.
type hotModel struct {
	b     Backend
	gen   uint64
	th    float64
	hasTh bool
}

var _ PairHandle = (*Hot)(nil)

// NewHot wraps a trained backend in a reload-safe handle.
func NewHot(b Backend) (*Hot, error) {
	if b == nil {
		return nil, errors.New("backend: hot handle needs a backend")
	}
	if !b.Trained() {
		return nil, errors.New("backend: hot handle refuses an untrained backend")
	}
	h := &Hot{}
	h.cur.Store(&hotModel{b: b, gen: 0})
	return h, nil
}

// Current returns the live model. Callers making multiple related calls
// for one connection must make them all on this snapshot.
func (h *Hot) Current() Backend { return h.cur.Load().b }

// Generation reports how many swaps the handle has absorbed.
func (h *Hot) Generation() uint64 { return h.cur.Load().gen }

// Swap atomically replaces the live model and returns the previous one.
// Untrained or nil replacements are rejected without disturbing the
// current model, so a failed reload can never take the service down. The
// (model, generation) pair is published in one CAS, so concurrent swaps
// always leave the newest generation holding the model that won. An
// installed threshold is carried over unchanged — the legacy
// reload-then-recalibrate flow; use SwapPair to replace both at once.
func (h *Hot) Swap(b Backend) (prev Backend, err error) {
	if err := swappable(b); err != nil {
		return nil, err
	}
	for {
		old := h.cur.Load()
		next := &hotModel{b: b, gen: old.gen + 1, th: old.th, hasTh: old.hasTh}
		if h.cur.CompareAndSwap(old, next) {
			return old.b, nil
		}
	}
}

// SwapPair atomically replaces the live model AND its operating threshold
// in one published value — the auto-recalibration transaction. No scoring
// call that pins its pair through CurrentPair can ever observe the new
// model with the old threshold or the old model with the new one.
func (h *Hot) SwapPair(b Backend, th float64) (prev Backend, err error) {
	if err := swappable(b); err != nil {
		return nil, err
	}
	if err := validPairThreshold(th); err != nil {
		return nil, err
	}
	for {
		old := h.cur.Load()
		next := &hotModel{b: b, gen: old.gen + 1, th: th, hasTh: true}
		if h.cur.CompareAndSwap(old, next) {
			return old.b, nil
		}
	}
}

// SetThreshold installs a new operating threshold for the current model
// without touching the model or its generation — the live /v1/threshold
// knob. The (model, threshold) pair stays consistent under concurrent
// swaps: if a swap wins the race, the CAS retries against the new model.
func (h *Hot) SetThreshold(th float64) error {
	if err := validPairThreshold(th); err != nil {
		return err
	}
	for {
		old := h.cur.Load()
		next := &hotModel{b: old.b, gen: old.gen, th: th, hasTh: true}
		if h.cur.CompareAndSwap(old, next) {
			return nil
		}
	}
}

// CurrentPair returns the live model with the operating threshold
// installed for it in one consistent view; ok is false while no threshold
// has been installed (score-only serving, or a plain Backend lifecycle
// that never calls SetThreshold/SwapPair).
func (h *Hot) CurrentPair() (b Backend, th float64, ok bool) {
	cur := h.cur.Load()
	return cur.b, cur.th, cur.hasTh
}

// CurrentPairGen is CurrentPair plus the model's reload generation, all
// from the SAME single atomic load — the provenance read. A verdict
// record binding (model tag, generation, threshold) through it can never
// attribute a score to a generation that did not produce it, even with a
// reload racing the read; Generation() alone would be a second load that
// could land on the other side of a swap. b and gen are valid even when
// ok is false (no threshold installed).
func (h *Hot) CurrentPairGen() (b Backend, th float64, gen uint64, ok bool) {
	cur := h.cur.Load()
	return cur.b, cur.th, cur.gen, cur.hasTh
}

func swappable(b Backend) error {
	if b == nil {
		return errors.New("backend: hot swap needs a backend")
	}
	if !b.Trained() {
		return errors.New("backend: hot swap refuses an untrained backend")
	}
	return nil
}

// validPairThreshold mirrors the facade's threshold gate: finite and
// >= 0, with 0 meaning score-only.
func validPairThreshold(th float64) error {
	if math.IsNaN(th) || math.IsInf(th, 0) || th < 0 {
		return fmt.Errorf("backend: hot threshold %v must be finite and >= 0", th)
	}
	return nil
}

// The Backend interface, delegated to the live model. One method call
// resolves the model once, so each individual call is internally
// consistent under concurrent swaps.

func (h *Hot) Tag() string      { return h.Current().Tag() }
func (h *Hot) Describe() string { return h.Current().Describe() }
func (h *Hot) WindowSpan() int  { return h.Current().WindowSpan() }
func (h *Hot) Trained() bool    { return h.Current().Trained() }
func (h *Hot) Train(benign []*flow.Connection, logf Logf) error {
	return h.Current().Train(benign, logf)
}
func (h *Hot) ScoreConn(c *flow.Connection) float64      { return h.Current().ScoreConn(c) }
func (h *Hot) WindowErrors(c *flow.Connection) []float64 { return h.Current().WindowErrors(c) }
func (h *Hot) Summarize(errs []float64) (float64, int)   { return h.Current().Summarize(errs) }
func (h *Hot) Save(w io.Writer) error                    { return h.Current().Save(w) }

// Snapshotter is implemented by backends that hand out a pinned model for
// multi-call consistency; the Pipeline snapshots through it so one
// connection is never scored half by the old model and half by the new.
type Snapshotter interface {
	Current() Backend
}

// PairHandle extends Snapshotter for handles that publish the model and
// its operating threshold as one atomic pair. The serving stream pins
// both through CurrentPair for each connection, so a hot recalibration
// can never mix an old threshold with a new model (or the reverse) within
// one verdict.
type PairHandle interface {
	Snapshotter
	// CurrentPair returns the live (model, threshold) pair; ok is false
	// while no threshold has been installed.
	CurrentPair() (b Backend, th float64, ok bool)
	// SetThreshold atomically installs a threshold for the current model.
	SetThreshold(th float64) error
}

// GenPairHandle extends PairHandle for handles that also publish the
// model's reload generation in the same atomic value — what provenance
// capture pins (model, threshold, generation) through. Hot implements
// it.
type GenPairHandle interface {
	PairHandle
	// CurrentPairGen returns the live (model, threshold, generation)
	// triple in one consistent view; b and gen are valid even when ok
	// (threshold installed) is false.
	CurrentPairGen() (b Backend, th float64, gen uint64, ok bool)
}

var _ GenPairHandle = (*Hot)(nil)
