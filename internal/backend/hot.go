package backend

import (
	"errors"
	"io"
	"sync/atomic"

	"clap/internal/flow"
)

// Hot is a reload-safe backend handle: it implements Backend by delegating
// every call to the current underlying model, held behind an atomic
// pointer, so a long-running serving process can swap models in place
// while scoring goroutines keep running. A swap is atomic — a scoring call
// sees either the old model or the new one, never a mixture — and callers
// that need one consistent model across several calls (score a connection,
// then summarize its window errors) pin a snapshot with Current first.
//
// Generation counts successful swaps, so operators can verify a reload
// actually took effect.
type Hot struct {
	cur atomic.Pointer[hotModel]
}

// hotModel pairs a backend with the generation it was installed at, so a
// single atomic load yields a consistent (model, generation) view.
type hotModel struct {
	b   Backend
	gen uint64
}

// NewHot wraps a trained backend in a reload-safe handle.
func NewHot(b Backend) (*Hot, error) {
	if b == nil {
		return nil, errors.New("backend: hot handle needs a backend")
	}
	if !b.Trained() {
		return nil, errors.New("backend: hot handle refuses an untrained backend")
	}
	h := &Hot{}
	h.cur.Store(&hotModel{b: b, gen: 0})
	return h, nil
}

// Current returns the live model. Callers making multiple related calls
// for one connection must make them all on this snapshot.
func (h *Hot) Current() Backend { return h.cur.Load().b }

// Generation reports how many swaps the handle has absorbed.
func (h *Hot) Generation() uint64 { return h.cur.Load().gen }

// Swap atomically replaces the live model and returns the previous one.
// Untrained or nil replacements are rejected without disturbing the
// current model, so a failed reload can never take the service down. The
// (model, generation) pair is published in one CAS, so concurrent swaps
// always leave the newest generation holding the model that won.
func (h *Hot) Swap(b Backend) (prev Backend, err error) {
	if b == nil {
		return nil, errors.New("backend: hot swap needs a backend")
	}
	if !b.Trained() {
		return nil, errors.New("backend: hot swap refuses an untrained backend")
	}
	for {
		old := h.cur.Load()
		next := &hotModel{b: b, gen: old.gen + 1}
		if h.cur.CompareAndSwap(old, next) {
			return old.b, nil
		}
	}
}

// The Backend interface, delegated to the live model. One method call
// resolves the model once, so each individual call is internally
// consistent under concurrent swaps.

func (h *Hot) Tag() string      { return h.Current().Tag() }
func (h *Hot) Describe() string { return h.Current().Describe() }
func (h *Hot) WindowSpan() int  { return h.Current().WindowSpan() }
func (h *Hot) Trained() bool    { return h.Current().Trained() }
func (h *Hot) Train(benign []*flow.Connection, logf Logf) error {
	return h.Current().Train(benign, logf)
}
func (h *Hot) ScoreConn(c *flow.Connection) float64      { return h.Current().ScoreConn(c) }
func (h *Hot) WindowErrors(c *flow.Connection) []float64 { return h.Current().WindowErrors(c) }
func (h *Hot) Summarize(errs []float64) (float64, int)   { return h.Current().Summarize(errs) }
func (h *Hot) Save(w io.Writer) error                    { return h.Current().Save(w) }

// Snapshotter is implemented by backends that hand out a pinned model for
// multi-call consistency; the Pipeline snapshots through it so one
// connection is never scored half by the old model and half by the new.
type Snapshotter interface {
	Current() Backend
}
