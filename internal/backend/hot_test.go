package backend

import (
	"math"
	"sync"
	"testing"

	"clap/internal/flow"
	"clap/internal/trafficgen"
)

func tinyCorpus(n int, seed int64) []*flow.Connection {
	cfg := trafficgen.DefaultConfig(n)
	cfg.Seed = seed
	return trafficgen.Generate(cfg)
}

func trainedBackend(t *testing.T, tag string) Backend {
	t.Helper()
	b, err := New(tag)
	if err != nil {
		t.Fatal(err)
	}
	if cb, ok := b.(*CLAP); ok {
		cb.Cfg.RNNEpochs, cb.Cfg.AEEpochs = 2, 3
	}
	if err := b.Train(tinyCorpus(25, 1), func(string, ...any) {}); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestHotRejectsUntrained(t *testing.T) {
	if _, err := NewHot(nil); err == nil {
		t.Fatal("NewHot(nil) succeeded")
	}
	untrained, _ := New(TagCLAP)
	if _, err := NewHot(untrained); err == nil {
		t.Fatal("NewHot accepted an untrained backend")
	}
	h, err := NewHot(trainedBackend(t, TagCLAP))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Swap(untrained); err == nil {
		t.Fatal("Swap accepted an untrained backend")
	}
	if _, err := h.Swap(nil); err == nil {
		t.Fatal("Swap accepted nil")
	}
	if h.Generation() != 0 {
		t.Fatalf("failed swaps bumped generation to %d", h.Generation())
	}
}

// TestHotDelegatesAndSwaps: the handle is a faithful Backend before and
// after a swap, and Swap returns the previous model.
func TestHotDelegatesAndSwaps(t *testing.T) {
	a := trainedBackend(t, TagCLAP)
	b := trainedBackend(t, TagBaseline1)
	h, err := NewHot(a)
	if err != nil {
		t.Fatal(err)
	}
	probe := tinyCorpus(3, 9)

	if h.Tag() != a.Tag() || h.WindowSpan() != a.WindowSpan() || !h.Trained() {
		t.Fatal("handle does not delegate metadata to the initial model")
	}
	for _, c := range probe {
		if h.ScoreConn(c) != a.ScoreConn(c) {
			t.Fatal("handle score != initial model score")
		}
	}

	prev, err := h.Swap(b)
	if err != nil {
		t.Fatal(err)
	}
	if prev != a {
		t.Fatal("Swap did not return the previous model")
	}
	if h.Generation() != 1 || h.Tag() != TagBaseline1 {
		t.Fatalf("after swap: generation=%d tag=%s", h.Generation(), h.Tag())
	}
	for _, c := range probe {
		if h.ScoreConn(c) != b.ScoreConn(c) {
			t.Fatal("handle score != swapped model score")
		}
	}
}

// TestHotPairTransactions pins the (model, threshold) pair semantics:
// Swap preserves an installed threshold, SwapPair replaces both, and
// SetThreshold never disturbs the model or its generation.
func TestHotPairTransactions(t *testing.T) {
	a := trainedBackend(t, TagCLAP)
	b := trainedBackend(t, TagBaseline1)
	h, err := NewHot(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := h.CurrentPair(); ok {
		t.Fatal("fresh handle claims an installed threshold")
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if err := h.SetThreshold(bad); err == nil {
			t.Fatalf("SetThreshold(%v) succeeded", bad)
		}
		if _, err := h.SwapPair(b, bad); err == nil {
			t.Fatalf("SwapPair(%v) succeeded", bad)
		}
	}
	if h.Generation() != 0 {
		t.Fatalf("rejected updates bumped generation to %d", h.Generation())
	}

	if err := h.SetThreshold(0.25); err != nil {
		t.Fatal(err)
	}
	if m, th, ok := h.CurrentPair(); !ok || th != 0.25 || m != a || h.Generation() != 0 {
		t.Fatalf("after SetThreshold: model=%v th=%v ok=%v gen=%d", m, th, ok, h.Generation())
	}

	// A plain swap carries the threshold over (legacy reload flow).
	if _, err := h.Swap(b); err != nil {
		t.Fatal(err)
	}
	if m, th, ok := h.CurrentPair(); !ok || th != 0.25 || m != b {
		t.Fatalf("Swap dropped the pair threshold: th=%v ok=%v", th, ok)
	}

	// SwapPair replaces both in one transaction.
	if _, err := h.SwapPair(a, 0.5); err != nil {
		t.Fatal(err)
	}
	if m, th, _ := h.CurrentPair(); m != a || th != 0.5 || h.Generation() != 2 {
		t.Fatalf("after SwapPair: th=%v gen=%d", th, h.Generation())
	}
	if _, err := h.SwapPair(nil, 0.5); err == nil {
		t.Fatal("SwapPair accepted nil")
	}
}

// TestHotPairNeverMixes hammers SwapPair between two (model, threshold)
// bindings while readers pin pairs: every observed pair must be one of
// the two installed bindings, never a crossover. Race-clean under -race.
func TestHotPairNeverMixes(t *testing.T) {
	a := trainedBackend(t, TagCLAP)
	b := trainedBackend(t, TagBaseline1)
	const thA, thB = 0.125, 8.5
	h, err := NewHot(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetThreshold(thA); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	swapperDone := make(chan struct{})
	go func() {
		defer close(swapperDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if i%2 == 0 {
				_, err = h.SwapPair(b, thB)
			} else {
				_, err = h.SwapPair(a, thA)
			}
			if err != nil {
				t.Errorf("swap pair: %v", err)
				return
			}
		}
	}()

	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 5000; i++ {
				m, th, ok := h.CurrentPair()
				if !ok {
					t.Error("pair threshold vanished")
					return
				}
				if !(m == a && th == thA) && !(m == b && th == thB) {
					t.Errorf("mixed pair observed: model=%p th=%v", m, th)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	<-swapperDone
}

// TestHotConcurrentSwapAndScore runs scoring and swapping concurrently;
// under -race this pins the handle's synchronization, and every observed
// score must belong to one of the two models.
func TestHotConcurrentSwapAndScore(t *testing.T) {
	a := trainedBackend(t, TagCLAP)
	b := trainedBackend(t, TagBaseline1)
	h, err := NewHot(a)
	if err != nil {
		t.Fatal(err)
	}
	probe := tinyCorpus(6, 5)
	wantA := make([]float64, len(probe))
	wantB := make([]float64, len(probe))
	for i, c := range probe {
		wantA[i], wantB[i] = a.ScoreConn(c), b.ScoreConn(c)
	}

	stop := make(chan struct{})
	swapperDone := make(chan struct{})
	go func() {
		defer close(swapperDone)
		models := []Backend{b, a}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := h.Swap(models[i%2]); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
		}
	}()

	var scorers sync.WaitGroup
	for w := 0; w < 4; w++ {
		scorers.Add(1)
		go func() {
			defer scorers.Done()
			for round := 0; round < 50; round++ {
				for i, c := range probe {
					// Pin a snapshot: errors and summary must agree.
					m := h.Current()
					score, _ := m.Summarize(m.WindowErrors(c))
					if score != wantA[i] && score != wantB[i] {
						t.Errorf("conn %d: score %v from a mixed model", i, score)
						return
					}
				}
			}
		}()
	}
	scorers.Wait()
	close(stop)
	<-swapperDone
}
