package backend

import (
	"sync"
	"testing"

	"clap/internal/flow"
	"clap/internal/trafficgen"
)

func tinyCorpus(n int, seed int64) []*flow.Connection {
	cfg := trafficgen.DefaultConfig(n)
	cfg.Seed = seed
	return trafficgen.Generate(cfg)
}

func trainedBackend(t *testing.T, tag string) Backend {
	t.Helper()
	b, err := New(tag)
	if err != nil {
		t.Fatal(err)
	}
	if cb, ok := b.(*CLAP); ok {
		cb.Cfg.RNNEpochs, cb.Cfg.AEEpochs = 2, 3
	}
	if err := b.Train(tinyCorpus(25, 1), func(string, ...any) {}); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestHotRejectsUntrained(t *testing.T) {
	if _, err := NewHot(nil); err == nil {
		t.Fatal("NewHot(nil) succeeded")
	}
	untrained, _ := New(TagCLAP)
	if _, err := NewHot(untrained); err == nil {
		t.Fatal("NewHot accepted an untrained backend")
	}
	h, err := NewHot(trainedBackend(t, TagCLAP))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Swap(untrained); err == nil {
		t.Fatal("Swap accepted an untrained backend")
	}
	if _, err := h.Swap(nil); err == nil {
		t.Fatal("Swap accepted nil")
	}
	if h.Generation() != 0 {
		t.Fatalf("failed swaps bumped generation to %d", h.Generation())
	}
}

// TestHotDelegatesAndSwaps: the handle is a faithful Backend before and
// after a swap, and Swap returns the previous model.
func TestHotDelegatesAndSwaps(t *testing.T) {
	a := trainedBackend(t, TagCLAP)
	b := trainedBackend(t, TagBaseline1)
	h, err := NewHot(a)
	if err != nil {
		t.Fatal(err)
	}
	probe := tinyCorpus(3, 9)

	if h.Tag() != a.Tag() || h.WindowSpan() != a.WindowSpan() || !h.Trained() {
		t.Fatal("handle does not delegate metadata to the initial model")
	}
	for _, c := range probe {
		if h.ScoreConn(c) != a.ScoreConn(c) {
			t.Fatal("handle score != initial model score")
		}
	}

	prev, err := h.Swap(b)
	if err != nil {
		t.Fatal(err)
	}
	if prev != a {
		t.Fatal("Swap did not return the previous model")
	}
	if h.Generation() != 1 || h.Tag() != TagBaseline1 {
		t.Fatalf("after swap: generation=%d tag=%s", h.Generation(), h.Tag())
	}
	for _, c := range probe {
		if h.ScoreConn(c) != b.ScoreConn(c) {
			t.Fatal("handle score != swapped model score")
		}
	}
}

// TestHotConcurrentSwapAndScore runs scoring and swapping concurrently;
// under -race this pins the handle's synchronization, and every observed
// score must belong to one of the two models.
func TestHotConcurrentSwapAndScore(t *testing.T) {
	a := trainedBackend(t, TagCLAP)
	b := trainedBackend(t, TagBaseline1)
	h, err := NewHot(a)
	if err != nil {
		t.Fatal(err)
	}
	probe := tinyCorpus(6, 5)
	wantA := make([]float64, len(probe))
	wantB := make([]float64, len(probe))
	for i, c := range probe {
		wantA[i], wantB[i] = a.ScoreConn(c), b.ScoreConn(c)
	}

	stop := make(chan struct{})
	swapperDone := make(chan struct{})
	go func() {
		defer close(swapperDone)
		models := []Backend{b, a}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := h.Swap(models[i%2]); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
		}
	}()

	var scorers sync.WaitGroup
	for w := 0; w < 4; w++ {
		scorers.Add(1)
		go func() {
			defer scorers.Done()
			for round := 0; round < 50; round++ {
				for i, c := range probe {
					// Pin a snapshot: errors and summary must agree.
					m := h.Current()
					score, _ := m.Summarize(m.WindowErrors(c))
					if score != wantA[i] && score != wantB[i] {
						t.Errorf("conn %d: score %v from a mixed model", i, score)
						return
					}
				}
			}
		}()
	}
	scorers.Wait()
	close(stop)
	<-swapperDone
}
