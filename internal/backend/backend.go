// Package backend defines the detection contract every detector family in
// this repository implements, plus the named registry that makes backends
// swappable behind one interface. The paper compares CLAP against two
// baselines (a temporal-context-agnostic CLAP and Kitsune); deploying any
// of them — or a future fourth system — through the same pipeline requires
// exactly what this package provides: a uniform Train/Score/Save surface,
// and a tagged persistence header so a saved model knows which decoder
// reads it back.
//
// Registering a new backend is a one-file change: implement Backend,
// call Register in an init func, and every CLI, the Pipeline facade and
// the evaluation suite can drive it by tag.
package backend

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"

	"clap/internal/flow"
)

// Logf is an optional training progress sink (nil-safe at the call sites
// that accept it; implementations receive a non-nil function).
type Logf func(format string, args ...any)

// Backend is the detection contract: an anomaly detector trained on benign
// traffic only that scores TCP connections. A trained backend must be safe
// for concurrent scoring calls — the parallel engine fans connections out
// across a worker pool and relies on it.
type Backend interface {
	// Tag returns the registry tag the backend persists under.
	Tag() string
	// Describe returns a one-line human description of the model.
	Describe() string
	// WindowSpan reports how many consecutive packets one entry of
	// WindowErrors covers (CLAP: the stacking length; per-packet systems: 1).
	WindowSpan() int
	// Trained reports whether the backend holds a fitted model — the
	// scoring methods may only be called when it does.
	Trained() bool
	// Train fits the backend on benign connections only. logf is never nil.
	Train(benign []*flow.Connection, logf Logf) error
	// ScoreConn returns the scalar adversarial score of one connection.
	ScoreConn(c *flow.Connection) float64
	// WindowErrors returns the per-window anomaly series the score
	// summarises — the localization substrate (Figure 6's series).
	WindowErrors(c *flow.Connection) []float64
	// Summarize reduces a WindowErrors series to the connection score and
	// the peak window index (-1 when the series is empty). For every
	// backend, Summarize(WindowErrors(c)) equals ScoreConn(c) bit for bit —
	// callers holding the series never re-run inference to score.
	Summarize(errs []float64) (score float64, peak int)
	// Save writes the trained model payload to w. The registry's Save
	// frames it with the tagged header; use that for anything on disk.
	Save(w io.Writer) error
}

// BatchScorer is an optional Backend capability: splitting WindowErrors
// into its two halves — producing a connection's model-input windows, and
// scoring a batch of windows in one amortized pass — so a caller can pool
// windows from many connections into micro-batches and run each batch as
// one matrix-matrix inference pass instead of len(batch) matrix-vector
// passes. The contract mirrors the Summarize/WindowErrors pinning:
//
//	ScoreWindows(Windows(c)) == WindowErrors(c)   element-wise, bit for bit,
//
// at any batch split of the windows (scoring windows [0:k] and [k:n]
// separately concatenates to scoring [0:n]). Both methods must be safe for
// concurrent use on a trained backend, like the rest of the scoring
// surface.
type BatchScorer interface {
	// Windows returns the connection's model-input windows — one row per
	// entry of WindowErrors, in the same order.
	Windows(c *flow.Connection) [][]float64
	// ScoreWindows computes the per-window anomaly values of a batch;
	// element k is the unbatched anomaly value of wins[k].
	ScoreWindows(wins [][]float64) []float64
}

// BatchRecycler is an optional refinement of BatchScorer: the backend's
// Windows buffers come from an internal pool, and the caller hands them
// back once their scores are in. Recycling is what keeps steady-state
// batched scoring allocation-free — at ~3KB per window the garbage
// collector is otherwise a measurable slice of the hot path. A recycled
// result must never be read again; callers that retain windows simply
// skip the call and let the GC take them.
type BatchRecycler interface {
	// RecycleWindows releases one Windows() result back to the pool.
	RecycleWindows(wins [][]float64)
}

// LockstepSession is one fleet of up to K recurrences stepped in
// lockstep — the cross-connection batching capability's working state.
// The caller (the engine's ragged scheduler) binds connections to fleet
// rows, advances the compacted active prefix step by step, and harvests
// each finished row's model-input windows:
//
//	steps := sess.Load(row, c)  // 0: c produces no windows, row stays free
//	sess.Step(n)                // one step for every row in [0, n)
//	wins := sess.Windows(row)   // after its steps: same rows as Windows(c)
//	sess.Move(dst, src)         // compaction; src must be live, dst harvested
//
// The contract mirrors BatchScorer's: a row's Windows result is
// bit-identical to Windows(c) — fleet width, co-residents and
// compaction never change bits — and recycles through BatchRecycler the
// same way. A session is single-goroutine state; open one per worker.
type LockstepSession interface {
	Load(row int, c *flow.Connection) int
	Step(n int)
	Windows(row int) [][]float64
	Move(dst, src int)
}

// LockstepScorer is an optional refinement of BatchScorer: the backend's
// window production runs a recurrence that can be stepped K connections
// wide (one matrix-matrix pass per gate per step instead of K
// matrix-vector passes). OpenLockstep returns nil when the trained
// model has no recurrence to batch (e.g. a gate-free configuration) —
// callers then fall back to per-connection Windows.
type LockstepScorer interface {
	BatchScorer
	OpenLockstep(k int) LockstepSession
}

// StageSeriesFunc scores a uniform group of connections with one
// constituent backend, returning each connection's window-error series
// in input order — bit-identical to stage.WindowErrors per connection.
// The engine passes its cross-connection batched pass (lockstep gate
// production plus micro-batched window scoring) so a composite's stages
// ride the same kernels as standalone backends.
type StageSeriesFunc func(stage Backend, conns []*flow.Connection) [][]float64

// GroupScorer is an optional Backend capability for composite backends
// whose batching needs internal routing knowledge: the cascade screens a
// whole group with stage 1, then re-scores only the escalated subset
// with stage 2 — and cross-connection batching must happen per stage,
// inside the routing, not outside it. WindowErrorsGroup returns every
// connection's series in input order, bit-identical to per-connection
// WindowErrors, with identical side effects (escalation counters).
type GroupScorer interface {
	WindowErrorsGroup(conns []*flow.Connection, stageSeries StageSeriesFunc) [][]float64
}

// StageCalibrator is an optional Backend capability for composite
// backends whose internal routing carries thresholds of its own (the
// cascade's escalation threshold). Calibration layers invoke it with the
// benign corpus before deriving the composite's end-to-end operating
// threshold, so one corpus calibrates every tier. scorer scores a corpus
// with one constituent backend — callers pass their batched engine pass
// so stage calibration rides the same kernels as everything else.
type StageCalibrator interface {
	CalibrateStages(benign []*flow.Connection, scorer func(Backend, []*flow.Connection) []float64) error
}

// Factory creates and decodes one backend family.
type Factory struct {
	// Doc is a one-line description shown by CLI -backend listings.
	Doc string
	// New returns an untrained backend with default configuration.
	New func() Backend
	// Load decodes a model payload written by Backend.Save.
	Load func(r io.Reader) (Backend, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a backend family under tag. It panics on duplicate tags —
// registration is an init-time, programmer-error condition.
func Register(tag string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[tag]; dup {
		panic("backend: duplicate tag " + tag)
	}
	if f.New == nil || f.Load == nil {
		panic("backend: factory for " + tag + " missing New or Load")
	}
	registry[tag] = f
}

// Tags lists the registered backend tags, sorted.
func Tags() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for t := range registry {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Doc returns the registered one-line description for tag.
func Doc(tag string) string {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[tag].Doc
}

// New instantiates an untrained backend by tag.
func New(tag string) (Backend, error) {
	regMu.RLock()
	f, ok := registry[tag]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown tag %q (registered: %v)", tag, Tags())
	}
	return f.New(), nil
}

// The persistence header: magic, a format version, then the length-prefixed
// tag. Everything after the header is the backend's own payload. Models
// saved before the header existed (plain core.Detector gob streams) carry
// no magic; Load detects that and falls back to the CLAP decoder, so old
// model files keep working.
var magic = [8]byte{'C', 'L', 'A', 'P', 'B', 'K', 'N', 'D'}

const headerVersion = 1

// Save writes b to w with the tagged header, so Load can dispatch to the
// right decoder.
func Save(w io.Writer, b Backend) error {
	tag := b.Tag()
	if len(tag) == 0 || len(tag) > 255 {
		return fmt.Errorf("backend: tag %q not encodable", tag)
	}
	hdr := make([]byte, 0, len(magic)+2+len(tag))
	hdr = append(hdr, magic[:]...)
	hdr = append(hdr, headerVersion, byte(len(tag)))
	hdr = append(hdr, tag...)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("backend: writing header: %w", err)
	}
	return b.Save(w)
}

// Load reads a model written by Save and dispatches on its tag. Streams
// without the tagged header load through the CLAP decoder (the legacy
// on-disk format).
func Load(r io.Reader) (Backend, error) {
	head := make([]byte, len(magic))
	n, err := io.ReadFull(r, head)
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		// Too short for a header; let the legacy decoder report the detail.
		return loadLegacy(io.MultiReader(bytes.NewReader(head[:n]), r))
	}
	if err != nil {
		return nil, fmt.Errorf("backend: reading header: %w", err)
	}
	if !bytes.Equal(head, magic[:]) {
		return loadLegacy(io.MultiReader(bytes.NewReader(head), r))
	}
	var meta [2]byte
	if _, err := io.ReadFull(r, meta[:]); err != nil {
		return nil, fmt.Errorf("backend: truncated header: %w", err)
	}
	if meta[0] != headerVersion {
		return nil, fmt.Errorf("backend: unsupported model format version %d", meta[0])
	}
	tag := make([]byte, meta[1])
	if _, err := io.ReadFull(r, tag); err != nil {
		return nil, fmt.Errorf("backend: truncated tag: %w", err)
	}
	regMu.RLock()
	f, ok := registry[string(tag)]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: model tagged with unknown backend %q (registered: %v)", tag, Tags())
	}
	b, err := f.Load(r)
	if err != nil {
		return nil, fmt.Errorf("backend: loading %q model: %w", tag, err)
	}
	return b, nil
}

// loadLegacy decodes a header-less stream as a plain CLAP detector.
func loadLegacy(r io.Reader) (Backend, error) {
	regMu.RLock()
	f, ok := registry[TagCLAP]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: CLAP decoder not registered")
	}
	b, err := f.Load(r)
	if err != nil {
		return nil, fmt.Errorf("backend: loading untagged model as CLAP: %w", err)
	}
	return b, nil
}
