package backend

import (
	"math"
	"strings"
	"testing"

	"clap/internal/core"
	"clap/internal/flow"
	"clap/internal/metrics"
)

// testCascade builds a cascade over untrained-but-shaped baseline1 and
// CLAP detectors — deterministic, fast, and with the two stages' score
// scales genuinely different (distinct random weights).
func testCascade(t *testing.T, conns []*flow.Connection, escalateFPR float64) *Cascade {
	t.Helper()
	b1cfg := core.Baseline1Config()
	clapCfg := core.DefaultConfig()
	s1 := &CLAP{tag: TagBaseline1, Cfg: b1cfg, Det: randomDetector(b1cfg, conns, 31)}
	s2 := &CLAP{tag: TagCLAP, Cfg: clapCfg, Det: randomDetector(clapCfg, conns, 32)}
	c, err := NewCascade(s1, s2, escalateFPR)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// serialScores scores a corpus one connection at a time.
func serialScores(b Backend, conns []*flow.Connection) []float64 {
	out := make([]float64, len(conns))
	for i, c := range conns {
		out[i] = b.ScoreConn(c)
	}
	return out
}

func TestCascadeRegistered(t *testing.T) {
	if Doc(TagCascade) == "" {
		t.Error("cascade has no doc line")
	}
	b, err := New(TagCascade)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := b.(*Cascade)
	if !ok {
		t.Fatalf("New(cascade) returned %T", b)
	}
	s1, s2 := c.Stages()
	if s1.Tag() != TagBaseline1 || s2.Tag() != TagCLAP {
		t.Fatalf("default cascade stages = %s+%s, want baseline1+clap", s1.Tag(), s2.Tag())
	}
	if c.EscalateFPR() != DefaultEscalateFPR {
		t.Fatalf("default escalate FPR = %v", c.EscalateFPR())
	}
	if c.Trained() {
		t.Error("fresh cascade reports itself trained")
	}
	if !strings.Contains(c.Describe(), "uncalibrated") {
		t.Errorf("uncalibrated cascade should say so: %q", c.Describe())
	}
}

func TestNewCascadeRejectsBadInputs(t *testing.T) {
	conns := genConns(8, 3)
	c := testCascade(t, conns, 0.1)
	s1, s2 := c.Stages()
	for _, fpr := range []float64{0, 1, -0.5, math.NaN(), math.Inf(1)} {
		if _, err := NewCascade(s1, s2, fpr); err == nil {
			t.Errorf("NewCascade with FPR %v should fail", fpr)
		}
	}
	if _, err := NewCascade(nil, s2, 0.1); err == nil {
		t.Error("nil stage 1 should fail")
	}
	if _, err := NewCascade(c, s2, 0.1); err == nil {
		t.Error("nested cascade should fail")
	}
	if _, err := c.WithStage2(c); err == nil {
		t.Error("grafting a cascade as stage 2 should fail")
	}
}

func TestNewFromSpec(t *testing.T) {
	b, err := NewFromSpec("cascade:baseline1+clap")
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := b.(*Cascade).Stages()
	if s1.Tag() != TagBaseline1 || s2.Tag() != TagCLAP {
		t.Fatalf("spec stages = %s+%s", s1.Tag(), s2.Tag())
	}
	if b, err = NewFromSpec(TagCLAP); err != nil || b.Tag() != TagCLAP {
		t.Fatalf("plain tag spec: %v, %v", b, err)
	}
	for _, bad := range []string{"cascade:", "cascade:baseline1", "cascade:+clap", "cascade:nope+clap", "cascade:clap+nope"} {
		if _, err := NewFromSpec(bad); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}

// TestCascadeUncalibratedEscalatesAll: without a calibrated escalation
// threshold every connection rides the second stage, so the cascade is
// score-identical to it.
func TestCascadeUncalibratedEscalatesAll(t *testing.T) {
	conns := genConns(12, 3)
	probe := genConns(6, 41)
	c := testCascade(t, conns, 0.25)
	_, s2 := c.Stages()
	for i, conn := range probe {
		sameSeries(t, "uncalibrated series", c.WindowErrors(conn), s2.WindowErrors(conn))
		if c.ScoreConn(conn) != s2.ScoreConn(conn) {
			t.Fatalf("conn %d: uncalibrated cascade score differs from stage 2", i)
		}
	}
	evaluated, escalated := c.EscalationCounts()
	// ScoreConn + WindowErrors each count an evaluation per probe.
	if evaluated != uint64(2*len(probe)) || escalated != evaluated {
		t.Fatalf("counts = %d/%d, want all %d escalated", escalated, evaluated, 2*len(probe))
	}
}

// TestCascadeEscalationRouting pins the tiering itself: after stage
// calibration at escalate-FPR f on a benign corpus, (a) the escalated
// fraction of that corpus is floor(f·n)/n exactly, (b) escalated
// connections' series and scores are bit-identical to the pure second
// stage, and (c) non-escalated connections' series are the first stage's
// shifted down by the escalation threshold, reducing to a strictly
// negative margin score — below every escalated (non-negative) verdict.
func TestCascadeEscalationRouting(t *testing.T) {
	benign := genConns(40, 3)
	c := testCascade(t, benign, 0.2)
	if err := c.CalibrateStages(benign, serialScores); err != nil {
		t.Fatal(err)
	}
	s1, s2 := c.Stages()
	esc, set := c.Escalation()
	if !set {
		t.Fatal("calibration did not install an escalation threshold")
	}
	wantEscalated := int(0.2 * float64(len(benign))) // floor semantics
	gotEscalated := 0
	for _, conn := range benign {
		e1 := s1.WindowErrors(conn)
		score1, _ := s1.Summarize(e1)
		if score1 >= esc {
			gotEscalated++
			sameSeries(t, "escalated series", c.WindowErrors(conn), s2.WindowErrors(conn))
			if c.ScoreConn(conn) != s2.ScoreConn(conn) {
				t.Fatal("escalated connection's score differs from pure stage 2")
			}
		} else {
			shifted := append([]float64(nil), e1...)
			for i := range shifted {
				shifted[i] -= esc
			}
			sameSeries(t, "screened series", c.WindowErrors(conn), shifted)
			if got := c.ScoreConn(conn); len(e1) > 0 && got >= 0 {
				t.Fatalf("screened connection scored %v, want negative margin below the escalation threshold", got)
			}
		}
	}
	if gotEscalated != wantEscalated {
		t.Fatalf("%d/%d benign escalated, want exactly %d (floor(0.2·n))",
			gotEscalated, len(benign), wantEscalated)
	}
	evaluated, escalated := c.EscalationCounts()
	if evaluated == 0 || escalated > evaluated {
		t.Fatalf("implausible counters %d/%d", escalated, evaluated)
	}
	c.ResetEscalationCounts()
	if ev, es := c.EscalationCounts(); ev != 0 || es != 0 {
		t.Fatalf("reset left counters at %d/%d", es, ev)
	}
}

// TestCascadeSummarizeMatchesScoreConn pins the Backend contract on the
// composite, both calibrated and not.
func TestCascadeSummarizeMatchesScoreConn(t *testing.T) {
	benign := genConns(20, 3)
	probe := genConns(8, 43)
	c := testCascade(t, benign, 0.25)
	check := func(label string) {
		t.Helper()
		for i, conn := range probe {
			score, _ := c.Summarize(c.WindowErrors(conn))
			if got := c.ScoreConn(conn); got != score {
				t.Fatalf("%s: conn %d ScoreConn %v != Summarize %v", label, i, got, score)
			}
		}
		if score, peak := c.Summarize(nil); score != 0 || peak != -1 {
			t.Fatalf("%s: empty series summarized to (%v, %d)", label, score, peak)
		}
	}
	check("uncalibrated")
	if err := c.CalibrateStages(benign, serialScores); err != nil {
		t.Fatal(err)
	}
	check("calibrated")
}

// TestCascadeRoundTrip: the tagged Save/Load round-trip preserves both
// stages (with their tags), the escalation threshold, the escalate-FPR,
// and bit-identical scoring.
func TestCascadeRoundTrip(t *testing.T) {
	benign := genConns(24, 3)
	probe := genConns(6, 47)
	c := testCascade(t, benign, 0.15)
	if err := c.CalibrateStages(benign, serialScores); err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, c).(*Cascade)
	g1, g2 := got.Stages()
	if g1.Tag() != TagBaseline1 || g2.Tag() != TagCLAP {
		t.Fatalf("round-trip stages = %s+%s", g1.Tag(), g2.Tag())
	}
	if got.EscalateFPR() != c.EscalateFPR() {
		t.Fatalf("escalate FPR drifted: %v != %v", got.EscalateFPR(), c.EscalateFPR())
	}
	wantEsc, wantSet := c.Escalation()
	gotEsc, gotSet := got.Escalation()
	if gotEsc != wantEsc || gotSet != wantSet {
		t.Fatalf("escalation drifted: (%v,%v) != (%v,%v)", gotEsc, gotSet, wantEsc, wantSet)
	}
	for _, conn := range probe {
		sameSeries(t, "round-trip series", got.WindowErrors(conn), c.WindowErrors(conn))
		if got.ScoreConn(conn) != c.ScoreConn(conn) {
			t.Fatal("round-trip changed a score")
		}
	}
	// An uncalibrated cascade round-trips as uncalibrated.
	u := testCascade(t, benign, 0.15)
	if _, set := roundTrip(t, u).(*Cascade).Escalation(); set {
		t.Fatal("uncalibrated cascade came back calibrated")
	}
}

func TestCascadeSaveRejectsUntrained(t *testing.T) {
	b, err := New(TagCascade)
	if err != nil {
		t.Fatal(err)
	}
	var sink strings.Builder
	if err := Save(&sink, b); err == nil {
		t.Fatal("saving untrained cascade should fail")
	}
}

// TestCascadeWithStage2 pins the hot-reload graft: the replacement keeps
// the first stage, escalation threshold, and the shared counters, while
// escalated verdicts switch to the incoming model.
func TestCascadeWithStage2(t *testing.T) {
	benign := genConns(24, 3)
	c := testCascade(t, benign, 0.2)
	if err := c.CalibrateStages(benign, serialScores); err != nil {
		t.Fatal(err)
	}
	c.ScoreConn(benign[0]) // tick the counters
	evBefore, _ := c.EscalationCounts()
	clapCfg := core.DefaultConfig()
	fresh := &CLAP{tag: TagCLAP, Cfg: clapCfg, Det: randomDetector(clapCfg, benign, 99)}
	nb, err := c.WithStage2(fresh)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := c.Stages()
	n1, n2 := nb.Stages()
	if n1 != s1 || n2 != Backend(fresh) {
		t.Fatal("graft did not keep stage 1 / install stage 2")
	}
	oldEsc, _ := c.Escalation()
	newEsc, set := nb.Escalation()
	if !set || newEsc != oldEsc {
		t.Fatal("graft dropped the escalation threshold")
	}
	if ev, _ := nb.EscalationCounts(); ev != evBefore {
		t.Fatalf("graft reset shared counters: %d != %d", ev, evBefore)
	}
	nb.ScoreConn(benign[1])
	evOld, _ := c.EscalationCounts()
	evNew, _ := nb.EscalationCounts()
	if evOld != evNew {
		t.Fatal("counters not shared across the graft")
	}
}

// TestCascadeStageCalibrationBudget cross-checks the ThresholdAtFPR fix
// through the cascade: the calibrated escalation threshold realizes the
// floor(f·n) budget exactly on the calibration corpus for several f.
func TestCascadeStageCalibrationBudget(t *testing.T) {
	benign := genConns(30, 3)
	for _, f := range []float64{0.05, 0.1, 0.5} {
		c := testCascade(t, benign, f)
		if err := c.CalibrateStages(benign, serialScores); err != nil {
			t.Fatal(err)
		}
		s1, _ := c.Stages()
		esc, _ := c.Escalation()
		scores := serialScores(s1, benign)
		if got := realizedCount(scores, esc); got != int(f*float64(len(benign))) {
			t.Fatalf("f=%v: %d escalate, want %d", f, got, int(f*float64(len(benign))))
		}
	}
	// The full metrics-level contract is pinned in internal/metrics; this
	// is the composition-level guard.
	if th := metrics.ThresholdAtFPR([]float64{1, 2, 3, 4}, 0.5); realizedCount([]float64{1, 2, 3, 4}, th) != 2 {
		t.Fatal("metrics.ThresholdAtFPR budget regressed")
	}
}

func realizedCount(scores []float64, th float64) int {
	n := 0
	for _, s := range scores {
		if s >= th {
			n++
		}
	}
	return n
}
