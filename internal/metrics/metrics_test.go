package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAUCPerfectSeparation(t *testing.T) {
	benign := []float64{0.1, 0.2, 0.3}
	adv := []float64{0.9, 1.0, 1.5}
	if got := AUC(benign, adv); got != 1.0 {
		t.Errorf("AUC = %g, want 1.0", got)
	}
	if got := AUC(adv, benign); got != 0.0 {
		t.Errorf("inverted AUC = %g, want 0.0", got)
	}
}

func TestAUCChanceLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	benign := make([]float64, 2000)
	adv := make([]float64, 2000)
	for i := range benign {
		benign[i] = rng.Float64()
		adv[i] = rng.Float64()
	}
	if got := AUC(benign, adv); math.Abs(got-0.5) > 0.03 {
		t.Errorf("AUC on identical distributions = %g, want ≈ 0.5", got)
	}
}

func TestAUCTies(t *testing.T) {
	// All scores identical: AUC must be exactly 0.5 (ties count half).
	benign := []float64{1, 1, 1}
	adv := []float64{1, 1}
	if got := AUC(benign, adv); got != 0.5 {
		t.Errorf("AUC with full ties = %g, want 0.5", got)
	}
}

func TestAUCEmpty(t *testing.T) {
	if !math.IsNaN(AUC(nil, []float64{1})) || !math.IsNaN(AUC([]float64{1}, nil)) {
		t.Error("AUC of empty classes should be NaN")
	}
}

func TestEERBounds(t *testing.T) {
	benign := []float64{0.1, 0.2, 0.3, 0.4}
	adv := []float64{0.6, 0.7, 0.8, 0.9}
	if got := EER(benign, adv); got > 1e-9 {
		t.Errorf("EER with perfect separation = %g, want 0", got)
	}
	if got := EER(adv, benign); math.Abs(got-1) > 0.26 {
		// Fully inverted classifier: EER near 1 (allowing curve coarseness).
		t.Errorf("EER inverted = %g, want ≈ 1", got)
	}
}

func TestEERChanceLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	benign := make([]float64, 1500)
	adv := make([]float64, 1500)
	for i := range benign {
		benign[i] = rng.NormFloat64()
		adv[i] = rng.NormFloat64()
	}
	if got := EER(benign, adv); math.Abs(got-0.5) > 0.05 {
		t.Errorf("EER on identical distributions = %g, want ≈ 0.5", got)
	}
}

func TestEERSymmetricOverlap(t *testing.T) {
	// Two unit-variance Gaussians 2σ apart: EER = Φ(-1) ≈ 0.1587.
	rng := rand.New(rand.NewSource(3))
	benign := make([]float64, 4000)
	adv := make([]float64, 4000)
	for i := range benign {
		benign[i] = rng.NormFloat64()
		adv[i] = rng.NormFloat64() + 2
	}
	if got := EER(benign, adv); math.Abs(got-0.1587) > 0.02 {
		t.Errorf("EER = %g, want ≈ 0.159", got)
	}
}

func TestROCMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	benign := make([]float64, 300)
	adv := make([]float64, 300)
	for i := range benign {
		benign[i] = rng.NormFloat64()
		adv[i] = rng.NormFloat64() + 1
	}
	curve := ROC(benign, adv)
	if len(curve) < 3 {
		t.Fatalf("curve has %d points", len(curve))
	}
	first, last := curve[0], curve[len(curve)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Errorf("curve should start at (0,0), got (%g,%g)", first.FPR, first.TPR)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Errorf("curve should end at (1,1), got (%g,%g)", last.FPR, last.TPR)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatalf("curve not monotone at %d", i)
		}
	}
}

func TestPropertyAUCInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		nb, na := 1+rng.Intn(50), 1+rng.Intn(50)
		b := make([]float64, nb)
		a := make([]float64, na)
		for i := range b {
			b[i] = rng.NormFloat64() * 10
		}
		for i := range a {
			a[i] = rng.NormFloat64() * 10
		}
		auc := AUC(b, a)
		eer := EER(b, a)
		return auc >= 0 && auc <= 1 && eer >= -1e-9 && eer <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAUCComplementary(t *testing.T) {
	// AUC(b, a) + AUC(a, b) == 1 exactly (rank-sum symmetry).
	rng := rand.New(rand.NewSource(6))
	f := func() bool {
		nb, na := 1+rng.Intn(30), 1+rng.Intn(30)
		b := make([]float64, nb)
		a := make([]float64, na)
		for i := range b {
			b[i] = math.Round(rng.NormFloat64()*3) / 2 // induce ties
		}
		for i := range a {
			a[i] = math.Round(rng.NormFloat64()*3) / 2
		}
		return math.Abs(AUC(b, a)+AUC(a, b)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestThresholdAtFPR(t *testing.T) {
	benign := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	th := ThresholdAtFPR(benign, 0.2)
	fp := 0
	for _, b := range benign {
		if b >= th {
			fp++
		}
	}
	if fp > 2 {
		t.Errorf("threshold %g yields %d false positives, want <= 2", th, fp)
	}
	// Zero-FPR threshold excludes every benign sample.
	th0 := ThresholdAtFPR(benign, 0)
	for _, b := range benign {
		if b >= th0 {
			t.Errorf("zero-FPR threshold %g still fires on benign %g", th0, b)
		}
	}
}

// realizedFP counts benign samples at or above the threshold (the
// classifier's "positive when score >= threshold" convention).
func realizedFP(benign []float64, th float64) int {
	fp := 0
	for _, b := range benign {
		if b >= th {
			fp++
		}
	}
	return fp
}

// TestThresholdAtFPRExactBudget pins the fixed floor(target·n) semantics:
// the realized false-positive count equals the budget k exactly on
// distinct scores (the old code admitted only k−1, undershooting every
// calibrated pipeline by 1/n), and retreats conservatively — realizing
// the largest count ≤ k — when ties straddle the boundary.
func TestThresholdAtFPRExactBudget(t *testing.T) {
	distinct := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	n := len(distinct)
	cases := []struct {
		name   string
		benign []float64
		target float64
		wantFP int // exact realized count
	}{
		{"k=0", distinct, 0, 0},
		{"k=1", distinct, 0.1, 1},
		{"k=n-1", distinct, 0.9, n - 1},
		{"k=n", distinct, 1.0, n},
		{"k-rounds-down", distinct, 0.25, 2}, // floor(0.25·10) = 2
		// Tie spanning the boundary: budget k=2 but s[7]=s[8]=9 ties with
		// the would-be cutoff — admitting at 9 would fire 3 times, so the
		// threshold retreats to 10 and realizes 1 (largest value ≤ 2).
		{"tie-at-boundary", []float64{1, 2, 3, 4, 5, 6, 7, 9, 9, 10}, 0.2, 1},
		// Tie entirely inside the admitted set: no retreat needed.
		{"tie-inside-budget", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 9}, 0.2, 2},
		// All scores identical: any positive budget < n must exclude all.
		{"all-tied-k=1", []float64{5, 5, 5, 5, 5, 5, 5, 5, 5, 5}, 0.1, 0},
		{"all-tied-k=n", []float64{5, 5, 5, 5, 5, 5, 5, 5, 5, 5}, 1.0, n},
		{"single-sample-k=0", []float64{3}, 0.5, 0}, // floor(0.5·1) = 0
		{"single-sample-k=1", []float64{3}, 1.0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			th := ThresholdAtFPR(tc.benign, tc.target)
			fp := realizedFP(tc.benign, th)
			if fp != tc.wantFP {
				t.Fatalf("threshold %g realizes %d false positives, want %d", th, fp, tc.wantFP)
			}
			budget := int(tc.target * float64(len(tc.benign)))
			if fp > budget {
				t.Fatalf("threshold %g realizes %d > budget %d", th, fp, budget)
			}
		})
	}
}

// TestThresholdAtFPRLargestBelowTarget: the realized FPR is the largest
// achievable value ≤ target — raising the threshold to the next distinct
// admitted score would only lower it further, and any lower threshold
// would overshoot the budget.
func TestThresholdAtFPRLargestBelowTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		benign := make([]float64, n)
		for i := range benign {
			benign[i] = math.Round(rng.NormFloat64()*4) / 2 // induce ties
		}
		target := rng.Float64()
		budget := int(target * float64(n))
		th := ThresholdAtFPR(benign, target)
		fp := realizedFP(benign, th)
		if fp > budget {
			t.Fatalf("n=%d target=%g: realized %d > budget %d", n, target, fp, budget)
		}
		// Maximality: every benign score strictly below th would, used as
		// the threshold itself, overshoot the budget. (Scores ≥ th are
		// already admitted, so th realizes the largest count ≤ budget.)
		for _, b := range benign {
			if b < th && realizedFP(benign, b) <= budget {
				t.Fatalf("n=%d target=%g: threshold %g not maximal, %g also fits budget %d",
					n, target, th, b, budget)
			}
		}
	}
}

func TestTopNHit(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.2, 0.8, 0.3}
	if !TopNHit(scores, []int{1}, 1) {
		t.Error("index 1 has the top score; Top-1 should hit")
	}
	if TopNHit(scores, []int{4}, 2) {
		t.Error("index 4 ranks 4th; Top-2 should miss")
	}
	if !TopNHit(scores, []int{4}, 5) {
		t.Error("Top-5 covers everything")
	}
	if TopNHit(nil, []int{0}, 3) || TopNHit(scores, nil, 3) || TopNHit(scores, []int{0}, 0) {
		t.Error("degenerate inputs should miss")
	}
}

func TestMeanQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Error("extreme quantiles wrong")
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Errorf("median = %g, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty input should yield NaN")
	}
}

func TestROCEmptyInputs(t *testing.T) {
	if ROC(nil, []float64{1}) != nil || ROC([]float64{1}, nil) != nil {
		t.Error("ROC of empty classes should be nil")
	}
}

func TestThresholdAtFPREmpty(t *testing.T) {
	if th := ThresholdAtFPR(nil, 0.1); !math.IsInf(th, 1) {
		t.Errorf("empty benign threshold = %g, want +Inf", th)
	}
}

func TestThresholdAtFPRFullRate(t *testing.T) {
	benign := []float64{1, 2, 3}
	th := ThresholdAtFPR(benign, 1.0)
	if th > 1 {
		t.Errorf("FPR=1 threshold %g should admit everything", th)
	}
}
