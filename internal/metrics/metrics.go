// Package metrics implements the evaluation measures the paper reports:
// ROC curves, AUC-ROC, the Equal Error Rate, Top-N hit rates and threshold
// selection (§4.2).
//
// Convention: higher score ⇒ more adversarial. Benign samples are the
// negative class, adversarial samples the positive class.
package metrics

import (
	"math"
	"sort"
)

// ROCPoint is one operating point of a detector.
type ROCPoint struct {
	Threshold float64
	FPR, TPR  float64
}

// ROC sweeps every distinct score as a threshold (classify positive when
// score >= threshold) and returns the curve from (0,0) to (1,1).
func ROC(benign, adversarial []float64) []ROCPoint {
	if len(benign) == 0 || len(adversarial) == 0 {
		return nil
	}
	thresholds := append(append([]float64(nil), benign...), adversarial...)
	sort.Sort(sort.Reverse(sort.Float64Slice(thresholds)))
	out := []ROCPoint{{Threshold: math.Inf(1)}}
	for _, t := range thresholds {
		p := ROCPoint{
			Threshold: t,
			FPR:       fracAtOrAbove(benign, t),
			TPR:       fracAtOrAbove(adversarial, t),
		}
		last := out[len(out)-1]
		if p.FPR != last.FPR || p.TPR != last.TPR {
			out = append(out, p)
		}
	}
	if last := out[len(out)-1]; last.FPR != 1 || last.TPR != 1 {
		out = append(out, ROCPoint{Threshold: math.Inf(-1), FPR: 1, TPR: 1})
	}
	return out
}

func fracAtOrAbove(xs []float64, t float64) float64 {
	n := 0
	for _, x := range xs {
		if x >= t {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// AUC computes the exact area under the ROC curve via the Mann-Whitney
// rank-sum equivalence: the probability a random adversarial sample scores
// above a random benign one (ties count half).
func AUC(benign, adversarial []float64) float64 {
	if len(benign) == 0 || len(adversarial) == 0 {
		return math.NaN()
	}
	sb := append([]float64(nil), benign...)
	sort.Float64s(sb)
	var sum float64
	for _, a := range adversarial {
		lo := sort.SearchFloat64s(sb, a)              // first index with sb >= a
		hi := sort.Search(len(sb), func(i int) bool { // first index with sb > a
			return sb[i] > a
		})
		sum += float64(lo) + 0.5*float64(hi-lo)
	}
	return sum / float64(len(benign)*len(adversarial))
}

// EER returns the equal error rate: the point on the ROC where the false
// positive rate equals the false negative rate (1 − TPR), linearly
// interpolated between the two straddling operating points.
func EER(benign, adversarial []float64) float64 {
	curve := ROC(benign, adversarial)
	if len(curve) == 0 {
		return math.NaN()
	}
	// Walk the curve; FNR decreases, FPR increases. Find the sign change of
	// (FPR − FNR).
	prev := curve[0]
	prevDiff := prev.FPR - (1 - prev.TPR)
	for _, p := range curve[1:] {
		diff := p.FPR - (1 - p.TPR)
		if diff >= 0 {
			// Interpolate between prev and p.
			if diff == prevDiff {
				return (p.FPR + (1 - p.TPR)) / 2
			}
			t := -prevDiff / (diff - prevDiff)
			fpr := prev.FPR + t*(p.FPR-prev.FPR)
			fnr := (1 - prev.TPR) + t*((1-p.TPR)-(1-prev.TPR))
			return (fpr + fnr) / 2
		}
		prev, prevDiff = p, diff
	}
	return prev.FPR
}

// ThresholdAtFPR returns the smallest threshold whose false positive rate
// on the benign scores does not exceed the target — the deployer-facing
// knob discussed in §3.3(d). With n benign samples it admits exactly
// k = floor(targetFPR·n) of them at or above the threshold (fewer only
// when ties at the boundary force a conservative retreat), matching
// calib.Sketch.ThresholdAtFPR's "allowed = floor(target·n)" semantics.
func ThresholdAtFPR(benign []float64, targetFPR float64) float64 {
	n := len(benign)
	if n == 0 {
		return math.Inf(1)
	}
	s := append([]float64(nil), benign...)
	sort.Float64s(s)
	// Allow k = floor(targetFPR * n) benign samples at or above the
	// threshold.
	k := int(targetFPR * float64(n))
	if k >= n {
		return s[0] // everything may fire
	}
	if k == 0 {
		// Exclude every benign sample: the next representable value above
		// the maximum (not a fixed epsilon, which breaks at large scales).
		return math.Nextafter(s[n-1], math.Inf(1))
	}
	// s[n-k] is the lowest admitted sample. If boundary samples tie with
	// the excluded s[n-k-1], setting the threshold there would admit more
	// than k; retreat upward past the tie so the realized FPR stays ≤
	// target (the conservative direction).
	idx := n - k
	for idx < n && s[idx-1] == s[idx] {
		idx++
	}
	if idx == n {
		return math.Nextafter(s[n-1], math.Inf(1))
	}
	return s[idx]
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Quantile returns the q-th (0..1) quantile by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[i]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// TopNHit reports whether any of the n highest-scoring positions intersects
// the target set — the localization hit criterion (§4.2): CLAP's Top-N
// candidates must include an actual adversarial packet.
func TopNHit(scores []float64, targets []int, n int) bool {
	if len(scores) == 0 || len(targets) == 0 || n <= 0 {
		return false
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if n > len(idx) {
		n = len(idx)
	}
	tset := make(map[int]bool, len(targets))
	for _, t := range targets {
		tset[t] = true
	}
	for _, i := range idx[:n] {
		if tset[i] {
			return true
		}
	}
	return false
}
