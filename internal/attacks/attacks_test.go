package attacks

import (
	"math/rand"
	"strings"
	"testing"

	"clap/internal/flow"
	"clap/internal/packet"
	"clap/internal/tcpstate"
	"clap/internal/trafficgen"
)

// endhostAcceptedByDesign lists strategies whose adversarial packets a
// strict endhost legitimately processes — their discrepancy is semantic
// (reassembly content, urgent handling, SYN-payload offsets), not
// drop-based.
var endhostAcceptedByDesign = map[string]bool{
	"Zeek: Data Packet (ACK) Overlapping":        true,
	"Snort: Data Packet (ACK) w/ Urgent Pointer": true,
	"Zeek: SYN w/ Payload":                       true,
}

func benign(n int, seed int64) []*flow.Connection {
	cfg := trafficgen.DefaultConfig(n)
	cfg.Seed = seed
	return trafficgen.Generate(cfg)
}

func TestCorpusValidates(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCorpusCounts(t *testing.T) {
	if n := len(SymTCP()); n != 30 {
		t.Errorf("SymTCP strategies = %d, want 30", n)
	}
	if n := len(Liberate()); n != 23 {
		t.Errorf("Liberate strategies = %d, want 23", n)
	}
	if n := len(Geneva()); n != 20 {
		t.Errorf("Geneva strategies = %d, want 20", n)
	}
	if n := len(All()); n != 73 {
		t.Errorf("total strategies = %d, want 73 (the paper's corpus)", n)
	}
}

func TestBySourcePartition(t *testing.T) {
	total := 0
	for _, s := range []Source{SourceSymTCP, SourceLiberate, SourceGeneva} {
		sub := BySource(s)
		total += len(sub)
		for _, st := range sub {
			if st.Source != s {
				t.Errorf("BySource(%s) returned %q with source %s", s, st.Name, st.Source)
			}
		}
	}
	if total != len(All()) {
		t.Errorf("sources partition %d strategies, corpus has %d", total, len(All()))
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("Snort: Injected RST Pure")
	if !ok || s.Name != "Snort: Injected RST Pure" {
		t.Fatal("ByName failed for a known strategy")
	}
	if _, ok := ByName("No Such Attack"); ok {
		t.Fatal("ByName matched a nonexistent strategy")
	}
	if len(Names()) != 73 {
		t.Errorf("Names() returned %d entries", len(Names()))
	}
}

// TestEveryStrategyAppliesAndMarks drives each strategy over a pool of
// benign connections and asserts the corpus-wide invariants: it applies to
// a reasonable share of traffic, marks ground truth, and does not disturb
// the packets it did not touch.
func TestEveryStrategyAppliesAndMarks(t *testing.T) {
	conns := benign(150, 42)
	rng := rand.New(rand.NewSource(7))
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			applied := 0
			for _, c := range conns {
				cc := c.Clone()
				if !s.Apply(cc, rng) {
					if cc.IsAdversarial() {
						t.Fatal("Apply returned false but marked packets")
					}
					continue
				}
				applied++
				if !cc.IsAdversarial() {
					t.Fatal("Apply returned true but marked no packets")
				}
				if cc.Len() < c.Len() {
					t.Fatal("Apply removed packets")
				}
				for _, ai := range cc.AdvIdx {
					if ai < 0 || ai >= cc.Len() {
						t.Fatalf("AdvIdx %d out of range [0,%d)", ai, cc.Len())
					}
				}
				if cc.AttackName == "" {
					cc.AttackName = s.Name // callers set it; not required of Apply
				}
				if applied >= 25 {
					break
				}
			}
			if applied < 10 {
				t.Errorf("strategy applied to only %d/150 benign connections", applied)
			}
		})
	}
}

// TestAdversarialPacketsIgnoredByEndhost verifies the core discrepancy for
// the drop-based strategies: a rigorous endhost must not process the
// injected packets, and its final state must match the benign replay.
func TestAdversarialPacketsIgnoredByEndhost(t *testing.T) {
	conns := benign(150, 43)
	rng := rand.New(rand.NewSource(9))
	cfg := tcpstate.DefaultConfig()
	for _, s := range All() {
		if endhostAcceptedByDesign[s.Name] {
			continue
		}
		s := s
		t.Run(s.Name, func(t *testing.T) {
			checked := 0
			for _, c := range conns {
				cc := c.Clone()
				if !s.Apply(cc, rng) {
					continue
				}
				checked++
				vs := tcpstate.Replay(cc, cfg)
				for _, ai := range cc.AdvIdx {
					if vs[ai].Accepted {
						t.Fatalf("endhost accepted adversarial packet %d (%v) of %v",
							ai, cc.Packets[ai], cc.Key)
					}
				}
				if checked >= 8 {
					break
				}
			}
			if checked == 0 {
				t.Fatal("strategy never applied")
			}
		})
	}
}

func TestInjectionTimestampsStayOrdered(t *testing.T) {
	conns := benign(100, 44)
	rng := rand.New(rand.NewSource(11))
	for _, s := range All() {
		for _, c := range conns[:40] {
			cc := c.Clone()
			if !s.Apply(cc, rng) {
				continue
			}
			for i := 1; i < cc.Len(); i++ {
				if cc.Packets[i].Timestamp.Before(cc.Packets[i-1].Timestamp) {
					t.Fatalf("%s: timestamps regress at %d", s.Name, i)
				}
			}
			break
		}
	}
}

func TestLiberateMaxInjectsMoreThanMin(t *testing.T) {
	conns := benign(200, 45)
	rng := rand.New(rand.NewSource(13))
	min, _ := ByName("Bad TCP Checksum (Min)")
	max, _ := ByName("Bad TCP Checksum (Max)")
	for _, c := range conns {
		// Need a connection with at least 5 client data packets.
		cMin, cMax := c.Clone(), c.Clone()
		if !min.Apply(cMin, rng) || !max.Apply(cMax, rng) {
			continue
		}
		if len(cMax.AdvIdx) <= len(cMin.AdvIdx) {
			continue // this connection had < 2 data packets; try another
		}
		if len(cMin.AdvIdx) != 1 {
			t.Fatalf("Min variant injected %d packets, want 1", len(cMin.AdvIdx))
		}
		if len(cMax.AdvIdx) > 5 {
			t.Fatalf("Max variant injected %d packets, want <= 5", len(cMax.AdvIdx))
		}
		return
	}
	t.Skip("no connection with enough data packets in sample")
}

func TestShadowCopyPrecedesOriginal(t *testing.T) {
	conns := benign(60, 46)
	rng := rand.New(rand.NewSource(15))
	s, _ := ByName("Zeek: Data Packet (ACK) Bad SEQ")
	for _, c := range conns {
		cc := c.Clone()
		if !s.Apply(cc, rng) {
			continue
		}
		ai := cc.AdvIdx[0]
		if ai+1 >= cc.Len() {
			t.Fatal("shadow copy has no following original")
		}
		shadow, orig := cc.Packets[ai], cc.Packets[ai+1]
		if shadow.PayloadLen != orig.PayloadLen {
			t.Errorf("shadow payload %d != original %d", shadow.PayloadLen, orig.PayloadLen)
		}
		if shadow.TCP.Seq == orig.TCP.Seq {
			t.Error("Bad SEQ shadow should differ in sequence number")
		}
		if shadow.Timestamp.After(orig.Timestamp) {
			t.Error("shadow must not follow the original in time")
		}
		return
	}
	t.Fatal("strategy never applied")
}

func TestGenevaShadowCap(t *testing.T) {
	conns := benign(200, 47)
	rng := rand.New(rand.NewSource(17))
	s, _ := ByName("Invalid Data-Offset / Bad TCP Checksum")
	seen := false
	for _, c := range conns {
		cc := c.Clone()
		if !s.Apply(cc, rng) {
			continue
		}
		seen = true
		if len(cc.AdvIdx) > genevaDataCap {
			t.Fatalf("Geneva shadowed %d packets, cap is %d", len(cc.AdvIdx), genevaDataCap)
		}
	}
	if !seen {
		t.Fatal("strategy never applied")
	}
}

func TestRSTStrategiesUseExactSequence(t *testing.T) {
	// The low-TTL teardown needs an exact-sequence RST or the DPI itself
	// would ignore it.
	conns := benign(80, 48)
	rng := rand.New(rand.NewSource(19))
	s, _ := ByName("RST w/ Low TTL #1 (Min)")
	for _, c := range conns {
		cc := c.Clone()
		if !s.Apply(cc, rng) {
			continue
		}
		ai := cc.AdvIdx[0]
		p := cc.Packets[ai]
		if !p.TCP.Flags.Has(packet.RST) {
			t.Fatal("injected packet is not a RST")
		}
		if p.IP.TTL != 1 {
			t.Fatalf("TTL = %d, want 1", p.IP.TTL)
		}
		cur := scan(cc, ai)
		if p.TCP.Seq != cur.next[flow.ClientToServer] {
			t.Fatalf("RST seq = %d, want exact next %d", p.TCP.Seq, cur.next[flow.ClientToServer])
		}
		return
	}
	t.Fatal("strategy never applied")
}

func TestCategoriesCoverBothKinds(t *testing.T) {
	inter, intra := 0, 0
	for _, s := range All() {
		switch s.Category {
		case CatInter:
			inter++
		case CatIntra:
			intra++
		}
	}
	if inter == 0 || intra == 0 {
		t.Fatalf("inter=%d intra=%d: both categories must be populated", inter, intra)
	}
	// The paper's Table 2 reports 24 inter / 49 intra; our mechanistic
	// prior should be in the same regime.
	if inter < 15 || inter > 40 {
		t.Errorf("inter-packet strategies = %d, want within [15,40]", inter)
	}
}

func TestDescriptionsMentionMechanism(t *testing.T) {
	for _, s := range All() {
		if len(s.Description) < 20 {
			t.Errorf("%s: description too thin", s.Name)
		}
	}
}

func TestNamesMatchSourceConventions(t *testing.T) {
	for _, s := range SymTCP() {
		if !strings.Contains(s.Name, ":") && !strings.Contains(s.Name, "GFW") {
			t.Errorf("SymTCP name %q should carry its target DPI", s.Name)
		}
	}
	for _, s := range Liberate() {
		if !strings.HasSuffix(s.Name, "(Min)") && !strings.HasSuffix(s.Name, "(Max)") {
			t.Errorf("lib•erate name %q should carry a Min/Max variant", s.Name)
		}
	}
}

func TestApplyIsDeterministicGivenRNG(t *testing.T) {
	conns := benign(30, 50)
	s, _ := ByName("Bad SEQ (Min)")
	a := conns[0].Clone()
	b := conns[0].Clone()
	s.Apply(a, rand.New(rand.NewSource(99)))
	s.Apply(b, rand.New(rand.NewSource(99)))
	if a.Len() != b.Len() {
		t.Fatal("same seed produced different packet counts")
	}
	for i := range a.Packets {
		ra, _ := a.Packets[i].Encode(packet.SerializeOptions{})
		rb, _ := b.Packets[i].Encode(packet.SerializeOptions{})
		if string(ra) != string(rb) {
			t.Fatalf("same seed produced different packet %d", i)
		}
	}
}
