// Package attacks implements the corpus of 73 DPI evasion strategies the
// paper evaluates (§4.2): 30 from SymTCP [23], 23 from lib•erate [10]
// (Min/Max variants) and 20 from Geneva [4].
//
// Following the paper's own methodology (§4.1), strategies are simulated at
// the PCAP level: each takes a benign connection and injects or shadows
// packets with the manipulations the original attack performs on the wire,
// recording ground-truth adversarial indices for localization scoring. The
// internal/dpi package verifies that every strategy actually produces the
// endhost-vs-DPI divergence it claims.
package attacks

import (
	"fmt"
	"math/rand"
	"sort"

	"clap/internal/flow"
)

// Source identifies the research project a strategy was published in.
type Source string

// The three strategy corpora.
const (
	SourceSymTCP   Source = "symtcp"   // [23] Wang et al., NDSS 2020
	SourceLiberate Source = "liberate" // [10] Li et al., IMC 2017
	SourceGeneva   Source = "geneva"   // [4] Bock et al., CCS 2019
)

// Category is the context a strategy primarily violates (Table 8's
// mechanistic prior; the empirical rule is applied by internal/eval).
type Category string

// Context-violation categories.
const (
	CatInter Category = "inter-packet"
	CatIntra Category = "intra-packet"
)

// Strategy is one evasion attack.
type Strategy struct {
	// Name follows the paper's labels, e.g. "Zeek: Data Packet (ACK) Bad SEQ".
	Name     string
	Source   Source
	Category Category
	// Description explains the wire-level mechanism and the discrepancy it
	// exploits.
	Description string
	// Apply mutates the connection in place, marking adversarial indices.
	// It reports false when the connection lacks the structure the attack
	// needs (e.g. no handshake, no data packets); callers pick another
	// benign connection.
	Apply func(c *flow.Connection, rng *rand.Rand) bool
}

// All returns the full 73-strategy corpus in a stable order.
func All() []Strategy {
	var out []Strategy
	out = append(out, SymTCP()...)
	out = append(out, Liberate()...)
	out = append(out, Geneva()...)
	return out
}

// BySource filters the corpus.
func BySource(s Source) []Strategy {
	var out []Strategy
	for _, st := range All() {
		if st.Source == s {
			out = append(out, st)
		}
	}
	return out
}

// ByName looks a strategy up by its exact name.
func ByName(name string) (Strategy, bool) {
	for _, st := range All() {
		if st.Name == name {
			return st, true
		}
	}
	return Strategy{}, false
}

// Names lists all strategy names, sorted.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.Name
	}
	sort.Strings(out)
	return out
}

// Validate sanity-checks the corpus invariants (count, uniqueness).
func Validate() error {
	all := All()
	if len(all) != 73 {
		return fmt.Errorf("attacks: corpus has %d strategies, want 73", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if s.Name == "" || s.Apply == nil || s.Description == "" {
			return fmt.Errorf("attacks: strategy %q incomplete", s.Name)
		}
		if seen[s.Name] {
			return fmt.Errorf("attacks: duplicate strategy %q", s.Name)
		}
		seen[s.Name] = true
		if s.Category != CatInter && s.Category != CatIntra {
			return fmt.Errorf("attacks: strategy %q has category %q", s.Name, s.Category)
		}
	}
	return nil
}
