package attacks

import (
	"math/rand"
	"time"

	"clap/internal/flow"
	"clap/internal/packet"
	"clap/internal/tcpstate"
)

// cursor is the sequence-space bookkeeping an attacker needs to craft
// packets that land at a chosen spot relative to the live connection.
type cursor struct {
	next    [2]uint32 // next sequence number each direction would send
	isn     [2]uint32
	isnSet  [2]bool
	window  [2]uint32 // last advertised window per direction
	lastIdx [2]int    // index of the most recent packet per direction (-1 if none)
	tsval   [2]uint32
	tsSeen  [2]bool
}

// scan replays the connection's first n packets (exclusive) into a cursor.
func scan(c *flow.Connection, n int) cursor {
	cur := cursor{lastIdx: [2]int{-1, -1}, window: [2]uint32{65535, 65535}}
	for i := 0; i < n && i < c.Len(); i++ {
		p := c.Packets[i]
		d := c.Dirs[i]
		if !cur.isnSet[d] {
			cur.isn[d] = p.TCP.Seq
			cur.next[d] = p.TCP.Seq
			cur.isnSet[d] = true
		}
		end := p.TCP.Seq + uint32(p.PayloadLen)
		if p.TCP.Flags.Has(packet.SYN) {
			end++
		}
		if p.TCP.Flags.Has(packet.FIN) {
			end++
		}
		if int32(end-cur.next[d]) > 0 {
			cur.next[d] = end
		}
		cur.window[d] = uint32(p.TCP.Window)
		cur.lastIdx[d] = i
		if v, _, ok := p.TCP.TimestampVal(); ok {
			cur.tsval[d] = v
			cur.tsSeen[d] = true
		}
	}
	return cur
}

// handshakeEnd returns the index of the first packet processed in the
// ESTABLISHED state (i.e. just after the handshake completes), or -1 if the
// connection never establishes via a visible handshake.
func handshakeEnd(c *flow.Connection) int {
	if c.Len() == 0 || !c.Packets[0].TCP.Flags.Has(packet.SYN) {
		return -1
	}
	t := tcpstate.NewTracker(tcpstate.DefaultConfig())
	for i, p := range c.Packets {
		v := t.Update(p, c.Dirs[i])
		if v.Label.State == tcpstate.Established {
			return i + 1
		}
		if v.Label.State == tcpstate.Close {
			return -1
		}
	}
	return -1
}

// dataIndices returns the indices of payload-bearing packets at or after
// index from, preferring direction dir; if none exist in that direction any
// direction is returned.
func dataIndices(c *flow.Connection, from int, dir flow.Direction) []int {
	var preferred, any []int
	for i := from; i < c.Len(); i++ {
		if c.Packets[i].PayloadLen <= 0 {
			continue
		}
		any = append(any, i)
		if c.Dirs[i] == dir {
			preferred = append(preferred, i)
		}
	}
	if len(preferred) > 0 {
		return preferred
	}
	return any
}

// tsBetween picks an injection timestamp strictly between neighbours of
// position idx.
func tsBetween(c *flow.Connection, idx int) time.Time {
	switch {
	case c.Len() == 0:
		return time.Unix(0, 0)
	case idx <= 0:
		return c.Packets[0].Timestamp.Add(-200 * time.Microsecond)
	case idx >= c.Len():
		return c.Packets[c.Len()-1].Timestamp.Add(200 * time.Microsecond)
	default:
		a := c.Packets[idx-1].Timestamp
		b := c.Packets[idx].Timestamp
		return a.Add(b.Sub(a) / 2)
	}
}

// craft builds an attacker packet for direction d that blends into the
// connection: endpoints from the key, TTL/window/TOS borrowed from the most
// recent packet in that direction (attackers copy these to avoid trivially
// standing out), correct checksums. Mutators then apply the evasion
// manipulations; mutators that change option layout should call refit, and
// corruption of checksums must come after any refit.
func craft(c *flow.Connection, cur cursor, d flow.Direction, at time.Time,
	flags packet.Flags, seq, ack uint32, payload int) *packet.Packet {

	var srcIP, dstIP [4]byte
	var srcPort, dstPort uint16
	if d == flow.ClientToServer {
		srcIP, dstIP = c.Key.Client.IP, c.Key.Server.IP
		srcPort, dstPort = c.Key.Client.Port, c.Key.Server.Port
	} else {
		srcIP, dstIP = c.Key.Server.IP, c.Key.Client.IP
		srcPort, dstPort = c.Key.Server.Port, c.Key.Client.Port
	}
	b := packet.NewBuilder(srcIP, dstIP, srcPort, dstPort).
		Seq(seq).Flags(flags).PayloadLen(payload).Time(at)
	if flags.Has(packet.ACK) {
		b.Ack(ack)
	}
	if ref := cur.lastIdx[d]; ref >= 0 {
		rp := c.Packets[ref]
		b.TTL(rp.IP.TTL).TOS(rp.IP.TOS).Window(rp.TCP.Window).ID(rp.IP.ID + 1)
		if cur.tsSeen[d] {
			b.Timestamps(cur.tsval[d]+1, cur.tsval[1-d])
		}
	}
	return b.Build()
}

// refit re-derives lengths and checksums after structural mutations
// (added/removed options), preserving capture metadata.
func refit(p *packet.Packet) {
	ts, pl := p.Timestamp, p.PayloadLen
	stored := p.Payload
	p.Payload = make([]byte, pl)
	raw, err := p.Encode(packet.SerializeOptions{FixLengths: true, ComputeChecksums: true})
	if err != nil {
		// Structural mutations that defeat encoding keep their stale
		// lengths; checksum fixes still apply below.
		p.Payload = stored
		_ = p.FixChecksums()
		p.Timestamp = ts
		return
	}
	q, err := packet.Decode(raw)
	if err != nil {
		p.Payload = stored
		p.Timestamp = ts
		return
	}
	*p = *q
	p.Timestamp = ts
	p.PayloadLen = pl
	p.Payload = stored
}

// Mutators used across the corpus. Each documents the discrepancy it
// triggers.

// mutBadTCPChecksum garbles the TCP checksum: strict endhosts verify and
// drop; the GFW (and tuned-down Snort/Suricata deployments) do not.
func mutBadTCPChecksum(rng *rand.Rand) func(*packet.Packet) {
	return func(p *packet.Packet) { p.TCP.Checksum ^= uint16(1 + rng.Intn(0xfffe)) }
}

// mutLowTTL sets a TTL that survives to the monitoring point but dies
// before the endhost.
func mutLowTTL(p *packet.Packet) {
	p.IP.TTL = 1
	_ = p.FixChecksums()
}

// mutMD5 appends a TCP MD5 signature option; wellFormed selects a 16-byte
// digest (structurally valid but unsolicited — still dropped by endhosts
// with no key) versus a truncated digest.
func mutMD5(wellFormed bool) func(*packet.Packet) {
	n := 16
	if !wellFormed {
		n = 4
	}
	return func(p *packet.Packet) {
		p.TCP.Options = append(p.TCP.Options, packet.Option{Kind: packet.OptMD5, Data: make([]byte, n)})
		refit(p)
	}
}

// mutBadUTO appends a malformed User-Timeout option.
func mutBadUTO(p *packet.Packet) {
	p.TCP.Options = append(p.TCP.Options, packet.Option{Kind: packet.OptUserTimeout, Data: []byte{0xff}})
	refit(p)
}

// mutWScaleMidStream appends a Window-Scale option outside a SYN with an
// illegal shift.
func mutWScaleMidStream(p *packet.Packet) {
	p.TCP.Options = append(p.TCP.Options, packet.Option{Kind: packet.OptWindowScale, Data: []byte{40}})
	refit(p)
}

// mutBadDataOffset sets an impossible data offset (< 5 words).
func mutBadDataOffset(p *packet.Packet) {
	p.TCP.DataOffset = 2
	_ = p.FixChecksums()
}

// mutInvalidFlagsNull clears every flag.
func mutInvalidFlagsNull(p *packet.Packet) {
	p.TCP.Flags = 0
	_ = p.FixChecksums()
}

// mutInvalidFlagsSYNFIN sets the contradictory SYN|FIN combination.
func mutInvalidFlagsSYNFIN(p *packet.Packet) {
	p.TCP.Flags = packet.SYN | packet.FIN | packet.ACK
	_ = p.FixChecksums()
}

// mutBadIPLenLong forges an IP total length longer than the wire datagram.
func mutBadIPLenLong(p *packet.Packet) {
	p.IP.TotalLen += 240
	_ = p.FixChecksums()
}

// mutBadIPLenShort forges an IP total length shorter than the real headers.
func mutBadIPLenShort(p *packet.Packet) {
	p.IP.TotalLen = uint16(p.IP.HeaderLen() + 8)
	_ = p.FixChecksums()
}

// mutBadIHL sets an impossible IP header length.
func mutBadIHL(p *packet.Packet) {
	p.IP.IHL = 4
	_ = p.FixChecksums()
}

// mutBadIPVersion declares a non-existent IP version.
func mutBadIPVersion(p *packet.Packet) {
	p.IP.Version = 5
	_ = p.FixChecksums()
}

// mutUrgent plants a non-zero urgent pointer without URG semantics that
// strict stacks ignore but Snort's stream reassembly honours.
func mutUrgent(p *packet.Packet) {
	p.TCP.Urgent = 1
	_ = p.FixChecksums()
}

// mutBadPayloadLen breaks the payload-length equivalence relation: the IP
// total length claims more payload than the TCP stream will deliver.
func mutBadPayloadLen(p *packet.Packet) {
	p.IP.TotalLen += 64
	_ = p.FixChecksums()
}

// mutOldTimestamp rewrites (or adds) a Timestamps option with a TSval far
// in the past, failing PAWS at the endhost.
func mutOldTimestamp(p *packet.Packet) {
	p.TCP.RemoveOption(packet.OptTimestamps)
	d := make([]byte, 8)
	d[3] = 1
	p.TCP.Options = append(p.TCP.Options, packet.Option{Kind: packet.OptTimestamps, Data: d})
	refit(p)
}

// shadowCopy duplicates the packet at index idx and inserts the corrupted
// copy immediately before it, marking the copy adversarial. The copy's
// timestamp lands just before the original's.
func shadowCopy(c *flow.Connection, idx int, muts ...func(*packet.Packet)) int {
	p := c.Packets[idx].Clone()
	p.Timestamp = tsBetween(c, idx)
	for _, m := range muts {
		m(p)
	}
	at := c.InsertAt(idx, p, c.Dirs[idx])
	c.MarkAdversarial(at)
	return at
}

// injectAt inserts an attacker-crafted packet at index idx and marks it.
func injectAt(c *flow.Connection, idx int, p *packet.Packet, d flow.Direction) int {
	at := c.InsertAt(idx, p, d)
	c.MarkAdversarial(at)
	return at
}
