package attacks

import (
	"fmt"
	"math/rand"

	"clap/internal/flow"
	"clap/internal/packet"
)

// Liberate returns the 23 strategies reproduced from lib•erate [10] (Li et
// al., IMC 2017). These target DPI-based traffic classifiers: evasion
// packets are inserted immediately in front of the classifier's "matching
// packets" — the data packets examined after the handshake. Each base
// mechanism has a (Min) variant guarding a single matching packet and a
// (Max) variant guarding five, the two extremes the paper simulates (§4.2).
// "Invalid IP Version" appears only as (Min), per the paper's Table 8,
// giving 11×2+1 = 23.
func Liberate() []Strategy {
	type base struct {
		name    string
		cat     Category
		desc    string
		mut     func(rng *rand.Rand) []func(*packet.Packet)
		control packet.Flags // non-zero: inject a control packet instead of a shadow data packet
		seqSel  seqSel
		minOnly bool
	}
	bases := []base{
		{
			name: "Invalid IP Header Length", cat: CatIntra,
			desc: "Evasion packet with IHL=4 (<5 words): unparseable for kernels, parsed permissively by classifiers.",
			mut: func(*rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutBadIHL}
			},
		},
		{
			name: "Invalid IP Version", cat: CatIntra, minOnly: true,
			desc: "Evasion packet claiming IP version 5: dropped at the endhost's IP input path, classified by the DPI.",
			mut: func(*rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutBadIPVersion}
			},
		},
		{
			name: "Bad IP Length (Too Long)", cat: CatIntra,
			desc: "IP total length exceeding the wire datagram: endhosts drop the truncated packet, classifiers trust the header.",
			mut: func(*rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutBadIPLenLong}
			},
		},
		{
			name: "Bad IP Length (Too Short)", cat: CatIntra,
			desc: "IP total length shorter than the TCP header needs.",
			mut: func(*rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutBadIPLenShort}
			},
		},
		{
			name: "Low TTL", cat: CatInter,
			desc: "Decoy payload with TTL=1: it reaches the on-path classifier but expires before the server.",
			mut: func(*rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutLowTTL}
			},
		},
		{
			name: "RST w/ Low TTL #1", cat: CatInter, control: packet.RST, seqSel: seqExact,
			desc: "Exact-sequence RST that dies in transit: the classifier believes the flow ended and stops matching.",
			mut: func(*rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutLowTTL}
			},
		},
		{
			name: "RST w/ Low TTL #2", cat: CatInter, control: packet.RST | packet.ACK, seqSel: seqPlus(1),
			desc: "RST-ACK variant of the low-TTL teardown, sequenced one byte into the window.",
			mut: func(*rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutLowTTL}
			},
		},
		{
			name: "Data Packet wo/ ACK Flag", cat: CatIntra,
			desc: "Decoy payload without the ACK flag, dropped by strict stacks in ESTABLISHED.",
			mut: func(*rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){func(p *packet.Packet) {
					p.TCP.Flags &^= packet.ACK
					p.TCP.Ack = 0
					_ = p.FixChecksums()
				}}
			},
		},
		{
			name: "Invalid Data-Offset", cat: CatIntra,
			desc: "Decoy payload with data offset 2 words: structurally invalid TCP for kernels.",
			mut: func(*rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutBadDataOffset}
			},
		},
		{
			name: "Invalid Flags", cat: CatIntra,
			desc: "Decoy with the contradictory SYN|FIN|ACK flag combination.",
			mut: func(*rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutInvalidFlagsSYNFIN}
			},
		},
		{
			name: "Bad TCP Checksum", cat: CatIntra,
			desc: "Decoy payload with a garbled TCP checksum.",
			mut: func(rng *rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutBadTCPChecksum(rng)}
			},
		},
		{
			name: "Bad SEQ", cat: CatInter,
			desc: "Decoy payload sequenced far outside the receive window.",
			mut: func(rng *rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){func(p *packet.Packet) {
					p.TCP.Seq += 0x1800_0000 + uint32(rng.Intn(1<<20))
					_ = p.FixChecksums()
				}}
			},
		},
	}

	var out []Strategy
	for _, b := range bases {
		variants := []struct {
			label    string
			matching int
		}{{"Min", 1}, {"Max", 5}}
		if b.minOnly {
			variants = variants[:1]
		}
		for _, v := range variants {
			b := b
			matching := v.matching
			out = append(out, Strategy{
				Name:     fmt.Sprintf("%s (%s)", b.name, v.label),
				Source:   SourceLiberate,
				Category: b.cat,
				Description: fmt.Sprintf("%s Inserted before %d matching packet(s).",
					b.desc, matching),
				Apply: func(c *flow.Connection, rng *rand.Rand) bool {
					return applyLiberate(c, rng, matching, b.control, b.seqSel, b.mut(rng))
				},
			})
		}
	}
	return out
}

// applyLiberate injects one evasion packet in front of each of the first
// `matching` client data packets after the handshake. Control-packet bases
// (the RST teardowns) inject a single control packet before the first
// matching packet instead — once the classifier stops tracking, later
// matching packets need no per-packet cover.
func applyLiberate(c *flow.Connection, rng *rand.Rand, matching int,
	control packet.Flags, seq seqSel, muts []func(*packet.Packet)) bool {

	he := handshakeEnd(c)
	if he < 0 {
		return false
	}
	idxs := dataIndices(c, he, flow.ClientToServer)
	if len(idxs) == 0 {
		return false
	}
	if len(idxs) > matching {
		idxs = idxs[:matching]
	}

	if control != 0 {
		idx := idxs[0]
		cur := scan(c, idx)
		a, hasAck := uint32(0), control.Has(packet.ACK)
		if hasAck {
			a = cur.next[1]
		}
		p := craft(c, cur, flow.ClientToServer, tsBetween(c, idx), control, seq(cur, rng), a, 0)
		for _, m := range muts {
			m(p)
		}
		injectAt(c, idx, p, flow.ClientToServer)
		return true
	}

	// Shadow-decoy form: walk back-to-front so earlier indices stay valid.
	for k := len(idxs) - 1; k >= 0; k-- {
		idx := idxs[k]
		shadowCopy(c, idx, muts...)
	}
	return true
}
