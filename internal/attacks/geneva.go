package attacks

import (
	"math/rand"

	"clap/internal/flow"
	"clap/internal/packet"
)

// Geneva returns the 20 strategies reproduced from Geneva [4] (Bock et al.,
// CCS 2019), whose genetic search evolved packet-manipulation programs
// against the GFW. Two shapes dominate the evolved population and both are
// reproduced here:
//
//   - TCB-teardown species: one crafted control packet (RST / RST-ACK /
//     SYN-ACK) injected after the handshake with a second corruption that
//     hides it from the endhost;
//   - tamper-duplicate species: every data packet (capped at the first
//     five, Geneva's default sleep/window) is preceded by a corrupted
//     duplicate that poisons the censor's reassembly.
//
// Names follow Figure 9's two-line convention: first and second
// modification, "/" when the strategy has a single modification.
func Geneva() []Strategy {
	mk := func(name string, cat Category, desc string, apply func(*flow.Connection, *rand.Rand) bool) Strategy {
		return Strategy{Name: name, Source: SourceGeneva, Category: cat, Description: desc, Apply: apply}
	}
	return []Strategy{
		// ---- TCB teardown species.
		mk("Injected RST / Low TTL", CatInter,
			"TCB teardown: exact-sequence RST with TTL=1 after the handshake.",
			genevaControl(packet.RST, seqExact, false, mutLowTTL)),
		mk("Injected RST-ACK / Bad TCP Checksum", CatInter,
			"TCB teardown: RST-ACK whose checksum is garbled.",
			genevaControlRNG(packet.RST|packet.ACK, seqExact, true, func(rng *rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutBadTCPChecksum(rng)}
			})),
		mk("Injected RST-ACK / Low TTL", CatInter,
			"TCB teardown: RST-ACK that expires before the server.",
			genevaControl(packet.RST|packet.ACK, seqExact, true, mutLowTTL)),
		mk("Injected SYN-ACK / Bad TCP MD5-Option", CatInter,
			"TCB desync: mid-stream SYN-ACK with an unsolicited MD5 option re-keys the censor's TCB.",
			genevaControl(packet.SYN|packet.ACK, seqFar, true, mutMD5(true))),
		mk("Injected RST / Bad IP Length", CatIntra,
			"TCB teardown: RST whose IP total length overruns the datagram.",
			genevaControl(packet.RST, seqExact, false, mutBadIPLenLong)),
		mk("Injected RST / Bad TCP Checksum", CatIntra,
			"TCB teardown: bare RST with a garbled checksum.",
			genevaControlRNG(packet.RST, seqExact, false, func(rng *rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutBadTCPChecksum(rng)}
			})),
		mk("Bad TCP MD5-Option / Injected RST", CatIntra,
			"TCB teardown: RST carrying an MD5 signature option.",
			genevaControl(packet.RST, seqExact, false, mutMD5(true))),

		// ---- Tamper-duplicate species.
		mk("Invalid Data-Offset / Bad TCP Checksum", CatIntra,
			"Every data packet is preceded by a duplicate with data offset 2 and a garbled checksum.",
			genevaShadowRNG(func(rng *rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutBadDataOffset, mutBadTCPChecksum(rng)}
			})),
		mk("Invalid Data-Offset / Low TTL", CatIntra,
			"Duplicate with data offset 2 and TTL=1.",
			genevaShadow(mutBadDataOffset, mutLowTTL)),
		mk("Invalid Data-Offset / Bad ACK Num", CatIntra,
			"Duplicate with data offset 2 acknowledging unsent data.",
			genevaShadowRNG(func(rng *rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutBadDataOffset, mutBadAckNum(rng)}
			})),
		mk("Invalid Flags #1 / Bad TCP Checksum", CatIntra,
			"Duplicate with a null flag byte and garbled checksum.",
			genevaShadowRNG(func(rng *rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutInvalidFlagsNull, mutBadTCPChecksum(rng)}
			})),
		mk("Invalid Flags #2 / Low TTL", CatIntra,
			"Duplicate with SYN|FIN|ACK and TTL=1.",
			genevaShadow(mutInvalidFlagsSYNFIN, mutLowTTL)),
		mk("Invalid Flags #2 / Bad TCP MD5-Option", CatIntra,
			"Duplicate with SYN|FIN|ACK carrying an MD5 option.",
			genevaShadow(mutInvalidFlagsSYNFIN, mutMD5(true))),
		mk("Bad TCP UTO-Option / Bad TCP MD5-Option", CatIntra,
			"Duplicate with a malformed User-Timeout option and a truncated MD5 digest.",
			genevaShadow(mutBadUTO, mutMD5(false))),
		mk("Invalid TCP WScale-Option / Invalid Data-Offset", CatIntra,
			"Duplicate advertising an illegal mid-stream window scale with a corrupt data offset.",
			genevaShadow(mutWScaleMidStream, mutBadDataOffset)),
		mk("Bad Payload Length / Bad TCP Checksum", CatIntra,
			"Duplicate whose IP length claims extra payload, checksum garbled.",
			genevaShadowRNG(func(rng *rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutBadPayloadLen, mutBadTCPChecksum(rng)}
			})),
		mk("Bad Payload Length / Low TTL", CatIntra,
			"Length-forged duplicate that expires before the server.",
			genevaShadow(mutBadPayloadLen, mutLowTTL)),
		mk("Bad Payload Length / Bad ACK Num", CatIntra,
			"Length-forged duplicate acknowledging unsent data.",
			genevaShadowRNG(func(rng *rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutBadPayloadLen, mutBadAckNum(rng)}
			})),
		mk("Bad Payload Length / ", CatIntra,
			"Single modification: payload-length forgery alone.",
			genevaShadow(mutBadPayloadLen)),
		mk("Bad IP Length / ", CatIntra,
			"Single modification: IP total length forgery alone.",
			genevaShadow(mutBadIPLenShort)),
	}
}

// mutBadAckNum acknowledges data the peer never sent.
func mutBadAckNum(rng *rand.Rand) func(*packet.Packet) {
	return func(p *packet.Packet) {
		p.TCP.Flags |= packet.ACK
		p.TCP.Ack += 0x00e0_0000 + uint32(rng.Intn(1<<20))
		_ = p.FixChecksums()
	}
}

// genevaDataCap bounds how many data packets the tamper-duplicate species
// shadows per connection.
const genevaDataCap = 5

// genevaControl injects one crafted control packet right after the
// handshake with fixed mutators.
func genevaControl(flags packet.Flags, seq seqSel, withAck bool, muts ...func(*packet.Packet)) func(*flow.Connection, *rand.Rand) bool {
	return genevaControlRNG(flags, seq, withAck, func(*rand.Rand) []func(*packet.Packet) { return muts })
}

func genevaControlRNG(flags packet.Flags, seq seqSel, withAck bool,
	muts func(*rand.Rand) []func(*packet.Packet)) func(*flow.Connection, *rand.Rand) bool {

	return func(c *flow.Connection, rng *rand.Rand) bool {
		he := handshakeEnd(c)
		if he < 0 {
			return false
		}
		cur := scan(c, he)
		var a uint32
		f := flags
		if withAck {
			a = cur.next[1]
		} else {
			f &^= packet.ACK
		}
		p := craft(c, cur, flow.ClientToServer, tsBetween(c, he), f, seq(cur, rng), a, 0)
		for _, m := range muts(rng) {
			m(p)
		}
		injectAt(c, he, p, flow.ClientToServer)
		return true
	}
}

// genevaShadow precedes each of the first genevaDataCap client data packets
// with a corrupted duplicate.
func genevaShadow(muts ...func(*packet.Packet)) func(*flow.Connection, *rand.Rand) bool {
	return genevaShadowRNG(func(*rand.Rand) []func(*packet.Packet) { return muts })
}

func genevaShadowRNG(muts func(*rand.Rand) []func(*packet.Packet)) func(*flow.Connection, *rand.Rand) bool {
	return func(c *flow.Connection, rng *rand.Rand) bool {
		he := handshakeEnd(c)
		if he < 0 {
			return false
		}
		idxs := dataIndices(c, he, flow.ClientToServer)
		if len(idxs) == 0 {
			return false
		}
		if len(idxs) > genevaDataCap {
			idxs = idxs[:genevaDataCap]
		}
		ms := muts(rng)
		for k := len(idxs) - 1; k >= 0; k-- {
			shadowCopy(c, idxs[k], ms...)
		}
		return true
	}
}
