package attacks

import (
	"math/rand"

	"clap/internal/flow"
	"clap/internal/packet"
)

// SymTCP returns the 30 strategies reproduced from SymTCP [23] (Wang et
// al., NDSS 2020), which discovered them by symbolic execution against
// Zeek, Snort and the GFW. Naming follows the paper's Figures 7/10: the
// target DPI, the key packet type, and the header manipulation.
func SymTCP() []Strategy {
	c2s := flow.ClientToServer
	return []Strategy{
		// ---- Shadow copies of data packets (the "Data Packet (ACK)" family).
		{
			Name: "Zeek: Data Packet (ACK) Bad SEQ", Source: SourceSymTCP, Category: CatInter,
			Description: "Shadow copy of a data packet with a far out-of-window SEQ: Zeek ingests it into the stream, the endhost discards it.",
			Apply: func(c *flow.Connection, rng *rand.Rand) bool {
				return applyShadowData(c, rng, func(p *packet.Packet, cur cursor) {
					p.TCP.Seq += 0x2000_0000 + uint32(rng.Intn(1<<20))
					_ = p.FixChecksums()
				})
			},
		},
		{
			Name: "GFW: Data Packet (ACK) Bad TCP-Checksum/MD5-Option", Source: SourceSymTCP, Category: CatInter,
			Description: "Shadow data packet carrying an MD5 option and a garbled checksum: the GFW validates neither, the endhost both.",
			Apply: func(c *flow.Connection, rng *rand.Rand) bool {
				return applyShadowData(c, rng, func(p *packet.Packet, cur cursor) {
					mutMD5(true)(p)
					mutBadTCPChecksum(rng)(p)
				})
			},
		},
		{
			Name: "GFW: Data Packet (ACK) wo/ ACK Flag", Source: SourceSymTCP, Category: CatInter,
			Description: "Shadow data packet without the ACK flag: strict stacks drop established-state segments lacking ACK; the GFW inspects them.",
			Apply: func(c *flow.Connection, rng *rand.Rand) bool {
				return applyShadowData(c, rng, func(p *packet.Packet, cur cursor) {
					p.TCP.Flags &^= packet.ACK
					p.TCP.Ack = 0
					_ = p.FixChecksums()
				})
			},
		},
		{
			Name: "Zeek: Data Packet (ACK) wo/ ACK Flag", Source: SourceSymTCP, Category: CatInter,
			Description: "As above, shaped for Zeek's reassembler, which also accepts ACK-less data.",
			Apply: func(c *flow.Connection, rng *rand.Rand) bool {
				return applyShadowDataNth(c, rng, 1, func(p *packet.Packet, cur cursor) {
					p.TCP.Flags &^= packet.ACK
					p.TCP.Ack = 0
					_ = p.FixChecksums()
				})
			},
		},
		{
			Name: "Zeek: Data Packet (ACK) Bad ACK Num", Source: SourceSymTCP, Category: CatInter,
			Description: "Shadow data packet acknowledging data the server never sent: endhosts drop unacceptable ACKs, Zeek does not model them.",
			Apply: func(c *flow.Connection, rng *rand.Rand) bool {
				return applyShadowData(c, rng, func(p *packet.Packet, cur cursor) {
					p.TCP.Ack = cur.next[1] + 0x0100_0000 + uint32(rng.Intn(1<<16))
					_ = p.FixChecksums()
				})
			},
		},
		{
			Name: "Zeek: Data Packet (ACK) Overlapping", Source: SourceSymTCP, Category: CatInter,
			Description: "Shadow segment overlapping already-delivered bytes with different content: Zeek keeps the first copy, endhosts keep theirs.",
			Apply: func(c *flow.Connection, rng *rand.Rand) bool {
				he := handshakeEnd(c)
				if he < 0 {
					return false
				}
				for _, idx := range dataIndices(c, he, c2s) {
					p := c.Packets[idx]
					if p.PayloadLen < 64 {
						continue
					}
					shadowCopy(c, idx, func(q *packet.Packet) {
						q.TCP.Seq -= 48 // reach back into delivered data
						_ = q.FixChecksums()
					})
					return true
				}
				return false
			},
		},
		{
			Name: "GFW: Data Packet (ACK) Underflow SEQ", Source: SourceSymTCP, Category: CatIntra,
			Description: "Shadow data packet whose SEQ underflows below the ISN; the GFW's relative-sequence arithmetic wraps, the endhost discards.",
			Apply: func(c *flow.Connection, rng *rand.Rand) bool {
				return applyShadowData(c, rng, func(p *packet.Packet, cur cursor) {
					// Underflow far enough that the segment cannot overlap
					// back into the live window.
					p.TCP.Seq = cur.isn[0] - uint32(p.PayloadLen+100+rng.Intn(900))
					_ = p.FixChecksums()
				})
			},
		},
		{
			Name: "Zeek: Data Packet (ACK) Underflow SEQ", Source: SourceSymTCP, Category: CatIntra,
			Description: "Underflow-SEQ shadow segment shaped for Zeek.",
			Apply: func(c *flow.Connection, rng *rand.Rand) bool {
				return applyShadowDataNth(c, rng, 1, func(p *packet.Packet, cur cursor) {
					p.TCP.Seq = cur.isn[0] - uint32(p.PayloadLen+1000+rng.Intn(4000))
					_ = p.FixChecksums()
				})
			},
		},
		{
			Name: "Snort: Data Packet (ACK) w/ Urgent Pointer", Source: SourceSymTCP, Category: CatIntra,
			Description: "In-place modification: a non-zero urgent pointer without URG. Snort's reassembly skips the 'urgent' byte, endhosts deliver it.",
			Apply: func(c *flow.Connection, rng *rand.Rand) bool {
				he := handshakeEnd(c)
				if he < 0 {
					return false
				}
				idxs := dataIndices(c, he, c2s)
				if len(idxs) == 0 {
					return false
				}
				mutUrgent(c.Packets[idxs[0]])
				c.MarkAdversarial(idxs[0])
				return true
			},
		},

		// ---- Injected FIN family (teardown of DPI tracking).
		injectedControl("GFW: Injected FIN-ACK Bad ACK Num", CatInter,
			"FIN-ACK with an unacceptable ACK injected post-handshake: GFW marks the flow finished, the endhost drops the segment.",
			packet.FIN|packet.ACK, posAfterHandshake, seqExact, ackGarbage, nil),
		injectedControl("Snort: Injected FIN-ACK Bad ACK Num", CatInter,
			"As above against Snort's stream5 pruning.",
			packet.FIN|packet.ACK, posBeforeData, seqExact, ackGarbage, nil),
		injectedControl("GFW: Injected FIN-ACK Bad TCP-Checksum/MD5-Option", CatInter,
			"FIN-ACK with garbled checksum plus MD5 option: GFW tears down, endhost validates and drops.",
			packet.FIN|packet.ACK, posAfterHandshake, seqExact, ackExact,
			func(rng *rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutMD5(true), mutBadTCPChecksum(rng)}
			}),
		injectedControl("Snort: Injected FIN-ACK Bad TCP MD5-Option", CatInter,
			"FIN-ACK carrying an unsolicited MD5 signature option: Snort ignores the option, endhosts discard the segment.",
			packet.FIN|packet.ACK, posBeforeData, seqExact, ackExact,
			func(rng *rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutMD5(true)}
			}),
		injectedControl("GFW: Injected FIN w/ Payload", CatInter,
			"FIN carrying payload, sequenced just past the in-order point: the endhost buffers it as out-of-order, the GFW processes the FIN immediately.",
			packet.FIN|packet.ACK, posAfterHandshake, seqPlus(8), ackExact,
			func(rng *rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){func(p *packet.Packet) {
					p.PayloadLen = 32
					refit(p)
				}}
			}),
		injectedControl("Snort: Injected FIN Pure", CatInter,
			"Bare in-window FIN ahead of the in-order point: Snort acts on it, the endhost only queues it.",
			packet.FIN|packet.ACK, posBeforeData, seqPlus(2), ackExact, nil),
		injectedControl("Zeek: Injected FIN Pure", CatInter,
			"As above against Zeek's connection-state machine.",
			packet.FIN|packet.ACK, posAfterHandshake, seqPlus(2), ackExact, nil),

		// ---- Injected RST family.
		injectedControl("GFW: Injected RST Bad Timestamp", CatInter,
			"RST with a PAWS-stale timestamp injected in SYN_RECV: GFW disengages, endhost drops by PAWS.",
			packet.RST, posSynRecv, seqExact, ackNone,
			func(rng *rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutOldTimestamp}
			}),
		injectedControl("Snort: Injected RST Bad Timestamp", CatInter,
			"As above, against Snort.",
			packet.RST, posSynRecv, seqExact, ackNone,
			func(rng *rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutOldTimestamp}
			}),
		injectedControl("GFW: Injected RST Bad TCP-Checksum/MD5-Option", CatInter,
			"The paper's motivating example: a garbled-checksum RST (plus MD5 option) that only the GFW believes.",
			packet.RST, posAfterHandshake, seqExact, ackNone,
			func(rng *rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutMD5(true), mutBadTCPChecksum(rng)}
			}),
		injectedControl("Snort: Injected RST Pure", CatInter,
			"In-window RST above RCV.NXT: Snort (pre-RFC 5961) resets tracking, endhosts challenge-ACK and ignore.",
			packet.RST, posBeforeData, seqPlus(2), ackNone, nil),
		injectedControl("Snort: Injected RST Partial In-Window", CatInter,
			"RST straddling the left window edge (SEQ = RCV.NXT − 1): accepted by window-based checks only.",
			packet.RST, posBeforeData, seqMinus(1), ackNone, nil),
		injectedControl("Snort: Injected RST Bad TCP MD5-Option", CatInter,
			"RST with an unsolicited MD5 signature option.",
			packet.RST, posBeforeData, seqExact, ackNone,
			func(rng *rand.Rand) []func(*packet.Packet) {
				return []func(*packet.Packet){mutMD5(true)}
			}),
		injectedControl("GFW: Injected RST-ACK Bad ACK Num", CatInter,
			"RST-ACK in SYN_RECV whose ACK number does not acknowledge the SYN: GFW only keys on the RST bit, the endhost requires an exact acknowledgment mid-handshake.",
			packet.RST|packet.ACK, posSynRecv, seqExact, ackGarbage, nil),
		injectedControl("Snort: Injected RST-ACK Bad ACK Num", CatInter,
			"As above against Snort.",
			packet.RST|packet.ACK, posSynRecv, seqExact, ackGarbage, nil),
		injectedControl("Zeek: Injected RST/FIN-ACK Bad SEQ", CatInter,
			"RST far outside the window: Zeek tears down its connection object regardless of sequence plausibility.",
			packet.RST|packet.ACK, posAfterHandshake, seqFar, ackExact, nil),

		// ---- SYN-based desynchronisation.
		{
			Name: "Zeek: SYN w/ Payload", Source: SourceSymTCP, Category: CatInter,
			Description: "The client's real SYN is given a small payload: Zeek mis-tracks the initial sequence offset, endhosts queue SYN data normally.",
			Apply: func(c *flow.Connection, rng *rand.Rand) bool {
				if c.Len() == 0 || !c.Packets[0].TCP.Flags.Has(packet.SYN) || c.Packets[0].TCP.Flags.Has(packet.ACK) {
					return false
				}
				he := handshakeEnd(c)
				if he < 0 {
					return false
				}
				idxs := dataIndices(c, he, c2s)
				if len(idxs) == 0 || c.Packets[idxs[0]].PayloadLen < 8 {
					return false
				}
				syn := c.Packets[0]
				syn.PayloadLen = 4
				refit(syn)
				c.MarkAdversarial(0)
				return true
			},
		},
		{
			Name: "GFW #1: SYN w/ Payload & Bad SEQ", Source: SourceSymTCP, Category: CatInter,
			Description: "A decoy SYN with payload and an unrelated ISN injected after the handshake: the GFW resynchronises to it, the endhost challenge-ACKs.",
			Apply: func(c *flow.Connection, rng *rand.Rand) bool {
				he := handshakeEnd(c)
				if he < 0 {
					return false
				}
				cur := scan(c, he)
				p := craft(c, cur, c2s, tsBetween(c, he), packet.SYN,
					cur.isn[0]+0x1357_0000+uint32(rng.Intn(1<<16)), 0, 40)
				injectAt(c, he, p, c2s)
				return true
			},
		},
		{
			Name: "GFW #2: SYN w/ Payload & Bad SEQ", Source: SourceSymTCP, Category: CatInter,
			Description: "The decoy SYN is injected mid-handshake (between SYN and SYN-ACK), desynchronising trackers that adopt the latest SYN.",
			Apply: func(c *flow.Connection, rng *rand.Rand) bool {
				if handshakeEnd(c) < 0 {
					return false
				}
				cur := scan(c, 1)
				p := craft(c, cur, c2s, tsBetween(c, 1), packet.SYN,
					cur.isn[0]+0x0246_8000+uint32(rng.Intn(1<<16)), 0, 40)
				injectAt(c, 1, p, c2s)
				return true
			},
		},
		{
			Name: "Snort: SYN Multiple (SYN)", Source: SourceSymTCP, Category: CatInter,
			Description: "A second SYN with a different ISN right behind the real one: Snort re-keys its stream to the newest SYN, the endhost keeps the first.",
			Apply: func(c *flow.Connection, rng *rand.Rand) bool {
				return applySynMultiple(c, rng, 0x0001_0000)
			},
		},
		{
			Name: "Zeek: SYN Multiple (SYN)", Source: SourceSymTCP, Category: CatInter,
			Description: "As above against Zeek.",
			Apply: func(c *flow.Connection, rng *rand.Rand) bool {
				return applySynMultiple(c, rng, 0x00ab_0000)
			},
		},
	}
}

// applyShadowData shadows the first client data packet after the handshake.
func applyShadowData(c *flow.Connection, rng *rand.Rand, mut func(*packet.Packet, cursor)) bool {
	return applyShadowDataNth(c, rng, 0, mut)
}

// applyShadowDataNth shadows the nth (0-based) eligible data packet,
// falling back to the last available one.
func applyShadowDataNth(c *flow.Connection, rng *rand.Rand, n int, mut func(*packet.Packet, cursor)) bool {
	he := handshakeEnd(c)
	if he < 0 {
		return false
	}
	idxs := dataIndices(c, he, flow.ClientToServer)
	if len(idxs) == 0 {
		return false
	}
	if n >= len(idxs) {
		n = len(idxs) - 1
	}
	idx := idxs[n]
	cur := scan(c, idx)
	shadowCopy(c, idx, func(p *packet.Packet) { mut(p, cur) })
	return true
}

// applySynMultiple injects a decoy SYN right after the genuine one.
func applySynMultiple(c *flow.Connection, rng *rand.Rand, isnOffset uint32) bool {
	if handshakeEnd(c) < 0 {
		return false
	}
	cur := scan(c, 1)
	p := craft(c, cur, flow.ClientToServer, tsBetween(c, 1), packet.SYN,
		cur.isn[0]+isnOffset+uint32(rng.Intn(1<<12)), 0, 0)
	injectAt(c, 1, p, flow.ClientToServer)
	return true
}

// Position selectors for injected control packets.
type position int

const (
	posAfterHandshake position = iota // immediately after ESTABLISHED
	posBeforeData                     // just before the first client data packet
	posSynRecv                        // during SYN_RECV (before the final handshake ACK)
)

// Sequence selectors.
type seqSel func(cur cursor, rng *rand.Rand) uint32

func seqExact(cur cursor, _ *rand.Rand) uint32 { return cur.next[0] }
func seqFar(cur cursor, rng *rand.Rand) uint32 {
	return cur.next[0] + 0x0100_0000 + uint32(rng.Intn(1<<20))
}
func seqPlus(n uint32) seqSel {
	return func(cur cursor, _ *rand.Rand) uint32 { return cur.next[0] + n }
}
func seqMinus(n uint32) seqSel {
	return func(cur cursor, _ *rand.Rand) uint32 { return cur.next[0] - n }
}

// Ack selectors.
type ackSel func(cur cursor, rng *rand.Rand) (uint32, bool)

func ackExact(cur cursor, _ *rand.Rand) (uint32, bool) { return cur.next[1], true }
func ackNone(cursor, *rand.Rand) (uint32, bool)        { return 0, false }
func ackGarbage(cur cursor, rng *rand.Rand) (uint32, bool) {
	return cur.next[1] + 0x00c0_0000 + uint32(rng.Intn(1<<20)), true
}

// injectedControl builds the common SymTCP pattern: one crafted control
// packet (RST/FIN variants) from the client side at a state-dependent
// position.
func injectedControl(name string, cat Category, desc string, flags packet.Flags,
	pos position, seq seqSel, ack ackSel,
	muts func(rng *rand.Rand) []func(*packet.Packet)) Strategy {

	return Strategy{
		Name: name, Source: SourceSymTCP, Category: cat, Description: desc,
		Apply: func(c *flow.Connection, rng *rand.Rand) bool {
			he := handshakeEnd(c)
			if he < 0 {
				return false
			}
			idx := he
			switch pos {
			case posBeforeData:
				if idxs := dataIndices(c, he, flow.ClientToServer); len(idxs) > 0 {
					idx = idxs[0]
				}
			case posSynRecv:
				idx = he - 1 // before the handshake-completing ACK
				if idx < 2 {
					return false
				}
			}
			cur := scan(c, idx)
			var mutList []func(*packet.Packet)
			if muts != nil {
				mutList = muts(rng)
			}
			// The Bad-Timestamp strategies — the only posSynRecv users with
			// mutators — rely on PAWS, so the connection must have
			// negotiated timestamps.
			if pos == posSynRecv && mutList != nil && (!cur.tsSeen[0] || !cur.tsSeen[1]) {
				return false
			}
			s := seq(cur, rng)
			a, hasAck := ack(cur, rng)
			f := flags
			if !hasAck {
				f &^= packet.ACK
			}
			p := craft(c, cur, flow.ClientToServer, tsBetween(c, idx), f, s, a, 0)
			for _, m := range mutList {
				m(p)
			}
			injectAt(c, idx, p, flow.ClientToServer)
			return true
		},
	}
}
