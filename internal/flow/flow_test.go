package flow

import (
	"testing"
	"time"

	"clap/internal/packet"
)

var (
	cIP = [4]byte{10, 0, 0, 1}
	sIP = [4]byte{192, 0, 2, 1}
)

func mkPkt(src, dst [4]byte, sp, dp uint16, flags packet.Flags, seq uint32, at time.Duration) *packet.Packet {
	return packet.NewBuilder(src, dst, sp, dp).Seq(seq).Flags(flags).
		Time(time.Unix(1600000000, 0).Add(at)).Build()
}

func handshake(sp uint16, at time.Duration) []*packet.Packet {
	return []*packet.Packet{
		mkPkt(cIP, sIP, sp, 80, packet.SYN, 100, at),
		mkPkt(sIP, cIP, 80, sp, packet.SYN|packet.ACK, 300, at+time.Millisecond),
		mkPkt(cIP, sIP, sp, 80, packet.ACK, 101, at+2*time.Millisecond),
	}
}

func TestAssembleSingleConnection(t *testing.T) {
	pkts := handshake(1234, 0)
	conns := Assemble(pkts)
	if len(conns) != 1 {
		t.Fatalf("got %d connections, want 1", len(conns))
	}
	c := conns[0]
	if c.Len() != 3 {
		t.Fatalf("connection has %d packets, want 3", c.Len())
	}
	wantDirs := []Direction{ClientToServer, ServerToClient, ClientToServer}
	for i, d := range c.Dirs {
		if d != wantDirs[i] {
			t.Errorf("Dirs[%d] = %v, want %v", i, d, wantDirs[i])
		}
	}
	if c.Key.Client.Port != 1234 || c.Key.Server.Port != 80 {
		t.Errorf("Key = %v, want client :1234 server :80", c.Key)
	}
}

func TestAssembleInterleavedConnections(t *testing.T) {
	a := handshake(1111, 0)
	b := handshake(2222, time.Microsecond)
	var mixed []*packet.Packet
	for i := range a {
		mixed = append(mixed, a[i], b[i])
	}
	conns := Assemble(mixed)
	if len(conns) != 2 {
		t.Fatalf("got %d connections, want 2", len(conns))
	}
	for _, c := range conns {
		if c.Len() != 3 {
			t.Errorf("connection %v has %d packets, want 3", c.Key, c.Len())
		}
	}
}

func TestAssemblePortReuseAfterRST(t *testing.T) {
	first := handshake(1234, 0)
	first = append(first, mkPkt(cIP, sIP, 1234, 80, packet.RST, 101, 3*time.Millisecond))
	second := handshake(1234, time.Second)
	conns := Assemble(append(first, second...))
	if len(conns) != 2 {
		t.Fatalf("got %d connections, want 2 (port reuse after RST)", len(conns))
	}
	if conns[0].Len() != 4 || conns[1].Len() != 3 {
		t.Errorf("lens = %d,%d want 4,3", conns[0].Len(), conns[1].Len())
	}
}

func TestAssembleMidStreamCapture(t *testing.T) {
	// No SYN: first sender becomes the client.
	pkts := []*packet.Packet{
		mkPkt(sIP, cIP, 80, 9999, packet.ACK|packet.PSH, 500, 0),
		mkPkt(cIP, sIP, 9999, 80, packet.ACK, 100, time.Millisecond),
	}
	conns := Assemble(pkts)
	if len(conns) != 1 {
		t.Fatalf("got %d connections, want 1", len(conns))
	}
	if conns[0].Key.Client.Port != 80 {
		t.Errorf("mid-stream client port = %d, want 80 (first sender)", conns[0].Key.Client.Port)
	}
	if conns[0].Dirs[1] != ServerToClient {
		t.Errorf("second packet direction = %v, want ServerToClient", conns[0].Dirs[1])
	}
}

func TestInsertAtShiftsAdvIdx(t *testing.T) {
	conns := Assemble(handshake(1234, 0))
	c := conns[0]
	c.MarkAdversarial(1)
	p := mkPkt(cIP, sIP, 1234, 80, packet.RST, 101, time.Millisecond)
	idx := c.InsertAt(1, p, ClientToServer)
	if idx != 1 {
		t.Fatalf("InsertAt returned %d, want 1", idx)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	if len(c.AdvIdx) != 1 || c.AdvIdx[0] != 2 {
		t.Errorf("AdvIdx = %v, want [2] (shifted)", c.AdvIdx)
	}
	if c.Packets[1] != p {
		t.Error("inserted packet not at index 1")
	}
}

func TestInsertAtClamps(t *testing.T) {
	conns := Assemble(handshake(1234, 0))
	c := conns[0]
	p := mkPkt(cIP, sIP, 1234, 80, packet.ACK, 101, time.Millisecond)
	if idx := c.InsertAt(-5, p, ClientToServer); idx != 0 {
		t.Errorf("InsertAt(-5) = %d, want 0", idx)
	}
	if idx := c.InsertAt(99, p, ClientToServer); idx != c.Len()-1 {
		t.Errorf("InsertAt(99) = %d, want %d", idx, c.Len()-1)
	}
}

func TestMarkAdversarialDedupAndSort(t *testing.T) {
	c := &Connection{}
	c.MarkAdversarial(5)
	c.MarkAdversarial(2)
	c.MarkAdversarial(5)
	if len(c.AdvIdx) != 2 || c.AdvIdx[0] != 2 || c.AdvIdx[1] != 5 {
		t.Errorf("AdvIdx = %v, want [2 5]", c.AdvIdx)
	}
	if !c.IsAdversarial() {
		t.Error("IsAdversarial should be true")
	}
}

func TestCloneIndependence(t *testing.T) {
	conns := Assemble(handshake(1234, 0))
	c := conns[0]
	c.AttackName = "orig"
	c.Tenant = "edge"
	d := c.Clone()
	d.Packets[0].TCP.Seq = 42
	d.MarkAdversarial(0)
	d.AttackName = "copy"
	d.Tenant = "other"
	if c.Packets[0].TCP.Seq == 42 {
		t.Error("Clone shares packets")
	}
	if c.IsAdversarial() {
		t.Error("Clone shares AdvIdx")
	}
	if c.AttackName != "orig" {
		t.Error("Clone shares AttackName")
	}
	if c.Tenant != "edge" {
		t.Error("Clone shares Tenant")
	}
	if e := c.Clone(); e.Tenant != "edge" {
		t.Errorf("Clone dropped Tenant: got %q", e.Tenant)
	}
}

func TestFlattenSortsByTimestamp(t *testing.T) {
	a := handshake(1111, 0)
	b := handshake(2222, time.Microsecond)
	conns := Assemble(append(append([]*packet.Packet{}, a...), b...))
	flat := Flatten(conns)
	if len(flat) != 6 {
		t.Fatalf("flatten returned %d packets, want 6", len(flat))
	}
	for i := 1; i < len(flat); i++ {
		if flat[i].Timestamp.Before(flat[i-1].Timestamp) {
			t.Fatalf("packets not time ordered at %d", i)
		}
	}
}

func TestCensus(t *testing.T) {
	conns := Assemble(append(handshake(1111, 0), handshake(2222, time.Second)...))
	conns[0].MarkAdversarial(1)
	s := Census(conns)
	if s.Connections != 2 || s.Packets != 6 || s.Adversarial != 1 {
		t.Errorf("Census = %+v, want {2 6 1}", s)
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Client: Endpoint{IP: cIP, Port: 5}, Server: Endpoint{IP: sIP, Port: 80}}
	want := "10.0.0.1:5 > 192.0.2.1:80"
	if got := k.String(); got != want {
		t.Errorf("Key.String() = %q, want %q", got, want)
	}
	if k.Reverse().Client.Port != 80 {
		t.Error("Reverse should swap endpoints")
	}
}

func TestDirectionString(t *testing.T) {
	if ClientToServer.String() != ">" || ServerToClient.String() != "<" {
		t.Error("Direction.String mismatch")
	}
}

func TestAssembleSYNWithoutCloseDoesNotSplit(t *testing.T) {
	// A retransmitted SYN on a live (unclosed) connection must stay in the
	// same connection object.
	pkts := handshake(1234, 0)
	dup := mkPkt(cIP, sIP, 1234, 80, packet.SYN, 100, 3*time.Millisecond)
	pkts = append(pkts, dup)
	conns := Assemble(pkts)
	if len(conns) != 1 {
		t.Fatalf("got %d connections, want 1 (no split without close)", len(conns))
	}
	if conns[0].Len() != 4 {
		t.Fatalf("got %d packets, want 4", conns[0].Len())
	}
}

func TestFlattenEmpty(t *testing.T) {
	if got := Flatten(nil); len(got) != 0 {
		t.Errorf("Flatten(nil) returned %d packets", len(got))
	}
}
