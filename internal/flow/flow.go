// Package flow groups packets into TCP connections and orients them
// client→server, the unit of analysis for CLAP: every context profile,
// adversarial score and localization verdict is per-connection.
package flow

import (
	"fmt"
	"sort"

	"clap/internal/packet"
)

// Direction orients a packet within its connection.
type Direction uint8

// Directions relative to the connection initiator (client).
const (
	ClientToServer Direction = iota
	ServerToClient
)

// String returns ">" for client→server and "<" for server→client.
func (d Direction) String() string {
	if d == ClientToServer {
		return ">"
	}
	return "<"
}

// Endpoint is one side of a connection.
type Endpoint struct {
	IP   [4]byte
	Port uint16
}

// Key identifies a connection oriented client→server.
type Key struct {
	Client Endpoint
	Server Endpoint
}

// String renders the key as "a.b.c.d:p > a.b.c.d:p".
func (k Key) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d > %d.%d.%d.%d:%d",
		k.Client.IP[0], k.Client.IP[1], k.Client.IP[2], k.Client.IP[3], k.Client.Port,
		k.Server.IP[0], k.Server.IP[1], k.Server.IP[2], k.Server.IP[3], k.Server.Port)
}

// Reverse swaps client and server.
func (k Key) Reverse() Key { return Key{Client: k.Server, Server: k.Client} }

// keyOf extracts the (src, dst) key of a single packet.
func keyOf(p *packet.Packet) Key {
	return Key{
		Client: Endpoint{IP: p.IP.SrcIP, Port: p.TCP.SrcPort},
		Server: Endpoint{IP: p.IP.DstIP, Port: p.TCP.DstPort},
	}
}

// Connection is a capture-ordered train of packets between two endpoints.
type Connection struct {
	Key     Key
	Packets []*packet.Packet
	// Dirs[i] orients Packets[i]; len(Dirs) == len(Packets).
	Dirs []Direction

	// Adversarial ground truth, populated by the attack simulator: indices
	// into Packets of injected or modified packets. Empty for benign
	// connections.
	AdvIdx []int
	// AttackName names the strategy applied, "" for benign connections.
	AttackName string

	// Tenant names the serving tenant this connection was ingested for
	// ("" outside multi-tenant serving). It rides the connection through
	// the shared scoring stream so per-connection pair resolution can pin
	// the owning tenant's (model, threshold).
	Tenant string

	// Source names the ingest source that delivered the connection ("
	// outside serving, or with tracing off). Provenance records carry it
	// so an operator can attribute a verdict to its capture point.
	Source string
	// TraceSampled marks a deterministic head-sampling hit decided at
	// delivery: the serving layer retains this connection's full
	// per-window error series even if it is not flagged.
	TraceSampled bool
}

// Len returns the number of packets.
func (c *Connection) Len() int { return len(c.Packets) }

// Append adds a packet with its direction.
func (c *Connection) Append(p *packet.Packet, d Direction) {
	c.Packets = append(c.Packets, p)
	c.Dirs = append(c.Dirs, d)
}

// Clone deep-copies the connection so attack strategies can mutate freely.
func (c *Connection) Clone() *Connection {
	out := &Connection{
		Key:          c.Key,
		Packets:      make([]*packet.Packet, len(c.Packets)),
		Dirs:         append([]Direction(nil), c.Dirs...),
		AdvIdx:       append([]int(nil), c.AdvIdx...),
		AttackName:   c.AttackName,
		Tenant:       c.Tenant,
		Source:       c.Source,
		TraceSampled: c.TraceSampled,
	}
	for i, p := range c.Packets {
		out.Packets[i] = p.Clone()
	}
	return out
}

// IsAdversarial reports whether ground truth marks any packet adversarial.
func (c *Connection) IsAdversarial() bool { return len(c.AdvIdx) > 0 }

// InsertAt inserts packet p with direction d before index i and shifts the
// adversarial ground-truth indices accordingly. It returns the index the
// packet landed on.
func (c *Connection) InsertAt(i int, p *packet.Packet, d Direction) int {
	if i < 0 {
		i = 0
	}
	if i > len(c.Packets) {
		i = len(c.Packets)
	}
	c.Packets = append(c.Packets, nil)
	copy(c.Packets[i+1:], c.Packets[i:])
	c.Packets[i] = p
	c.Dirs = append(c.Dirs, 0)
	copy(c.Dirs[i+1:], c.Dirs[i:])
	c.Dirs[i] = d
	for j, a := range c.AdvIdx {
		if a >= i {
			c.AdvIdx[j] = a + 1
		}
	}
	return i
}

// MarkAdversarial records index i as adversarial ground truth.
func (c *Connection) MarkAdversarial(i int) {
	for _, a := range c.AdvIdx {
		if a == i {
			return
		}
	}
	c.AdvIdx = append(c.AdvIdx, i)
	sort.Ints(c.AdvIdx)
}

// Assemble groups a capture-ordered packet stream into connections. The
// initiator is the sender of the first SYN seen for the 4-tuple; for
// connections captured mid-stream (no SYN) the first packet's sender is
// treated as the client. A SYN for a 4-tuple whose previous connection has
// been closed (or a SYN with a fresh ISN after FIN/RST exchange) starts a
// new connection, so port reuse does not merge distinct flows.
func Assemble(pkts []*packet.Packet) []*Connection {
	type slot struct {
		conn   *Connection
		closed bool // saw RST, or FIN in both directions
		finC2S bool
		finS2C bool
	}
	active := make(map[Key]*slot)
	var order []*Connection

	for _, p := range pkts {
		k := keyOf(p)
		var s *slot
		var dir Direction
		if sl, ok := active[k]; ok {
			s, dir = sl, ClientToServer
		} else if sl, ok := active[k.Reverse()]; ok {
			s, dir = sl, ServerToClient
		}
		isSYN := p.TCP.Flags.Has(packet.SYN) && !p.TCP.Flags.Has(packet.ACK)
		if s != nil && isSYN && dir == ClientToServer && s.closed {
			// Port reuse after close: start a fresh connection.
			delete(active, s.conn.Key)
			s = nil
		}
		if s == nil {
			conn := &Connection{Key: k}
			s = &slot{conn: conn}
			active[k] = s
			order = append(order, conn)
			dir = ClientToServer
		}
		s.conn.Append(p, dir)
		switch {
		case p.TCP.Flags.Has(packet.RST):
			s.closed = true
		case p.TCP.Flags.Has(packet.FIN):
			if dir == ClientToServer {
				s.finC2S = true
			} else {
				s.finS2C = true
			}
			if s.finC2S && s.finS2C {
				s.closed = true
			}
		}
	}
	return order
}

// Flatten concatenates the packets of all connections back into one
// capture-ordered stream sorted by timestamp (stable for ties).
func Flatten(conns []*Connection) []*packet.Packet {
	var out []*packet.Packet
	for _, c := range conns {
		out = append(out, c.Packets...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Timestamp.Before(out[j].Timestamp)
	})
	return out
}

// Stats summarises a connection set (Table 4's census columns).
type Stats struct {
	Connections int
	Packets     int
	Adversarial int
}

// Census counts connections and packets.
func Census(conns []*Connection) Stats {
	var s Stats
	for _, c := range conns {
		s.Connections++
		s.Packets += c.Len()
		if c.IsAdversarial() {
			s.Adversarial++
		}
	}
	return s
}
