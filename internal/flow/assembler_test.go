package flow

import (
	"testing"
	"time"

	"clap/internal/packet"
)

// conn synthesizes one full connection's packet train on port sp:
// handshake, n data packets, then a teardown selected by close ("fin",
// "rst", or "none").
func connPackets(sp uint16, n int, closeKind string, at time.Duration) []*packet.Packet {
	pkts := handshake(sp, at)
	seq := uint32(101)
	for i := 0; i < n; i++ {
		at += time.Millisecond
		pkts = append(pkts, mkPkt(cIP, sIP, sp, 80, packet.ACK|packet.PSH, seq, at))
		seq += 64
	}
	switch closeKind {
	case "fin":
		pkts = append(pkts,
			mkPkt(cIP, sIP, sp, 80, packet.FIN|packet.ACK, seq, at+time.Millisecond),
			mkPkt(sIP, cIP, 80, sp, packet.ACK, 301, at+2*time.Millisecond),
			mkPkt(sIP, cIP, 80, sp, packet.FIN|packet.ACK, 301, at+3*time.Millisecond),
			// The final ACK trails both FINs — the live assembler must keep
			// it with the connection instead of emitting at the second FIN.
			mkPkt(cIP, sIP, sp, 80, packet.ACK, seq+1, at+4*time.Millisecond))
	case "rst":
		pkts = append(pkts, mkPkt(sIP, cIP, 80, sp, packet.RST, 301, at+time.Millisecond))
	}
	return pkts
}

// interleave round-robins several packet trains into one capture order.
func interleave(trains ...[]*packet.Packet) []*packet.Packet {
	var out []*packet.Packet
	for i := 0; ; i++ {
		advanced := false
		for _, tr := range trains {
			if i < len(tr) {
				out = append(out, tr[i])
				advanced = true
			}
		}
		if !advanced {
			return out
		}
	}
}

// testCapture is a mixed capture: clean FIN close, RST close, half-open,
// all interleaved the way a live tap would see them.
func testCapture() []*packet.Packet {
	return interleave(
		connPackets(2001, 4, "fin", 0),
		connPackets(2002, 2, "rst", time.Microsecond),
		connPackets(2003, 6, "none", 2*time.Microsecond),
		connPackets(2004, 1, "fin", 3*time.Microsecond),
	)
}

// TestAssemblerMatchesAssemble is the equivalence contract: feeding a full
// capture through the incremental assembler and flushing reproduces
// Assemble's output exactly — same connections, same packets, same order.
func TestAssemblerMatchesAssemble(t *testing.T) {
	pkts := testCapture()
	want := Assemble(pkts)
	if len(want) != 4 {
		t.Fatalf("fixture assembled into %d connections, want 4", len(want))
	}

	var got []*Connection
	a := NewAssembler(func(c *Connection) { got = append(got, c) })
	for _, p := range pkts {
		a.Feed(p)
	}
	a.Flush()

	if len(got) != len(want) {
		t.Fatalf("assembler emitted %d connections, Assemble produced %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key {
			t.Fatalf("conn %d: key %v != %v", i, got[i].Key, want[i].Key)
		}
		if len(got[i].Packets) != len(want[i].Packets) {
			t.Fatalf("conn %d: %d packets != %d", i, len(got[i].Packets), len(want[i].Packets))
		}
		for j := range want[i].Packets {
			if got[i].Packets[j] != want[i].Packets[j] {
				t.Fatalf("conn %d packet %d: pointer mismatch", i, j)
			}
			if got[i].Dirs[j] != want[i].Dirs[j] {
				t.Fatalf("conn %d packet %d: direction mismatch", i, j)
			}
		}
	}
	if a.Pending() != 0 || a.PendingPackets() != 0 {
		t.Fatalf("assembler not empty after Flush: %d conns / %d packets",
			a.Pending(), a.PendingPackets())
	}
}

// TestAssemblerBudget cuts long connections at the packet budget.
func TestAssemblerBudget(t *testing.T) {
	pkts := testCapture()
	var got []*Connection
	a := NewAssembler(func(c *Connection) { got = append(got, c) })
	a.MaxPackets = 5
	for _, p := range pkts {
		a.Feed(p)
	}
	a.Flush()
	if len(got) < 4 {
		t.Fatalf("emitted %d connections, want at least the 4 originals", len(got))
	}
	total := 0
	for i, c := range got {
		if c.Len() > 5 {
			t.Fatalf("conn %d has %d packets, budget is 5", i, c.Len())
		}
		total += c.Len()
	}
	if total != len(pkts) {
		t.Fatalf("emitted %d packets, fed %d", total, len(pkts))
	}
}

// TestAssemblerFlushIdle emits only connections idle past the window,
// using an injected clock.
func TestAssemblerFlushIdle(t *testing.T) {
	clock := time.Unix(0, 0)
	var got []*Connection
	a := NewAssembler(func(c *Connection) { got = append(got, c) })
	a.now = func() time.Time { return clock }

	early := connPackets(3001, 3, "none", 0)
	late := connPackets(3002, 3, "none", time.Microsecond)
	for _, p := range early {
		a.Feed(p)
	}
	clock = clock.Add(10 * time.Second)
	for _, p := range late {
		a.Feed(p)
	}

	if n := a.FlushIdle(5 * time.Second); n != 1 {
		t.Fatalf("FlushIdle emitted %d connections, want 1 (the idle one)", n)
	}
	if len(got) != 1 || got[0].Key.Client.Port != 3001 {
		t.Fatalf("FlushIdle emitted the wrong connection: %+v", got)
	}
	// The still-active connection remains pending until a full Flush.
	if a.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", a.Pending())
	}
	a.Flush()
	if len(got) != 2 {
		t.Fatalf("after Flush: %d connections, want 2", len(got))
	}
}

// TestAssemblerPortReuse splits a reused 4-tuple like Assemble does: the
// closed connection is emitted the moment the fresh SYN arrives.
func TestAssemblerPortReuse(t *testing.T) {
	first := connPackets(4001, 2, "fin", 0)
	second := connPackets(4001, 3, "rst", time.Second)
	pkts := append(append([]*packet.Packet{}, first...), second...)
	want := Assemble(pkts)
	if len(want) != 2 {
		t.Fatalf("Assemble split reused tuple into %d connections, want 2", len(want))
	}

	var got []*Connection
	a := NewAssembler(func(c *Connection) { got = append(got, c) })
	for _, p := range pkts {
		a.Feed(p)
	}
	// The first connection must already be out: its tuple was reused.
	if len(got) != 1 || got[0].Len() != len(first) {
		t.Fatalf("port reuse did not emit the closed connection: %+v", got)
	}
	a.Flush()
	if len(got) != 2 || got[1].Len() != len(second) {
		t.Fatalf("assembler split reused tuple into %d connections", len(got))
	}
}

// TestAssemblerFlushReleasesSlots pins that Flush clears the order list's
// backing array. Truncating with [:0] alone keeps every emitted slot (and
// its *Connection, and every *packet.Packet in it) reachable through the
// retained backing array for the assembler's whole lifetime.
func TestAssemblerFlushReleasesSlots(t *testing.T) {
	a := NewAssembler(func(*Connection) {})
	for _, p := range testCapture() {
		a.Feed(p)
	}
	a.Flush()
	tail := a.order[:cap(a.order)]
	for i, s := range tail {
		if s != nil {
			t.Fatalf("order backing array slot %d still pins an emitted connection after Flush", i)
		}
	}
}

// TestAssemblerReverseSYNOnClosedSlot pins the port-reuse asymmetry
// against the batch path: a pure SYN arriving server→client on a closed
// slot must NOT split the connection (only a client→server SYN signals
// reuse); it is appended to the old connection exactly as Assemble does.
func TestAssemblerReverseSYNOnClosedSlot(t *testing.T) {
	const sp = 2101
	pkts := connPackets(sp, 2, "rst", 0)
	// A stray SYN from the server side of the same 4-tuple after close
	// (seen in traces with simultaneous-open weirdness and scanners).
	pkts = append(pkts, mkPkt(sIP, cIP, 80, sp, packet.SYN, 9000, time.Second))
	// Then genuine client-side port reuse, which must split.
	pkts = append(pkts, handshake(sp, time.Second+time.Millisecond)...)

	want := Assemble(pkts)
	var got []*Connection
	a := NewAssembler(func(c *Connection) { got = append(got, c) })
	for _, p := range pkts {
		a.Feed(p)
	}
	a.Flush()

	if len(want) != 2 {
		t.Fatalf("Assemble produced %d connections, fixture expects 2", len(want))
	}
	if len(got) != len(want) {
		t.Fatalf("assembler emitted %d connections, Assemble produced %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key {
			t.Fatalf("conn %d: key %v != %v", i, got[i].Key, want[i].Key)
		}
		if len(got[i].Packets) != len(want[i].Packets) {
			t.Fatalf("conn %d: %d packets != %d", i, len(got[i].Packets), len(want[i].Packets))
		}
		for j := range want[i].Packets {
			if got[i].Packets[j] != want[i].Packets[j] || got[i].Dirs[j] != want[i].Dirs[j] {
				t.Fatalf("conn %d packet %d: mismatch vs Assemble", i, j)
			}
		}
	}
	// The stray reverse SYN must have been folded into the first
	// (closed) connection as a ServerToClient packet, not a new conn.
	first := got[0]
	last := first.Dirs[len(first.Dirs)-1]
	if last != ServerToClient {
		t.Fatalf("stray reverse SYN direction = %v, want ServerToClient", last)
	}
}
