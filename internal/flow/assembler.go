package flow

import (
	"time"

	"clap/internal/packet"
)

// Assembler is the incremental form of Assemble for live capture: packets
// are fed one at a time as they arrive and finished connections are emitted
// through a callback, so a long-running ingest loop never holds the whole
// capture in memory. The grouping rules are identical to Assemble — same
// client orientation, same port-reuse handling — and a Feed-everything-
// then-Flush run emits exactly the slice Assemble would have returned, in
// the same order.
//
// Because live TCP teardowns trail packets after the closing FIN/RST (the
// final ACK, retransmitted FINs), a connection is not emitted the instant
// it closes. Emission happens on:
//
//   - Budget: the connection reached MaxPackets (long-lived flows are cut
//     and scored in segments rather than buffered forever);
//   - Port reuse: a fresh SYN on a closed 4-tuple emits the old
//     connection and opens a new one, exactly where Assemble splits;
//   - FlushIdle: the connection saw no packet for the idle window
//     (serving loops call this on a ticker);
//   - Flush: end of stream.
//
// An Assembler is not safe for concurrent use; live sources feed it from
// their single ingest goroutine.
type Assembler struct {
	// MaxPackets is the per-connection packet budget; a connection
	// reaching it is emitted immediately. 0 means unbounded.
	MaxPackets int

	emit   func(*Connection)
	active map[Key]*asmSlot
	order  []*asmSlot // insertion order, the order Assemble would emit
	now    func() time.Time
}

type asmSlot struct {
	conn     *Connection
	closed   bool
	finC2S   bool
	finS2C   bool
	lastFeed time.Time
	emitted  bool
}

// NewAssembler returns an incremental assembler delivering finished
// connections to emit.
func NewAssembler(emit func(*Connection)) *Assembler {
	return &Assembler{emit: emit, active: make(map[Key]*asmSlot), now: time.Now}
}

// Feed appends one capture-ordered packet, emitting any connection the
// packet completes (budget fill or port reuse after close).
func (a *Assembler) Feed(p *packet.Packet) {
	k := keyOf(p)
	var s *asmSlot
	var dir Direction
	if sl, ok := a.active[k]; ok {
		s, dir = sl, ClientToServer
	} else if sl, ok := a.active[k.Reverse()]; ok {
		s, dir = sl, ServerToClient
	}
	isSYN := p.TCP.Flags.Has(packet.SYN) && !p.TCP.Flags.Has(packet.ACK)
	if s != nil && isSYN && dir == ClientToServer && s.closed {
		// Port reuse after close: the old connection is complete.
		a.emitSlot(s)
		s = nil
	}
	if s == nil {
		s = &asmSlot{conn: &Connection{Key: k}}
		a.active[k] = s
		a.order = append(a.order, s)
		dir = ClientToServer
	}
	s.conn.Append(p, dir)
	s.lastFeed = a.now()
	switch {
	case p.TCP.Flags.Has(packet.RST):
		s.closed = true
	case p.TCP.Flags.Has(packet.FIN):
		if dir == ClientToServer {
			s.finC2S = true
		} else {
			s.finS2C = true
		}
		if s.finC2S && s.finS2C {
			s.closed = true
		}
	}
	if a.MaxPackets > 0 && s.conn.Len() >= a.MaxPackets {
		a.emitSlot(s)
	}
}

// emitSlot delivers a slot's connection and retires it. Slots stay in the
// order list (marked emitted) so Flush keeps Assemble's output order
// without re-sorting.
func (a *Assembler) emitSlot(s *asmSlot) {
	if s.emitted {
		return
	}
	s.emitted = true
	delete(a.active, s.conn.Key)
	a.emit(s.conn)
}

// Pending reports how many connections are buffered awaiting close/flush.
func (a *Assembler) Pending() int { return len(a.active) }

// PendingPackets reports the total packets buffered in open connections —
// the assembler's memory footprint, surfaced to serving metrics.
func (a *Assembler) PendingPackets() int {
	n := 0
	for _, s := range a.active {
		n += s.conn.Len()
	}
	return n
}

// FlushIdle emits every connection that saw no packet for at least idle
// (by wall clock of the Feed calls, not packet timestamps — live replay
// and synthetic captures carry fake timestamps). It returns the number of
// connections emitted.
func (a *Assembler) FlushIdle(idle time.Duration) int {
	cutoff := a.now().Add(-idle)
	n := 0
	for _, s := range a.order {
		if !s.emitted && s.lastFeed.Before(cutoff) {
			a.emitSlot(s)
			n++
		}
	}
	a.compact()
	return n
}

// Flush emits every remaining connection in first-packet order — the end
// of the stream. After Flush the assembler is empty and reusable.
func (a *Assembler) Flush() {
	for i, s := range a.order {
		if !s.emitted {
			a.emitSlot(s)
		}
		// Clear the backing array: truncating alone would pin the last
		// stream's slots (and their *Connections) for the assembler's
		// lifetime.
		a.order[i] = nil
	}
	a.order = a.order[:0]
}

// compact drops emitted slots from the order list once they dominate it,
// so a long-running assembler does not grow without bound.
func (a *Assembler) compact() {
	if len(a.order) < 64 || len(a.active)*2 > len(a.order) {
		return
	}
	live := a.order[:0]
	for _, s := range a.order {
		if !s.emitted {
			live = append(live, s)
		}
	}
	for i := len(live); i < len(a.order); i++ {
		a.order[i] = nil
	}
	a.order = live
}
