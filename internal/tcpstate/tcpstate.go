// Package tcpstate implements the reference TCP connection tracker CLAP
// trains against — the stand-in for the paper's instrumented Linux
// conntrack replayer (§4.1).
//
// The tracker follows the netfilter conntrack model: eleven master states
// (conntrack's TCP_CONNTRACK_* enum) driven by flag/direction transitions,
// plus per-direction sequence-space accounting that yields the paper's
// "subtle" in-/out-of-window verdict. The label attached to each packet is
// the state the machine transitions to *as a result of* that packet,
// concatenated with the window verdict: 11 × 2 = 22 classes (§3.3(a)).
//
// The tracker also models a *rigorous endhost*: packets a strict kernel
// would drop (bad checksum, failed PAWS, unsolicited MD5 option, missing
// ACK flag after handshake, RSTs that fail RFC 5961 exact-match, TTLs too
// small to reach the host, ...) do not advance the state machine. This is
// exactly the discrepancy surface DPI evasion attacks exploit, and the
// internal/dpi package implements the permissive counterparts.
package tcpstate

import (
	"clap/internal/flow"
	"clap/internal/packet"
)

// State is a conntrack master TCP state.
type State uint8

// The eleven conntrack states. SynSent2 is conntrack's simultaneous-open
// state (it shares an enum slot with the legacy LISTEN in the kernel; we
// keep both distinct here, matching the 11-state label space of the paper).
const (
	None State = iota
	SynSent
	SynRecv
	Established
	FinWait
	CloseWait
	LastAck
	TimeWait
	Close
	SynSent2
	Listen
)

// NumStates is the number of master states.
const NumStates = 11

// NumClasses is the size of the label space: state × {in,out-of}-window.
const NumClasses = NumStates * 2

var stateNames = [...]string{
	"NONE", "SYN_SENT", "SYN_RECV", "ESTABLISHED", "FIN_WAIT",
	"CLOSE_WAIT", "LAST_ACK", "TIME_WAIT", "CLOSE", "SYN_SENT2", "LISTEN",
}

// String returns the conntrack-style state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "INVALID"
}

// Label is the RNN training target for one packet.
type Label struct {
	State    State
	InWindow bool
}

// Class flattens the label to 0..21 (state*2 + window bit).
func (l Label) Class() int {
	w := 0
	if !l.InWindow {
		w = 1
	}
	return int(l.State)*2 + w
}

// LabelFromClass inverts Class.
func LabelFromClass(c int) Label {
	return Label{State: State(c / 2), InWindow: c%2 == 0}
}

// String renders e.g. "ESTABLISHED/in-win".
func (l Label) String() string {
	if l.InWindow {
		return l.State.String() + "/in-win"
	}
	return l.State.String() + "/out-win"
}

// DropReason explains why the rigorous endhost ignored a packet.
type DropReason uint8

// Drop reasons, ordered roughly by how early in the input path a strict
// kernel rejects the packet.
const (
	DropNone DropReason = iota
	DropTTLExpired
	DropBadIPVersion
	DropBadIPHeaderLen
	DropBadIPLength
	DropBadIPChecksum
	DropBadTCPChecksum
	DropBadDataOffset
	DropInvalidFlags
	DropUnsolicitedMD5
	DropPAWS
	DropNoACKFlag
	DropOutOfWindow
	DropRSTSeqMismatch
	DropBadAck
	DropStale
	DropSYNDifferentISN
	DropOutOfOrderFIN
)

var dropNames = [...]string{
	"accepted", "ttl-expired", "bad-ip-version", "bad-ip-header-len",
	"bad-ip-length", "bad-ip-checksum", "bad-tcp-checksum", "bad-data-offset",
	"invalid-flags", "unsolicited-md5", "paws", "no-ack-flag",
	"out-of-window", "rst-seq-mismatch", "bad-ack", "stale",
	"syn-different-isn", "out-of-order-fin",
}

// String names the drop reason.
func (d DropReason) String() string {
	if int(d) < len(dropNames) {
		return dropNames[d]
	}
	return "unknown"
}

// Config tunes the endhost model.
type Config struct {
	// HopsPastMonitor is the number of router hops between the monitoring
	// point and the endhost. Packets arriving with TTL below this value die
	// in transit — the mechanism behind every Low-TTL evasion strategy.
	HopsPastMonitor uint8
	// RequireChecksum drops bad-checksum segments (rigorous kernels do).
	RequireChecksum bool
	// LoosePickup adopts mid-stream flows directly into ESTABLISHED, like
	// conntrack's nf_conntrack_tcp_loose.
	LoosePickup bool
}

// DefaultConfig models a strict Linux endhost three hops past the monitor.
func DefaultConfig() Config {
	return Config{HopsPastMonitor: 3, RequireChecksum: true, LoosePickup: true}
}

// dirState is per-direction sequence-space accounting (conntrack's
// ip_ct_tcp_state).
type dirState struct {
	init     bool
	isn      uint32
	end      uint32 // highest seq+len sent: the peer's expected rcv.nxt
	window   uint32 // last advertised receive window (scaled)
	maxWin   uint32
	wscale   uint8
	wscaleOK bool
	tsRecent uint32
	tsOK     bool
	finSeq   uint32 // sequence number of FIN (if finSent)
	finSent  bool
	maxAck   uint32 // highest ACK value sent by this direction
	ackSeen  bool
}

// Tracker replays one connection through the reference implementation.
type Tracker struct {
	cfg   Config
	state State
	dirs  [2]dirState
}

// NewTracker returns a tracker in the None state.
func NewTracker(cfg Config) *Tracker {
	return &Tracker{cfg: cfg}
}

// State returns the current master state.
func (t *Tracker) State() State { return t.state }

// Verdict is the full per-packet result of the reference implementation.
type Verdict struct {
	Label    Label
	Accepted bool
	Reason   DropReason
}

// seqLT reports a < b in 32-bit sequence space.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLE reports a <= b in 32-bit sequence space.
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }

// segLen is the sequence-space length of a packet (payload plus SYN/FIN).
func segLen(p *packet.Packet) uint32 {
	l := uint32(p.PayloadLen)
	if p.TCP.Flags.Has(packet.SYN) {
		l++
	}
	if p.TCP.Flags.Has(packet.FIN) {
		l++
	}
	return l
}

// flagsValid applies the strict-kernel flag sanity rules.
func flagsValid(f packet.Flags) bool {
	switch {
	case f == 0:
		return false // null packet
	case f.Has(packet.SYN | packet.FIN):
		return false
	case f.Has(packet.SYN | packet.RST):
		return false
	case f.Has(packet.FIN) && !f.Has(packet.ACK):
		// FIN without ACK is never produced by compliant stacks post-RFC1122.
		return false
	}
	return true
}

// structuralCheck performs the header validations a kernel applies before
// any state processing.
func (t *Tracker) structuralCheck(p *packet.Packet) DropReason {
	if p.IP.TTL < t.cfg.HopsPastMonitor {
		return DropTTLExpired
	}
	if p.IP.Version != 4 {
		return DropBadIPVersion
	}
	if p.IP.IHL < 5 {
		return DropBadIPHeaderLen
	}
	minLen := p.IP.HeaderLen() + 20
	if int(p.IP.TotalLen) < minLen {
		return DropBadIPLength
	}
	if p.TCP.DataOffset < 5 {
		return DropBadDataOffset
	}
	// The claimed IP total length must account exactly for the headers plus
	// the payload that was actually on the wire; anything else means the
	// datagram was truncated or padded in flight and the kernel discards it.
	if int(p.IP.TotalLen) != p.IP.HeaderLen()+p.TCP.HeaderLen()+p.PayloadLen {
		return DropBadIPLength
	}
	if t.cfg.RequireChecksum {
		if !p.IPChecksumValid() {
			return DropBadIPChecksum
		}
		if !p.TCPChecksumValid() {
			return DropBadTCPChecksum
		}
	}
	if !flagsValid(p.TCP.Flags) {
		return DropInvalidFlags
	}
	if o := p.TCP.FindOption(packet.OptMD5); o != nil {
		// RFC 2385: a host with no key configured for the peer discards
		// segments carrying the MD5 option. None of our synthetic endpoints
		// configure keys, and malformed digests are always discarded.
		return DropUnsolicitedMD5
	}
	return DropNone
}

// inWindow computes the RFC 793 acceptance test for a packet from dir d.
func (t *Tracker) inWindow(p *packet.Packet, d flow.Direction) bool {
	snd := &t.dirs[d]
	rcv := &t.dirs[1-d]
	if !snd.init {
		return true // first packet from this direction defines the space
	}
	if p.TCP.Flags.Has(packet.SYN) && !p.TCP.Flags.Has(packet.ACK) {
		// A fresh SYN opens a new sequence space.
		return true
	}
	nxt := snd.end
	wnd := rcv.window
	if !rcv.init {
		wnd = 65535
	}
	s := p.TCP.Seq
	l := uint32(p.PayloadLen)
	if p.TCP.Flags.Has(packet.FIN) {
		l++
	}
	if l == 0 {
		// Zero-length segments: acceptable at nxt-1 (keepalive) through the
		// right window edge.
		return seqLE(nxt-1, s) && seqLE(s, nxt+wnd)
	}
	if wnd == 0 {
		return s == nxt
	}
	return seqLT(s, nxt+wnd) && seqLT(nxt, s+l)
}

// pawsFails applies a simplified PAWS (RFC 7323) check.
func (t *Tracker) pawsFails(p *packet.Packet, d flow.Direction) bool {
	snd := &t.dirs[d]
	if !snd.tsOK {
		return false
	}
	tsval, _, ok := p.TCP.TimestampVal()
	if !ok {
		return false
	}
	// Reject timestamps strictly older than the last one seen from this
	// direction (with wraparound semantics).
	return seqLT(tsval, snd.tsRecent)
}

// noteSeen folds a packet's sequence/window/timestamp data into the
// per-direction accounting. Called only for accepted packets.
func (t *Tracker) noteSeen(p *packet.Packet, d flow.Direction) {
	snd := &t.dirs[d]
	isSYN := p.TCP.Flags.Has(packet.SYN)
	if !snd.init {
		snd.isn = p.TCP.Seq
		snd.end = p.TCP.Seq
		snd.init = true
	}
	if isSYN {
		if ws, ok := p.TCP.WScaleVal(); ok && ws <= 14 {
			snd.wscale = ws
			snd.wscaleOK = true
		}
		if _, _, ok := p.TCP.TimestampVal(); ok {
			snd.tsOK = true
		}
	}
	if end := p.TCP.Seq + segLen(p); seqLT(snd.end, end) {
		snd.end = end
	}
	if !p.TCP.Flags.Has(packet.RST) {
		w := uint32(p.TCP.Window)
		if !isSYN && snd.wscaleOK && t.dirs[1-d].wscaleOK {
			w <<= snd.wscale
		}
		snd.window = w
		if w > snd.maxWin {
			snd.maxWin = w
		}
	}
	if tsval, _, ok := p.TCP.TimestampVal(); ok && seqLE(snd.tsRecent, tsval) {
		snd.tsRecent = tsval
	}
	if p.TCP.Flags.Has(packet.ACK) {
		if !snd.ackSeen || seqLT(snd.maxAck, p.TCP.Ack) {
			snd.maxAck = p.TCP.Ack
			snd.ackSeen = true
		}
	}
	if p.TCP.Flags.Has(packet.FIN) && !snd.finSent {
		snd.finSent = true
		snd.finSeq = p.TCP.Seq + uint32(p.PayloadLen)
	}
}

// Update processes one packet and returns the reference verdict. The label
// reflects the state *after* the packet (unchanged when the endhost drops
// it) plus the window verdict, which is computed for every packet — even
// structurally broken ones — because the RNN needs a label for each input.
func (t *Tracker) Update(p *packet.Packet, d flow.Direction) Verdict {
	inWin := t.inWindow(p, d)

	if r := t.structuralCheck(p); r != DropNone {
		return Verdict{Label: Label{State: t.state, InWindow: inWin}, Accepted: false, Reason: r}
	}
	if t.pawsFails(p, d) {
		return Verdict{Label: Label{State: t.state, InWindow: inWin}, Accepted: false, Reason: DropPAWS}
	}

	f := p.TCP.Flags
	isSYN := f.Has(packet.SYN) && !f.Has(packet.ACK)
	isSYNACK := f.Has(packet.SYN) && f.Has(packet.ACK)

	// Segments in an established conversation must carry ACK; strict stacks
	// drop bare data/FIN segments without it (the Data-wo/-ACK-flag family
	// of attacks exploits DPIs that don't).
	if t.state != None && t.state != Close && !isSYN && !f.Has(packet.ACK) && !f.Has(packet.RST) {
		return Verdict{Label: Label{State: t.state, InWindow: inWin}, Accepted: false, Reason: DropNoACKFlag}
	}

	// RST processing per RFC 5961: only a RST whose sequence number exactly
	// matches the expected rcv.nxt tears the connection down; in-window but
	// inexact RSTs elicit a challenge ACK and are otherwise ignored.
	if f.Has(packet.RST) {
		if t.state == None || t.state == Close {
			return Verdict{Label: Label{State: t.state, InWindow: inWin}, Accepted: false, Reason: DropStale}
		}
		if !inWin {
			return Verdict{Label: Label{State: t.state, InWindow: inWin}, Accepted: false, Reason: DropOutOfWindow}
		}
		snd := &t.dirs[d]
		if snd.init && p.TCP.Seq != snd.end {
			return Verdict{Label: Label{State: t.state, InWindow: inWin}, Accepted: false, Reason: DropRSTSeqMismatch}
		}
		// During the handshake a RST carrying ACK must acknowledge the
		// peer's SYN exactly (RFC 793 SYN-SENT/SYN-RECEIVED processing);
		// otherwise the reset is ignored.
		if f.Has(packet.ACK) && t.dirs[1-d].init &&
			(t.state == SynSent || t.state == SynRecv || t.state == SynSent2) {
			if p.TCP.Ack != t.dirs[1-d].end {
				return Verdict{Label: Label{State: t.state, InWindow: inWin}, Accepted: false, Reason: DropBadAck}
			}
		}
		t.noteSeen(p, d)
		t.state = Close
		return Verdict{Label: Label{State: Close, InWindow: inWin}, Accepted: true}
	}

	// Non-SYN out-of-window segments are dropped (the receiver answers with
	// a duplicate ACK; state does not move).
	if !inWin && !isSYN {
		return Verdict{Label: Label{State: t.state, InWindow: inWin}, Accepted: false, Reason: DropOutOfWindow}
	}

	// RFC 9293 ACK acceptability: an ACK for data the peer has never sent
	// (SEG.ACK > SND.NXT from the peer's perspective) is answered with a
	// bare ACK and the segment is dropped.
	if f.Has(packet.ACK) && t.dirs[1-d].init {
		if int32(p.TCP.Ack-t.dirs[1-d].end) > 0 {
			return Verdict{Label: Label{State: t.state, InWindow: inWin}, Accepted: false, Reason: DropBadAck}
		}
	}

	// A SYN re-opening an initialised direction must be a true
	// retransmission (same ISN); a different ISN mid-handshake gets a
	// challenge ACK, not adoption (strict kernels never resync — DPIs that
	// do are exactly what SYN-with-bad-SEQ evasions exploit).
	if isSYN && t.state != None && t.state != Close && t.state != TimeWait {
		if snd := &t.dirs[d]; snd.init && p.TCP.Seq != snd.isn {
			return Verdict{Label: Label{State: t.state, InWindow: inWin}, Accepted: false, Reason: DropSYNDifferentISN}
		}
	}

	// A FIN only takes effect when it arrives in order: its sequence
	// position must sit exactly at the current edge of the sender's stream.
	// Out-of-order FINs are buffered by real kernels without any state
	// change; we conservatively leave the tracker untouched.
	if f.Has(packet.FIN) && !isSYN {
		if snd := &t.dirs[d]; snd.init && p.TCP.Seq != snd.end {
			return Verdict{Label: Label{State: t.state, InWindow: inWin}, Accepted: false, Reason: DropOutOfOrderFIN}
		}
	}

	prev := t.state
	next := prev
	switch prev {
	case None:
		switch {
		case isSYN && d == flow.ClientToServer:
			next = SynSent
		case t.cfg.LoosePickup && !isSYN && !isSYNACK:
			next = Established // mid-stream pickup
		case isSYNACK:
			next = SynRecv // picked up just after the SYN was missed
		default:
			return Verdict{Label: Label{State: prev, InWindow: inWin}, Accepted: false, Reason: DropStale}
		}
	case SynSent:
		switch {
		case isSYNACK && d == flow.ServerToClient:
			next = SynRecv
		case isSYN && d == flow.ClientToServer:
			next = SynSent // retransmitted SYN
		case isSYN && d == flow.ServerToClient:
			next = SynSent2 // simultaneous open
		default:
			return Verdict{Label: Label{State: prev, InWindow: inWin}, Accepted: false, Reason: DropStale}
		}
	case SynSent2:
		if isSYNACK {
			next = SynRecv
		}
	case SynRecv:
		switch {
		case isSYNACK:
			next = SynRecv // retransmitted SYN-ACK
		case f.Has(packet.ACK) && d == flow.ClientToServer:
			next = Established
		}
	case Established:
		if f.Has(packet.FIN) {
			next = FinWait
		}
	case FinWait:
		finner, other := t.finDirs()
		switch {
		case f.Has(packet.FIN) && d == other:
			next = LastAck
		case f.Has(packet.ACK) && d == other && t.dirs[finner].finSent &&
			seqLE(t.dirs[finner].finSeq+1, p.TCP.Ack):
			next = CloseWait
		}
	case CloseWait:
		_, other := t.finDirs()
		if f.Has(packet.FIN) && d == other {
			next = LastAck
		}
	case LastAck:
		// ACK of the second FIN completes the close.
		if f.Has(packet.ACK) {
			snd := &t.dirs[1-d]
			if snd.finSent && seqLE(snd.finSeq+1, p.TCP.Ack) {
				next = TimeWait
			}
		}
	case TimeWait, Close:
		if isSYN && d == flow.ClientToServer {
			// Port reuse: restart tracking.
			*t = Tracker{cfg: t.cfg}
			t.noteSeen(p, d)
			t.state = SynSent
			return Verdict{Label: Label{State: SynSent, InWindow: true}, Accepted: true}
		}
		if prev == Close {
			return Verdict{Label: Label{State: prev, InWindow: inWin}, Accepted: false, Reason: DropStale}
		}
	}

	t.noteSeen(p, d)
	t.state = next
	return Verdict{Label: Label{State: next, InWindow: inWin}, Accepted: true}
}

// finDirs identifies which direction sent the first FIN and its peer.
func (t *Tracker) finDirs() (finner, other flow.Direction) {
	if t.dirs[flow.ClientToServer].finSent {
		return flow.ClientToServer, flow.ServerToClient
	}
	return flow.ServerToClient, flow.ClientToServer
}

// Replay runs a fresh tracker over a connection, returning one verdict per
// packet.
func Replay(c *flow.Connection, cfg Config) []Verdict {
	t := NewTracker(cfg)
	out := make([]Verdict, c.Len())
	for i, p := range c.Packets {
		out[i] = t.Update(p, c.Dirs[i])
	}
	return out
}

// Labels runs Replay and keeps only the training labels.
func Labels(c *flow.Connection, cfg Config) []Label {
	vs := Replay(c, cfg)
	out := make([]Label, len(vs))
	for i, v := range vs {
		out[i] = v.Label
	}
	return out
}
