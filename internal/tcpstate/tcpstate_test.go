package tcpstate

import (
	"testing"
	"testing/quick"
	"time"

	"clap/internal/flow"
	"clap/internal/packet"
)

var (
	cIP = [4]byte{10, 0, 0, 1}
	sIP = [4]byte{192, 0, 2, 1}
)

// sess scripts a TCP conversation with coherent SEQ/ACK numbers so tests can
// express protocol scenarios tersely.
type sess struct {
	conn  *flow.Connection
	seq   [2]uint32 // next sequence number per direction
	ts    [2]uint32 // TSval clock per direction
	at    time.Duration
	useTS bool
}

func newSess(useTS bool) *sess {
	s := &sess{conn: &flow.Connection{}, useTS: useTS}
	s.seq[flow.ClientToServer] = 1000
	s.seq[flow.ServerToClient] = 900000
	s.ts[flow.ClientToServer] = 111000
	s.ts[flow.ServerToClient] = 555000
	return s
}

// pkt emits one packet in direction d with correct numbering, applying any
// mutators to the finished packet (checksums are re-fixed unless the mutator
// corrupts them afterwards deliberately).
func (s *sess) pkt(d flow.Direction, flags packet.Flags, payload int, mut ...func(*packet.Packet)) *packet.Packet {
	src, dst := cIP, sIP
	var sp, dp uint16 = 40000, 80
	if d == flow.ServerToClient {
		src, dst, sp, dp = sIP, cIP, 80, 40000
	}
	b := packet.NewBuilder(src, dst, sp, dp).
		Seq(s.seq[d]).Flags(flags).Window(65000).PayloadLen(payload).
		Time(time.Unix(1600000000, 0).Add(s.at))
	if flags.Has(packet.ACK) {
		b.Ack(s.seq[1-d])
	}
	if s.useTS {
		b.Timestamps(s.ts[d], s.ts[1-d])
		s.ts[d] += 10
	}
	if flags.Has(packet.SYN) {
		b.MSS(1460).WScale(7)
	}
	p := b.Build()
	s.at += time.Millisecond
	adv := uint32(payload)
	if flags.Has(packet.SYN) {
		adv++
	}
	if flags.Has(packet.FIN) {
		adv++
	}
	s.seq[d] += adv
	for _, m := range mut {
		m(p)
	}
	s.conn.Append(p, d)
	return p
}

// inject appends a packet without advancing the session counters (the shape
// of every injection attack).
func (s *sess) inject(d flow.Direction, flags packet.Flags, seq, ack uint32, mut ...func(*packet.Packet)) *packet.Packet {
	src, dst := cIP, sIP
	var sp, dp uint16 = 40000, 80
	if d == flow.ServerToClient {
		src, dst, sp, dp = sIP, cIP, 80, 40000
	}
	p := packet.NewBuilder(src, dst, sp, dp).
		Seq(seq).Ack(ack).Flags(flags).Window(65000).
		Time(time.Unix(1600000000, 0).Add(s.at)).Build()
	s.at += time.Millisecond
	for _, m := range mut {
		m(p)
	}
	s.conn.Append(p, d)
	return p
}

func handshake(s *sess) {
	s.pkt(flow.ClientToServer, packet.SYN, 0)
	s.pkt(flow.ServerToClient, packet.SYN|packet.ACK, 0)
	s.pkt(flow.ClientToServer, packet.ACK, 0)
}

func states(vs []Verdict) []State {
	out := make([]State, len(vs))
	for i, v := range vs {
		out[i] = v.Label.State
	}
	return out
}

func TestFullLifecycleFINClose(t *testing.T) {
	s := newSess(true)
	handshake(s)
	s.pkt(flow.ClientToServer, packet.ACK|packet.PSH, 100)
	s.pkt(flow.ServerToClient, packet.ACK, 200)
	s.pkt(flow.ClientToServer, packet.FIN|packet.ACK, 0)
	s.pkt(flow.ServerToClient, packet.ACK, 0)
	s.pkt(flow.ServerToClient, packet.FIN|packet.ACK, 0)
	s.pkt(flow.ClientToServer, packet.ACK, 0)

	vs := Replay(s.conn, DefaultConfig())
	want := []State{SynSent, SynRecv, Established, Established, Established,
		FinWait, CloseWait, LastAck, TimeWait}
	got := states(vs)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("packet %d: state = %v, want %v", i, got[i], want[i])
		}
		if !vs[i].Accepted {
			t.Errorf("packet %d: dropped (%v), want accepted", i, vs[i].Reason)
		}
		if !vs[i].Label.InWindow {
			t.Errorf("packet %d: out-of-window, want in-window", i)
		}
	}
}

func TestRSTTeardown(t *testing.T) {
	s := newSess(false)
	handshake(s)
	s.pkt(flow.ClientToServer, packet.RST|packet.ACK, 0)
	vs := Replay(s.conn, DefaultConfig())
	if last := vs[len(vs)-1]; last.Label.State != Close || !last.Accepted {
		t.Errorf("RST verdict = %+v, want accepted Close", last)
	}
}

func TestBadChecksumRSTIgnored(t *testing.T) {
	// The motivating example of the paper (§1): a garbled-checksum RST after
	// the handshake is dropped by the endhost, so the reference state stays
	// ESTABLISHED.
	s := newSess(false)
	handshake(s)
	s.inject(flow.ClientToServer, packet.RST, s.seq[flow.ClientToServer], 0,
		func(p *packet.Packet) { p.TCP.Checksum ^= 0x5555 })
	s.pkt(flow.ClientToServer, packet.ACK|packet.PSH, 50)

	vs := Replay(s.conn, DefaultConfig())
	rst := vs[3]
	if rst.Accepted || rst.Reason != DropBadTCPChecksum {
		t.Errorf("bad-checksum RST verdict = %+v, want drop/bad-tcp-checksum", rst)
	}
	if rst.Label.State != Established {
		t.Errorf("state after dropped RST = %v, want ESTABLISHED", rst.Label.State)
	}
	if last := vs[4]; !last.Accepted || last.Label.State != Established {
		t.Errorf("follow-up data verdict = %+v, want accepted ESTABLISHED", last)
	}
}

func TestOutOfWindowDataDropped(t *testing.T) {
	s := newSess(false)
	handshake(s)
	s.pkt(flow.ClientToServer, packet.ACK|packet.PSH, 100)
	// Replay the same 100 bytes (fully below rcv.nxt now).
	old := s.seq[flow.ClientToServer] - 100
	s.inject(flow.ClientToServer, packet.ACK|packet.PSH, old-200, 0, func(p *packet.Packet) {
		p.PayloadLen = 100
		p.IP.TotalLen = uint16(p.IP.HeaderLen() + p.TCP.HeaderLen() + 100)
		p.TCP.Ack = s.seq[flow.ServerToClient]
		_ = p.FixChecksums()
	})
	vs := Replay(s.conn, DefaultConfig())
	last := vs[len(vs)-1]
	if last.Accepted || last.Reason != DropOutOfWindow {
		t.Errorf("stale segment verdict = %+v, want drop/out-of-window", last)
	}
	if last.Label.InWindow {
		t.Error("stale segment should be labeled out-of-window")
	}
}

func TestPAWSDropsOldTimestamp(t *testing.T) {
	s := newSess(true)
	handshake(s)
	s.pkt(flow.ClientToServer, packet.ACK|packet.PSH, 10)
	// Inject a segment whose TSval is far in the past.
	s.inject(flow.ClientToServer, packet.ACK, s.seq[flow.ClientToServer], s.seq[flow.ServerToClient],
		func(p *packet.Packet) {
			d := make([]byte, 8)
			d[3] = 1 // TSval = 1: ancient
			p.TCP.Options = append(p.TCP.Options, packet.Option{Kind: packet.OptTimestamps, Data: d})
			raw, err := p.Encode(packet.SerializeOptions{FixLengths: true, ComputeChecksums: true})
			if err != nil {
				t.Fatal(err)
			}
			q, err := packet.Decode(raw)
			if err != nil {
				t.Fatal(err)
			}
			*p = *q
		})
	vs := Replay(s.conn, DefaultConfig())
	last := vs[len(vs)-1]
	if last.Accepted || last.Reason != DropPAWS {
		t.Errorf("old-timestamp verdict = %+v, want drop/paws", last)
	}
}

func TestUnsolicitedMD5Dropped(t *testing.T) {
	s := newSess(false)
	handshake(s)
	s.inject(flow.ClientToServer, packet.ACK|packet.PSH, s.seq[flow.ClientToServer], s.seq[flow.ServerToClient],
		func(p *packet.Packet) {
			p.TCP.Options = append(p.TCP.Options, packet.Option{Kind: packet.OptMD5, Data: make([]byte, 16)})
			raw, err := p.Encode(packet.SerializeOptions{FixLengths: true, ComputeChecksums: true})
			if err != nil {
				t.Fatal(err)
			}
			q, err := packet.Decode(raw)
			if err != nil {
				t.Fatal(err)
			}
			*p = *q
		})
	vs := Replay(s.conn, DefaultConfig())
	last := vs[len(vs)-1]
	if last.Accepted || last.Reason != DropUnsolicitedMD5 {
		t.Errorf("MD5 segment verdict = %+v, want drop/unsolicited-md5", last)
	}
}

func TestLowTTLDiesInTransit(t *testing.T) {
	s := newSess(false)
	handshake(s)
	s.inject(flow.ClientToServer, packet.RST, s.seq[flow.ClientToServer], 0,
		func(p *packet.Packet) {
			p.IP.TTL = 1
			_ = p.FixChecksums()
		})
	vs := Replay(s.conn, DefaultConfig())
	last := vs[len(vs)-1]
	if last.Accepted || last.Reason != DropTTLExpired {
		t.Errorf("low-TTL RST verdict = %+v, want drop/ttl-expired", last)
	}
	if last.Label.State != Established {
		t.Errorf("state = %v, want ESTABLISHED preserved", last.Label.State)
	}
}

func TestDataWithoutACKFlagDropped(t *testing.T) {
	s := newSess(false)
	handshake(s)
	s.inject(flow.ClientToServer, packet.PSH, s.seq[flow.ClientToServer], 0,
		func(p *packet.Packet) {
			p.PayloadLen = 40
			p.IP.TotalLen = uint16(p.IP.HeaderLen() + p.TCP.HeaderLen() + 40)
			_ = p.FixChecksums()
		})
	vs := Replay(s.conn, DefaultConfig())
	last := vs[len(vs)-1]
	if last.Accepted || last.Reason != DropNoACKFlag {
		t.Errorf("no-ACK data verdict = %+v, want drop/no-ack-flag", last)
	}
}

func TestRSTExactMatchRequired(t *testing.T) {
	s := newSess(false)
	handshake(s)
	// In-window but off-by-40 RST: RFC 5961 says challenge-ACK, not close.
	s.inject(flow.ClientToServer, packet.RST, s.seq[flow.ClientToServer]+40, 0)
	vs := Replay(s.conn, DefaultConfig())
	last := vs[len(vs)-1]
	if last.Accepted || last.Reason != DropRSTSeqMismatch {
		t.Errorf("partial in-window RST verdict = %+v, want drop/rst-seq-mismatch", last)
	}
	if last.Label.State != Established {
		t.Errorf("state = %v, want ESTABLISHED", last.Label.State)
	}
}

func TestRSTOutOfWindowIgnored(t *testing.T) {
	s := newSess(false)
	handshake(s)
	s.inject(flow.ClientToServer, packet.RST, s.seq[flow.ClientToServer]+1<<20, 0)
	vs := Replay(s.conn, DefaultConfig())
	last := vs[len(vs)-1]
	if last.Accepted || last.Reason != DropOutOfWindow {
		t.Errorf("far RST verdict = %+v, want drop/out-of-window", last)
	}
}

func TestLoosePickupMidStream(t *testing.T) {
	s := newSess(false)
	s.pkt(flow.ClientToServer, packet.ACK|packet.PSH, 77)
	vs := Replay(s.conn, DefaultConfig())
	if vs[0].Label.State != Established || !vs[0].Accepted {
		t.Errorf("mid-stream pickup = %+v, want ESTABLISHED", vs[0])
	}
	cfg := DefaultConfig()
	cfg.LoosePickup = false
	vs = Replay(s.conn, cfg)
	if vs[0].Accepted {
		t.Error("strict pickup should drop mid-stream data")
	}
}

func TestSimultaneousOpen(t *testing.T) {
	s := newSess(false)
	s.pkt(flow.ClientToServer, packet.SYN, 0)
	s.pkt(flow.ServerToClient, packet.SYN, 0)
	s.pkt(flow.ClientToServer, packet.SYN|packet.ACK, 0)
	vs := Replay(s.conn, DefaultConfig())
	want := []State{SynSent, SynSent2, SynRecv}
	for i, w := range want {
		if vs[i].Label.State != w {
			t.Errorf("packet %d: state = %v, want %v", i, vs[i].Label.State, w)
		}
	}
}

func TestPortReuseAfterClose(t *testing.T) {
	s := newSess(false)
	handshake(s)
	s.pkt(flow.ClientToServer, packet.RST|packet.ACK, 0)
	// Fresh handshake on the same 4-tuple.
	s.seq[flow.ClientToServer] = 5_000_000
	s.seq[flow.ServerToClient] = 7_000_000
	s.pkt(flow.ClientToServer, packet.SYN, 0)
	vs := Replay(s.conn, DefaultConfig())
	last := vs[len(vs)-1]
	if last.Label.State != SynSent || !last.Accepted {
		t.Errorf("port reuse SYN = %+v, want accepted SYN_SENT", last)
	}
}

func TestSYNFINInvalid(t *testing.T) {
	s := newSess(false)
	s.inject(flow.ClientToServer, packet.SYN|packet.FIN, 1000, 0)
	vs := Replay(s.conn, DefaultConfig())
	if vs[0].Accepted || vs[0].Reason != DropInvalidFlags {
		t.Errorf("SYN|FIN verdict = %+v, want drop/invalid-flags", vs[0])
	}
}

func TestNullFlagsInvalid(t *testing.T) {
	s := newSess(false)
	handshake(s)
	s.inject(flow.ClientToServer, 0, s.seq[flow.ClientToServer], 0)
	vs := Replay(s.conn, DefaultConfig())
	last := vs[len(vs)-1]
	if last.Accepted || last.Reason != DropInvalidFlags {
		t.Errorf("null-flags verdict = %+v, want drop/invalid-flags", last)
	}
}

func TestBadIPVersionDropped(t *testing.T) {
	s := newSess(false)
	s.pkt(flow.ClientToServer, packet.SYN, 0, func(p *packet.Packet) {
		p.IP.Version = 5
		_ = p.FixChecksums()
	})
	vs := Replay(s.conn, DefaultConfig())
	if vs[0].Accepted || vs[0].Reason != DropBadIPVersion {
		t.Errorf("IPv5 verdict = %+v, want drop/bad-ip-version", vs[0])
	}
}

func TestBadDataOffsetDropped(t *testing.T) {
	s := newSess(false)
	handshake(s)
	s.inject(flow.ClientToServer, packet.ACK, s.seq[flow.ClientToServer], s.seq[flow.ServerToClient],
		func(p *packet.Packet) {
			p.TCP.DataOffset = 3
			_ = p.FixChecksums()
		})
	vs := Replay(s.conn, DefaultConfig())
	last := vs[len(vs)-1]
	if last.Accepted || last.Reason != DropBadDataOffset {
		t.Errorf("offset=3 verdict = %+v, want drop/bad-data-offset", last)
	}
}

func TestKeepaliveInWindow(t *testing.T) {
	s := newSess(false)
	handshake(s)
	s.pkt(flow.ClientToServer, packet.ACK|packet.PSH, 10)
	// Keepalive probe at nxt-1.
	s.inject(flow.ClientToServer, packet.ACK, s.seq[flow.ClientToServer]-1, s.seq[flow.ServerToClient],
		func(p *packet.Packet) { _ = p.FixChecksums() })
	vs := Replay(s.conn, DefaultConfig())
	last := vs[len(vs)-1]
	if !last.Label.InWindow {
		t.Errorf("keepalive at nxt-1 labeled out-of-window: %+v", last)
	}
}

func TestLabelClassRoundTrip(t *testing.T) {
	f := func(c uint8) bool {
		class := int(c) % NumClasses
		return LabelFromClass(class).Class() == class
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLabelStrings(t *testing.T) {
	l := Label{State: Established, InWindow: true}
	if l.String() != "ESTABLISHED/in-win" {
		t.Errorf("String = %q", l.String())
	}
	l.InWindow = false
	if l.String() != "ESTABLISHED/out-win" {
		t.Errorf("String = %q", l.String())
	}
	if State(99).String() != "INVALID" {
		t.Error("out-of-range state should stringify to INVALID")
	}
	if DropReason(99).String() != "unknown" {
		t.Error("out-of-range drop reason should stringify to unknown")
	}
	for s := None; s <= Listen; s++ {
		if s.String() == "INVALID" {
			t.Errorf("state %d has no name", s)
		}
	}
}

func TestSequenceWraparound(t *testing.T) {
	// A connection whose ISN sits just below the 2^32 boundary must track
	// windows across the wrap.
	s := newSess(false)
	s.seq[flow.ClientToServer] = 0xffffff00
	handshake(s)
	for i := 0; i < 4; i++ {
		s.pkt(flow.ClientToServer, packet.ACK|packet.PSH, 200)
	}
	vs := Replay(s.conn, DefaultConfig())
	for i, v := range vs {
		if !v.Accepted {
			t.Errorf("packet %d dropped across wraparound: %+v", i, v)
		}
		if !v.Label.InWindow {
			t.Errorf("packet %d labeled out-of-window across wraparound", i)
		}
	}
}

func TestRetransmissionOutOfWindowLabel(t *testing.T) {
	// Exact duplicate of the previous data segment: sequence space fully
	// consumed, so the reference labels it out-of-window (these appear in
	// benign traffic too — Table 5's out-of-window rows).
	s := newSess(false)
	handshake(s)
	data := s.pkt(flow.ClientToServer, packet.ACK|packet.PSH, 100)
	dup := data.Clone()
	s.conn.Append(dup, flow.ClientToServer)
	vs := Replay(s.conn, DefaultConfig())
	last := vs[len(vs)-1]
	if last.Label.InWindow {
		t.Error("full retransmission should be out-of-window")
	}
	if last.Label.State != Established {
		t.Errorf("state = %v, want ESTABLISHED", last.Label.State)
	}
}

func TestForgedTotalLenDropped(t *testing.T) {
	// A claimed IP total length that disagrees with the on-wire payload is
	// a truncated/padded datagram: strict kernels discard it (the Bad IP
	// Length strategies rely on this).
	s := newSess(false)
	handshake(s)
	s.pkt(flow.ClientToServer, packet.ACK|packet.PSH, 100, func(p *packet.Packet) {
		p.IP.TotalLen += 64
		_ = p.FixChecksums()
	})
	vs := Replay(s.conn, DefaultConfig())
	last := vs[len(vs)-1]
	if last.Accepted || last.Reason != DropBadIPLength {
		t.Errorf("forged-length verdict = %+v, want drop/bad-ip-length", last)
	}
}

func TestBadAckDropped(t *testing.T) {
	s := newSess(false)
	handshake(s)
	s.inject(flow.ClientToServer, packet.ACK, s.seq[flow.ClientToServer],
		s.seq[flow.ServerToClient]+0x100000,
		func(p *packet.Packet) { _ = p.FixChecksums() })
	vs := Replay(s.conn, DefaultConfig())
	last := vs[len(vs)-1]
	if last.Accepted || last.Reason != DropBadAck {
		t.Errorf("future-ACK verdict = %+v, want drop/bad-ack", last)
	}
}

func TestOutOfOrderFINBuffered(t *testing.T) {
	s := newSess(false)
	handshake(s)
	s.inject(flow.ClientToServer, packet.FIN|packet.ACK,
		s.seq[flow.ClientToServer]+4, s.seq[flow.ServerToClient],
		func(p *packet.Packet) { _ = p.FixChecksums() })
	vs := Replay(s.conn, DefaultConfig())
	last := vs[len(vs)-1]
	if last.Accepted || last.Reason != DropOutOfOrderFIN {
		t.Errorf("OOO FIN verdict = %+v, want drop/out-of-order-fin", last)
	}
	if last.Label.State != Established {
		t.Errorf("state = %v, want ESTABLISHED preserved", last.Label.State)
	}
}

func TestSYNDifferentISNChallenged(t *testing.T) {
	s := newSess(false)
	handshake(s)
	s.inject(flow.ClientToServer, packet.SYN, s.seq[flow.ClientToServer]+0x7777, 0)
	vs := Replay(s.conn, DefaultConfig())
	last := vs[len(vs)-1]
	if last.Accepted || last.Reason != DropSYNDifferentISN {
		t.Errorf("different-ISN SYN verdict = %+v, want drop/syn-different-isn", last)
	}
}
