// Package eval assembles datasets, trains CLAP and both baselines, runs the
// per-strategy detection and localization experiments, and renders every
// table and figure of the paper's evaluation (§4). The bench harness in the
// repository root and cmd/clap-eval are thin wrappers over this package.
package eval

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"clap/internal/attacks"
	"clap/internal/backend"
	"clap/internal/core"
	"clap/internal/engine"
	"clap/internal/flow"
	"clap/internal/kitsune"
	"clap/internal/metrics"
	"clap/internal/trafficgen"
)

// Profile selects the experiment scale (DESIGN.md §5).
type Profile string

// Available profiles.
const (
	ProfileTiny Profile = "tiny" // unit tests
	ProfileFast Profile = "fast" // benches, quick reproduction
	ProfileFull Profile = "full" // overnight-quality reproduction
)

// Options parameterise a reproduction run.
type Options struct {
	Profile        Profile
	Seed           int64
	TrainConns     int
	TestBenign     int
	AdvPerStrategy int

	// Workers sizes the parallel scoring engine; <= 0 selects GOMAXPROCS.
	// Scores are bit-identical at any worker count.
	Workers int

	CLAP core.Config
	B1   core.Config
	Kit  kitsune.Config
}

// OptionsFor returns the canonical options of a profile.
func OptionsFor(p Profile) Options {
	o := Options{
		Profile: p, Seed: 1,
		CLAP: core.DefaultConfig(), B1: core.Baseline1Config(), Kit: kitsune.DefaultConfig(),
	}
	switch p {
	case ProfileTiny:
		o.TrainConns, o.TestBenign, o.AdvPerStrategy = 40, 16, 8
		o.CLAP.RNNEpochs, o.CLAP.AEEpochs = 4, 3
		o.B1.RNNEpochs, o.B1.AEEpochs = 2, 3
	case ProfileFull:
		o.TrainConns, o.TestBenign, o.AdvPerStrategy = 600, 240, 40
		o.CLAP.RNNEpochs, o.CLAP.AEEpochs, o.CLAP.AERestarts = 20, 60, 2
		o.B1.RNNEpochs, o.B1.AEEpochs, o.B1.AERestarts = 4, 600, 3
	default: // Fast
		o.Profile = ProfileFast
		o.TrainConns, o.TestBenign, o.AdvPerStrategy = 300, 120, 24
		o.CLAP.RNNEpochs, o.CLAP.AEEpochs, o.CLAP.AERestarts = 14, 40, 2
		o.B1.RNNEpochs, o.B1.AEEpochs, o.B1.AERestarts = 4, 500, 4
	}
	return o
}

// Dataset is the generated evaluation corpus.
type Dataset struct {
	Train      []*flow.Connection
	TestBenign []*flow.Connection
	// AdvBase is the pool of benign connections attacks are injected into.
	AdvBase []*flow.Connection
	// Adv maps strategy name to its adversarial test connections.
	Adv map[string][]*flow.Connection
	// AdvSrc maps strategy name to the AdvBase indices each adversarial
	// connection was derived from, enabling paired benign/adversarial
	// comparisons (the negative class for a strategy is the exact set of
	// carrier connections it was injected into).
	AdvSrc map[string][]int
}

// strategySeed derives a stable per-strategy RNG seed so results do not
// depend on evaluation order.
func strategySeed(base int64, name string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", base, name)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// BuildDataset generates the benign splits and the per-strategy adversarial
// corpora.
func BuildDataset(o Options) *Dataset {
	mk := func(n int, seedOff int64) []*flow.Connection {
		cfg := trafficgen.DefaultConfig(n)
		cfg.Seed = o.Seed + seedOff
		return trafficgen.Generate(cfg)
	}
	d := &Dataset{
		Train:      mk(o.TrainConns, 0),
		TestBenign: mk(o.TestBenign, 1_000_003),
		// A generous base pool: some strategies only apply to connections
		// with handshakes and data packets.
		AdvBase: mk(o.AdvPerStrategy*4+40, 2_000_003),
		Adv:     make(map[string][]*flow.Connection),
		AdvSrc:  make(map[string][]int),
	}
	for _, s := range attacks.All() {
		rng := rand.New(rand.NewSource(strategySeed(o.Seed, s.Name)))
		var conns []*flow.Connection
		var srcs []int
		for bi, base := range d.AdvBase {
			if len(conns) >= o.AdvPerStrategy {
				break
			}
			cc := base.Clone()
			if s.Apply(cc, rng) {
				cc.AttackName = s.Name
				conns = append(conns, cc)
				srcs = append(srcs, bi)
			}
		}
		d.Adv[s.Name] = conns
		d.AdvSrc[s.Name] = srcs
	}
	return d
}

// Suite bundles the dataset with the trained detection backends and their
// cached benign scores.
type Suite struct {
	Opt  Options
	Data *Dataset

	// Eng is the parallel scoring engine every evaluation loop runs
	// through. BuildSuite sets it from Options.Workers.
	Eng *engine.Engine

	// Backends holds the compared systems keyed by registry tag.
	// BuildSuite constructs all three through the backend registry; adding
	// a fourth system to the comparison is a registry entry plus an
	// Options hook, not new suite plumbing.
	Backends map[string]backend.Backend

	// CLAP, B1 and Kit are typed views of the backends for the analyses
	// that are inherently system-specific (localization criteria, RNN
	// accuracy, ablations, Table 6's hyper-parameters).
	CLAP *core.Detector
	B1   *core.Detector
	Kit  *kitsune.Kitsune

	// Base caches each backend's scores over the unmodified carrier pool,
	// keyed by backend tag and indexed like Data.AdvBase: the paired
	// negative class for per-strategy ROC curves.
	Base map[string][]float64

	// TrainTime records how long each backend took to train, keyed by tag.
	TrainTime map[string]time.Duration
}

// suiteSystems enumerates the compared backends: registry tag plus the
// profile-configuration hook applied before training.
func suiteSystems(o Options) []struct {
	tag   string
	setup func(backend.Backend)
} {
	return []struct {
		tag   string
		setup func(backend.Backend)
	}{
		{backend.TagCLAP, func(b backend.Backend) { b.(*backend.CLAP).Cfg = o.CLAP }},
		{backend.TagBaseline1, func(b backend.Backend) { b.(*backend.CLAP).Cfg = o.B1 }},
		{backend.TagKitsune, func(b backend.Backend) { b.(*backend.Kitsune).Cfg = o.Kit }},
	}
}

// Tags returns the suite's backend tags in sorted (deterministic) order.
func (s *Suite) Tags() []string {
	tags := make([]string, 0, len(s.Backends))
	for t := range s.Backends {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}

// BuildSuite generates data and trains all compared backends through the
// registry.
func BuildSuite(o Options, logf core.Logf) (*Suite, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Suite{Opt: o, TrainTime: map[string]time.Duration{}, Backends: map[string]backend.Backend{}}
	s.Eng = engine.New(engine.Options{Workers: o.Workers})
	logf("generating dataset (profile %s)...", o.Profile)
	s.Data = BuildDataset(o)

	for _, sys := range suiteSystems(o) {
		b, err := backend.New(sys.tag)
		if err != nil {
			return nil, err
		}
		sys.setup(b)
		logf("training %s on %d connections...", sys.tag, len(s.Data.Train))
		start := time.Now()
		if err := b.Train(s.Data.Train, backend.Logf(logf)); err != nil {
			return nil, fmt.Errorf("training %s: %w", sys.tag, err)
		}
		s.TrainTime[sys.tag] = time.Since(start)
		s.Backends[sys.tag] = b
	}
	s.CLAP = s.Backends[backend.TagCLAP].(*backend.CLAP).Detector()
	s.B1 = s.Backends[backend.TagBaseline1].(*backend.CLAP).Detector()
	s.Kit = s.Backends[backend.TagKitsune].(*backend.Kitsune).Model()

	logf("scoring carrier pool (%d connections, %d workers)...",
		len(s.Data.AdvBase), s.Eng.Workers())
	s.Base = map[string][]float64{}
	for _, tag := range s.Tags() {
		s.Base[tag] = s.Eng.ScoreBackend(s.Backends[tag], s.Data.AdvBase)
	}
	return s, nil
}

// engineOrDefault lets suites constructed without BuildSuite (tests,
// deserialized fixtures) still run through an engine.
func (s *Suite) engineOrDefault() *engine.Engine {
	if s.Eng == nil {
		s.Eng = engine.Default()
	}
	return s.Eng
}

// StrategyResult is the full per-strategy outcome (one bar of Figures 7-12).
type StrategyResult struct {
	Strategy attacks.Strategy
	N        int // adversarial connections evaluated

	// AUCByTag and EERByTag hold every compared backend's paired detection
	// metrics, keyed by registry tag — the generic comparison surface.
	AUCByTag map[string]float64
	EERByTag map[string]float64

	// Flattened views of the three paper systems for the fixed-shape
	// tables and figures.
	AUC, EER       float64 // CLAP
	AUCB1, EERB1   float64
	AUCKit, EERKit float64

	Top1, Top3, Top5 float64 // CLAP localization hit rates
}

// flatten mirrors the per-tag maps into the paper's named columns.
func (r *StrategyResult) flatten() {
	r.AUC, r.EER = r.AUCByTag[backend.TagCLAP], r.EERByTag[backend.TagCLAP]
	r.AUCB1, r.EERB1 = r.AUCByTag[backend.TagBaseline1], r.EERByTag[backend.TagBaseline1]
	r.AUCKit, r.EERKit = r.AUCByTag[backend.TagKitsune], r.EERByTag[backend.TagKitsune]
}

// EvaluateStrategy scores one strategy's adversarial corpus against every
// backend in the suite. The negative class is paired: the exact carrier
// connections the strategy was injected into, unmodified, so the ROC
// reflects the injected manipulation and not carrier-population skew.
func (s *Suite) EvaluateStrategy(st attacks.Strategy) StrategyResult {
	conns := s.Data.Adv[st.Name]
	srcs := s.Data.AdvSrc[st.Name]
	res := StrategyResult{
		Strategy: st, N: len(conns),
		AUCByTag: map[string]float64{}, EERByTag: map[string]float64{},
	}
	if len(conns) == 0 {
		return res
	}
	tags := s.Tags()
	systems := make([]backend.Backend, len(tags))
	ben := make([][]float64, len(tags))
	adv := make([][]float64, len(tags))
	clapIdx := -1
	for ti, tag := range tags {
		systems[ti] = s.Backends[tag]
		adv[ti] = make([]float64, len(conns))
		ben[ti] = make([]float64, len(srcs))
		for i, bi := range srcs {
			ben[ti][i] = s.Base[tag][bi]
		}
		if tag == backend.TagCLAP {
			clapIdx = ti
		}
	}
	// One parallel pass per strategy: every connection's scores and
	// localization verdicts are independent, results land in per-index
	// slots, and the reduction below runs in input order — deterministic at
	// any worker count.
	eng := s.engineOrDefault()
	hits := make([][3]bool, len(conns))
	eng.ParallelFor(len(conns), func(i int) {
		c := conns[i]
		for ti, b := range systems {
			if ti == clapIdx && s.CLAP != nil {
				// One CLAP inference pass per connection: score and all
				// three localization levels derive from the same window
				// errors.
				errs := s.CLAP.WindowErrors(c)
				adv[ti][i] = s.CLAP.ScoreFromErrors(errs).Adversarial
				hits[i] = [3]bool{
					s.CLAP.LocalizationHitErrors(c, errs, 1),
					s.CLAP.LocalizationHitErrors(c, errs, 3),
					s.CLAP.LocalizationHitErrors(c, errs, 5),
				}
				continue
			}
			adv[ti][i] = b.ScoreConn(c)
		}
	})
	var hit1, hit3, hit5 int
	for _, h := range hits {
		if h[0] {
			hit1++
		}
		if h[1] {
			hit3++
		}
		if h[2] {
			hit5++
		}
	}
	for ti, tag := range tags {
		res.AUCByTag[tag] = metrics.AUC(ben[ti], adv[ti])
		res.EERByTag[tag] = metrics.EER(ben[ti], adv[ti])
	}
	res.flatten()
	n := float64(len(conns))
	res.Top1, res.Top3, res.Top5 = float64(hit1)/n, float64(hit3)/n, float64(hit5)/n
	return res
}

// EvaluateAll runs every strategy in corpus order.
func (s *Suite) EvaluateAll() []StrategyResult {
	all := attacks.All()
	out := make([]StrategyResult, len(all))
	for i, st := range all {
		out[i] = s.EvaluateStrategy(st)
	}
	return out
}

// Aggregate summarises a result subset.
type Aggregate struct {
	N                            int
	AUC, EER                     float64
	AUCB1, EERB1, AUCKit, EERKit float64
	Top1, Top3, Top5             float64
}

// Summarise averages results (unweighted across strategies, as the paper
// reports).
func Summarise(rs []StrategyResult) Aggregate {
	var a Aggregate
	if len(rs) == 0 {
		return a
	}
	for _, r := range rs {
		a.AUC += r.AUC
		a.EER += r.EER
		a.AUCB1 += r.AUCB1
		a.EERB1 += r.EERB1
		a.AUCKit += r.AUCKit
		a.EERKit += r.EERKit
		a.Top1 += r.Top1
		a.Top3 += r.Top3
		a.Top5 += r.Top5
		a.N++
	}
	n := float64(a.N)
	a.AUC /= n
	a.EER /= n
	a.AUCB1 /= n
	a.EERB1 /= n
	a.AUCKit /= n
	a.EERKit /= n
	a.Top1 /= n
	a.Top3 /= n
	a.Top5 /= n
	return a
}

// FilterSource selects results from one corpus.
func FilterSource(rs []StrategyResult, src attacks.Source) []StrategyResult {
	var out []StrategyResult
	for _, r := range rs {
		if r.Strategy.Source == src {
			out = append(out, r)
		}
	}
	return out
}

// THInter is the paper's categorization threshold (§4.3): a strategy whose
// CLAP-vs-Baseline#1 AUC disparity exceeds it is primarily an inter-packet
// context violation.
const THInter = 0.15

// Categorize applies the empirical rule of §4.3 / Table 8.
func Categorize(rs []StrategyResult) (inter, intra []StrategyResult) {
	for _, r := range rs {
		if r.AUC-r.AUCB1 > THInter {
			inter = append(inter, r)
		} else {
			intra = append(intra, r)
		}
	}
	return inter, intra
}

// SortByName orders results alphabetically for stable rendering.
func SortByName(rs []StrategyResult) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Strategy.Name < rs[j].Strategy.Name })
}
