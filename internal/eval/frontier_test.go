package eval

import (
	"math"
	"strings"
	"testing"

	"clap/internal/attacks"
	"clap/internal/backend"
	"clap/internal/flow"
	"clap/internal/metrics"
)

// TestCascadeFrontier pins the tiered deployment's contract on the tiny
// profile: the margin-composed routing makes accuracy monotone in the
// escalation budget (the raw mixed-scale composition was not), more
// escalation strictly buys accuracy across the sweep, the default budget
// keeps ≥5× pure-CLAP serial throughput, and the composed scores the
// sweep is built from match scoring through backend.Cascade bit for bit.
// The accuracy numbers themselves scale with the profile — the tiny
// 2-epoch screen bounds AUC loss at ~0.22; the fast profile's trained
// screen measures 0.106 at the default budget, reaching ≤0.02 at budget
// 0.5 (recorded in CHANGES.md) — so this test pins a loose regression
// ceiling, not the fast-profile numbers.
func TestCascadeFrontier(t *testing.T) {
	s := suite(t)
	f, err := s.CascadeFrontier(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != len(DefaultFrontierFPRs) {
		t.Fatalf("%d frontier points, want %d", len(f.Points), len(DefaultFrontierFPRs))
	}
	if f.PureAUC <= 0.5 || f.PureAUC > 1 {
		t.Fatalf("pure-CLAP reference AUC = %v", f.PureAUC)
	}

	var def *FrontierPoint
	for i := range f.Points {
		p := &f.Points[i]
		if p.AUC < 0 || p.AUC > 1 || math.IsNaN(p.AUC) {
			t.Fatalf("point %+v: AUC out of range", p)
		}
		if p.Throughput.Packets == 0 || p.Throughput.PacketsPerSecond() <= 0 {
			t.Fatalf("point %+v: no throughput measured", p)
		}
		// The realized escalation rate tracks the budget loosely: the
		// corpus is benign-heavy but 5% of it is attacks meant to escalate.
		if p.EscalatedFraction < 0 || p.EscalatedFraction > 1 {
			t.Fatalf("point %+v: bad escalated fraction", p)
		}
		// Margin routing makes accuracy monotone in the budget: screened
		// connections all rank below escalated ones, so widening the
		// escalated set can only move attacks up. The raw mixed-scale
		// composition violated this badly (AUC dipped as escalation rose).
		if i > 0 && p.AUC < f.Points[i-1].AUC-1e-9 {
			t.Fatalf("AUC not monotone in escalation budget: %.4f @ %.2f < %.4f @ %.2f",
				p.AUC, p.EscalateFPR, f.Points[i-1].AUC, f.Points[i-1].EscalateFPR)
		}
		if p.EscalateFPR == backend.DefaultEscalateFPR {
			def = p
		}
	}
	if def == nil {
		t.Fatalf("default escalate-FPR %v missing from the sweep", backend.DefaultEscalateFPR)
	}
	// Escalation strictly buys accuracy across the sweep, and the gap to
	// pure CLAP at the default budget stays under the tiny-profile
	// regression ceiling (measured 0.2239 with the 2-epoch smoke screen;
	// the trained fast-profile screen measures 0.106 — see CHANGES.md).
	if last := f.Points[len(f.Points)-1]; last.AUC <= f.Points[0].AUC {
		t.Fatalf("widening the budget bought no accuracy: %.4f @ %.2f vs %.4f @ %.2f",
			last.AUC, last.EscalateFPR, f.Points[0].AUC, f.Points[0].EscalateFPR)
	}
	if loss := f.PureAUC - def.AUC; loss > 0.25 {
		t.Fatalf("AUC loss at default escalation budget = %.4f, ceiling 0.25 (cascade %.4f, pure %.4f)",
			loss, def.AUC, f.PureAUC)
	}
	// The throughput half of the contract: at the default budget the
	// cascade screens benign-heavy traffic at ≥5× pure CLAP's serial rate
	// (measured ~51× tiny, ~29× fast — wide margin against CI noise).
	if speedup := def.Throughput.PacketsPerSecond() / f.Pure.PacketsPerSecond(); speedup < 5 {
		t.Fatalf("default-budget speedup %.2fx, want >= 5x", speedup)
	}

	// The composed routing must equal real cascade scoring: rebuild the
	// cascade at the default point and compare scores over the benign
	// split and one strategy corpus.
	cascade, err := backend.NewCascade(
		s.Backends[backend.TagBaseline1], s.Backends[backend.TagCLAP], def.EscalateFPR)
	if err != nil {
		t.Fatal(err)
	}
	if err := cascade.SetEscalation(def.Threshold); err != nil {
		t.Fatal(err)
	}
	s1 := s.Backends[backend.TagBaseline1]
	s2 := s.Backends[backend.TagCLAP]
	probe := append([]*flow.Connection(nil), s.Data.TestBenign[:8]...)
	for _, st := range attacks.All() {
		if cs := s.Data.Adv[st.Name]; len(cs) > 0 {
			probe = append(probe, cs[:min(4, len(cs))]...)
			break
		}
	}
	for i, c := range probe {
		e1 := s1.WindowErrors(c)
		score1, _ := s1.Summarize(e1)
		want := s2.ScoreConn(c)
		if score1 < def.Threshold {
			for j := range e1 {
				e1[j] -= def.Threshold
			}
			want, _ = cascade.Summarize(e1)
			if len(e1) > 0 && want >= 0 {
				t.Fatalf("probe %d: screened margin %v not negative", i, want)
			}
		}
		if got := cascade.ScoreConn(c); got != want {
			t.Fatalf("probe %d: cascade score %v != composed %v", i, got, want)
		}
	}

	// Threshold derivation matches the fixed ThresholdAtFPR on the same
	// stage-1 benign scores.
	benignS1 := s.engineOrDefault().ScoreBackend(s1, s.Data.TestBenign)
	if want := metrics.ThresholdAtFPR(benignS1, def.EscalateFPR); def.Threshold != want {
		t.Fatalf("frontier threshold %v != ThresholdAtFPR %v", def.Threshold, want)
	}

	// Renderer smoke: every point present, reference row last.
	table := TableFrontier(f)
	if !strings.HasPrefix(table, "Table 9:") || !strings.Contains(table, "pure clap") {
		t.Fatalf("frontier table malformed:\n%s", table)
	}
	if strings.Count(table, "\n") != len(f.Points)+3 {
		t.Fatalf("frontier table rows:\n%s", table)
	}
}
